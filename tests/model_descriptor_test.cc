#include <cstdio>

#include <gtest/gtest.h>

#include "laar/model/descriptor.h"

namespace laar::model {
namespace {

ApplicationDescriptor MakeApp() {
  ApplicationDescriptor app;
  app.name = "demo";
  const ComponentId source = app.graph.AddSource("src");
  const ComponentId pe0 = app.graph.AddPe("stage0");
  const ComponentId pe1 = app.graph.AddPe("stage1");
  const ComponentId sink = app.graph.AddSink("out");
  EXPECT_TRUE(app.graph.AddEdge(source, pe0, 1.0, 1e7).ok());
  EXPECT_TRUE(app.graph.AddEdge(pe0, pe1, 0.75, 2e7).ok());
  EXPECT_TRUE(app.graph.AddEdge(pe0, sink, 1.0, 0.0).ok());
  EXPECT_TRUE(app.graph.AddEdge(pe1, sink, 1.0, 0.0).ok());
  SourceRateSet rates;
  rates.source = source;
  rates.rates = {5.0, 15.0};
  rates.labels = {"Low", "High"};
  rates.probabilities = {2.0 / 3.0, 1.0 / 3.0};
  EXPECT_TRUE(app.input_space.AddSource(rates).ok());
  EXPECT_TRUE(app.Validate().ok());
  return app;
}

TEST(DescriptorTest, ValidateChecksAgreement) {
  ApplicationDescriptor app = MakeApp();
  EXPECT_TRUE(app.Validate().ok());

  // A rate set pointing at a PE is rejected.
  ApplicationDescriptor bad = MakeApp();
  SourceRateSet extra;
  extra.source = 1;  // a PE
  extra.rates = {1.0};
  extra.probabilities = {1.0};
  ASSERT_TRUE(bad.input_space.AddSource(extra).ok());
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(DescriptorTest, ValidateRejectsSourceWithoutRates) {
  ApplicationDescriptor app;
  const ComponentId s0 = app.graph.AddSource("s0");
  const ComponentId s1 = app.graph.AddSource("s1");
  const ComponentId pe = app.graph.AddPe("p");
  const ComponentId sink = app.graph.AddSink("k");
  ASSERT_TRUE(app.graph.AddEdge(s0, pe, 1, 1).ok());
  ASSERT_TRUE(app.graph.AddEdge(s1, pe, 1, 1).ok());
  ASSERT_TRUE(app.graph.AddEdge(pe, sink, 1, 0).ok());
  SourceRateSet rates;
  rates.source = s0;
  rates.rates = {1.0};
  rates.probabilities = {1.0};
  ASSERT_TRUE(app.input_space.AddSource(rates).ok());
  EXPECT_FALSE(app.Validate().ok());
}

TEST(DescriptorTest, JsonRoundTripPreservesEverything) {
  ApplicationDescriptor app = MakeApp();
  json::Value doc = app.ToJson();
  Result<ApplicationDescriptor> loaded = ApplicationDescriptor::FromJson(doc);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->name, "demo");
  EXPECT_EQ(loaded->graph.num_components(), app.graph.num_components());
  EXPECT_EQ(loaded->graph.num_edges(), app.graph.num_edges());
  for (size_t i = 0; i < app.graph.num_edges(); ++i) {
    const Edge& a = app.graph.edges()[i];
    const Edge& b = loaded->graph.edges()[i];
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_DOUBLE_EQ(a.selectivity, b.selectivity);
    EXPECT_DOUBLE_EQ(a.cpu_cost_cycles, b.cpu_cost_cycles);
  }
  EXPECT_EQ(loaded->input_space.num_configs(), 2);
  EXPECT_DOUBLE_EQ(loaded->input_space.RateOf(0, 1), 15.0);
  EXPECT_EQ(loaded->input_space.source_rates(0).labels[1], "High");
  EXPECT_NEAR(loaded->input_space.Probability(0), 2.0 / 3.0, 1e-12);
}

TEST(DescriptorTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/laar_descriptor_test.json";
  ApplicationDescriptor app = MakeApp();
  ASSERT_TRUE(app.SaveToFile(path).ok());
  Result<ApplicationDescriptor> loaded = ApplicationDescriptor::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ToJson().Dump(), app.ToJson().Dump());
  std::remove(path.c_str());
}

TEST(DescriptorTest, FromJsonRejectsBadDocuments) {
  EXPECT_FALSE(ApplicationDescriptor::FromJson(json::Value::Int(3)).ok());

  // Missing sections.
  json::Value empty = json::Value::MakeObject();
  EXPECT_FALSE(ApplicationDescriptor::FromJson(empty).ok());

  // Non-dense component ids.
  auto doc = MakeApp().ToJson();
  doc.object()["components"].array()[0].Set("id", json::Value::Int(5));
  EXPECT_FALSE(ApplicationDescriptor::FromJson(doc).ok());

  // Unknown component kind.
  auto doc2 = MakeApp().ToJson();
  doc2.object()["components"].array()[0].Set("kind", json::Value::String("widget"));
  EXPECT_FALSE(ApplicationDescriptor::FromJson(doc2).ok());

  // Edge referencing a missing component.
  auto doc3 = MakeApp().ToJson();
  doc3.object()["edges"].array()[0].Set("to", json::Value::Int(99));
  EXPECT_FALSE(ApplicationDescriptor::FromJson(doc3).ok());
}

}  // namespace
}  // namespace laar::model
