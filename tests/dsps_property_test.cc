// Property sweeps over generated applications: conservation laws and
// determinism of the stream-processing simulation.

#include <gtest/gtest.h>

#include "laar/appgen/app_generator.h"
#include "laar/dsps/stream_simulation.h"
#include "laar/dsps/trace.h"
#include "laar/runtime/experiment.h"
#include "laar/strategy/baselines.h"

namespace laar::dsps {
namespace {

struct RunResult {
  SimulationMetrics metrics;
};

RunResult RunOnce(const appgen::GeneratedApplication& app,
                  const strategy::ActivationStrategy& strategy,
                  const RuntimeOptions& options) {
  auto trace = *runtime::MakeExperimentTrace(app.descriptor.input_space, 60.0, 1.0 / 3.0,
                                             2);
  StreamSimulation simulation(app.descriptor, app.cluster, app.placement, strategy, trace,
                              options);
  EXPECT_TRUE(simulation.Run().ok());
  return RunResult{simulation.metrics()};
}

class DspsPropertyTest : public testing::TestWithParam<uint64_t> {
 protected:
  appgen::GeneratedApplication MakeApp() {
    appgen::GeneratorOptions generator;
    generator.num_pes = 10;
    generator.num_hosts = 5;
    auto app = appgen::GenerateApplication(generator, GetParam());
    EXPECT_TRUE(app.ok()) << app.status().ToString();
    return std::move(*app);
  }
};

TEST_P(DspsPropertyTest, TupleConservationPerReplica) {
  appgen::GeneratedApplication app = MakeApp();
  const auto sr = strategy::MakeStaticReplication(app.descriptor.graph,
                                                  app.descriptor.input_space, 2);
  RuntimeOptions options;
  const RunResult run = RunOnce(app, sr, options);
  // Every tuple offered to a live replica was either queued-and-processed,
  // dropped on overflow, or is still buffered at the horizon:
  //   arrived >= processed + dropped  and  arrived - (processed + dropped)
  // is bounded by the queue capacity of the replica.
  for (model::ComponentId pe : app.descriptor.graph.Pes()) {
    for (int r = 0; r < 2; ++r) {
      const ReplicaMetrics& m = run.metrics.replicas[static_cast<size_t>(pe)][static_cast<size_t>(r)];
      EXPECT_GE(m.tuples_arrived, m.tuples_processed + m.tuples_dropped)
          << "pe=" << pe << " r=" << r;
    }
  }
}

TEST_P(DspsPropertyTest, CycleAccountingConsistent) {
  appgen::GeneratedApplication app = MakeApp();
  const auto sr = strategy::MakeStaticReplication(app.descriptor.graph,
                                                  app.descriptor.input_space, 2);
  RuntimeOptions options;
  const RunResult run = RunOnce(app, sr, options);
  // Host-level and replica-level cycle accounting agree.
  double host_total = 0.0;
  for (double cycles : run.metrics.host_cycles) host_total += cycles;
  EXPECT_NEAR(host_total, run.metrics.TotalCpuCycles(), 1e-3 * host_total + 1.0);
  // No host consumed more than capacity * duration.
  for (size_t h = 0; h < run.metrics.host_cycles.size(); ++h) {
    EXPECT_LE(run.metrics.host_cycles[h],
              app.cluster.host(static_cast<model::HostId>(h)).capacity_cycles_per_sec *
                      run.metrics.duration * (1.0 + 1e-6));
  }
}

TEST_P(DspsPropertyTest, DeterministicAcrossRuns) {
  appgen::GeneratedApplication app = MakeApp();
  const auto sr = strategy::MakeStaticReplication(app.descriptor.graph,
                                                  app.descriptor.input_space, 2);
  RuntimeOptions options;
  const RunResult a = RunOnce(app, sr, options);
  const RunResult b = RunOnce(app, sr, options);
  EXPECT_EQ(a.metrics.source_tuples, b.metrics.source_tuples);
  EXPECT_EQ(a.metrics.sink_tuples, b.metrics.sink_tuples);
  EXPECT_EQ(a.metrics.dropped_tuples, b.metrics.dropped_tuples);
  EXPECT_EQ(a.metrics.pe_processed, b.metrics.pe_processed);
  EXPECT_DOUBLE_EQ(a.metrics.TotalCpuCycles(), b.metrics.TotalCpuCycles());
}

TEST_P(DspsPropertyTest, SingleReplicaCostsHalfOfStaticWhenUnsaturated) {
  appgen::GeneratedApplication app = MakeApp();
  const model::ApplicationGraph& graph = app.descriptor.graph;
  const auto sr = strategy::MakeStaticReplication(graph, app.descriptor.input_space, 2);
  strategy::ActivationStrategy nr = sr;
  for (model::ComponentId pe : graph.Pes()) {
    for (model::ConfigId c = 0; c < app.descriptor.input_space.num_configs(); ++c) {
      nr.SetActive(pe, 1, c, false);
    }
  }
  RuntimeOptions options;
  // Compare over the Low-only prefix, where nothing saturates: SR consumes
  // twice the cycles of single-replica.
  auto trace = *InputTrace::Step(0, app.descriptor.input_space.PeakConfig(), 40.0, 41.0);
  StreamSimulation sr_run(app.descriptor, app.cluster, app.placement, sr, trace, options);
  ASSERT_TRUE(sr_run.Run().ok());
  StreamSimulation nr_run(app.descriptor, app.cluster, app.placement, nr, trace, options);
  ASSERT_TRUE(nr_run.Run().ok());
  EXPECT_NEAR(sr_run.metrics().TotalCpuCycles() / nr_run.metrics().TotalCpuCycles(), 2.0,
              0.1);
}

TEST_P(DspsPropertyTest, FailuresNeverHelpWhenUnsaturated) {
  // Note this holds only without saturation: during an overloaded High
  // period, killing replicas *frees* CPU and the survivors process more
  // (the very effect LAAR exploits). A Low-only trace keeps the deployment
  // unsaturated, where failures can only lose tuples and cycles.
  appgen::GeneratedApplication app = MakeApp();
  const auto sr = strategy::MakeStaticReplication(app.descriptor.graph,
                                                  app.descriptor.input_space, 2);
  InputTrace trace;
  ASSERT_TRUE(trace.Append(60.0, 0).ok());  // all-Low
  RuntimeOptions options;

  StreamSimulation best(app.descriptor, app.cluster, app.placement, sr, trace, options);
  ASSERT_TRUE(best.Run().ok());

  StreamSimulation worst(app.descriptor, app.cluster, app.placement, sr, trace, options);
  for (model::ComponentId pe : app.descriptor.graph.Pes()) {
    ASSERT_TRUE(worst.InjectPermanentReplicaFailure(pe, 0).ok());
  }
  ASSERT_TRUE(worst.Run().ok());

  // Horizon slack: with fewer busy replicas the survivors' processor
  // shares are larger, so a handful of extra in-flight tuples can finish
  // just before the cut-off.
  constexpr uint64_t kHorizonSlack = 8;
  EXPECT_LE(worst.metrics().TotalProcessed(),
            best.metrics().TotalProcessed() + kHorizonSlack);
  EXPECT_LE(worst.metrics().TotalCpuCycles(), best.metrics().TotalCpuCycles() * 1.001);
  EXPECT_LE(worst.metrics().sink_tuples, best.metrics().sink_tuples + kHorizonSlack);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DspsPropertyTest, testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace laar::dsps
