#include <cstdint>
#include <filesystem>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "laar/json/json.h"
#include "laar/obs/chrome_trace.h"
#include "laar/runtime/corpus.h"
#include "laar/runtime/report.h"

namespace laar::runtime {
namespace {

HarnessOptions TinyHarness() {
  HarnessOptions options;
  options.generator.num_pes = 6;
  options.generator.num_hosts = 3;
  options.variants.laar_ic_requirements = {0.5};
  // A binding-but-deterministic budget: seed usability must not depend on
  // machine load, or the jobs-invariance test below would be flaky.
  options.variants.ftsearch_time_limit_seconds = 0.0;
  options.variants.ftsearch_node_limit = 50000;
  options.trace_seconds = 30.0;
  options.trace_cycles = 2;
  return options;
}

CorpusOptions TinyCorpus(int jobs) {
  CorpusOptions corpus;
  corpus.num_apps = 3;
  corpus.seed_base = 500;
  corpus.jobs = jobs;
  corpus.verbose = false;
  return corpus;
}

TEST(CorpusTest, CollectsRequestedNumberOfApps) {
  const CorpusResult result = RunCorpus(TinyHarness(), TinyCorpus(1));
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_GE(result.skipped, 0);
  EXPECT_GT(result.wall_seconds, 0.0);
  // Seeds strictly increase: the corpus keeps them in probing order.
  EXPECT_LT(result.records[0].app_seed, result.records[1].app_seed);
  EXPECT_LT(result.records[1].app_seed, result.records[2].app_seed);
  for (const AppExperimentRecord& record : result.records) {
    EXPECT_FALSE(record.variants.empty());
  }
}

TEST(CorpusTest, RecordsStageTimes) {
  const CorpusResult result = RunCorpus(TinyHarness(), TinyCorpus(1));
  ASSERT_FALSE(result.records.empty());
  for (const AppExperimentRecord& record : result.records) {
    EXPECT_GT(record.stages.solve_seconds, 0.0);
    EXPECT_GT(record.stages.simulate_best_seconds, 0.0);
    EXPECT_GT(record.stages.TotalSeconds(), 0.0);
  }
  const StageTimes totals = CorpusStageTotals(result.records);
  EXPECT_GT(totals.TotalSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(totals.TotalSeconds(), result.stage_totals.TotalSeconds());
  EXPECT_FALSE(FormatStageTimes(totals).empty());
}

TEST(CorpusTest, ParallelRunsProduceIdenticalRecords) {
  // The tentpole guarantee: --jobs must never change the records. The CSV
  // rendering is the record identity (it excludes timings).
  const HarnessOptions harness = TinyHarness();
  const CorpusResult serial = RunCorpus(harness, TinyCorpus(1));
  ASSERT_EQ(serial.records.size(), 3u);
  const std::string expected = CorpusToCsv(serial.records);
  for (int jobs : {2, 4, 8}) {
    const CorpusResult parallel = RunCorpus(harness, TinyCorpus(jobs));
    EXPECT_EQ(CorpusToCsv(parallel.records), expected) << "jobs=" << jobs;
    EXPECT_EQ(parallel.skipped, serial.skipped) << "jobs=" << jobs;
  }
}

/// Reads every .json in `dir` into a filename -> contents map.
std::map<std::string, std::string> SlurpTraceDir(const std::filesystem::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    auto parsed = json::ParseFile(entry.path().string());
    EXPECT_TRUE(parsed.ok()) << entry.path();
    if (parsed.ok()) files[entry.path().filename().string()] = parsed->Dump();
  }
  return files;
}

TEST(CorpusTest, DomainOutageRecordsAndTracesAreJobsInvariant) {
  // The crash scenarios draw from seeded RNGs keyed on the app seed, so a
  // corpus running domain outages must stay --jobs-invariant like the rest
  // — including the Chrome trace files it writes per (seed, variant,
  // scenario).
  HarnessOptions harness = TinyHarness();
  harness.generator.num_hosts = 4;
  harness.generator.hosts_per_rack = 2;
  harness.run_host_crash = true;
  harness.run_domain_outage = true;
  harness.domain_outage_bursts = 2;
  const std::filesystem::path serial_dir =
      std::filesystem::temp_directory_path() / "laar_corpus_trace_serial";
  std::filesystem::remove_all(serial_dir);
  std::filesystem::create_directories(serial_dir);
  harness.trace_dir = serial_dir.string();
  const CorpusResult serial = RunCorpus(harness, TinyCorpus(1));
  ASSERT_EQ(serial.records.size(), 3u);
  const std::string expected = CorpusToCsv(serial.records);
  // The scenario actually ran: at least one variant reports domain output.
  bool any_domain = false;
  for (const AppExperimentRecord& record : serial.records) {
    for (const VariantMeasurement& m : record.variants) {
      any_domain = any_domain || m.processed_domain > 0;
    }
  }
  EXPECT_TRUE(any_domain);

  // Every written trace passes schema validation (which includes the
  // per-thread timestamp-monotonicity and crash/recover pairing checks),
  // and the outage scenarios render synthesized outage span bars.
  const std::map<std::string, std::string> serial_traces = SlurpTraceDir(serial_dir);
  ASSERT_FALSE(serial_traces.empty());
  bool saw_outage_spans = false;
  for (const auto& [name, contents] : serial_traces) {
    auto parsed = json::Parse(contents);
    ASSERT_TRUE(parsed.ok()) << name;
    const Status valid = obs::ValidateChromeTrace(*parsed);
    EXPECT_TRUE(valid.ok()) << name << ": " << valid.ToString();
    if (name.find("domain-outage") != std::string::npos) {
      EXPECT_NE(contents.find("host_crash"), std::string::npos) << name;
      saw_outage_spans = saw_outage_spans ||
                         (contents.find("host_outage") != std::string::npos &&
                          contents.find("replica_outage") != std::string::npos);
    }
  }
  EXPECT_TRUE(saw_outage_spans);

  for (int jobs : {2, 4}) {
    const std::filesystem::path parallel_dir =
        std::filesystem::temp_directory_path() /
        ("laar_corpus_trace_jobs" + std::to_string(jobs));
    std::filesystem::remove_all(parallel_dir);
    std::filesystem::create_directories(parallel_dir);
    harness.trace_dir = parallel_dir.string();
    const CorpusResult parallel = RunCorpus(harness, TinyCorpus(jobs));
    EXPECT_EQ(CorpusToCsv(parallel.records), expected) << "jobs=" << jobs;
    EXPECT_EQ(SlurpTraceDir(parallel_dir), serial_traces) << "jobs=" << jobs;
    std::filesystem::remove_all(parallel_dir);
  }
  std::filesystem::remove_all(serial_dir);
}

TEST(CorpusTest, SerialCorpusMayShareFtSearchPool) {
  // jobs == 1 with ftsearch_threads > 1: the corpus budgets its threads to
  // FT-Search instead; the records still must not change.
  HarnessOptions harness = TinyHarness();
  const CorpusResult reference = RunCorpus(harness, TinyCorpus(1));
  harness.variants.ftsearch_threads = 4;
  const CorpusResult threaded = RunCorpus(harness, TinyCorpus(1));
  EXPECT_EQ(CorpusToCsv(threaded.records), CorpusToCsv(reference.records));
}

TEST(CorpusTest, GivesUpAfterSkipBudget) {
  HarnessOptions harness = TinyHarness();
  // An unsatisfiable IC makes every seed unusable.
  harness.variants.laar_ic_requirements = {0.99999};
  harness.variants.ftsearch_node_limit = 20000;
  CorpusOptions corpus = TinyCorpus(1);
  corpus.max_skips_factor = 2;  // 3 apps * 2 = 6 skips, keeps the test fast
  const CorpusResult result = RunCorpus(harness, corpus);
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.skipped, corpus.num_apps * corpus.max_skips_factor);
}

}  // namespace
}  // namespace laar::runtime
