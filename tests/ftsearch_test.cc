#include <gtest/gtest.h>

#include "laar/appgen/app_generator.h"
#include "laar/ftsearch/ft_search.h"
#include "laar/metrics/cost.h"
#include "laar/metrics/failure_model.h"
#include "laar/metrics/ic.h"

namespace laar::ftsearch {
namespace {

using model::ApplicationGraph;
using model::Cluster;
using model::ComponentId;
using model::ExpectedRates;
using model::InputSpace;
using model::ReplicaPlacement;
using model::SourceRateSet;

/// The Fig. 1 pipeline: IC and cost have closed forms, so the optimum is
/// checkable by hand.
struct Fixture {
  ApplicationGraph graph;
  InputSpace space;
  ExpectedRates rates;
  Cluster cluster = Cluster::Homogeneous(2, 1e9);
  ReplicaPlacement placement{0, 2};
  ComponentId source, pe0, pe1, sink;

  Fixture() {
    source = graph.AddSource("s");
    pe0 = graph.AddPe("p0");
    pe1 = graph.AddPe("p1");
    sink = graph.AddSink("k");
    EXPECT_TRUE(graph.AddEdge(source, pe0, 1.0, 1e8).ok());
    EXPECT_TRUE(graph.AddEdge(pe0, pe1, 1.0, 1e8).ok());
    EXPECT_TRUE(graph.AddEdge(pe1, sink, 1.0, 0.0).ok());
    EXPECT_TRUE(graph.Validate().ok());
    SourceRateSet r;
    r.source = source;
    r.rates = {4.0, 8.0};
    r.probabilities = {0.8, 0.2};
    EXPECT_TRUE(space.AddSource(r).ok());
    rates = *ExpectedRates::Compute(graph, space);
    placement = ReplicaPlacement(graph.num_components(), 2);
    EXPECT_TRUE(placement.Assign(pe0, 0, 0).ok());
    EXPECT_TRUE(placement.Assign(pe0, 1, 1).ok());
    EXPECT_TRUE(placement.Assign(pe1, 0, 0).ok());
    EXPECT_TRUE(placement.Assign(pe1, 1, 1).ok());
  }

  Result<FtSearchResult> Search(FtSearchOptions options) const {
    return RunFtSearch(graph, space, rates, placement, cluster, options);
  }
};

TEST(FtSearchTest, FindsOptimalForPipeline) {
  Fixture f;
  FtSearchOptions options;
  options.ic_requirement = 0.6;
  Result<FtSearchResult> result = f.Search(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcome, SearchOutcome::kOptimal);
  ASSERT_TRUE(result->strategy.has_value());
  // Optimum: both replicas active at Low (IC needs it), single replicas at
  // High (CPU needs it). Cost = 0.8*2*(4e8+4e8) + 0.2*(8e8+8e8) = 1.6e9.
  EXPECT_NEAR(result->best_cost, 1.6e9, 1.0);
  EXPECT_NEAR(result->best_ic, 2.0 / 3.0, 1e-9);
  EXPECT_TRUE(metrics::CheckStrategyConstraints(f.graph, f.space, f.rates, f.placement,
                                                *result->strategy, f.cluster, 0.6)
                  .ok());
}

TEST(FtSearchTest, ReportedCostAndIcMatchMetricsModule) {
  Fixture f;
  FtSearchOptions options;
  options.ic_requirement = 0.5;
  Result<FtSearchResult> result = f.Search(options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->strategy.has_value());
  const double cost = metrics::CostPerSecond(f.graph, f.space, f.rates, f.placement,
                                             *result->strategy);
  EXPECT_NEAR(cost, result->best_cost, 1e-6 * cost);
  metrics::IcCalculator calc(f.graph, f.space, f.rates);
  metrics::PessimisticFailureModel pessimistic;
  EXPECT_NEAR(calc.InternalCompleteness(*result->strategy, pessimistic), result->best_ic,
              1e-9);
}

TEST(FtSearchTest, InfeasibleIcGivesNul) {
  Fixture f;
  FtSearchOptions options;
  // IC 1.0 requires both replicas active in High, which overloads: NUL.
  options.ic_requirement = 1.0;
  Result<FtSearchResult> result = f.Search(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, SearchOutcome::kInfeasible);
  EXPECT_FALSE(result->strategy.has_value());
}

TEST(FtSearchTest, LowIcStillKeepsCoverage) {
  Fixture f;
  FtSearchOptions options;
  options.ic_requirement = 0.0;
  Result<FtSearchResult> result = f.Search(options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcome, SearchOutcome::kOptimal);
  // With no IC requirement the optimum is single-replica everywhere:
  // cost = 0.8*(8e8) + 0.2*(1.6e9) = 0.96e9.
  EXPECT_NEAR(result->best_cost, 0.96e9, 1.0);
  EXPECT_TRUE(result->strategy->CheckCoverage(f.graph).ok());
}

TEST(FtSearchTest, CostMonotoneInIcRequirement) {
  Fixture f;
  double previous = -1.0;
  for (double ic : {0.0, 0.3, 0.5, 0.6, 2.0 / 3.0}) {
    FtSearchOptions options;
    options.ic_requirement = ic;
    Result<FtSearchResult> result = f.Search(options);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->outcome, SearchOutcome::kOptimal) << "ic=" << ic;
    EXPECT_GE(result->best_cost, previous) << "ic=" << ic;
    previous = result->best_cost;
  }
}

TEST(FtSearchTest, NodeLimitYieldsTimeoutClassification) {
  Fixture f;
  FtSearchOptions options;
  options.ic_requirement = 0.6;
  options.node_limit = 1;  // below the first stop-check stride
  Result<FtSearchResult> result = f.Search(options);
  ASSERT_TRUE(result.ok());
  // With an immediate abort the search either got lucky (found something
  // before the first check) or reports TMO; both carry the timed-out flag.
  EXPECT_TRUE(result->outcome == SearchOutcome::kTimeout ||
              result->outcome == SearchOutcome::kFeasible);
}

TEST(FtSearchTest, RejectsBadInputs) {
  Fixture f;
  FtSearchOptions options;
  options.ic_requirement = 1.5;
  EXPECT_FALSE(f.Search(options).ok());

  // k != 2 unsupported.
  ReplicaPlacement k3(f.graph.num_components(), 3);
  FtSearchOptions ok_options;
  EXPECT_FALSE(
      RunFtSearch(f.graph, f.space, f.rates, k3, f.cluster, ok_options).ok());

  // Unplaced PEs rejected.
  ReplicaPlacement unplaced(f.graph.num_components(), 2);
  EXPECT_FALSE(
      RunFtSearch(f.graph, f.space, f.rates, unplaced, f.cluster, ok_options).ok());
}

TEST(FtSearchTest, PruningAblationsPreserveTheOptimum) {
  Fixture f;
  FtSearchOptions base;
  base.ic_requirement = 0.6;
  Result<FtSearchResult> reference = f.Search(base);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(reference->outcome, SearchOutcome::kOptimal);

  for (int disabled = 0; disabled < 7; ++disabled) {
    FtSearchOptions options = base;
    options.enable_cpu_pruning = disabled != 0;
    options.enable_ic_pruning = disabled != 1;
    options.enable_cost_pruning = disabled != 2;
    options.enable_dom_propagation = disabled != 3;
    options.try_both_first = disabled != 4;
    options.tight_ic_bound = disabled != 5;
    options.seed_greedy = disabled != 6;
    Result<FtSearchResult> result = f.Search(options);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->outcome, SearchOutcome::kOptimal) << "ablation " << disabled;
    EXPECT_NEAR(result->best_cost, reference->best_cost, 1.0) << "ablation " << disabled;
    EXPECT_NEAR(result->best_ic, reference->best_ic, 1e-9) << "ablation " << disabled;
  }
}

TEST(FtSearchTest, StatsCountNodesAndPrunes) {
  Fixture f;
  FtSearchOptions options;
  options.ic_requirement = 0.6;
  Result<FtSearchResult> result = f.Search(options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.nodes_explored, 0u);
  EXPECT_GT(result->stats.solutions_found, 0u);
  // The CPU constraint must fire somewhere: SR-in-High branches overload.
  EXPECT_GT(result->stats.cpu.count, 0u);
  EXPECT_GT(result->stats.cpu.MeanHeight(), 0.0);
}

TEST(FtSearchTest, ParallelSearchMatchesSequentialOptimum) {
  Fixture f;
  FtSearchOptions sequential;
  sequential.ic_requirement = 0.6;
  Result<FtSearchResult> seq = f.Search(sequential);
  ASSERT_TRUE(seq.ok());

  FtSearchOptions parallel = sequential;
  parallel.num_threads = 4;
  parallel.split_depth = 2;
  Result<FtSearchResult> par = f.Search(parallel);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(par->outcome, SearchOutcome::kOptimal);
  EXPECT_NEAR(par->best_cost, seq->best_cost, 1.0);
  EXPECT_NEAR(par->best_ic, seq->best_ic, 1e-9);
}

TEST(FtSearchTest, GreedySeedMakesTimeoutsFeasible) {
  // With an immediate node budget, the seeded incumbent is still returned
  // as a feasible (SOL) strategy; without seeding the run is a bare TMO.
  Fixture f;
  FtSearchOptions options;
  options.ic_requirement = 0.6;
  options.node_limit = 1;

  options.seed_greedy = true;
  Result<FtSearchResult> seeded = f.Search(options);
  ASSERT_TRUE(seeded.ok());
  EXPECT_EQ(seeded->outcome, SearchOutcome::kFeasible);
  ASSERT_TRUE(seeded->strategy.has_value());
  EXPECT_TRUE(metrics::CheckStrategyConstraints(f.graph, f.space, f.rates, f.placement,
                                                *seeded->strategy, f.cluster, 0.6)
                  .ok());

  options.seed_greedy = false;
  Result<FtSearchResult> bare = f.Search(options);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->outcome, SearchOutcome::kTimeout);
}

TEST(FtSearchTest, TightAndLooseIcBoundsAgreeOnRandomApps) {
  appgen::GeneratorOptions generator;
  generator.num_pes = 8;
  generator.num_hosts = 4;
  for (uint64_t seed : {11u, 12u, 13u}) {
    Result<appgen::GeneratedApplication> app =
        appgen::GenerateApplication(generator, seed);
    ASSERT_TRUE(app.ok());
    auto rates =
        ExpectedRates::Compute(app->descriptor.graph, app->descriptor.input_space);
    ASSERT_TRUE(rates.ok());
    FtSearchOptions tight;
    tight.ic_requirement = 0.55;
    FtSearchOptions loose = tight;
    loose.tight_ic_bound = false;
    auto a = RunFtSearch(app->descriptor.graph, app->descriptor.input_space, *rates,
                         app->placement, app->cluster, tight);
    auto b = RunFtSearch(app->descriptor.graph, app->descriptor.input_space, *rates,
                         app->placement, app->cluster, loose);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->outcome, b->outcome) << "seed=" << seed;
    if (a->strategy.has_value() && b->strategy.has_value()) {
      EXPECT_NEAR(a->best_cost, b->best_cost, 1e-6 * a->best_cost) << "seed=" << seed;
    }
    // The tight bound never explores more nodes than the loose one.
    EXPECT_LE(a->stats.nodes_explored, b->stats.nodes_explored) << "seed=" << seed;
  }
}

TEST(FtSearchTest, OutcomeNames) {
  EXPECT_STREQ(SearchOutcomeName(SearchOutcome::kOptimal), "BST");
  EXPECT_STREQ(SearchOutcomeName(SearchOutcome::kFeasible), "SOL");
  EXPECT_STREQ(SearchOutcomeName(SearchOutcome::kInfeasible), "NUL");
  EXPECT_STREQ(SearchOutcomeName(SearchOutcome::kTimeout), "TMO");
}

// --------------------------------------------------------------------------
// Property sweep over generated applications: every solution FT-Search
// returns satisfies the full constraint system, and the promised IC is a
// certified lower bound.
// --------------------------------------------------------------------------

class FtSearchPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(FtSearchPropertyTest, SolutionsSatisfyAllConstraints) {
  appgen::GeneratorOptions generator;
  generator.num_pes = 10;
  generator.num_hosts = 5;
  Result<appgen::GeneratedApplication> app =
      appgen::GenerateApplication(generator, GetParam());
  ASSERT_TRUE(app.ok()) << app.status().ToString();
  auto rates = ExpectedRates::Compute(app->descriptor.graph, app->descriptor.input_space);
  ASSERT_TRUE(rates.ok());

  for (double ic : {0.4, 0.6}) {
    FtSearchOptions options;
    options.ic_requirement = ic;
    options.time_limit_seconds = 20.0;
    Result<FtSearchResult> result =
        RunFtSearch(app->descriptor.graph, app->descriptor.input_space, *rates,
                    app->placement, app->cluster, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (!result->strategy.has_value()) continue;  // NUL is legitimate
    EXPECT_TRUE(metrics::CheckStrategyConstraints(
                    app->descriptor.graph, app->descriptor.input_space, *rates,
                    app->placement, *result->strategy, app->cluster, ic)
                    .ok())
        << "seed=" << GetParam() << " ic=" << ic;
    EXPECT_GE(result->best_ic, ic - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtSearchPropertyTest,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace laar::ftsearch
