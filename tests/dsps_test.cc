#include <cmath>

#include <gtest/gtest.h>

#include "laar/dsps/stream_simulation.h"
#include "laar/dsps/trace.h"
#include "laar/model/descriptor.h"
#include "laar/model/placement.h"
#include "laar/strategy/activation_strategy.h"
#include "laar/strategy/baselines.h"

namespace laar::dsps {
namespace {

using model::ApplicationDescriptor;
using model::Cluster;
using model::ComponentId;
using model::ReplicaPlacement;
using model::SourceRateSet;
using strategy::ActivationStrategy;

constexpr double kHz = 1e9;

/// source -> pe0 -> pe1 -> sink with configurable selectivity and per-tuple
/// cost (seconds at 1 GHz), rates {low, high} with probabilities {.8, .2}.
struct Fixture {
  ApplicationDescriptor app;
  Cluster cluster = Cluster::Homogeneous(2, kHz);
  ReplicaPlacement placement{0, 2};
  ComponentId source, pe0, pe1, sink;

  explicit Fixture(double low = 4.0, double high = 8.0, double sel0 = 1.0,
                   double sel1 = 1.0, double cost_seconds = 0.1) {
    source = app.graph.AddSource("s");
    pe0 = app.graph.AddPe("p0");
    pe1 = app.graph.AddPe("p1");
    sink = app.graph.AddSink("k");
    EXPECT_TRUE(app.graph.AddEdge(source, pe0, sel0, cost_seconds * kHz).ok());
    EXPECT_TRUE(app.graph.AddEdge(pe0, pe1, sel1, cost_seconds * kHz).ok());
    EXPECT_TRUE(app.graph.AddEdge(pe1, sink, 1.0, 0.0).ok());
    EXPECT_TRUE(app.graph.Validate().ok());
    SourceRateSet r;
    r.source = source;
    r.rates = {low, high};
    r.labels = {"Low", "High"};
    r.probabilities = {0.8, 0.2};
    EXPECT_TRUE(app.input_space.AddSource(r).ok());
    EXPECT_TRUE(app.Validate().ok());
    placement = ReplicaPlacement(app.graph.num_components(), 2);
    EXPECT_TRUE(placement.Assign(pe0, 0, 0).ok());
    EXPECT_TRUE(placement.Assign(pe0, 1, 1).ok());
    EXPECT_TRUE(placement.Assign(pe1, 0, 0).ok());
    EXPECT_TRUE(placement.Assign(pe1, 1, 1).ok());
  }

  /// One active replica per PE, spread across both hosts (pe0 on host 0,
  /// pe1 on host 1) so the deployment is never overloaded — the paper's NR
  /// shape.
  ActivationStrategy SingleReplica() const {
    ActivationStrategy s(app.graph.num_components(), 2, app.input_space.num_configs());
    for (model::ConfigId c = 0; c < app.input_space.num_configs(); ++c) {
      s.SetActive(pe0, 1, c, false);
      s.SetActive(pe1, 0, c, false);
    }
    return s;
  }
};

TEST(StreamSimulationTest, SteadyStateProcessesEverything) {
  Fixture f;
  auto trace = InputTrace::Step(0, 1, 50.0, 100.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  ActivationStrategy nr = f.SingleReplica();
  StreamSimulation simulation(f.app, f.cluster, f.placement, nr, *trace, options);
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  // 50 s at 4 t/s + 50 s at 8 t/s = 600 source tuples; all should flow
  // through to the sink (minus at most a couple in flight at the horizon).
  EXPECT_NEAR(static_cast<double>(m.source_tuples), 600.0, 2.0);
  EXPECT_GE(m.sink_tuples, m.source_tuples - 4);
  EXPECT_EQ(m.dropped_tuples, 0u);
  // Each PE processed every tuple exactly once (logical count).
  EXPECT_GE(m.pe_processed[f.pe0], m.source_tuples - 2);
  EXPECT_GE(m.pe_processed[f.pe1], m.source_tuples - 4);
}

TEST(StreamSimulationTest, CpuAccountingMatchesWork) {
  Fixture f;
  auto trace = InputTrace::Step(0, 1, 50.0, 100.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  ActivationStrategy nr = f.SingleReplica();
  StreamSimulation simulation(f.app, f.cluster, f.placement, nr, *trace, options);
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  // ~600 tuples × 2 PEs × 0.1 s × 1e9 cycles/s.
  EXPECT_NEAR(m.TotalCpuCycles(), 600.0 * 2 * 0.1 * kHz, 0.02 * 600 * 2 * 0.1 * kHz);
  // Host cycles account the same total.
  EXPECT_NEAR(m.host_cycles[0] + m.host_cycles[1], m.TotalCpuCycles(), 1.0);
}

TEST(StreamSimulationTest, StaticReplicationDoublesCpuWhenNotSaturated) {
  Fixture f(/*low=*/2.0, /*high=*/4.0);  // fits even fully replicated
  auto trace = InputTrace::Step(0, 1, 50.0, 100.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;

  ActivationStrategy nr = f.SingleReplica();
  StreamSimulation nr_run(f.app, f.cluster, f.placement, nr, *trace, options);
  ASSERT_TRUE(nr_run.Run().ok());

  ActivationStrategy sr =
      strategy::MakeStaticReplication(f.app.graph, f.app.input_space, 2);
  StreamSimulation sr_run(f.app, f.cluster, f.placement, sr, *trace, options);
  ASSERT_TRUE(sr_run.Run().ok());

  EXPECT_NEAR(sr_run.metrics().TotalCpuCycles() / nr_run.metrics().TotalCpuCycles(), 2.0,
              0.05);
  // Replication must not duplicate sink output: only the primary forwards.
  EXPECT_NEAR(static_cast<double>(sr_run.metrics().sink_tuples),
              static_cast<double>(nr_run.metrics().sink_tuples), 4.0);
}

TEST(StreamSimulationTest, OverloadCausesQueueDropsAndReducedOutput) {
  Fixture f;  // High = 8 t/s saturates both hosts under SR
  auto trace = InputTrace::Step(0, 1, 50.0, 150.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  ActivationStrategy sr =
      strategy::MakeStaticReplication(f.app.graph, f.app.input_space, 2);
  StreamSimulation simulation(f.app, f.cluster, f.placement, sr, *trace, options);
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  EXPECT_GT(m.dropped_tuples, 0u);
  // Sink rate during High is capped by CPU: two ops share one host ->
  // 5 t/s each.
  const double peak_rate = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                       100.0, 150.0);
  EXPECT_NEAR(peak_rate, 5.0, 0.5);
}

TEST(StreamSimulationTest, SelectivityAccumulatorSemantics) {
  // sel0 = 0.5 downsamples by 2; sel1 = 1.5 upsamples by 1.5.
  Fixture f(/*low=*/4.0, /*high=*/4.0, /*sel0=*/0.5, /*sel1=*/1.5, /*cost=*/0.01);
  auto trace = InputTrace::Step(0, 1, 50.0, 100.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  ActivationStrategy nr = f.SingleReplica();
  StreamSimulation simulation(f.app, f.cluster, f.placement, nr, *trace, options);
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  // 400 source tuples -> 200 out of pe0 -> 300 out of pe1.
  EXPECT_NEAR(static_cast<double>(m.sink_tuples), 300.0, 4.0);
  EXPECT_NEAR(static_cast<double>(m.pe_processed[f.pe1]), 200.0, 4.0);
}

TEST(StreamSimulationTest, DynamicControlAdaptsDuringPeak) {
  // The quickstart scenario: LAAR-style strategy keeps output at the input
  // rate during High while SR cannot.
  Fixture f;
  auto trace = InputTrace::Step(0, 1, 50.0, 120.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;

  ActivationStrategy laar(f.app.graph.num_components(), 2, 2);
  laar.SetActive(f.pe0, 1, 1, false);  // High: one replica per PE,
  laar.SetActive(f.pe1, 0, 1, false);  // on different hosts
  StreamSimulation simulation(f.app, f.cluster, f.placement, laar, *trace, options);
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  const double peak_rate = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                       60.0, 120.0);
  EXPECT_NEAR(peak_rate, 8.0, 0.4);
  // Adaptation glitches may drop a few tuples, but not a flood.
  EXPECT_LE(m.dropped_tuples, 20u);
}

TEST(StreamSimulationTest, WithoutDynamicControlPeakSaturates) {
  Fixture f;
  auto trace = InputTrace::Step(0, 1, 50.0, 120.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  options.dynamic_control = false;  // stays in the Low activation state

  ActivationStrategy laar(f.app.graph.num_components(), 2, 2);
  laar.SetActive(f.pe0, 1, 1, false);
  laar.SetActive(f.pe1, 0, 1, false);
  StreamSimulation simulation(f.app, f.cluster, f.placement, laar, *trace, options);
  ASSERT_TRUE(simulation.Run().ok());
  // Both replicas stay active during High (the Low entry is all-active):
  // hosts saturate and output falls behind, like static replication.
  const SimulationMetrics& m = simulation.metrics();
  const double peak_rate = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                       60.0, 120.0);
  EXPECT_LT(peak_rate, 6.0);
  EXPECT_GT(m.dropped_tuples, 0u);
}

TEST(StreamSimulationTest, PermanentFailureOfOnlyReplicaSilencesPipeline) {
  Fixture f;
  auto trace = InputTrace::Step(0, 1, 50.0, 100.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  ActivationStrategy nr = f.SingleReplica();  // only replica 0 ever active
  StreamSimulation simulation(f.app, f.cluster, f.placement, nr, *trace, options);
  ASSERT_TRUE(simulation.InjectPermanentReplicaFailure(f.pe0, 0).ok());
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  // pe0's only active replica is dead and the secondary is never activated:
  // nothing flows.
  EXPECT_EQ(m.sink_tuples, 0u);
  EXPECT_EQ(m.pe_processed[f.pe0], 0u);
  EXPECT_EQ(m.pe_processed[f.pe1], 0u);
}

TEST(StreamSimulationTest, SecondaryTakesOverAfterPrimaryFails) {
  Fixture f(/*low=*/2.0, /*high=*/4.0);
  auto trace = InputTrace::Step(0, 1, 50.0, 100.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  ActivationStrategy sr =
      strategy::MakeStaticReplication(f.app.graph, f.app.input_space, 2);
  StreamSimulation simulation(f.app, f.cluster, f.placement, sr, *trace, options);
  // Replica 0 of pe0 (the initial primary) is dead from the start; the
  // active secondary is elected immediately at startup.
  ASSERT_TRUE(simulation.InjectPermanentReplicaFailure(f.pe0, 0).ok());
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  EXPECT_GE(m.sink_tuples, m.source_tuples - 4);
  EXPECT_GE(m.pe_processed[f.pe0], m.source_tuples - 2);
}

TEST(StreamSimulationTest, HostCrashDipsOutputThenRecovers) {
  Fixture f(/*low=*/2.0, /*high=*/4.0);
  auto trace = InputTrace::Step(0, 1, 200.0, 300.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  // pe0's only active replica lives on host 0; crashing it starves the
  // whole pipeline until recovery (the secondary is never activated in NR).
  ActivationStrategy nr = f.SingleReplica();
  StreamSimulation simulation(f.app, f.cluster, f.placement, nr, *trace, options);
  ASSERT_TRUE(simulation.ScheduleHostCrash(0, 100.0, 16.0).ok());
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  const double during = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                    101.0, 115.0);
  const double after = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                   130.0, 190.0);
  EXPECT_LT(during, 0.5);       // the only active replicas are dead
  EXPECT_NEAR(after, 2.0, 0.3); // recovered
  EXPECT_GT(m.sink_tuples, 0u);
}

TEST(StreamSimulationTest, OverlappingCrashWindowsDoNotReviveEarly) {
  // Regression: two crash windows on one host overlap — the first window's
  // recovery timer must not bring the host back while the second (longer)
  // window is still open. Before crash epochs, the t=116 recovery revived
  // the host even though the second crash held it down until t=135.
  Fixture f(/*low=*/2.0, /*high=*/4.0);
  auto trace = InputTrace::Step(0, 1, 200.0, 300.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  ActivationStrategy nr = f.SingleReplica();
  StreamSimulation simulation(f.app, f.cluster, f.placement, nr, *trace, options);
  ASSERT_TRUE(simulation.ScheduleHostCrash(0, 100.0, 16.0).ok());  // ends 116
  ASSERT_TRUE(simulation.ScheduleHostCrash(0, 105.0, 30.0).ok());  // ends 135
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  const double between = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                     118.0, 133.0);
  const double after = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                   145.0, 195.0);
  EXPECT_LT(between, 0.5) << "host revived by the first crash's stale timer";
  EXPECT_NEAR(after, 2.0, 0.3);
}

TEST(StreamSimulationTest, LaterShorterCrashDoesNotTruncateOutage) {
  // The mirror case: a second, shorter window inside a longer one must not
  // shorten it — windows merge to the furthest end (t=130), they are never
  // replaced.
  Fixture f(/*low=*/2.0, /*high=*/4.0);
  auto trace = InputTrace::Step(0, 1, 200.0, 300.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  ActivationStrategy nr = f.SingleReplica();
  StreamSimulation simulation(f.app, f.cluster, f.placement, nr, *trace, options);
  ASSERT_TRUE(simulation.ScheduleHostCrash(0, 100.0, 30.0).ok());  // ends 130
  ASSERT_TRUE(simulation.ScheduleHostCrash(0, 110.0, 5.0).ok());   // ends 115
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  const double between = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                     117.0, 128.0);
  const double after = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                   140.0, 195.0);
  EXPECT_LT(between, 0.5) << "short inner crash truncated the outer window";
  EXPECT_NEAR(after, 2.0, 0.3);
}

TEST(StreamSimulationTest, BackToBackCrashesEachDipAndRecover) {
  Fixture f(/*low=*/2.0, /*high=*/4.0);
  auto trace = InputTrace::Step(0, 1, 200.0, 300.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  ActivationStrategy nr = f.SingleReplica();
  StreamSimulation simulation(f.app, f.cluster, f.placement, nr, *trace, options);
  ASSERT_TRUE(simulation.ScheduleHostCrash(0, 80.0, 10.0).ok());
  ASSERT_TRUE(simulation.ScheduleHostCrash(0, 120.0, 10.0).ok());
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  const double first = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                   81.0, 89.0);
  const double middle = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                    100.0, 118.0);
  const double second = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                    121.0, 129.0);
  const double last = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                  140.0, 195.0);
  EXPECT_LT(first, 0.5);
  EXPECT_NEAR(middle, 2.0, 0.4);  // recovered between the two outages
  EXPECT_LT(second, 0.5);
  EXPECT_NEAR(last, 2.0, 0.3);
}

TEST(StreamSimulationTest, CrashDuringResyncRestartsTheOutage) {
  // The second crash lands while the host's replicas are still resyncing
  // from the first recovery: the pending resync must be invalidated and the
  // full outage + resync served again.
  Fixture f(/*low=*/2.0, /*high=*/4.0);
  auto trace = InputTrace::Step(0, 1, 200.0, 300.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  ActivationStrategy nr = f.SingleReplica();
  StreamSimulation simulation(f.app, f.cluster, f.placement, nr, *trace, options);
  ASSERT_TRUE(simulation.ScheduleHostCrash(0, 100.0, 10.0).ok());  // resync 110-110.5
  ASSERT_TRUE(simulation.ScheduleHostCrash(0, 110.2, 10.0).ok());  // mid-resync
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  const double during = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                    112.0, 119.0);
  const double after = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                   130.0, 195.0);
  EXPECT_LT(during, 0.5);
  EXPECT_NEAR(after, 2.0, 0.3);
}

TEST(StreamSimulationTest, CrashOfLastAliveReplicaSilencesUntilRecovery) {
  // Overlapping outages of both hosts kill every replica of every PE; the
  // pipeline must go silent (primary = none) and come back once hosts
  // return.
  Fixture f(/*low=*/2.0, /*high=*/4.0);
  auto trace = InputTrace::Step(0, 1, 200.0, 300.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  ActivationStrategy sr =
      strategy::MakeStaticReplication(f.app.graph, f.app.input_space, 2);
  StreamSimulation simulation(f.app, f.cluster, f.placement, sr, *trace, options);
  ASSERT_TRUE(simulation.ScheduleHostCrash(0, 100.0, 16.0).ok());
  ASSERT_TRUE(simulation.ScheduleHostCrash(1, 105.0, 16.0).ok());
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  const double blackout = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                      107.0, 115.0);
  const double after = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                   130.0, 195.0);
  EXPECT_LT(blackout, 0.5);
  EXPECT_NEAR(after, 2.0, 0.3);
}

TEST(StreamSimulationTest, RecoveryAfterTraceEndIsClean) {
  // The crash window extends past the trace horizon; the run must still
  // terminate and account the pre-crash output.
  Fixture f(/*low=*/2.0, /*high=*/4.0);
  auto trace = InputTrace::Step(0, 1, 50.0, 100.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  ActivationStrategy nr = f.SingleReplica();
  StreamSimulation simulation(f.app, f.cluster, f.placement, nr, *trace, options);
  ASSERT_TRUE(simulation.ScheduleHostCrash(0, 90.0, 60.0).ok());
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  const double before = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                    10.0, 49.0);
  EXPECT_NEAR(before, 2.0, 0.3);
  EXPECT_GT(m.sink_tuples, 0u);
  ASSERT_FALSE(m.crashed_hosts.empty());
  EXPECT_EQ(m.crashed_hosts.back(), 0);
}

TEST(StreamSimulationTest, HostRecoveryDoesNotResurrectPermanentFailures) {
  // A worst-case-injected replica lives on a host that crashes and
  // recovers; recovery must not bring the permanently failed replica back.
  Fixture f(/*low=*/2.0, /*high=*/4.0);
  auto trace = InputTrace::Step(0, 1, 50.0, 100.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  ActivationStrategy nr = f.SingleReplica();  // pe0 replica 0 is the only path
  StreamSimulation simulation(f.app, f.cluster, f.placement, nr, *trace, options);
  ASSERT_TRUE(simulation.InjectPermanentReplicaFailure(f.pe0, 0).ok());
  ASSERT_TRUE(simulation.ScheduleHostCrash(0, 10.0, 5.0).ok());
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  EXPECT_EQ(m.pe_processed[f.pe0], 0u);
  EXPECT_EQ(m.sink_tuples, 0u);
}

TEST(StreamSimulationTest, FailoverReelectsAwayFromResyncingPrimary) {
  // The primary's host blips (crash shorter than the failover window) and
  // the replica comes back resyncing. Heartbeat-loss failover fires while
  // it is alive-but-resyncing: the healthy active secondary must be elected
  // instead of the seated replica blocking the PE for its whole resync.
  Fixture f(/*low=*/2.0, /*high=*/4.0);
  auto trace = InputTrace::Step(0, 1, 200.0, 300.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  options.resync_latency_seconds = 20.0;
  ActivationStrategy sr =
      strategy::MakeStaticReplication(f.app.graph, f.app.input_space, 2);
  StreamSimulation simulation(f.app, f.cluster, f.placement, sr, *trace, options);
  ASSERT_TRUE(simulation.ScheduleHostCrash(0, 100.0, 0.5).ok());
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  // Failover at t=101 elects the host-1 secondaries; output resumes far
  // before the t=120.5 resync completion.
  const double resumed = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                     103.0, 118.0);
  EXPECT_NEAR(resumed, 2.0, 0.4)
      << "resyncing primary blocked re-election of the healthy secondary";
}

TEST(StreamSimulationTest, ResyncingReplicaIsNotElectedPrimary) {
  // Both replicas die; one recovers first but must only take the primary
  // seat after its resync completes, never during it.
  Fixture f(/*low=*/2.0, /*high=*/4.0);
  auto trace = InputTrace::Step(0, 1, 200.0, 300.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  options.resync_latency_seconds = 10.0;
  ActivationStrategy sr =
      strategy::MakeStaticReplication(f.app.graph, f.app.input_space, 2);
  StreamSimulation simulation(f.app, f.cluster, f.placement, sr, *trace, options);
  ASSERT_TRUE(simulation.ScheduleHostCrash(0, 100.0, 16.0).ok());  // back 116
  ASSERT_TRUE(simulation.ScheduleHostCrash(1, 100.0, 2.0).ok());   // back 102
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  // Host 1 is up at t=102 but resyncs until t=112: the PE stays silent.
  const double resync_window = SimulationMetrics::MeanRate(
      m.sink_series, m.bucket_seconds, 104.0, 111.0);
  const double after = SimulationMetrics::MeanRate(m.sink_series, m.bucket_seconds,
                                                   114.0, 195.0);
  EXPECT_LT(resync_window, 0.5) << "a resyncing replica processed as primary";
  EXPECT_NEAR(after, 2.0, 0.3);
}

TEST(StreamSimulationTest, ReplicaSeriesRecordsWhenEnabled) {
  Fixture f;
  auto trace = InputTrace::Step(0, 1, 20.0, 40.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  options.record_replica_series = true;
  ActivationStrategy sr =
      strategy::MakeStaticReplication(f.app.graph, f.app.input_space, 2);
  StreamSimulation simulation(f.app, f.cluster, f.placement, sr, *trace, options);
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  ASSERT_FALSE(m.replica_series.empty());
  double total = 0.0;
  for (double v : m.replica_series[f.pe0][0]) total += v;
  EXPECT_NEAR(total, m.replicas[f.pe0][0].cpu_cycles, 1.0);
}

TEST(StreamSimulationTest, RunIsSingleShot) {
  Fixture f;
  auto trace = InputTrace::Step(0, 1, 5.0, 10.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  ActivationStrategy nr = f.SingleReplica();
  StreamSimulation simulation(f.app, f.cluster, f.placement, nr, *trace, options);
  ASSERT_TRUE(simulation.Run().ok());
  EXPECT_FALSE(simulation.Run().ok());
}


TEST(StreamSimulationTest, LoadSheddingCapsLatencyAtCompletenessCost) {
  // Saturating the SR deployment with and without the shedder: shedding
  // keeps queues short (low latency) while losing more tuples overall.
  Fixture f;
  auto trace = InputTrace::Step(0, 1, 20.0, 140.0);
  ASSERT_TRUE(trace.ok());
  ActivationStrategy sr =
      strategy::MakeStaticReplication(f.app.graph, f.app.input_space, 2);

  RuntimeOptions queues;
  StreamSimulation with_queues(f.app, f.cluster, f.placement, sr, *trace, queues);
  ASSERT_TRUE(with_queues.Run().ok());

  RuntimeOptions shedding;
  shedding.enable_load_shedding = true;
  shedding.shed_threshold = 0.3;
  StreamSimulation with_shedding(f.app, f.cluster, f.placement, sr, *trace, shedding);
  ASSERT_TRUE(with_shedding.Run().ok());

  ASSERT_GT(with_queues.metrics().sink_latency.count(), 0u);
  ASSERT_GT(with_shedding.metrics().sink_latency.count(), 0u);
  EXPECT_LT(with_shedding.metrics().sink_latency.Percentile(99),
            with_queues.metrics().sink_latency.Percentile(99));
  EXPECT_GT(with_shedding.metrics().dropped_tuples,
            with_queues.metrics().dropped_tuples / 2);
  // Throughput during saturation is CPU-bound either way: sink counts stay
  // in the same ballpark.
  EXPECT_NEAR(static_cast<double>(with_shedding.metrics().sink_tuples),
              static_cast<double>(with_queues.metrics().sink_tuples),
              0.25 * static_cast<double>(with_queues.metrics().sink_tuples));
}

TEST(StreamSimulationTest, SheddingIdleBelowThreshold) {
  // An unsaturated run never crosses the shed threshold: zero drops.
  Fixture f(/*low=*/2.0, /*high=*/4.0);
  auto trace = InputTrace::Step(0, 1, 20.0, 60.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  options.enable_load_shedding = true;
  ActivationStrategy nr = f.SingleReplica();
  StreamSimulation simulation(f.app, f.cluster, f.placement, nr, *trace, options);
  ASSERT_TRUE(simulation.Run().ok());
  EXPECT_EQ(simulation.metrics().dropped_tuples, 0u);
  EXPECT_GE(simulation.metrics().sink_tuples, simulation.metrics().source_tuples - 4);
}

TEST(InputTraceTest, SegmentsAndQueries) {
  auto trace = InputTrace::Alternating(0, 10.0, 1, 5.0, 3);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->segments().size(), 6u);
  EXPECT_DOUBLE_EQ(trace->TotalDuration(), 45.0);
  EXPECT_EQ(trace->ConfigAt(0.0), 0);
  EXPECT_EQ(trace->ConfigAt(12.0), 1);
  EXPECT_EQ(trace->ConfigAt(15.0), 0);
  EXPECT_EQ(trace->ConfigAt(44.9), 1);
  EXPECT_EQ(trace->ConfigAt(100.0), 1);  // past the end -> last segment
  EXPECT_DOUBLE_EQ(trace->TimeIn(1), 15.0);
  EXPECT_DOUBLE_EQ(trace->TimeIn(0), 30.0);
}

TEST(SimulationMetricsTest, MeanRateWeightsBoundaryBucketsByOverlap) {
  // Buckets of 1 s with distinct counts; a window ending mid-bucket must
  // weight the partial bucket by its overlap fraction, not full width.
  const std::vector<double> series = {10.0, 20.0, 30.0, 40.0};
  // [1.0, 2.5): 20 + 30 * 0.5 over 1.5 s. Full-width accounting would give
  // (20 + 30) / 1.5 = 33.33.
  EXPECT_NEAR(SimulationMetrics::MeanRate(series, 1.0, 1.0, 2.5), 35.0 / 1.5, 1e-12);
  // [0.25, 0.75): interior of one bucket — still that bucket's rate.
  EXPECT_NEAR(SimulationMetrics::MeanRate(series, 1.0, 0.25, 0.75), 10.0, 1e-12);
  // [1.5, 3.5): half of bucket 1, all of bucket 2, half of bucket 3.
  EXPECT_NEAR(SimulationMetrics::MeanRate(series, 1.0, 1.5, 3.5),
              (20.0 * 0.5 + 30.0 + 40.0 * 0.5) / 2.0, 1e-12);
  // Bucket-aligned windows are unchanged by the overlap weighting.
  EXPECT_NEAR(SimulationMetrics::MeanRate(series, 1.0, 1.0, 3.0), 25.0, 1e-12);
}

TEST(SimulationMetricsTest, MeanRateClampsWindowToSeriesCoverage) {
  const std::vector<double> series = {10.0, 20.0, 30.0, 40.0};
  // Window reaching past the recorded range: only the covered part counts,
  // and the denominator is the covered duration — not the full window.
  EXPECT_NEAR(SimulationMetrics::MeanRate(series, 1.0, 3.5, 10.0), 40.0, 1e-12);
  EXPECT_NEAR(SimulationMetrics::MeanRate(series, 1.0, -2.0, 1.0), 10.0, 1e-12);
  // Entirely outside the range (or degenerate): zero.
  EXPECT_EQ(SimulationMetrics::MeanRate(series, 1.0, 4.0, 9.0), 0.0);
  EXPECT_EQ(SimulationMetrics::MeanRate(series, 1.0, 2.0, 2.0), 0.0);
  EXPECT_EQ(SimulationMetrics::MeanRate({}, 1.0, 0.0, 1.0), 0.0);
}

TEST(InputTraceTest, SampleEmitsNoDegenerateFinalSegment) {
  model::InputSpace space;
  SourceRateSet r;
  r.source = 0;
  r.rates = {1.0, 2.0};
  r.probabilities = {0.5, 0.5};
  ASSERT_TRUE(space.AddSource(r).ok());
  // 0.1 accumulated 10 times lands at 0.9999999999999999 < 1.0; the FP
  // residue used to become an extra ~1e-16 s segment.
  auto trace = InputTrace::Sample(space, 1.0, 0.1, 7);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->segments().size(), 10u);
  EXPECT_NEAR(trace->TotalDuration(), 1.0, 1e-9);
  for (const TraceSegment& segment : trace->segments()) {
    EXPECT_GT(segment.duration, 1e-6);
  }
  // Also at larger scales, and when total is not a segment multiple (the
  // final partial segment is real, not residue).
  for (const double total : {300.0, 12.34, 60.0}) {
    auto sampled = InputTrace::Sample(space, total, 0.1, 11);
    ASSERT_TRUE(sampled.ok());
    EXPECT_NEAR(sampled->TotalDuration(), total, 1e-6);
    for (const TraceSegment& segment : sampled->segments()) {
      EXPECT_GT(segment.duration, 1e-6);
    }
  }
}

TEST(InputTraceTest, RejectsBadSegments) {
  InputTrace trace;
  EXPECT_FALSE(trace.Append(0.0, 0).ok());
  EXPECT_FALSE(trace.Append(-1.0, 0).ok());
  EXPECT_FALSE(trace.Append(1.0, -1).ok());
  EXPECT_FALSE(InputTrace::Step(0, 1, 10.0, 5.0).ok());
  EXPECT_FALSE(InputTrace::Alternating(0, 1.0, 1, 1.0, 0).ok());
}

// ------------------------------------------------------- loss provenance
//
// Every loss site attributes exactly one LossCause; `Run` already asserts
// ledger/scalar reconciliation on every simulation above, so these tests
// pin down *which* cause each scenario produces and that the causes stay
// mutually exclusive.

TEST(LossProvenanceTest, FailureFreeRunHasEmptyLedgerDespiteIgnoredTuples) {
  Fixture f;
  auto trace = InputTrace::Step(0, 1, 50.0, 100.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  ActivationStrategy nr = f.SingleReplica();
  StreamSimulation simulation(f.app, f.cluster, f.placement, nr, *trace, options);
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  // The deactivated replicas discard every offered tuple, but a discard the
  // strategy planned is not a loss: the ledger stays empty.
  uint64_t ignored = 0;
  for (const auto& per_pe : m.replicas) {
    for (const ReplicaMetrics& r : per_pe) ignored += r.tuples_ignored;
  }
  EXPECT_GT(ignored, 0u);
  EXPECT_TRUE(m.losses.empty());
  EXPECT_EQ(m.LostTuples(), 0u);
}

TEST(LossProvenanceTest, HostCrashAttributesCrashLossAndResyncGap) {
  Fixture f(/*low=*/2.0, /*high=*/4.0);
  auto trace = InputTrace::Step(0, 1, 200.0, 300.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  ActivationStrategy nr = f.SingleReplica();
  StreamSimulation simulation(f.app, f.cluster, f.placement, nr, *trace, options);
  ASSERT_TRUE(simulation.ScheduleHostCrash(0, 100.0, 16.0).ok());
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  // 16 s outage at ~2 t/s feeds the dead replica of pe0 directly; after
  // recovery the replica resyncs for 0.5 s and loses that input too.
  EXPECT_GT(m.crash_lost_tuples, 0u);
  EXPECT_GT(m.resync_lost_tuples, 0u);
  EXPECT_EQ(m.losses.TotalOf(obs::LossCause::kCrashLoss), m.crash_lost_tuples);
  EXPECT_EQ(m.losses.TotalOf(obs::LossCause::kResyncGap), m.resync_lost_tuples);
  EXPECT_EQ(m.losses.Total(), m.LostTuples());
  // The crash loss lands on the PEs, attributed to each one's dead copy.
  EXPECT_GT(m.losses.Count(f.pe0, obs::LossCause::kCrashLoss), 0u);
}

TEST(LossProvenanceTest, OrphanedOutputsDuringFailoverWindow) {
  Fixture f(/*low=*/2.0, /*high=*/4.0);
  auto trace = InputTrace::Step(0, 1, 200.0, 300.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  // Both replicas of both PEs active: when host 0 (holding the seated
  // primaries) crashes, the host-1 secondaries keep finishing tuples whose
  // outputs are suppressed with no primary copy to forward — orphans —
  // until the 1 s failover window elects them.
  ActivationStrategy all_active(f.app.graph.num_components(), 2,
                                f.app.input_space.num_configs());
  StreamSimulation simulation(f.app, f.cluster, f.placement, all_active, *trace,
                              options);
  ASSERT_TRUE(simulation.ScheduleHostCrash(0, 100.0, 16.0).ok());
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  EXPECT_GT(m.orphaned_tuples, 0u);
  EXPECT_EQ(m.losses.TotalOf(obs::LossCause::kOrphanedOutput), m.orphaned_tuples);
  // Orphans are bounded by the failover window: roughly rate × latency per
  // affected PE, nowhere near the full outage's losses.
  EXPECT_LT(m.orphaned_tuples, 20u);
  EXPECT_EQ(m.losses.Total(), m.LostTuples());
}

TEST(LossProvenanceTest, FailureFreeAllActiveRunStaysOrphanFree) {
  // In failure-free runs the seated primary is serviceable whenever any
  // secondary finishes a tuple, so the orphan path must never fire — this
  // is what keeps failure-free traces byte-identical to the pre-forensics
  // goldens.
  Fixture f;
  auto trace = InputTrace::Step(0, 1, 50.0, 100.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  ActivationStrategy all_active(f.app.graph.num_components(), 2,
                                f.app.input_space.num_configs());
  StreamSimulation simulation(f.app, f.cluster, f.placement, all_active, *trace,
                              options);
  ASSERT_TRUE(simulation.Run().ok());
  EXPECT_EQ(simulation.metrics().orphaned_tuples, 0u);
  EXPECT_EQ(simulation.metrics().crash_lost_tuples, 0u);
}

TEST(LossProvenanceTest, OverflowAndShedAreMutuallyExclusive) {
  // Overload pe0 (10 t/s against a 0.1 s/tuple budget) with shedding on:
  // the shedder discards a deterministic fraction above the threshold and
  // the tail drop catches the rest. The two tallies must partition
  // `dropped_tuples` exactly.
  Fixture f(/*low=*/10.0, /*high=*/12.0);
  auto trace = InputTrace::Step(0, 1, 50.0, 100.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  options.enable_load_shedding = true;
  options.shed_threshold = 0.5;
  ActivationStrategy nr = f.SingleReplica();
  StreamSimulation simulation(f.app, f.cluster, f.placement, nr, *trace, options);
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  EXPECT_GT(m.dropped_tuples, 0u);
  EXPECT_GT(m.shed_tuples, 0u);
  EXPECT_LE(m.shed_tuples, m.dropped_tuples);
  EXPECT_EQ(m.losses.TotalOf(obs::LossCause::kLoadShed), m.shed_tuples);
  EXPECT_EQ(m.losses.TotalOf(obs::LossCause::kQueueOverflow),
            m.dropped_tuples - m.shed_tuples);
  EXPECT_EQ(m.crash_lost_tuples, 0u);
  EXPECT_EQ(m.orphaned_tuples, 0u);
  EXPECT_EQ(m.losses.Total(), m.LostTuples());
}

TEST(InputTraceTest, ImprintProbabilitiesMatchesOccupancy) {
  model::InputSpace space;
  SourceRateSet r;
  r.source = 0;
  r.rates = {1.0, 2.0};
  r.probabilities = {0.5, 0.5};
  ASSERT_TRUE(space.AddSource(r).ok());
  auto trace = InputTrace::Alternating(0, 20.0, 1, 10.0, 2);
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(trace->ImprintProbabilities(&space).ok());
  EXPECT_NEAR(space.Probability(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(space.Probability(1), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace laar::dsps
