#include <vector>

#include <gtest/gtest.h>

#include "laar/sim/simulator.h"

namespace laar::sim {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(3.0, [&] { order.push_back(3); });
  simulator.ScheduleAt(1.0, [&] { order.push_back(1); });
  simulator.ScheduleAt(2.0, [&] { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(simulator.now(), 3.0);
  EXPECT_EQ(simulator.events_processed(), 3u);
}

TEST(SimulatorTest, EqualTimestampsFireInSchedulingOrder) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    simulator.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator simulator;
  double fired_at = -1.0;
  simulator.ScheduleAt(2.0, [&] {
    simulator.ScheduleAfter(0.5, [&] { fired_at = simulator.now(); });
  });
  simulator.Run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(SimulatorTest, PastTimesClampToNow) {
  Simulator simulator;
  double fired_at = -1.0;
  simulator.ScheduleAt(5.0, [&] {
    simulator.ScheduleAt(1.0, [&] { fired_at = simulator.now(); });
  });
  simulator.Run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
  Simulator other;
  other.ScheduleAfter(-3.0, [] {});
  other.Run();
  EXPECT_DOUBLE_EQ(other.now(), 0.0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator simulator;
  bool fired = false;
  const EventId id = simulator.ScheduleAt(1.0, [&] { fired = true; });
  simulator.Cancel(id);
  simulator.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(simulator.events_processed(), 0u);
}

TEST(SimulatorTest, CancelOneOfMany) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(1.0, [&] { order.push_back(1); });
  const EventId id = simulator.ScheduleAt(2.0, [&] { order.push_back(2); });
  simulator.ScheduleAt(3.0, [&] { order.push_back(3); });
  simulator.Cancel(id);
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SimulatorTest, RunUntilStopsAtHorizon) {
  Simulator simulator;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    simulator.ScheduleAt(t, [&fired, &simulator] { fired.push_back(simulator.now()); });
  }
  simulator.RunUntil(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(simulator.now(), 2.5);
  EXPECT_EQ(simulator.pending_events(), 2u);
  simulator.RunUntil(10.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_DOUBLE_EQ(simulator.now(), 10.0);
}

TEST(SimulatorTest, RunUntilAdvancesTimeWithEmptyQueue) {
  Simulator simulator;
  simulator.RunUntil(7.0);
  EXPECT_DOUBLE_EQ(simulator.now(), 7.0);
}

TEST(SimulatorTest, EventsCanScheduleChains) {
  Simulator simulator;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) simulator.ScheduleAfter(1.0, tick);
  };
  simulator.ScheduleAfter(1.0, tick);
  simulator.Run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(simulator.now(), 10.0);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator simulator;
  int fired = 0;
  simulator.ScheduleAt(1.0, [&] { ++fired; });
  simulator.ScheduleAt(2.0, [&] { ++fired; });
  EXPECT_TRUE(simulator.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(simulator.Step());
  EXPECT_FALSE(simulator.Step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelInsideEarlierEvent) {
  Simulator simulator;
  bool fired = false;
  EventId later = simulator.ScheduleAt(2.0, [&] { fired = true; });
  simulator.ScheduleAt(1.0, [&] { simulator.Cancel(later); });
  simulator.Run();
  EXPECT_FALSE(fired);
}

// Regression: cancelling an id that already fired used to leave a permanent
// tombstone in the old lazy-cancellation scheme, leaking memory and skewing
// pending_events() low for the rest of the run. The indexed heap makes it
// an exact no-op.
TEST(SimulatorTest, CancelAfterFireIsExactNoOp) {
  Simulator simulator;
  const EventId fired_id = simulator.ScheduleAt(1.0, [] {});
  simulator.ScheduleAt(2.0, [] {});
  simulator.RunUntil(1.5);
  EXPECT_EQ(simulator.pending_events(), 1u);
  EXPECT_FALSE(simulator.Cancel(fired_id));
  EXPECT_EQ(simulator.pending_events(), 1u);  // old engine reported 0 here
  EXPECT_FALSE(simulator.Reschedule(fired_id, 3.0));
  simulator.Run();
  EXPECT_EQ(simulator.events_processed(), 2u);
}

TEST(SimulatorTest, CancelReportsWhetherItRemoved) {
  Simulator simulator;
  const EventId id = simulator.ScheduleAt(1.0, [] {});
  EXPECT_TRUE(simulator.Cancel(id));
  EXPECT_FALSE(simulator.Cancel(id));
  EXPECT_FALSE(simulator.Cancel(kInvalidEvent));
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(SimulatorTest, RescheduleMovesEventBothDirections) {
  Simulator simulator;
  std::vector<int> order;
  const EventId a = simulator.ScheduleAt(5.0, [&] { order.push_back(1); });
  simulator.ScheduleAt(3.0, [&] { order.push_back(2); });
  const EventId c = simulator.ScheduleAt(1.0, [&] { order.push_back(3); });
  EXPECT_TRUE(simulator.Reschedule(a, 2.0));  // earlier
  EXPECT_TRUE(simulator.Reschedule(c, 9.0));  // later
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(simulator.now(), 9.0);
}

// A reschedule ties like a fresh schedule: at the new timestamp it fires
// after events already sitting there, however early it was scheduled
// originally.
TEST(SimulatorTest, RescheduleTieBreaksAsFreshSchedule) {
  Simulator simulator;
  std::vector<int> order;
  const EventId first = simulator.ScheduleAt(1.0, [&] { order.push_back(1); });
  simulator.ScheduleAt(4.0, [&] { order.push_back(2); });
  EXPECT_TRUE(simulator.Reschedule(first, 4.0));
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(SimulatorTest, ReschedulePastTimesClampToNow) {
  Simulator simulator;
  double fired_at = -1.0;
  EventId id = simulator.ScheduleAt(8.0, [&] { fired_at = simulator.now(); });
  simulator.ScheduleAt(5.0, [&] { simulator.Reschedule(id, 1.0); });
  simulator.Run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

// Exercises sift paths across the 4-ary layout boundaries: a few hundred
// equal-timestamp events interleaved with earlier/later ones must still
// fire in exact scheduling order.
TEST(SimulatorTest, ManyEqualTimestampsFireInSchedulingOrderAcrossArity) {
  Simulator simulator;
  std::vector<int> order;
  std::vector<EventId> cancelled;
  for (int i = 0; i < 300; ++i) {
    simulator.ScheduleAt(2.0, [&order, i] { order.push_back(i); });
    if (i % 7 == 0) {
      cancelled.push_back(simulator.ScheduleAt(1.0 + 0.001 * i, [&] {
        ADD_FAILURE() << "cancelled event fired";
      }));
    }
  }
  for (EventId id : cancelled) EXPECT_TRUE(simulator.Cancel(id));
  simulator.Run();
  ASSERT_EQ(order.size(), 300u);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, NextEventTimePeeksEarliestPending) {
  Simulator simulator;
  SimTime when = 0.0;
  EXPECT_FALSE(simulator.NextEventTime(&when));
  simulator.ScheduleAt(4.0, [] {});
  const EventId early = simulator.ScheduleAt(2.0, [] {});
  ASSERT_TRUE(simulator.NextEventTime(&when));
  EXPECT_DOUBLE_EQ(when, 2.0);
  simulator.Cancel(early);
  ASSERT_TRUE(simulator.NextEventTime(&when));
  EXPECT_DOUBLE_EQ(when, 4.0);
}

TEST(SimulatorTest, AdvanceInlineAccountsLikeAnEvent) {
  Simulator simulator;
  simulator.ScheduleAt(1.0, [&] {
    simulator.AdvanceInline(1.5);
    simulator.AdvanceInline(2.0);
  });
  simulator.ScheduleAt(3.0, [] {});
  simulator.Run();
  // One scheduled event + two inline advances + one trailing event.
  EXPECT_EQ(simulator.events_processed(), 4u);
  EXPECT_DOUBLE_EQ(simulator.now(), 3.0);
}

// Steady-state churn must recycle pooled slots instead of growing the
// slab: after warm-up, slots_created stays flat while reuses climb. Run
// under ASan (-DLAAR_SANITIZE=address) this also proves the pool's
// payload lifetimes are clean.
TEST(SimulatorTest, PoolRecyclesSlotsUnderChurn) {
  Simulator simulator;
  int fired = 0;
  std::vector<EventId> pending;
  // Warm-up: build up a working set, cancel half, fire the rest.
  for (int round = 0; round < 3; ++round) {
    pending.clear();
    for (int i = 0; i < 64; ++i) {
      pending.push_back(
          simulator.ScheduleAfter(0.001 * (i + 1), [&fired] { ++fired; }));
    }
    for (size_t i = 0; i < pending.size(); i += 2) simulator.Cancel(pending[i]);
    simulator.Run();
  }
  const uint64_t created_after_warmup = simulator.stats().slots_created;
  const uint64_t reuses_before = simulator.stats().pool_reuses;
  for (int round = 0; round < 50; ++round) {
    pending.clear();
    for (int i = 0; i < 64; ++i) {
      pending.push_back(
          simulator.ScheduleAfter(0.001 * (i + 1), [&fired] { ++fired; }));
    }
    for (size_t i = 0; i < pending.size(); i += 2) {
      simulator.Reschedule(pending[i], simulator.now() + 0.5);
    }
    for (size_t i = 1; i < pending.size(); i += 4) simulator.Cancel(pending[i]);
    simulator.Run();
  }
  EXPECT_EQ(simulator.stats().slots_created, created_after_warmup);
  EXPECT_GT(simulator.stats().pool_reuses, reuses_before);
  EXPECT_EQ(simulator.stats().boxed_callbacks, 0u);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(SimulatorTest, OversizeCallbacksAreBoxedAndCounted) {
  Simulator simulator;
  struct Big {
    char payload[EventCallback::kInlineBytes + 8] = {};
  };
  Big big;
  big.payload[0] = 42;
  char seen = 0;
  simulator.ScheduleAt(1.0, [big, &seen] { seen = big.payload[0]; });
  EXPECT_EQ(simulator.stats().boxed_callbacks, 1u);
  simulator.Run();
  EXPECT_EQ(seen, 42);
  // Small trivially-copyable captures stay inline.
  simulator.ScheduleAt(2.0, [&seen] { seen = 7; });
  simulator.Run();
  EXPECT_EQ(seen, 7);
  EXPECT_EQ(simulator.stats().boxed_callbacks, 1u);
}

}  // namespace
}  // namespace laar::sim
