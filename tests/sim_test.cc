#include <vector>

#include <gtest/gtest.h>

#include "laar/sim/simulator.h"

namespace laar::sim {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(3.0, [&] { order.push_back(3); });
  simulator.ScheduleAt(1.0, [&] { order.push_back(1); });
  simulator.ScheduleAt(2.0, [&] { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(simulator.now(), 3.0);
  EXPECT_EQ(simulator.events_processed(), 3u);
}

TEST(SimulatorTest, EqualTimestampsFireInSchedulingOrder) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    simulator.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator simulator;
  double fired_at = -1.0;
  simulator.ScheduleAt(2.0, [&] {
    simulator.ScheduleAfter(0.5, [&] { fired_at = simulator.now(); });
  });
  simulator.Run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(SimulatorTest, PastTimesClampToNow) {
  Simulator simulator;
  double fired_at = -1.0;
  simulator.ScheduleAt(5.0, [&] {
    simulator.ScheduleAt(1.0, [&] { fired_at = simulator.now(); });
  });
  simulator.Run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
  Simulator other;
  other.ScheduleAfter(-3.0, [] {});
  other.Run();
  EXPECT_DOUBLE_EQ(other.now(), 0.0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator simulator;
  bool fired = false;
  const EventId id = simulator.ScheduleAt(1.0, [&] { fired = true; });
  simulator.Cancel(id);
  simulator.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(simulator.events_processed(), 0u);
}

TEST(SimulatorTest, CancelOneOfMany) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(1.0, [&] { order.push_back(1); });
  const EventId id = simulator.ScheduleAt(2.0, [&] { order.push_back(2); });
  simulator.ScheduleAt(3.0, [&] { order.push_back(3); });
  simulator.Cancel(id);
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SimulatorTest, RunUntilStopsAtHorizon) {
  Simulator simulator;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    simulator.ScheduleAt(t, [&fired, &simulator] { fired.push_back(simulator.now()); });
  }
  simulator.RunUntil(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(simulator.now(), 2.5);
  EXPECT_EQ(simulator.pending_events(), 2u);
  simulator.RunUntil(10.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_DOUBLE_EQ(simulator.now(), 10.0);
}

TEST(SimulatorTest, RunUntilAdvancesTimeWithEmptyQueue) {
  Simulator simulator;
  simulator.RunUntil(7.0);
  EXPECT_DOUBLE_EQ(simulator.now(), 7.0);
}

TEST(SimulatorTest, EventsCanScheduleChains) {
  Simulator simulator;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) simulator.ScheduleAfter(1.0, tick);
  };
  simulator.ScheduleAfter(1.0, tick);
  simulator.Run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(simulator.now(), 10.0);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator simulator;
  int fired = 0;
  simulator.ScheduleAt(1.0, [&] { ++fired; });
  simulator.ScheduleAt(2.0, [&] { ++fired; });
  EXPECT_TRUE(simulator.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(simulator.Step());
  EXPECT_FALSE(simulator.Step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelInsideEarlierEvent) {
  Simulator simulator;
  bool fired = false;
  EventId later = simulator.ScheduleAt(2.0, [&] { fired = true; });
  simulator.ScheduleAt(1.0, [&] { simulator.Cancel(later); });
  simulator.Run();
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace laar::sim
