#include <gtest/gtest.h>

#include "laar/spl/spl_parser.h"
#include "laar/strategy/describe.h"

namespace laar::strategy {
namespace {

model::ApplicationDescriptor MakeApp() {
  auto app = spl::ParseApplication(R"(
application demo {
  source src { rate Low = 4 @ 0.8; rate High = 8 @ 0.2; }
  pe alpha;
  pe beta;
  sink out;
  stream src -> alpha [cost = 1ms];
  stream alpha -> beta [cost = 1ms];
  stream beta -> out;
})");
  EXPECT_TRUE(app.ok());
  return std::move(*app);
}

TEST(DescribeTest, SummarizesPerConfig) {
  const auto app = MakeApp();
  ActivationStrategy s(app.graph.num_components(), 2, 2);
  s.SetActive(app.graph.Pes()[0], 1, 1, false);  // alpha sheds one in High
  const std::string text = Describe(app.graph, app.input_space, s);
  EXPECT_NE(text.find("config Low"), std::string::npos);
  EXPECT_NE(text.find("2 fully replicated, 0 single-replica"), std::string::npos);
  EXPECT_NE(text.find("1 fully replicated, 1 single-replica"), std::string::npos);
  EXPECT_NE(text.find("shedding a replica: alpha"), std::string::npos);
  EXPECT_EQ(text.find("UNCOVERED"), std::string::npos);
}

TEST(DescribeTest, FlagsUncoveredPes) {
  const auto app = MakeApp();
  ActivationStrategy s(app.graph.num_components(), 2, 2);
  s.SetAll(app.graph.Pes()[1], 0, false);
  const std::string text = Describe(app.graph, app.input_space, s);
  EXPECT_NE(text.find("1 UNCOVERED"), std::string::npos);
}

TEST(DescribeTest, DiffListsChanges) {
  const auto app = MakeApp();
  ActivationStrategy a(app.graph.num_components(), 2, 2);
  ActivationStrategy b = a;
  EXPECT_EQ(Diff(app.graph, app.input_space, a, b), "identical strategies\n");

  b.SetActive(app.graph.Pes()[0], 1, 1, false);
  b.SetActive(app.graph.Pes()[1], 0, 0, false);
  const std::string diff = Diff(app.graph, app.input_space, a, b);
  EXPECT_NE(diff.find("2 activation changes"), std::string::npos);
  EXPECT_NE(diff.find("alpha replica 1 in High: active -> idle"), std::string::npos);
  EXPECT_NE(diff.find("beta replica 0 in Low: active -> idle"), std::string::npos);

  ActivationStrategy other(app.graph.num_components(), 2, 3);
  EXPECT_NE(Diff(app.graph, app.input_space, a, other).find("different dimensions"),
            std::string::npos);
}

}  // namespace
}  // namespace laar::strategy
