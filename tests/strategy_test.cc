#include <cstdio>

#include <gtest/gtest.h>

#include "laar/metrics/cost.h"
#include "laar/model/rates.h"
#include "laar/strategy/activation_strategy.h"
#include "laar/strategy/baselines.h"

namespace laar::strategy {
namespace {

using model::ApplicationGraph;
using model::Cluster;
using model::ComponentId;
using model::ConfigId;
using model::ExpectedRates;
using model::InputSpace;
using model::ReplicaPlacement;
using model::SourceRateSet;

struct Fixture {
  ApplicationGraph graph;
  InputSpace space;
  ComponentId source, pe0, pe1, sink;
};

Fixture MakePipeline(double cost0 = 1e8, double cost1 = 1e8) {
  Fixture f;
  f.source = f.graph.AddSource("s");
  f.pe0 = f.graph.AddPe("p0");
  f.pe1 = f.graph.AddPe("p1");
  f.sink = f.graph.AddSink("k");
  EXPECT_TRUE(f.graph.AddEdge(f.source, f.pe0, 1.0, cost0).ok());
  EXPECT_TRUE(f.graph.AddEdge(f.pe0, f.pe1, 1.0, cost1).ok());
  EXPECT_TRUE(f.graph.AddEdge(f.pe1, f.sink, 1.0, 0.0).ok());
  EXPECT_TRUE(f.graph.Validate().ok());
  SourceRateSet rates;
  rates.source = f.source;
  rates.rates = {4.0, 8.0};
  rates.labels = {"Low", "High"};
  rates.probabilities = {0.8, 0.2};
  EXPECT_TRUE(f.space.AddSource(rates).ok());
  return f;
}

ReplicaPlacement MakePairedPlacement(const Fixture& f) {
  // Fig. 2a: host0 = {p0 r0, p1 r0}, host1 = {p0 r1, p1 r1}.
  ReplicaPlacement p(f.graph.num_components(), 2);
  EXPECT_TRUE(p.Assign(f.pe0, 0, 0).ok());
  EXPECT_TRUE(p.Assign(f.pe0, 1, 1).ok());
  EXPECT_TRUE(p.Assign(f.pe1, 0, 0).ok());
  EXPECT_TRUE(p.Assign(f.pe1, 1, 1).ok());
  return p;
}

TEST(ActivationStrategyTest, DefaultsToAllActive) {
  ActivationStrategy s(4, 2, 3);
  for (ConfigId c = 0; c < 3; ++c) {
    for (ComponentId pe = 0; pe < 4; ++pe) {
      EXPECT_TRUE(s.IsActive(pe, 0, c));
      EXPECT_TRUE(s.IsActive(pe, 1, c));
      EXPECT_EQ(s.ActiveReplicaCount(pe, c), 2);
      EXPECT_TRUE(s.AllReplicasActive(pe, c));
    }
  }
}

TEST(ActivationStrategyTest, SetAndQuery) {
  ActivationStrategy s(3, 2, 2);
  s.SetActive(1, 0, 1, false);
  EXPECT_FALSE(s.IsActive(1, 0, 1));
  EXPECT_TRUE(s.IsActive(1, 1, 1));
  EXPECT_TRUE(s.IsActive(1, 0, 0));
  EXPECT_EQ(s.ActiveReplicaCount(1, 1), 1);
  EXPECT_FALSE(s.AllReplicasActive(1, 1));
  EXPECT_EQ(s.FirstActiveReplica(1, 1), 1);
  s.SetAll(1, 1, false);
  EXPECT_EQ(s.FirstActiveReplica(1, 1), -1);
  s.SetAll(1, 1, true);
  EXPECT_EQ(s.ActiveReplicaCount(1, 1), 2);
}

TEST(ActivationStrategyTest, CoverageCheck) {
  Fixture f = MakePipeline();
  ActivationStrategy s(f.graph.num_components(), 2, f.space.num_configs());
  EXPECT_TRUE(s.CheckCoverage(f.graph).ok());
  s.SetAll(f.pe1, 1, false);
  EXPECT_FALSE(s.CheckCoverage(f.graph).ok());
}

TEST(ActivationStrategyTest, JsonRoundTrip) {
  ActivationStrategy s(3, 2, 2);
  s.SetActive(0, 1, 0, false);
  s.SetActive(2, 0, 1, false);
  s.SetAll(1, 1, false);
  Result<ActivationStrategy> loaded = ActivationStrategy::FromJson(s.ToJson());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == s);
}

TEST(ActivationStrategyTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/laar_strategy_test.json";
  ActivationStrategy s(2, 2, 2);
  s.SetActive(1, 1, 0, false);
  ASSERT_TRUE(s.SaveToFile(path).ok());
  Result<ActivationStrategy> loaded = ActivationStrategy::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(*loaded == s);
  std::remove(path.c_str());
}

TEST(ActivationStrategyTest, FromJsonRejectsCorruptDocuments) {
  ActivationStrategy s(2, 2, 2);
  auto doc = s.ToJson();
  doc.Set("replication_factor", json::Value::Int(0));
  EXPECT_FALSE(ActivationStrategy::FromJson(doc).ok());

  auto doc2 = s.ToJson();
  doc2.object()["configs"].array()[0].Set("config", json::Value::Int(9));
  EXPECT_FALSE(ActivationStrategy::FromJson(doc2).ok());

  auto doc3 = s.ToJson();
  json::Value bad_pair = json::Value::MakeArray();
  bad_pair.Append(json::Value::Int(7));
  bad_pair.Append(json::Value::Int(0));
  doc3.object()["configs"].array()[0].object()["active"].Append(std::move(bad_pair));
  EXPECT_FALSE(ActivationStrategy::FromJson(doc3).ok());
}

TEST(BaselinesTest, StaticReplicationActivatesEverything) {
  Fixture f = MakePipeline();
  ActivationStrategy sr = MakeStaticReplication(f.graph, f.space, 2);
  for (ConfigId c = 0; c < f.space.num_configs(); ++c) {
    EXPECT_TRUE(sr.AllReplicasActive(f.pe0, c));
    EXPECT_TRUE(sr.AllReplicasActive(f.pe1, c));
  }
}

TEST(BaselinesTest, NonReplicatedKeepsExactlyOneEverywhere) {
  Fixture f = MakePipeline();
  // Reference strategy: in High, p0 keeps only replica 1; p1 keeps both.
  ActivationStrategy reference(f.graph.num_components(), 2, f.space.num_configs());
  reference.SetActive(f.pe0, 0, 1, false);
  ActivationStrategy nr = MakeNonReplicated(f.graph, f.space, reference, 1);
  for (ConfigId c = 0; c < f.space.num_configs(); ++c) {
    EXPECT_EQ(nr.ActiveReplicaCount(f.pe0, c), 1);
    EXPECT_EQ(nr.ActiveReplicaCount(f.pe1, c), 1);
  }
  // p0's survivor is the replica that was active in High (replica 1).
  EXPECT_TRUE(nr.IsActive(f.pe0, 1, 0));
  EXPECT_FALSE(nr.IsActive(f.pe0, 0, 0));
  // p1 had both active in High; the first active replica (0) is kept.
  EXPECT_TRUE(nr.IsActive(f.pe1, 0, 0));
  EXPECT_TRUE(nr.CheckCoverage(f.graph).ok());
}

TEST(BaselinesTest, GreedyDeactivatesUntilNotOverloaded) {
  // 100 ms/tuple pipeline on two 1e9-cycle hosts: all-active is fine at
  // Low (0.8e9 per host) and overloaded at High (1.6e9 per host).
  Fixture f = MakePipeline();
  Cluster cluster = Cluster::Homogeneous(2, 1e9);
  ReplicaPlacement placement = MakePairedPlacement(f);
  auto rates = ExpectedRates::Compute(f.graph, f.space);
  ASSERT_TRUE(rates.ok());
  ActivationStrategy grd = MakeGreedy(f.graph, f.space, *rates, placement, cluster);

  EXPECT_TRUE(grd.CheckCoverage(f.graph).ok());
  // Low stays fully replicated; High cannot be.
  EXPECT_TRUE(grd.AllReplicasActive(f.pe0, 0));
  EXPECT_TRUE(grd.AllReplicasActive(f.pe1, 0));
  EXPECT_FALSE(metrics::IsOverloaded(f.graph, *rates, placement, grd, cluster, 0));
  EXPECT_FALSE(metrics::IsOverloaded(f.graph, *rates, placement, grd, cluster, 1));
  EXPECT_LT(grd.ActiveReplicaCount(f.pe0, 1) + grd.ActiveReplicaCount(f.pe1, 1), 4);
}

TEST(BaselinesTest, GreedyKeepsCoverageEvenWhenStuck) {
  // A single PE whose one-replica load already exceeds capacity: greedy
  // cannot fix the overload but must keep one replica active (Eq. 12).
  Fixture f = MakePipeline(/*cost0=*/1e9, /*cost1=*/1e5);
  Cluster cluster = Cluster::Homogeneous(2, 1e9);
  ReplicaPlacement placement = MakePairedPlacement(f);
  auto rates = ExpectedRates::Compute(f.graph, f.space);
  ASSERT_TRUE(rates.ok());
  ActivationStrategy grd = MakeGreedy(f.graph, f.space, *rates, placement, cluster);
  EXPECT_TRUE(grd.CheckCoverage(f.graph).ok());
}

}  // namespace
}  // namespace laar::strategy
