// Coverage for non-uniform deployments: heterogeneous host capacities and
// replication factors other than 2 in the analytical layer (FT-Search
// itself is k = 2 only, per §4.5).

#include <gtest/gtest.h>

#include "laar/ftsearch/ft_search.h"
#include "laar/metrics/cost.h"
#include "laar/metrics/failure_model.h"
#include "laar/metrics/ic.h"
#include "laar/model/rates.h"

namespace laar {
namespace {

using model::ApplicationGraph;
using model::Cluster;
using model::ComponentId;
using model::ExpectedRates;
using model::InputSpace;
using model::ReplicaPlacement;
using model::SourceRateSet;
using strategy::ActivationStrategy;

struct Fixture {
  ApplicationGraph graph;
  InputSpace space;
  ComponentId source, pe0, pe1, sink;

  Fixture() {
    source = graph.AddSource("s");
    pe0 = graph.AddPe("p0");
    pe1 = graph.AddPe("p1");
    sink = graph.AddSink("k");
    EXPECT_TRUE(graph.AddEdge(source, pe0, 1.0, 1e8).ok());
    EXPECT_TRUE(graph.AddEdge(pe0, pe1, 1.0, 1e8).ok());
    EXPECT_TRUE(graph.AddEdge(pe1, sink, 1.0, 0.0).ok());
    EXPECT_TRUE(graph.Validate().ok());
    SourceRateSet r;
    r.source = source;
    r.rates = {4.0, 8.0};
    r.probabilities = {0.8, 0.2};
    EXPECT_TRUE(space.AddSource(r).ok());
  }
};

TEST(HeterogeneousClusterTest, FtSearchUsesTheBigHost) {
  // Host 0 can hold both PEs even at High (2.0e9); host 1 cannot hold one
  // (0.5e9 < 8 t/s * 1e8 = 0.8e9). The only feasible single-replica
  // activations at High use the replicas on host 0.
  Fixture f;
  Cluster cluster;
  cluster.AddHost("big", 2.0e9);
  cluster.AddHost("small", 0.5e9);
  ReplicaPlacement placement(f.graph.num_components(), 2);
  ASSERT_TRUE(placement.Assign(f.pe0, 0, 0).ok());
  ASSERT_TRUE(placement.Assign(f.pe0, 1, 1).ok());
  ASSERT_TRUE(placement.Assign(f.pe1, 0, 0).ok());
  ASSERT_TRUE(placement.Assign(f.pe1, 1, 1).ok());
  auto rates = ExpectedRates::Compute(f.graph, f.space);
  ASSERT_TRUE(rates.ok());

  ftsearch::FtSearchOptions options;
  options.ic_requirement = 0.0;
  auto result =
      ftsearch::RunFtSearch(f.graph, f.space, *rates, placement, cluster, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcome, ftsearch::SearchOutcome::kOptimal);
  // In High (config 1) both PEs must run replica 0 (the big host); the
  // small host cannot carry either PE alone.
  EXPECT_TRUE(result->strategy->IsActive(f.pe0, 0, 1));
  EXPECT_FALSE(result->strategy->IsActive(f.pe0, 1, 1));
  EXPECT_TRUE(result->strategy->IsActive(f.pe1, 0, 1));
  EXPECT_FALSE(result->strategy->IsActive(f.pe1, 1, 1));
  EXPECT_TRUE(metrics::CheckStrategyConstraints(f.graph, f.space, *rates, placement,
                                                *result->strategy, cluster, 0.0)
                  .ok());
}

TEST(HeterogeneousClusterTest, TinyHostsMakeEverythingInfeasible) {
  Fixture f;
  Cluster cluster = Cluster::Homogeneous(2, 0.3e9);  // < Low demand already
  ReplicaPlacement placement(f.graph.num_components(), 2);
  ASSERT_TRUE(placement.Assign(f.pe0, 0, 0).ok());
  ASSERT_TRUE(placement.Assign(f.pe0, 1, 1).ok());
  ASSERT_TRUE(placement.Assign(f.pe1, 0, 1).ok());
  ASSERT_TRUE(placement.Assign(f.pe1, 1, 0).ok());
  auto rates = ExpectedRates::Compute(f.graph, f.space);
  ASSERT_TRUE(rates.ok());
  ftsearch::FtSearchOptions options;
  options.ic_requirement = 0.0;
  auto result =
      ftsearch::RunFtSearch(f.graph, f.space, *rates, placement, cluster, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ftsearch::SearchOutcome::kInfeasible);
}

TEST(HigherReplicationTest, IcMathSupportsKGreaterThanTwo) {
  // The analytical layer (IC, cost, loads) is k-generic even though
  // FT-Search restricts itself to k = 2.
  Fixture f;
  auto rates = ExpectedRates::Compute(f.graph, f.space);
  ASSERT_TRUE(rates.ok());
  metrics::IcCalculator calc(f.graph, f.space, *rates);
  metrics::PessimisticFailureModel pessimistic;

  ActivationStrategy k3(f.graph.num_components(), 3, 2);
  EXPECT_EQ(k3.replication_factor(), 3);
  EXPECT_NEAR(calc.InternalCompleteness(k3, pessimistic), 1.0, 1e-12);

  // Dropping one of three replicas in High zeroes φ there (Eq. 14 needs
  // all k active).
  k3.SetActive(f.pe0, 2, 1, false);
  k3.SetActive(f.pe1, 2, 1, false);
  EXPECT_NEAR(calc.InternalCompleteness(k3, pessimistic), 2.0 / 3.0, 1e-12);

  // The independent model credits the two survivors.
  metrics::IndependentFailureModel independent(0.5);
  const double ic = calc.InternalCompleteness(k3, independent);
  EXPECT_GT(ic, 2.0 / 3.0);
  EXPECT_LT(ic, 1.0);

  // Cost counts all active replicas.
  ReplicaPlacement placement(f.graph.num_components(), 3);
  Cluster cluster = Cluster::Homogeneous(3, 1e9);
  for (ComponentId pe : {f.pe0, f.pe1}) {
    for (int r = 0; r < 3; ++r) {
      ASSERT_TRUE(placement.Assign(pe, r, static_cast<model::HostId>(r)).ok());
    }
  }
  const double cost = metrics::CostPerSecond(f.graph, f.space, *rates, placement, k3);
  // Low: 3 replicas * 2 PEs * 4 t/s * 1e8 = 2.4e9; High: 2 * 2 * 8e8 = 3.2e9.
  EXPECT_NEAR(cost, 0.8 * 2.4e9 + 0.2 * 3.2e9, 1e-3);
}

TEST(HigherReplicationTest, FtSearchRefusesKNotTwo) {
  Fixture f;
  auto rates = ExpectedRates::Compute(f.graph, f.space);
  ASSERT_TRUE(rates.ok());
  Cluster cluster = Cluster::Homogeneous(3, 1e9);
  ReplicaPlacement placement(f.graph.num_components(), 3);
  ftsearch::FtSearchOptions options;
  auto result =
      ftsearch::RunFtSearch(f.graph, f.space, *rates, placement, cluster, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace laar
