// End-to-end determinism regression: the full observable output of a
// simulated run — metrics-registry JSON, Chrome trace JSON, telemetry CSV,
// and health report — must stay byte-identical for a fixed seed across
// engine rewrites. The golden hashes below were captured from the
// pre-overhaul event engine (PR 4 tree, std::function + binary
// priority_queue); the overhauled engine (typed pooled events, indexed
// 4-ary heap, batched delivery) must reproduce them bit for bit.
//
// Rerun with LAAR_PRINT_HASHES=1 in the environment to print the observed
// hashes when intentionally changing simulation semantics.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "laar/appgen/app_generator.h"
#include "laar/dsps/sim_metrics.h"
#include "laar/dsps/stream_simulation.h"
#include "laar/ftsearch/ft_search.h"
#include "laar/json/json.h"
#include "laar/model/rates.h"
#include "laar/obs/chrome_trace.h"
#include "laar/obs/health.h"
#include "laar/obs/latency_tracer.h"
#include "laar/obs/metrics_registry.h"
#include "laar/obs/timeseries.h"
#include "laar/obs/trace_recorder.h"
#include "laar/placement/placement_algorithms.h"
#include "laar/runtime/experiment.h"
#include "laar/strategy/baselines.h"

namespace laar {
namespace {

/// FNV-1a, 64-bit: stable across platforms and standard libraries (unlike
/// std::hash), which is what makes the goldens portable.
uint64_t Fnv1a(const std::string& text) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

struct RunHashes {
  uint64_t metrics = 0;
  uint64_t trace = 0;
  uint64_t timeseries = 0;
  uint64_t health = 0;
  uint64_t worst_case_metrics = 0;
};

/// One full pipeline at a corpus seed: generate the application, solve a
/// deterministic (node-limited) FT-Search strategy, replay the alternating
/// experiment trace with every observer attached, and hash all exports.
RunHashes RunSeed(uint64_t seed) {
  appgen::GeneratorOptions generator;
  generator.num_pes = 12;
  generator.num_hosts = 6;
  auto app = appgen::GenerateApplication(generator, seed);
  EXPECT_TRUE(app.ok()) << app.status().ToString();

  auto rates = model::ExpectedRates::Compute(app->descriptor.graph,
                                             app->descriptor.input_space);
  EXPECT_TRUE(rates.ok());
  ftsearch::FtSearchOptions search;
  search.ic_requirement = 0.6;
  search.time_limit_seconds = 0.0;  // node budget only: machine-independent
  search.node_limit = 200000;
  auto solved =
      ftsearch::RunFtSearch(app->descriptor.graph, app->descriptor.input_space, *rates,
                            app->placement, app->cluster, search);
  EXPECT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_TRUE(solved->strategy.has_value());
  const strategy::ActivationStrategy& strategy = *solved->strategy;

  auto trace = runtime::MakeExperimentTrace(app->descriptor.input_space, 60.0,
                                            1.0 / 3.0, 3);
  EXPECT_TRUE(trace.ok());

  RunHashes hashes;
  {
    obs::TraceRecorder recorder;
    obs::LatencyTracer::Options tracer_options;
    tracer_options.sample_rate = 0.05;
    obs::LatencyTracer tracer(tracer_options);
    obs::MetricsRegistry registry;
    dsps::RuntimeOptions options;
    options.trace_recorder = &recorder;
    options.latency_tracer = &tracer;
    options.telemetry = &registry;
    dsps::StreamSimulation simulation(app->descriptor, app->cluster, app->placement,
                                      strategy, *trace, options);
    simulation.Run().CheckOK();
    dsps::PublishTo(&registry, simulation.metrics());
    obs::PublishBreakdown(&registry, tracer.Breakdown());
    hashes.metrics = Fnv1a(registry.ToJson().Dump());
    hashes.trace = Fnv1a(obs::ToChromeTraceJson(recorder, &tracer).Dump());
    hashes.timeseries = Fnv1a(obs::TimeSeriesCsv(registry));
    std::vector<obs::AlertRule> rules;
    rules.push_back(obs::ParseAlertRule("drops: ts_drop_rate > 0 warn").value());
    rules.push_back(
        obs::ParseAlertRule("saturation: ts_host_cpu_util > 0.99 for 5 warn").value());
    hashes.health = Fnv1a(obs::EvaluateHealth(registry, rules).ToJson().Dump());
  }
  {
    // The §5.3 pessimistic variant: all but the chosen worst-case survivor
    // of every PE crashed up front (exercises failover + primary election).
    obs::MetricsRegistry registry;
    dsps::RuntimeOptions options;
    options.telemetry = &registry;
    dsps::StreamSimulation simulation(app->descriptor, app->cluster, app->placement,
                                      strategy, *trace, options);
    const auto survivors = runtime::ChooseWorstCaseSurvivors(
        app->descriptor.graph, app->descriptor.input_space, strategy);
    for (model::ComponentId pe : app->descriptor.graph.Pes()) {
      for (int r = 0; r < strategy.replication_factor(); ++r) {
        if (r != survivors[static_cast<size_t>(pe)]) {
          simulation.InjectPermanentReplicaFailure(pe, r).CheckOK();
        }
      }
    }
    simulation.Run().CheckOK();
    dsps::PublishTo(&registry, simulation.metrics());
    hashes.worst_case_metrics = Fnv1a(registry.ToJson().Dump());
  }
  return hashes;
}

struct GoldenEntry {
  uint64_t seed;
  RunHashes expected;
};

// Captured from the pre-overhaul engine (see file comment); seeds match the
// solvable corpus instances used in EXPERIMENTS.md.
const GoldenEntry kGolden[] = {
    {6,
     {0xd2b2741519254bc1ULL, 0x3577da48a9d0a58dULL, 0xc21bba5c70f0880cULL, 0x1c5fd651c85d1b92ULL,
      0xbcd3d0658e54e89dULL}},
    {8,
     {0xa218b3177a294e1fULL, 0x88643c688f8eba02ULL, 0xd5f841f6f2b542f5ULL, 0x0302a3281c39dabcULL,
      0x23d889b345757411ULL}},
    {11,
     {0xba3f77dbf59d7c98ULL, 0x42ce60272010c51bULL, 0x840e43cfd2e27dacULL, 0xfd352f1651d16b41ULL,
      0x7168107c34037a28ULL}},
};

TEST(DeterminismTest, ObservableOutputsMatchPreOverhaulGoldens) {
  const bool print = std::getenv("LAAR_PRINT_HASHES") != nullptr;
  for (const GoldenEntry& golden : kGolden) {
    const RunHashes got = RunSeed(golden.seed);
    if (print) {
      std::printf("    {%llu,\n"
                  "     {0x%016llxULL, 0x%016llxULL, 0x%016llxULL, 0x%016llxULL,\n"
                  "      0x%016llxULL}},\n",
                  static_cast<unsigned long long>(golden.seed),
                  static_cast<unsigned long long>(got.metrics),
                  static_cast<unsigned long long>(got.trace),
                  static_cast<unsigned long long>(got.timeseries),
                  static_cast<unsigned long long>(got.health),
                  static_cast<unsigned long long>(got.worst_case_metrics));
      continue;
    }
    EXPECT_EQ(got.metrics, golden.expected.metrics) << "seed " << golden.seed;
    EXPECT_EQ(got.trace, golden.expected.trace) << "seed " << golden.seed;
    EXPECT_EQ(got.timeseries, golden.expected.timeseries) << "seed " << golden.seed;
    EXPECT_EQ(got.health, golden.expected.health) << "seed " << golden.seed;
    EXPECT_EQ(got.worst_case_metrics, golden.expected.worst_case_metrics)
        << "seed " << golden.seed;
  }
}

/// One windowed-engine run (conservative windows, DESIGN.md §10) under
/// static replication with host crashes, every observer attached, at the
/// given shard count. The goldens were captured from the single-shard
/// configuration, which spawns no worker thread; multi-shard runs are held
/// to the same bytes, so a scheduling-order leak anywhere in the sharded
/// engine fails this test rather than silently skewing results.
RunHashes RunWindowedSeed(uint64_t seed, int shards) {
  appgen::GeneratorOptions generator;
  generator.num_pes = 12;
  generator.num_hosts = 6;
  generator.hosts_per_rack = 2;
  generator.racks_per_zone = 3;
  generator.domain_aware_placement = true;
  auto app = appgen::GenerateApplication(generator, seed);
  EXPECT_TRUE(app.ok()) << app.status().ToString();
  strategy::ActivationStrategy sr = strategy::MakeStaticReplication(
      app->descriptor.graph, app->descriptor.input_space, 2);
  auto trace = runtime::MakeExperimentTrace(app->descriptor.input_space, 40.0,
                                            1.0 / 3.0, 2);
  EXPECT_TRUE(trace.ok());

  RunHashes hashes;
  {
    obs::TraceRecorder recorder;
    obs::MetricsRegistry registry;
    dsps::RuntimeOptions options;
    options.trace_recorder = &recorder;
    options.telemetry = &registry;
    options.link_latency_seconds = 0.05;
    options.shards = shards;
    dsps::StreamSimulation simulation(app->descriptor, app->cluster, app->placement,
                                      sr, *trace, options);
    EXPECT_TRUE(simulation.ScheduleHostCrash(1, 15.0, 8.0).ok());
    EXPECT_TRUE(simulation.ScheduleHostCrash(4, 40.0, 5.0).ok());
    simulation.Run().CheckOK();
    dsps::PublishTo(&registry, simulation.metrics());
    hashes.metrics = Fnv1a(registry.ToJson().Dump());
    hashes.trace = Fnv1a(obs::ToChromeTraceJson(recorder, nullptr).Dump());
    hashes.timeseries = Fnv1a(obs::TimeSeriesCsv(registry));
    std::vector<obs::AlertRule> rules;
    rules.push_back(obs::ParseAlertRule("drops: ts_drop_rate > 0 warn").value());
    rules.push_back(
        obs::ParseAlertRule("saturation: ts_host_cpu_util > 0.99 for 5 warn").value());
    hashes.health = Fnv1a(obs::EvaluateHealth(registry, rules).ToJson().Dump());
  }
  {
    // Pessimistic worst case on the windowed engine: permanent replica
    // failures interact with the crash schedule and failover timers.
    obs::MetricsRegistry registry;
    dsps::RuntimeOptions options;
    options.telemetry = &registry;
    options.link_latency_seconds = 0.05;
    options.shards = shards;
    dsps::StreamSimulation simulation(app->descriptor, app->cluster, app->placement,
                                      sr, *trace, options);
    const auto survivors = runtime::ChooseWorstCaseSurvivors(
        app->descriptor.graph, app->descriptor.input_space, sr);
    for (model::ComponentId pe : app->descriptor.graph.Pes()) {
      for (int r = 0; r < sr.replication_factor(); ++r) {
        if (r != survivors[static_cast<size_t>(pe)]) {
          simulation.InjectPermanentReplicaFailure(pe, r).CheckOK();
        }
      }
    }
    simulation.Run().CheckOK();
    dsps::PublishTo(&registry, simulation.metrics());
    hashes.worst_case_metrics = Fnv1a(registry.ToJson().Dump());
  }
  return hashes;
}

// Captured from the single-shard windowed engine (LAAR_PRINT_HASHES=1).
const GoldenEntry kWindowedGolden[] = {
    {6,
     {0x26e358776fac7e9dULL, 0x4c82928d8885e4dfULL, 0xb1d09f7a86fe30c3ULL, 0x14cd5df718e4d9c3ULL,
      0x41d6e3b89a2cf7afULL}},
    {11,
     {0xc91cc6bcfc275f28ULL, 0xffa4d6ec0e3195a4ULL, 0xe39f8562c5d6dc75ULL, 0xd88c4b89f4600b3aULL,
      0xc8b704b4a2506001ULL}},
};

/// The sharded engine's headline guarantee: `--shards=1/2/4` produce
/// byte-identical artifacts, and those bytes match the committed goldens —
/// so both cross-shard divergence and cross-version drift are caught.
TEST(DeterminismTest, WindowedOutputsMatchGoldensAtEveryShardCount) {
  const bool print = std::getenv("LAAR_PRINT_HASHES") != nullptr;
  for (const GoldenEntry& golden : kWindowedGolden) {
    for (int shards : {1, 2, 4}) {
      const RunHashes got = RunWindowedSeed(golden.seed, shards);
      if (print) {
        if (shards == 1) {
          std::printf("    {%llu, {0x%016llxULL, 0x%016llxULL, 0x%016llxULL, "
                      "0x%016llxULL, 0x%016llxULL}},\n",
                      static_cast<unsigned long long>(golden.seed),
                      static_cast<unsigned long long>(got.metrics),
                      static_cast<unsigned long long>(got.trace),
                      static_cast<unsigned long long>(got.timeseries),
                      static_cast<unsigned long long>(got.health),
                      static_cast<unsigned long long>(got.worst_case_metrics));
        }
        continue;
      }
      EXPECT_EQ(got.metrics, golden.expected.metrics)
          << "seed " << golden.seed << " shards " << shards;
      EXPECT_EQ(got.trace, golden.expected.trace)
          << "seed " << golden.seed << " shards " << shards;
      EXPECT_EQ(got.timeseries, golden.expected.timeseries)
          << "seed " << golden.seed << " shards " << shards;
      EXPECT_EQ(got.health, golden.expected.health)
          << "seed " << golden.seed << " shards " << shards;
      EXPECT_EQ(got.worst_case_metrics, golden.expected.worst_case_metrics)
          << "seed " << golden.seed << " shards " << shards;
    }
  }
}

/// Same-binary determinism: two runs at one seed hash identically. This
/// holds independently of the goldens, so it keeps guarding runs whose
/// semantics were changed intentionally (goldens re-captured).
TEST(DeterminismTest, RepeatedRunsAreBitIdentical) {
  const RunHashes a = RunSeed(6);
  const RunHashes b = RunSeed(6);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.timeseries, b.timeseries);
  EXPECT_EQ(a.health, b.health);
  EXPECT_EQ(a.worst_case_metrics, b.worst_case_metrics);
}

}  // namespace
}  // namespace laar
