#include <gtest/gtest.h>

#include "laar/appgen/app_generator.h"
#include "laar/fusion/fusion.h"
#include "laar/model/rates.h"
#include "laar/spl/spl_parser.h"

namespace laar::fusion {
namespace {

/// Total probability-weighted CPU demand of an application (one replica).
double TotalExpectedDemand(const model::ApplicationDescriptor& app) {
  auto rates = model::ExpectedRates::Compute(app.graph, app.input_space);
  EXPECT_TRUE(rates.ok());
  double total = 0.0;
  for (model::ComponentId pe : app.graph.Pes()) {
    for (model::ConfigId c = 0; c < app.input_space.num_configs(); ++c) {
      total += app.input_space.Probability(c) * rates->CpuDemand(app.graph, pe, c);
    }
  }
  return total;
}

TEST(FusionTest, CollapsesAPipelineToOnePe) {
  auto app = spl::ParseApplication(R"(
application chain {
  source s { rate lo = 2 @ 0.5; rate hi = 6 @ 0.5; }
  pe a; pe b; pe c;
  sink k;
  stream s -> a [selectivity = 0.5, cost = 10];
  stream a -> b [selectivity = 2.0, cost = 20];
  stream b -> c [selectivity = 0.5, cost = 40];
  stream c -> k;
})");
  ASSERT_TRUE(app.ok());
  auto result = FuseLinearChains(*app, FusionOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->operators_fused, 2);
  EXPECT_EQ(result->fused.graph.num_pes(), 1u);

  // Fused edge attributes: selectivity = .5*2*.5 = .5;
  // cost = 10 + .5*20 + .5*2*40 = 60.
  const model::Edge& e = result->fused.graph.edges()[0];
  EXPECT_DOUBLE_EQ(e.selectivity, 0.5);
  EXPECT_DOUBLE_EQ(e.cpu_cost_cycles, 60.0);

  // Sink rate and total demand preserved.
  auto before = model::ExpectedRates::Compute(app->graph, app->input_space);
  auto after =
      model::ExpectedRates::Compute(result->fused.graph, result->fused.input_space);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  const auto sink_before = app->graph.Sinks()[0];
  const auto sink_after = result->fused.graph.Sinks()[0];
  for (model::ConfigId c = 0; c < 2; ++c) {
    EXPECT_NEAR(after->Rate(sink_after, c), before->Rate(sink_before, c), 1e-9);
  }
  EXPECT_NEAR(TotalExpectedDemand(*app), TotalExpectedDemand(result->fused), 1e-6);

  // Group bookkeeping: one group holding all three original PEs.
  size_t pe_groups = 0;
  for (size_t i = 0; i < result->groups.size(); ++i) {
    if (result->fused.graph.IsPe(static_cast<model::ComponentId>(i))) {
      ++pe_groups;
      EXPECT_EQ(result->groups[i].size(), 3u);
    } else {
      EXPECT_EQ(result->groups[i].size(), 1u);
    }
  }
  EXPECT_EQ(pe_groups, 1u);
}

TEST(FusionTest, FanOutAndFanInBlockFusion) {
  // a fans out to b and c; d joins them: no linear chain exists anywhere.
  auto app = spl::ParseApplication(R"(
application diamond {
  source s { rate r = 1 @ 1.0; }
  pe a; pe b; pe c; pe d;
  sink k;
  stream s -> a [cost = 1];
  stream a -> b [cost = 1];
  stream a -> c [cost = 1];
  stream b -> d [cost = 1];
  stream c -> d [cost = 1];
  stream d -> k;
})");
  ASSERT_TRUE(app.ok());
  auto result = FuseLinearChains(*app, FusionOptions{});
  ASSERT_TRUE(result.ok());
  // s->a is source-to-PE (not fusable); a has out-degree 2; d in-degree 2;
  // b and c each sit between a (outdeg 2) and d (indeg 2): the b and c
  // edges ARE chains a->b (indeg(b)=1,outdeg(a)=2 -> no)...
  EXPECT_EQ(result->operators_fused, 0);
  EXPECT_EQ(result->fused.graph.num_pes(), 4u);
}

TEST(FusionTest, PartialChainInsideDag) {
  // s -> a -> b -> c -> k with an extra s -> c edge: only a->b is a clean
  // chain (c has in-degree 2).
  auto app = spl::ParseApplication(R"(
application partial {
  source s { rate r = 5 @ 1.0; }
  pe a; pe b; pe c;
  sink k;
  stream s -> a [selectivity = 1.0, cost = 2];
  stream a -> b [selectivity = 1.0, cost = 4];
  stream b -> c [selectivity = 0.5, cost = 8];
  stream s -> c [selectivity = 1.0, cost = 16];
  stream c -> k;
})");
  ASSERT_TRUE(app.ok());
  auto result = FuseLinearChains(*app, FusionOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->operators_fused, 1);
  EXPECT_EQ(result->fused.graph.num_pes(), 2u);
  EXPECT_NEAR(TotalExpectedDemand(*app), TotalExpectedDemand(result->fused), 1e-6);
}

TEST(FusionTest, DemandCapLimitsFusion) {
  auto app = spl::ParseApplication(R"(
application capped {
  source s { rate r = 10 @ 1.0; }
  pe a; pe b;
  sink k;
  stream s -> a [cost = 100];
  stream a -> b [cost = 100];
  stream b -> k;
})");
  ASSERT_TRUE(app.ok());
  // Demands: a = 10*100 = 1000; b = 10*100 = 1000. Cap below the sum.
  FusionOptions options;
  options.max_fused_demand_cycles = 1500.0;
  auto capped = FuseLinearChains(*app, options);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->operators_fused, 0);

  options.max_fused_demand_cycles = 2500.0;
  auto fused = FuseLinearChains(*app, options);
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ(fused->operators_fused, 1);
}

TEST(FusionTest, GeneratedAppsPreserveSemantics) {
  appgen::GeneratorOptions generator;
  generator.num_pes = 16;
  generator.num_hosts = 8;
  for (uint64_t seed : {3u, 9u, 27u}) {
    auto app = appgen::GenerateApplication(generator, seed);
    if (!app.ok()) continue;
    auto result = FuseLinearChains(app->descriptor, FusionOptions{});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_NEAR(TotalExpectedDemand(app->descriptor), TotalExpectedDemand(result->fused),
                1e-3);
    // Sink arrival rates preserved in every configuration.
    auto before =
        model::ExpectedRates::Compute(app->descriptor.graph, app->descriptor.input_space);
    auto after =
        model::ExpectedRates::Compute(result->fused.graph, result->fused.input_space);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    const auto sinks_before = app->descriptor.graph.Sinks();
    const auto sinks_after = result->fused.graph.Sinks();
    ASSERT_EQ(sinks_before.size(), sinks_after.size());
    for (size_t i = 0; i < sinks_before.size(); ++i) {
      for (model::ConfigId c = 0; c < app->descriptor.input_space.num_configs(); ++c) {
        EXPECT_NEAR(after->Rate(sinks_after[i], c), before->Rate(sinks_before[i], c),
                    1e-6 * (1.0 + before->Rate(sinks_before[i], c)))
            << "seed=" << seed;
      }
    }
    // Every original component appears in exactly one group.
    size_t total_members = 0;
    for (const auto& group : result->groups) total_members += group.size();
    EXPECT_EQ(total_members, app->descriptor.graph.num_components());
  }
}

TEST(FusionTest, RejectsBadInputs) {
  auto app = spl::ParseApplication(R"(
application tiny {
  source s { rate r = 1 @ 1.0; }
  pe a; sink k;
  stream s -> a [cost = 1];
  stream a -> k;
})");
  ASSERT_TRUE(app.ok());
  FusionOptions options;
  options.max_fused_demand_cycles = 0.0;
  EXPECT_FALSE(FuseLinearChains(*app, options).ok());

  model::ApplicationDescriptor unvalidated;
  unvalidated.graph.AddSource("s");
  EXPECT_FALSE(FuseLinearChains(unvalidated, FusionOptions{}).ok());
}

}  // namespace
}  // namespace laar::fusion
