#include <gtest/gtest.h>

#include "laar/model/rates.h"

namespace laar::model {
namespace {

struct Fixture {
  ApplicationGraph graph;
  InputSpace space;
  ComponentId source, pe0, pe1, sink;
};

// source(4/8 t/s) -> pe0 (sel .5, cost 10) -> pe1 (sel 2, cost 20) -> sink
Fixture MakePipeline() {
  Fixture f;
  f.source = f.graph.AddSource("s");
  f.pe0 = f.graph.AddPe("p0");
  f.pe1 = f.graph.AddPe("p1");
  f.sink = f.graph.AddSink("k");
  EXPECT_TRUE(f.graph.AddEdge(f.source, f.pe0, 0.5, 10.0).ok());
  EXPECT_TRUE(f.graph.AddEdge(f.pe0, f.pe1, 2.0, 20.0).ok());
  EXPECT_TRUE(f.graph.AddEdge(f.pe1, f.sink, 1.0, 0.0).ok());
  EXPECT_TRUE(f.graph.Validate().ok());
  SourceRateSet rates;
  rates.source = f.source;
  rates.rates = {4.0, 8.0};
  rates.probabilities = {0.8, 0.2};
  EXPECT_TRUE(f.space.AddSource(rates).ok());
  return f;
}

TEST(ExpectedRatesTest, LinearPropagationThroughPipeline) {
  Fixture f = MakePipeline();
  Result<ExpectedRates> rates = ExpectedRates::Compute(f.graph, f.space);
  ASSERT_TRUE(rates.ok());
  // Config 0 (rate 4): pe0 out = 4 * .5 = 2; pe1 out = 2 * 2 = 4; sink in 4.
  EXPECT_DOUBLE_EQ(rates->Rate(f.source, 0), 4.0);
  EXPECT_DOUBLE_EQ(rates->Rate(f.pe0, 0), 2.0);
  EXPECT_DOUBLE_EQ(rates->Rate(f.pe1, 0), 4.0);
  EXPECT_DOUBLE_EQ(rates->Rate(f.sink, 0), 4.0);
  // Config 1 (rate 8): everything doubles (linear load model).
  EXPECT_DOUBLE_EQ(rates->Rate(f.pe1, 1), 8.0);
}

TEST(ExpectedRatesTest, ArrivalRateSumsPredecessorOutputs) {
  Fixture f = MakePipeline();
  Result<ExpectedRates> rates = ExpectedRates::Compute(f.graph, f.space);
  ASSERT_TRUE(rates.ok());
  EXPECT_DOUBLE_EQ(rates->ArrivalRate(f.graph, f.pe0, 0), 4.0);
  EXPECT_DOUBLE_EQ(rates->ArrivalRate(f.graph, f.pe1, 0), 2.0);
}

TEST(ExpectedRatesTest, CpuDemandWeighsByCost) {
  Fixture f = MakePipeline();
  Result<ExpectedRates> rates = ExpectedRates::Compute(f.graph, f.space);
  ASSERT_TRUE(rates.ok());
  // pe0: 4 t/s * 10 cycles = 40 cycles/s. pe1: 2 t/s * 20 = 40.
  EXPECT_DOUBLE_EQ(rates->CpuDemand(f.graph, f.pe0, 0), 40.0);
  EXPECT_DOUBLE_EQ(rates->CpuDemand(f.graph, f.pe1, 0), 40.0);
  EXPECT_DOUBLE_EQ(rates->CpuDemand(f.graph, f.pe0, 1), 80.0);
}

TEST(ExpectedRatesTest, FanInAggregates) {
  // Two sources into one PE.
  ApplicationGraph g;
  const ComponentId s0 = g.AddSource("s0");
  const ComponentId s1 = g.AddSource("s1");
  const ComponentId pe = g.AddPe("p");
  const ComponentId sink = g.AddSink("k");
  ASSERT_TRUE(g.AddEdge(s0, pe, 1.0, 5.0).ok());
  ASSERT_TRUE(g.AddEdge(s1, pe, 0.5, 3.0).ok());
  ASSERT_TRUE(g.AddEdge(pe, sink, 1.0, 0.0).ok());
  ASSERT_TRUE(g.Validate().ok());
  InputSpace space;
  SourceRateSet r0, r1;
  r0.source = s0;
  r0.rates = {10.0};
  r0.probabilities = {1.0};
  r1.source = s1;
  r1.rates = {20.0};
  r1.probabilities = {1.0};
  ASSERT_TRUE(space.AddSource(r0).ok());
  ASSERT_TRUE(space.AddSource(r1).ok());
  Result<ExpectedRates> rates = ExpectedRates::Compute(g, space);
  ASSERT_TRUE(rates.ok());
  EXPECT_DOUBLE_EQ(rates->Rate(pe, 0), 10.0 * 1.0 + 20.0 * 0.5);
  EXPECT_DOUBLE_EQ(rates->ArrivalRate(g, pe, 0), 30.0);
  EXPECT_DOUBLE_EQ(rates->CpuDemand(g, pe, 0), 10.0 * 5.0 + 20.0 * 3.0);
}

TEST(ExpectedRatesTest, SinkWithMultipleInputsAccumulatesWithoutSelectivity) {
  ApplicationGraph g;
  const ComponentId s = g.AddSource("s");
  const ComponentId a = g.AddPe("a");
  const ComponentId b = g.AddPe("b");
  const ComponentId sink = g.AddSink("k");
  ASSERT_TRUE(g.AddEdge(s, a, 1.0, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(s, b, 2.0, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(a, sink, 1.0, 0.0).ok());
  ASSERT_TRUE(g.AddEdge(b, sink, 1.0, 0.0).ok());
  ASSERT_TRUE(g.Validate().ok());
  InputSpace space;
  SourceRateSet r;
  r.source = s;
  r.rates = {6.0};
  r.probabilities = {1.0};
  ASSERT_TRUE(space.AddSource(r).ok());
  Result<ExpectedRates> rates = ExpectedRates::Compute(g, space);
  ASSERT_TRUE(rates.ok());
  EXPECT_DOUBLE_EQ(rates->Rate(sink, 0), 6.0 + 12.0);
}

TEST(ExpectedRatesTest, RequiresValidatedGraph) {
  Fixture f = MakePipeline();
  ApplicationGraph unvalidated;
  unvalidated.AddSource("s");
  EXPECT_FALSE(ExpectedRates::Compute(unvalidated, f.space).ok());
}

TEST(ExpectedRatesTest, RequiresRateSetForEverySource) {
  ApplicationGraph g;
  const ComponentId s0 = g.AddSource("s0");
  const ComponentId s1 = g.AddSource("s1");
  const ComponentId pe = g.AddPe("p");
  const ComponentId sink = g.AddSink("k");
  ASSERT_TRUE(g.AddEdge(s0, pe, 1, 1).ok());
  ASSERT_TRUE(g.AddEdge(s1, pe, 1, 1).ok());
  ASSERT_TRUE(g.AddEdge(pe, sink, 1, 0).ok());
  ASSERT_TRUE(g.Validate().ok());
  InputSpace space;
  SourceRateSet r;
  r.source = s0;
  r.rates = {1.0};
  r.probabilities = {1.0};
  ASSERT_TRUE(space.AddSource(r).ok());
  EXPECT_FALSE(ExpectedRates::Compute(g, space).ok());
}

}  // namespace
}  // namespace laar::model
