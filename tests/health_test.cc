// Tests of the declarative health/alert layer: rule parsing, threshold
// evaluation over recorded time series and gauges, and the trace-event
// bridge.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "laar/obs/health.h"
#include "laar/obs/metrics_registry.h"
#include "laar/obs/trace_event.h"
#include "laar/obs/trace_recorder.h"

namespace laar {
namespace {

// ----------------------------------------------------------------- parsing

TEST(AlertRuleParseTest, FullForm) {
  auto rule = obs::ParseAlertRule("backlog: ts_queue_depth{pe=3} > 50 for 5 warn");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->name, "backlog");
  EXPECT_EQ(rule->series, "ts_queue_depth");
  ASSERT_EQ(rule->labels.size(), 1u);
  EXPECT_EQ(rule->labels[0].first, "pe");
  EXPECT_EQ(rule->labels[0].second, "3");
  EXPECT_EQ(rule->comparison, obs::AlertComparison::kAbove);
  EXPECT_DOUBLE_EQ(rule->threshold, 50.0);
  EXPECT_DOUBLE_EQ(rule->for_seconds, 5.0);
  EXPECT_EQ(rule->severity, obs::AlertSeverity::kWarning);
  EXPECT_FALSE(rule->ToString().empty());
}

TEST(AlertRuleParseTest, DefaultsAndMinimalForm) {
  auto rule = obs::ParseAlertRule("ts_drop_rate > 0");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->name, "ts_drop_rate");  // name defaults to the series
  EXPECT_EQ(rule->series, "ts_drop_rate");
  EXPECT_TRUE(rule->labels.empty());
  EXPECT_DOUBLE_EQ(rule->for_seconds, 0.0);
  EXPECT_EQ(rule->severity, obs::AlertSeverity::kCritical);  // default crit

  auto below = obs::ParseAlertRule("ts_output_rate < 1.5 crit");
  ASSERT_TRUE(below.ok());
  EXPECT_EQ(below->comparison, obs::AlertComparison::kBelow);
  EXPECT_DOUBLE_EQ(below->threshold, 1.5);
}

TEST(AlertRuleParseTest, RejectsMalformedRules) {
  EXPECT_FALSE(obs::ParseAlertRule("").ok());
  EXPECT_FALSE(obs::ParseAlertRule("no_comparison 5").ok());
  EXPECT_FALSE(obs::ParseAlertRule("x > notanumber").ok());
  EXPECT_FALSE(obs::ParseAlertRule("x > 5 for").ok());          // missing duration
  EXPECT_FALSE(obs::ParseAlertRule("x > 5 sometimes").ok());    // unknown token
  EXPECT_FALSE(obs::ParseAlertRule("x{unclosed > 5").ok());     // bad label block
  EXPECT_FALSE(obs::ParseAlertRule("x{k} > 5").ok());           // label without value
  EXPECT_FALSE(obs::ParseAlertRule("x > 5 warn crit").ok());    // duplicate severity
}

TEST(AlertRuleParseTest, SemicolonListSkipsEmptySegments) {
  auto rules = obs::ParseAlertRules("a > 1; ;b < 2 warn;");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules->size(), 2u);
  EXPECT_EQ((*rules)[0].series, "a");
  EXPECT_EQ((*rules)[1].series, "b");
  EXPECT_FALSE(obs::ParseAlertRules("a > 1; bogus").ok());
}

// -------------------------------------------------------------- evaluation

obs::TimeSeries* Series(obs::MetricsRegistry* registry, const std::string& name,
                        const obs::MetricsRegistry::Labels& labels = {}) {
  obs::TimeSeries* series = registry->GetTimeSeries(name, labels, 64);
  EXPECT_NE(series, nullptr);
  return series;
}

TEST(EvaluateHealthTest, FiresOnViolationAndStaysQuietBelowThreshold) {
  obs::MetricsRegistry registry;
  obs::TimeSeries* depth = Series(&registry, "ts_queue_depth", {{"pe", "1"}});
  for (int i = 0; i < 5; ++i) depth->Append(i, 10.0);
  depth->Append(5.0, 80.0);
  depth->Append(6.0, 90.0);
  depth->Append(7.0, 10.0);

  auto rules = obs::ParseAlertRules("backlog: ts_queue_depth > 50");
  ASSERT_TRUE(rules.ok());
  const obs::HealthReport report = obs::EvaluateHealth(registry, *rules);
  EXPECT_FALSE(report.healthy);  // default severity is crit
  ASSERT_EQ(report.incidents.size(), 1u);
  const obs::AlertIncident& incident = report.incidents[0];
  EXPECT_EQ(incident.rule, "backlog");
  EXPECT_EQ(incident.series_key, "ts_queue_depth{pe=1}");
  EXPECT_DOUBLE_EQ(incident.first_at, 5.0);
  EXPECT_DOUBLE_EQ(incident.last_at, 6.0);
  EXPECT_DOUBLE_EQ(incident.peak_value, 90.0);
  EXPECT_EQ(incident.samples, 2u);

  // Strictly-above semantics: samples equal to the threshold never violate,
  // and a run that stays at or below the threshold is healthy.
  auto at_threshold = obs::ParseAlertRules("ts_queue_depth > 90");
  ASSERT_TRUE(at_threshold.ok());
  const obs::HealthReport quiet = obs::EvaluateHealth(registry, *at_threshold);
  EXPECT_TRUE(quiet.healthy);
  EXPECT_TRUE(quiet.incidents.empty());
}

TEST(EvaluateHealthTest, SustainedRuleNeedsTheFullDuration) {
  obs::MetricsRegistry registry;
  obs::TimeSeries* util = Series(&registry, "ts_host_cpu_util");
  // Two violating streaks: [2, 4] spans 2 s; [8, 13] spans 5 s.
  const double values[] = {0.1, 0.1, 0.99, 0.99, 0.99, 0.1, 0.1, 0.1,
                           0.99, 0.99, 0.99, 0.99, 0.99, 0.99, 0.1};
  for (int i = 0; i < 15; ++i) util->Append(i, values[i]);

  auto sustained = obs::ParseAlertRules("saturation: ts_host_cpu_util > 0.9 for 3 warn");
  ASSERT_TRUE(sustained.ok());
  const obs::HealthReport report = obs::EvaluateHealth(registry, *sustained);
  EXPECT_TRUE(report.healthy);  // warnings never fail the run
  ASSERT_EQ(report.incidents.size(), 1u);  // only the 5 s streak qualifies
  EXPECT_DOUBLE_EQ(report.incidents[0].first_at, 8.0);
  EXPECT_DOUBLE_EQ(report.incidents[0].duration, 5.0);
  EXPECT_EQ(report.incidents[0].severity, obs::AlertSeverity::kWarning);

  // Boundary: requiring exactly the streak's span still fires; requiring
  // more does not.
  auto exact = obs::ParseAlertRules("ts_host_cpu_util > 0.9 for 5");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(obs::EvaluateHealth(registry, *exact).incidents.size(), 1u);
  auto longer = obs::ParseAlertRules("ts_host_cpu_util > 0.9 for 6");
  ASSERT_TRUE(longer.ok());
  EXPECT_TRUE(obs::EvaluateHealth(registry, *longer).incidents.empty());
}

TEST(EvaluateHealthTest, LabelSubsetSelectsSeriesAndGaugesAreEvaluated) {
  obs::MetricsRegistry registry;
  Series(&registry, "ts_queue_depth", {{"pe", "1"}, {"scenario", "best-case"}})
      ->Append(1.0, 100.0);
  Series(&registry, "ts_queue_depth", {{"pe", "2"}, {"scenario", "best-case"}})
      ->Append(1.0, 5.0);
  registry.GetGauge("sim_sink_latency_p99_seconds")->Set(2.5);

  auto rules = obs::ParseAlertRules(
      "hot: ts_queue_depth{pe=1} > 50; slo: sim_sink_latency_p99_seconds > 2");
  ASSERT_TRUE(rules.ok());
  const obs::HealthReport report = obs::EvaluateHealth(registry, *rules);
  ASSERT_EQ(report.incidents.size(), 2u);  // pe=2 matched the label filter out
  // Incidents sort by first_at; gauges snapshot at time 0, before the series.
  EXPECT_EQ(report.incidents[0].rule, "slo");
  EXPECT_DOUBLE_EQ(report.incidents[0].peak_value, 2.5);
  EXPECT_EQ(report.incidents[1].rule, "hot");
  EXPECT_EQ(report.incidents[1].series_key, "ts_queue_depth{pe=1,scenario=best-case}");

  // Below-comparison on a gauge.
  auto below = obs::ParseAlertRules("throughput: sim_sink_latency_p99_seconds < 3");
  ASSERT_TRUE(below.ok());
  EXPECT_EQ(obs::EvaluateHealth(registry, *below).incidents.size(), 1u);

  // The report embeds the evaluated series and serializes deterministically.
  EXPECT_FALSE(report.series.empty());
  EXPECT_EQ(report.ToJson().Dump(),
            obs::EvaluateHealth(registry, *rules).ToJson().Dump());
  EXPECT_NE(report.ToString().find("hot"), std::string::npos);
}

TEST(EvaluateHealthTest, EmitAlertEventsLandsOnTheHealthCategory) {
  obs::MetricsRegistry registry;
  Series(&registry, "ts_drop_rate")->Append(3.0, 12.0);
  auto rules = obs::ParseAlertRules("drops: ts_drop_rate > 0");
  ASSERT_TRUE(rules.ok());
  const obs::HealthReport report = obs::EvaluateHealth(registry, *rules);
  ASSERT_EQ(report.incidents.size(), 1u);

  obs::TraceRecorder recorder;
  obs::EmitAlertEvents(&recorder, report);
  const std::vector<obs::TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, obs::EventName::kAlert);
  EXPECT_DOUBLE_EQ(events[0].time, 3.0);
  EXPECT_DOUBLE_EQ(events[0].value, 12.0);

  // A recorder that filters out the health category records nothing.
  obs::TraceRecorder::Options options;
  options.categories = static_cast<uint32_t>(obs::Category::kDrops);
  obs::TraceRecorder filtered(options);
  obs::EmitAlertEvents(&filtered, report);
  EXPECT_EQ(filtered.size(), 0u);
  obs::EmitAlertEvents(nullptr, report);  // null recorder is a no-op
}

}  // namespace
}  // namespace laar
