#include <gtest/gtest.h>

#include "laar/model/graph.h"

namespace laar::model {
namespace {

ApplicationGraph MakePipeline() {
  // source -> pe0 -> pe1 -> sink
  ApplicationGraph g;
  const ComponentId source = g.AddSource("src");
  const ComponentId pe0 = g.AddPe("pe0");
  const ComponentId pe1 = g.AddPe("pe1");
  const ComponentId sink = g.AddSink("sink");
  EXPECT_TRUE(g.AddEdge(source, pe0, 1.0, 10.0).ok());
  EXPECT_TRUE(g.AddEdge(pe0, pe1, 0.5, 20.0).ok());
  EXPECT_TRUE(g.AddEdge(pe1, sink, 1.0, 0.0).ok());
  return g;
}

TEST(GraphTest, BuildAndValidatePipeline) {
  ApplicationGraph g = MakePipeline();
  ASSERT_TRUE(g.Validate().ok());
  EXPECT_TRUE(g.validated());
  EXPECT_EQ(g.num_components(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_pes(), 2u);
  EXPECT_EQ(g.num_sources(), 1u);
  EXPECT_EQ(g.Sources().size(), 1u);
  EXPECT_EQ(g.Sinks().size(), 1u);
}

TEST(GraphTest, KindPredicates) {
  ApplicationGraph g = MakePipeline();
  EXPECT_TRUE(g.IsSource(0));
  EXPECT_TRUE(g.IsPe(1));
  EXPECT_TRUE(g.IsPe(2));
  EXPECT_TRUE(g.IsSink(3));
}

TEST(GraphTest, PredecessorsAndSuccessors) {
  ApplicationGraph g = MakePipeline();
  ASSERT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.Predecessors(1), (std::vector<ComponentId>{0}));
  EXPECT_EQ(g.Successors(1), (std::vector<ComponentId>{2}));
  EXPECT_TRUE(g.Predecessors(0).empty());
  EXPECT_TRUE(g.Successors(3).empty());
}

TEST(GraphTest, TopologicalOrderRespectsEdges) {
  ApplicationGraph g;
  const ComponentId src = g.AddSource("s");
  const ComponentId a = g.AddPe("a");
  const ComponentId b = g.AddPe("b");
  const ComponentId c = g.AddPe("c");
  const ComponentId sink = g.AddSink("k");
  // Diamond: src -> a -> {b, c} -> sink, plus b -> c.
  ASSERT_TRUE(g.AddEdge(src, a, 1, 1).ok());
  ASSERT_TRUE(g.AddEdge(a, b, 1, 1).ok());
  ASSERT_TRUE(g.AddEdge(a, c, 1, 1).ok());
  ASSERT_TRUE(g.AddEdge(b, c, 1, 1).ok());
  ASSERT_TRUE(g.AddEdge(c, sink, 1, 0).ok());
  ASSERT_TRUE(g.AddEdge(b, sink, 1, 0).ok());
  ASSERT_TRUE(g.Validate().ok());

  std::vector<size_t> position(g.num_components());
  const auto& order = g.TopologicalOrder();
  ASSERT_EQ(order.size(), g.num_components());
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (const Edge& e : g.edges()) {
    EXPECT_LT(position[e.from], position[e.to]);
  }
  EXPECT_EQ(g.PesInTopologicalOrder(), (std::vector<ComponentId>{a, b, c}));
}

TEST(GraphTest, RejectsUnknownEndpoint) {
  ApplicationGraph g;
  g.AddSource("s");
  EXPECT_FALSE(g.AddEdge(0, 5, 1.0, 1.0).ok());
  EXPECT_FALSE(g.AddEdge(-1, 0, 1.0, 1.0).ok());
}

TEST(GraphTest, RejectsSelfLoop) {
  ApplicationGraph g;
  g.AddSource("s");
  const ComponentId pe = g.AddPe("p");
  EXPECT_FALSE(g.AddEdge(pe, pe, 1.0, 1.0).ok());
}

TEST(GraphTest, RejectsNonPositiveSelectivityIntoPe) {
  ApplicationGraph g;
  const ComponentId s = g.AddSource("s");
  const ComponentId p = g.AddPe("p");
  EXPECT_FALSE(g.AddEdge(s, p, 0.0, 1.0).ok());
  EXPECT_FALSE(g.AddEdge(s, p, -1.0, 1.0).ok());
  EXPECT_FALSE(g.AddEdge(s, p, 1.0, -5.0).ok());
}

TEST(GraphTest, ValidateRejectsDuplicateEdge) {
  ApplicationGraph g;
  const ComponentId s = g.AddSource("s");
  const ComponentId p = g.AddPe("p");
  const ComponentId k = g.AddSink("k");
  ASSERT_TRUE(g.AddEdge(s, p, 1, 1).ok());
  ASSERT_TRUE(g.AddEdge(s, p, 0.5, 2).ok());  // duplicate, caught at Validate
  ASSERT_TRUE(g.AddEdge(p, k, 1, 0).ok());
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GraphTest, ValidateRejectsEdgeIntoSource) {
  ApplicationGraph g;
  const ComponentId s = g.AddSource("s");
  const ComponentId p = g.AddPe("p");
  ASSERT_TRUE(g.AddEdge(s, p, 1, 1).ok());
  ASSERT_TRUE(g.AddEdge(p, s, 1, 1).ok());
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GraphTest, ValidateRejectsEdgeOutOfSink) {
  ApplicationGraph g;
  const ComponentId s = g.AddSource("s");
  const ComponentId p = g.AddPe("p");
  const ComponentId k = g.AddSink("k");
  ASSERT_TRUE(g.AddEdge(s, p, 1, 1).ok());
  ASSERT_TRUE(g.AddEdge(p, k, 1, 0).ok());
  ASSERT_TRUE(g.AddEdge(k, p, 1, 1).ok());
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GraphTest, ValidateRejectsOrphanPe) {
  ApplicationGraph g;
  const ComponentId s = g.AddSource("s");
  const ComponentId p = g.AddPe("p");
  g.AddPe("orphan");
  const ComponentId k = g.AddSink("k");
  ASSERT_TRUE(g.AddEdge(s, p, 1, 1).ok());
  ASSERT_TRUE(g.AddEdge(p, k, 1, 0).ok());
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GraphTest, ValidateRejectsSourceWithoutSuccessors) {
  ApplicationGraph g;
  g.AddSource("dangling");
  const ComponentId s = g.AddSource("s");
  const ComponentId p = g.AddPe("p");
  const ComponentId k = g.AddSink("k");
  ASSERT_TRUE(g.AddEdge(s, p, 1, 1).ok());
  ASSERT_TRUE(g.AddEdge(p, k, 1, 0).ok());
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GraphTest, ValidateRejectsCycle) {
  // Cycles between PEs: a -> b -> a. (Self-loops are rejected earlier.)
  ApplicationGraph g;
  const ComponentId s = g.AddSource("s");
  const ComponentId a = g.AddPe("a");
  const ComponentId b = g.AddPe("b");
  const ComponentId k = g.AddSink("k");
  ASSERT_TRUE(g.AddEdge(s, a, 1, 1).ok());
  ASSERT_TRUE(g.AddEdge(a, b, 1, 1).ok());
  ASSERT_TRUE(g.AddEdge(b, a, 1, 1).ok());
  ASSERT_TRUE(g.AddEdge(b, k, 1, 0).ok());
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GraphTest, SinkEdgeAttributesNotConstrained) {
  ApplicationGraph g;
  const ComponentId s = g.AddSource("s");
  const ComponentId p = g.AddPe("p");
  const ComponentId k = g.AddSink("k");
  ASSERT_TRUE(g.AddEdge(s, p, 1, 1).ok());
  // Edges into sinks ignore selectivity/cost validation.
  EXPECT_TRUE(g.AddEdge(p, k, -3.0, -1.0).ok());
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphTest, ComponentKindNames) {
  EXPECT_STREQ(ComponentKindName(ComponentKind::kSource), "source");
  EXPECT_STREQ(ComponentKindName(ComponentKind::kPe), "pe");
  EXPECT_STREQ(ComponentKindName(ComponentKind::kSink), "sink");
}

}  // namespace
}  // namespace laar::model
