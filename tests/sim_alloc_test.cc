// Proves the engine's zero-allocation steady state: after warm-up, a
// sustained schedule / fire / cancel / reschedule churn must perform no
// heap allocations at all. Counts them by replacing the global operator
// new family for this binary; the counter only runs inside the measured
// region so gtest and runtime setup noise is excluded.

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "laar/sim/simulator.h"

namespace {
uint64_t g_allocations = 0;
bool g_counting = false;

void* CountedAlloc(std::size_t size) {
  if (g_counting) ++g_allocations;
  void* ptr = std::malloc(size != 0 ? size : 1);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  if (g_counting) ++g_allocations;
  void* ptr = nullptr;
  if (posix_memalign(&ptr, align, size != 0 ? size : align) != 0) {
    throw std::bad_alloc();
  }
  return ptr;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}

namespace laar::sim {
namespace {

constexpr int kWorkingSet = 128;

// One churn round at a fixed working-set size: schedule kWorkingSet
// events, reschedule a quarter, cancel a quarter, fire the rest. All
// lambdas are small and trivially copyable, so they ride the inline path.
void ChurnRound(Simulator* simulator, std::vector<EventId>* ids,
                uint64_t* fired) {
  ids->clear();
  for (int i = 0; i < kWorkingSet; ++i) {
    ids->push_back(simulator->ScheduleAfter(0.001 * (i + 1),
                                            [fired] { ++*fired; }));
  }
  for (size_t i = 0; i < ids->size(); i += 4) {
    simulator->Reschedule((*ids)[i], simulator->now() + 0.5);
  }
  for (size_t i = 1; i < ids->size(); i += 4) {
    simulator->Cancel((*ids)[i]);
  }
  simulator->Run();
}

TEST(SimAllocTest, SteadyStateChurnPerformsZeroHeapAllocations) {
  Simulator simulator;
  uint64_t fired = 0;
  std::vector<EventId> ids;
  ids.reserve(kWorkingSet);

  // Warm-up: grow the slot pool and heap array to the peak working set.
  for (int round = 0; round < 4; ++round) {
    ChurnRound(&simulator, &ids, &fired);
  }

  const size_t pool_before = simulator.pool_slots();
  g_allocations = 0;
  g_counting = true;
  for (int round = 0; round < 800; ++round) {  // ~100k engine operations
    ChurnRound(&simulator, &ids, &fired);
  }
  g_counting = false;

  EXPECT_EQ(g_allocations, 0u);
  EXPECT_EQ(simulator.pool_slots(), pool_before);
  EXPECT_EQ(simulator.stats().boxed_callbacks, 0u);
  EXPECT_GT(fired, 0u);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

// The boxing fallback must still allocate exactly one box per oversize
// payload — the counter sees it, which doubles as a self-test that the
// instrumentation is live.
TEST(SimAllocTest, OversizePayloadsAllocateExactlyTheirBox) {
  Simulator simulator;
  struct Big {
    char bytes[EventCallback::kInlineBytes + 8] = {};
  };
  Big big;
  // Warm up the slot pool and heap array so only the box itself counts.
  simulator.ScheduleAt(0.5, [] {});
  simulator.Run();
  g_allocations = 0;
  g_counting = true;
  simulator.ScheduleAt(1.0, [big] { (void)big; });
  g_counting = false;
  EXPECT_EQ(g_allocations, 1u);
  EXPECT_EQ(simulator.stats().boxed_callbacks, 1u);
  simulator.Run();
}

}  // namespace
}  // namespace laar::sim
