// Tests for the §6 future-work extensions (penalty sweep, placement local
// search) and auxiliary library features (DOT export, latency tracking).

#include <gtest/gtest.h>

#include "laar/appgen/app_generator.h"
#include "laar/common/strings.h"
#include "laar/dsps/stream_simulation.h"
#include "laar/ftsearch/penalty_sweep.h"
#include "laar/model/dot.h"
#include "laar/placement/local_search.h"
#include "laar/placement/placement_algorithms.h"
#include "laar/strategy/baselines.h"

namespace laar {
namespace {

appgen::GeneratedApplication MakeApp(uint64_t seed, int pes = 10, int hosts = 5) {
  appgen::GeneratorOptions options;
  options.num_pes = pes;
  options.num_hosts = hosts;
  options.high_overload_max = 1.2;
  for (uint64_t s = seed;; ++s) {
    auto app = appgen::GenerateApplication(options, s);
    if (app.ok()) return std::move(*app);
  }
}

// --------------------------------------------------------------------------
// Penalty sweep (§6.ii)
// --------------------------------------------------------------------------

TEST(PenaltySweepTest, ZeroPenaltyPicksCheapestFeasibleLevel) {
  const auto app = MakeApp(40);
  auto rates =
      model::ExpectedRates::Compute(app.descriptor.graph, app.descriptor.input_space);
  ASSERT_TRUE(rates.ok());
  ftsearch::PenaltySweepOptions options;
  options.ic_target = 0.6;
  options.penalty_rate = 0.0;
  options.grid_steps = 4;
  options.time_limit_seconds = 5.0;
  auto sweep = ftsearch::SweepPenaltyFrontier(app.descriptor.graph,
                                              app.descriptor.input_space, *rates,
                                              app.placement, app.cluster, options);
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  ASSERT_FALSE(sweep->frontier.empty());
  // With no penalty, the minimizer is the unconstrained (level-0) point.
  EXPECT_EQ(sweep->best_index, 0);
  EXPECT_DOUBLE_EQ(sweep->frontier[0].penalty, 0.0);
  // Costs are non-decreasing along the frontier.
  for (size_t i = 1; i < sweep->frontier.size(); ++i) {
    EXPECT_GE(sweep->frontier[i].cost, sweep->frontier[i - 1].cost - 1e-6);
  }
}

TEST(PenaltySweepTest, LargePenaltyPushesTowardTheTarget) {
  const auto app = MakeApp(40);
  auto rates =
      model::ExpectedRates::Compute(app.descriptor.graph, app.descriptor.input_space);
  ASSERT_TRUE(rates.ok());
  ftsearch::PenaltySweepOptions options;
  options.ic_target = 0.6;
  options.grid_steps = 4;
  options.time_limit_seconds = 5.0;

  options.penalty_rate = 0.0;
  auto cheap = ftsearch::SweepPenaltyFrontier(app.descriptor.graph,
                                              app.descriptor.input_space, *rates,
                                              app.placement, app.cluster, options);
  options.penalty_rate = 1e12;  // any shortfall dwarfs the CPU cost
  auto strict = ftsearch::SweepPenaltyFrontier(app.descriptor.graph,
                                               app.descriptor.input_space, *rates,
                                               app.placement, app.cluster, options);
  ASSERT_TRUE(cheap.ok());
  ASSERT_TRUE(strict.ok());
  ASSERT_GE(strict->best_index, 0);
  const auto& strict_best = strict->frontier[static_cast<size_t>(strict->best_index)];
  const auto& cheap_best = cheap->frontier[static_cast<size_t>(cheap->best_index)];
  EXPECT_GE(strict_best.achieved_ic, cheap_best.achieved_ic);
  // Under an enormous penalty the chosen point is the highest-IC feasible
  // level of the grid.
  for (const auto& point : strict->frontier) {
    EXPECT_GE(strict_best.achieved_ic, point.achieved_ic - 1e-9);
  }
}

TEST(PenaltySweepTest, RejectsBadOptions) {
  const auto app = MakeApp(40);
  auto rates =
      model::ExpectedRates::Compute(app.descriptor.graph, app.descriptor.input_space);
  ASSERT_TRUE(rates.ok());
  ftsearch::PenaltySweepOptions options;
  options.ic_target = 1.5;
  EXPECT_FALSE(ftsearch::SweepPenaltyFrontier(app.descriptor.graph,
                                              app.descriptor.input_space, *rates,
                                              app.placement, app.cluster, options)
                   .ok());
  options = ftsearch::PenaltySweepOptions{};
  options.grid_steps = 0;
  EXPECT_FALSE(ftsearch::SweepPenaltyFrontier(app.descriptor.graph,
                                              app.descriptor.input_space, *rates,
                                              app.placement, app.cluster, options)
                   .ok());
  options = ftsearch::PenaltySweepOptions{};
  options.penalty_rate = -1.0;
  EXPECT_FALSE(ftsearch::SweepPenaltyFrontier(app.descriptor.graph,
                                              app.descriptor.input_space, *rates,
                                              app.placement, app.cluster, options)
                   .ok());
}

// --------------------------------------------------------------------------
// Placement local search (§6.iii)
// --------------------------------------------------------------------------

TEST(PlacementLocalSearchTest, NeverWorsensTheObjective) {
  const auto app = MakeApp(50);
  auto rates =
      model::ExpectedRates::Compute(app.descriptor.graph, app.descriptor.input_space);
  ASSERT_TRUE(rates.ok());

  placement::PlacementSearchOptions options;
  options.ic_requirement = 0.5;
  options.max_iterations = 10;
  options.ftsearch_time_limit_seconds = 1.0;
  auto improved =
      placement::ImprovePlacement(app.descriptor.graph, app.descriptor.input_space,
                                  *rates, app.cluster, app.placement, options);
  ASSERT_TRUE(improved.ok()) << improved.status().ToString();
  EXPECT_TRUE(improved->placement.Validate(app.cluster).ok());
  EXPECT_GE(improved->evaluated_moves, improved->accepted_moves);
  ASSERT_FALSE(improved->cost_history.empty());
  // The accepted-cost trajectory is non-increasing once feasible.
  for (size_t i = 1; i < improved->cost_history.size(); ++i) {
    EXPECT_LE(improved->cost_history[i], improved->cost_history[i - 1] + 1e-6);
  }
}

TEST(PlacementLocalSearchTest, CanRescueABadInitialPlacement) {
  // Start from round-robin (load-oblivious); the local search should find
  // something at least as good as it, typically strictly better or newly
  // feasible.
  const auto app = MakeApp(60);
  auto rates =
      model::ExpectedRates::Compute(app.descriptor.graph, app.descriptor.input_space);
  ASSERT_TRUE(rates.ok());
  auto round_robin = placement::PlaceRoundRobin(app.descriptor.graph, app.cluster, 2);
  ASSERT_TRUE(round_robin.ok());

  placement::PlacementSearchOptions options;
  options.ic_requirement = 0.5;
  options.max_iterations = 20;
  options.ftsearch_time_limit_seconds = 1.0;
  options.seed = 7;
  auto improved =
      placement::ImprovePlacement(app.descriptor.graph, app.descriptor.input_space,
                                  *rates, app.cluster, *round_robin, options);
  ASSERT_TRUE(improved.ok());
  // The search result on the final placement matches an independent solve.
  if (improved->feasible) {
    EXPECT_TRUE(improved->search.strategy.has_value());
  }
}

TEST(PlacementLocalSearchTest, ZeroIterationsReturnsInitial) {
  const auto app = MakeApp(50);
  auto rates =
      model::ExpectedRates::Compute(app.descriptor.graph, app.descriptor.input_space);
  ASSERT_TRUE(rates.ok());
  placement::PlacementSearchOptions options;
  options.ic_requirement = 0.5;
  options.max_iterations = 0;
  auto improved =
      placement::ImprovePlacement(app.descriptor.graph, app.descriptor.input_space,
                                  *rates, app.cluster, app.placement, options);
  ASSERT_TRUE(improved.ok());
  EXPECT_EQ(improved->evaluated_moves, 0);
  EXPECT_EQ(improved->accepted_moves, 0);
  for (model::ComponentId pe : app.descriptor.graph.Pes()) {
    for (int r = 0; r < 2; ++r) {
      EXPECT_EQ(improved->placement.HostOf(pe, r), app.placement.HostOf(pe, r));
    }
  }
}

// --------------------------------------------------------------------------
// DOT export
// --------------------------------------------------------------------------

TEST(DotExportTest, ContainsAllComponentsAndEdges) {
  const auto app = MakeApp(40, 6, 3);
  const std::string dot = model::ToDot(app.descriptor.graph);
  EXPECT_NE(dot.find("digraph application"), std::string::npos);
  for (const model::Component& c : app.descriptor.graph.components()) {
    EXPECT_NE(dot.find(StrFormat("n%d [label=\"%s\"", c.id, c.name.c_str())),
              std::string::npos);
  }
  size_t arrow_count = 0;
  for (size_t pos = 0; (pos = dot.find("->", pos)) != std::string::npos; ++pos) {
    ++arrow_count;
  }
  EXPECT_EQ(arrow_count, app.descriptor.graph.num_edges());
}

TEST(DotExportTest, StrategyColouring) {
  const auto app = MakeApp(40, 6, 3);
  strategy::ActivationStrategy s(app.descriptor.graph.num_components(), 2,
                                 app.descriptor.input_space.num_configs());
  const auto pes = app.descriptor.graph.Pes();
  s.SetActive(pes[0], 1, 0, false);  // partially active -> orange
  const std::string dot = model::ToDot(app.descriptor.graph, s, 0);
  EXPECT_NE(dot.find("palegreen"), std::string::npos);
  EXPECT_NE(dot.find("orange"), std::string::npos);
  EXPECT_EQ(dot.find("tomato"), std::string::npos);
}

// --------------------------------------------------------------------------
// Latency tracking
// --------------------------------------------------------------------------

TEST(LatencyTest, UnsaturatedPipelineLatencyNearServiceTime) {
  // source (2 t/s) -> pe (50 ms/tuple) -> sink on an idle host: latency
  // per tuple ~ 0.05 s, far below the inter-arrival time.
  model::ApplicationDescriptor app;
  const auto source = app.graph.AddSource("s");
  const auto pe = app.graph.AddPe("p");
  const auto sink = app.graph.AddSink("k");
  ASSERT_TRUE(app.graph.AddEdge(source, pe, 1.0, 0.05e9).ok());
  ASSERT_TRUE(app.graph.AddEdge(pe, sink, 1.0, 0.0).ok());
  model::SourceRateSet r;
  r.source = source;
  r.rates = {2.0};
  r.probabilities = {1.0};
  ASSERT_TRUE(app.input_space.AddSource(r).ok());
  ASSERT_TRUE(app.Validate().ok());
  model::Cluster cluster = model::Cluster::Homogeneous(2, 1e9);
  model::ReplicaPlacement placement(app.graph.num_components(), 2);
  ASSERT_TRUE(placement.Assign(pe, 0, 0).ok());
  ASSERT_TRUE(placement.Assign(pe, 1, 1).ok());
  strategy::ActivationStrategy strategy(app.graph.num_components(), 2, 1);
  dsps::InputTrace trace;
  ASSERT_TRUE(trace.Append(30.0, 0).ok());
  dsps::RuntimeOptions options;
  dsps::StreamSimulation sim(app, cluster, placement, strategy, trace, options);
  ASSERT_TRUE(sim.Run().ok());
  const auto& latency = sim.metrics().sink_latency;
  ASSERT_GT(latency.count(), 30u);
  EXPECT_NEAR(latency.Percentile(50), 0.05, 0.01);
  EXPECT_LT(latency.max(), 0.2);
}

TEST(LatencyTest, SaturationInflatesLatencyByQueueDepth) {
  // 8 t/s into a 0.2 s/tuple operator saturates: queues fill to their
  // 2-second cap and the steady-state latency approaches queue/service
  // delay >> service time.
  model::ApplicationDescriptor app;
  const auto source = app.graph.AddSource("s");
  const auto pe = app.graph.AddPe("p");
  const auto sink = app.graph.AddSink("k");
  ASSERT_TRUE(app.graph.AddEdge(source, pe, 1.0, 0.2e9).ok());
  ASSERT_TRUE(app.graph.AddEdge(pe, sink, 1.0, 0.0).ok());
  model::SourceRateSet r;
  r.source = source;
  r.rates = {8.0};
  r.probabilities = {1.0};
  ASSERT_TRUE(app.input_space.AddSource(r).ok());
  ASSERT_TRUE(app.Validate().ok());
  model::Cluster cluster = model::Cluster::Homogeneous(2, 1e9);
  model::ReplicaPlacement placement(app.graph.num_components(), 2);
  ASSERT_TRUE(placement.Assign(pe, 0, 0).ok());
  ASSERT_TRUE(placement.Assign(pe, 1, 1).ok());
  strategy::ActivationStrategy strategy(app.graph.num_components(), 2, 1);
  dsps::InputTrace trace;
  ASSERT_TRUE(trace.Append(60.0, 0).ok());
  dsps::RuntimeOptions options;
  dsps::StreamSimulation sim(app, cluster, placement, strategy, trace, options);
  ASSERT_TRUE(sim.Run().ok());
  const auto& latency = sim.metrics().sink_latency;
  ASSERT_GT(latency.count(), 0u);
  // 16-tuple queue at 5 tuples/s drain: ~3.2 s of queueing delay.
  EXPECT_GT(latency.Percentile(90), 1.0);
  EXPECT_GT(sim.metrics().dropped_tuples, 0u);
}

TEST(LatencyTest, DisabledTrackingRecordsNothing) {
  const auto app = MakeApp(40, 6, 3);
  const auto sr = strategy::MakeStaticReplication(app.descriptor.graph,
                                                  app.descriptor.input_space, 2);
  dsps::InputTrace trace;
  ASSERT_TRUE(trace.Append(10.0, 0).ok());
  dsps::RuntimeOptions options;
  options.record_latency = false;
  dsps::StreamSimulation sim(app.descriptor, app.cluster, app.placement, sr, trace,
                             options);
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_EQ(sim.metrics().sink_latency.count(), 0u);
  EXPECT_GT(sim.metrics().sink_tuples, 0u);
}

}  // namespace
}  // namespace laar
