// The conservative-window engine's central contract (DESIGN.md §10): for a
// fixed link latency, the shard count is unobservable — every exported
// artifact (metrics-registry JSON, Chrome trace, telemetry CSV, health
// report) is byte-identical whether the run used 1, 2, or 4 shards. The
// single-shard run is genuinely single-threaded (no worker is spawned), so
// it doubles as the determinism reference the multi-shard runs are held to.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "laar/appgen/app_generator.h"
#include "laar/dsps/sim_metrics.h"
#include "laar/dsps/stream_simulation.h"
#include "laar/dsps/trace.h"
#include "laar/json/json.h"
#include "laar/model/descriptor.h"
#include "laar/model/failure_topology.h"
#include "laar/model/placement.h"
#include "laar/obs/chrome_trace.h"
#include "laar/obs/health.h"
#include "laar/obs/latency_tracer.h"
#include "laar/obs/metrics_registry.h"
#include "laar/obs/timeseries.h"
#include "laar/obs/trace_recorder.h"
#include "laar/runtime/experiment.h"
#include "laar/strategy/activation_strategy.h"
#include "laar/strategy/baselines.h"

namespace laar::dsps {
namespace {

constexpr double kHz = 1e9;
constexpr double kLink = 0.05;  // conservative window width (seconds)

uint64_t Fnv1a(const std::string& text) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

struct RunHashes {
  uint64_t metrics = 0;
  uint64_t trace = 0;
  uint64_t timeseries = 0;
  uint64_t health = 0;
};

enum class Outage { kNone, kHostCrash, kRackOutage };

/// One windowed run of a generated application under static replication,
/// with every observer attached, at the given shard count. Everything
/// except `shards` is held fixed, so differing hashes can only come from
/// the partitioning.
RunHashes RunSharded(uint64_t seed, int shards, Outage outage) {
  appgen::GeneratorOptions generator;
  generator.num_pes = 12;
  generator.num_hosts = 6;
  generator.hosts_per_rack = 2;
  generator.racks_per_zone = 3;
  generator.domain_aware_placement = true;
  auto app = appgen::GenerateApplication(generator, seed);
  EXPECT_TRUE(app.ok()) << app.status().ToString();

  strategy::ActivationStrategy sr = strategy::MakeStaticReplication(
      app->descriptor.graph, app->descriptor.input_space, 2);
  auto trace = runtime::MakeExperimentTrace(app->descriptor.input_space, 40.0,
                                            1.0 / 3.0, 2);
  EXPECT_TRUE(trace.ok());

  obs::TraceRecorder recorder;
  obs::MetricsRegistry registry;
  RuntimeOptions options;
  options.trace_recorder = &recorder;
  options.telemetry = &registry;
  options.link_latency_seconds = kLink;
  options.shards = shards;
  StreamSimulation simulation(app->descriptor, app->cluster, app->placement, sr,
                              *trace, options);
  switch (outage) {
    case Outage::kNone:
      break;
    case Outage::kHostCrash:
      EXPECT_TRUE(simulation.ScheduleHostCrash(1, 20.0, 10.0).ok());
      EXPECT_TRUE(simulation.ScheduleHostCrash(4, 45.0, 5.0).ok());
      break;
    case Outage::kRackOutage:
      // Every host of rack 0 down together: the correlated-failure shape
      // the domain-aware placement exists to survive.
      for (model::HostId host : app->cluster.topology().HostsInDomain(
               model::DomainLevel::kRack, 0)) {
        EXPECT_TRUE(simulation.ScheduleHostCrash(host, 25.0, 12.0).ok());
      }
      break;
  }
  EXPECT_TRUE(simulation.Run().ok());
  dsps::PublishTo(&registry, simulation.metrics());

  RunHashes hashes;
  hashes.metrics = Fnv1a(registry.ToJson().Dump());
  hashes.trace = Fnv1a(obs::ToChromeTraceJson(recorder, nullptr).Dump());
  hashes.timeseries = Fnv1a(obs::TimeSeriesCsv(registry));
  std::vector<obs::AlertRule> rules;
  rules.push_back(obs::ParseAlertRule("drops: ts_drop_rate > 0 warn").value());
  rules.push_back(
      obs::ParseAlertRule("saturation: ts_host_cpu_util > 0.99 for 5 warn").value());
  hashes.health = Fnv1a(obs::EvaluateHealth(registry, rules).ToJson().Dump());
  return hashes;
}

void ExpectShardCountInvariant(uint64_t seed, Outage outage) {
  const RunHashes one = RunSharded(seed, 1, outage);
  const RunHashes two = RunSharded(seed, 2, outage);
  const RunHashes four = RunSharded(seed, 4, outage);
  EXPECT_EQ(one.metrics, two.metrics) << "seed " << seed;
  EXPECT_EQ(one.trace, two.trace) << "seed " << seed;
  EXPECT_EQ(one.timeseries, two.timeseries) << "seed " << seed;
  EXPECT_EQ(one.health, two.health) << "seed " << seed;
  EXPECT_EQ(one.metrics, four.metrics) << "seed " << seed;
  EXPECT_EQ(one.trace, four.trace) << "seed " << seed;
  EXPECT_EQ(one.timeseries, four.timeseries) << "seed " << seed;
  EXPECT_EQ(one.health, four.health) << "seed " << seed;
}

TEST(ShardedSimTest, ShardCountIsUnobservable) {
  ExpectShardCountInvariant(6, Outage::kNone);
}

TEST(ShardedSimTest, ShardCountIsUnobservableUnderHostCrashes) {
  ExpectShardCountInvariant(8, Outage::kHostCrash);
}

TEST(ShardedSimTest, ShardCountIsUnobservableUnderRackOutage) {
  ExpectShardCountInvariant(11, Outage::kRackOutage);
}

/// A hand-built pipeline on the windowed engine: tuples still flow end to
/// end, nothing is lost, and every sink arrival carries at least one link
/// latency per cross-host hop (deliveries are quantized to barriers, so
/// each hop costs between one and two windows).
TEST(ShardedSimTest, WindowedPipelineDeliversWithLinkLatency) {
  model::ApplicationDescriptor app;
  model::ComponentId source = app.graph.AddSource("s");
  model::ComponentId pe0 = app.graph.AddPe("p0");
  model::ComponentId pe1 = app.graph.AddPe("p1");
  model::ComponentId sink = app.graph.AddSink("k");
  ASSERT_TRUE(app.graph.AddEdge(source, pe0, 1.0, 0.01 * kHz).ok());
  ASSERT_TRUE(app.graph.AddEdge(pe0, pe1, 1.0, 0.01 * kHz).ok());
  ASSERT_TRUE(app.graph.AddEdge(pe1, sink, 1.0, 0.0).ok());
  model::SourceRateSet r;
  r.source = source;
  r.rates = {4.0, 8.0};
  r.labels = {"Low", "High"};
  r.probabilities = {0.8, 0.2};
  ASSERT_TRUE(app.input_space.AddSource(r).ok());
  ASSERT_TRUE(app.Validate().ok());
  model::Cluster cluster = model::Cluster::Homogeneous(2, kHz);
  model::ReplicaPlacement placement(app.graph.num_components(), 2);
  ASSERT_TRUE(placement.Assign(pe0, 0, 0).ok());
  ASSERT_TRUE(placement.Assign(pe0, 1, 1).ok());
  ASSERT_TRUE(placement.Assign(pe1, 0, 1).ok());
  ASSERT_TRUE(placement.Assign(pe1, 1, 0).ok());
  strategy::ActivationStrategy sr =
      strategy::MakeStaticReplication(app.graph, app.input_space, 2);

  auto trace = InputTrace::Step(0, 1, 50.0, 100.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  options.link_latency_seconds = kLink;
  options.shards = 2;
  StreamSimulation simulation(app, cluster, placement, sr, *trace, options);
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  // 50 s at 4 t/s + 50 s at 8 t/s; the tail of the pipeline may still be
  // in flight at the horizon (three hops of up to two windows each).
  EXPECT_NEAR(static_cast<double>(m.source_tuples), 600.0, 2.0);
  EXPECT_EQ(m.dropped_tuples, 0u);
  EXPECT_GE(m.sink_tuples, m.source_tuples - 8);
  // source -> pe0 -> pe1 are two network hops of (L, 2L] each, plus
  // processing; the sink hop is quantized to the next barrier too.
  EXPECT_GE(m.sink_latency.min(), 2 * kLink);
  EXPECT_LE(m.sink_latency.max(), 6 * kLink + 2 * 0.01 + 0.01);
}

TEST(ShardedSimTest, MultipleShardsRequireLinkLatency) {
  appgen::GeneratorOptions generator;
  generator.num_pes = 6;
  generator.num_hosts = 3;
  auto app = appgen::GenerateApplication(generator, 6);
  ASSERT_TRUE(app.ok());
  strategy::ActivationStrategy sr = strategy::MakeStaticReplication(
      app->descriptor.graph, app->descriptor.input_space, 2);
  auto trace = InputTrace::Step(0, 1, 5.0, 10.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  options.shards = 2;  // but link_latency_seconds left at 0
  StreamSimulation simulation(app->descriptor, app->cluster, app->placement, sr,
                              *trace, options);
  EXPECT_FALSE(simulation.Run().ok());
}

TEST(ShardedSimTest, WindowedEngineRejectsLatencyTracer) {
  appgen::GeneratorOptions generator;
  generator.num_pes = 6;
  generator.num_hosts = 3;
  auto app = appgen::GenerateApplication(generator, 6);
  ASSERT_TRUE(app.ok());
  strategy::ActivationStrategy sr = strategy::MakeStaticReplication(
      app->descriptor.graph, app->descriptor.input_space, 2);
  auto trace = InputTrace::Step(0, 1, 5.0, 10.0);
  ASSERT_TRUE(trace.ok());
  obs::LatencyTracer::Options tracer_options;
  tracer_options.sample_rate = 0.5;
  obs::LatencyTracer tracer(tracer_options);
  RuntimeOptions options;
  options.link_latency_seconds = kLink;
  options.latency_tracer = &tracer;
  StreamSimulation simulation(app->descriptor, app->cluster, app->placement, sr,
                              *trace, options);
  EXPECT_FALSE(simulation.Run().ok());
}

}  // namespace
}  // namespace laar::dsps
