#include <gtest/gtest.h>

#include "laar/metrics/cost.h"
#include "laar/metrics/failure_model.h"
#include "laar/metrics/ic.h"

namespace laar::metrics {
namespace {

using model::ApplicationGraph;
using model::Cluster;
using model::ComponentId;
using model::ConfigId;
using model::ExpectedRates;
using model::InputSpace;
using model::ReplicaPlacement;
using model::SourceRateSet;
using strategy::ActivationStrategy;

/// The Fig. 1 application: source(4 t/s @ .8 | 8 t/s @ .2) -> p0 -> p1,
/// selectivity 1, 100 ms per tuple on 1 GHz hosts.
struct Fixture {
  ApplicationGraph graph;
  InputSpace space;
  ExpectedRates rates;
  ComponentId source, pe0, pe1, sink;

  Fixture() {
    source = graph.AddSource("s");
    pe0 = graph.AddPe("p0");
    pe1 = graph.AddPe("p1");
    sink = graph.AddSink("k");
    EXPECT_TRUE(graph.AddEdge(source, pe0, 1.0, 1e8).ok());
    EXPECT_TRUE(graph.AddEdge(pe0, pe1, 1.0, 1e8).ok());
    EXPECT_TRUE(graph.AddEdge(pe1, sink, 1.0, 0.0).ok());
    EXPECT_TRUE(graph.Validate().ok());
    SourceRateSet r;
    r.source = source;
    r.rates = {4.0, 8.0};
    r.probabilities = {0.8, 0.2};
    EXPECT_TRUE(space.AddSource(r).ok());
    rates = *ExpectedRates::Compute(graph, space);
  }

  ReplicaPlacement PairedPlacement() const {
    ReplicaPlacement p(graph.num_components(), 2);
    EXPECT_TRUE(p.Assign(pe0, 0, 0).ok());
    EXPECT_TRUE(p.Assign(pe0, 1, 1).ok());
    EXPECT_TRUE(p.Assign(pe1, 0, 0).ok());
    EXPECT_TRUE(p.Assign(pe1, 1, 1).ok());
    return p;
  }
};

TEST(FailureModelTest, PessimisticRequiresAllActive) {
  Fixture f;
  PessimisticFailureModel model;
  ActivationStrategy s(f.graph.num_components(), 2, 2);
  EXPECT_DOUBLE_EQ(model.Phi(f.graph, s, f.pe0, 0), 1.0);
  s.SetActive(f.pe0, 1, 0, false);
  EXPECT_DOUBLE_EQ(model.Phi(f.graph, s, f.pe0, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.Phi(f.graph, s, f.pe0, 1), 1.0);
}

TEST(FailureModelTest, NoFailureNeedsOneActive) {
  Fixture f;
  NoFailureModel model;
  ActivationStrategy s(f.graph.num_components(), 2, 2);
  s.SetActive(f.pe0, 1, 0, false);
  EXPECT_DOUBLE_EQ(model.Phi(f.graph, s, f.pe0, 0), 1.0);
  s.SetActive(f.pe0, 0, 0, false);
  EXPECT_DOUBLE_EQ(model.Phi(f.graph, s, f.pe0, 0), 0.0);
}

TEST(FailureModelTest, IndependentModelInterpolates) {
  Fixture f;
  IndependentFailureModel model(0.1);
  ActivationStrategy s(f.graph.num_components(), 2, 2);
  EXPECT_NEAR(model.Phi(f.graph, s, f.pe0, 0), 1.0 - 0.01, 1e-12);  // two active
  s.SetActive(f.pe0, 1, 0, false);
  EXPECT_NEAR(model.Phi(f.graph, s, f.pe0, 0), 0.9, 1e-12);  // one active
  s.SetActive(f.pe0, 0, 0, false);
  EXPECT_DOUBLE_EQ(model.Phi(f.graph, s, f.pe0, 0), 0.0);
}

TEST(FailureModelTest, CorrelatedCountsDistinctDomains) {
  Fixture f;
  const ReplicaPlacement placement = f.PairedPlacement();
  ActivationStrategy s(f.graph.num_components(), 2, 2);

  // Hosts 0 and 1 in one rack: both active replicas share the failure
  // domain, so redundancy buys nothing (φ = 1 - f, not 1 - f²).
  const model::FailureTopology one_rack = model::FailureTopology::Uniform(2, 2, 1);
  CorrelatedFailureModel co_racked(placement, one_rack, model::DomainLevel::kRack, 0.1);
  EXPECT_NEAR(co_racked.Phi(f.graph, s, f.pe0, 0), 0.9, 1e-12);

  // One host per rack: the domains are distinct and φ = 1 - f².
  const model::FailureTopology split = model::FailureTopology::Uniform(2, 1, 1);
  CorrelatedFailureModel spread(placement, split, model::DomainLevel::kRack, 0.1);
  EXPECT_NEAR(spread.Phi(f.graph, s, f.pe0, 0), 1.0 - 0.01, 1e-12);

  // Deactivating one replica collapses both models to a single domain.
  s.SetActive(f.pe0, 1, 0, false);
  EXPECT_NEAR(spread.Phi(f.graph, s, f.pe0, 0), 0.9, 1e-12);
  s.SetActive(f.pe0, 0, 0, false);
  EXPECT_DOUBLE_EQ(spread.Phi(f.graph, s, f.pe0, 0), 0.0);
}

TEST(FailureModelTest, CorrelatedAtHostLevelMatchesIndependent) {
  Fixture f;
  const ReplicaPlacement placement = f.PairedPlacement();
  ActivationStrategy s(f.graph.num_components(), 2, 2);
  IndependentFailureModel independent(0.2);
  // Even with both hosts racked together, the host level sees each host as
  // its own domain — the correlated model degenerates to the independent
  // one.
  const model::FailureTopology one_rack = model::FailureTopology::Uniform(2, 2, 1);
  CorrelatedFailureModel host_level(placement, one_rack, model::DomainLevel::kHost, 0.2);
  for (ConfigId c = 0; c < 2; ++c) {
    EXPECT_NEAR(host_level.Phi(f.graph, s, f.pe0, c),
                independent.Phi(f.graph, s, f.pe0, c), 1e-12);
  }
}

TEST(IcCalculatorTest, BestCaseMatchesHandComputation) {
  Fixture f;
  IcCalculator calc(f.graph, f.space, f.rates);
  // Per second: p0 receives Δ(src), p1 receives Δ(p0) = Δ(src).
  // BIC/T = 0.8*(4+4) + 0.2*(8+8) = 9.6.
  EXPECT_NEAR(calc.BestCase(), 9.6, 1e-12);
  EXPECT_NEAR(calc.BestCaseOfConfig(0), 8.0, 1e-12);
  EXPECT_NEAR(calc.BestCaseOfConfig(1), 16.0, 1e-12);
}

TEST(IcCalculatorTest, FullReplicationHasIcOne) {
  Fixture f;
  IcCalculator calc(f.graph, f.space, f.rates);
  ActivationStrategy sr(f.graph.num_components(), 2, 2);
  PessimisticFailureModel pessimistic;
  EXPECT_NEAR(calc.InternalCompleteness(sr, pessimistic), 1.0, 1e-12);
  NoFailureModel none;
  EXPECT_NEAR(calc.InternalCompleteness(sr, none), 1.0, 1e-12);
}

TEST(IcCalculatorTest, SingleReplicaInHighMatchesHandComputation) {
  Fixture f;
  IcCalculator calc(f.graph, f.space, f.rates);
  // Deactivate one replica of both PEs in High: pessimistic φ = 0 there.
  ActivationStrategy s(f.graph.num_components(), 2, 2);
  s.SetActive(f.pe0, 1, 1, false);
  s.SetActive(f.pe1, 0, 1, false);
  PessimisticFailureModel pessimistic;
  // FIC/T = 0.8 * (4 + 4) = 6.4  ->  IC = 6.4 / 9.6 = 2/3.
  EXPECT_NEAR(calc.FailureCase(s, pessimistic), 6.4, 1e-12);
  EXPECT_NEAR(calc.InternalCompleteness(s, pessimistic), 2.0 / 3.0, 1e-12);
  // Under no failures the same strategy still processes everything.
  NoFailureModel none;
  EXPECT_NEAR(calc.InternalCompleteness(s, none), 1.0, 1e-12);
}

TEST(IcCalculatorTest, UpstreamLossPropagatesDownstream) {
  Fixture f;
  IcCalculator calc(f.graph, f.space, f.rates);
  // Only p0 loses a replica in High: p1 keeps both, but its inflow Δ̂ is 0
  // in High (Eq. 7 recursion), so p1 contributes nothing there either.
  ActivationStrategy s(f.graph.num_components(), 2, 2);
  s.SetActive(f.pe0, 1, 1, false);
  PessimisticFailureModel pessimistic;
  // High config: p0 contributes 0 (φ=0); p1 has φ=1 but Δ̂(p0)=0.
  // FIC/T = 0.8*(4+4) + 0.2*(8*0 + 0) = 6.4.
  EXPECT_NEAR(calc.FailureCase(s, pessimistic), 6.4, 1e-12);
}

TEST(IcCalculatorTest, ExpectedOutputsRecursion) {
  Fixture f;
  IcCalculator calc(f.graph, f.space, f.rates);
  ActivationStrategy s(f.graph.num_components(), 2, 2);
  s.SetActive(f.pe0, 1, 1, false);
  PessimisticFailureModel pessimistic;
  const std::vector<double> high = calc.ExpectedOutputs(s, pessimistic, 1);
  EXPECT_DOUBLE_EQ(high[f.source], 8.0);
  EXPECT_DOUBLE_EQ(high[f.pe0], 0.0);
  EXPECT_DOUBLE_EQ(high[f.pe1], 0.0);
  EXPECT_DOUBLE_EQ(high[f.sink], 0.0);
  const std::vector<double> low = calc.ExpectedOutputs(s, pessimistic, 0);
  EXPECT_DOUBLE_EQ(low[f.pe1], 4.0);
  EXPECT_DOUBLE_EQ(low[f.sink], 4.0);
}

TEST(IcCalculatorTest, IndependentModelBoundsPessimisticFromAbove) {
  Fixture f;
  IcCalculator calc(f.graph, f.space, f.rates);
  ActivationStrategy s(f.graph.num_components(), 2, 2);
  s.SetActive(f.pe0, 1, 1, false);
  s.SetActive(f.pe1, 1, 1, false);
  PessimisticFailureModel pessimistic;
  IndependentFailureModel independent(0.2);
  EXPECT_GE(calc.InternalCompleteness(s, independent),
            calc.InternalCompleteness(s, pessimistic));
}

TEST(CostTest, CostPerSecondMatchesHandComputation) {
  Fixture f;
  ReplicaPlacement placement = f.PairedPlacement();
  ActivationStrategy sr(f.graph.num_components(), 2, 2);
  // Per replica demand: 4 t/s * 1e8 = 4e8 at Low, 8e8 at High, per PE.
  // SR cost = 0.8 * 2*(4e8+4e8) + 0.2 * 2*(8e8+8e8) = 1.28e9 + 0.64e9.
  EXPECT_NEAR(CostPerSecond(f.graph, f.space, f.rates, placement, sr), 1.92e9, 1e-3);

  ActivationStrategy laar = sr;
  laar.SetActive(f.pe0, 1, 1, false);
  laar.SetActive(f.pe1, 0, 1, false);
  // High config now costs half: 0.2 * (8e8+8e8) = 0.32e9.
  EXPECT_NEAR(CostPerSecond(f.graph, f.space, f.rates, placement, laar), 1.6e9, 1e-3);
}

TEST(CostTest, HostLoadsRespectPlacementAndStrategy) {
  Fixture f;
  Cluster cluster = Cluster::Homogeneous(2, 1e9);
  ReplicaPlacement placement = f.PairedPlacement();
  ActivationStrategy sr(f.graph.num_components(), 2, 2);
  std::vector<double> low = HostLoads(f.graph, f.rates, placement, sr, cluster, 0);
  EXPECT_NEAR(low[0], 8e8, 1e-3);
  EXPECT_NEAR(low[1], 8e8, 1e-3);
  std::vector<double> high = HostLoads(f.graph, f.rates, placement, sr, cluster, 1);
  EXPECT_NEAR(high[0], 1.6e9, 1e-3);
  EXPECT_FALSE(IsOverloaded(f.graph, f.rates, placement, sr, cluster, 0));
  EXPECT_TRUE(IsOverloaded(f.graph, f.rates, placement, sr, cluster, 1));

  // Deactivating replica 0 of p1 and replica 1 of p0 balances both hosts.
  ActivationStrategy laar = sr;
  laar.SetActive(f.pe0, 1, 1, false);
  laar.SetActive(f.pe1, 0, 1, false);
  std::vector<double> balanced = HostLoads(f.graph, f.rates, placement, laar, cluster, 1);
  EXPECT_NEAR(balanced[0], 8e8, 1e-3);
  EXPECT_NEAR(balanced[1], 8e8, 1e-3);
}

TEST(CostTest, CheckStrategyConstraintsAcceptsAndRejects) {
  Fixture f;
  Cluster cluster = Cluster::Homogeneous(2, 1e9);
  ReplicaPlacement placement = f.PairedPlacement();

  ActivationStrategy laar(f.graph.num_components(), 2, 2);
  laar.SetActive(f.pe0, 1, 1, false);
  laar.SetActive(f.pe1, 0, 1, false);
  // IC = 2/3: feasible at 0.6, infeasible at 0.7.
  EXPECT_TRUE(CheckStrategyConstraints(f.graph, f.space, f.rates, placement, laar, cluster,
                                       0.6)
                  .ok());
  EXPECT_FALSE(CheckStrategyConstraints(f.graph, f.space, f.rates, placement, laar, cluster,
                                        0.7)
                   .ok());

  // SR violates the CPU constraint in High.
  ActivationStrategy sr(f.graph.num_components(), 2, 2);
  EXPECT_FALSE(
      CheckStrategyConstraints(f.graph, f.space, f.rates, placement, sr, cluster, 0.5).ok());

  // Empty coverage violates Eq. 12.
  ActivationStrategy empty(f.graph.num_components(), 2, 2);
  empty.SetAll(f.pe0, 0, false);
  EXPECT_FALSE(
      CheckStrategyConstraints(f.graph, f.space, f.rates, placement, empty, cluster, 0.0)
          .ok());
}

}  // namespace
}  // namespace laar::metrics
