#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "laar/common/logging.h"
#include "laar/common/stats.h"
#include "laar/dsps/sim_metrics.h"
#include "laar/dsps/stream_simulation.h"
#include "laar/dsps/trace.h"
#include "laar/ftsearch/ft_search.h"
#include "laar/model/descriptor.h"
#include "laar/model/placement.h"
#include "laar/obs/chrome_trace.h"
#include "laar/obs/latency_tracer.h"
#include "laar/obs/metrics_registry.h"
#include "laar/obs/timeseries.h"
#include "laar/obs/trace_recorder.h"
#include "laar/runtime/corpus.h"
#include "laar/strategy/activation_strategy.h"

namespace laar {
namespace {

using dsps::InputTrace;
using dsps::RuntimeOptions;
using dsps::StreamSimulation;
using model::ApplicationDescriptor;
using model::Cluster;
using model::ComponentId;
using model::ReplicaPlacement;
using model::SourceRateSet;
using strategy::ActivationStrategy;

// ---------------------------------------------------------------- recorder

TEST(TraceRecorderTest, RingBufferEvictsOldestAndCountsOverwrites) {
  obs::TraceRecorder::Options options;
  options.capacity = 4;
  obs::TraceRecorder recorder(options);
  for (int i = 0; i < 10; ++i) {
    recorder.Instant(obs::EventName::kTupleDrop, static_cast<double>(i));
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.total_recorded(), 10u);
  EXPECT_EQ(recorder.overwritten(), 6u);
  const std::vector<obs::TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving first: times 6, 7, 8, 9.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].time, 6.0 + static_cast<double>(i));
  }
  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.total_recorded(), 0u);
}

TEST(TraceRecorderTest, CategoryMaskFiltersAtEmission) {
  obs::TraceRecorder::Options options;
  options.categories = static_cast<uint32_t>(obs::Category::kFailures);
  obs::TraceRecorder recorder(options);
  EXPECT_TRUE(recorder.Wants(obs::Category::kFailures));
  EXPECT_FALSE(recorder.Wants(obs::Category::kDrops));
  recorder.Instant(obs::EventName::kTupleDrop, 1.0);
  recorder.Instant(obs::EventName::kHostCrash, 2.0);
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.Events()[0].name, obs::EventName::kHostCrash);
  EXPECT_EQ(recorder.total_recorded(), 1u);  // filtered events never count
}

TEST(TraceRecorderTest, ParseCategoryList) {
  bool ok = false;
  EXPECT_EQ(obs::ParseCategoryList("", &ok), obs::kAllCategories);
  EXPECT_TRUE(ok);
  EXPECT_EQ(obs::ParseCategoryList("drops,failures", &ok),
            static_cast<uint32_t>(obs::Category::kDrops) |
                static_cast<uint32_t>(obs::Category::kFailures));
  EXPECT_TRUE(ok);
  obs::ParseCategoryList("drops,nonsense", &ok);
  EXPECT_FALSE(ok);
}

// ---------------------------------------------------------------- registry

TEST(MetricsRegistryTest, LookupCreatesAndLabelsAreOrderInsensitive) {
  obs::MetricsRegistry registry;
  obs::Counter* c1 = registry.GetCounter("tuples", {{"a", "1"}, {"b", "2"}});
  obs::Counter* c2 = registry.GetCounter("tuples", {{"b", "2"}, {"a", "1"}});
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1, c2);  // same instance: labels canonicalize
  c1->Increment(3.0);
  const obs::Counter* found = registry.FindCounter("tuples", {{"b", "2"}, {"a", "1"}});
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->value(), 3.0);
  // A name registered as a counter cannot come back as a gauge.
  EXPECT_EQ(registry.GetGauge("tuples", {{"a", "1"}, {"b", "2"}}), nullptr);
  EXPECT_EQ(registry.FindCounter("absent"), nullptr);
}

TEST(MetricsRegistryTest, ToJsonIsDeterministicAcrossInsertionOrder) {
  obs::MetricsRegistry forward;
  obs::MetricsRegistry backward;
  for (int i = 0; i < 5; ++i) {
    const std::string label = std::to_string(i);
    forward.GetCounter("c", {{"k", label}})->Increment(i);
    forward.GetGauge("g", {{"k", label}})->Set(i);
  }
  for (int i = 4; i >= 0; --i) {
    const std::string label = std::to_string(i);
    backward.GetGauge("g", {{"k", label}})->Set(i);
    backward.GetCounter("c", {{"k", label}})->Increment(i);
  }
  EXPECT_EQ(forward.ToJson().Dump(), backward.ToJson().Dump());
}

TEST(MetricsRegistryTest, CrossLabelRollups) {
  obs::MetricsRegistry registry;
  registry.GetCounter("drops", {{"seed", "1"}})->Increment(2.0);
  registry.GetCounter("drops", {{"seed", "2"}})->Increment(5.0);
  registry.GetGauge("depth", {{"seed", "1"}})->Set(7.0);
  registry.GetGauge("depth", {{"seed", "2"}})->Set(3.0);
  EXPECT_DOUBLE_EQ(registry.SumCounters("drops"), 7.0);
  EXPECT_DOUBLE_EQ(registry.MaxGauge("depth"), 7.0);
  EXPECT_DOUBLE_EQ(registry.SumCounters("absent"), 0.0);
  EXPECT_DOUBLE_EQ(registry.MaxGauge("absent"), 0.0);
}

TEST(TimeSeriesTest, RingEvictsOldestAndReportsCounts) {
  obs::TimeSeries series(4);
  for (int i = 0; i < 10; ++i) series.Append(static_cast<double>(i), i * 10.0);
  EXPECT_EQ(series.size(), 4u);
  EXPECT_EQ(series.capacity(), 4u);
  EXPECT_EQ(series.total_appended(), 10u);
  EXPECT_EQ(series.overwritten(), 6u);
  const std::vector<obs::TimeSeries::Sample> samples = series.Samples();
  ASSERT_EQ(samples.size(), 4u);
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(samples[i].time, 6.0 + static_cast<double>(i));
    EXPECT_DOUBLE_EQ(samples[i].value, (6.0 + static_cast<double>(i)) * 10.0);
  }
}

TEST(MetricsRegistryTest, TimeSeriesEntriesExportDeterministically) {
  obs::MetricsRegistry forward;
  obs::MetricsRegistry backward;
  for (int i = 0; i < 3; ++i) {
    const std::string label = std::to_string(i);
    obs::TimeSeries* s = forward.GetTimeSeries("ts_x", {{"pe", label}}, 8);
    ASSERT_NE(s, nullptr);
    s->Append(1.0, i);
    s->Append(2.0, i + 0.5);
  }
  for (int i = 2; i >= 0; --i) {
    const std::string label = std::to_string(i);
    obs::TimeSeries* s = backward.GetTimeSeries("ts_x", {{"pe", label}}, 8);
    ASSERT_NE(s, nullptr);
    s->Append(1.0, i);
    s->Append(2.0, i + 0.5);
  }
  EXPECT_EQ(obs::TimeSeriesCsv(forward), obs::TimeSeriesCsv(backward));
  EXPECT_EQ(obs::TimeSeriesJson(forward).Dump(), obs::TimeSeriesJson(backward).Dump());
  EXPECT_EQ(forward.ToJson().Dump(), backward.ToJson().Dump());
  // The CSV carries the fixed header and one row per sample.
  const std::string csv = obs::TimeSeriesCsv(forward);
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "series,labels,time,value");
  EXPECT_NE(csv.find("ts_x,pe=1,2,1.5"), std::string::npos);
  // Type exclusivity extends to series: the name cannot come back as gauge.
  EXPECT_EQ(forward.GetGauge("ts_x", {{"pe", "1"}}), nullptr);
  // Snapshots are sorted by (name, labels).
  const auto snapshots = forward.SnapshotTimeSeries();
  ASSERT_EQ(snapshots.size(), 3u);
  EXPECT_EQ(snapshots[0].labels[0].second, "0");
  EXPECT_EQ(snapshots[2].labels[0].second, "2");
}

TEST(HistogramTest, FromCountsRoundTripsSerializedState) {
  Histogram original(0.0, 10.0, 4);
  original.Add(-1.0);  // underflow
  original.Add(1.0);
  original.Add(6.0);
  original.Add(6.5);
  original.Add(25.0);  // overflow
  std::vector<size_t> counts;
  for (size_t i = 0; i < original.bins(); ++i) counts.push_back(original.count(i));
  const Histogram loaded = Histogram::FromCounts(
      original.lo(), original.hi(), counts, original.underflow(), original.overflow());
  EXPECT_DOUBLE_EQ(loaded.lo(), original.lo());
  EXPECT_DOUBLE_EQ(loaded.hi(), original.hi());
  ASSERT_EQ(loaded.bins(), original.bins());
  for (size_t i = 0; i < loaded.bins(); ++i) {
    EXPECT_EQ(loaded.count(i), original.count(i)) << "bin " << i;
  }
  EXPECT_EQ(loaded.underflow(), 1u);
  EXPECT_EQ(loaded.overflow(), 1u);
  EXPECT_EQ(loaded.total(), original.total());
}

// ------------------------------------------------------------- simulation

constexpr double kHz = 1e9;

/// The Fig. 3-style pipeline: source -> pe0 -> pe1 -> sink, two replicas
/// per PE spread over two hosts, rates {Low, High}. The default High rate
/// (20 t/s) exceeds a host's processing capacity (10 t/s at 0.1 s/tuple),
/// so a High period guarantees queue overflow drops; pass a feasible rate
/// (e.g. 8.0) for FT-Search scenarios that need a solvable instance.
struct SimFixture {
  ApplicationDescriptor app;
  Cluster cluster = Cluster::Homogeneous(2, kHz);
  ReplicaPlacement placement{0, 2};
  ComponentId source, pe0, pe1, sink;

  explicit SimFixture(double high_rate = 20.0) {
    source = app.graph.AddSource("s");
    pe0 = app.graph.AddPe("p0");
    pe1 = app.graph.AddPe("p1");
    sink = app.graph.AddSink("k");
    EXPECT_TRUE(app.graph.AddEdge(source, pe0, 1.0, 0.1 * kHz).ok());
    EXPECT_TRUE(app.graph.AddEdge(pe0, pe1, 1.0, 0.1 * kHz).ok());
    EXPECT_TRUE(app.graph.AddEdge(pe1, sink, 1.0, 0.0).ok());
    EXPECT_TRUE(app.graph.Validate().ok());
    SourceRateSet r;
    r.source = source;
    r.rates = {4.0, high_rate};
    r.labels = {"Low", "High"};
    r.probabilities = {0.8, 0.2};
    EXPECT_TRUE(app.input_space.AddSource(r).ok());
    EXPECT_TRUE(app.Validate().ok());
    placement = ReplicaPlacement(app.graph.num_components(), 2);
    EXPECT_TRUE(placement.Assign(pe0, 0, 0).ok());
    EXPECT_TRUE(placement.Assign(pe0, 1, 1).ok());
    EXPECT_TRUE(placement.Assign(pe1, 0, 0).ok());
    EXPECT_TRUE(placement.Assign(pe1, 1, 1).ok());
  }

  /// LAAR-style strategy: everything active at Low, one replica per PE
  /// (split across hosts) at High — the config switch produces activation
  /// events under dynamic control.
  ActivationStrategy LaarStrategy() const {
    ActivationStrategy s(app.graph.num_components(), 2, app.input_space.num_configs());
    s.SetActive(pe0, 1, 1, false);
    s.SetActive(pe1, 0, 1, false);
    return s;
  }
};

TEST(SimulationTracingTest, DisabledTracingChangesNothing) {
  SimFixture f;
  auto trace = InputTrace::Step(0, 1, 30.0, 60.0);
  ASSERT_TRUE(trace.ok());
  ActivationStrategy laar = f.LaarStrategy();

  RuntimeOptions plain;
  StreamSimulation baseline(f.app, f.cluster, f.placement, laar, *trace, plain);
  ASSERT_TRUE(baseline.Run().ok());

  RuntimeOptions traced_options;
  obs::TraceRecorder recorder;
  traced_options.trace_recorder = &recorder;
  StreamSimulation traced(f.app, f.cluster, f.placement, laar, *trace, traced_options);
  ASSERT_TRUE(traced.Run().ok());

  EXPECT_EQ(baseline.metrics().source_tuples, traced.metrics().source_tuples);
  EXPECT_EQ(baseline.metrics().sink_tuples, traced.metrics().sink_tuples);
  EXPECT_EQ(baseline.metrics().dropped_tuples, traced.metrics().dropped_tuples);
  EXPECT_EQ(baseline.metrics().activation_switches, traced.metrics().activation_switches);
  EXPECT_GT(recorder.total_recorded(), 0u);
}

TEST(SimulationTracingTest, ChromeTraceIsValidAndCarriesTheKeyEvents) {
  SimFixture f;
  // 30 s Low, then High until 80 s; host 1 crashes at t=40 for 5 s.
  auto trace = InputTrace::Step(0, 1, 30.0, 80.0);
  ASSERT_TRUE(trace.ok());
  ActivationStrategy laar = f.LaarStrategy();
  RuntimeOptions options;
  obs::TraceRecorder recorder;
  options.trace_recorder = &recorder;
  StreamSimulation simulation(f.app, f.cluster, f.placement, laar, *trace, options);
  ASSERT_TRUE(simulation.ScheduleHostCrash(1, 40.0, 5.0).ok());
  ASSERT_TRUE(simulation.Run().ok());

  const json::Value chrome = obs::ToChromeTraceJson(recorder);
  const Status valid = obs::ValidateChromeTrace(chrome);
  EXPECT_TRUE(valid.ok()) << valid.ToString();

  const std::string dump = chrome.Dump();
  EXPECT_NE(dump.find("replica_deactivate"), std::string::npos);
  EXPECT_NE(dump.find("tuple_drop"), std::string::npos);
  EXPECT_NE(dump.find("host_crash"), std::string::npos);
  EXPECT_NE(dump.find("host_recover"), std::string::npos);
  EXPECT_NE(dump.find("input_config"), std::string::npos);
  EXPECT_NE(dump.find("queue_high_watermark"), std::string::npos);

  // Category filtering keeps the failure events and the metadata, drops
  // the rest, and stays schema-valid.
  auto filtered = obs::FilterChromeTrace(
      chrome, static_cast<uint32_t>(obs::Category::kFailures));
  ASSERT_TRUE(filtered.ok());
  EXPECT_TRUE(obs::ValidateChromeTrace(*filtered).ok());
  const std::string filtered_dump = filtered->Dump();
  EXPECT_NE(filtered_dump.find("host_crash"), std::string::npos);
  EXPECT_EQ(filtered_dump.find("tuple_drop"), std::string::npos);

  EXPECT_FALSE(obs::SummarizeChromeTrace(chrome).empty());
}

TEST(SimulationTracingTest, CrashRunsRenderOutageSpansAndLossEvents) {
  SimFixture f;
  auto trace = InputTrace::Step(0, 1, 60.0, 120.0);
  ASSERT_TRUE(trace.ok());
  ActivationStrategy laar = f.LaarStrategy();

  auto run_traced = [&](std::string* dump) {
    RuntimeOptions options;
    obs::TraceRecorder recorder;
    options.trace_recorder = &recorder;
    StreamSimulation simulation(f.app, f.cluster, f.placement, laar, *trace, options);
    // Overlapping two-host outage: both hosts dark 42-45 s.
    ASSERT_TRUE(simulation.ScheduleHostCrash(0, 40.0, 5.0).ok());
    ASSERT_TRUE(simulation.ScheduleHostCrash(1, 42.0, 6.0).ok());
    ASSERT_TRUE(simulation.Run().ok());
    EXPECT_GT(simulation.metrics().crash_lost_tuples, 0u);
    const json::Value chrome = obs::ToChromeTraceJson(recorder);
    const Status valid = obs::ValidateChromeTrace(chrome);
    EXPECT_TRUE(valid.ok()) << valid.ToString();
    *dump = chrome.Dump();

    // The exporter synthesizes span records from the crash/recover pairs so
    // outages render as bars (not just paired ticks) in Perfetto, and the
    // per-loss instants carry their provenance.
    EXPECT_NE(dump->find("host_outage"), std::string::npos);
    EXPECT_NE(dump->find("replica_outage"), std::string::npos);
    EXPECT_NE(dump->find("tuple_crash_loss"), std::string::npos);

    // Category filtering keeps the synthesized spans with the rest of the
    // failure events, and the drops view keeps the loss provenance.
    auto failures = obs::FilterChromeTrace(
        chrome, static_cast<uint32_t>(obs::Category::kFailures));
    ASSERT_TRUE(failures.ok());
    EXPECT_TRUE(obs::ValidateChromeTrace(*failures).ok());
    EXPECT_NE(failures->Dump().find("host_outage"), std::string::npos);
    EXPECT_EQ(failures->Dump().find("tuple_crash_loss"), std::string::npos);
    auto drops = obs::FilterChromeTrace(
        chrome, static_cast<uint32_t>(obs::Category::kDrops));
    ASSERT_TRUE(drops.ok());
    EXPECT_NE(drops->Dump().find("tuple_crash_loss"), std::string::npos);
  };

  // Identical runs export byte-identical traces — the forensics layer can
  // trust crash traces to be deterministic artifacts.
  std::string dump1, dump2;
  run_traced(&dump1);
  run_traced(&dump2);
  EXPECT_EQ(dump1, dump2);
}

TEST(SimulationTracingTest, RegistrySummaryReflectsTheRun) {
  SimFixture f;
  auto trace = InputTrace::Step(0, 1, 30.0, 60.0);
  ASSERT_TRUE(trace.ok());
  ActivationStrategy laar = f.LaarStrategy();
  RuntimeOptions options;
  StreamSimulation simulation(f.app, f.cluster, f.placement, laar, *trace, options);
  ASSERT_TRUE(simulation.Run().ok());

  obs::MetricsRegistry registry;
  dsps::PublishTo(&registry, simulation.metrics());
  const obs::Counter* in = registry.FindCounter("sim_source_tuples");
  ASSERT_NE(in, nullptr);
  EXPECT_DOUBLE_EQ(in->value(),
                   static_cast<double>(simulation.metrics().source_tuples));
  const std::string summary = dsps::RunSummaryFromRegistry(registry);
  EXPECT_NE(summary.find("drops="), std::string::npos);
  EXPECT_NE(summary.find("switches="), std::string::npos);
  EXPECT_NE(summary.find("worst_queue_depth="), std::string::npos);
  // The aggregate roll-up equals the single-run summary prefix when only
  // one label set exists.
  const std::string aggregate = dsps::AggregateRunSummaryFromRegistry(registry);
  EXPECT_EQ(summary.substr(0, aggregate.size()), aggregate);
}

// --------------------------------------------------------- latency tracing

TEST(LatencyTracerTest, SamplingDecisionsAreSeededAndDeterministic) {
  obs::LatencyTracer::Options options;
  options.sample_rate = 0.5;
  options.seed = 7;
  obs::LatencyTracer a(options);
  obs::LatencyTracer b(options);
  std::vector<uint32_t> decisions_a;
  std::vector<uint32_t> decisions_b;
  for (int i = 0; i < 200; ++i) {
    decisions_a.push_back(a.SampleRoot(0, i * 0.1));
    decisions_b.push_back(b.SampleRoot(0, i * 0.1));
  }
  EXPECT_EQ(decisions_a, decisions_b);  // same seed => same decisions
  EXPECT_GT(a.sampled_roots(), 50u);    // roughly half, seeded hash
  EXPECT_LT(a.sampled_roots(), 150u);

  options.seed = 8;
  obs::LatencyTracer c(options);
  std::vector<uint32_t> decisions_c;
  for (int i = 0; i < 200; ++i) decisions_c.push_back(c.SampleRoot(0, i * 0.1));
  EXPECT_NE(decisions_a, decisions_c);  // a different seed reshuffles

  obs::LatencyTracer disabled;  // default rate 0
  EXPECT_FALSE(disabled.enabled());
  EXPECT_EQ(disabled.SampleRoot(0, 0.0), 0u);
}

TEST(LatencyTracerTest, RateOneTracesEveryTupleAndBuildsSpanTrees) {
  obs::LatencyTracer::Options options;
  options.sample_rate = 1.0;
  obs::LatencyTracer tracer(options);
  const uint32_t root = tracer.SampleRoot(0, 1.0);
  ASSERT_NE(root, 0u);
  tracer.RecordHop(root, obs::HopKind::kEnqueue, 1.0, 0.0, 2, 0, 0, 0);
  tracer.RecordHop(root, obs::HopKind::kDequeue, 1.5, 0.5, 2, 0, 0, 0);
  tracer.RecordHop(root, obs::HopKind::kProcess, 1.7, 0.2, 2, 0, 0, 0);
  const uint32_t child = tracer.Fork(root, 2, 1.7);
  ASSERT_NE(child, 0u);
  tracer.RecordHop(child, obs::HopKind::kSink, 2.0, 0.0, 5, -1, -1, 0);
  EXPECT_EQ(tracer.sampled_roots(), 1u);
  EXPECT_EQ(tracer.PathOf(child), "0>2");

  const obs::LatencyBreakdown breakdown = tracer.Breakdown();
  EXPECT_EQ(breakdown.sink_arrivals, 1u);
  ASSERT_EQ(breakdown.operators.size(), 1u);
  EXPECT_EQ(breakdown.operators[0].component, 2);
  EXPECT_EQ(breakdown.operators[0].queue_wait.count(), 1u);
  EXPECT_DOUBLE_EQ(breakdown.operators[0].queue_wait.mean(), 0.5);
  EXPECT_DOUBLE_EQ(breakdown.operators[0].service.mean(), 0.2);
  ASSERT_EQ(breakdown.paths.size(), 1u);
  EXPECT_EQ(breakdown.paths[0].path, "0>2>5");
  EXPECT_DOUBLE_EQ(breakdown.end_to_end.mean(), 1.0);  // 2.0 - root start 1.0
  EXPECT_FALSE(breakdown.ToString().empty());
  EXPECT_TRUE(breakdown.ToJson().is_object());
}

TEST(SimulationLatencyTracingTest, SamplingChangesNoMetricsAndIsReproducible) {
  SimFixture f;
  auto trace = InputTrace::Step(0, 1, 30.0, 60.0);
  ASSERT_TRUE(trace.ok());
  ActivationStrategy laar = f.LaarStrategy();

  RuntimeOptions plain;
  StreamSimulation baseline(f.app, f.cluster, f.placement, laar, *trace, plain);
  ASSERT_TRUE(baseline.Run().ok());

  auto run_traced = [&](std::string* chrome_dump, std::string* breakdown_dump,
                        dsps::SimulationMetrics* metrics) {
    obs::TraceRecorder recorder;
    obs::LatencyTracer::Options tracer_options;
    tracer_options.sample_rate = 0.25;
    tracer_options.seed = 42;
    obs::LatencyTracer tracer(tracer_options);
    RuntimeOptions options;
    options.trace_recorder = &recorder;
    options.latency_tracer = &tracer;
    StreamSimulation simulation(f.app, f.cluster, f.placement, laar, *trace, options);
    ASSERT_TRUE(simulation.Run().ok());
    EXPECT_GT(tracer.sampled_roots(), 0u);
    const obs::LatencyBreakdown breakdown = tracer.Breakdown();
    EXPECT_GT(breakdown.sink_arrivals, 0u);
    EXPECT_GT(breakdown.operators.size(), 0u);
    // The High period overflows queues, so sampled tuples hit drops too.
    uint64_t drops = 0;
    for (const obs::OperatorLatency& op : breakdown.operators) drops += op.drops;
    EXPECT_GT(drops, 0u);
    const json::Value chrome = obs::ToChromeTraceJson(recorder, &tracer);
    EXPECT_TRUE(obs::ValidateChromeTrace(chrome).ok());
    *chrome_dump = chrome.Dump();
    *breakdown_dump = breakdown.ToJson().Dump();
    *metrics = simulation.metrics();
  };

  std::string chrome1, chrome2, breakdown1, breakdown2;
  dsps::SimulationMetrics m1, m2;
  run_traced(&chrome1, &breakdown1, &m1);
  run_traced(&chrome2, &breakdown2, &m2);

  // Same seed => byte-identical artifacts.
  EXPECT_EQ(chrome1, chrome2);
  EXPECT_EQ(breakdown1, breakdown2);

  // Sampling must observe, never perturb: metrics match the plain run.
  EXPECT_EQ(baseline.metrics().source_tuples, m1.source_tuples);
  EXPECT_EQ(baseline.metrics().sink_tuples, m1.sink_tuples);
  EXPECT_EQ(baseline.metrics().dropped_tuples, m1.dropped_tuples);
  EXPECT_EQ(baseline.metrics().activation_switches, m1.activation_switches);
  EXPECT_EQ(baseline.metrics().TotalProcessed(), m1.TotalProcessed());
  EXPECT_DOUBLE_EQ(baseline.metrics().TotalCpuCycles(), m1.TotalCpuCycles());

  // The merged trace carries the tuple-level span events.
  EXPECT_NE(chrome1.find("tuple_queued"), std::string::npos);
  EXPECT_NE(chrome1.find("tuple_process"), std::string::npos);
  EXPECT_NE(chrome1.find("tuple_sink"), std::string::npos);
}

TEST(SimulationTelemetryTest, PeriodicSeriesAreRecordedAndReproducible) {
  SimFixture f;
  auto trace = InputTrace::Step(0, 1, 30.0, 60.0);
  ASSERT_TRUE(trace.ok());
  ActivationStrategy laar = f.LaarStrategy();

  RuntimeOptions plain;
  StreamSimulation baseline(f.app, f.cluster, f.placement, laar, *trace, plain);
  ASSERT_TRUE(baseline.Run().ok());

  auto run_telemetry = [&](std::string* csv, uint64_t* sinks) {
    obs::MetricsRegistry registry;
    RuntimeOptions options;
    options.telemetry = &registry;
    options.telemetry_period_seconds = 2.0;
    StreamSimulation simulation(f.app, f.cluster, f.placement, laar, *trace, options);
    ASSERT_TRUE(simulation.Run().ok());
    *csv = obs::TimeSeriesCsv(registry);
    *sinks = simulation.metrics().sink_tuples;

    // Every advertised series exists; the sampled ones carry data.
    for (const char* name :
         {"ts_source_rate", "ts_output_rate", "ts_drop_rate", "ts_pending_events"}) {
      ASSERT_NE(registry.FindTimeSeries(name), nullptr) << name;
    }
    const obs::TimeSeries* cpu =
        registry.FindTimeSeries("ts_host_cpu_util", {{"host", "0"}});
    ASSERT_NE(cpu, nullptr);
    EXPECT_GT(cpu->size(), 20u);  // 60 s at 2 s period
    double peak_util = 0.0;
    for (const auto& sample : cpu->Samples()) {
      peak_util = std::max(peak_util, sample.value);
      EXPECT_GE(sample.value, 0.0);
      EXPECT_LE(sample.value, 1.0 + 1e-9);
    }
    EXPECT_GT(peak_util, 0.5);  // the High period saturates host 0
    const obs::TimeSeries* depth =
        registry.FindTimeSeries("ts_queue_depth", {{"pe", std::to_string(f.pe0)}});
    ASSERT_NE(depth, nullptr);
    EXPECT_GT(depth->size(), 0u);
  };

  std::string csv1, csv2;
  uint64_t sinks1 = 0, sinks2 = 0;
  run_telemetry(&csv1, &sinks1);
  run_telemetry(&csv2, &sinks2);
  EXPECT_EQ(csv1, csv2);  // byte-identical CSV across same-seed runs
  EXPECT_FALSE(csv1.empty());

  // Telemetry sampling never perturbs the simulation itself.
  EXPECT_EQ(baseline.metrics().sink_tuples, sinks1);
  EXPECT_EQ(sinks1, sinks2);
}

// ------------------------------------------------------------------ corpus

runtime::HarnessOptions TinyHarness() {
  runtime::HarnessOptions options;
  options.generator.num_pes = 6;
  options.generator.num_hosts = 3;
  options.variants.laar_ic_requirements = {0.5};
  options.variants.ftsearch_time_limit_seconds = 0.0;
  options.variants.ftsearch_node_limit = 50000;
  options.trace_seconds = 30.0;
  options.trace_cycles = 2;
  return options;
}

std::string ReadFileBytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CorpusTracingTest, TraceFilesAndRegistryAreIdenticalAcrossJobs) {
  const std::filesystem::path base =
      std::filesystem::path(::testing::TempDir()) / "laar_obs_corpus";
  std::filesystem::remove_all(base);

  runtime::CorpusOptions corpus;
  corpus.num_apps = 2;
  corpus.seed_base = 500;
  corpus.verbose = false;

  std::string reference_metrics;
  std::vector<std::string> reference_files;  // sorted name + content pairs
  for (int jobs : {1, 4}) {
    const std::filesystem::path dir = base / ("jobs" + std::to_string(jobs));
    std::filesystem::create_directories(dir);
    runtime::HarnessOptions harness = TinyHarness();
    obs::MetricsRegistry registry;
    harness.trace_dir = dir.string();
    harness.metrics = &registry;
    // Telemetry series and sampled latency gauges are labelled per
    // (seed, variant, scenario) — one writer each — so they must be
    // --jobs-invariant like the scalar aggregates and the trace files.
    harness.record_timeseries = true;
    harness.telemetry_period_seconds = 2.0;
    harness.latency_sample_rate = 0.1;
    corpus.jobs = jobs;
    const runtime::CorpusResult result = runtime::RunCorpus(harness, corpus);
    ASSERT_EQ(result.records.size(), 2u) << "jobs=" << jobs;

    std::vector<std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      files.push_back(entry.path().filename().string());
    }
    std::sort(files.begin(), files.end());
    ASSERT_FALSE(files.empty());
    std::vector<std::string> contents;
    for (const std::string& name : files) {
      contents.push_back(name + "\n" + ReadFileBytes(dir / name));
    }
    const std::string metrics_dump =
        registry.ToJson().Dump() + "\n" + obs::TimeSeriesCsv(registry);
    if (jobs == 1) {
      reference_files = std::move(contents);
      reference_metrics = metrics_dump;
    } else {
      ASSERT_EQ(contents.size(), reference_files.size());
      for (size_t i = 0; i < contents.size(); ++i) {
        EXPECT_EQ(contents[i], reference_files[i]) << "jobs=" << jobs;
      }
      EXPECT_EQ(metrics_dump, reference_metrics) << "jobs=" << jobs;
    }
  }
  std::filesystem::remove_all(base);
}

// --------------------------------------------------------------- ftsearch

TEST(FtSearchProgressTest, CallbackObservesWithoutChangingTheResult) {
  SimFixture f(/*high_rate=*/8.0);  // feasible: an incumbent must exist
  auto rates = model::ExpectedRates::Compute(f.app.graph, f.app.input_space);
  ASSERT_TRUE(rates.ok());

  ftsearch::FtSearchOptions plain;
  plain.ic_requirement = 0.5;
  auto baseline = ftsearch::RunFtSearch(f.app.graph, f.app.input_space, *rates,
                                        f.placement, f.cluster, plain);
  ASSERT_TRUE(baseline.ok());

  std::vector<ftsearch::FtSearchProgress> snapshots;
  ftsearch::FtSearchOptions observed = plain;
  observed.progress_interval_nodes = 1;
  observed.progress = [&](const ftsearch::FtSearchProgress& progress) {
    snapshots.push_back(progress);
  };
  auto traced = ftsearch::RunFtSearch(f.app.graph, f.app.input_space, *rates,
                                      f.placement, f.cluster, observed);
  ASSERT_TRUE(traced.ok());

  EXPECT_EQ(traced->outcome, baseline->outcome);
  EXPECT_DOUBLE_EQ(traced->best_cost, baseline->best_cost);
  EXPECT_DOUBLE_EQ(traced->best_ic, baseline->best_ic);

  ASSERT_FALSE(snapshots.empty());
  // The final snapshot is exact: it reports the merged end-of-run stats.
  const ftsearch::FtSearchProgress& last = snapshots.back();
  EXPECT_EQ(last.nodes_explored, traced->stats.nodes_explored);
  EXPECT_EQ(last.solutions_found, traced->stats.solutions_found);
  EXPECT_TRUE(last.has_incumbent);
  EXPECT_FALSE(last.ToString().empty());

  obs::MetricsRegistry registry;
  ftsearch::PublishTo(&registry, traced->stats);
  const obs::Counter* nodes = registry.FindCounter("ftsearch_nodes_explored");
  ASSERT_NE(nodes, nullptr);
  EXPECT_DOUBLE_EQ(nodes->value(), static_cast<double>(traced->stats.nodes_explored));
}

// ---------------------------------------------------------------- logging

TEST(LoggingTest, ParseLogLevelAcceptsNamesAndNumbers) {
  LogLevel level = LogLevel::kWarning;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("ERROR", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("4", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel(nullptr, &level));
  EXPECT_EQ(level, LogLevel::kOff);  // failures leave the value untouched
}

TEST(LoggingTest, InitLogLevelFromEnvHonorsTheVariable) {
  const LogLevel saved = GetLogLevel();
  ASSERT_EQ(setenv("LAAR_LOG_LEVEL", "debug", 1), 0);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  // An unparseable value leaves the level alone.
  ASSERT_EQ(setenv("LAAR_LOG_LEVEL", "nonsense", 1), 0);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  unsetenv("LAAR_LOG_LEVEL");
  SetLogLevel(saved);
}

}  // namespace
}  // namespace laar
