#include <gtest/gtest.h>

#include "laar/runtime/experiment.h"
#include "laar/runtime/variants.h"

namespace laar::runtime {
namespace {

HarnessOptions SmallHarness() {
  HarnessOptions options;
  options.generator.num_pes = 8;
  options.generator.num_hosts = 4;
  options.variants.laar_ic_requirements = {0.5, 0.7};
  options.variants.ftsearch_time_limit_seconds = 20.0;
  options.trace_seconds = 60.0;
  options.trace_cycles = 2;
  return options;
}

uint64_t FindUsableSeed(const HarnessOptions& options, uint64_t start) {
  for (uint64_t seed = start; seed < start + 50; ++seed) {
    auto app = appgen::GenerateApplication(options.generator, seed);
    if (!app.ok()) continue;
    auto variants = BuildVariants(*app, options.variants);
    if (variants.ok()) return seed;
  }
  return 0;
}

TEST(VariantsTest, BuildsFullComparisonSet) {
  HarnessOptions options = SmallHarness();
  const uint64_t seed = FindUsableSeed(options, 1);
  ASSERT_NE(seed, 0u);
  auto app = appgen::GenerateApplication(options.generator, seed);
  ASSERT_TRUE(app.ok());
  auto variants = BuildVariants(*app, options.variants);
  ASSERT_TRUE(variants.ok()) << variants.status().ToString();
  ASSERT_EQ(variants->size(), 5u);  // NR, SR, GRD, L.5, L.7
  EXPECT_EQ((*variants)[0].name, "NR");
  EXPECT_EQ((*variants)[1].name, "SR");
  EXPECT_EQ((*variants)[2].name, "GRD");
  EXPECT_EQ((*variants)[3].name, "L.5");
  EXPECT_EQ((*variants)[4].name, "L.7");

  const model::ApplicationGraph& graph = app->descriptor.graph;
  const model::InputSpace& space = app->descriptor.input_space;
  // NR: exactly one active replica everywhere.
  for (model::ConfigId c = 0; c < space.num_configs(); ++c) {
    for (model::ComponentId pe : graph.Pes()) {
      EXPECT_EQ((*variants)[0].strategy.ActiveReplicaCount(pe, c), 1);
      EXPECT_EQ((*variants)[1].strategy.ActiveReplicaCount(pe, c), 2);
      EXPECT_GE((*variants)[2].strategy.ActiveReplicaCount(pe, c), 1);
    }
  }
  // L.x variants carry their FT-Search provenance and meet their bound.
  EXPECT_TRUE((*variants)[3].search.has_value());
  EXPECT_GE((*variants)[3].search->best_ic, 0.5 - 1e-9);
  EXPECT_GE((*variants)[4].search->best_ic, 0.7 - 1e-9);
  // Higher IC requirement cannot be cheaper.
  EXPECT_GE((*variants)[4].search->best_cost, (*variants)[3].search->best_cost - 1e-6);
}

TEST(ExperimentTest, MakeExperimentTraceShape) {
  model::InputSpace space;
  model::SourceRateSet r;
  r.source = 0;
  r.rates = {1.0, 2.0};
  r.probabilities = {0.5, 0.5};
  ASSERT_TRUE(space.AddSource(r).ok());
  auto trace = MakeExperimentTrace(space, 300.0, 1.0 / 3.0, 3);
  ASSERT_TRUE(trace.ok());
  EXPECT_DOUBLE_EQ(trace->TotalDuration(), 300.0);
  EXPECT_NEAR(trace->TimeIn(space.PeakConfig()), 100.0, 1e-9);
  EXPECT_FALSE(MakeExperimentTrace(space, -1.0, 0.3, 3).ok());
  EXPECT_FALSE(MakeExperimentTrace(space, 300.0, 1.5, 3).ok());
}

TEST(ExperimentTest, WorstCaseSurvivorsAreLeastActive) {
  model::ApplicationGraph graph;
  const auto source = graph.AddSource("s");
  const auto pe = graph.AddPe("p");
  const auto sink = graph.AddSink("k");
  ASSERT_TRUE(graph.AddEdge(source, pe, 1, 1).ok());
  ASSERT_TRUE(graph.AddEdge(pe, sink, 1, 0).ok());
  ASSERT_TRUE(graph.Validate().ok());
  model::InputSpace space;
  model::SourceRateSet r;
  r.source = source;
  r.rates = {1.0, 2.0};
  r.probabilities = {0.7, 0.3};
  ASSERT_TRUE(space.AddSource(r).ok());

  // Replica 1 is inactive during High: the adversary keeps it.
  strategy::ActivationStrategy s(graph.num_components(), 2, 2);
  s.SetActive(pe, 1, 1, false);
  std::vector<int> survivors = ChooseWorstCaseSurvivors(graph, space, s);
  EXPECT_EQ(survivors[pe], 1);

  // Fully active strategy: either replica works equally well, so the
  // explicit tie-break keeps the lowest index deterministically.
  strategy::ActivationStrategy sr(graph.num_components(), 2, 2);
  survivors = ChooseWorstCaseSurvivors(graph, space, sr);
  EXPECT_EQ(survivors[pe], 0);
}

TEST(ExperimentTest, HarnessRunsAllScenarios) {
  HarnessOptions options = SmallHarness();
  options.run_host_crash = true;
  const uint64_t seed = FindUsableSeed(options, 100);
  ASSERT_NE(seed, 0u);
  Result<AppExperimentRecord> record = RunAppExperiment(options, seed);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  ASSERT_EQ(record->variants.size(), 5u);

  const VariantMeasurement* nr = record->Find("NR");
  const VariantMeasurement* sr = record->Find("SR");
  const VariantMeasurement* l5 = record->Find("L.5");
  ASSERT_NE(nr, nullptr);
  ASSERT_NE(sr, nullptr);
  ASSERT_NE(l5, nullptr);
  EXPECT_EQ(record->Find("nope"), nullptr);

  // Best case: everything flows, so SR costs more CPU than NR and L.5 sits
  // in between (or equals one end).
  EXPECT_GT(nr->cpu_cycles, 0.0);
  EXPECT_GT(sr->cpu_cycles, nr->cpu_cycles);
  EXPECT_GE(l5->cpu_cycles, nr->cpu_cycles * 0.95);
  EXPECT_LE(l5->cpu_cycles, sr->cpu_cycles * 1.05);

  // Worst case: NR processes nothing (its only replica of each PE is the
  // one the adversary kills... unless it was the survivor); SR processes
  // like best case.
  EXPECT_GE(sr->processed_worst, sr->processed_best / 2);
  EXPECT_LE(nr->processed_worst, nr->processed_best);

  // Crash scenario produced some output for replicated variants.
  EXPECT_GT(sr->processed_crash, 0u);
}

TEST(ExperimentTest, HarnessRunsDomainOutage) {
  HarnessOptions options = SmallHarness();
  options.generator.hosts_per_rack = 2;  // 4 hosts -> 2 racks
  options.run_domain_outage = true;
  options.domain_outage_bursts = 2;
  const uint64_t seed = FindUsableSeed(options, 200);
  ASSERT_NE(seed, 0u);
  Result<AppExperimentRecord> record = RunAppExperiment(options, seed);
  ASSERT_TRUE(record.ok()) << record.status().ToString();

  const VariantMeasurement* sr = record->Find("SR");
  ASSERT_NE(sr, nullptr);
  // SR keeps every replica active, so even a whole-rack outage leaves the
  // other rack's replicas processing.
  EXPECT_GT(sr->processed_domain, 0u);
  EXPECT_LE(sr->processed_domain, sr->processed_best);
  EXPECT_GT(record->stages.simulate_domain_seconds, 0.0);

  // Without the scenario the field stays zero (and the stage unused).
  options.run_domain_outage = false;
  Result<AppExperimentRecord> plain = RunAppExperiment(options, seed);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->Find("SR")->processed_domain, 0u);
  EXPECT_EQ(plain->stages.simulate_domain_seconds, 0.0);
}

/// A hand-built two-PE application on 4 hosts where only hosts 0 and 1
/// carry replicas — hosts 2 and 3 are decoys a naive uniform host draw
/// would waste crashes on.
appgen::GeneratedApplication TwoPeAppWithIdleHosts() {
  appgen::GeneratedApplication app;
  const auto source = app.descriptor.graph.AddSource("s");
  const auto pe0 = app.descriptor.graph.AddPe("p0");
  const auto pe1 = app.descriptor.graph.AddPe("p1");
  const auto sink = app.descriptor.graph.AddSink("k");
  EXPECT_TRUE(app.descriptor.graph.AddEdge(source, pe0, 1.0, 1e8).ok());
  EXPECT_TRUE(app.descriptor.graph.AddEdge(pe0, pe1, 1.0, 1e8).ok());
  EXPECT_TRUE(app.descriptor.graph.AddEdge(pe1, sink, 1.0, 0.0).ok());
  EXPECT_TRUE(app.descriptor.graph.Validate().ok());
  model::SourceRateSet r;
  r.source = source;
  r.rates = {2.0, 4.0};
  r.probabilities = {0.8, 0.2};
  EXPECT_TRUE(app.descriptor.input_space.AddSource(r).ok());
  app.cluster = model::Cluster::Homogeneous(4, 1e9);
  app.placement = model::ReplicaPlacement(app.descriptor.graph.num_components(), 2);
  EXPECT_TRUE(app.placement.Assign(pe0, 0, 0).ok());
  EXPECT_TRUE(app.placement.Assign(pe0, 1, 1).ok());
  EXPECT_TRUE(app.placement.Assign(pe1, 0, 0).ok());
  EXPECT_TRUE(app.placement.Assign(pe1, 1, 1).ok());
  return app;
}

TEST(ExperimentTest, HostCrashDrawsOnlyReplicaCarryingHosts) {
  const appgen::GeneratedApplication app = TwoPeAppWithIdleHosts();
  const strategy::ActivationStrategy sr(app.descriptor.graph.num_components(), 2,
                                        app.descriptor.input_space.num_configs());
  auto trace = MakeExperimentTrace(app.descriptor.input_space, 120.0, 1.0 / 3.0, 2);
  ASSERT_TRUE(trace.ok());
  const dsps::RuntimeOptions runtime;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    ScenarioOptions scenario;
    scenario.scenario = FailureScenario::kHostCrash;
    scenario.seed = seed;
    auto metrics = RunScenario(app, sr, *trace, runtime, scenario);
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    ASSERT_FALSE(metrics->crashed_hosts.empty());
    for (const model::HostId host : metrics->crashed_hosts) {
      EXPECT_TRUE(host == 0 || host == 1)
          << "seed " << seed << " crashed idle host " << host;
    }
  }
}

TEST(ExperimentTest, DomainOutageStrikesWholeReplicaCarryingRacks) {
  appgen::GeneratedApplication app = TwoPeAppWithIdleHosts();
  // Racks {0,1} and {2,3}: only rack 0 carries replicas.
  app.cluster.set_topology(model::FailureTopology::Uniform(4, 2, 1));
  const strategy::ActivationStrategy sr(app.descriptor.graph.num_components(), 2,
                                        app.descriptor.input_space.num_configs());
  auto trace = MakeExperimentTrace(app.descriptor.input_space, 120.0, 1.0 / 3.0, 2);
  ASSERT_TRUE(trace.ok());
  const dsps::RuntimeOptions runtime;
  ScenarioOptions scenario;
  scenario.scenario = FailureScenario::kDomainOutage;
  scenario.seed = 5;
  scenario.outage_bursts = 2;
  auto metrics = RunScenario(app, sr, *trace, runtime, scenario);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  // Both bursts must have hit rack 0 — the only replica-carrying domain —
  // and each burst crashes both of its hosts.
  ASSERT_EQ(metrics->crashed_hosts.size(), 4u);
  for (const model::HostId host : metrics->crashed_hosts) {
    EXPECT_TRUE(host == 0 || host == 1) << "outage struck idle host " << host;
  }
}

TEST(ExperimentTest, CrashedHostGaugePublishedOnlyForCrashRuns) {
  const appgen::GeneratedApplication app = TwoPeAppWithIdleHosts();
  const strategy::ActivationStrategy sr(app.descriptor.graph.num_components(), 2,
                                        app.descriptor.input_space.num_configs());
  auto trace = MakeExperimentTrace(app.descriptor.input_space, 120.0, 1.0 / 3.0, 2);
  ASSERT_TRUE(trace.ok());
  const dsps::RuntimeOptions runtime;

  ScenarioOptions crash;
  crash.scenario = FailureScenario::kHostCrash;
  crash.seed = 3;
  auto crashed = RunScenario(app, sr, *trace, runtime, crash);
  ASSERT_TRUE(crashed.ok());
  obs::MetricsRegistry with_crash;
  dsps::PublishTo(&with_crash, *crashed);
  const std::string crash_dump = with_crash.ToJson().Dump();
  EXPECT_NE(crash_dump.find("sim_crashed_host"), std::string::npos);
  EXPECT_NE(crash_dump.find("sim_host_crashes"), std::string::npos);

  ScenarioOptions best;
  auto clean = RunScenario(app, sr, *trace, runtime, best);
  ASSERT_TRUE(clean.ok());
  obs::MetricsRegistry without_crash;
  dsps::PublishTo(&without_crash, *clean);
  // Failure-free runs must not grow new series (determinism goldens hash
  // the registry contents).
  const std::string clean_dump = without_crash.ToJson().Dump();
  EXPECT_EQ(clean_dump.find("sim_crashed_host"), std::string::npos);
  EXPECT_EQ(clean_dump.find("sim_host_crashes"), std::string::npos);
}

// --------------------------------------------------------------------------
// The paper's central property (§5.3, Fig. 11 top): for every LAAR variant
// the measured worst-case IC is at least the promised (pessimistic-model)
// bound, up to small measurement noise (the paper itself reports
// violations never bigger than 4.7%).
// --------------------------------------------------------------------------

class IcSoundnessTest : public testing::TestWithParam<uint64_t> {};

TEST_P(IcSoundnessTest, MeasuredWorstCaseIcRespectsPromise) {
  HarnessOptions options = SmallHarness();
  options.variants.laar_ic_requirements = {0.5, 0.7};
  const uint64_t seed = FindUsableSeed(options, GetParam() * 1000);
  if (seed == 0) GTEST_SKIP() << "no solvable instance near " << GetParam() * 1000;
  Result<AppExperimentRecord> record = RunAppExperiment(options, seed);
  ASSERT_TRUE(record.ok()) << record.status().ToString();

  const VariantMeasurement* nr = record->Find("NR");
  ASSERT_NE(nr, nullptr);
  ASSERT_GT(nr->processed_best, 0u);
  const double reference = static_cast<double>(nr->processed_best);

  for (const char* name : {"L.5", "L.7"}) {
    const VariantMeasurement* variant = record->Find(name);
    ASSERT_NE(variant, nullptr);
    const double measured_ic = static_cast<double>(variant->processed_worst) / reference;
    EXPECT_GE(measured_ic, variant->promised_ic - 0.05)
        << name << " seed=" << seed << " promised=" << variant->promised_ic
        << " measured=" << measured_ic;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IcSoundnessTest, testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace laar::runtime
