#include <gtest/gtest.h>

#include "laar/runtime/experiment.h"
#include "laar/runtime/variants.h"

namespace laar::runtime {
namespace {

HarnessOptions SmallHarness() {
  HarnessOptions options;
  options.generator.num_pes = 8;
  options.generator.num_hosts = 4;
  options.variants.laar_ic_requirements = {0.5, 0.7};
  options.variants.ftsearch_time_limit_seconds = 20.0;
  options.trace_seconds = 60.0;
  options.trace_cycles = 2;
  return options;
}

uint64_t FindUsableSeed(const HarnessOptions& options, uint64_t start) {
  for (uint64_t seed = start; seed < start + 50; ++seed) {
    auto app = appgen::GenerateApplication(options.generator, seed);
    if (!app.ok()) continue;
    auto variants = BuildVariants(*app, options.variants);
    if (variants.ok()) return seed;
  }
  return 0;
}

TEST(VariantsTest, BuildsFullComparisonSet) {
  HarnessOptions options = SmallHarness();
  const uint64_t seed = FindUsableSeed(options, 1);
  ASSERT_NE(seed, 0u);
  auto app = appgen::GenerateApplication(options.generator, seed);
  ASSERT_TRUE(app.ok());
  auto variants = BuildVariants(*app, options.variants);
  ASSERT_TRUE(variants.ok()) << variants.status().ToString();
  ASSERT_EQ(variants->size(), 5u);  // NR, SR, GRD, L.5, L.7
  EXPECT_EQ((*variants)[0].name, "NR");
  EXPECT_EQ((*variants)[1].name, "SR");
  EXPECT_EQ((*variants)[2].name, "GRD");
  EXPECT_EQ((*variants)[3].name, "L.5");
  EXPECT_EQ((*variants)[4].name, "L.7");

  const model::ApplicationGraph& graph = app->descriptor.graph;
  const model::InputSpace& space = app->descriptor.input_space;
  // NR: exactly one active replica everywhere.
  for (model::ConfigId c = 0; c < space.num_configs(); ++c) {
    for (model::ComponentId pe : graph.Pes()) {
      EXPECT_EQ((*variants)[0].strategy.ActiveReplicaCount(pe, c), 1);
      EXPECT_EQ((*variants)[1].strategy.ActiveReplicaCount(pe, c), 2);
      EXPECT_GE((*variants)[2].strategy.ActiveReplicaCount(pe, c), 1);
    }
  }
  // L.x variants carry their FT-Search provenance and meet their bound.
  EXPECT_TRUE((*variants)[3].search.has_value());
  EXPECT_GE((*variants)[3].search->best_ic, 0.5 - 1e-9);
  EXPECT_GE((*variants)[4].search->best_ic, 0.7 - 1e-9);
  // Higher IC requirement cannot be cheaper.
  EXPECT_GE((*variants)[4].search->best_cost, (*variants)[3].search->best_cost - 1e-6);
}

TEST(ExperimentTest, MakeExperimentTraceShape) {
  model::InputSpace space;
  model::SourceRateSet r;
  r.source = 0;
  r.rates = {1.0, 2.0};
  r.probabilities = {0.5, 0.5};
  ASSERT_TRUE(space.AddSource(r).ok());
  auto trace = MakeExperimentTrace(space, 300.0, 1.0 / 3.0, 3);
  ASSERT_TRUE(trace.ok());
  EXPECT_DOUBLE_EQ(trace->TotalDuration(), 300.0);
  EXPECT_NEAR(trace->TimeIn(space.PeakConfig()), 100.0, 1e-9);
  EXPECT_FALSE(MakeExperimentTrace(space, -1.0, 0.3, 3).ok());
  EXPECT_FALSE(MakeExperimentTrace(space, 300.0, 1.5, 3).ok());
}

TEST(ExperimentTest, WorstCaseSurvivorsAreLeastActive) {
  model::ApplicationGraph graph;
  const auto source = graph.AddSource("s");
  const auto pe = graph.AddPe("p");
  const auto sink = graph.AddSink("k");
  ASSERT_TRUE(graph.AddEdge(source, pe, 1, 1).ok());
  ASSERT_TRUE(graph.AddEdge(pe, sink, 1, 0).ok());
  ASSERT_TRUE(graph.Validate().ok());
  model::InputSpace space;
  model::SourceRateSet r;
  r.source = source;
  r.rates = {1.0, 2.0};
  r.probabilities = {0.7, 0.3};
  ASSERT_TRUE(space.AddSource(r).ok());

  // Replica 1 is inactive during High: the adversary keeps it.
  strategy::ActivationStrategy s(graph.num_components(), 2, 2);
  s.SetActive(pe, 1, 1, false);
  std::vector<int> survivors = ChooseWorstCaseSurvivors(graph, space, s);
  EXPECT_EQ(survivors[pe], 1);

  // Fully active strategy: either replica works equally well, so the
  // explicit tie-break keeps the lowest index deterministically.
  strategy::ActivationStrategy sr(graph.num_components(), 2, 2);
  survivors = ChooseWorstCaseSurvivors(graph, space, sr);
  EXPECT_EQ(survivors[pe], 0);
}

TEST(ExperimentTest, HarnessRunsAllScenarios) {
  HarnessOptions options = SmallHarness();
  options.run_host_crash = true;
  const uint64_t seed = FindUsableSeed(options, 100);
  ASSERT_NE(seed, 0u);
  Result<AppExperimentRecord> record = RunAppExperiment(options, seed);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  ASSERT_EQ(record->variants.size(), 5u);

  const VariantMeasurement* nr = record->Find("NR");
  const VariantMeasurement* sr = record->Find("SR");
  const VariantMeasurement* l5 = record->Find("L.5");
  ASSERT_NE(nr, nullptr);
  ASSERT_NE(sr, nullptr);
  ASSERT_NE(l5, nullptr);
  EXPECT_EQ(record->Find("nope"), nullptr);

  // Best case: everything flows, so SR costs more CPU than NR and L.5 sits
  // in between (or equals one end).
  EXPECT_GT(nr->cpu_cycles, 0.0);
  EXPECT_GT(sr->cpu_cycles, nr->cpu_cycles);
  EXPECT_GE(l5->cpu_cycles, nr->cpu_cycles * 0.95);
  EXPECT_LE(l5->cpu_cycles, sr->cpu_cycles * 1.05);

  // Worst case: NR processes nothing (its only replica of each PE is the
  // one the adversary kills... unless it was the survivor); SR processes
  // like best case.
  EXPECT_GE(sr->processed_worst, sr->processed_best / 2);
  EXPECT_LE(nr->processed_worst, nr->processed_best);

  // Crash scenario produced some output for replicated variants.
  EXPECT_GT(sr->processed_crash, 0u);
}

// --------------------------------------------------------------------------
// The paper's central property (§5.3, Fig. 11 top): for every LAAR variant
// the measured worst-case IC is at least the promised (pessimistic-model)
// bound, up to small measurement noise (the paper itself reports
// violations never bigger than 4.7%).
// --------------------------------------------------------------------------

class IcSoundnessTest : public testing::TestWithParam<uint64_t> {};

TEST_P(IcSoundnessTest, MeasuredWorstCaseIcRespectsPromise) {
  HarnessOptions options = SmallHarness();
  options.variants.laar_ic_requirements = {0.5, 0.7};
  const uint64_t seed = FindUsableSeed(options, GetParam() * 1000);
  if (seed == 0) GTEST_SKIP() << "no solvable instance near " << GetParam() * 1000;
  Result<AppExperimentRecord> record = RunAppExperiment(options, seed);
  ASSERT_TRUE(record.ok()) << record.status().ToString();

  const VariantMeasurement* nr = record->Find("NR");
  ASSERT_NE(nr, nullptr);
  ASSERT_GT(nr->processed_best, 0u);
  const double reference = static_cast<double>(nr->processed_best);

  for (const char* name : {"L.5", "L.7"}) {
    const VariantMeasurement* variant = record->Find(name);
    ASSERT_NE(variant, nullptr);
    const double measured_ic = static_cast<double>(variant->processed_worst) / reference;
    EXPECT_GE(measured_ic, variant->promised_ic - 0.05)
        << name << " seed=" << seed << " promised=" << variant->promised_ic
        << " measured=" << measured_ic;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IcSoundnessTest, testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace laar::runtime
