#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "laar/model/placement.h"
#include "laar/placement/placement_algorithms.h"

namespace laar::model {
namespace {

struct Fixture {
  ApplicationGraph graph;
  InputSpace space;
  std::vector<ComponentId> pes;
};

Fixture MakeChain(int num_pes) {
  Fixture f;
  const ComponentId source = f.graph.AddSource("s");
  ComponentId prev = source;
  for (int i = 0; i < num_pes; ++i) {
    const ComponentId pe = f.graph.AddPe("p");
    EXPECT_TRUE(f.graph.AddEdge(prev, pe, 1.0, 100.0 * (i + 1)).ok());
    f.pes.push_back(pe);
    prev = pe;
  }
  const ComponentId sink = f.graph.AddSink("k");
  EXPECT_TRUE(f.graph.AddEdge(prev, sink, 1.0, 0.0).ok());
  EXPECT_TRUE(f.graph.Validate().ok());
  SourceRateSet rates;
  rates.source = source;
  rates.rates = {2.0, 4.0};
  rates.probabilities = {0.5, 0.5};
  EXPECT_TRUE(f.space.AddSource(rates).ok());
  return f;
}

TEST(ReplicaPlacementTest, AssignAndLookup) {
  ReplicaPlacement p(4, 2);
  EXPECT_EQ(p.replication_factor(), 2);
  ASSERT_TRUE(p.Assign(1, 0, 0).ok());
  ASSERT_TRUE(p.Assign(1, 1, 1).ok());
  EXPECT_EQ(p.HostOf(1, 0), 0);
  EXPECT_EQ(p.HostOf(1, 1), 1);
  EXPECT_TRUE(p.IsAssigned(1));
  EXPECT_FALSE(p.IsAssigned(2));
}

TEST(ReplicaPlacementTest, RejectsOutOfRange) {
  ReplicaPlacement p(2, 2);
  EXPECT_FALSE(p.Assign(5, 0, 0).ok());
  EXPECT_FALSE(p.Assign(0, 2, 0).ok());
  EXPECT_FALSE(p.Assign(-1, 0, 0).ok());
}

TEST(ReplicaPlacementTest, InverseMap) {
  ReplicaPlacement p(3, 2);
  ASSERT_TRUE(p.Assign(0, 0, 0).ok());
  ASSERT_TRUE(p.Assign(0, 1, 1).ok());
  ASSERT_TRUE(p.Assign(2, 0, 1).ok());
  ASSERT_TRUE(p.Assign(2, 1, 0).ok());
  const auto on_host1 = p.ReplicasOn(1);
  ASSERT_EQ(on_host1.size(), 2u);
  EXPECT_EQ(on_host1[0], (ReplicaRef{0, 1}));
  EXPECT_EQ(on_host1[1], (ReplicaRef{2, 0}));
  EXPECT_EQ(p.AllReplicas().size(), 4u);
}

TEST(ReplicaPlacementTest, ValidateDetectsPartialPlacement) {
  Cluster cluster = Cluster::Homogeneous(2, 100.0);
  ReplicaPlacement p(1, 2);
  ASSERT_TRUE(p.Assign(0, 0, 0).ok());
  EXPECT_FALSE(p.Validate(cluster).ok());
}

TEST(ReplicaPlacementTest, ValidateDetectsAntiAffinityViolation) {
  Cluster cluster = Cluster::Homogeneous(2, 100.0);
  ReplicaPlacement p(1, 2);
  ASSERT_TRUE(p.Assign(0, 0, 1).ok());
  ASSERT_TRUE(p.Assign(0, 1, 1).ok());
  EXPECT_FALSE(p.Validate(cluster).ok());
  EXPECT_TRUE(p.Validate(cluster, /*require_anti_affinity=*/false).ok());
}

TEST(ReplicaPlacementTest, ValidateDetectsUnknownHost) {
  Cluster cluster = Cluster::Homogeneous(2, 100.0);
  ReplicaPlacement p(1, 2);
  ASSERT_TRUE(p.Assign(0, 0, 0).ok());
  ASSERT_TRUE(p.Assign(0, 1, 7).ok());
  EXPECT_FALSE(p.Validate(cluster).ok());
}

TEST(ClusterTest, HomogeneousConstruction) {
  Cluster cluster = Cluster::Homogeneous(3, 50.0);
  EXPECT_EQ(cluster.num_hosts(), 3u);
  EXPECT_DOUBLE_EQ(cluster.TotalCapacity(), 150.0);
  EXPECT_TRUE(cluster.Validate().ok());
  EXPECT_EQ(cluster.host(1).id, 1);
}

TEST(ClusterTest, ValidateRejectsEmptyOrNonPositive) {
  Cluster empty;
  EXPECT_FALSE(empty.Validate().ok());
  Cluster bad;
  bad.AddHost("h", 0.0);
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(PlaceRoundRobinTest, AntiAffinityAndFullCoverage) {
  Fixture f = MakeChain(6);
  Cluster cluster = Cluster::Homogeneous(4, 1e6);
  auto placement = placement::PlaceRoundRobin(f.graph, cluster, 2);
  ASSERT_TRUE(placement.ok());
  EXPECT_TRUE(placement->Validate(cluster).ok());
  for (ComponentId pe : f.pes) {
    EXPECT_NE(placement->HostOf(pe, 0), placement->HostOf(pe, 1));
  }
}

TEST(PlaceRoundRobinTest, FailsWithTooFewHosts) {
  Fixture f = MakeChain(2);
  Cluster cluster = Cluster::Homogeneous(1, 1e6);
  EXPECT_FALSE(placement::PlaceRoundRobin(f.graph, cluster, 2).ok());
}

TEST(PlaceBalancedTest, SpreadsLoadEvenly) {
  Fixture f = MakeChain(8);
  Cluster cluster = Cluster::Homogeneous(4, 1e6);
  auto rates = ExpectedRates::Compute(f.graph, f.space);
  ASSERT_TRUE(rates.ok());
  auto placement = placement::PlaceBalanced(f.graph, f.space, *rates, cluster, 2);
  ASSERT_TRUE(placement.ok());
  EXPECT_TRUE(placement->Validate(cluster).ok());

  // Expected per-host demand (all replicas active, probability-weighted)
  // should be close to uniform: max/min <= 2 for this simple chain.
  std::vector<double> load(cluster.num_hosts(), 0.0);
  for (ComponentId pe : f.pes) {
    double demand = 0.0;
    for (ConfigId c = 0; c < f.space.num_configs(); ++c) {
      demand += f.space.Probability(c) * rates->CpuDemand(f.graph, pe, c);
    }
    for (int r = 0; r < 2; ++r) load[static_cast<size_t>(placement->HostOf(pe, r))] += demand;
  }
  const double max_load = *std::max_element(load.begin(), load.end());
  const double min_load = *std::min_element(load.begin(), load.end());
  EXPECT_GT(min_load, 0.0);
  EXPECT_LE(max_load / min_load, 2.0);
}

TEST(PlaceBalancedTest, RequiresValidatedGraph) {
  ApplicationGraph g;
  g.AddSource("s");
  Cluster cluster = Cluster::Homogeneous(2, 1e6);
  InputSpace space;
  Fixture f = MakeChain(2);
  auto rates = ExpectedRates::Compute(f.graph, f.space);
  ASSERT_TRUE(rates.ok());
  EXPECT_FALSE(placement::PlaceBalanced(g, f.space, *rates, cluster, 2).ok());
}

}  // namespace
}  // namespace laar::model
