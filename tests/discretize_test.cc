#include <gtest/gtest.h>

#include "laar/common/rng.h"
#include "laar/dsps/trace.h"
#include "laar/model/discretize.h"

namespace laar::model {
namespace {

TEST(DiscretizeTest, EqualFrequencyTwoLevels) {
  // 8 low samples, 8 high samples: two clean levels with pmf 1/2 each.
  std::vector<double> samples = {1, 1.1, 1.2, 1.3, 1.1, 1.2, 1.0, 1.3,
                                 9, 9.1, 9.2, 9.3, 9.1, 9.2, 9.0, 9.3};
  DiscretizeOptions options;
  options.num_levels = 2;
  auto rates = DiscretizeEqualFrequency(0, samples, options);
  ASSERT_TRUE(rates.ok()) << rates.status().ToString();
  ASSERT_EQ(rates->rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates->rates[0], 1.3);
  EXPECT_DOUBLE_EQ(rates->rates[1], 9.3);
  EXPECT_DOUBLE_EQ(rates->probabilities[0], 0.5);
  EXPECT_DOUBLE_EQ(rates->probabilities[1], 0.5);
  EXPECT_EQ(rates->source, 0);
  EXPECT_EQ(rates->labels.size(), 2u);
}

TEST(DiscretizeTest, LevelsDominateTheirSamples) {
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.Uniform(0.0, 50.0));
  for (int levels : {1, 2, 3, 5, 8}) {
    DiscretizeOptions options;
    options.num_levels = levels;
    auto rates = DiscretizeEqualFrequency(0, samples, options);
    ASSERT_TRUE(rates.ok());
    // Rates strictly increasing; probabilities a valid pmf.
    double pmf = 0.0;
    for (size_t i = 0; i < rates->rates.size(); ++i) {
      if (i > 0) {
        EXPECT_GT(rates->rates[i], rates->rates[i - 1]);
      }
      pmf += rates->probabilities[i];
    }
    EXPECT_NEAR(pmf, 1.0, 1e-9);
    // The top level dominates every sample.
    EXPECT_GE(rates->rates.back(), 50.0 * 0.99 - 1.0);
    // Roughly equal-frequency bins.
    if (levels > 1 && static_cast<int>(rates->rates.size()) == levels) {
      for (double p : rates->probabilities) {
        EXPECT_NEAR(p, 1.0 / levels, 0.05);
      }
    }
    // Usable in an InputSpace directly.
    InputSpace space;
    EXPECT_TRUE(space.AddSource(*rates).ok());
  }
}

TEST(DiscretizeTest, HeadroomInflatesLevels) {
  std::vector<double> samples = {2.0, 4.0, 6.0, 8.0};
  DiscretizeOptions options;
  options.num_levels = 2;
  options.headroom = 1.25;
  auto rates = DiscretizeEqualFrequency(0, samples, options);
  ASSERT_TRUE(rates.ok());
  EXPECT_DOUBLE_EQ(rates->rates[0], 4.0 * 1.25);
  EXPECT_DOUBLE_EQ(rates->rates[1], 8.0 * 1.25);
}

TEST(DiscretizeTest, TiesNeverStraddleBins) {
  // 10 identical samples and 2 outliers with 4 requested levels: ties must
  // collapse rather than split across bins.
  std::vector<double> samples(10, 5.0);
  samples.push_back(1.0);
  samples.push_back(9.0);
  DiscretizeOptions options;
  options.num_levels = 4;
  auto rates = DiscretizeEqualFrequency(0, samples, options);
  ASSERT_TRUE(rates.ok());
  for (size_t i = 1; i < rates->rates.size(); ++i) {
    EXPECT_GT(rates->rates[i], rates->rates[i - 1]);
  }
  // All the 5.0 mass ends up in exactly one level; the first bin extends
  // through the tie run, so the 1.0 sample joins it (still dominated by
  // the level rate 5.0): 11 of 12 samples at one level.
  double five_mass = 0.0;
  for (size_t i = 0; i < rates->rates.size(); ++i) {
    if (rates->rates[i] == 5.0) five_mass += rates->probabilities[i];
  }
  EXPECT_NEAR(five_mass, 11.0 / 12.0, 1e-9);
}

TEST(DiscretizeTest, ConstantSourceYieldsOneLevel) {
  std::vector<double> samples(20, 7.5);
  DiscretizeOptions options;
  options.num_levels = 3;
  auto frequency = DiscretizeEqualFrequency(0, samples, options);
  ASSERT_TRUE(frequency.ok());
  EXPECT_EQ(frequency->rates.size(), 1u);
  EXPECT_DOUBLE_EQ(frequency->rates[0], 7.5);
  auto width = DiscretizeEqualWidth(0, samples, options);
  ASSERT_TRUE(width.ok());
  EXPECT_EQ(width->rates.size(), 1u);
}

TEST(DiscretizeTest, EqualWidthBinsByValue) {
  // 9 samples in [0, 3), 1 sample at 30: equal-width with 2 levels splits
  // by value (skewed pmf), unlike equal-frequency.
  std::vector<double> samples = {0.5, 1.0, 1.5, 2.0, 2.5, 1.2, 0.8, 2.2, 1.7, 30.0};
  DiscretizeOptions options;
  options.num_levels = 2;
  auto rates = DiscretizeEqualWidth(0, samples, options);
  ASSERT_TRUE(rates.ok());
  ASSERT_EQ(rates->rates.size(), 2u);
  EXPECT_NEAR(rates->probabilities[0], 0.9, 1e-9);
  EXPECT_NEAR(rates->probabilities[1], 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(rates->rates[1], 30.0);
  // Every sample of bin 0 is dominated by its level.
  EXPECT_GE(rates->rates[0], 2.5);
}

TEST(DiscretizeTest, RejectsBadInputs) {
  DiscretizeOptions options;
  EXPECT_FALSE(DiscretizeEqualFrequency(0, {}, options).ok());
  EXPECT_FALSE(DiscretizeEqualFrequency(0, {-1.0}, options).ok());
  options.num_levels = 0;
  EXPECT_FALSE(DiscretizeEqualFrequency(0, {1.0}, options).ok());
  options = DiscretizeOptions{};
  options.headroom = 0.5;
  EXPECT_FALSE(DiscretizeEqualFrequency(0, {1.0}, options).ok());
  EXPECT_FALSE(DiscretizeEqualWidth(0, {}, DiscretizeOptions{}).ok());
}

TEST(TraceSampleTest, OccupancyMatchesPmf) {
  InputSpace space;
  SourceRateSet rates;
  rates.source = 0;
  rates.rates = {1.0, 5.0, 9.0};
  rates.probabilities = {0.5, 0.3, 0.2};
  ASSERT_TRUE(space.AddSource(rates).ok());
  auto trace = dsps::InputTrace::Sample(space, 10000.0, 1.0, 42);
  ASSERT_TRUE(trace.ok());
  EXPECT_DOUBLE_EQ(trace->TotalDuration(), 10000.0);
  EXPECT_NEAR(trace->TimeIn(0) / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(trace->TimeIn(1) / 10000.0, 0.3, 0.03);
  EXPECT_NEAR(trace->TimeIn(2) / 10000.0, 0.2, 0.03);

  // Deterministic by seed.
  auto again = dsps::InputTrace::Sample(space, 10000.0, 1.0, 42);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->segments().size(), trace->segments().size());
  EXPECT_EQ(again->segments()[17].config, trace->segments()[17].config);

  EXPECT_FALSE(dsps::InputTrace::Sample(space, -1.0, 1.0, 1).ok());
  EXPECT_FALSE(dsps::InputTrace::Sample(space, 10.0, 0.0, 1).ok());
}

}  // namespace
}  // namespace laar::model
