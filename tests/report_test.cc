#include <gtest/gtest.h>

#include "laar/runtime/report.h"

namespace laar::runtime {
namespace {

AppExperimentRecord MakeRecord(uint64_t seed) {
  AppExperimentRecord record;
  record.app_seed = seed;
  VariantMeasurement nr;
  nr.variant = "NR";
  nr.cpu_cycles = 1.5e11;
  nr.dropped = 0;
  nr.processed_best = 123456;
  nr.processed_worst = 0;
  nr.peak_output_rate = 42.5;
  record.variants.push_back(nr);
  VariantMeasurement l6;
  l6.variant = "L.6";
  l6.cpu_cycles = 2.25e11;
  l6.dropped = 7;
  l6.processed_best = 123450;
  l6.processed_worst = 76543;
  l6.processed_crash = 120000;
  l6.processed_domain = 98000;
  l6.peak_output_rate = 42.1;
  l6.promised_ic = 0.6123;
  l6.latency_mean = 0.125;
  l6.latency_p95 = 0.5;
  Histogram latency(0.0, 10.0, 8);
  latency.Add(0.1);
  latency.Add(0.2);
  latency.Add(4.0);
  latency.Add(12.0);  // overflow
  l6.latency_hist = latency;
  record.variants.push_back(l6);
  record.stages.generate_seconds = 0.25;
  record.stages.solve_seconds = 4.5;
  record.stages.simulate_best_seconds = 1.5;
  record.stages.simulate_worst_seconds = 1.25;
  record.stages.simulate_crash_seconds = 0.75;
  record.stages.simulate_domain_seconds = 0.5;
  return record;
}

TEST(ReportTest, RecordJsonRoundTrip) {
  const AppExperimentRecord record = MakeRecord(99);
  auto loaded = RecordFromJson(RecordToJson(record));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->app_seed, 99u);
  ASSERT_EQ(loaded->variants.size(), 2u);
  const VariantMeasurement* l6 = loaded->Find("L.6");
  ASSERT_NE(l6, nullptr);
  EXPECT_DOUBLE_EQ(l6->cpu_cycles, 2.25e11);
  EXPECT_EQ(l6->dropped, 7u);
  EXPECT_EQ(l6->processed_worst, 76543u);
  EXPECT_EQ(l6->processed_crash, 120000u);
  EXPECT_EQ(l6->processed_domain, 98000u);
  EXPECT_DOUBLE_EQ(l6->promised_ic, 0.6123);
  // The sink-latency histogram round-trips as real bucket state, not a
  // summary: bounds, per-bin counts, and out-of-range tallies all survive.
  EXPECT_DOUBLE_EQ(l6->latency_mean, 0.125);
  EXPECT_DOUBLE_EQ(l6->latency_p95, 0.5);
  ASSERT_TRUE(l6->latency_hist.has_value());
  const Histogram& hist = *l6->latency_hist;
  EXPECT_DOUBLE_EQ(hist.lo(), 0.0);
  EXPECT_DOUBLE_EQ(hist.hi(), 10.0);
  ASSERT_EQ(hist.bins(), 8u);
  EXPECT_EQ(hist.count(0), 2u);  // 0.1 and 0.2
  EXPECT_EQ(hist.count(3), 1u);  // 4.0
  EXPECT_EQ(hist.overflow(), 1u);
  EXPECT_EQ(hist.total(), 4u);
  // The NR variant carried no histogram; the optional stays empty.
  const VariantMeasurement* nr = loaded->Find("NR");
  ASSERT_NE(nr, nullptr);
  EXPECT_FALSE(nr->latency_hist.has_value());
}

TEST(ReportTest, CorpusJsonRoundTrip) {
  std::vector<AppExperimentRecord> corpus = {MakeRecord(1), MakeRecord(2), MakeRecord(3)};
  auto loaded = CorpusFromJson(CorpusToJson(corpus));
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[2].app_seed, 3u);
  EXPECT_EQ((*loaded)[1].variants.size(), 2u);
}

TEST(ReportTest, CsvHasHeaderAndRows) {
  std::vector<AppExperimentRecord> corpus = {MakeRecord(5)};
  const std::string csv = CorpusToCsv(corpus);
  EXPECT_EQ(csv.find("app_seed,variant,"), 0u);
  // 1 header + 2 variant rows.
  size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(csv.find("5,NR,"), std::string::npos);
  EXPECT_NE(csv.find("5,L.6,"), std::string::npos);
}

TEST(ReportTest, StageTimesRoundTripThroughJson) {
  const AppExperimentRecord record = MakeRecord(7);
  auto loaded = RecordFromJson(RecordToJson(record));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_DOUBLE_EQ(loaded->stages.generate_seconds, 0.25);
  EXPECT_DOUBLE_EQ(loaded->stages.solve_seconds, 4.5);
  EXPECT_DOUBLE_EQ(loaded->stages.simulate_best_seconds, 1.5);
  EXPECT_DOUBLE_EQ(loaded->stages.simulate_worst_seconds, 1.25);
  EXPECT_DOUBLE_EQ(loaded->stages.simulate_crash_seconds, 0.75);
  EXPECT_DOUBLE_EQ(loaded->stages.simulate_domain_seconds, 0.5);
  EXPECT_DOUBLE_EQ(loaded->stages.SimulateSeconds(), 4.0);
  EXPECT_DOUBLE_EQ(loaded->stages.TotalSeconds(), 8.75);
}

TEST(ReportTest, StagesAreOptionalInJson) {
  // Dumps written before stage accounting load with zeroed stages.
  json::Value doc = RecordToJson(MakeRecord(8));
  json::Value without = json::Value::MakeObject();
  without.Set("app_seed", json::Value::Int(8));
  auto variants = doc.Get("variants");
  ASSERT_TRUE(variants.ok());
  without.Set("variants", json::Value(**variants));
  auto loaded = RecordFromJson(without);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_DOUBLE_EQ(loaded->stages.TotalSeconds(), 0.0);
}

TEST(ReportTest, CsvExcludesStageTimes) {
  // The CSV is the identity of a corpus run; wall-clock never belongs.
  const std::string csv = CorpusToCsv({MakeRecord(5)});
  EXPECT_EQ(csv.find("seconds"), std::string::npos);
  EXPECT_EQ(csv.find("stage"), std::string::npos);
}

TEST(ReportTest, StageTotalsAndFormatting) {
  std::vector<AppExperimentRecord> corpus = {MakeRecord(1), MakeRecord(2)};
  const StageTimes totals = CorpusStageTotals(corpus);
  EXPECT_DOUBLE_EQ(totals.generate_seconds, 0.5);
  EXPECT_DOUBLE_EQ(totals.solve_seconds, 9.0);
  EXPECT_DOUBLE_EQ(totals.SimulateSeconds(), 8.0);
  EXPECT_DOUBLE_EQ(totals.TotalSeconds(), 17.5);
  const std::string line = FormatStageTimes(totals);
  EXPECT_NE(line.find("generate=0.50s"), std::string::npos);
  EXPECT_NE(line.find("solve=9.00s"), std::string::npos);
  EXPECT_NE(line.find("domain=1.00s"), std::string::npos);
  EXPECT_NE(line.find("total=17.50s"), std::string::npos);
}

TEST(ReportTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(RecordFromJson(json::Value::Int(1)).ok());
  json::Value missing = json::Value::MakeObject();
  EXPECT_FALSE(RecordFromJson(missing).ok());
  json::Value no_records = json::Value::MakeObject();
  EXPECT_FALSE(CorpusFromJson(no_records).ok());
}

}  // namespace
}  // namespace laar::runtime
