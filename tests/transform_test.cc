#include <gtest/gtest.h>

#include "laar/appgen/app_generator.h"
#include "laar/model/rates.h"
#include "laar/model/transform.h"

namespace laar::model {
namespace {

appgen::GeneratedApplication MakeApp() {
  appgen::GeneratorOptions options;
  options.num_pes = 8;
  options.num_hosts = 4;
  for (uint64_t seed = 1;; ++seed) {
    auto app = appgen::GenerateApplication(options, seed);
    if (app.ok()) return std::move(*app);
  }
}

TEST(TransformTest, ScaleCpuCostsScalesEveryEdge) {
  const auto app = MakeApp();
  auto scaled = ScaleCpuCosts(app.descriptor, 1.25);
  ASSERT_TRUE(scaled.ok()) << scaled.status().ToString();
  ASSERT_EQ(scaled->graph.num_edges(), app.descriptor.graph.num_edges());
  for (size_t i = 0; i < app.descriptor.graph.num_edges(); ++i) {
    const Edge& before = app.descriptor.graph.edges()[i];
    const Edge& after = scaled->graph.edges()[i];
    EXPECT_DOUBLE_EQ(after.cpu_cost_cycles, before.cpu_cost_cycles * 1.25);
    EXPECT_DOUBLE_EQ(after.selectivity, before.selectivity);
  }
  // Rates (tuple flow) are untouched; CPU demand scales linearly.
  auto before_rates = ExpectedRates::Compute(app.descriptor.graph,
                                             app.descriptor.input_space);
  auto after_rates = ExpectedRates::Compute(scaled->graph, scaled->input_space);
  ASSERT_TRUE(before_rates.ok());
  ASSERT_TRUE(after_rates.ok());
  for (ComponentId pe : app.descriptor.graph.Pes()) {
    EXPECT_DOUBLE_EQ(after_rates->Rate(pe, 0), before_rates->Rate(pe, 0));
    EXPECT_NEAR(after_rates->CpuDemand(scaled->graph, pe, 0),
                1.25 * before_rates->CpuDemand(app.descriptor.graph, pe, 0), 1e-3);
  }
}

TEST(TransformTest, ScaleSourceRatesScalesFlowLinearly) {
  const auto app = MakeApp();
  auto scaled = ScaleSourceRates(app.descriptor, 2.0);
  ASSERT_TRUE(scaled.ok());
  auto before_rates = ExpectedRates::Compute(app.descriptor.graph,
                                             app.descriptor.input_space);
  auto after_rates = ExpectedRates::Compute(scaled->graph, scaled->input_space);
  ASSERT_TRUE(before_rates.ok());
  ASSERT_TRUE(after_rates.ok());
  // The linear load model: doubling input rates doubles every component's
  // rate and every PE's CPU demand.
  for (const Component& c : app.descriptor.graph.components()) {
    for (ConfigId cfg = 0; cfg < app.descriptor.input_space.num_configs(); ++cfg) {
      EXPECT_NEAR(after_rates->Rate(c.id, cfg), 2.0 * before_rates->Rate(c.id, cfg),
                  1e-9 * (1.0 + before_rates->Rate(c.id, cfg)));
    }
  }
  // Probabilities and labels preserved.
  EXPECT_EQ(scaled->input_space.source_rates(0).labels,
            app.descriptor.input_space.source_rates(0).labels);
  EXPECT_EQ(scaled->input_space.source_rates(0).probabilities,
            app.descriptor.input_space.source_rates(0).probabilities);
}

TEST(TransformTest, RejectsNonPositiveFactors) {
  const auto app = MakeApp();
  EXPECT_FALSE(ScaleCpuCosts(app.descriptor, 0.0).ok());
  EXPECT_FALSE(ScaleCpuCosts(app.descriptor, -1.0).ok());
  EXPECT_FALSE(ScaleSourceRates(app.descriptor, 0.0).ok());
}

TEST(TransformTest, IdentityFactorRoundTrips) {
  const auto app = MakeApp();
  auto same = ScaleCpuCosts(app.descriptor, 1.0);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same->ToJson().Dump(), app.descriptor.ToJson().Dump());
}

}  // namespace
}  // namespace laar::model
