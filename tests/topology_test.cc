#include <gtest/gtest.h>

#include "laar/appgen/app_generator.h"
#include "laar/model/cluster.h"
#include "laar/model/failure_topology.h"
#include "laar/model/rates.h"
#include "laar/placement/placement_algorithms.h"

namespace laar::model {
namespace {

TEST(FailureTopologyTest, UniformFillsConsecutiveRacksAndZones) {
  // 12 hosts, 3 per rack, 2 racks per zone: 4 racks, 2 zones.
  const FailureTopology t = FailureTopology::Uniform(12, 3, 2);
  EXPECT_EQ(t.num_hosts(), 12u);
  EXPECT_EQ(t.num_racks(), 4);
  EXPECT_EQ(t.num_zones(), 2);
  EXPECT_FALSE(t.IsTrivial());
  EXPECT_EQ(t.RackOf(0), 0);
  EXPECT_EQ(t.RackOf(2), 0);
  EXPECT_EQ(t.RackOf(3), 1);
  EXPECT_EQ(t.RackOf(11), 3);
  EXPECT_EQ(t.ZoneOf(5), 0);
  EXPECT_EQ(t.ZoneOf(6), 1);
  EXPECT_EQ(t.DomainOf(7, DomainLevel::kHost), 7);
  EXPECT_EQ(t.DomainOf(7, DomainLevel::kRack), 2);
  EXPECT_EQ(t.DomainOf(7, DomainLevel::kZone), 1);
  EXPECT_EQ(t.NumDomains(DomainLevel::kHost), 12);
  EXPECT_EQ(t.NumDomains(DomainLevel::kRack), 4);
  EXPECT_EQ(t.NumDomains(DomainLevel::kZone), 2);
  EXPECT_EQ(t.HostsInDomain(DomainLevel::kRack, 1), (std::vector<HostId>{3, 4, 5}));
  EXPECT_EQ(t.HostsInDomain(DomainLevel::kZone, 1),
            (std::vector<HostId>{6, 7, 8, 9, 10, 11}));
  EXPECT_EQ(t.HostsInDomain(DomainLevel::kHost, 4), (std::vector<HostId>{4}));
  EXPECT_TRUE(t.Validate(12).ok());
}

TEST(FailureTopologyTest, TrivialPutsEveryHostInItsOwnDomain) {
  const FailureTopology t = FailureTopology::Trivial(4);
  EXPECT_TRUE(t.IsTrivial());
  EXPECT_EQ(t.num_racks(), 4);
  EXPECT_EQ(t.num_zones(), 4);
  for (HostId h = 0; h < 4; ++h) {
    EXPECT_EQ(t.RackOf(h), h);
    EXPECT_EQ(t.ZoneOf(h), h);
  }
  EXPECT_TRUE(t.Validate(4).ok());
  EXPECT_EQ(t, FailureTopology::Uniform(4, 1, 1));
}

TEST(FailureTopologyTest, UnevenDivisionLeavesPartialLastDomain) {
  // 5 hosts in racks of 2: racks {0,1} {2,3} {4}; zones of 2 racks:
  // {rack0, rack1} {rack2}.
  const FailureTopology t = FailureTopology::Uniform(5, 2, 2);
  EXPECT_EQ(t.num_racks(), 3);
  EXPECT_EQ(t.num_zones(), 2);
  EXPECT_EQ(t.HostsInDomain(DomainLevel::kRack, 2), (std::vector<HostId>{4}));
  EXPECT_EQ(t.HostsInDomain(DomainLevel::kZone, 0), (std::vector<HostId>{0, 1, 2, 3}));
  EXPECT_TRUE(t.Validate(5).ok());
}

TEST(FailureTopologyTest, NonPositiveArgumentsDegradeToTrivial) {
  EXPECT_TRUE(FailureTopology::Uniform(3, 0, 0).IsTrivial());
  EXPECT_TRUE(FailureTopology::Uniform(3, -2, 1).IsTrivial());
}

TEST(FailureTopologyTest, ValidateRejectsHostCountMismatch) {
  const FailureTopology t = FailureTopology::Uniform(4, 2, 1);
  EXPECT_TRUE(t.Validate(4).ok());
  EXPECT_FALSE(t.Validate(6).ok());
  EXPECT_FALSE(t.Validate(0).ok());
}

TEST(ClusterTopologyTest, AddHostKeepsTrivialTopologyInLockstep) {
  Cluster cluster;
  cluster.AddHost("a", 1e9);
  cluster.AddHost("b", 1e9);
  cluster.AddHost("c", 1e9);
  EXPECT_EQ(cluster.topology().num_hosts(), 3u);
  EXPECT_TRUE(cluster.topology().IsTrivial());
  EXPECT_TRUE(cluster.Validate().ok());
}

TEST(ClusterTopologyTest, ValidateRejectsTopologyHostMismatch) {
  Cluster cluster = Cluster::Homogeneous(4, 1e9);
  cluster.set_topology(FailureTopology::Uniform(4, 2, 1));
  EXPECT_TRUE(cluster.Validate().ok());
  cluster.set_topology(FailureTopology::Uniform(6, 2, 1));
  EXPECT_FALSE(cluster.Validate().ok());
}

// ---------------------------------------------------------------------------
// Domain-spread placement.
// ---------------------------------------------------------------------------

struct PlacementFixture {
  appgen::GeneratedApplication app;

  explicit PlacementFixture(int hosts_per_rack) {
    appgen::GeneratorOptions options;
    options.num_pes = 8;
    options.num_hosts = 8;
    options.hosts_per_rack = hosts_per_rack;
    auto generated = appgen::GenerateApplication(options, 42);
    EXPECT_TRUE(generated.ok());
    app = std::move(*generated);
  }
};

TEST(PlaceDomainSpreadTest, SpreadsEveryReplicaPairAcrossRacks) {
  PlacementFixture f(/*hosts_per_rack=*/2);  // 4 racks, k = 2 fits easily
  auto rates = ExpectedRates::Compute(f.app.descriptor.graph,
                                      f.app.descriptor.input_space);
  ASSERT_TRUE(rates.ok());
  auto placement = placement::PlaceDomainSpread(
      f.app.descriptor.graph, f.app.descriptor.input_space, *rates, f.app.cluster, 2,
      DomainLevel::kRack);
  ASSERT_TRUE(placement.ok());
  const FailureTopology& topology = f.app.cluster.topology();
  for (const ComponentId pe : f.app.descriptor.graph.Pes()) {
    const HostId h0 = placement->HostOf(pe, 0);
    const HostId h1 = placement->HostOf(pe, 1);
    ASSERT_NE(h0, kInvalidHost);
    ASSERT_NE(h1, kInvalidHost);
    EXPECT_NE(topology.RackOf(h0), topology.RackOf(h1))
        << "pe " << pe << " has both replicas in rack " << topology.RackOf(h0);
  }
}

TEST(PlaceDomainSpreadTest, RelaxesWhenReplicasExceedDomains) {
  // One single rack: spreading is impossible, the pass must fall back to
  // distinct hosts instead of failing.
  PlacementFixture f(/*hosts_per_rack=*/8);
  auto rates = ExpectedRates::Compute(f.app.descriptor.graph,
                                      f.app.descriptor.input_space);
  ASSERT_TRUE(rates.ok());
  auto placement = placement::PlaceDomainSpread(
      f.app.descriptor.graph, f.app.descriptor.input_space, *rates, f.app.cluster, 2,
      DomainLevel::kRack);
  ASSERT_TRUE(placement.ok());
  for (const ComponentId pe : f.app.descriptor.graph.Pes()) {
    EXPECT_NE(placement->HostOf(pe, 0), placement->HostOf(pe, 1));
  }
}

TEST(PlaceDomainSpreadTest, TrivialTopologyReducesToBalanced) {
  PlacementFixture f(/*hosts_per_rack=*/0);  // trivial topology
  auto rates = ExpectedRates::Compute(f.app.descriptor.graph,
                                      f.app.descriptor.input_space);
  ASSERT_TRUE(rates.ok());
  auto spread = placement::PlaceDomainSpread(
      f.app.descriptor.graph, f.app.descriptor.input_space, *rates, f.app.cluster, 2,
      DomainLevel::kRack);
  auto balanced = placement::PlaceBalanced(f.app.descriptor.graph,
                                           f.app.descriptor.input_space, *rates,
                                           f.app.cluster, 2);
  ASSERT_TRUE(spread.ok());
  ASSERT_TRUE(balanced.ok());
  // Every host is its own rack, so "distinct racks" == "distinct hosts"
  // and the greedy pick order coincides with the balanced one.
  for (const ComponentId pe : f.app.descriptor.graph.Pes()) {
    for (int r = 0; r < 2; ++r) {
      EXPECT_EQ(spread->HostOf(pe, r), balanced->HostOf(pe, r));
    }
  }
}

TEST(GeneratorTopologyTest, TopologyOptionsReachTheCluster) {
  appgen::GeneratorOptions options;
  options.num_pes = 6;
  options.num_hosts = 6;
  options.hosts_per_rack = 3;
  options.racks_per_zone = 2;
  options.domain_aware_placement = true;
  auto app = appgen::GenerateApplication(options, 7);
  ASSERT_TRUE(app.ok());
  EXPECT_EQ(app->cluster.topology().num_racks(), 2);
  EXPECT_EQ(app->cluster.topology().num_zones(), 1);
  const FailureTopology& topology = app->cluster.topology();
  for (const ComponentId pe : app->descriptor.graph.Pes()) {
    const HostId h0 = app->placement.HostOf(pe, 0);
    const HostId h1 = app->placement.HostOf(pe, 1);
    EXPECT_NE(topology.RackOf(h0), topology.RackOf(h1));
  }
}

TEST(GeneratorTopologyTest, DefaultOptionsKeepTrivialTopologyAndBalancedPlacement) {
  appgen::GeneratorOptions options;
  options.num_pes = 6;
  options.num_hosts = 6;
  auto plain = appgen::GenerateApplication(options, 7);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->cluster.topology().IsTrivial());
}

}  // namespace
}  // namespace laar::model
