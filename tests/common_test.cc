#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "laar/common/result.h"
#include "laar/common/rng.h"
#include "laar/common/stats.h"
#include "laar/common/status.h"
#include "laar/common/stopwatch.h"
#include "laar/common/strings.h"

namespace laar {
namespace {

// --------------------------------------------------------------------------
// Status / Result
// --------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::NotFound("key").WithContext("loading strategy");
  EXPECT_EQ(s.message(), "loading strategy: key");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  LAAR_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  LAAR_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  EXPECT_EQ(r.value_or(0), 21);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-3);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*DoublePositive(5), 10);
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(ResultTest, OkStatusWithoutValueBecomesInternalError) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

// --------------------------------------------------------------------------
// Strings
// --------------------------------------------------------------------------

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("pe%d r%d", 3, 1), "pe3 r1");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StrSplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, TrimAndAffixes) {
  EXPECT_EQ(StrTrim("  x y\t\n"), "x y");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim(" \t "), "");
  EXPECT_TRUE(StartsWith("fig9_bench", "fig9"));
  EXPECT_FALSE(StartsWith("fig", "fig9"));
  EXPECT_TRUE(EndsWith("strategy.json", ".json"));
  EXPECT_FALSE(EndsWith("x", ".json"));
}

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true;
  bool any_diff_seed_differs = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.NextUint64();
    if (va != b.NextUint64()) all_equal = false;
    if (va != c.NextUint64()) any_diff_seed_differs = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_differs);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusively) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(23);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.02);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(31);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.03);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng forked = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(99);
  b.NextUint64();  // parent consumed one draw for the fork
  EXPECT_NE(forked.NextUint64(), b.NextUint64());
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// --------------------------------------------------------------------------
// Stats
// --------------------------------------------------------------------------

TEST(SampleStatsTest, BasicMoments) {
  SampleStats stats;
  stats.AddAll({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_NEAR(stats.variance(), 5.0 / 3.0, 1e-12);
}

TEST(SampleStatsTest, EmptyIsSafe) {
  SampleStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.Percentile(50), 0.0);
  EXPECT_EQ(stats.Summarize().count, 0u);
}

TEST(SampleStatsTest, PercentileInterpolates) {
  SampleStats stats;
  stats.AddAll({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(stats.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 30.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(12.5), 15.0);
}

TEST(SampleStatsTest, BoxPlotWhiskersAndOutliers) {
  SampleStats stats;
  // Tight cluster plus one far outlier.
  stats.AddAll({1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 100.0});
  const BoxPlot box = stats.Summarize();
  EXPECT_EQ(box.count, 9u);
  EXPECT_EQ(box.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(box.outliers[0], 100.0);
  EXPECT_LE(box.whisker_high, 1.7);
  EXPECT_DOUBLE_EQ(box.whisker_low, 1.0);
  EXPECT_DOUBLE_EQ(box.max, 100.0);
}

TEST(SampleStatsTest, PercentileEdgeCases) {
  // Empty: every quantile (including out-of-range and NaN) is a defined 0.
  SampleStats empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(100), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(-5), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(std::numeric_limits<double>::quiet_NaN()), 0.0);

  // One sample: every quantile is that sample.
  SampleStats single;
  single.Add(7.5);
  EXPECT_DOUBLE_EQ(single.Percentile(0), 7.5);
  EXPECT_DOUBLE_EQ(single.Percentile(50), 7.5);
  EXPECT_DOUBLE_EQ(single.Percentile(100), 7.5);
  EXPECT_DOUBLE_EQ(single.Percentile(std::numeric_limits<double>::quiet_NaN()), 7.5);

  // Multiple samples: out-of-range quantiles clamp to min/max, and a NaN
  // quantile falls back to the minimum instead of indexing out of bounds.
  SampleStats stats;
  stats.AddAll({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(stats.Percentile(-1), 10.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(250), 30.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(std::numeric_limits<double>::quiet_NaN()), 10.0);
}

TEST(SampleStatsTest, PercentileAfterLaterAdds) {
  SampleStats stats;
  stats.Add(5.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 5.0);
  stats.Add(1.0);
  stats.Add(9.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
}

TEST(HistogramTest, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.0);   // bin 0
  h.Add(1.99);  // bin 0
  h.Add(2.0);   // bin 1
  h.Add(9.99);  // bin 4
  h.Add(10.0);  // overflow
  h.Add(-0.1);  // underflow
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.BinLo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.BinHi(1), 4.0);
}

TEST(HistogramTest, DegenerateRangeDegradesToSingleCatchAllBin) {
  // hi <= lo used to produce a non-positive width and negative bin indices
  // in Add; it must degrade to one bin that swallows everything.
  for (Histogram h : {Histogram(5.0, 5.0, 4), Histogram(3.0, -2.0, 8)}) {
    h.Add(-1e9);
    h.Add(0.0);
    h.Add(4.99);
    h.Add(1e9);
    EXPECT_EQ(h.count(0), 4u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_FALSE(h.ToString(10).empty());
  }
}

TEST(HistogramTest, ZeroBinsBecomesOneBin) {
  Histogram h(0.0, 1.0, 0);
  h.Add(0.5);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(HistogramTest, ToStringMentionsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.Add(0.25);
  h.Add(0.75);
  h.Add(0.8);
  const std::string rendered = h.ToString(10);
  EXPECT_NE(rendered.find("1"), std::string::npos);
  EXPECT_NE(rendered.find("2"), std::string::npos);
}

// --------------------------------------------------------------------------
// Stopwatch / Deadline
// --------------------------------------------------------------------------

TEST(StopwatchTest, MeasuresForwardTime) {
  Stopwatch watch;
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  EXPECT_GE(watch.ElapsedMicros(), 0);
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d = Deadline::Infinite();
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingSeconds(), 1e12);
}

TEST(DeadlineTest, PastDeadlineExpires) {
  Deadline d = Deadline::After(-1.0);
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, FutureDeadlineNotYetExpired) {
  Deadline d = Deadline::After(60.0);
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingSeconds(), 50.0);
}

}  // namespace
}  // namespace laar
