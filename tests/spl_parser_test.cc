#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "laar/model/rates.h"
#include "laar/spl/spl_parser.h"

namespace laar::spl {
namespace {

constexpr const char* kPipeline = R"(
# The Fig. 1 application.
application pipeline {
  source src { rate Low = 4 @ 0.8; rate High = 8 @ 0.2; }
  pe stage1;
  pe stage2;
  sink out;
  stream src -> stage1 [selectivity = 1.0, cost = 100ms];
  stream stage1 -> stage2 [cost = 100ms];   // default selectivity 1
  stream stage2 -> out;
}
)";

TEST(SplParserTest, ParsesThePipeline) {
  Result<model::ApplicationDescriptor> app = ParseApplication(kPipeline);
  ASSERT_TRUE(app.ok()) << app.status().ToString();
  EXPECT_EQ(app->name, "pipeline");
  EXPECT_EQ(app->graph.num_components(), 4u);
  EXPECT_EQ(app->graph.num_pes(), 2u);
  EXPECT_EQ(app->graph.num_edges(), 3u);
  ASSERT_EQ(app->input_space.num_configs(), 2);
  EXPECT_DOUBLE_EQ(app->input_space.RateOf(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(app->input_space.RateOf(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(app->input_space.Probability(0), 0.8);
  EXPECT_EQ(app->input_space.ConfigLabel(1), "High");
  // 100 ms at the 1 GHz reference = 1e8 cycles.
  EXPECT_DOUBLE_EQ(app->graph.edges()[0].cpu_cost_cycles, 1e8);
  EXPECT_DOUBLE_EQ(app->graph.edges()[1].selectivity, 1.0);
  EXPECT_DOUBLE_EQ(app->graph.edges()[2].cpu_cost_cycles, 0.0);
}

TEST(SplParserTest, ParsedAppSupportsRateAnalysis) {
  Result<model::ApplicationDescriptor> app = ParseApplication(kPipeline);
  ASSERT_TRUE(app.ok());
  auto rates = model::ExpectedRates::Compute(app->graph, app->input_space);
  ASSERT_TRUE(rates.ok());
  EXPECT_DOUBLE_EQ(rates->Rate(2, 1), 8.0);  // stage2 output at High
}

TEST(SplParserTest, CostUnits) {
  const char* text = R"(
application units {
  source s { rate only = 1 @ 1.0; }
  pe a; pe b; pe c; pe d;
  sink k;
  stream s -> a [cost = 5000cycles];
  stream a -> b [cost = 2ms];
  stream b -> c [cost = 3us];
  stream c -> d [cost = 42];
  stream d -> k;
}
)";
  Result<model::ApplicationDescriptor> app = ParseApplication(text);
  ASSERT_TRUE(app.ok()) << app.status().ToString();
  EXPECT_DOUBLE_EQ(app->graph.edges()[0].cpu_cost_cycles, 5000.0);
  EXPECT_DOUBLE_EQ(app->graph.edges()[1].cpu_cost_cycles, 2e6);
  EXPECT_DOUBLE_EQ(app->graph.edges()[2].cpu_cost_cycles, 3e3);
  EXPECT_DOUBLE_EQ(app->graph.edges()[3].cpu_cost_cycles, 42.0);
}

TEST(SplParserTest, MultiSourceFanIn) {
  const char* text = R"(
application fan {
  source a { rate lo = 1 @ 0.5; rate hi = 2 @ 0.5; }
  source b { rate lo = 3 @ 0.25; rate hi = 9 @ 0.75; }
  pe join;
  sink out;
  stream a -> join [selectivity = 0.5, cost = 1ms];
  stream b -> join [selectivity = 1.5, cost = 1ms];
  stream join -> out;
}
)";
  Result<model::ApplicationDescriptor> app = ParseApplication(text);
  ASSERT_TRUE(app.ok()) << app.status().ToString();
  EXPECT_EQ(app->input_space.num_configs(), 4);
  EXPECT_DOUBLE_EQ(app->input_space.Probability(3), 0.5 * 0.75);
}

TEST(SplParserTest, CommentsAndWhitespace) {
  const char* text =
      "application c{// trailing comment\n"
      "source s{rate r=1@1.0;}\n"
      "# hash comment\n"
      "pe p;sink k;stream s->p[cost=1];stream p->k;}";
  EXPECT_TRUE(ParseApplication(text).ok());
}

TEST(SplParserTest, RejectsLexicalGarbage) {
  EXPECT_FALSE(ParseApplication("application x { % }").ok());
  EXPECT_FALSE(ParseApplication("application x { pe a- ; }").ok());
}

TEST(SplParserTest, RejectsSyntaxErrors) {
  EXPECT_FALSE(ParseApplication("").ok());
  EXPECT_FALSE(ParseApplication("application {").ok());
  EXPECT_FALSE(ParseApplication("application x { pe a }").ok());  // missing ';'
  EXPECT_FALSE(ParseApplication("application x { widget w; }").ok());
  EXPECT_FALSE(
      ParseApplication("application x { source s { rate r = 1; } }").ok());  // no '@'
  EXPECT_FALSE(ParseApplication("application x { pe a; } trailing").ok());
}

TEST(SplParserTest, RejectsSemanticErrors) {
  // Duplicate identifier.
  EXPECT_FALSE(ParseApplication(R"(
application x {
  source s { rate r = 1 @ 1.0; }
  pe s;
  sink k;
  stream s -> k;
})")
                   .ok());
  // Undeclared stream endpoint.
  EXPECT_FALSE(ParseApplication(R"(
application x {
  source s { rate r = 1 @ 1.0; }
  pe a; sink k;
  stream s -> ghost;
  stream a -> k;
})")
                   .ok());
  // Probabilities not summing to 1.
  EXPECT_FALSE(ParseApplication(R"(
application x {
  source s { rate lo = 1 @ 0.5; rate hi = 2 @ 0.4; }
  pe a; sink k;
  stream s -> a [cost = 1];
  stream a -> k;
})")
                   .ok());
  // Unknown cost unit.
  EXPECT_FALSE(ParseApplication(R"(
application x {
  source s { rate r = 1 @ 1.0; }
  pe a; sink k;
  stream s -> a [cost = 3parsecs];
  stream a -> k;
})")
                   .ok());
  // Cycle between PEs (graph validation).
  EXPECT_FALSE(ParseApplication(R"(
application x {
  source s { rate r = 1 @ 1.0; }
  pe a; pe b; sink k;
  stream s -> a [cost = 1];
  stream a -> b [cost = 1];
  stream b -> a [cost = 1];
  stream b -> k;
})")
                   .ok());
}

TEST(SplParserTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/laar_spl_test.spl";
  {
    std::ofstream out(path);
    out << kPipeline;
  }
  Result<model::ApplicationDescriptor> app = ParseApplicationFile(path);
  ASSERT_TRUE(app.ok()) << app.status().ToString();
  EXPECT_EQ(app->name, "pipeline");
  std::remove(path.c_str());
  EXPECT_FALSE(ParseApplicationFile("/nonexistent/app.spl").ok());
}

}  // namespace
}  // namespace laar::spl
