#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "laar/dsps/stream_simulation.h"
#include "laar/dsps/trace.h"
#include "laar/json/json.h"
#include "laar/model/descriptor.h"
#include "laar/model/placement.h"
#include "laar/obs/chrome_trace.h"
#include "laar/obs/forensics.h"
#include "laar/obs/loss_ledger.h"
#include "laar/obs/metrics_registry.h"
#include "laar/obs/run_diff.h"
#include "laar/obs/run_info.h"
#include "laar/obs/trace_recorder.h"

namespace laar {
namespace {

using dsps::InputTrace;
using dsps::RuntimeOptions;
using dsps::StreamSimulation;
using model::ApplicationDescriptor;
using model::Cluster;
using model::ComponentId;
using model::ReplicaPlacement;
using model::SourceRateSet;
using strategy::ActivationStrategy;

constexpr double kHz = 1e9;

// ------------------------------------------------------------- loss ledger

TEST(LossLedgerTest, RecordAggregatesByPeAndCause) {
  obs::LossLedger ledger;
  EXPECT_TRUE(ledger.empty());
  ledger.Record(2, obs::LossCause::kCrashLoss, 5);
  ledger.Record(1, obs::LossCause::kQueueOverflow);
  ledger.Record(2, obs::LossCause::kCrashLoss, 3);
  ledger.Record(2, obs::LossCause::kOrphanedOutput, 2);
  EXPECT_EQ(ledger.Total(), 11u);
  EXPECT_EQ(ledger.TotalOf(obs::LossCause::kCrashLoss), 8u);
  EXPECT_EQ(ledger.TotalOf(obs::LossCause::kLoadShed), 0u);
  EXPECT_EQ(ledger.Count(2, obs::LossCause::kCrashLoss), 8u);
  EXPECT_EQ(ledger.Count(7, obs::LossCause::kCrashLoss), 0u);
  // Rows are sorted by (pe, cause) and contain only non-zero entries.
  const auto rows = ledger.Rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].pe, 1);
  EXPECT_EQ(rows[0].cause, obs::LossCause::kQueueOverflow);
  EXPECT_EQ(rows[1].pe, 2);
  EXPECT_EQ(rows[1].cause, obs::LossCause::kCrashLoss);
  EXPECT_EQ(rows[2].cause, obs::LossCause::kOrphanedOutput);
  EXPECT_FALSE(ledger.ToString().empty());
}

TEST(LossLedgerTest, JsonRoundTripPreservesEveryRow) {
  obs::LossLedger ledger;
  ledger.Record(0, obs::LossCause::kLoadShed, 10);
  ledger.Record(3, obs::LossCause::kResyncGap, 4);
  const json::Value doc = ledger.ToJson();
  auto restored = obs::LossLedger::FromJson(doc);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->Total(), ledger.Total());
  EXPECT_EQ(restored->ToJson().Dump(), doc.Dump());
}

TEST(LossLedgerTest, CorruptLedgerIsRejectedNotTrusted) {
  obs::LossLedger ledger;
  ledger.Record(1, obs::LossCause::kCrashLoss, 6);
  json::Value doc = ledger.ToJson();
  // A hand-edited total that disagrees with the rows must not parse.
  doc.Set("total", json::Value::Int(5));
  EXPECT_FALSE(obs::LossLedger::FromJson(doc).ok());
  EXPECT_FALSE(obs::LossLedger::FromJson(json::Value::Int(3)).ok());
}

TEST(LossLedgerTest, PublishEmitsCanonicalCountersAndSkipsEmpty) {
  obs::MetricsRegistry empty_registry;
  obs::PublishLossLedger(&empty_registry, obs::LossLedger());
  EXPECT_EQ(empty_registry.FindCounter("sim_lost_tuples"), nullptr);

  obs::LossLedger ledger;
  ledger.Record(1, obs::LossCause::kCrashLoss, 6);
  ledger.Record(1, obs::LossCause::kLoadShed, 2);
  obs::MetricsRegistry registry;
  obs::PublishLossLedger(&registry, ledger);
  const obs::Counter* total = registry.FindCounter("sim_lost_tuples");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->value(), 8.0);
  const obs::Counter* crash =
      registry.FindCounter("sim_loss_tuples", {{"cause", "crash_loss"}});
  ASSERT_NE(crash, nullptr);
  EXPECT_DOUBLE_EQ(crash->value(), 6.0);
  const obs::Counter* row = registry.FindCounter(
      "sim_loss_tuples", {{"cause", "load_shed"}, {"pe", "1"}});
  ASSERT_NE(row, nullptr);
  EXPECT_DOUBLE_EQ(row->value(), 2.0);
  // Zero causes never materialize.
  EXPECT_EQ(registry.FindCounter("sim_loss_tuples", {{"cause", "resync_gap"}}),
            nullptr);
}

// ---------------------------------------------------------------- run info

TEST(RunInfoTest, CaptureStripsFlagsThatDoNotChangeTheWorkload) {
  const char* argv[] = {"laar_simulate",       "--app=app.json",
                        "--jobs=8",            "--metrics-out=m.json",
                        "--trace-out=t.json",  "--trace-categories=drops",
                        "--trace-capacity=99", "--fail-domain=rack:1"};
  const obs::RunInfo info =
      obs::RunInfo::Capture("laar_simulate", 7, 8, argv);
  EXPECT_EQ(info.tool, "laar_simulate");
  EXPECT_EQ(info.seed, 7u);
  EXPECT_FALSE(info.version.empty());
  EXPECT_FALSE(info.compiler.empty());
  const std::vector<std::string> expected = {"--app=app.json",
                                             "--fail-domain=rack:1"};
  EXPECT_EQ(info.args, expected);
}

TEST(RunInfoTest, JsonRoundTripAndMismatchDetection) {
  const char* argv_a[] = {"tool", "--app=a.json", "--jobs=2"};
  const char* argv_b[] = {"tool", "--app=a.json", "--shed"};
  const obs::RunInfo a = obs::RunInfo::Capture("laar_simulate", 1, 3, argv_a);
  const obs::RunInfo b = obs::RunInfo::Capture("laar_simulate", 2, 3, argv_b);

  auto restored = obs::RunInfo::FromJson(a.ToJson());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->ToJson().Dump(), a.ToJson().Dump());
  EXPECT_TRUE(obs::WorkloadMismatches(a, *restored).empty());

  const std::vector<std::string> mismatches = obs::WorkloadMismatches(a, b);
  // Differing seed plus the one-sided "--shed" flag; "--jobs" was stripped
  // at capture so it never shows up as a difference.
  ASSERT_EQ(mismatches.size(), 2u);
  EXPECT_NE(mismatches[0].find("seed"), std::string::npos);
  EXPECT_NE(mismatches[1].find("--shed"), std::string::npos);
}

// --------------------------------------------------------------- forensics

/// source -> pe0 -> pe1 -> sink on two hosts, one replica of each PE per
/// host — the same shape the simulation tests use.
struct ForensicsFixture {
  ApplicationDescriptor app;
  Cluster cluster = Cluster::Homogeneous(2, kHz);
  ReplicaPlacement placement{0, 2};
  ComponentId source, pe0, pe1, sink;

  ForensicsFixture() {
    source = app.graph.AddSource("s");
    pe0 = app.graph.AddPe("p0");
    pe1 = app.graph.AddPe("p1");
    sink = app.graph.AddSink("k");
    EXPECT_TRUE(app.graph.AddEdge(source, pe0, 1.0, 0.1 * kHz).ok());
    EXPECT_TRUE(app.graph.AddEdge(pe0, pe1, 1.0, 0.1 * kHz).ok());
    EXPECT_TRUE(app.graph.AddEdge(pe1, sink, 1.0, 0.0).ok());
    EXPECT_TRUE(app.graph.Validate().ok());
    SourceRateSet r;
    r.source = source;
    r.rates = {2.0, 4.0};
    r.labels = {"Low", "High"};
    r.probabilities = {0.8, 0.2};
    EXPECT_TRUE(app.input_space.AddSource(r).ok());
    EXPECT_TRUE(app.Validate().ok());
    placement = ReplicaPlacement(app.graph.num_components(), 2);
    EXPECT_TRUE(placement.Assign(pe0, 0, 0).ok());
    EXPECT_TRUE(placement.Assign(pe0, 1, 1).ok());
    EXPECT_TRUE(placement.Assign(pe1, 0, 0).ok());
    EXPECT_TRUE(placement.Assign(pe1, 1, 1).ok());
  }

  ActivationStrategy AllActive() const {
    return ActivationStrategy(app.graph.num_components(), 2,
                              app.input_space.num_configs());
  }

  /// Runs a traced simulation with the given host crashes and returns the
  /// Chrome trace with the run's loss ledger stamped in (what
  /// `laar_simulate --trace-out` writes), plus the metrics.
  json::Value TracedCrashRun(const std::vector<std::pair<int32_t, double>>& crashes,
                             dsps::SimulationMetrics* metrics,
                             size_t capacity = 1u << 18) const {
    auto trace = InputTrace::Step(0, 1, 200.0, 300.0);
    EXPECT_TRUE(trace.ok());
    RuntimeOptions options;
    obs::TraceRecorder::Options ring;
    ring.capacity = capacity;
    obs::TraceRecorder recorder(ring);
    options.trace_recorder = &recorder;
    ActivationStrategy all = AllActive();
    StreamSimulation simulation(app, cluster, placement, all, *trace, options);
    for (const auto& [host, begin] : crashes) {
      EXPECT_TRUE(simulation.ScheduleHostCrash(host, begin, 16.0).ok());
    }
    EXPECT_TRUE(simulation.Run().ok());
    *metrics = simulation.metrics();
    json::Value chrome = obs::ToChromeTraceJson(recorder);
    chrome.Set("laarLossLedger", metrics->losses.ToJson());
    return chrome;
  }
};

TEST(ForensicsTest, SingleHostCrashBecomesOneReconciledIncident) {
  ForensicsFixture f;
  dsps::SimulationMetrics m;
  const json::Value chrome = f.TracedCrashRun({{0, 100.0}}, &m);
  ASSERT_TRUE(obs::ValidateChromeTrace(chrome).ok());

  auto report = obs::AnalyzeChromeTrace(chrome);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->incidents.size(), 1u);
  const obs::Incident& incident = report->incidents[0];
  EXPECT_EQ(incident.cause, "host_crash");
  EXPECT_EQ(incident.hosts, std::vector<int32_t>({0}));
  EXPECT_TRUE(incident.recovered);
  EXPECT_DOUBLE_EQ(incident.begin, 100.0);
  EXPECT_NEAR(incident.RecoverySeconds(), 16.0, 1e-9);
  EXPECT_FALSE(incident.pes.empty());

  // Every crash-attributed loss on the trace lands on this incident, and
  // the total agrees with the embedded ledger exactly.
  EXPECT_GT(incident.tuples_lost, 0u);
  EXPECT_EQ(report->attributed_lost, incident.tuples_lost);
  EXPECT_EQ(report->unattributed_lost, 0u);
  EXPECT_TRUE(report->has_ledger);
  EXPECT_EQ(report->ledger_total, m.losses.Total());
  EXPECT_EQ(report->ledger_crash_attributed,
            m.crash_lost_tuples + m.orphaned_tuples);
  EXPECT_EQ(report->trace_dropped_events, 0u);
  EXPECT_TRUE(report->reconciled);
  EXPECT_FALSE(report->ToString().empty());
  EXPECT_TRUE(report->ToJson().is_object());
}

TEST(ForensicsTest, SimultaneousHostCrashesMergeIntoDomainOutage) {
  ForensicsFixture f;
  dsps::SimulationMetrics m;
  const json::Value chrome = f.TracedCrashRun({{0, 100.0}, {1, 100.0}}, &m);

  auto report = obs::AnalyzeChromeTrace(chrome);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->incidents.size(), 1u);
  EXPECT_EQ(report->incidents[0].cause, "domain_outage");
  EXPECT_EQ(report->incidents[0].hosts, std::vector<int32_t>({0, 1}));
  EXPECT_TRUE(report->reconciled);
}

TEST(ForensicsTest, StaggeredCrashesStaySeparateIncidents) {
  ForensicsFixture f;
  dsps::SimulationMetrics m;
  const json::Value chrome = f.TracedCrashRun({{0, 100.0}, {1, 150.0}}, &m);

  auto report = obs::AnalyzeChromeTrace(chrome);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->incidents.size(), 2u);
  EXPECT_EQ(report->incidents[0].cause, "host_crash");
  EXPECT_EQ(report->incidents[1].cause, "host_crash");
  EXPECT_DOUBLE_EQ(report->incidents[0].begin, 100.0);
  EXPECT_DOUBLE_EQ(report->incidents[1].begin, 150.0);
  EXPECT_TRUE(report->reconciled);
}

TEST(ForensicsTest, WrappedRingIsReportedNotMistakenForReconciliation) {
  ForensicsFixture f;
  dsps::SimulationMetrics m;
  // 64 events cannot hold a 300 s run: the ring wraps and the report must
  // say so instead of claiming (or failing) an exact reconciliation.
  const json::Value chrome = f.TracedCrashRun({{0, 100.0}}, &m, /*capacity=*/64);
  auto report = obs::AnalyzeChromeTrace(chrome);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->trace_dropped_events, 0u);
  EXPECT_TRUE(obs::ValidateChromeTrace(chrome).ok());
}

// --------------------------------------------------------------- run diffs

namespace {

json::Value MetricsDoc(double drops, uint64_t crash_lost, uint64_t seed,
                       bool with_extra = false,
                       const char* placement = "--placement=balanced") {
  obs::MetricsRegistry registry;
  registry.GetCounter("sim_dropped_tuples")->Increment(drops);
  registry.GetCounter("sim_sink_tuples")->Increment(1000.0);
  if (with_extra) registry.GetCounter("sim_shed_tuples")->Increment(3.0);
  obs::TimeSeries* depth = registry.GetTimeSeries("queue_depth", {}, 16);
  depth->Append(1.0, drops);
  depth->Append(2.0, drops * 2);

  obs::LossLedger ledger;
  if (crash_lost > 0) ledger.Record(1, obs::LossCause::kCrashLoss, crash_lost);
  obs::PublishLossLedger(&registry, ledger);

  json::Value doc = registry.ToJson();
  doc.Set("loss_ledger", ledger.ToJson());
  const char* argv[] = {"tool", "--app=a.json", placement};
  doc.Set("run_info", obs::RunInfo::Capture("laar_simulate", seed, 3, argv).ToJson());
  return doc;
}

}  // namespace

TEST(RunDiffTest, ReportsScalarSeriesAndLedgerDeltas) {
  const json::Value a = MetricsDoc(40.0, 100, 7, /*with_extra=*/true);
  const json::Value b = MetricsDoc(10.0, 25, 7);
  auto diff = obs::DiffRuns(a, b);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();

  EXPECT_TRUE(diff->has_run_info);
  EXPECT_TRUE(diff->workload_mismatches.empty());
  EXPECT_TRUE(diff->has_ledger);
  EXPECT_EQ(diff->lost_a, 100u);
  EXPECT_EQ(diff->lost_b, 25u);
  ASSERT_FALSE(diff->losses.empty());
  EXPECT_EQ(diff->losses[0].key, "crash_loss");
  EXPECT_EQ(diff->losses[0].a, 100u);
  EXPECT_EQ(diff->losses[0].b, 25u);

  // sim_dropped_tuples differs; sim_shed_tuples exists only in A;
  // sim_sink_tuples matches and therefore does not appear.
  bool saw_drop = false, saw_only_a = false, saw_sink = false;
  for (const auto& delta : diff->scalars) {
    if (delta.key == "sim_dropped_tuples") {
      saw_drop = true;
      EXPECT_DOUBLE_EQ(delta.a, 40.0);
      EXPECT_DOUBLE_EQ(delta.b, 10.0);
    }
    if (delta.key == "sim_shed_tuples") {
      saw_only_a = true;
      EXPECT_TRUE(delta.in_a);
      EXPECT_FALSE(delta.in_b);
    }
    if (delta.key == "sim_sink_tuples") saw_sink = true;
  }
  EXPECT_TRUE(saw_drop);
  EXPECT_TRUE(saw_only_a);
  EXPECT_FALSE(saw_sink);

  ASSERT_EQ(diff->series.size(), 1u);
  EXPECT_EQ(diff->series[0].key, "queue_depth");
  EXPECT_DOUBLE_EQ(diff->series[0].sum_a, 120.0);
  EXPECT_DOUBLE_EQ(diff->series[0].sum_b, 30.0);
  EXPECT_DOUBLE_EQ(diff->series[0].peak_a, 80.0);

  // B loses fewer tuple copies; the verdict leads with that.
  EXPECT_NE(diff->verdict.find("fewer"), std::string::npos);
  EXPECT_FALSE(diff->ToString().empty());
  EXPECT_TRUE(diff->ToJson().is_object());
}

TEST(RunDiffTest, DifferentSeedsAreCalledIncomparable) {
  const json::Value a = MetricsDoc(40.0, 100, 7);
  const json::Value b = MetricsDoc(40.0, 100, 8);  // different seed
  auto diff = obs::DiffRuns(a, b);
  ASSERT_TRUE(diff.ok());
  ASSERT_FALSE(diff->workload_mismatches.empty());
  EXPECT_NE(diff->verdict.find("incomparable"), std::string::npos);
}

TEST(RunDiffTest, FlagOnlyDifferencesAreTheIntervention) {
  // Same seed, different --placement: the canonical A/B. The differing
  // flags are listed, but the verdict still compares the losses.
  const json::Value a = MetricsDoc(40.0, 100, 7, false, "--placement=balanced");
  const json::Value b = MetricsDoc(10.0, 25, 7, false, "--placement=domain");
  auto diff = obs::DiffRuns(a, b);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->workload_mismatches.size(), 2u);  // only-in-A + only-in-B
  EXPECT_EQ(diff->verdict.find("incomparable"), std::string::npos);
  EXPECT_NE(diff->verdict.find("fewer"), std::string::npos);
  EXPECT_NE(diff->verdict.find("A/B differs"), std::string::npos);
}

TEST(RunDiffTest, IdenticalRunsDiffClean) {
  const json::Value a = MetricsDoc(5.0, 10, 3);
  const json::Value b = MetricsDoc(5.0, 10, 3);
  auto diff = obs::DiffRuns(a, b);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->scalars.empty());
  EXPECT_TRUE(diff->series.empty());
  EXPECT_TRUE(diff->losses.empty());
  EXPECT_GT(diff->scalars_compared, 0u);
}

// ----------------------------------------------------- validator hardening

namespace {

json::Value Instant(const char* name, double ts, int64_t pid, int64_t tid) {
  json::Value event = json::Value::MakeObject();
  event.Set("name", json::Value::String(name));
  event.Set("ph", json::Value::String("i"));
  event.Set("ts", json::Value::Number(ts));
  event.Set("pid", json::Value::Int(pid));
  event.Set("tid", json::Value::Int(tid));
  return event;
}

json::Value TraceOf(std::vector<json::Value> events) {
  json::Value doc = json::Value::MakeObject();
  json::Value array = json::Value::MakeArray();
  for (json::Value& event : events) array.Append(std::move(event));
  doc.Set("traceEvents", std::move(array));
  return doc;
}

}  // namespace

TEST(ValidateChromeTraceTest, RejectsTimestampsGoingBackwardsOnAThread) {
  json::Value ok_trace =
      TraceOf({Instant("a", 10.0, 1, 0), Instant("b", 10.0, 1, 0),
               Instant("c", 5.0, 2, 0)});  // other thread: fine
  EXPECT_TRUE(obs::ValidateChromeTrace(ok_trace).ok());

  json::Value bad_trace =
      TraceOf({Instant("a", 10.0, 1, 0), Instant("b", 5.0, 1, 0)});
  const Status status = obs::ValidateChromeTrace(bad_trace);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("back in time"), std::string::npos);
}

TEST(ValidateChromeTraceTest, RejectsOrphanRecoversOnCompleteTraces) {
  json::Value orphan_host = TraceOf({Instant("host_recover", 10.0, 1, 0)});
  EXPECT_FALSE(obs::ValidateChromeTrace(orphan_host).ok());

  json::Value paired = TraceOf(
      {Instant("host_crash", 5.0, 1, 0), Instant("host_recover", 10.0, 1, 0)});
  EXPECT_TRUE(obs::ValidateChromeTrace(paired).ok());

  json::Value recover = Instant("replica_recover", 10.0, 1, 3);
  json::Value args = json::Value::MakeObject();
  args.Set("pe", json::Value::Int(2));
  args.Set("replica", json::Value::Int(0));
  recover.Set("args", std::move(args));
  json::Value orphan_replica = TraceOf({std::move(recover)});
  EXPECT_FALSE(obs::ValidateChromeTrace(orphan_replica).ok());
}

TEST(ValidateChromeTraceTest, WrappedRingExcusesOrphanRecovers) {
  // Once the ring overwrote events a recover may have lost its crash; the
  // validator must not reject a legitimately truncated trace.
  json::Value truncated = TraceOf({Instant("host_recover", 10.0, 1, 0)});
  truncated.Set("laarDroppedEvents", json::Value::Int(17));
  EXPECT_TRUE(obs::ValidateChromeTrace(truncated).ok());
}

}  // namespace
}  // namespace laar
