#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "laar/exec/parallel.h"
#include "laar/exec/shard_runner.h"
#include "laar/exec/thread_pool.h"

namespace laar {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&count] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, WaitIdleCoversNestedSubmissions) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 5; ++i) {
    pool.Submit([&pool, &count] {
      count.fetch_add(1);
      for (int j = 0; j < 4; ++j) {
        pool.Submit([&count] { count.fetch_add(1); });
      }
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 5 + 20);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&running, &peak] {
      const int now = running.fetch_add(1) + 1;
      int expected = peak.load();
      while (expected < now && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      running.fetch_sub(1);
    });
  }
  pool.WaitIdle();
  // With two workers the peak should have reached 2 at least once (modulo
  // extreme scheduling; >= 1 is the only hard guarantee, 2 the expectation).
  EXPECT_GE(peak.load(), 1);
}

TEST(ThreadPoolTest, DestructionDrainsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) pool.Submit([&count] { count.fetch_add(1); });
    pool.WaitIdle();
  }
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, StressNestedSubmitAndWaitIdleFromManyThreads) {
  // Many external threads hammer the same pool with nested submissions and
  // concurrent WaitIdle calls; every task must run exactly once and every
  // WaitIdle must return. (This is the sharing pattern of the corpus runner
  // plus FT-Search; run it under -DLAAR_SANITIZE=thread to verify.)
  ThreadPool pool(4);
  std::atomic<int> count{0};
  constexpr int kClients = 8;
  constexpr int kOuterPerClient = 25;
  constexpr int kInnerPerOuter = 4;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&pool, &count] {
      for (int i = 0; i < kOuterPerClient; ++i) {
        pool.Submit([&pool, &count] {
          count.fetch_add(1);
          for (int j = 0; j < kInnerPerOuter; ++j) {
            pool.Submit([&count] { count.fetch_add(1); });
          }
        });
        if (i % 5 == 0) pool.WaitIdle();
      }
      pool.WaitIdle();
    });
  }
  for (std::thread& t : clients) t.join();
  pool.WaitIdle();
  EXPECT_EQ(count.load(), kClients * kOuterPerClient * (1 + kInnerPerOuter));
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 257;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&visits](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelForTest, HandlesEmptyAndSingleRanges) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
  std::atomic<int> count{0};
  pool.ParallelFor(1, [&count](size_t i) {
    EXPECT_EQ(i, 0u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, SafeToNestInsidePoolTasks) {
  // A ParallelFor issued from inside a pool task must complete even when
  // all workers are occupied by the outer tasks (the corpus runner's
  // FT-Search-inside-worker shape).
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  ThreadPool::TaskGroup outer(&pool);
  for (int t = 0; t < 4; ++t) {
    outer.Submit([&pool, &inner] {
      pool.ParallelFor(16, [&inner](size_t) { inner.fetch_add(1); });
    });
  }
  outer.Wait();
  EXPECT_EQ(inner.load(), 4 * 16);
}

TEST(TaskGroupTest, WaitCoversOnlyOwnTasks) {
  ThreadPool pool(2);
  std::atomic<int> group_count{0};
  std::atomic<int> other_count{0};
  std::atomic<bool> release{false};
  // Park unrelated work in the pool so the group cannot rely on workers.
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&other_count, &release] {
      while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      other_count.fetch_add(1);
    });
  }
  ThreadPool::TaskGroup group(&pool);
  for (int i = 0; i < 10; ++i) {
    group.Submit([&group_count] { group_count.fetch_add(1); });
  }
  group.Wait();  // must not deadlock: the caller drains the group itself
  EXPECT_EQ(group_count.load(), 10);
  release.store(true);
  pool.WaitIdle();
  EXPECT_EQ(other_count.load(), 2);
}

TEST(TaskGroupTest, DestructorWaits) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  {
    ThreadPool::TaskGroup group(&pool);
    for (int i = 0; i < 50; ++i) {
      group.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ResolveJobsTest, MapsZeroToHardwareConcurrency) {
  EXPECT_EQ(ResolveJobs(1), 1);
  EXPECT_EQ(ResolveJobs(7), 7);
  EXPECT_GE(ResolveJobs(0), 1);
  EXPECT_EQ(ResolveJobs(-3), ResolveJobs(0));
}

std::optional<int> SquareUsableProbe(uint64_t seed) {
  // Seeds divisible by 3 are "unusable".
  if (seed % 3 == 0) return std::nullopt;
  return static_cast<int>(seed * seed);
}

TEST(CollectUsableSeedsTest, SerialKeepsFirstUsableSeedsInOrder) {
  int skipped = -1;
  const auto kept = CollectUsableSeeds<int>(4, 0, 1, 100, SquareUsableProbe, {},
                                            nullptr, &skipped);
  ASSERT_EQ(kept.size(), 4u);
  // Seeds 1,2,4,5 are usable; 3 is skipped.
  EXPECT_EQ(kept[0].seed, 1u);
  EXPECT_EQ(kept[1].seed, 2u);
  EXPECT_EQ(kept[2].seed, 4u);
  EXPECT_EQ(kept[3].seed, 5u);
  EXPECT_EQ(kept[2].value, 16);
  EXPECT_EQ(skipped, 1);
}

TEST(CollectUsableSeedsTest, ParallelMatchesSerialIncludingSkips) {
  for (int num : {1, 3, 10, 64}) {
    int serial_skipped = -1;
    const auto serial = CollectUsableSeeds<int>(num, 100, 1, 1000, SquareUsableProbe,
                                                {}, nullptr, &serial_skipped);
    for (int jobs : {2, 4, 8}) {
      int parallel_skipped = -1;
      const auto parallel =
          CollectUsableSeeds<int>(num, 100, jobs, 1000, SquareUsableProbe, {}, nullptr,
                                  &parallel_skipped);
      ASSERT_EQ(parallel.size(), serial.size()) << "num=" << num << " jobs=" << jobs;
      for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i].seed, serial[i].seed);
        EXPECT_EQ(parallel[i].value, serial[i].value);
      }
      EXPECT_EQ(parallel_skipped, serial_skipped) << "num=" << num << " jobs=" << jobs;
    }
  }
}

TEST(CollectUsableSeedsTest, ParallelStopsAtSkipLimitLikeSerial) {
  // Every seed unusable: both paths must give up after exactly max_skips
  // probes counted, returning nothing.
  const auto probe = [](uint64_t) -> std::optional<int> { return std::nullopt; };
  for (int jobs : {1, 4}) {
    int skipped = -1;
    const auto kept = CollectUsableSeeds<int>(5, 0, jobs, 17, probe, {}, nullptr,
                                              &skipped);
    EXPECT_TRUE(kept.empty()) << "jobs=" << jobs;
    EXPECT_EQ(skipped, 17) << "jobs=" << jobs;
  }
}

TEST(CollectUsableSeedsTest, OnAcceptFiresInSeedOrder) {
  std::vector<uint64_t> order;
  CollectUsableSeeds<int>(
      6, 0, 4, 100, SquareUsableProbe,
      [&order](size_t index, const SeedProbe<int>& probe) {
        EXPECT_EQ(index, order.size());
        order.push_back(probe.seed);
      });
  ASSERT_EQ(order.size(), 6u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(CollectUsableSeedsTest, SharesCallerPool) {
  ThreadPool pool(3);
  const auto kept = CollectUsableSeeds<int>(8, 0, 3, 100, SquareUsableProbe, {}, &pool);
  EXPECT_EQ(kept.size(), 8u);
}

TEST(ShardRunnerTest, EveryShardRunsOncePerPhase) {
  exec::ShardRunner runner(4);
  EXPECT_EQ(runner.shards(), 4);
  std::vector<int> calls(4, 0);
  for (int phase = 0; phase < 50; ++phase) {
    runner.RunPhase([&calls](int shard) { calls[static_cast<size_t>(shard)]++; });
  }
  for (int shard = 0; shard < 4; ++shard) EXPECT_EQ(calls[static_cast<size_t>(shard)], 50);
}

TEST(ShardRunnerTest, RunPhaseIsABarrier) {
  // Writes from phase n must be visible to phase n+1 on every shard, with
  // no synchronization beyond RunPhase itself.
  exec::ShardRunner runner(3);
  std::vector<uint64_t> counters(3, 0);
  for (int phase = 0; phase < 100; ++phase) {
    uint64_t total = 0;
    for (uint64_t c : counters) total += c;  // caller reads between phases
    const uint64_t expected = static_cast<uint64_t>(phase) * 3;
    EXPECT_EQ(total, expected);
    runner.RunPhase([&counters](int shard) { counters[static_cast<size_t>(shard)]++; });
  }
}

TEST(ShardRunnerTest, SingleShardRunsInlineOnCallerThread) {
  exec::ShardRunner runner(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  runner.RunPhase([&ran_on](int shard) {
    EXPECT_EQ(shard, 0);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(ShardRunnerTest, ClampsShardCountToAtLeastOne) {
  exec::ShardRunner runner(0);
  EXPECT_EQ(runner.shards(), 1);
  int calls = 0;
  runner.RunPhase([&calls](int) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ShardRunnerTest, DestructorJoinsIdleWorkers) {
  { exec::ShardRunner runner(8); }  // must not hang or leak threads
  SUCCEED();
}

}  // namespace
}  // namespace laar
