#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "laar/exec/thread_pool.h"

namespace laar {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&count] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, WaitIdleCoversNestedSubmissions) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 5; ++i) {
    pool.Submit([&pool, &count] {
      count.fetch_add(1);
      for (int j = 0; j < 4; ++j) {
        pool.Submit([&count] { count.fetch_add(1); });
      }
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 5 + 20);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&running, &peak] {
      const int now = running.fetch_add(1) + 1;
      int expected = peak.load();
      while (expected < now && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      running.fetch_sub(1);
    });
  }
  pool.WaitIdle();
  // With two workers the peak should have reached 2 at least once (modulo
  // extreme scheduling; >= 1 is the only hard guarantee, 2 the expectation).
  EXPECT_GE(peak.load(), 1);
}

TEST(ThreadPoolTest, DestructionDrainsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) pool.Submit([&count] { count.fetch_add(1); });
    pool.WaitIdle();
  }
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
}  // namespace laar
