#include <gtest/gtest.h>

#include "laar/model/input_space.h"

namespace laar::model {
namespace {

SourceRateSet TwoRates(ComponentId source, double low, double high, double p_low) {
  SourceRateSet s;
  s.source = source;
  s.rates = {low, high};
  s.labels = {"Low", "High"};
  s.probabilities = {p_low, 1.0 - p_low};
  return s;
}

TEST(InputSpaceTest, SingleSourceTwoRates) {
  InputSpace space;
  ASSERT_TRUE(space.AddSource(TwoRates(0, 4.0, 8.0, 0.8)).ok());
  ASSERT_TRUE(space.Validate().ok());
  EXPECT_EQ(space.num_configs(), 2);
  EXPECT_DOUBLE_EQ(space.RateOf(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(space.RateOf(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(space.Probability(0), 0.8);
  EXPECT_DOUBLE_EQ(space.Probability(1), 0.2);
  EXPECT_EQ(space.ConfigLabel(0), "Low");
  EXPECT_EQ(space.ConfigLabel(1), "High");
  EXPECT_EQ(space.PeakConfig(), 1);
}

TEST(InputSpaceTest, CartesianProductOfTwoSources) {
  InputSpace space;
  ASSERT_TRUE(space.AddSource(TwoRates(0, 1.0, 2.0, 0.5)).ok());
  ASSERT_TRUE(space.AddSource(TwoRates(1, 10.0, 30.0, 0.25)).ok());
  EXPECT_EQ(space.num_configs(), 4);
  // Mixed radix: first source most significant.
  EXPECT_DOUBLE_EQ(space.RateOf(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(space.RateOf(1, 0), 10.0);
  EXPECT_DOUBLE_EQ(space.RateOf(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(space.RateOf(1, 1), 30.0);
  EXPECT_DOUBLE_EQ(space.RateOf(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(space.RateOf(1, 2), 10.0);
  EXPECT_DOUBLE_EQ(space.RateOf(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(space.RateOf(1, 3), 30.0);
  // Independent product pmf.
  EXPECT_DOUBLE_EQ(space.Probability(0), 0.5 * 0.25);
  EXPECT_DOUBLE_EQ(space.Probability(3), 0.5 * 0.75);
  EXPECT_EQ(space.ConfigLabel(3), "(High, High)");
  EXPECT_EQ(space.PeakConfig(), 3);

  double total = 0.0;
  for (ConfigId c = 0; c < space.num_configs(); ++c) total += space.Probability(c);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(InputSpaceTest, ThreeLevelSource) {
  InputSpace space;
  SourceRateSet s;
  s.source = 2;
  s.rates = {1.0, 5.0, 9.0};
  s.probabilities = {0.2, 0.5, 0.3};
  ASSERT_TRUE(space.AddSource(s).ok());
  EXPECT_EQ(space.num_configs(), 3);
  EXPECT_EQ(space.ConfigLabel(1), "r1");  // auto labels
  EXPECT_EQ(space.PeakConfig(), 2);
}

TEST(InputSpaceTest, SourceIndexLookup) {
  InputSpace space;
  ASSERT_TRUE(space.AddSource(TwoRates(7, 1, 2, 0.5)).ok());
  EXPECT_EQ(*space.SourceIndexOf(7), 0u);
  EXPECT_FALSE(space.SourceIndexOf(3).ok());
  EXPECT_DOUBLE_EQ(*space.RateOfComponent(7, 1), 2.0);
  EXPECT_FALSE(space.RateOfComponent(3, 0).ok());
}

TEST(InputSpaceTest, RejectsBadPmf) {
  InputSpace space;
  SourceRateSet s;
  s.source = 0;
  s.rates = {1.0, 2.0};
  s.probabilities = {0.5, 0.6};  // sums to 1.1
  EXPECT_FALSE(space.AddSource(s).ok());
  s.probabilities = {-0.5, 1.5};
  EXPECT_FALSE(space.AddSource(s).ok());
  s.probabilities = {0.5};  // wrong arity
  EXPECT_FALSE(space.AddSource(s).ok());
}

TEST(InputSpaceTest, RejectsEmptyRatesAndDuplicates) {
  InputSpace space;
  SourceRateSet empty;
  empty.source = 0;
  EXPECT_FALSE(space.AddSource(empty).ok());
  ASSERT_TRUE(space.AddSource(TwoRates(0, 1, 2, 0.5)).ok());
  EXPECT_EQ(space.AddSource(TwoRates(0, 1, 2, 0.5)).code(), StatusCode::kAlreadyExists);
}

TEST(InputSpaceTest, RejectsNegativeRates) {
  InputSpace space;
  SourceRateSet s;
  s.source = 0;
  s.rates = {-1.0, 2.0};
  s.probabilities = {0.5, 0.5};
  EXPECT_FALSE(space.AddSource(s).ok());
}

TEST(InputSpaceTest, ValidateRequiresSources) {
  InputSpace space;
  EXPECT_FALSE(space.Validate().ok());
}

TEST(InputSpaceTest, JointProbabilitiesOverride) {
  InputSpace space;
  ASSERT_TRUE(space.AddSource(TwoRates(0, 1, 2, 0.5)).ok());
  ASSERT_TRUE(space.AddSource(TwoRates(1, 3, 4, 0.5)).ok());
  ASSERT_TRUE(space.SetJointProbabilities({0.1, 0.2, 0.3, 0.4}).ok());
  EXPECT_TRUE(space.has_joint_probabilities());
  EXPECT_DOUBLE_EQ(space.Probability(2), 0.3);
  // Wrong size or unnormalized rejected.
  EXPECT_FALSE(space.SetJointProbabilities({0.5, 0.5}).ok());
  EXPECT_FALSE(space.SetJointProbabilities({0.1, 0.2, 0.3, 0.5}).ok());
}

TEST(InputSpaceTest, AddingSourceDropsStaleJointPmf) {
  InputSpace space;
  ASSERT_TRUE(space.AddSource(TwoRates(0, 1, 2, 0.5)).ok());
  ASSERT_TRUE(space.SetJointProbabilities({0.7, 0.3}).ok());
  ASSERT_TRUE(space.AddSource(TwoRates(1, 3, 4, 0.25)).ok());
  EXPECT_FALSE(space.has_joint_probabilities());
  EXPECT_DOUBLE_EQ(space.Probability(0), 0.5 * 0.25);
}

}  // namespace
}  // namespace laar::model
