// Regression tests for the Rate Monitor / HAController loop (§4.6),
// including the measurement-quantization tolerance (see
// RuntimeOptions::monitor_tolerance_tuples).

#include <gtest/gtest.h>

#include "laar/dsps/stream_simulation.h"
#include "laar/dsps/trace.h"
#include "laar/model/descriptor.h"
#include "laar/strategy/activation_strategy.h"

namespace laar::dsps {
namespace {

using model::ApplicationDescriptor;
using model::Cluster;
using model::ComponentId;
using model::ReplicaPlacement;
using model::SourceRateSet;
using strategy::ActivationStrategy;

/// One-PE app with a *non-integer* Low rate equal to a configuration level:
/// the worst case for window-count rate estimation.
struct Fixture {
  ApplicationDescriptor app;
  Cluster cluster = Cluster::Homogeneous(2, 1e9);
  ReplicaPlacement placement{0, 2};
  ComponentId source, pe, sink;

  Fixture() {
    source = app.graph.AddSource("s");
    pe = app.graph.AddPe("p");
    sink = app.graph.AddSink("k");
    EXPECT_TRUE(app.graph.AddEdge(source, pe, 1.0, 0.05e9).ok());
    EXPECT_TRUE(app.graph.AddEdge(pe, sink, 1.0, 0.0).ok());
    EXPECT_TRUE(app.graph.Validate().ok());
    SourceRateSet r;
    r.source = source;
    r.rates = {7.3, 14.6};  // deliberately non-integer
    r.labels = {"Low", "High"};
    r.probabilities = {0.8, 0.2};
    EXPECT_TRUE(app.input_space.AddSource(r).ok());
    EXPECT_TRUE(app.Validate().ok());
    placement = ReplicaPlacement(app.graph.num_components(), 2);
    EXPECT_TRUE(placement.Assign(pe, 0, 0).ok());
    EXPECT_TRUE(placement.Assign(pe, 1, 1).ok());
  }

  /// Both replicas active at Low, only replica 0 at High: any spurious
  /// switch to High shows up as deactivation churn on replica 1.
  ActivationStrategy Strategy() const {
    ActivationStrategy s(app.graph.num_components(), 2, 2);
    s.SetActive(pe, 1, 1, false);
    return s;
  }
};

TEST(MonitorTest, NonIntegerRatesDoNotFlapWithTolerance) {
  Fixture f;
  InputTrace trace;
  ASSERT_TRUE(trace.Append(120.0, 0).ok());  // Low throughout
  RuntimeOptions options;                    // tolerance defaults to 1 tuple
  const ActivationStrategy strategy = f.Strategy();
  StreamSimulation simulation(f.app, f.cluster, f.placement, strategy, trace, options);
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  // Replica 1 stays active the whole run: it processes (about) everything
  // and ignores (nearly) nothing.
  const ReplicaMetrics& secondary = m.replicas[f.pe][1];
  EXPECT_LE(secondary.tuples_ignored, 4u);
  EXPECT_GE(secondary.tuples_processed, m.source_tuples - 8);
  EXPECT_EQ(m.dropped_tuples, 0u);
}

TEST(MonitorTest, ZeroToleranceFlapsOnQuantizationNoise) {
  // The regression this guards against: without the tolerance, a window
  // occasionally counts ⌈7.3⌉ = 8 tuples, 8 > 7.3 is not dominated by Low,
  // and the controller flaps to High — deactivating replica 1 mid-Low.
  Fixture f;
  InputTrace trace;
  ASSERT_TRUE(trace.Append(120.0, 0).ok());
  RuntimeOptions options;
  options.monitor_tolerance_tuples = 0.0;
  const ActivationStrategy strategy = f.Strategy();
  StreamSimulation simulation(f.app, f.cluster, f.placement, strategy, trace, options);
  ASSERT_TRUE(simulation.Run().ok());
  const ReplicaMetrics& secondary = simulation.metrics().replicas[f.pe][1];
  EXPECT_GT(secondary.tuples_ignored, 20u);  // churn is visible
}

TEST(MonitorTest, GenuineRateChangeStillDetectedPromptly) {
  Fixture f;
  auto trace = InputTrace::Step(0, 1, 60.0, 120.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  const ActivationStrategy strategy = f.Strategy();
  StreamSimulation simulation(f.app, f.cluster, f.placement, strategy, *trace, options);
  ASSERT_TRUE(simulation.Run().ok());
  const SimulationMetrics& m = simulation.metrics();
  // After the step, replica 1 must be deactivated: its processing stops
  // within a few monitor periods.
  const ReplicaMetrics& secondary = m.replicas[f.pe][1];
  const ReplicaMetrics& primary = m.replicas[f.pe][0];
  // Primary processed the whole trace; secondary only the Low part
  // (~7.3 * 60 tuples) plus a short detection window.
  EXPECT_GE(primary.tuples_processed, m.source_tuples - 8);
  EXPECT_LE(secondary.tuples_processed, static_cast<uint64_t>(7.3 * 60 + 14.6 * 5));
  EXPECT_GE(secondary.tuples_processed, static_cast<uint64_t>(7.3 * 60 * 0.9));
}

TEST(MonitorTest, DisabledDynamicControlNeverSwitches) {
  Fixture f;
  auto trace = InputTrace::Step(0, 1, 30.0, 60.0);
  ASSERT_TRUE(trace.ok());
  RuntimeOptions options;
  options.dynamic_control = false;
  const ActivationStrategy strategy = f.Strategy();
  StreamSimulation simulation(f.app, f.cluster, f.placement, strategy, *trace, options);
  ASSERT_TRUE(simulation.Run().ok());
  // Replica 1 keeps processing during High (the Low activation persists).
  const ReplicaMetrics& secondary = simulation.metrics().replicas[f.pe][1];
  EXPECT_GE(secondary.tuples_processed,
            simulation.metrics().source_tuples - 8);
}

}  // namespace
}  // namespace laar::dsps
