#include <algorithm>

#include <gtest/gtest.h>

#include "laar/appgen/app_generator.h"
#include "laar/metrics/cost.h"
#include "laar/strategy/activation_strategy.h"

namespace laar::appgen {
namespace {

using model::ConfigId;
using model::ExpectedRates;

TEST(AppGeneratorTest, DeterministicBySeed) {
  GeneratorOptions options;
  options.num_pes = 12;
  options.num_hosts = 6;
  Result<GeneratedApplication> a = GenerateApplication(options, 42);
  Result<GeneratedApplication> b = GenerateApplication(options, 42);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->descriptor.ToJson().Dump(), b->descriptor.ToJson().Dump());

  Result<GeneratedApplication> c = GenerateApplication(options, 43);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->descriptor.ToJson().Dump(), c->descriptor.ToJson().Dump());
}

TEST(AppGeneratorTest, StructureMatchesOptions) {
  GeneratorOptions options;
  options.num_pes = 16;
  options.num_sources = 2;
  options.num_sinks = 2;
  options.num_hosts = 8;
  Result<GeneratedApplication> app = GenerateApplication(options, 7);
  ASSERT_TRUE(app.ok()) << app.status().ToString();
  const model::ApplicationGraph& graph = app->descriptor.graph;
  EXPECT_EQ(graph.num_pes(), 16u);
  EXPECT_EQ(graph.Sources().size(), 2u);
  EXPECT_EQ(graph.Sinks().size(), 2u);
  EXPECT_TRUE(graph.validated());
  EXPECT_EQ(app->cluster.num_hosts(), 8u);
  EXPECT_TRUE(app->placement.Validate(app->cluster).ok());
  EXPECT_EQ(app->descriptor.input_space.num_configs(), 4);
}

TEST(AppGeneratorTest, SelectivitiesWithinConfiguredRange) {
  GeneratorOptions options;
  options.num_pes = 20;
  options.num_hosts = 10;
  Result<GeneratedApplication> app = GenerateApplication(options, 11);
  ASSERT_TRUE(app.ok());
  for (const model::Edge& e : app->descriptor.graph.edges()) {
    if (!app->descriptor.graph.IsPe(e.to)) continue;
    EXPECT_GE(e.selectivity, options.selectivity_min);
    EXPECT_LE(e.selectivity, options.selectivity_max);
    EXPECT_GT(e.cpu_cost_cycles, 0.0);
  }
}

TEST(AppGeneratorTest, RatesWithinRangeAndOrdered) {
  GeneratorOptions options;
  options.num_pes = 8;
  options.num_hosts = 4;
  for (uint64_t seed : {1u, 2u, 3u}) {
    Result<GeneratedApplication> app = GenerateApplication(options, seed);
    ASSERT_TRUE(app.ok());
    for (const model::SourceRateSet& s : app->descriptor.input_space.sources()) {
      ASSERT_EQ(s.rates.size(), 2u);
      EXPECT_GE(s.rates[0], options.rate_min);
      EXPECT_LE(s.rates[1], options.rate_max);
      EXPECT_LT(s.rates[0], s.rates[1]);
      EXPECT_EQ(s.labels[0], "Low");
      EXPECT_NEAR(s.probabilities[0], options.low_probability, 1e-12);
    }
  }
}

TEST(AppGeneratorTest, CalibrationConditionsHold) {
  // §5.2: not overloaded at Low with all replicas active; overloaded at
  // High.
  GeneratorOptions options;
  options.num_pes = 24;
  options.num_hosts = 12;
  for (uint64_t seed : {5u, 6u, 7u, 8u}) {
    Result<GeneratedApplication> app = GenerateApplication(options, seed);
    ASSERT_TRUE(app.ok()) << app.status().ToString();
    auto rates = ExpectedRates::Compute(app->descriptor.graph, app->descriptor.input_space);
    ASSERT_TRUE(rates.ok());
    const strategy::ActivationStrategy all_active(
        app->descriptor.graph.num_components(), 2,
        app->descriptor.input_space.num_configs());
    const ConfigId low = 0;
    const ConfigId high = app->descriptor.input_space.PeakConfig();
    EXPECT_FALSE(metrics::IsOverloaded(app->descriptor.graph, *rates, app->placement,
                                       all_active, app->cluster, low))
        << "seed=" << seed;
    EXPECT_TRUE(metrics::IsOverloaded(app->descriptor.graph, *rates, app->placement,
                                      all_active, app->cluster, high))
        << "seed=" << seed;

    // The Low-side load stays within the condition-i bound.
    const std::vector<double> loads = metrics::HostLoads(
        app->descriptor.graph, *rates, app->placement, all_active, app->cluster, low);
    const double max_load = *std::max_element(loads.begin(), loads.end());
    EXPECT_LE(max_load, options.low_load_max * options.host_capacity * (1.0 + 1e-9));
    EXPECT_GT(max_load, 0.0);

    // The High-side all-active peak load sits within the overload anchor
    // range, which also leaves a single-replica deployment feasible.
    const std::vector<double> high_loads = metrics::HostLoads(
        app->descriptor.graph, *rates, app->placement, all_active, app->cluster, high);
    const double max_high = *std::max_element(high_loads.begin(), high_loads.end());
    EXPECT_GE(max_high, options.high_overload_min * options.host_capacity * (1.0 - 1e-9));
    EXPECT_LE(max_high, options.high_overload_max * options.host_capacity * (1.0 + 1e-9));
  }
}

TEST(AppGeneratorTest, RejectsBadOptions) {
  GeneratorOptions options;
  options.num_pes = 0;
  EXPECT_FALSE(GenerateApplication(options, 1).ok());

  options = GeneratorOptions{};
  options.num_hosts = 1;  // < replication factor
  EXPECT_FALSE(GenerateApplication(options, 1).ok());

  options = GeneratorOptions{};
  options.low_load_max = 1.5;
  EXPECT_FALSE(GenerateApplication(options, 1).ok());

  options = GeneratorOptions{};
  options.high_overload_min = 0.9;
  EXPECT_FALSE(GenerateApplication(options, 1).ok());

  options = GeneratorOptions{};
  options.high_overload_max = 1.05;  // below the min
  EXPECT_FALSE(GenerateApplication(options, 1).ok());

  options = GeneratorOptions{};
  options.rate_min = -1.0;
  EXPECT_FALSE(GenerateApplication(options, 1).ok());
}

TEST(AppGeneratorTest, DescriptorRoundTripsThroughJson) {
  GeneratorOptions options;
  options.num_pes = 10;
  options.num_hosts = 5;
  Result<GeneratedApplication> app = GenerateApplication(options, 21);
  ASSERT_TRUE(app.ok());
  auto loaded = model::ApplicationDescriptor::FromJson(app->descriptor.ToJson());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->ToJson().Dump(), app->descriptor.ToJson().Dump());
}

TEST(AppGeneratorTest, EveryPeReachableAndDraining) {
  GeneratorOptions options;
  options.num_pes = 24;
  options.num_hosts = 12;
  Result<GeneratedApplication> app = GenerateApplication(options, 31);
  ASSERT_TRUE(app.ok());
  const model::ApplicationGraph& graph = app->descriptor.graph;
  for (model::ComponentId pe : graph.Pes()) {
    EXPECT_FALSE(graph.IncomingEdges(pe).empty());
    EXPECT_FALSE(graph.OutgoingEdges(pe).empty());
  }
}

}  // namespace
}  // namespace laar::appgen
