#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "laar/json/json.h"

namespace laar::json {
namespace {

TEST(JsonValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Bool(true).is_bool());
  EXPECT_TRUE(Value::Number(1.5).is_number());
  EXPECT_TRUE(Value::String("x").is_string());
  EXPECT_TRUE(Value::MakeArray().is_array());
  EXPECT_TRUE(Value::MakeObject().is_object());

  EXPECT_EQ(*Value::Bool(true).AsBool(), true);
  EXPECT_DOUBLE_EQ(*Value::Number(2.25).AsDouble(), 2.25);
  EXPECT_EQ(*Value::Int(42).AsInt(), 42);
  EXPECT_EQ(*Value::String("hey").AsString(), "hey");
}

TEST(JsonValueTest, TypeMismatchErrors) {
  EXPECT_FALSE(Value::Number(1).AsBool().ok());
  EXPECT_FALSE(Value::String("1").AsDouble().ok());
  EXPECT_FALSE(Value::Bool(true).AsString().ok());
  EXPECT_FALSE(Value::Number(1.5).AsInt().ok());  // not an exact integer
}

TEST(JsonValueTest, ObjectSetGet) {
  Value obj = Value::MakeObject();
  obj.Set("k", Value::Int(3));
  ASSERT_TRUE(obj.Has("k"));
  EXPECT_EQ(*(*obj.Get("k"))->AsInt(), 3);
  EXPECT_FALSE(obj.Get("missing").ok());
  EXPECT_EQ(obj.GetOr("missing", Value::Int(9)).number_value(), 9.0);
}

TEST(JsonValueTest, ArrayAppend) {
  Value arr = Value::MakeArray();
  arr.Append(Value::Int(1));
  arr.Append(Value::String("two"));
  ASSERT_EQ(arr.array().size(), 2u);
  EXPECT_EQ(arr.array()[1].string_value(), "two");
}

TEST(JsonDumpTest, CompactAndPretty) {
  Value obj = Value::MakeObject();
  obj.Set("b", Value::Bool(false));
  obj.Set("a", Value::Int(1));
  // std::map ordering makes output deterministic and sorted.
  EXPECT_EQ(obj.Dump(), "{\"a\":1,\"b\":false}");
  const std::string pretty = obj.Dump(2);
  EXPECT_NE(pretty.find("\n  \"a\": 1"), std::string::npos);
}

TEST(JsonDumpTest, EscapesSpecialCharacters) {
  EXPECT_EQ(Value::String("a\"b\\c\nd").Dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(JsonDumpTest, NumbersIntegersStayIntegral) {
  EXPECT_EQ(Value::Int(1000000).Dump(), "1000000");
  EXPECT_EQ(Value::Number(0.5).Dump(), "0.5");
  EXPECT_EQ(Value::Number(-3.0).Dump(), "-3");
}

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE((*Parse("null")).is_null());
  EXPECT_EQ((*Parse("true")).bool_value(), true);
  EXPECT_EQ((*Parse("false")).bool_value(), false);
  EXPECT_DOUBLE_EQ((*Parse("-1.5e2")).number_value(), -150.0);
  EXPECT_EQ((*Parse("\"hi\"")).string_value(), "hi");
}

TEST(JsonParseTest, ParsesNested) {
  Result<Value> doc = Parse(R"({"a": [1, 2, {"b": "c"}], "d": {}})");
  ASSERT_TRUE(doc.ok());
  const Value& a = *(*doc->Get("a"));
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.array().size(), 3u);
  EXPECT_EQ(a.array()[2].GetOr("b", Value::Null()).string_value(), "c");
}

TEST(JsonParseTest, WhitespaceTolerant) {
  EXPECT_TRUE(Parse("  {\n\t\"a\" : 1 ,\r\n \"b\": [ ] }  ").ok());
}

TEST(JsonParseTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(Parse("{} x").ok());
  EXPECT_FALSE(Parse("1 2").ok());
}

TEST(JsonParseTest, RejectsMalformed) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("{a: 1}").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("tru").ok());
  EXPECT_FALSE(Parse("00x").ok());
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ((*Parse(R"("a\"\\\n\tA")")).string_value(), "a\"\\\n\tA");
  EXPECT_FALSE(Parse(R"("\u00G1")").ok());
  EXPECT_FALSE(Parse(R"("\q")").ok());
}

TEST(JsonParseTest, UnicodeEscapeUtf8) {
  // U+00E9 (é) -> two UTF-8 bytes; U+20AC (€) -> three.
  EXPECT_EQ((*Parse("\"\\u00e9\"")).string_value(), "\xC3\xA9");
  EXPECT_EQ((*Parse("\"\\u20AC\"")).string_value(), "\xE2\x82\xAC");
}

TEST(JsonParseTest, DeepNestingBounded) {
  std::string deep;
  for (int i = 0; i < 500; ++i) deep += "[";
  EXPECT_FALSE(Parse(deep).ok());
}

TEST(JsonRoundTripTest, DumpThenParse) {
  Value obj = Value::MakeObject();
  obj.Set("name", Value::String("app"));
  obj.Set("pi", Value::Number(3.141592653589793));
  Value arr = Value::MakeArray();
  for (int i = 0; i < 5; ++i) arr.Append(Value::Int(i * i));
  obj.Set("squares", std::move(arr));
  Result<Value> round = Parse(obj.Dump(2));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->Dump(), obj.Dump());
}

TEST(JsonFileTest, WriteAndReadBack) {
  const std::string path = testing::TempDir() + "/laar_json_test.json";
  Value obj = Value::MakeObject();
  obj.Set("k", Value::Int(7));
  ASSERT_TRUE(WriteFile(obj, path).ok());
  Result<Value> loaded = ParseFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Dump(), obj.Dump());
  std::remove(path.c_str());
}

TEST(JsonFileTest, MissingFileIsIoError) {
  Result<Value> r = ParseFile("/nonexistent/laar/path.json");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace laar::json
