#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "laar/common/rng.h"
#include "laar/configindex/config_index.h"

namespace laar::configindex {
namespace {

using model::ConfigId;
using model::InputSpace;
using model::SourceRateSet;

InputSpace MakeSpace(const std::vector<std::vector<double>>& per_source_rates) {
  InputSpace space;
  for (size_t i = 0; i < per_source_rates.size(); ++i) {
    SourceRateSet s;
    s.source = static_cast<model::ComponentId>(i);
    s.rates = per_source_rates[i];
    s.probabilities.assign(per_source_rates[i].size(),
                           1.0 / static_cast<double>(per_source_rates[i].size()));
    // Normalize exactly for odd divisions.
    double total = 0.0;
    for (double p : s.probabilities) total += p;
    s.probabilities.back() += 1.0 - total;
    EXPECT_TRUE(space.AddSource(s).ok());
  }
  return space;
}

/// Brute force reference: nearest config dominating the query.
ConfigId BruteForce(const InputSpace& space, const std::vector<double>& query) {
  ConfigId best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (ConfigId c = 0; c < space.num_configs(); ++c) {
    bool dominates = true;
    double dist = 0.0;
    for (size_t d = 0; d < space.num_sources(); ++d) {
      const double rate = space.RateOf(d, c);
      if (rate < query[d]) {
        dominates = false;
        break;
      }
      dist += (rate - query[d]) * (rate - query[d]);
    }
    if (dominates && dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best < 0 ? space.PeakConfig() : best;
}

TEST(ConfigIndexTest, SingleSourceTwoRates) {
  InputSpace space = MakeSpace({{4.0, 8.0}});
  Result<ConfigIndex> index = ConfigIndex::Build(space);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_points(), 2u);
  // Below Low -> Low; between -> High; above High -> peak fallback.
  EXPECT_EQ(*index->Lookup({2.0}), 0);
  EXPECT_EQ(*index->Lookup({4.0}), 0);
  EXPECT_EQ(*index->Lookup({4.1}), 1);
  EXPECT_EQ(*index->Lookup({8.0}), 1);
  EXPECT_EQ(*index->Lookup({11.0}), 1);  // fallback to peak
  EXPECT_EQ(*index->Lookup({0.0}), 0);
}

TEST(ConfigIndexTest, NeverUnderestimatesLoad) {
  InputSpace space = MakeSpace({{1.0, 5.0, 9.0}, {2.0, 4.0}});
  Result<ConfigIndex> index = ConfigIndex::Build(space);
  ASSERT_TRUE(index.ok());
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    const std::vector<double> query = {rng.Uniform(0.0, 9.0), rng.Uniform(0.0, 4.0)};
    const ConfigId chosen = *index->Lookup(query);
    // The chosen configuration dominates the measurement (§4.6 guarantee).
    for (size_t d = 0; d < 2; ++d) {
      EXPECT_GE(space.RateOf(d, chosen), query[d]);
    }
  }
}

TEST(ConfigIndexTest, MatchesBruteForceOnRandomQueries) {
  InputSpace space = MakeSpace({{1.0, 3.0, 7.0, 9.0}, {2.0, 5.0, 8.0}, {1.5, 6.5}});
  Result<ConfigIndex> index = ConfigIndex::Build(space);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_points(), 24u);
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const std::vector<double> query = {rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 9.0),
                                       rng.Uniform(0.0, 7.0)};
    EXPECT_EQ(*index->Lookup(query), BruteForce(space, query)) << "i=" << i;
  }
}

TEST(ConfigIndexTest, LargeSpaceBuildsMultiLevelTree) {
  // 4 sources x 4 rates = 256 points: with 8 entries/node the tree must
  // have at least 3 levels, and lookups must still match brute force.
  InputSpace space = MakeSpace({{1, 2, 3, 4}, {1, 2, 3, 4}, {1, 2, 3, 4}, {1, 2, 3, 4}});
  Result<ConfigIndex> index = ConfigIndex::Build(space);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_points(), 256u);
  EXPECT_GE(index->Height(), 3);
  Rng rng(19);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> query(4);
    for (double& q : query) q = rng.Uniform(0.0, 4.5);
    EXPECT_EQ(*index->Lookup(query), BruteForce(space, query));
  }
}

TEST(ConfigIndexTest, RejectsWrongDimensionQuery) {
  InputSpace space = MakeSpace({{1.0, 2.0}});
  Result<ConfigIndex> index = ConfigIndex::Build(space);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->Lookup({1.0, 2.0}).ok());
  EXPECT_FALSE(index->Lookup({}).ok());
}

TEST(ConfigIndexTest, ExactRatePicksThatConfig) {
  InputSpace space = MakeSpace({{4.0, 8.0}, {3.0, 6.0}});
  Result<ConfigIndex> index = ConfigIndex::Build(space);
  ASSERT_TRUE(index.ok());
  for (ConfigId c = 0; c < space.num_configs(); ++c) {
    const std::vector<double> exact = {space.RateOf(0, c), space.RateOf(1, c)};
    EXPECT_EQ(*index->Lookup(exact), c);
  }
}

}  // namespace
}  // namespace laar::configindex
