#!/bin/sh
# The repository's check suite, runnable locally or as the single CI step:
#
#   sh tools/run_checks.sh [build-dir]
#
# 1. configures + builds the default tree (-Wall -Wextra -Werror),
# 2. runs the full ctest suite,
# 3. verifies no generated artifacts are tracked by git,
# 4. smoke-tests the CLI pipeline end to end (generate -> solve ->
#    simulate with a correlated rack outage and an explicit overlapping
#    crash schedule), then the forensics loop on the outage run:
#    validate + explain the trace, diff the two placements, and require
#    the artifacts to be byte-identical across --jobs and across
#    --shards=1/4 at a fixed --link-latency (the sharded-engine contract),
# 5. rebuilds the concurrency-sensitive tests (thread pool, parallel
#    corpus + observability publishing, sharded DES engine) under
#    ThreadSanitizer and runs them.
#
# Any failing step aborts the script with a non-zero exit.
set -eu

cd "$(git rev-parse --show-toplevel)"

BUILD_DIR="${1:-build}"
TSAN_DIR="${BUILD_DIR}-tsan"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== [1/5] build (${BUILD_DIR}) =="
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== [2/5] ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo "== [3/5] tracked-artifact check =="
sh tools/check_no_tracked_artifacts.sh

echo "== [4/5] CLI smoke: generate -> solve -> simulate (domain outage + crash schedule) =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"./$BUILD_DIR/tools/laar_generate" --seed=7 --out="$SMOKE_DIR/app.json" >/dev/null
"./$BUILD_DIR/tools/laar_solve" --app="$SMOKE_DIR/app.json" --ic=0.6 \
    --out="$SMOKE_DIR/strategy.json" >/dev/null
"./$BUILD_DIR/tools/laar_simulate" --app="$SMOKE_DIR/app.json" \
    --strategy="$SMOKE_DIR/strategy.json" --hosts-per-rack=3 \
    --placement=domain --fail-domain=rack:1 >/dev/null
"./$BUILD_DIR/tools/laar_simulate" --app="$SMOKE_DIR/app.json" \
    --strategy="$SMOKE_DIR/strategy.json" \
    --crash-schedule=2@10+8,2@13+8,5@30+5 >/dev/null

# Forensics loop on the rack outage. The restricted category list keeps the
# trace ring from wrapping, so `explain` can (and must) reconcile every
# crash-attributed loss against the embedded ledger.
forensics_sim() {
    "./$BUILD_DIR/tools/laar_simulate" --app="$SMOKE_DIR/app.json" \
        --strategy="$SMOKE_DIR/strategy.json" --hosts-per-rack=3 \
        --fail-domain=rack:1 \
        --trace-categories=drops,failures,config,health "$@" >/dev/null
}
forensics_sim --placement=domain \
    --trace-out="$SMOKE_DIR/domain.trace.json" \
    --metrics-out="$SMOKE_DIR/domain.metrics.json"
forensics_sim --placement=balanced \
    --metrics-out="$SMOKE_DIR/balanced.metrics.json"
"./$BUILD_DIR/tools/laar_trace" --in="$SMOKE_DIR/domain.trace.json" validate >/dev/null
"./$BUILD_DIR/tools/laar_trace" --in="$SMOKE_DIR/domain.trace.json" explain >/dev/null
"./$BUILD_DIR/tools/laar_trace" diff "$SMOKE_DIR/balanced.metrics.json" \
    "$SMOKE_DIR/domain.metrics.json" >/dev/null
# Worker parallelism must not leak into the artifacts.
forensics_sim --placement=domain --jobs=2 \
    --trace-out="$SMOKE_DIR/domain.jobs2.trace.json" \
    --metrics-out="$SMOKE_DIR/domain.jobs2.metrics.json"
cmp "$SMOKE_DIR/domain.trace.json" "$SMOKE_DIR/domain.jobs2.trace.json"
cmp "$SMOKE_DIR/domain.metrics.json" "$SMOKE_DIR/domain.jobs2.metrics.json"

# The sharded-engine contract end to end: at a fixed --link-latency, the
# shard count must not change a single artifact byte.
sharded_sim() {
    forensics_sim --placement=domain --link-latency=0.005 "$@"
}
sharded_sim --shards=1 \
    --trace-out="$SMOKE_DIR/domain.s1.trace.json" \
    --metrics-out="$SMOKE_DIR/domain.s1.metrics.json"
sharded_sim --shards=4 \
    --trace-out="$SMOKE_DIR/domain.s4.trace.json" \
    --metrics-out="$SMOKE_DIR/domain.s4.metrics.json"
cmp "$SMOKE_DIR/domain.s1.trace.json" "$SMOKE_DIR/domain.s4.trace.json"
cmp "$SMOKE_DIR/domain.s1.metrics.json" "$SMOKE_DIR/domain.s4.metrics.json"

echo "== [5/5] TSan: exec_test + obs_test + sharded_sim_test (${TSAN_DIR}) =="
cmake -B "$TSAN_DIR" -S . -DLAAR_SANITIZE=thread >/dev/null
cmake --build "$TSAN_DIR" -j "$JOBS" --target exec_test obs_test sharded_sim_test
ctest --test-dir "$TSAN_DIR" -R 'exec_test|obs_test|sharded_sim_test' --output-on-failure

echo "ok: all checks passed"
