#!/bin/sh
# The repository's check suite, runnable locally or as the single CI step:
#
#   sh tools/run_checks.sh [build-dir]
#
# 1. configures + builds the default tree (-Wall -Wextra -Werror),
# 2. runs the full ctest suite,
# 3. verifies no generated artifacts are tracked by git,
# 4. rebuilds the concurrency-sensitive tests (thread pool, parallel
#    corpus + observability publishing) under ThreadSanitizer and runs
#    them.
#
# Any failing step aborts the script with a non-zero exit.
set -eu

cd "$(git rev-parse --show-toplevel)"

BUILD_DIR="${1:-build}"
TSAN_DIR="${BUILD_DIR}-tsan"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== [1/4] build (${BUILD_DIR}) =="
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== [2/4] ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo "== [3/4] tracked-artifact check =="
sh tools/check_no_tracked_artifacts.sh

echo "== [4/4] TSan: exec_test + obs_test (${TSAN_DIR}) =="
cmake -B "$TSAN_DIR" -S . -DLAAR_SANITIZE=thread >/dev/null
cmake --build "$TSAN_DIR" -j "$JOBS" --target exec_test obs_test
ctest --test-dir "$TSAN_DIR" -R 'exec_test|obs_test' --output-on-failure

echo "ok: all checks passed"
