// laar_generate — emit a synthetic application descriptor (§5.2 generator).
//
// Usage:
//   laar_generate --out=app.json [--seed=N] [--profile=paper|web-scale]
//                 [--pes=24] [--sources=1] [--sinks=1] [--hosts=12]
//                 [--capacity=1e9]
//
// The descriptor is self-contained JSON consumable by laar_solve and
// laar_simulate. The generated deployment is calibrated so that the
// twofold-replicated application fits under "Low" input and overloads
// under "High" — the regime LAAR is designed for.
//
// --profile selects the option preset: "paper" (the default) is the §5.2
// testbed scale; "web-scale" is 2048 PEs / 8 sources / 256 hosts with a
// rack/zone failure topology and rack-spread placement, the workload the
// sharded-engine scaling benchmarks run (EXPERIMENTS.md). Explicit size
// flags override the chosen profile's values.

#include <cstdio>
#include <string>

#include "laar/appgen/app_generator.h"
#include "laar/common/flags.h"

int main(int argc, char** argv) {
  laar::Flags flags(argc, argv);
  const std::string path = flags.GetString("out", "");
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: laar_generate --out=app.json [--seed=N] "
                 "[--profile=paper|web-scale] [--pes=N] [--sources=N] "
                 "[--sinks=N] [--hosts=N] [--capacity=CYCLES_PER_SEC]\n");
    return 2;
  }

  const std::string profile = flags.GetString("profile", "paper");
  laar::appgen::GeneratorOptions options;
  if (profile == "web-scale") {
    options = laar::appgen::WebScaleProfile();
  } else if (profile != "paper") {
    std::fprintf(stderr, "unknown --profile=%s (want paper or web-scale)\n",
                 profile.c_str());
    return 2;
  }
  options.num_pes = flags.GetInt("pes", options.num_pes);
  options.num_sources = flags.GetInt("sources", options.num_sources);
  options.num_sinks = flags.GetInt("sinks", options.num_sinks);
  options.num_hosts = flags.GetInt("hosts", options.num_hosts);
  options.host_capacity = flags.GetDouble("capacity", options.host_capacity);
  const uint64_t seed = flags.GetUint64("seed", 1);

  auto app = laar::appgen::GenerateApplication(options, seed);
  if (!app.ok()) {
    std::fprintf(stderr, "generation failed: %s\n", app.status().ToString().c_str());
    return 1;
  }
  const laar::Status status = app->descriptor.SaveToFile(path);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu PEs, %zu sources, %zu sinks; calibrated for %d x %.3g "
              "cycles/s hosts (seed %llu)\n",
              path.c_str(), app->descriptor.graph.num_pes(),
              app->descriptor.graph.Sources().size(),
              app->descriptor.graph.Sinks().size(), options.num_hosts,
              options.host_capacity, static_cast<unsigned long long>(seed));
  return 0;
}
