#!/bin/sh
# Fails if generated artifacts (build trees, objects, CMake state) are
# tracked by git. Run from anywhere inside the repository; suitable as a
# CI step:
#
#   sh tools/check_no_tracked_artifacts.sh
set -eu

cd "$(git rev-parse --show-toplevel)"

bad=$(git ls-files | grep -E \
  '^(build|cmake-build-[^/]*)/|\.(o|obj|a|so|dylib)$|(^|/)(CMakeCache\.txt|cmake_install\.cmake|CTestTestfile\.cmake)$|(^|/)CMakeFiles/' \
  || true)

if [ -n "$bad" ]; then
  echo "error: generated artifacts are tracked by git:" >&2
  echo "$bad" | sed 's/^/  /' >&2
  echo "untrack them with: git rm -r --cached <path>" >&2
  exit 1
fi
echo "ok: no generated artifacts tracked"
