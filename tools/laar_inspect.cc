// laar_inspect — summarize an application descriptor (JSON or SPL text):
// components, per-configuration rates and CPU demands, BIC, and optionally
// a Graphviz rendering.
//
// Usage:
//   laar_inspect --app=app.json [--spl] [--dot] [--capacity=1e9]

#include <cstdio>
#include <string>

#include "laar/common/flags.h"
#include "laar/common/strings.h"
#include "laar/metrics/ic.h"
#include "laar/model/descriptor.h"
#include "laar/model/dot.h"
#include "laar/model/rates.h"
#include "laar/spl/spl_parser.h"

int main(int argc, char** argv) {
  laar::Flags flags(argc, argv);
  const std::string path = flags.GetString("app", "");
  if (path.empty()) {
    std::fprintf(stderr, "usage: laar_inspect --app=app.json [--spl] [--dot]\n");
    return 2;
  }

  auto app = flags.Has("spl") ? laar::spl::ParseApplicationFile(path)
                              : laar::model::ApplicationDescriptor::LoadFromFile(path);
  if (!app.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                 app.status().ToString().c_str());
    return 1;
  }

  const laar::model::ApplicationGraph& graph = app->graph;
  std::printf("application '%s': %zu sources, %zu PEs, %zu sinks, %zu streams\n",
              app->name.c_str(), graph.Sources().size(), graph.num_pes(),
              graph.Sinks().size(), graph.num_edges());

  auto rates = laar::model::ExpectedRates::Compute(graph, app->input_space);
  if (!rates.ok()) {
    std::fprintf(stderr, "rate analysis failed: %s\n", rates.status().ToString().c_str());
    return 1;
  }
  const laar::metrics::IcCalculator calculator(graph, app->input_space, *rates);

  std::printf("\ninput configurations (|C| = %d):\n", app->input_space.num_configs());
  for (laar::model::ConfigId c = 0; c < app->input_space.num_configs(); ++c) {
    double demand = 0.0;
    for (laar::model::ComponentId pe : graph.Pes()) {
      demand += rates->CpuDemand(graph, pe, c);
    }
    std::printf("  %-16s P=%.4f  total demand %.4g cycles/s  PE arrivals %.2f t/s\n",
                app->input_space.ConfigLabel(c).c_str(), app->input_space.Probability(c),
                demand, calculator.BestCaseOfConfig(c));
  }
  std::printf("expected tuples processed per second (BIC/T): %.3f\n",
              calculator.BestCase());

  std::printf("\nper-PE peak demand:\n");
  const laar::model::ConfigId peak = app->input_space.PeakConfig();
  for (laar::model::ComponentId pe : graph.Pes()) {
    std::printf("  %-24s %10.4g cycles/s  (in %5.2f t/s, out %5.2f t/s)\n",
                graph.component(pe).name.c_str(), rates->CpuDemand(graph, pe, peak),
                rates->ArrivalRate(graph, pe, peak), rates->Rate(pe, peak));
  }

  if (flags.Has("dot")) {
    std::printf("\n%s", laar::model::ToDot(graph).c_str());
  }
  return 0;
}
