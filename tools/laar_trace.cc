// laar_trace — inspect and transform Chrome trace-event JSON produced by
// `laar_simulate --trace-out` (or the corpus runner's per-experiment
// traces).
//
// Usage:
//   laar_trace summarize --in=run.json            # also the default
//   laar_trace validate --in=run.json             # schema check, exit 0/1
//   laar_trace filter --in=run.json --filter=drops,failures --out=small.json
//   laar_trace timeseries --in=run.json [--bucket=S] [--out=series.csv]
//   laar_trace explain --in=run.json [--out=forensics.json]
//   laar_trace diff runA.json runB.json [--out=diff.json]
//                   (--a=runA.json --b=runB.json also accepted)
//
// The subcommand word is optional for the first three (legacy flag-driven
// invocations keep working: --validate, --filter imply their subcommands).
//
// `filter` keeps metadata records plus the events of the named categories
// ({drops, queues, activation, failures, config, spans, engine, tuples,
// health}) and writes the result — still valid Chrome trace JSON — to
// --out.
//
// `timeseries` re-derives plottable series from a recorded trace: every
// counter ("C") event becomes one CSV row, and with --bucket=S each event
// category additionally gets a bucketed event-count series — CSV with the
// fixed header `time_seconds,series,value`, to --out or stdout.
//
// `explain` runs the post-run forensic pass: host crash/recover events are
// correlated into incidents (simultaneous multi-host outages are domain
// outages), crash-attributed losses and collateral drops are assigned to
// them, and the result — reconciled against the loss ledger the producer
// stamped into the trace — prints as a one-screen incident report (JSON to
// --out). Exits 1 when a complete trace fails to reconcile with its ledger.
//
// `diff` compares two `--metrics-out` artifacts (counters, gauges,
// histograms, timeseries, loss ledgers) and prints per-entry deltas plus a
// one-line verdict; the stamped run metadata flags incomparable workloads.

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "laar/common/flags.h"
#include "laar/common/strings.h"
#include "laar/json/json.h"
#include "laar/obs/chrome_trace.h"
#include "laar/obs/forensics.h"
#include "laar/obs/run_diff.h"
#include "laar/obs/trace_event.h"

namespace {

/// CSV rows of every counter event, plus optional per-category bucketed
/// event counts. Sorted by series name then time — deterministic for a
/// given trace.
std::string TimeSeriesCsvFromTrace(const laar::json::Value& trace, double bucket_seconds) {
  const laar::json::Value empty_array = laar::json::Value::MakeArray();
  const laar::json::Value& events = trace.GetOr("traceEvents", empty_array);
  // series name -> time -> value (map: sorted, last write wins per instant)
  std::map<std::string, std::map<double, double>> series;
  for (const laar::json::Value& event : events.array()) {
    if (!event.is_object()) continue;
    const std::string phase =
        event.GetOr("ph", laar::json::Value::String("")).string_value();
    if (phase == "M") continue;
    const laar::json::Value ts = event.GetOr("ts", laar::json::Value::Number(0.0));
    if (!ts.is_number()) continue;
    const double time = ts.number_value() / 1e6;
    if (phase == "C") {
      auto pid = event.GetOr("pid", laar::json::Value::Int(-1)).AsInt();
      const std::string name =
          event.GetOr("name", laar::json::Value::String("?")).string_value();
      const laar::json::Value args =
          event.GetOr("args", laar::json::Value::MakeObject());
      const laar::json::Value value = args.GetOr("value", laar::json::Value::Number(0.0));
      if (!value.is_number()) continue;
      series[laar::StrFormat("%s@pid%lld", name.c_str(),
                             static_cast<long long>(pid.ok() ? *pid : -1))][time] =
          value.number_value();
    }
    if (bucket_seconds > 0.0) {
      const std::string category =
          event.GetOr("cat", laar::json::Value::String("?")).string_value();
      const double bucket =
          static_cast<double>(static_cast<long long>(time / bucket_seconds)) *
          bucket_seconds;
      series["events:" + category][bucket] += 1.0;
    }
  }
  std::string out = "time_seconds,series,value\n";
  for (const auto& [name, samples] : series) {
    for (const auto& [time, value] : samples) {
      out += laar::StrFormat("%.9g,%s,%.9g\n", time, name.c_str(), value);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  laar::Flags flags(argc, argv);
  // Optional positional subcommand (the flags parser ignores non-`--` argv).
  std::string command = "summarize";
  if (argc > 1 && argv[1][0] != '-') command = argv[1];
  if (flags.Has("validate")) command = "validate";
  if (flags.Has("filter")) command = "filter";

  const auto usage = [] {
    std::fprintf(stderr,
                 "usage: laar_trace [summarize|validate|timeseries|explain] --in=run.json\n"
                 "       laar_trace filter --in=run.json --filter=cat1,cat2,...\n"
                 "                  --out=filtered.json\n"
                 "       laar_trace timeseries --in=run.json [--bucket=S]\n"
                 "                  [--out=series.csv]\n"
                 "       laar_trace explain --in=run.json [--out=forensics.json]\n"
                 "       laar_trace diff runA.json runB.json [--out=diff.json]\n"
                 "                  (or --a=runA.json --b=runB.json)\n");
    return 2;
  };

  if (command == "diff") {
    // The two run artifacts are positional (the flags parser ignores them).
    std::vector<std::string> inputs;
    for (int i = 2; i < argc; ++i) {
      if (argv[i][0] != '-') inputs.emplace_back(argv[i]);
    }
    if (flags.Has("a")) inputs.insert(inputs.begin(), flags.GetString("a", ""));
    if (flags.Has("b")) inputs.push_back(flags.GetString("b", ""));
    if (inputs.size() != 2) return usage();
    laar::json::Value runs[2];
    for (size_t i = 0; i < 2; ++i) {
      auto parsed = laar::json::ParseFile(inputs[i]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "cannot load %s: %s\n", inputs[i].c_str(),
                     parsed.status().ToString().c_str());
        return 1;
      }
      runs[i] = *std::move(parsed);
    }
    auto report = laar::obs::DiffRuns(runs[0], runs[1]);
    if (!report.ok()) {
      std::fprintf(stderr, "diff failed: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("A: %s\nB: %s\n%s", inputs[0].c_str(), inputs[1].c_str(),
                report->ToString().c_str());
    const std::string out_path = flags.GetString("out", "");
    if (!out_path.empty()) {
      const laar::Status status = laar::json::WriteFile(report->ToJson(), out_path);
      if (!status.ok()) {
        std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", out_path.c_str());
    }
    return 0;
  }

  const std::string in_path = flags.GetString("in", "");
  if (in_path.empty() || (command != "summarize" && command != "validate" &&
                          command != "filter" && command != "timeseries" &&
                          command != "explain")) {
    return usage();
  }

  auto trace = laar::json::ParseFile(in_path);
  if (!trace.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", in_path.c_str(),
                 trace.status().ToString().c_str());
    return 1;
  }

  if (command == "validate") {
    const laar::Status status = laar::obs::ValidateChromeTrace(*trace);
    if (!status.ok()) {
      std::fprintf(stderr, "INVALID: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("OK: %s is valid Chrome trace JSON\n", in_path.c_str());
    return 0;
  }

  if (command == "filter") {
    const std::string out_path = flags.GetString("out", "");
    if (out_path.empty()) {
      std::fprintf(stderr, "--filter requires --out=FILE\n");
      return 2;
    }
    uint32_t mask = 0;
    for (const std::string& name : laar::StrSplit(flags.GetString("filter", ""), ',')) {
      const uint32_t bit = laar::obs::CategoryBitFromName(name.c_str());
      if (bit == 0) {
        std::fprintf(stderr, "unknown trace category '%s'\n", name.c_str());
        return 2;
      }
      mask |= bit;
    }
    auto filtered = laar::obs::FilterChromeTrace(*trace, mask);
    if (!filtered.ok()) {
      std::fprintf(stderr, "filter failed: %s\n", filtered.status().ToString().c_str());
      return 1;
    }
    const laar::Status status = laar::json::WriteFile(*filtered, out_path);
    if (!status.ok()) {
      std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
  }

  if (command == "explain") {
    auto report = laar::obs::AnalyzeChromeTrace(*trace);
    if (!report.ok()) {
      std::fprintf(stderr, "explain failed: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", report->ToString().c_str());
    const std::string out_path = flags.GetString("out", "");
    if (!out_path.empty()) {
      const laar::Status status = laar::json::WriteFile(report->ToJson(), out_path);
      if (!status.ok()) {
        std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", out_path.c_str());
    }
    // A complete trace whose per-event losses disagree with its stamped
    // ledger is a bookkeeping bug somewhere — make it scriptable.
    if (!report->reconciled && report->trace_dropped_events == 0) {
      std::fprintf(stderr,
                   "RECONCILE FAILED: trace accounts for %llu crash-attributed "
                   "losses, ledger says %llu\n",
                   static_cast<unsigned long long>(report->attributed_lost +
                                                   report->unattributed_lost),
                   static_cast<unsigned long long>(report->ledger_crash_attributed));
      return 1;
    }
    return 0;
  }

  if (command == "timeseries") {
    const std::string csv =
        TimeSeriesCsvFromTrace(*trace, flags.GetDouble("bucket", 0.0));
    const std::string out_path = flags.GetString("out", "");
    if (out_path.empty()) {
      std::printf("%s", csv.c_str());
      return 0;
    }
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr || std::fwrite(csv.data(), 1, csv.size(), f) != csv.size() ||
        std::fclose(f) != 0) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      if (f != nullptr) std::fclose(f);
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
  }

  std::printf("%s", laar::obs::SummarizeChromeTrace(*trace).c_str());
  return 0;
}
