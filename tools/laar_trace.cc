// laar_trace — inspect and transform Chrome trace-event JSON produced by
// `laar_simulate --trace-out` (or the corpus runner's per-experiment
// traces).
//
// Usage:
//   laar_trace --in=run.json                     # summarize (default)
//   laar_trace --in=run.json --validate          # schema check, exit 0/1
//   laar_trace --in=run.json --filter=drops,failures --out=small.json
//
// Filtering keeps metadata records plus the events of the named categories
// ({drops, queues, activation, failures, config, spans, engine}) and writes
// the result — still valid Chrome trace JSON — to --out.

#include <cstdio>
#include <string>

#include "laar/common/flags.h"
#include "laar/common/strings.h"
#include "laar/json/json.h"
#include "laar/obs/chrome_trace.h"
#include "laar/obs/trace_event.h"

int main(int argc, char** argv) {
  laar::Flags flags(argc, argv);
  const std::string in_path = flags.GetString("in", "");
  if (in_path.empty()) {
    std::fprintf(stderr,
                 "usage: laar_trace --in=run.json [--validate]\n"
                 "       [--filter=cat1,cat2,... --out=filtered.json]\n");
    return 2;
  }

  auto trace = laar::json::ParseFile(in_path);
  if (!trace.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", in_path.c_str(),
                 trace.status().ToString().c_str());
    return 1;
  }

  if (flags.Has("validate")) {
    const laar::Status status = laar::obs::ValidateChromeTrace(*trace);
    if (!status.ok()) {
      std::fprintf(stderr, "INVALID: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("OK: %s is valid Chrome trace JSON\n", in_path.c_str());
    return 0;
  }

  if (flags.Has("filter")) {
    const std::string out_path = flags.GetString("out", "");
    if (out_path.empty()) {
      std::fprintf(stderr, "--filter requires --out=FILE\n");
      return 2;
    }
    uint32_t mask = 0;
    for (const std::string& name : laar::StrSplit(flags.GetString("filter", ""), ',')) {
      const uint32_t bit = laar::obs::CategoryBitFromName(name.c_str());
      if (bit == 0) {
        std::fprintf(stderr, "unknown trace category '%s'\n", name.c_str());
        return 2;
      }
      mask |= bit;
    }
    auto filtered = laar::obs::FilterChromeTrace(*trace, mask);
    if (!filtered.ok()) {
      std::fprintf(stderr, "filter failed: %s\n", filtered.status().ToString().c_str());
      return 1;
    }
    const laar::Status status = laar::json::WriteFile(*filtered, out_path);
    if (!status.ok()) {
      std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
  }

  std::printf("%s", laar::obs::SummarizeChromeTrace(*trace).c_str());
  return 0;
}
