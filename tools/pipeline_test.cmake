# End-to-end smoke test of the CLI workflow:
#   laar_generate -> laar_solve -> laar_simulate (normal + worst case)
#   -> laar_trace (summarize, validate, filter).
# Seed 6 with 12 PEs on 6 hosts is a known FT-Search-solvable instance at
# IC 0.6 (generation is deterministic, so this is stable).

set(APP ${WORKDIR}/pipeline_app.json)
set(STRATEGY ${WORKDIR}/pipeline_strategy.json)

execute_process(
  COMMAND ${GEN} --out=${APP} --pes=12 --hosts=6 --seed=6
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "laar_generate failed with ${rc}")
endif()

execute_process(
  COMMAND ${SOLVE} --app=${APP} --out=${STRATEGY} --ic=0.6 --hosts=6 --time-limit=10
          --progress
  ERROR_VARIABLE solve_err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "laar_solve failed with ${rc}")
endif()
if(NOT solve_err MATCHES "progress: t=.*nodes=")
  message(FATAL_ERROR "laar_solve --progress emitted no snapshots:\n${solve_err}")
endif()

execute_process(
  COMMAND ${SIM} --app=${APP} --strategy=${STRATEGY} --hosts=6 --trace-seconds=60
  OUTPUT_VARIABLE out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "laar_simulate failed with ${rc}")
endif()
if(NOT out MATCHES "tuples processed")
  message(FATAL_ERROR "laar_simulate output missing metrics:\n${out}")
endif()
if(out MATCHES "dropped \\(overflow\\)[ ]+0[^0-9]")
  message(STATUS "no drops in the best case, as expected")
endif()

execute_process(
  COMMAND ${SIM} --app=${APP} --strategy=${STRATEGY} --hosts=6 --trace-seconds=60
          --worst-case
  OUTPUT_VARIABLE worst_out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "laar_simulate --worst-case failed with ${rc}")
endif()

# Extract the processed counts and check worst <= best.
string(REGEX MATCH "tuples processed[ ]+([0-9]+)" _ ${out})
set(best ${CMAKE_MATCH_1})
string(REGEX MATCH "tuples processed[ ]+([0-9]+)" _ ${worst_out})
set(worst ${CMAKE_MATCH_1})
if(worst GREATER best)
  message(FATAL_ERROR "worst-case processed ${worst} > best-case ${best}")
endif()
message(STATUS "pipeline OK: best=${best} worst=${worst}")

# --- tracing leg: record a worst-case run, then summarize/validate/filter ---
set(TRACE_JSON ${WORKDIR}/pipeline_trace.json)
set(TRACE_FILTERED ${WORKDIR}/pipeline_trace_filtered.json)

execute_process(
  COMMAND ${SIM} --app=${APP} --strategy=${STRATEGY} --hosts=6 --trace-seconds=60
          --worst-case --trace-out=${TRACE_JSON}
  OUTPUT_VARIABLE trace_run_out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "laar_simulate --trace-out failed with ${rc}")
endif()
if(NOT trace_run_out MATCHES "summary: drops=")
  message(FATAL_ERROR "laar_simulate run summary missing:\n${trace_run_out}")
endif()
if(NOT EXISTS ${TRACE_JSON})
  message(FATAL_ERROR "laar_simulate did not write ${TRACE_JSON}")
endif()

execute_process(
  COMMAND ${TRACE} --in=${TRACE_JSON} --validate
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "laar_trace --validate rejected the trace with ${rc}")
endif()

execute_process(
  COMMAND ${TRACE} --in=${TRACE_JSON}
  OUTPUT_VARIABLE summary_out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "laar_trace summarize failed with ${rc}")
endif()
if(NOT summary_out MATCHES "events")
  message(FATAL_ERROR "laar_trace summary looks empty:\n${summary_out}")
endif()

execute_process(
  COMMAND ${TRACE} --in=${TRACE_JSON} --filter=failures,activation
          --out=${TRACE_FILTERED}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "laar_trace --filter failed with ${rc}")
endif()
execute_process(
  COMMAND ${TRACE} --in=${TRACE_FILTERED} --validate
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "filtered trace is not valid Chrome trace JSON (${rc})")
endif()
message(STATUS "trace pipeline OK")
