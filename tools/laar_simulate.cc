// laar_simulate — the on-line half of the LAAR workflow: replay an input
// trace against a deployed application under a replica activation strategy
// and report the §5.3 metrics.
//
// Usage:
//   laar_simulate --app=app.json --strategy=strategy.json
//                 [--hosts=12] [--capacity=1e9]
//                 [--trace-seconds=300] [--high-fraction=0.333] [--cycles=3]
//                 [--crash-host=H --crash-at=T --crash-duration=16]
//                 [--worst-case] [--placement=balanced|roundrobin]
//                 [--jobs=N]
//                 [--trace-out=run.json] [--trace-categories=drops,failures]
//                 [--trace-capacity=N]
//
// Under --worst-case or --crash-host a failure-free reference simulation
// also runs (in parallel with the failure scenario when --jobs > 1) and the
// report gains the measured completeness ratio against it.
//
// --trace-out records the run's structured events (drops, queue watermarks,
// activation switches, failures, config changes, processing spans) and
// writes them as Chrome trace-event JSON, openable in Perfetto or
// chrome://tracing. --trace-categories restricts recording to a
// comma-separated subset of {drops, queues, activation, failures, config,
// spans, engine}; --trace-capacity bounds the event ring (default 262144).

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>

#include "laar/common/flags.h"
#include "laar/dsps/stream_simulation.h"
#include "laar/exec/parallel.h"
#include "laar/model/descriptor.h"
#include "laar/obs/chrome_trace.h"
#include "laar/obs/metrics_registry.h"
#include "laar/obs/trace_recorder.h"
#include "laar/placement/placement_algorithms.h"
#include "laar/runtime/experiment.h"


int main(int argc, char** argv) {
  laar::Flags flags(argc, argv);
  const std::string app_path = flags.GetString("app", "");
  const std::string strategy_path = flags.GetString("strategy", "");
  if (app_path.empty() || strategy_path.empty()) {
    std::fprintf(stderr,
                 "usage: laar_simulate --app=app.json --strategy=strategy.json\n"
                 "       [--hosts=N] [--capacity=C] [--trace-seconds=S]\n"
                 "       [--high-fraction=F] [--cycles=N] [--worst-case]\n"
                 "       [--crash-host=H --crash-at=T --crash-duration=16]\n"
                 "       [--trace-out=run.json] [--trace-categories=a,b,...]\n"
                 "       [--trace-capacity=N]\n");
    return 2;
  }

  auto app = laar::model::ApplicationDescriptor::LoadFromFile(app_path);
  if (!app.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", app_path.c_str(),
                 app.status().ToString().c_str());
    return 1;
  }
  auto strategy = laar::strategy::ActivationStrategy::LoadFromFile(strategy_path);
  if (!strategy.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", strategy_path.c_str(),
                 strategy.status().ToString().c_str());
    return 1;
  }

  const laar::model::Cluster cluster = laar::model::Cluster::Homogeneous(
      flags.GetInt("hosts", 12), flags.GetDouble("capacity", 1e9));
  auto rates = laar::model::ExpectedRates::Compute(app->graph, app->input_space);
  if (!rates.ok()) {
    std::fprintf(stderr, "rate analysis failed: %s\n", rates.status().ToString().c_str());
    return 1;
  }
  const std::string placement_kind = flags.GetString("placement", "balanced");
  auto placement =
      placement_kind == "roundrobin"
          ? laar::placement::PlaceRoundRobin(app->graph, cluster, 2)
          : laar::placement::PlaceBalanced(app->graph, app->input_space, *rates, cluster,
                                           2);
  if (!placement.ok()) {
    std::fprintf(stderr, "placement failed: %s\n",
                 placement.status().ToString().c_str());
    return 1;
  }

  auto trace = laar::runtime::MakeExperimentTrace(
      app->input_space, flags.GetDouble("trace-seconds", 300.0),
      flags.GetDouble("high-fraction", 1.0 / 3.0), flags.GetInt("cycles", 3));
  if (!trace.ok()) {
    std::fprintf(stderr, "trace construction failed: %s\n",
                 trace.status().ToString().c_str());
    return 1;
  }

  laar::dsps::RuntimeOptions runtime;
  const std::string trace_out = flags.GetString("trace-out", "");
  std::optional<laar::obs::TraceRecorder> recorder;
  if (!trace_out.empty()) {
    laar::obs::TraceRecorder::Options trace_options;
    trace_options.capacity = static_cast<size_t>(
        flags.GetUint64("trace-capacity", trace_options.capacity));
    bool categories_ok = false;
    trace_options.categories = laar::obs::ParseCategoryList(
        flags.GetString("trace-categories", ""), &categories_ok);
    if (!categories_ok) {
      std::fprintf(stderr, "unknown name in --trace-categories\n");
      return 2;
    }
    recorder.emplace(trace_options);
    runtime.trace_recorder = &*recorder;
  }
  laar::dsps::StreamSimulation simulation(*app, cluster, *placement, *strategy, *trace,
                                          runtime);
  const bool has_failures = flags.Has("worst-case") || flags.Has("crash-host");
  if (flags.Has("worst-case")) {
    const auto survivors = laar::runtime::ChooseWorstCaseSurvivors(
        app->graph, app->input_space, *strategy);
    for (laar::model::ComponentId pe : app->graph.Pes()) {
      for (int r = 0; r < strategy->replication_factor(); ++r) {
        if (r != survivors[static_cast<size_t>(pe)]) {
          simulation.InjectPermanentReplicaFailure(pe, r).CheckOK();
        }
      }
    }
  }
  if (flags.Has("crash-host")) {
    const laar::Status status = simulation.ScheduleHostCrash(
        static_cast<laar::model::HostId>(flags.GetInt("crash-host", 0)),
        flags.GetDouble("crash-at", 10.0), flags.GetDouble("crash-duration", 16.0));
    if (!status.ok()) {
      std::fprintf(stderr, "crash injection failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // Failure scenarios also run a failure-free reference for the measured
  // completeness ratio; --jobs > 1 runs the two simulations concurrently.
  std::optional<laar::dsps::StreamSimulation> reference;
  if (has_failures) {
    // The recorder is single-writer and the two simulations may run
    // concurrently: only the failure scenario is traced.
    laar::dsps::RuntimeOptions reference_runtime = runtime;
    reference_runtime.trace_recorder = nullptr;
    reference.emplace(*app, cluster, *placement, *strategy, *trace, reference_runtime);
  }
  laar::Status status = laar::Status::OK();
  laar::Status reference_status = laar::Status::OK();
  const auto run_one = [&](size_t i) {
    if (i == 0) {
      status = simulation.Run();
    } else {
      reference_status = reference->Run();
    }
  };
  const size_t num_runs = reference.has_value() ? 2 : 1;
  const int jobs = laar::ResolveJobs(flags.GetInt("jobs", 1));
  if (jobs > 1 && num_runs > 1) {
    laar::ThreadPool pool(std::min(static_cast<size_t>(jobs), num_runs));
    pool.ParallelFor(num_runs, run_one);
  } else {
    for (size_t i = 0; i < num_runs; ++i) run_one(i);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (!reference_status.ok()) {
    std::fprintf(stderr, "reference simulation failed: %s\n",
                 reference_status.ToString().c_str());
    return 1;
  }

  const laar::dsps::SimulationMetrics& m = simulation.metrics();
  std::printf("duration            %10.1f s\n", m.duration);
  std::printf("source tuples       %10llu\n",
              static_cast<unsigned long long>(m.source_tuples));
  std::printf("sink tuples         %10llu\n",
              static_cast<unsigned long long>(m.sink_tuples));
  std::printf("dropped (overflow)  %10llu\n",
              static_cast<unsigned long long>(m.dropped_tuples));
  std::printf("tuples processed    %10llu\n",
              static_cast<unsigned long long>(m.TotalProcessed()));
  std::printf("CPU consumed        %10.2f core-s (at %.3g cycles/s)\n",
              m.TotalCpuCycles() / flags.GetDouble("capacity", 1e9),
              flags.GetDouble("capacity", 1e9));
  if (m.sink_latency.count() > 0) {
    std::printf("sink latency        p50=%.3fs p95=%.3fs p99=%.3fs max=%.3fs\n",
                m.sink_latency.Percentile(50), m.sink_latency.Percentile(95),
                m.sink_latency.Percentile(99), m.sink_latency.max());
  }
  if (reference.has_value()) {
    const laar::dsps::SimulationMetrics& ref = reference->metrics();
    std::printf("best-case processed %10llu\n",
                static_cast<unsigned long long>(ref.TotalProcessed()));
    if (ref.TotalProcessed() > 0) {
      std::printf("completeness        %10.4f (processed / best-case processed)\n",
                  static_cast<double>(m.TotalProcessed()) /
                      static_cast<double>(ref.TotalProcessed()));
    }
  }

  // One-line digest sourced from the metrics registry (the same canonical
  // keys the corpus reports publish).
  laar::obs::MetricsRegistry registry;
  laar::dsps::PublishTo(&registry, m);
  std::printf("summary: %s\n", laar::dsps::RunSummaryFromRegistry(registry).c_str());

  if (recorder.has_value()) {
    const laar::json::Value chrome = laar::obs::ToChromeTraceJson(*recorder);
    const laar::Status write_status = laar::json::WriteFile(chrome, trace_out);
    if (!write_status.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   write_status.ToString().c_str());
      return 1;
    }
    std::printf("trace: wrote %s (%llu events, %llu overwritten)\n", trace_out.c_str(),
                static_cast<unsigned long long>(recorder->size()),
                static_cast<unsigned long long>(recorder->overwritten()));
  }
  return 0;
}
