// laar_simulate — the on-line half of the LAAR workflow: replay an input
// trace against a deployed application under a replica activation strategy
// and report the §5.3 metrics.
//
// Usage:
//   laar_simulate --app=app.json --strategy=strategy.json
//                 [--hosts=12] [--capacity=1e9]
//                 [--trace-seconds=300] [--high-fraction=0.333] [--cycles=3]
//                 [--crash-host=H --crash-at=T --crash-duration=16]
//                 [--hosts-per-rack=N] [--racks-per-zone=N]
//                 [--fail-domain=rack:R|zone:Z] [--crash-schedule=H@T+D,...]
//                 [--worst-case] [--placement=balanced|roundrobin|domain]
//                 [--jobs=N] [--shards=N] [--link-latency=S]
//                 [--trace-out=run.json] [--trace-categories=drops,failures]
//                 [--trace-capacity=N]
//                 [--latency-sample-rate=0.01] [--latency-seed=1]
//                 [--metrics-out=metrics.json]
//                 [--timeseries-out=ts.csv|ts.json] [--telemetry-period=1]
//                 [--health-out=health.json] [--alerts="RULE;RULE;..."]
//                 [--slo-latency-p99=S] [--slo-drop-rate=R]
//
// Under --worst-case, --crash-host, --fail-domain, or --crash-schedule a
// failure-free reference simulation also runs (in parallel with the failure
// scenario when --jobs > 1) and the report gains the measured completeness
// ratio against it.
//
// --hosts-per-rack / --racks-per-zone give the cluster a uniform failure
// topology; --fail-domain=rack:R (or zone:Z) then crashes every host of
// that domain at --crash-at for --crash-duration, and --placement=domain
// spreads each PE's replicas across distinct racks. --crash-schedule
// injects an explicit list of host crashes `H@T+D` (host H down from T for
// D seconds); overlapping windows on one host merge into a single outage.
//
// --trace-out records the run's structured events (drops, queue watermarks,
// activation switches, failures, config changes, processing spans) and
// writes them as Chrome trace-event JSON, openable in Perfetto or
// chrome://tracing. --trace-categories restricts recording to a
// comma-separated subset of {drops, queues, activation, failures, config,
// spans, engine, tuples, health}; --trace-capacity bounds the event ring
// (default 262144).
//
// --link-latency=S switches tuple delivery to the conservative-window
// engine (DESIGN.md §10): every cross-host transfer takes between one and
// two link latencies, and --shards=N partitions the hosts over N event
// engines that run on N threads. At a fixed --link-latency the shard count
// never changes any output byte — it only changes wall-clock time — which
// is why --shards > 1 demands an explicit --link-latency rather than
// defaulting one (a default would silently switch engines between
// --shards=1 and --shards=2). Incompatible with --latency-sample-rate (the
// per-tuple causal tracer is a synchronous-engine feature).
//
// --latency-sample-rate traces that fraction of each source's tuples through
// every queue, operator, and replica proxy, and prints a per-operator
// queueing-vs-processing p50/p95/p99 table plus per-path end-to-end
// percentiles. Sampled span trees are merged into --trace-out.
//
// --timeseries-out samples per-host CPU utilization, per-operator queue
// depth, and source/output/drop rates every --telemetry-period sim-seconds,
// written as CSV (path ending .csv) or JSON. --metrics-out dumps the entire
// metrics registry as JSON.
//
// --health-out evaluates declarative alert rules over the recorded series
// (see --alerts for the rule grammar; --slo-latency-p99/--slo-drop-rate add
// the two common SLO rules) and writes a machine-readable health report.
// The process exits 3 when a critical rule fired — "SLO met" becomes a
// scriptable exit code.

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "laar/common/flags.h"
#include "laar/common/strings.h"
#include "laar/dsps/stream_simulation.h"
#include "laar/exec/parallel.h"
#include "laar/model/descriptor.h"
#include "laar/obs/chrome_trace.h"
#include "laar/obs/health.h"
#include "laar/obs/latency_tracer.h"
#include "laar/obs/loss_ledger.h"
#include "laar/obs/metrics_registry.h"
#include "laar/obs/run_info.h"
#include "laar/obs/trace_recorder.h"
#include "laar/placement/placement_algorithms.h"
#include "laar/runtime/experiment.h"


int main(int argc, char** argv) {
  laar::Flags flags(argc, argv);
  const std::string app_path = flags.GetString("app", "");
  const std::string strategy_path = flags.GetString("strategy", "");
  if (app_path.empty() || strategy_path.empty()) {
    std::fprintf(stderr,
                 "usage: laar_simulate --app=app.json --strategy=strategy.json\n"
                 "       [--hosts=N] [--capacity=C] [--trace-seconds=S]\n"
                 "       [--high-fraction=F] [--cycles=N] [--worst-case]\n"
                 "       [--crash-host=H --crash-at=T --crash-duration=16]\n"
                 "       [--hosts-per-rack=N] [--racks-per-zone=N]\n"
                 "       [--fail-domain=rack:R|zone:Z] [--crash-schedule=H@T+D,...]\n"
                 "       [--placement=balanced|roundrobin|domain]\n"
                 "       [--jobs=N] [--shards=N] [--link-latency=S]\n"
                 "       [--trace-out=run.json] [--trace-categories=a,b,...]\n"
                 "       [--trace-capacity=N]\n"
                 "       [--latency-sample-rate=R] [--latency-seed=S]\n"
                 "       [--metrics-out=metrics.json]\n"
                 "       [--timeseries-out=ts.csv|ts.json] [--telemetry-period=S]\n"
                 "       [--health-out=health.json] [--alerts='RULE;RULE']\n"
                 "       [--slo-latency-p99=S] [--slo-drop-rate=R]\n");
    return 2;
  }

  auto app = laar::model::ApplicationDescriptor::LoadFromFile(app_path);
  if (!app.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", app_path.c_str(),
                 app.status().ToString().c_str());
    return 1;
  }
  auto strategy = laar::strategy::ActivationStrategy::LoadFromFile(strategy_path);
  if (!strategy.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", strategy_path.c_str(),
                 strategy.status().ToString().c_str());
    return 1;
  }

  laar::model::Cluster cluster = laar::model::Cluster::Homogeneous(
      flags.GetInt("hosts", 12), flags.GetDouble("capacity", 1e9));
  const int hosts_per_rack = flags.GetInt("hosts-per-rack", 0);
  const int racks_per_zone = flags.GetInt("racks-per-zone", 0);
  if (hosts_per_rack > 0 || racks_per_zone > 0) {
    cluster.set_topology(laar::model::FailureTopology::Uniform(
        cluster.num_hosts(), hosts_per_rack, racks_per_zone));
  }
  auto rates = laar::model::ExpectedRates::Compute(app->graph, app->input_space);
  if (!rates.ok()) {
    std::fprintf(stderr, "rate analysis failed: %s\n", rates.status().ToString().c_str());
    return 1;
  }
  const std::string placement_kind = flags.GetString("placement", "balanced");
  auto placement =
      placement_kind == "roundrobin"
          ? laar::placement::PlaceRoundRobin(app->graph, cluster, 2)
      : placement_kind == "domain"
          ? laar::placement::PlaceDomainSpread(app->graph, app->input_space, *rates,
                                               cluster, 2,
                                               laar::model::DomainLevel::kRack)
          : laar::placement::PlaceBalanced(app->graph, app->input_space, *rates, cluster,
                                           2);
  if (!placement.ok()) {
    std::fprintf(stderr, "placement failed: %s\n",
                 placement.status().ToString().c_str());
    return 1;
  }

  auto trace = laar::runtime::MakeExperimentTrace(
      app->input_space, flags.GetDouble("trace-seconds", 300.0),
      flags.GetDouble("high-fraction", 1.0 / 3.0), flags.GetInt("cycles", 3));
  if (!trace.ok()) {
    std::fprintf(stderr, "trace construction failed: %s\n",
                 trace.status().ToString().c_str());
    return 1;
  }

  laar::dsps::RuntimeOptions runtime;
  runtime.shards = flags.GetInt("shards", 1);
  runtime.link_latency_seconds = flags.GetDouble("link-latency", 0.0);
  if (runtime.shards > 1 && runtime.link_latency_seconds <= 0.0) {
    // A default here would silently change delivery semantics between
    // --shards=1 (synchronous engine) and --shards=2 (windowed engine),
    // making the two runs incomparable. The latency is the physical
    // parameter; the shard count is only a wall-clock knob under it.
    std::fprintf(stderr,
                 "--shards=%d requires an explicit --link-latency: the shard "
                 "count is byte-identical only at a fixed link latency "
                 "(try --link-latency=0.005)\n",
                 runtime.shards);
    return 2;
  }
  const std::string trace_out = flags.GetString("trace-out", "");
  std::optional<laar::obs::TraceRecorder> recorder;
  if (!trace_out.empty()) {
    laar::obs::TraceRecorder::Options trace_options;
    trace_options.capacity = static_cast<size_t>(
        flags.GetUint64("trace-capacity", trace_options.capacity));
    bool categories_ok = false;
    trace_options.categories = laar::obs::ParseCategoryList(
        flags.GetString("trace-categories", ""), &categories_ok);
    if (!categories_ok) {
      std::fprintf(stderr, "unknown name in --trace-categories\n");
      return 2;
    }
    recorder.emplace(trace_options);
    runtime.trace_recorder = &*recorder;
  }

  // Everything this run measures lands in one registry: the canonical sim_*
  // aggregates, the trace_* latency percentiles, and the ts_* telemetry
  // series the health rules range over.
  laar::obs::MetricsRegistry registry;
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string timeseries_out = flags.GetString("timeseries-out", "");
  const std::string health_out = flags.GetString("health-out", "");
  const bool want_health = !health_out.empty() || flags.Has("alerts") ||
                           flags.Has("slo-latency-p99") || flags.Has("slo-drop-rate");
  if (!timeseries_out.empty() || !metrics_out.empty() || want_health) {
    runtime.telemetry = &registry;
    runtime.telemetry_period_seconds = flags.GetDouble("telemetry-period", 1.0);
  }
  std::optional<laar::obs::LatencyTracer> tracer;
  const double sample_rate = flags.GetDouble("latency-sample-rate", 0.0);
  if (sample_rate > 0.0 && runtime.link_latency_seconds > 0.0) {
    std::fprintf(stderr,
                 "--latency-sample-rate is incompatible with --link-latency/"
                 "--shards: the causal tracer requires the synchronous engine\n");
    return 2;
  }
  if (sample_rate > 0.0) {
    laar::obs::LatencyTracer::Options tracer_options;
    tracer_options.sample_rate = sample_rate;
    tracer_options.seed = flags.GetUint64("latency-seed", 1);
    tracer.emplace(tracer_options);
    runtime.latency_tracer = &*tracer;
  }
  laar::dsps::StreamSimulation simulation(*app, cluster, *placement, *strategy, *trace,
                                          runtime);
  const bool has_failures = flags.Has("worst-case") || flags.Has("crash-host") ||
                            flags.Has("fail-domain") || flags.Has("crash-schedule");
  if (flags.Has("worst-case")) {
    const auto survivors = laar::runtime::ChooseWorstCaseSurvivors(
        app->graph, app->input_space, *strategy);
    for (laar::model::ComponentId pe : app->graph.Pes()) {
      for (int r = 0; r < strategy->replication_factor(); ++r) {
        if (r != survivors[static_cast<size_t>(pe)]) {
          simulation.InjectPermanentReplicaFailure(pe, r).CheckOK();
        }
      }
    }
  }
  if (flags.Has("crash-host")) {
    const laar::Status status = simulation.ScheduleHostCrash(
        static_cast<laar::model::HostId>(flags.GetInt("crash-host", 0)),
        flags.GetDouble("crash-at", 10.0), flags.GetDouble("crash-duration", 16.0));
    if (!status.ok()) {
      std::fprintf(stderr, "crash injection failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (flags.Has("fail-domain")) {
    // "rack:R", "zone:Z", or a bare rack id.
    const std::string spec = flags.GetString("fail-domain", "0");
    laar::model::DomainLevel level = laar::model::DomainLevel::kRack;
    std::string id_part = spec;
    if (spec.rfind("rack:", 0) == 0) {
      id_part = spec.substr(5);
    } else if (spec.rfind("zone:", 0) == 0) {
      level = laar::model::DomainLevel::kZone;
      id_part = spec.substr(5);
    }
    int domain = -1;
    if (std::sscanf(id_part.c_str(), "%d", &domain) != 1) {
      std::fprintf(stderr, "cannot parse --fail-domain=%s\n", spec.c_str());
      return 2;
    }
    const std::vector<laar::model::HostId> hosts =
        cluster.topology().HostsInDomain(level, domain);
    if (hosts.empty()) {
      std::fprintf(stderr, "--fail-domain: %s %d has no hosts (topology has %d)\n",
                   laar::model::DomainLevelName(level), domain,
                   cluster.topology().NumDomains(level));
      return 2;
    }
    for (const laar::model::HostId host : hosts) {
      const laar::Status status = simulation.ScheduleHostCrash(
          host, flags.GetDouble("crash-at", 10.0),
          flags.GetDouble("crash-duration", 16.0));
      if (!status.ok()) {
        std::fprintf(stderr, "crash injection failed: %s\n", status.ToString().c_str());
        return 1;
      }
    }
    std::printf("fail-domain: %s %d -> hosts", laar::model::DomainLevelName(level),
                domain);
    for (const laar::model::HostId host : hosts) std::printf(" %d", host);
    std::printf("\n");
  }
  if (flags.Has("crash-schedule")) {
    // Comma-separated `H@T+D` entries; overlapping windows are legal and
    // merge inside the simulation.
    const std::string schedule = flags.GetString("crash-schedule", "");
    size_t begin = 0;
    while (begin < schedule.size()) {
      size_t end = schedule.find(',', begin);
      if (end == std::string::npos) end = schedule.size();
      const std::string entry = schedule.substr(begin, end - begin);
      int host = -1;
      double at = 0.0, duration = 0.0;
      if (std::sscanf(entry.c_str(), "%d@%lf+%lf", &host, &at, &duration) != 3) {
        std::fprintf(stderr, "cannot parse --crash-schedule entry '%s' (want H@T+D)\n",
                     entry.c_str());
        return 2;
      }
      const laar::Status status = simulation.ScheduleHostCrash(
          static_cast<laar::model::HostId>(host), at, duration);
      if (!status.ok()) {
        std::fprintf(stderr, "crash injection failed: %s\n", status.ToString().c_str());
        return 1;
      }
      begin = end + 1;
    }
  }

  // Failure scenarios also run a failure-free reference for the measured
  // completeness ratio; --jobs > 1 runs the two simulations concurrently.
  std::optional<laar::dsps::StreamSimulation> reference;
  if (has_failures) {
    // The recorder, tracer, and telemetry series are single-writer and the
    // two simulations may run concurrently: only the failure scenario is
    // observed.
    laar::dsps::RuntimeOptions reference_runtime = runtime;
    reference_runtime.trace_recorder = nullptr;
    reference_runtime.latency_tracer = nullptr;
    reference_runtime.telemetry = nullptr;
    reference.emplace(*app, cluster, *placement, *strategy, *trace, reference_runtime);
  }
  laar::Status status = laar::Status::OK();
  laar::Status reference_status = laar::Status::OK();
  const auto run_one = [&](size_t i) {
    if (i == 0) {
      status = simulation.Run();
    } else {
      reference_status = reference->Run();
    }
  };
  const size_t num_runs = reference.has_value() ? 2 : 1;
  const int jobs = laar::ResolveJobs(flags.GetInt("jobs", 1));
  if (jobs > 1 && num_runs > 1) {
    laar::ThreadPool pool(std::min(static_cast<size_t>(jobs), num_runs));
    pool.ParallelFor(num_runs, run_one);
  } else {
    for (size_t i = 0; i < num_runs; ++i) run_one(i);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (!reference_status.ok()) {
    std::fprintf(stderr, "reference simulation failed: %s\n",
                 reference_status.ToString().c_str());
    return 1;
  }

  const laar::dsps::SimulationMetrics& m = simulation.metrics();
  std::printf("duration            %10.1f s\n", m.duration);
  std::printf("source tuples       %10llu\n",
              static_cast<unsigned long long>(m.source_tuples));
  std::printf("sink tuples         %10llu\n",
              static_cast<unsigned long long>(m.sink_tuples));
  std::printf("dropped (overflow)  %10llu\n",
              static_cast<unsigned long long>(m.dropped_tuples));
  // Failure-caused losses get a provenance breakdown; failure-free runs
  // keep the historical report shape.
  if (m.crash_lost_tuples + m.resync_lost_tuples + m.orphaned_tuples > 0) {
    std::printf("lost (all causes)   %10llu\n",
                static_cast<unsigned long long>(m.LostTuples()));
    std::printf("%s", m.losses.ToString().c_str());
  }
  std::printf("tuples processed    %10llu\n",
              static_cast<unsigned long long>(m.TotalProcessed()));
  std::printf("CPU consumed        %10.2f core-s (at %.3g cycles/s)\n",
              m.TotalCpuCycles() / flags.GetDouble("capacity", 1e9),
              flags.GetDouble("capacity", 1e9));
  if (m.sink_latency.count() > 0) {
    std::printf("sink latency        p50=%.3fs p95=%.3fs p99=%.3fs max=%.3fs\n",
                m.sink_latency.Percentile(50), m.sink_latency.Percentile(95),
                m.sink_latency.Percentile(99), m.sink_latency.max());
  }
  if (reference.has_value()) {
    const laar::dsps::SimulationMetrics& ref = reference->metrics();
    std::printf("best-case processed %10llu\n",
                static_cast<unsigned long long>(ref.TotalProcessed()));
    if (ref.TotalProcessed() > 0) {
      std::printf("completeness        %10.4f (processed / best-case processed)\n",
                  static_cast<double>(m.TotalProcessed()) /
                      static_cast<double>(ref.TotalProcessed()));
    }
  }

  // One-line digest sourced from the metrics registry (the same canonical
  // keys the corpus reports publish).
  laar::dsps::PublishTo(&registry, m);
  if (tracer.has_value()) {
    const laar::obs::LatencyBreakdown breakdown = tracer->Breakdown();
    std::printf("%s", breakdown.ToString().c_str());
    laar::obs::PublishBreakdown(&registry, breakdown);
  }
  std::printf("summary: %s\n", laar::dsps::RunSummaryFromRegistry(registry).c_str());

  // Every JSON artifact below carries the same build/run stamp so that
  // `laar_trace diff` can tell comparable runs from incomparable ones.
  // The capture strips `--jobs` and output paths, keeping artifacts
  // byte-identical across parallelism and output locations.
  const laar::obs::RunInfo run_info = laar::obs::RunInfo::Capture(
      "laar_simulate", flags.GetUint64("latency-seed", 1), argc, argv);

  if (!metrics_out.empty()) {
    laar::obs::PublishLossLedger(&registry, m.losses);
    laar::json::Value metrics_doc = registry.ToJson();
    metrics_doc.Set("loss_ledger", m.losses.ToJson());
    metrics_doc.Set("run_info", run_info.ToJson());
    const laar::Status write_status = laar::json::WriteFile(metrics_doc, metrics_out);
    if (!write_status.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n", write_status.ToString().c_str());
      return 1;
    }
    std::printf("metrics: wrote %s\n", metrics_out.c_str());
  }
  if (!timeseries_out.empty()) {
    laar::Status write_status = laar::Status::OK();
    if (laar::EndsWith(timeseries_out, ".csv")) {
      const std::string csv = laar::obs::TimeSeriesCsv(registry);
      std::FILE* f = std::fopen(timeseries_out.c_str(), "w");
      if (f == nullptr ||
          std::fwrite(csv.data(), 1, csv.size(), f) != csv.size() ||
          std::fclose(f) != 0) {
        write_status = laar::Status::IoError("cannot write " + timeseries_out);
        if (f != nullptr) std::fclose(f);
      }
    } else {
      write_status = laar::json::WriteFile(laar::obs::TimeSeriesJson(registry),
                                           timeseries_out);
    }
    if (!write_status.ok()) {
      std::fprintf(stderr, "timeseries write failed: %s\n",
                   write_status.ToString().c_str());
      return 1;
    }
    std::printf("timeseries: wrote %s\n", timeseries_out.c_str());
  }

  bool healthy = true;
  if (want_health) {
    std::vector<laar::obs::AlertRule> rules;
    auto parsed = laar::obs::ParseAlertRules(flags.GetString("alerts", ""));
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    rules = std::move(parsed).value();
    if (flags.Has("slo-latency-p99")) {
      auto slo = laar::obs::ParseAlertRule(
          laar::StrFormat("slo_latency_p99: sim_sink_latency_p99_seconds > %.17g crit",
                          flags.GetDouble("slo-latency-p99", 1.0)));
      rules.push_back(std::move(slo).value());
    }
    if (flags.Has("slo-drop-rate")) {
      auto slo = laar::obs::ParseAlertRule(
          laar::StrFormat("slo_drop_rate: ts_drop_rate > %.17g crit",
                          flags.GetDouble("slo-drop-rate", 0.0)));
      rules.push_back(std::move(slo).value());
    }
    if (rules.empty()) {
      // Default watchdogs so --health-out alone yields a useful report:
      // any drops, or a host pinned near saturation, are worth a warning.
      rules.push_back(
          laar::obs::ParseAlertRule("drops: ts_drop_rate > 0 warn").value());
      rules.push_back(
          laar::obs::ParseAlertRule("saturation: ts_host_cpu_util > 0.99 for 5 warn")
              .value());
    }
    const laar::obs::HealthReport report = laar::obs::EvaluateHealth(registry, rules);
    healthy = report.healthy;
    std::printf("%s", report.ToString().c_str());
    if (recorder.has_value()) laar::obs::EmitAlertEvents(&*recorder, report);
    if (!health_out.empty()) {
      laar::json::Value health_doc = report.ToJson();
      health_doc.Set("run_info", run_info.ToJson());
      const laar::Status write_status = laar::json::WriteFile(health_doc, health_out);
      if (!write_status.ok()) {
        std::fprintf(stderr, "health write failed: %s\n",
                     write_status.ToString().c_str());
        return 1;
      }
      std::printf("health: wrote %s\n", health_out.c_str());
    }
  }

  if (recorder.has_value()) {
    laar::json::Value chrome = laar::obs::ToChromeTraceJson(
        *recorder, tracer.has_value() ? &*tracer : nullptr);
    // The trace carries the ledger and the run stamp as extra top-level
    // keys (the Chrome format tolerates unknown keys), so `laar_trace
    // explain` can reconcile its incident losses against the ledger.
    chrome.Set("laarLossLedger", m.losses.ToJson());
    chrome.Set("laarRunInfo", run_info.ToJson());
    const laar::Status write_status = laar::json::WriteFile(chrome, trace_out);
    if (!write_status.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   write_status.ToString().c_str());
      return 1;
    }
    std::printf("trace: wrote %s (%llu events, %llu overwritten)\n", trace_out.c_str(),
                static_cast<unsigned long long>(recorder->size()),
                static_cast<unsigned long long>(recorder->overwritten()));
  }
  return healthy ? 0 : 3;
}
