// laar_solve — the off-line half of the LAAR workflow (Fig. 7): run
// FT-Search on an application descriptor and write the replica activation
// strategy the HAController consumes at runtime.
//
// Usage:
//   laar_solve --app=app.json --out=strategy.json --ic=0.7
//              [--hosts=12] [--capacity=1e9] [--time-limit=600]
//              [--threads=1] [--placement=balanced|roundrobin|domain]
//              [--hosts-per-rack=N] [--racks-per-zone=N]
//              [--progress[=NODES]]
//
// --hosts-per-rack / --racks-per-zone give the cluster the same uniform
// failure topology laar_simulate builds from these flags, and
// --placement=domain spreads each PE's replicas across distinct racks —
// solve with the identical flags you will simulate with, or the strategy
// is computed for a different deployment than the one it runs on.
//
// --progress streams live search snapshots (nodes explored, incumbent cost,
// per-rule prune counts) to stderr, roughly every NODES explored nodes
// (default 65536). The stream is observational: it never changes the result.

#include <cstdio>
#include <string>

#include "laar/common/flags.h"
#include "laar/ftsearch/ft_search.h"
#include "laar/metrics/cost.h"
#include "laar/model/descriptor.h"
#include "laar/placement/placement_algorithms.h"
#include "laar/strategy/describe.h"

int main(int argc, char** argv) {
  laar::Flags flags(argc, argv);
  const std::string app_path = flags.GetString("app", "");
  const std::string out_path = flags.GetString("out", "");
  if (app_path.empty() || out_path.empty()) {
    std::fprintf(stderr,
                 "usage: laar_solve --app=app.json --out=strategy.json --ic=0.7\n"
                 "       [--hosts=N] [--capacity=CYCLES_PER_SEC] [--time-limit=SECONDS]\n"
                 "       [--threads=N] [--placement=balanced|roundrobin|domain]\n"
                 "       [--hosts-per-rack=N] [--racks-per-zone=N]\n"
                 "       [--progress[=NODES]]\n");
    return 2;
  }

  auto app = laar::model::ApplicationDescriptor::LoadFromFile(app_path);
  if (!app.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", app_path.c_str(),
                 app.status().ToString().c_str());
    return 1;
  }

  laar::model::Cluster cluster = laar::model::Cluster::Homogeneous(
      flags.GetInt("hosts", 12), flags.GetDouble("capacity", 1e9));
  const int hosts_per_rack = flags.GetInt("hosts-per-rack", 0);
  const int racks_per_zone = flags.GetInt("racks-per-zone", 0);
  if (hosts_per_rack > 0 || racks_per_zone > 0) {
    cluster.set_topology(laar::model::FailureTopology::Uniform(
        cluster.num_hosts(), hosts_per_rack, racks_per_zone));
  }
  auto rates = laar::model::ExpectedRates::Compute(app->graph, app->input_space);
  if (!rates.ok()) {
    std::fprintf(stderr, "rate analysis failed: %s\n", rates.status().ToString().c_str());
    return 1;
  }

  const std::string placement_kind = flags.GetString("placement", "balanced");
  auto placement =
      placement_kind == "roundrobin"
          ? laar::placement::PlaceRoundRobin(app->graph, cluster, 2)
      : placement_kind == "domain"
          ? laar::placement::PlaceDomainSpread(app->graph, app->input_space, *rates,
                                               cluster, 2,
                                               laar::model::DomainLevel::kRack)
          : laar::placement::PlaceBalanced(app->graph, app->input_space, *rates, cluster,
                                           2);
  if (!placement.ok()) {
    std::fprintf(stderr, "placement failed: %s\n",
                 placement.status().ToString().c_str());
    return 1;
  }

  laar::ftsearch::FtSearchOptions options;
  options.ic_requirement = flags.GetDouble("ic", 0.7);
  options.time_limit_seconds = flags.GetDouble("time-limit", 600.0);
  options.num_threads = flags.GetInt("threads", 1);
  if (flags.Has("progress")) {
    const uint64_t interval = flags.GetUint64("progress", 1);
    if (interval > 1) options.progress_interval_nodes = interval;
    options.progress = [](const laar::ftsearch::FtSearchProgress& progress) {
      std::fprintf(stderr, "progress: %s\n", progress.ToString().c_str());
    };
  }
  auto result = laar::ftsearch::RunFtSearch(app->graph, app->input_space, *rates,
                                            *placement, cluster, options);
  if (!result.ok()) {
    std::fprintf(stderr, "FT-Search failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("FT-Search: %s\n", result->ToString().c_str());
  if (!result->strategy.has_value()) {
    std::fprintf(stderr, "no feasible strategy (outcome %s)\n",
                 laar::ftsearch::SearchOutcomeName(result->outcome));
    return 3;
  }

  const laar::Status status = result->strategy->SaveToFile(out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: IC >= %.4f at %.4g cycles/s (%s)\n", out_path.c_str(),
              result->best_ic, result->best_cost,
              laar::ftsearch::SearchOutcomeName(result->outcome));
  std::printf("%s", laar::strategy::Describe(app->graph, app->input_space,
                                             *result->strategy)
                        .c_str());
  return 0;
}
