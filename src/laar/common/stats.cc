#include "laar/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace laar {

std::string BoxPlot::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.4f [min=%.4f lo=%.4f p25=%.4f med=%.4f p75=%.4f hi=%.4f "
                "max=%.4f] outliers=%zu",
                count, mean, min, whisker_low, p25, median, p75, whisker_high, max,
                outliers.size());
  return buf;
}

void SampleStats::Add(double value) {
  samples_.push_back(value);
  sorted_valid_ = false;
  sum_ += value;
  sum_sq_ += value * value;
}

void SampleStats::AddAll(const std::vector<double>& values) {
  for (double v : values) Add(v);
}

double SampleStats::mean() const { return samples_.empty() ? 0.0 : sum_ / samples_.size(); }

double SampleStats::variance() const {
  const size_t n = samples_.size();
  if (n < 2) return 0.0;
  const double m = mean();
  // Two-pass form for numerical stability.
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return acc / static_cast<double>(n - 1);
}

double SampleStats::stddev() const { return std::sqrt(variance()); }

double SampleStats::min() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double SampleStats::max() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double SampleStats::Percentile(double q) const {
  EnsureSorted();
  if (sorted_.empty()) return 0.0;
  if (sorted_.size() == 1) return sorted_.front();
  // `!(q > 0.0)` rather than `q <= 0.0`: a NaN `q` fails both orderings, and
  // letting it reach the interpolation below would make the
  // `static_cast<size_t>` undefined.
  if (!(q > 0.0)) return sorted_.front();
  if (q >= 100.0) return sorted_.back();
  const double pos = q / 100.0 * static_cast<double>(sorted_.size() - 1);
  const size_t idx = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[idx] * (1.0 - frac) + sorted_[idx + 1] * frac;
}

BoxPlot SampleStats::Summarize() const {
  BoxPlot box;
  box.count = samples_.size();
  if (samples_.empty()) return box;
  EnsureSorted();
  box.min = sorted_.front();
  box.max = sorted_.back();
  box.mean = mean();
  box.p25 = Percentile(25.0);
  box.median = Percentile(50.0);
  box.p75 = Percentile(75.0);
  const double iqr = box.p75 - box.p25;
  const double fence_low = box.p25 - 1.5 * iqr;
  const double fence_high = box.p75 + 1.5 * iqr;
  box.whisker_low = box.max;
  box.whisker_high = box.min;
  for (double v : sorted_) {
    if (v >= fence_low && v < box.whisker_low) box.whisker_low = v;
    if (v <= fence_high && v > box.whisker_high) box.whisker_high = v;
    if (v < fence_low || v > fence_high) box.outliers.push_back(v);
  }
  return box;
}

void SampleStats::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_(0.0), counts_(bins == 0 ? 1 : bins, 0) {
  // A non-increasing range would produce a non-positive bin width and
  // negative bin indices in Add; degrade to a single catch-all bin.
  if (!(hi > lo)) {
    hi_ = lo_;
    counts_.assign(1, 0);
    return;
  }
  width_ = (hi - lo) / static_cast<double>(counts_.size());
}

Histogram Histogram::FromCounts(double lo, double hi, const std::vector<size_t>& counts,
                                size_t underflow, size_t overflow) {
  Histogram hist(lo, hi, counts.size());
  // The constructor may have collapsed a degenerate range to one bin; only
  // install the counts when the shapes still agree.
  if (hist.counts_.size() == counts.size()) {
    hist.counts_ = counts;
  }
  hist.underflow_ = underflow;
  hist.overflow_ = overflow;
  hist.total_ = underflow + overflow;
  for (size_t c : hist.counts_) hist.total_ += c;
  return hist;
}

void Histogram::Add(double value) {
  ++total_;
  if (width_ <= 0.0) {  // degenerate range: everything lands in the one bin
    ++counts_[0];
    return;
  }
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  size_t bin = static_cast<size_t>((value - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // guard float edge
  ++counts_[bin];
}

double Histogram::BinLo(size_t bin) const { return lo_ + width_ * static_cast<double>(bin); }

double Histogram::BinHi(size_t bin) const { return lo_ + width_ * static_cast<double>(bin + 1); }

std::string Histogram::ToString(size_t max_width) const {
  size_t peak = 1;
  for (size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (size_t i = 0; i < counts_.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof(label), "[%7.3f, %7.3f) %6zu ", BinLo(i), BinHi(i), counts_[i]);
    os << label;
    const size_t bar = counts_[i] * max_width / peak;
    for (size_t j = 0; j < bar; ++j) os << '#';
    os << '\n';
  }
  if (underflow_ > 0) os << "underflow: " << underflow_ << '\n';
  if (overflow_ > 0) os << "overflow: " << overflow_ << '\n';
  return os.str();
}

}  // namespace laar
