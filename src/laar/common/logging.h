#ifndef LAAR_COMMON_LOGGING_H_
#define LAAR_COMMON_LOGGING_H_

#include <sstream>

namespace laar {

/// Severity levels for the library logger, lowest to highest.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide minimum severity; messages below it are discarded.
/// Defaults to `kWarning` so library internals stay quiet in tests/benches.
/// The `LAAR_LOG_LEVEL` environment variable, when set at process startup,
/// overrides the default (see `ParseLogLevel` for the accepted spellings).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a log-level spelling: a name ("debug", "info", "warning",
/// "error", "off"; case-insensitive) or its numeric value ("0".."4").
/// Returns false (leaving `*level` untouched) for anything else.
bool ParseLogLevel(const char* text, LogLevel* level);

/// Applies `LAAR_LOG_LEVEL` from the environment, if set and parseable.
/// Runs automatically at startup; exposed for tests.
void InitLogLevelFromEnv();

namespace internal_logging {

/// Accumulates one log line and emits it to stderr on destruction if the
/// message severity passes the process-wide threshold.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Streams a log line at the given severity, e.g.
/// `LAAR_LOG(Info) << "placed " << n << " replicas";`
#define LAAR_LOG(level) \
  ::laar::internal_logging::LogMessage(::laar::LogLevel::k##level, __FILE__, __LINE__)

}  // namespace laar

#endif  // LAAR_COMMON_LOGGING_H_
