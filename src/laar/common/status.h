#ifndef LAAR_COMMON_STATUS_H_
#define LAAR_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace laar {

/// Canonical error codes used across the LAAR public API.
///
/// Mirrors the error taxonomy used by Arrow/RocksDB-style database libraries:
/// errors are returned as values, never thrown across API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kDeadlineExceeded = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kIoError = 9,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value describing the outcome of an operation.
///
/// `Status` is cheap to copy in the success case (no allocation) and carries
/// a code plus a diagnostic message otherwise. Functions that can fail return
/// `Status` (or `Result<T>` when they also produce a value).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. A `kOk` code with
  /// a non-empty message is normalized to a plain OK status.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per canonical code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
  static Status IoError(std::string msg) { return Status(StatusCode::kIoError, std::move(msg)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prepends `context` to the message of a non-OK status; no-op on OK.
  Status WithContext(std::string_view context) const;

  /// Aborts the process if this status is not OK. Use only where an error
  /// indicates a programming bug (e.g. in examples/tests).
  void CheckOK() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller.
#define LAAR_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::laar::Status _laar_status = (expr);          \
    if (!_laar_status.ok()) return _laar_status;   \
  } while (false)

}  // namespace laar

#endif  // LAAR_COMMON_STATUS_H_
