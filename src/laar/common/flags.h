#ifndef LAAR_COMMON_FLAGS_H_
#define LAAR_COMMON_FLAGS_H_

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>

namespace laar {

/// Minimal `--name=value` command-line parser used by the bench binaries
/// and CLI tools. A bare `--name` is treated as `--name=1`.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      // string_view slicing sidesteps a GCC 12 -Wrestrict false positive
      // on std::string::substr chains.
      std::string_view raw = argv[i];
      if (raw.size() < 2 || raw[0] != '-' || raw[1] != '-') continue;
      raw.remove_prefix(2);
      const size_t eq = raw.find('=');
      if (eq == std::string_view::npos) {
        values_.insert_or_assign(std::string(raw), std::string("1"));
      } else {
        values_.insert_or_assign(std::string(raw.substr(0, eq)),
                                 std::string(raw.substr(eq + 1)));
      }
    }
  }

  int GetInt(const std::string& name, int fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  uint64_t GetUint64(const std::string& name, uint64_t fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback
                               : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  std::string GetString(const std::string& name, const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace laar

#endif  // LAAR_COMMON_FLAGS_H_
