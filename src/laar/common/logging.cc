#include "laar/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace laar {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

// Serializes emission so concurrent log lines do not interleave.
std::mutex& EmitMutex() {
  static std::mutex* mutex = new std::mutex();
  return *mutex;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(static_cast<int>(level) >= g_log_level.load()) {
  if (enabled_) {
    stream_ << "[" << LevelTag(level_) << " " << Basename(file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal_logging

}  // namespace laar
