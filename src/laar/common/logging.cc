#include "laar/common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace laar {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

bool ParseLogLevel(const char* text, LogLevel* level) {
  if (text == nullptr || *text == '\0') return false;
  std::string lower(text);
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  constexpr struct {
    const char* name;
    LogLevel level;
  } kNames[] = {
      {"debug", LogLevel::kDebug},     {"0", LogLevel::kDebug},
      {"info", LogLevel::kInfo},       {"1", LogLevel::kInfo},
      {"warning", LogLevel::kWarning}, {"2", LogLevel::kWarning},
      {"error", LogLevel::kError},     {"3", LogLevel::kError},
      {"off", LogLevel::kOff},         {"4", LogLevel::kOff},
  };
  for (const auto& entry : kNames) {
    if (lower == entry.name) {
      *level = entry.level;
      return true;
    }
  }
  return false;
}

void InitLogLevelFromEnv() {
  LogLevel level = LogLevel::kWarning;
  if (ParseLogLevel(std::getenv("LAAR_LOG_LEVEL"), &level)) SetLogLevel(level);
}

namespace {

// Applies LAAR_LOG_LEVEL before main() runs.
[[maybe_unused]] const bool g_env_level_applied = [] {
  InitLogLevelFromEnv();
  return true;
}();

}  // namespace

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(static_cast<int>(level) >= g_log_level.load()) {
  if (enabled_) {
    stream_ << "[" << LevelTag(level_) << " " << Basename(file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  // One write per line: the whole message, newline included, goes out in a
  // single fwrite on the (unbuffered) stderr stream, so concurrent log
  // lines never interleave without needing a process-wide emit lock.
  stream_ << '\n';
  const std::string line = stream_.str();
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal_logging

}  // namespace laar
