#ifndef LAAR_COMMON_STRINGS_H_
#define LAAR_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace laar {

/// printf-style formatting into a std::string.
/// (libstdc++ 12 lacks std::format; this is the project-wide substitute.)
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StrTrim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

}  // namespace laar

#endif  // LAAR_COMMON_STRINGS_H_
