#ifndef LAAR_COMMON_RESULT_H_
#define LAAR_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "laar/common/status.h"

namespace laar {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent.
///
/// Typical use:
/// ```
///   Result<Graph> r = ParseGraph(text);
///   if (!r.ok()) return r.status();
///   Graph g = std::move(r).value();
/// ```
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status without a value");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Accessors. Valid only when `ok()`; aborts otherwise.
  const T& value() const& {
    EnsureOK();
    return *value_;
  }
  T& value() & {
    EnsureOK();
    return *value_;
  }
  T&& value() && {
    EnsureOK();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  void EnsureOK() const { status_.CheckOK(); }

  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a `Result<T>` expression to `lhs`, or returns its
/// error status from the enclosing function.
#define LAAR_ASSIGN_OR_RETURN(lhs, expr)                \
  LAAR_ASSIGN_OR_RETURN_IMPL_(                          \
      LAAR_STATUS_CONCAT_(_laar_result, __LINE__), lhs, expr)

#define LAAR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define LAAR_STATUS_CONCAT_(a, b) LAAR_STATUS_CONCAT_IMPL_(a, b)
#define LAAR_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace laar

#endif  // LAAR_COMMON_RESULT_H_
