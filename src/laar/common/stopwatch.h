#ifndef LAAR_COMMON_STOPWATCH_H_
#define LAAR_COMMON_STOPWATCH_H_

#include <chrono>

namespace laar {

/// Wall-clock stopwatch for measuring search/bench durations.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock budget; FT-Search uses it to implement the paper's hard time
/// limit (§4.5: 10 minutes, after which the best solution so far is returned).
class Deadline {
 public:
  /// An effectively-infinite deadline.
  Deadline() : has_limit_(false) {}

  /// A deadline `seconds` from now. Non-positive values expire immediately.
  static Deadline After(double seconds) {
    Deadline d;
    d.has_limit_ = true;
    d.expiry_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline Infinite() { return Deadline(); }

  bool Expired() const { return has_limit_ && Clock::now() >= expiry_; }

  double RemainingSeconds() const {
    if (!has_limit_) return 1e18;
    return std::chrono::duration<double>(expiry_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool has_limit_ = false;
  Clock::time_point expiry_{};
};

}  // namespace laar

#endif  // LAAR_COMMON_STOPWATCH_H_
