#ifndef LAAR_COMMON_RNG_H_
#define LAAR_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace laar {

/// SplitMix64 — used to derive well-distributed seeds from small integers.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Deterministic PRNG (xoshiro256**) with convenience distributions.
///
/// Every stochastic component in LAAR takes an explicit seed so experiments
/// are reproducible bit-for-bit across runs and platforms. This generator is
/// deliberately self-contained (no `std::mt19937` / `std::uniform_*`): the
/// C++ standard does not pin down distribution algorithms, so standard
/// distributions are not reproducible across library implementations.
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed);

  /// Next raw 64 random bits.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi). Requires lo <= hi; returns lo when lo == hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (deterministic, allocation-free).
  double Normal(double mean, double stddev);

  /// Exponential with the given rate (> 0); used for Poisson arrivals.
  double Exponential(double rate);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Requires at least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Returns a new generator with state derived from this one; use to give
  /// subcomponents independent deterministic streams.
  Rng Fork();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*items)[i], (*items)[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace laar

#endif  // LAAR_COMMON_RNG_H_
