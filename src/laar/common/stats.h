#ifndef LAAR_COMMON_STATS_H_
#define LAAR_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace laar {

/// Box-plot summary of a sample, matching the convention used by the paper's
/// figures (footnote 4): quartiles, whiskers at 1.5×IQR, and outliers.
struct BoxPlot {
  size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double whisker_low = 0.0;   ///< smallest sample >= p25 - 1.5*IQR
  double whisker_high = 0.0;  ///< largest sample <= p75 + 1.5*IQR
  std::vector<double> outliers;

  /// One-line rendering: "n=.. mean=.. [min lo p25 med p75 hi max]".
  std::string ToString() const;
};

/// Streaming accumulator for count/mean/variance/min/max plus retained
/// samples for percentile queries.
class SampleStats {
 public:
  SampleStats() = default;

  void Add(double value);
  void AddAll(const std::vector<double>& values);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const { return sum_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Linear-interpolation percentile, `q` in [0, 100]. Every input has a
  /// defined result: an empty reservoir yields 0.0 (like `min`/`max`), a
  /// single sample is returned for every `q`, out-of-range `q` clamps to
  /// [0, 100], and a NaN `q` is treated as 0.
  double Percentile(double q) const;

  /// Full box-plot summary (paper footnote 4 conventions).
  BoxPlot Summarize() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); used for the Fig. 5 ratio histograms.
class Histogram {
 public:
  /// Samples outside `[lo, hi)` are counted in `underflow()` /
  /// `overflow()`. `bins == 0` is treated as 1; a degenerate range
  /// (`hi <= lo`, or a NaN bound) degrades to a single catch-all bin that
  /// counts every sample.
  Histogram(double lo, double hi, size_t bins);

  /// Reconstructs a histogram from serialized state (bin counts over
  /// [lo, hi) plus out-of-range tallies); `counts.size()` becomes the bin
  /// count (empty degrades to one empty bin). Round-trips `lo()`, `hi()`,
  /// `count(i)`, `underflow()`, `overflow()`, and `total()` exactly.
  static Histogram FromCounts(double lo, double hi, const std::vector<size_t>& counts,
                              size_t underflow, size_t overflow);

  void Add(double value);

  size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  size_t count(size_t bin) const { return counts_[bin]; }
  size_t underflow() const { return underflow_; }
  size_t overflow() const { return overflow_; }
  size_t total() const { return total_; }

  /// Inclusive-exclusive bounds [BinLo(i), BinHi(i)) of bin i.
  double BinLo(size_t bin) const;
  double BinHi(size_t bin) const;

  /// Renders an ASCII histogram, one row per bin, for bench output.
  std::string ToString(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<size_t> counts_;
  size_t underflow_ = 0;
  size_t overflow_ = 0;
  size_t total_ = 0;
};

}  // namespace laar

#endif  // LAAR_COMMON_STATS_H_
