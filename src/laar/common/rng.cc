#include "laar/common/rng.h"

#include <cmath>

namespace laar {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.Next();
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t value = NextUint64();
  while (value >= limit) value = NextUint64();
  return lo + static_cast<int64_t>(value % span);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

double Rng::Exponential(double rate) {
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return -std::log(u) / rate;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  // Numerical fallback: return the last positive-weight index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return 0;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace laar
