#include "laar/common/status.h"

#include <cstdio>
#include <cstdlib>

namespace laar {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

void Status::CheckOK() const {
  if (ok()) return;
  std::fprintf(stderr, "LAAR fatal: %s\n", ToString().c_str());
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace laar
