#include "laar/ftsearch/penalty_sweep.h"

#include <algorithm>

#include "laar/common/strings.h"
#include "laar/metrics/ic.h"

namespace laar::ftsearch {

Result<PenaltySweepResult> SweepPenaltyFrontier(const model::ApplicationGraph& graph,
                                                const model::InputSpace& space,
                                                const model::ExpectedRates& rates,
                                                const model::ReplicaPlacement& placement,
                                                const model::Cluster& cluster,
                                                const PenaltySweepOptions& options) {
  if (options.ic_target < 0.0 || options.ic_target > 1.0) {
    return Status::InvalidArgument("ic_target must be in [0, 1]");
  }
  if (options.grid_steps < 1) {
    return Status::InvalidArgument("grid_steps must be >= 1");
  }
  if (options.penalty_rate < 0.0) {
    return Status::InvalidArgument("penalty_rate must be non-negative");
  }

  const metrics::IcCalculator calculator(graph, space, rates);
  const double bic_per_second = calculator.BestCase();

  PenaltySweepResult sweep;
  for (int step = 0; step <= options.grid_steps; ++step) {
    const double level = options.ic_target * static_cast<double>(step) /
                         static_cast<double>(options.grid_steps);
    FtSearchOptions search;
    search.ic_requirement = level;
    search.time_limit_seconds = options.time_limit_seconds;
    LAAR_ASSIGN_OR_RETURN(FtSearchResult result,
                          RunFtSearch(graph, space, rates, placement, cluster, search));
    if (!result.strategy.has_value()) continue;

    PenaltyPoint point;
    point.ic_level = level;
    point.achieved_ic = result.best_ic;
    point.cost = result.best_cost;
    const double shortfall = std::max(0.0, options.ic_target - result.best_ic);
    point.penalty = options.penalty_rate * shortfall * bic_per_second;
    point.total = point.cost + point.penalty;
    point.outcome = result.outcome;
    sweep.frontier.push_back(point);
  }

  sweep.best_index = SelectOperatingPoint(&sweep.frontier, options.ic_target,
                                          options.penalty_rate, bic_per_second);
  return sweep;
}

int SelectOperatingPoint(std::vector<PenaltyPoint>* frontier, double ic_target,
                         double penalty_rate, double bic_per_second) {
  int best = -1;
  for (size_t i = 0; i < frontier->size(); ++i) {
    PenaltyPoint& point = (*frontier)[i];
    const double shortfall = std::max(0.0, ic_target - point.achieved_ic);
    point.penalty = penalty_rate * shortfall * bic_per_second;
    point.total = point.cost + point.penalty;
    if (best < 0 || point.total < (*frontier)[static_cast<size_t>(best)].total) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace laar::ftsearch
