#ifndef LAAR_FTSEARCH_PENALTY_SWEEP_H_
#define LAAR_FTSEARCH_PENALTY_SWEEP_H_

#include <vector>

#include "laar/common/result.h"
#include "laar/ftsearch/ft_search.h"

namespace laar::ftsearch {

/// The paper's future-work item §6.ii: instead of a hard IC constraint,
/// associate a *penalty* to IC violations and minimize
///
///     total(s) = cost(s) + penalty_rate · max(0, ic_target - IC(s)) · BIC
///
/// i.e. every expected tuple lost below the target costs `penalty_rate`
/// CPU-cycle-equivalents. `SweepPenaltyFrontier` evaluates the trade-off by
/// solving the hard-constrained problem on a grid of IC levels (each level
/// is the cheapest strategy achieving at least that IC — the lower envelope
/// of the (IC, cost) frontier) and reporting, for the given penalty rate,
/// which point minimizes the combined objective.
struct PenaltyPoint {
  double ic_level = 0.0;       ///< grid level requested
  double achieved_ic = 0.0;    ///< IC of the optimal strategy at that level
  double cost = 0.0;           ///< cost(s) per second (Eq. 13)
  double penalty = 0.0;        ///< penalty term per second
  double total = 0.0;          ///< cost + penalty
  SearchOutcome outcome = SearchOutcome::kTimeout;
};

struct PenaltySweepResult {
  std::vector<PenaltyPoint> frontier;  ///< one entry per feasible grid level
  /// Index into `frontier` of the combined-objective minimizer; -1 when the
  /// frontier is empty.
  int best_index = -1;
};

struct PenaltySweepOptions {
  /// SLA target the penalty is measured against.
  double ic_target = 0.7;
  /// CPU-cycles charged per expected lost tuple (relative to BIC/s).
  double penalty_rate = 0.0;
  /// IC grid: swept from 0 to ic_target in `grid_steps` steps.
  int grid_steps = 8;
  /// Budget per grid solve.
  double time_limit_seconds = 30.0;
};

/// Runs the sweep. Grid levels proven infeasible are skipped; when every
/// level is infeasible the result has an empty frontier.
Result<PenaltySweepResult> SweepPenaltyFrontier(const model::ApplicationGraph& graph,
                                                const model::InputSpace& space,
                                                const model::ExpectedRates& rates,
                                                const model::ReplicaPlacement& placement,
                                                const model::Cluster& cluster,
                                                const PenaltySweepOptions& options);

/// Re-evaluates an existing frontier under a different penalty rate (the
/// frontier itself is rate-independent): recomputes the penalty/total
/// fields of `frontier` in place and returns the minimizer's index, or -1
/// for an empty frontier. `bic_per_second` is the IC denominator
/// (metrics::IcCalculator::BestCase()).
int SelectOperatingPoint(std::vector<PenaltyPoint>* frontier, double ic_target,
                         double penalty_rate, double bic_per_second);

}  // namespace laar::ftsearch

#endif  // LAAR_FTSEARCH_PENALTY_SWEEP_H_
