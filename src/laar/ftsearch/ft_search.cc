#include "laar/ftsearch/ft_search.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

#include "laar/common/stopwatch.h"
#include "laar/common/strings.h"
#include "laar/exec/thread_pool.h"

namespace laar::ftsearch {

namespace {

// Domain values of one (PE, configuration) search variable under k = 2:
// both replicas active, or exactly one of them. Eq. 12 excludes the
// zero-active value, which restricts the space to 3^(|P|·|C|) (§4.5).
constexpr int kBoth = 0;
constexpr int kOnly0 = 1;
constexpr int kOnly1 = 2;
constexpr uint8_t kMaskOf[3] = {1, 2, 4};
constexpr uint8_t kMaskAll = 7;

constexpr double kEpsilon = 1e-9;

/// One incoming edge of a PE, pre-resolved for the inner loop.
struct PredEdge {
  model::ComponentId from;
  double selectivity;
};

/// One search variable: the activation state of PE `pe` in configuration
/// `config`.
struct Variable {
  model::ConfigId config = 0;
  model::ComponentId pe = 0;
  double demand = 0.0;       // cycles/sec of one active replica (Eq. 11 term)
  double cost_weight = 0.0;  // P(c) * demand: cost per active replica (Eq. 13 term)
  double prob = 0.0;         // P_C(config)
  double arrival_ff = 0.0;   // failure-free arrival rate (FIC upper bound term)
  model::HostId host0 = model::kInvalidHost;
  model::HostId host1 = model::kInvalidHost;
};

/// Immutable description of one FT-Search instance.
struct Problem {
  const model::ApplicationGraph* graph = nullptr;
  const model::InputSpace* space = nullptr;
  const model::ExpectedRates* rates = nullptr;
  const model::ReplicaPlacement* placement = nullptr;
  FtSearchOptions options;

  std::vector<Variable> vars;
  /// var_at[config * num_components + pe] -> variable position, or -1.
  std::vector<int> var_at;
  /// suffix_ub[d] = optimistic FIC (per second) achievable by variables
  /// d..end, assuming every undecided PE keeps both replicas active and
  /// receives its full failure-free inflow (Δ̂ <= Δ).
  std::vector<double> suffix_ub;
  /// block_end[d]: index one past the last variable of the configuration
  /// block containing variable d (blocks are |P| variables long).
  std::vector<int> block_end;
  /// Incoming PE/source edges of each component, pre-resolved.
  std::vector<std::vector<PredEdge>> preds;
  /// Successor PE ids of each component (for DOM propagation).
  std::vector<std::vector<model::ComponentId>> pe_succs;
  std::vector<double> capacity;  // per host

  double bic_per_sec = 0.0;
  double fic_requirement = 0.0;  // ic_requirement * bic_per_sec
  double base_cost_lb = 0.0;     // one active replica everywhere (Eq. 12 minimum)
  size_t num_components = 0;
  int num_vars = 0;

  int VarIndex(model::ConfigId config, model::ComponentId pe) const {
    return var_at[static_cast<size_t>(config) * num_components + static_cast<size_t>(pe)];
  }
};

/// State shared between parallel workers.
struct SharedState {
  std::mutex mu;
  bool found_any = false;
  double best_cost = std::numeric_limits<double>::infinity();
  double best_fic = 0.0;
  std::vector<int8_t> best_assignment;
  double best_seconds = 0.0;
  bool first_recorded = false;
  double first_cost = 0.0;
  double first_seconds = 0.0;

  /// Lock-free mirror of best_cost for the COST pruning hot path.
  std::atomic<double> best_cost_relaxed{std::numeric_limits<double>::infinity()};

  std::atomic<bool> stop{false};
  std::atomic<bool> timed_out{false};
  std::atomic<uint64_t> nodes_total{0};

  /// Global mirrors of the per-worker statistics, fed by amortized flushes;
  /// progress reporting only (the exact totals come from MergeFrom).
  std::atomic<uint64_t> solutions_total{0};
  std::atomic<uint64_t> cpu_prunes{0};
  std::atomic<uint64_t> compl_prunes{0};
  std::atomic<uint64_t> cost_prunes{0};
  std::atomic<uint64_t> dom_prunes{0};
  /// Node count at which the next progress callback fires; a CAS elects the
  /// single worker that reports each threshold.
  std::atomic<uint64_t> next_progress{0};

  Stopwatch watch;
  Deadline deadline;
  uint64_t node_limit = 0;
};

/// Builds a progress snapshot from the shared counters (incumbent under the
/// lock, everything else relaxed).
FtSearchProgress SnapshotProgress(const Problem& problem, SharedState* shared,
                                  uint64_t nodes) {
  FtSearchProgress progress;
  progress.elapsed_seconds = shared->watch.ElapsedSeconds();
  progress.nodes_explored = nodes;
  progress.solutions_found = shared->solutions_total.load(std::memory_order_relaxed);
  progress.cpu_prunes = shared->cpu_prunes.load(std::memory_order_relaxed);
  progress.compl_prunes = shared->compl_prunes.load(std::memory_order_relaxed);
  progress.cost_prunes = shared->cost_prunes.load(std::memory_order_relaxed);
  progress.dom_prunes = shared->dom_prunes.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shared->mu);
    if (shared->found_any) {
      progress.has_incumbent = true;
      progress.incumbent_cost = shared->best_cost;
      progress.incumbent_ic =
          problem.bic_per_sec <= 0.0 ? 1.0 : shared->best_fic / problem.bic_per_sec;
    }
  }
  return progress;
}

/// Per-worker search state: current partial assignment plus every
/// incrementally maintained quantity the pruning rules need.
class SearchContext {
 public:
  SearchContext(const Problem& problem, SharedState* shared, bool record_first = true)
      : problem_(problem),
        shared_(shared),
        record_first_(record_first),
        scratch_(problem.num_components, 0.0),
        assignment_(static_cast<size_t>(problem.num_vars), -1),
        mask_(static_cast<size_t>(problem.num_vars), kMaskAll),
        bound_fic_(static_cast<size_t>(problem.num_vars), 0.0),
        zero_(static_cast<size_t>(problem.space->num_configs()) * problem.num_components, 0),
        delta_hat_(static_cast<size_t>(problem.space->num_configs()) *
                       problem.num_components,
                   0.0),
        loads_(static_cast<size_t>(problem.space->num_configs()) * problem.capacity.size(),
               0.0),
        cost_lb_(problem.base_cost_lb) {
    // Sources seed the Δ̂ recursion (Eq. 7 first case) and the certain-zero
    // flags driving DOM propagation.
    const model::ConfigId num_configs = problem.space->num_configs();
    for (model::ConfigId c = 0; c < num_configs; ++c) {
      for (model::ComponentId id : problem.graph->Sources()) {
        const double rate = problem.rates->Rate(id, c);
        DeltaHat(c, id) = rate;
        Zero(c, id) = rate <= 0.0 ? 1 : 0;
      }
      for (model::ComponentId id : problem.graph->Pes()) {
        Zero(c, id) = 0;
      }
    }
  }

  FtSearchStats& stats() { return stats_; }

  /// Records the current assignment as a solution if every variable is
  /// bound; used to install the greedy seed without going through the
  /// search loop (and its stop checks).
  void RecordIfComplete() {
    for (int8_t value : assignment_) {
      if (value < 0) return;
    }
    RecordSolution();
  }

  /// Binds the first `prefix.size()` variables without recursing; returns
  /// false if some binding is pruned. Used to fast-forward parallel tasks.
  bool BindPrefix(const std::vector<int>& prefix, bool count_stats) {
    count_stats_ = count_stats;
    for (size_t d = 0; d < prefix.size(); ++d) {
      if ((mask_[d] & kMaskOf[prefix[d]]) == 0) {
        count_stats_ = true;
        return false;
      }
      if (!Bind(static_cast<int>(d), prefix[d])) {
        count_stats_ = true;
        return false;
      }
    }
    count_stats_ = true;
    return true;
  }

  /// Depth-first exploration from `depth`; all variables before `depth`
  /// must already be bound.
  void Dfs(int depth) {
    if (ShouldStop()) return;
    ++stats_.nodes_explored;
    if (depth == problem_.num_vars) {
      RecordSolution();
      return;
    }
    for (int value : ValueOrder()) {
      if ((mask_[static_cast<size_t>(depth)] & kMaskOf[value]) == 0) continue;
      if (Bind(depth, value)) {
        Dfs(depth + 1);
        Unbind(depth, value);
      }
      if (ShouldStop()) return;
    }
  }

  /// Enumerates the feasible prefixes of length `split_depth` (binding and
  /// unbinding through this context so pruning statistics are counted
  /// exactly once) and appends them to `out`.
  void CollectPrefixes(int depth, int split_depth, std::vector<int>* current,
                       std::vector<std::vector<int>>* out) {
    if (ShouldStop()) return;
    if (depth == split_depth) {
      out->push_back(*current);
      return;
    }
    ++stats_.nodes_explored;
    for (int value : ValueOrder()) {
      if ((mask_[static_cast<size_t>(depth)] & kMaskOf[value]) == 0) continue;
      if (Bind(depth, value)) {
        current->push_back(value);
        CollectPrefixes(depth + 1, split_depth, current, out);
        current->pop_back();
        Unbind(depth, value);
      }
      if (ShouldStop()) return;
    }
  }

 private:
  struct TrailEntry {
    enum Kind : uint8_t { kMaskChange, kZeroChange };
    Kind kind;
    uint32_t index;
    uint8_t old_value;
  };

  double& DeltaHat(model::ConfigId c, model::ComponentId id) {
    return delta_hat_[static_cast<size_t>(c) * problem_.num_components +
                      static_cast<size_t>(id)];
  }
  uint8_t& Zero(model::ConfigId c, model::ComponentId id) {
    return zero_[static_cast<size_t>(c) * problem_.num_components + static_cast<size_t>(id)];
  }
  double& Load(model::ConfigId c, model::HostId host) {
    return loads_[static_cast<size_t>(c) * problem_.capacity.size() +
                  static_cast<size_t>(host)];
  }

  const std::array<int, 3>& ValueOrder() const {
    static constexpr std::array<int, 3> kBothFirst = {kBoth, kOnly0, kOnly1};
    static constexpr std::array<int, 3> kSingleFirst = {kOnly0, kOnly1, kBoth};
    return problem_.options.try_both_first ? kBothFirst : kSingleFirst;
  }

  bool ShouldStop() {
    if (shared_->stop.load(std::memory_order_relaxed)) return true;
    // Deadline checks are amortized; the node limit (the deterministic
    // budget) must be exact, so it forces a per-node check.
    const uint64_t stride = shared_->node_limit != 0 ? 1 : 512;
    if (++stop_check_counter_ % stride == 0) {
      shared_->nodes_total.fetch_add(stride, std::memory_order_relaxed);
      const bool over_nodes =
          shared_->node_limit != 0 &&
          shared_->nodes_total.load(std::memory_order_relaxed) >= shared_->node_limit;
      if (shared_->deadline.Expired() || over_nodes) {
        shared_->timed_out.store(true);
        shared_->stop.store(true);
        return true;
      }
      if (problem_.options.progress) {
        FlushSharedCounters();
        MaybeEmitProgress();
      }
    }
    return false;
  }

  /// Pushes the local counter deltas since the last flush into the shared
  /// atomics (amortized by the ShouldStop stride; progress reporting only).
  void FlushSharedCounters() {
    auto push = [](std::atomic<uint64_t>* target, uint64_t current, uint64_t* last) {
      if (current != *last) {
        target->fetch_add(current - *last, std::memory_order_relaxed);
        *last = current;
      }
    };
    push(&shared_->solutions_total, stats_.solutions_found, &flushed_.solutions_found);
    push(&shared_->cpu_prunes, stats_.cpu.count, &flushed_.cpu.count);
    push(&shared_->compl_prunes, stats_.compl_.count, &flushed_.compl_.count);
    push(&shared_->cost_prunes, stats_.cost.count, &flushed_.cost.count);
    push(&shared_->dom_prunes, stats_.dom.count, &flushed_.dom.count);
  }

  /// Fires the progress callback if the global node count crossed the next
  /// threshold; the CAS guarantees one invocation per threshold.
  void MaybeEmitProgress() {
    const uint64_t interval =
        std::max<uint64_t>(1, problem_.options.progress_interval_nodes);
    const uint64_t nodes = shared_->nodes_total.load(std::memory_order_relaxed);
    uint64_t expected = shared_->next_progress.load(std::memory_order_relaxed);
    while (nodes >= expected) {
      if (shared_->next_progress.compare_exchange_weak(expected, nodes + interval,
                                                       std::memory_order_relaxed)) {
        problem_.options.progress(SnapshotProgress(problem_, shared_, nodes));
        break;
      }
    }
  }

  /// Attempts to bind variable `depth` to `value`, applying the CPU, COST,
  /// COMPL, and DOM rules. Returns false (fully undone) when pruned.
  bool Bind(int depth, int value) {
    const Variable& var = problem_.vars[static_cast<size_t>(depth)];
    const FtSearchOptions& options = problem_.options;

    // --- Pruning on CPU constraint (strict < capacity, Eq. 11). ---
    const bool use0 = value != kOnly1;
    const bool use1 = value != kOnly0;
    if (options.enable_cpu_pruning) {
      const bool overload0 =
          use0 && Load(var.config, var.host0) + var.demand >=
                      problem_.capacity[static_cast<size_t>(var.host0)] - kEpsilon;
      const bool overload1 =
          use1 && Load(var.config, var.host1) + var.demand >=
                      problem_.capacity[static_cast<size_t>(var.host1)] - kEpsilon;
      if (overload0 || overload1) {
        NotePrune(&stats_.cpu, depth);
        return false;
      }
    }

    // --- Apply the binding. ---
    if (use0) Load(var.config, var.host0) += var.demand;
    if (use1) Load(var.config, var.host1) += var.demand;
    const double phi = value == kBoth ? 1.0 : 0.0;
    double inflow_delta = 0.0;
    double inflow_fic = 0.0;
    for (const PredEdge& pe_edge : problem_.preds[static_cast<size_t>(var.pe)]) {
      const double upstream = DeltaHat(var.config, pe_edge.from);
      inflow_delta += pe_edge.selectivity * upstream;
      inflow_fic += upstream;
    }
    DeltaHat(var.config, var.pe) = phi * inflow_delta;
    const double fic_contribution = var.prob * phi * inflow_fic;
    bound_fic_[static_cast<size_t>(depth)] = fic_contribution;
    fic_partial_ += fic_contribution;
    if (value == kBoth) cost_lb_ += var.cost_weight;
    assignment_[static_cast<size_t>(depth)] = static_cast<int8_t>(value);
    trail_frames_.push_back(trail_.size());

    // --- Pruning on cost lower bound. ---
    if (options.enable_cost_pruning) {
      const double best = shared_->best_cost_relaxed.load(std::memory_order_relaxed);
      if (cost_lb_ >= best - kEpsilon) {
        NotePrune(&stats_.cost, depth);
        Unbind(depth, value);
        return false;
      }
    }

    // --- Pruning on IC upper bound. ---
    if (options.enable_ic_pruning) {
      double fic_ub;
      if (options.tight_ic_bound) {
        // Exact optimistic bound: undecided PEs of this configuration get
        // φ = 1 but inherit the decided upstream Δ̂; later configurations
        // contribute their failure-free maximum (== the φ ≡ 1 optimum).
        const int block_end = problem_.block_end[static_cast<size_t>(depth)];
        fic_ub = fic_partial_ + TightRemainder(depth, block_end) +
                 problem_.suffix_ub[static_cast<size_t>(block_end)];
      } else {
        fic_ub = fic_partial_ + problem_.suffix_ub[static_cast<size_t>(depth) + 1];
      }
      if (fic_ub < problem_.fic_requirement - kEpsilon) {
        NotePrune(&stats_.compl_, depth);
        Unbind(depth, value);
        return false;
      }
    }

    // --- Forward domain propagation. ---
    if (options.enable_dom_propagation && value != kBoth) {
      PropagateZero(var.config, var.pe, depth);
    }
    return true;
  }

  void Unbind(int depth, int value) {
    const Variable& var = problem_.vars[static_cast<size_t>(depth)];
    const size_t frame = trail_frames_.back();
    trail_frames_.pop_back();
    while (trail_.size() > frame) {
      const TrailEntry& entry = trail_.back();
      if (entry.kind == TrailEntry::kMaskChange) {
        mask_[entry.index] = entry.old_value;
      } else {
        zero_[entry.index] = entry.old_value;
      }
      trail_.pop_back();
    }
    if (value != kOnly1) Load(var.config, var.host0) -= var.demand;
    if (value != kOnly0) Load(var.config, var.host1) -= var.demand;
    DeltaHat(var.config, var.pe) = 0.0;
    fic_partial_ -= bound_fic_[static_cast<size_t>(depth)];
    bound_fic_[static_cast<size_t>(depth)] = 0.0;
    if (value == kBoth) cost_lb_ -= var.cost_weight;
    assignment_[static_cast<size_t>(depth)] = -1;
  }

  /// Marks component (`config`, `id`)'s output as certainly zero and
  /// removes the both-active value from the domains of successors whose
  /// entire inflow became certainly zero ("no replication forwarding",
  /// §4.5 DOM). `bound_depth` is where the triggering binding happened; the
  /// pruned-branch height of a DOM removal is measured from the removed
  /// variable's own tree level.
  void PropagateZero(model::ConfigId config, model::ComponentId id, int bound_depth) {
    uint8_t& flag = Zero(config, id);
    if (flag != 0) return;
    trail_.push_back(TrailEntry{TrailEntry::kZeroChange,
                                static_cast<uint32_t>(
                                    static_cast<size_t>(config) * problem_.num_components +
                                    static_cast<size_t>(id)),
                                flag});
    flag = 1;
    for (model::ComponentId succ : problem_.pe_succs[static_cast<size_t>(id)]) {
      if (Zero(config, succ) != 0) continue;
      bool all_zero = true;
      for (const PredEdge& pe_edge : problem_.preds[static_cast<size_t>(succ)]) {
        if (Zero(config, pe_edge.from) == 0) {
          all_zero = false;
          break;
        }
      }
      if (!all_zero) continue;
      const int succ_var = problem_.VarIndex(config, succ);
      if (succ_var > bound_depth) {
        uint8_t& succ_mask = mask_[static_cast<size_t>(succ_var)];
        if ((succ_mask & kMaskOf[kBoth]) != 0) {
          trail_.push_back(TrailEntry{TrailEntry::kMaskChange,
                                      static_cast<uint32_t>(succ_var), succ_mask});
          succ_mask = static_cast<uint8_t>(succ_mask & ~kMaskOf[kBoth]);
          if (count_stats_) {
            ++stats_.dom.count;
            stats_.dom.total_height +=
                static_cast<uint64_t>(problem_.num_vars - succ_var);
          }
        }
      }
      PropagateZero(config, succ, bound_depth);
    }
  }

  /// Optimistic FIC (weighted by P_C) achievable by the undecided
  /// variables (bound_depth, block_end) of the current configuration.
  double TightRemainder(int bound_depth, int block_end) {
    const Variable& bound_var = problem_.vars[static_cast<size_t>(bound_depth)];
    double rest = 0.0;
    for (int d = bound_depth + 1; d < block_end; ++d) {
      const Variable& var = problem_.vars[static_cast<size_t>(d)];
      double inflow_fic = 0.0;
      double inflow_delta = 0.0;
      for (const PredEdge& pe_edge : problem_.preds[static_cast<size_t>(var.pe)]) {
        // A predecessor is a source (Δ̂ fixed), a decided PE (Δ̂ exact), or
        // an undecided PE of this block — whose optimistic value was just
        // written to scratch (topological order guarantees it).
        const int pred_var = problem_.VarIndex(var.config, pe_edge.from);
        const double value = (pred_var >= 0 && assignment_[static_cast<size_t>(pred_var)] < 0)
                                 ? scratch_[static_cast<size_t>(pe_edge.from)]
                                 : DeltaHat(var.config, pe_edge.from);
        inflow_delta += pe_edge.selectivity * value;
        inflow_fic += value;
      }
      scratch_[static_cast<size_t>(var.pe)] = inflow_delta;  // φ = 1
      rest += inflow_fic;
    }
    return bound_var.prob * rest;
  }

  void NotePrune(PruningStats* pruning, int depth) {
    if (!count_stats_) return;
    ++pruning->count;
    pruning->total_height += static_cast<uint64_t>(problem_.num_vars - depth);
  }

  void RecordSolution() {
    // When a pruning rule is disabled (ablation), the constraint it fronts
    // still holds — it just gets checked here at the leaf instead of early.
    if (!problem_.options.enable_ic_pruning &&
        fic_partial_ < problem_.fic_requirement - kEpsilon) {
      return;
    }
    if (!problem_.options.enable_cpu_pruning) {
      const size_t num_hosts = problem_.capacity.size();
      for (size_t i = 0; i < loads_.size(); ++i) {
        if (loads_[i] >= problem_.capacity[i % num_hosts] - kEpsilon) return;
      }
    }
    ++stats_.solutions_found;
    const double cost = cost_lb_;  // exact: every variable is bound
    const double elapsed = shared_->watch.ElapsedSeconds();
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (record_first_ && !shared_->first_recorded) {
      shared_->first_recorded = true;
      shared_->first_cost = cost;
      shared_->first_seconds = elapsed;
    }
    if (!shared_->found_any || cost < shared_->best_cost - kEpsilon) {
      shared_->found_any = true;
      shared_->best_cost = cost;
      shared_->best_fic = fic_partial_;
      shared_->best_assignment.assign(assignment_.begin(), assignment_.end());
      shared_->best_seconds = elapsed;
      shared_->best_cost_relaxed.store(cost, std::memory_order_relaxed);
    }
  }

  const Problem& problem_;
  SharedState* shared_;
  bool record_first_;
  /// Scratch Δ̃ values for the tight IC bound; indexed by component, only
  /// entries written during the current bound computation are read.
  std::vector<double> scratch_;
  FtSearchStats stats_;
  std::vector<int8_t> assignment_;
  std::vector<uint8_t> mask_;
  std::vector<double> bound_fic_;
  std::vector<uint8_t> zero_;
  std::vector<double> delta_hat_;
  std::vector<double> loads_;
  std::vector<TrailEntry> trail_;
  std::vector<size_t> trail_frames_;
  double cost_lb_;
  double fic_partial_ = 0.0;
  uint64_t stop_check_counter_ = 0;
  bool count_stats_ = true;
  /// Local counter values already pushed to the shared progress atomics.
  FtSearchStats flushed_;
};

Result<Problem> BuildProblem(const model::ApplicationGraph& graph,
                             const model::InputSpace& space,
                             const model::ExpectedRates& rates,
                             const model::ReplicaPlacement& placement,
                             const model::Cluster& cluster,
                             const FtSearchOptions& options) {
  if (!graph.validated()) {
    return Status::FailedPrecondition("graph must be validated before FT-Search");
  }
  if (placement.replication_factor() != 2) {
    return Status::Unimplemented(
        StrFormat("FT-Search supports twofold replication only (k = 2), got k = %d",
                  placement.replication_factor()));
  }
  LAAR_RETURN_IF_ERROR(placement.Validate(cluster));
  if (options.ic_requirement < 0.0 || options.ic_requirement > 1.0) {
    return Status::InvalidArgument(
        StrFormat("IC requirement %g outside [0, 1]", options.ic_requirement));
  }
  for (model::ComponentId pe : graph.Pes()) {
    if (!placement.IsAssigned(pe)) {
      return Status::FailedPrecondition(StrFormat("PE %d is not placed", pe));
    }
  }

  Problem problem;
  problem.graph = &graph;
  problem.space = &space;
  problem.rates = &rates;
  problem.placement = &placement;
  problem.options = options;
  problem.num_components = graph.num_components();

  problem.capacity.reserve(cluster.num_hosts());
  for (const model::Host& host : cluster.hosts()) {
    problem.capacity.push_back(host.capacity_cycles_per_sec);
  }

  problem.preds.resize(graph.num_components());
  problem.pe_succs.resize(graph.num_components());
  for (const model::Component& component : graph.components()) {
    for (size_t edge_index : graph.IncomingEdges(component.id)) {
      const model::Edge& e = graph.edges()[edge_index];
      problem.preds[static_cast<size_t>(component.id)].push_back(
          PredEdge{e.from, e.selectivity});
    }
    for (size_t edge_index : graph.OutgoingEdges(component.id)) {
      const model::Edge& e = graph.edges()[edge_index];
      if (graph.IsPe(e.to)) {
        problem.pe_succs[static_cast<size_t>(component.id)].push_back(e.to);
      }
    }
  }

  // Variable order: configurations sorted most-CPU-hungry first (§4.5
  // heuristic), PEs in topological order within each configuration (the
  // partial-IC computation requires it).
  std::vector<model::ConfigId> config_order;
  for (model::ConfigId c = 0; c < space.num_configs(); ++c) config_order.push_back(c);
  if (options.hungriest_config_first) {
    std::vector<double> demand_of_config(static_cast<size_t>(space.num_configs()), 0.0);
    for (model::ConfigId c = 0; c < space.num_configs(); ++c) {
      for (model::ComponentId pe : graph.Pes()) {
        demand_of_config[static_cast<size_t>(c)] += rates.CpuDemand(graph, pe, c);
      }
    }
    std::stable_sort(config_order.begin(), config_order.end(),
                     [&demand_of_config](model::ConfigId a, model::ConfigId b) {
                       return demand_of_config[static_cast<size_t>(a)] >
                              demand_of_config[static_cast<size_t>(b)];
                     });
  }

  const std::vector<model::ComponentId> pes_topo = graph.PesInTopologicalOrder();
  problem.var_at.assign(static_cast<size_t>(space.num_configs()) * problem.num_components,
                        -1);
  for (model::ConfigId c : config_order) {
    for (model::ComponentId pe : pes_topo) {
      Variable var;
      var.config = c;
      var.pe = pe;
      var.demand = rates.CpuDemand(graph, pe, c);
      var.prob = space.Probability(c);
      var.cost_weight = var.prob * var.demand;
      var.arrival_ff = rates.ArrivalRate(graph, pe, c);
      var.host0 = placement.HostOf(pe, 0);
      var.host1 = placement.HostOf(pe, 1);
      problem.var_at[static_cast<size_t>(c) * problem.num_components +
                     static_cast<size_t>(pe)] = static_cast<int>(problem.vars.size());
      problem.vars.push_back(var);
      problem.base_cost_lb += var.cost_weight;
    }
  }
  problem.num_vars = static_cast<int>(problem.vars.size());

  const int pes_per_block = static_cast<int>(pes_topo.size());
  problem.block_end.resize(static_cast<size_t>(problem.num_vars));
  for (int d = 0; d < problem.num_vars; ++d) {
    problem.block_end[static_cast<size_t>(d)] = (d / pes_per_block + 1) * pes_per_block;
  }

  problem.suffix_ub.assign(static_cast<size_t>(problem.num_vars) + 1, 0.0);
  for (int d = problem.num_vars - 1; d >= 0; --d) {
    const Variable& var = problem.vars[static_cast<size_t>(d)];
    problem.suffix_ub[static_cast<size_t>(d)] =
        problem.suffix_ub[static_cast<size_t>(d) + 1] + var.prob * var.arrival_ff;
  }
  problem.bic_per_sec = problem.suffix_ub[0];
  problem.fic_requirement = options.ic_requirement * problem.bic_per_sec;
  return problem;
}

/// A quick feasible-by-construction starting point: everything replicated,
/// then — per configuration, from the sinks upward — one replica of a PE is
/// deactivated (the one on the currently most-loaded of its two hosts)
/// until no host is overloaded. Deactivating downstream-first sacrifices
/// the least internal completeness, since an upstream deactivation zeroes
/// its whole pessimistic-model subtree.
std::vector<int> GreedySeedAssignment(const Problem& problem) {
  std::vector<int> values(static_cast<size_t>(problem.num_vars), kBoth);
  const size_t num_hosts = problem.capacity.size();
  for (int start = 0; start < problem.num_vars;) {
    const int end = problem.block_end[static_cast<size_t>(start)];
    std::vector<double> load(num_hosts, 0.0);
    for (int d = start; d < end; ++d) {
      const Variable& var = problem.vars[static_cast<size_t>(d)];
      load[static_cast<size_t>(var.host0)] += var.demand;
      load[static_cast<size_t>(var.host1)] += var.demand;
    }
    auto overloaded = [&] {
      for (size_t h = 0; h < num_hosts; ++h) {
        if (load[h] >= problem.capacity[h] - kEpsilon) return true;
      }
      return false;
    };
    for (int d = end - 1; d >= start && overloaded(); --d) {
      const Variable& var = problem.vars[static_cast<size_t>(d)];
      if (load[static_cast<size_t>(var.host0)] >= load[static_cast<size_t>(var.host1)]) {
        values[static_cast<size_t>(d)] = kOnly1;
        load[static_cast<size_t>(var.host0)] -= var.demand;
      } else {
        values[static_cast<size_t>(d)] = kOnly0;
        load[static_cast<size_t>(var.host1)] -= var.demand;
      }
    }
    start = end;
  }
  return values;
}

strategy::ActivationStrategy AssignmentToStrategy(const Problem& problem,
                                                  const std::vector<int8_t>& assignment) {
  strategy::ActivationStrategy out(problem.num_components, 2,
                                   problem.space->num_configs());
  for (int d = 0; d < problem.num_vars; ++d) {
    const Variable& var = problem.vars[static_cast<size_t>(d)];
    const int value = assignment[static_cast<size_t>(d)];
    out.SetActive(var.pe, 0, var.config, value != kOnly1);
    out.SetActive(var.pe, 1, var.config, value != kOnly0);
  }
  return out;
}

}  // namespace

const char* SearchOutcomeName(SearchOutcome outcome) {
  switch (outcome) {
    case SearchOutcome::kOptimal:
      return "BST";
    case SearchOutcome::kFeasible:
      return "SOL";
    case SearchOutcome::kInfeasible:
      return "NUL";
    case SearchOutcome::kTimeout:
      return "TMO";
  }
  return "?";
}

void FtSearchStats::MergeFrom(const FtSearchStats& other) {
  nodes_explored += other.nodes_explored;
  solutions_found += other.solutions_found;
  cpu.count += other.cpu.count;
  cpu.total_height += other.cpu.total_height;
  compl_.count += other.compl_.count;
  compl_.total_height += other.compl_.total_height;
  cost.count += other.cost.count;
  cost.total_height += other.cost.total_height;
  dom.count += other.dom.count;
  dom.total_height += other.dom.total_height;
}

std::string FtSearchProgress::ToString() const {
  std::string line = StrFormat(
      "t=%.1fs nodes=%llu sol=%llu", elapsed_seconds,
      static_cast<unsigned long long>(nodes_explored),
      static_cast<unsigned long long>(solutions_found));
  if (has_incumbent) {
    line += StrFormat(" best=%.6g ic=%.4f", incumbent_cost, incumbent_ic);
  }
  line += StrFormat(" prunes[cpu=%llu compl=%llu cost=%llu dom=%llu]",
                    static_cast<unsigned long long>(cpu_prunes),
                    static_cast<unsigned long long>(compl_prunes),
                    static_cast<unsigned long long>(cost_prunes),
                    static_cast<unsigned long long>(dom_prunes));
  return line;
}

void PublishTo(obs::MetricsRegistry* registry, const FtSearchStats& stats,
               const obs::MetricsRegistry::Labels& labels) {
  if (registry == nullptr) return;
  auto count = [&](const char* name, uint64_t value,
                   const obs::MetricsRegistry::Labels& with) {
    if (obs::Counter* c = registry->GetCounter(name, with)) {
      c->Increment(static_cast<double>(value));
    }
  };
  count("ftsearch_nodes_explored", stats.nodes_explored, labels);
  count("ftsearch_solutions_found", stats.solutions_found, labels);
  const std::pair<const char*, const PruningStats*> rules[] = {
      {"cpu", &stats.cpu}, {"compl", &stats.compl_},
      {"cost", &stats.cost}, {"dom", &stats.dom}};
  for (const auto& [rule, pruning] : rules) {
    obs::MetricsRegistry::Labels with = labels;
    with.emplace_back("rule", rule);
    count("ftsearch_prunes", pruning->count, with);
    count("ftsearch_pruned_height", pruning->total_height, with);
  }
}

std::string FtSearchResult::ToString() const {
  return StrFormat(
      "%s cost=%.6g ic=%.4f first_cost=%.6g first_t=%.3fs best_t=%.3fs total_t=%.3fs "
      "nodes=%llu sol=%llu prunes[cpu=%llu compl=%llu cost=%llu dom=%llu]",
      SearchOutcomeName(outcome), best_cost, best_ic, first_solution_cost,
      first_solution_seconds, best_solution_seconds, total_seconds,
      static_cast<unsigned long long>(stats.nodes_explored),
      static_cast<unsigned long long>(stats.solutions_found),
      static_cast<unsigned long long>(stats.cpu.count),
      static_cast<unsigned long long>(stats.compl_.count),
      static_cast<unsigned long long>(stats.cost.count),
      static_cast<unsigned long long>(stats.dom.count));
}

Result<FtSearchResult> RunFtSearch(const model::ApplicationGraph& graph,
                                   const model::InputSpace& space,
                                   const model::ExpectedRates& rates,
                                   const model::ReplicaPlacement& placement,
                                   const model::Cluster& cluster,
                                   const FtSearchOptions& options) {
  LAAR_ASSIGN_OR_RETURN(Problem problem,
                        BuildProblem(graph, space, rates, placement, cluster, options));

  SharedState shared;
  shared.node_limit = options.node_limit;
  shared.deadline = options.time_limit_seconds > 0.0
                        ? Deadline::After(options.time_limit_seconds)
                        : Deadline::Infinite();
  shared.next_progress.store(std::max<uint64_t>(1, options.progress_interval_nodes));

  FtSearchStats merged_stats;
  if (options.seed_greedy && problem.num_vars > 0) {
    // The seed binds through a throwaway context so every constraint is
    // verified; a successful full bind records it as the incumbent (but
    // not as the "first solution" — Fig. 5 measures the search proper).
    SearchContext seeder(problem, &shared, /*record_first=*/false);
    const std::vector<int> seed = GreedySeedAssignment(problem);
    if (seeder.BindPrefix(seed, /*count_stats=*/false)) {
      seeder.RecordIfComplete();
    }
    merged_stats.MergeFrom(seeder.stats());
  }
  if (options.num_threads <= 1 || problem.num_vars == 0) {
    SearchContext context(problem, &shared);
    context.Dfs(0);
    merged_stats.MergeFrom(context.stats());
  } else {
    const int split_depth = std::clamp(options.split_depth, 1, problem.num_vars);
    SearchContext root(problem, &shared);
    std::vector<std::vector<int>> prefixes;
    std::vector<int> current;
    root.CollectPrefixes(0, split_depth, &current, &prefixes);
    merged_stats.MergeFrom(root.stats());

    // Run on the caller's shared pool when provided (waiting only on our
    // own task group), otherwise on a private pool.
    std::optional<ThreadPool> owned_pool;
    ThreadPool* pool = options.pool;
    if (pool == nullptr) {
      owned_pool.emplace(static_cast<size_t>(options.num_threads));
      pool = &*owned_pool;
    }
    ThreadPool::TaskGroup group(pool);
    std::mutex stats_mu;
    for (const std::vector<int>& prefix : prefixes) {
      group.Submit([&problem, &shared, &stats_mu, &merged_stats, prefix] {
        SearchContext context(problem, &shared);
        // The prefix was feasible when enumerated; re-binding it must not
        // re-count pruning statistics (a later best-cost update may even
        // prune it now, which is then also not re-counted).
        if (context.BindPrefix(prefix, /*count_stats=*/false)) {
          context.Dfs(static_cast<int>(prefix.size()));
        }
        std::lock_guard<std::mutex> lock(stats_mu);
        merged_stats.MergeFrom(context.stats());
      });
    }
    group.Wait();
  }

  // Final snapshot with the exact merged totals (the amortized flushes can
  // lag by up to one stride per worker).
  if (options.progress) {
    FtSearchProgress final_progress = SnapshotProgress(problem, &shared, 0);
    final_progress.nodes_explored = merged_stats.nodes_explored;
    final_progress.solutions_found = merged_stats.solutions_found;
    final_progress.cpu_prunes = merged_stats.cpu.count;
    final_progress.compl_prunes = merged_stats.compl_.count;
    final_progress.cost_prunes = merged_stats.cost.count;
    final_progress.dom_prunes = merged_stats.dom.count;
    options.progress(final_progress);
  }

  FtSearchResult result;
  result.stats = merged_stats;
  result.total_seconds = shared.watch.ElapsedSeconds();
  const bool timed_out = shared.timed_out.load();
  if (shared.found_any) {
    result.outcome = timed_out ? SearchOutcome::kFeasible : SearchOutcome::kOptimal;
    result.strategy = AssignmentToStrategy(problem, shared.best_assignment);
    result.best_cost = shared.best_cost;
    result.best_ic =
        problem.bic_per_sec <= 0.0 ? 1.0 : shared.best_fic / problem.bic_per_sec;
    result.first_solution_cost = shared.first_cost;
    result.first_solution_seconds = shared.first_seconds;
    result.best_solution_seconds = shared.best_seconds;
  } else {
    result.outcome = timed_out ? SearchOutcome::kTimeout : SearchOutcome::kInfeasible;
  }
  return result;
}

}  // namespace laar::ftsearch
