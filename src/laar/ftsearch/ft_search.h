#ifndef LAAR_FTSEARCH_FT_SEARCH_H_
#define LAAR_FTSEARCH_FT_SEARCH_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "laar/common/result.h"
#include "laar/model/cluster.h"
#include "laar/model/graph.h"
#include "laar/model/input_space.h"
#include "laar/model/placement.h"
#include "laar/model/rates.h"
#include "laar/obs/metrics_registry.h"
#include "laar/strategy/activation_strategy.h"

namespace laar {
class ThreadPool;
}

namespace laar::ftsearch {

/// How a search run terminated, matching the paper's Fig. 4 labels.
enum class SearchOutcome {
  kOptimal = 0,     ///< BST — optimal solution found and proven
  kFeasible = 1,    ///< SOL — time limit hit with a feasible solution in hand
  kInfeasible = 2,  ///< NUL — proven that no feasible solution exists
  kTimeout = 3,     ///< TMO — time limit hit with no solution found
};

const char* SearchOutcomeName(SearchOutcome outcome);

/// Counters for one pruning strategy (§4.5): how many times it fired and
/// the cumulative height of the pruned subtrees (height = number of not-yet
/// bound variables below the pruned node, the paper's Fig. 6 right metric).
struct PruningStats {
  uint64_t count = 0;
  uint64_t total_height = 0;

  double MeanHeight() const {
    return count == 0 ? 0.0 : static_cast<double>(total_height) / static_cast<double>(count);
  }
};

/// Aggregate search statistics.
struct FtSearchStats {
  uint64_t nodes_explored = 0;
  uint64_t solutions_found = 0;
  PruningStats cpu;    ///< pruning on CPU constraint (CPU)
  PruningStats compl_; ///< pruning on IC upper bound (COMPL)
  PruningStats cost;   ///< pruning on cost lower bound (COST)
  PruningStats dom;    ///< forward domain propagation (DOM)

  void MergeFrom(const FtSearchStats& other);
};

/// Point-in-time snapshot of a running search, delivered to the `progress`
/// callback. Counts are global (summed over all workers) but approximate
/// while the search runs: workers flush their local counters at the same
/// amortized stride as the stop checks.
struct FtSearchProgress {
  double elapsed_seconds = 0.0;
  uint64_t nodes_explored = 0;
  uint64_t solutions_found = 0;

  bool has_incumbent = false;
  double incumbent_cost = 0.0;
  double incumbent_ic = 0.0;

  uint64_t cpu_prunes = 0;
  uint64_t compl_prunes = 0;
  uint64_t cost_prunes = 0;
  uint64_t dom_prunes = 0;

  /// One line: "t=1.2s nodes=500000 sol=3 best=12.5 ic=0.61 prunes[...]".
  std::string ToString() const;
};

/// Tuning knobs of FT-Search. The defaults reproduce the configuration of
/// §4.5; the enable_* flags exist for the pruning ablation study.
struct FtSearchOptions {
  /// The SLA internal-completeness requirement (Eq. 10), in [0, 1].
  double ic_requirement = 0.5;

  /// Hard wall-clock limit; the best solution so far is returned when it
  /// expires (§4.5 uses 10 minutes). <= 0 means no limit.
  double time_limit_seconds = 600.0;

  /// Worker threads. 1 = fully deterministic sequential search; > 1 splits
  /// the top of the search tree across a thread pool (the paper's Fork/Join
  /// parallelization).
  int num_threads = 1;

  /// Tree levels enumerated to create parallel tasks (num_threads > 1).
  int split_depth = 3;

  /// Borrowed pool to run parallel root-splitting tasks on (num_threads > 1
  /// only). When null, the search creates a private pool of `num_threads`
  /// workers. Sharing one pool lets an outer fan-out level (e.g. the
  /// experiment-corpus runner) and FT-Search coexist without
  /// oversubscribing the machine.
  laar::ThreadPool* pool = nullptr;

  bool enable_cpu_pruning = true;
  bool enable_ic_pruning = true;
  bool enable_cost_pruning = true;
  bool enable_dom_propagation = true;

  /// Explore the most CPU-hungry input configurations first — the §4.5
  /// heuristic that makes CPU/IC constraints fail faster.
  bool hungriest_config_first = true;

  /// COMPL bound flavour: when set, the IC upper bound propagates the
  /// already-decided Δ̂ values through the undecided remainder of the
  /// current configuration (exact optimistic recursion, O(edges) per
  /// node); otherwise it uses precomputed failure-free suffix sums (O(1)
  /// per node, much looser).
  bool tight_ic_bound = true;

  /// Seed the search with a greedy feasible solution (all replicas active,
  /// then deactivate from the sinks upward until no host is overloaded).
  /// A seed makes COST pruning effective from the first node and ensures
  /// even timed-out runs return a usable strategy. The seed is not
  /// recorded as the "first solution" (Fig. 5 semantics).
  bool seed_greedy = true;

  /// Try the both-replicas-active value before the single-replica values at
  /// every node (finds IC-feasible solutions early).
  bool try_both_first = true;

  /// Observational progress hook: invoked roughly every
  /// `progress_interval_nodes` explored nodes (from whichever worker
  /// crosses the threshold — at most one invocation per threshold) and once
  /// more after the search finishes, with exact final counts. The callback
  /// must be thread-safe when num_threads > 1 and must not block: it runs
  /// on the search's hot path. It cannot influence the search, so results
  /// are identical with and without it.
  std::function<void(const FtSearchProgress&)> progress;
  uint64_t progress_interval_nodes = 1u << 16;

  /// Abort after exploring this many nodes (0 = unlimited). Unlike the
  /// wall-clock limit, a node budget is deterministic: for a sequential
  /// search (num_threads = 1) the outcome is a pure function of the inputs,
  /// independent of machine load. The corpus runner relies on this to keep
  /// its records invariant under --jobs.
  uint64_t node_limit = 0;
};

/// The outcome of a search run.
struct FtSearchResult {
  SearchOutcome outcome = SearchOutcome::kTimeout;

  /// Best strategy found; present for kOptimal and kFeasible.
  std::optional<strategy::ActivationStrategy> strategy;

  /// Cost per second (Eq. 13 with T = 1) of the best/first solutions.
  double best_cost = 0.0;
  double best_ic = 0.0;
  double first_solution_cost = 0.0;

  /// Wall-clock seconds from search start to each milestone.
  double first_solution_seconds = 0.0;
  double best_solution_seconds = 0.0;
  double total_seconds = 0.0;

  FtSearchStats stats;

  std::string ToString() const;
};

/// Publishes search statistics into `registry` under `ftsearch_*` names;
/// per-rule prune counters carry a `rule=cpu|compl|cost|dom` label on top
/// of `labels`.
void PublishTo(obs::MetricsRegistry* registry, const FtSearchStats& stats,
               const obs::MetricsRegistry::Labels& labels = {});

/// Runs FT-Search (§4.5): a depth-first branch-and-bound over the replica
/// activation states of every (PE, input configuration) pair, restricted to
/// twofold replication (k = 2), with the CPU / COMPL / COST / DOM pruning
/// strategies.
///
/// Requirements: validated graph and placement, k = 2, every PE placed,
/// `rates` computed from the same graph/space.
Result<FtSearchResult> RunFtSearch(const model::ApplicationGraph& graph,
                                   const model::InputSpace& space,
                                   const model::ExpectedRates& rates,
                                   const model::ReplicaPlacement& placement,
                                   const model::Cluster& cluster,
                                   const FtSearchOptions& options);

}  // namespace laar::ftsearch

#endif  // LAAR_FTSEARCH_FT_SEARCH_H_
