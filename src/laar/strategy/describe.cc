#include "laar/strategy/describe.h"

#include "laar/common/strings.h"

namespace laar::strategy {

std::string Describe(const model::ApplicationGraph& graph, const model::InputSpace& space,
                     const ActivationStrategy& strategy) {
  std::string out;
  for (model::ConfigId c = 0; c < space.num_configs(); ++c) {
    int full = 0;
    int partial = 0;
    int uncovered = 0;
    std::string shed;
    for (model::ComponentId pe : graph.Pes()) {
      const int active = strategy.ActiveReplicaCount(pe, c);
      if (active >= strategy.replication_factor()) {
        ++full;
      } else if (active >= 1) {
        ++partial;
        if (!shed.empty()) shed += ", ";
        shed += graph.component(pe).name;
      } else {
        ++uncovered;
      }
    }
    out += StrFormat("config %-16s (P=%.3f): %d fully replicated, %d single-replica",
                     space.ConfigLabel(c).c_str(), space.Probability(c), full, partial);
    if (uncovered > 0) out += StrFormat(", %d UNCOVERED", uncovered);
    if (!shed.empty()) out += "\n  shedding a replica: " + shed;
    out += "\n";
  }
  return out;
}

std::string Diff(const model::ApplicationGraph& graph, const model::InputSpace& space,
                 const ActivationStrategy& before, const ActivationStrategy& after) {
  if (before.replication_factor() != after.replication_factor() ||
      before.num_configs() != after.num_configs()) {
    return "strategies have different dimensions\n";
  }
  std::string out;
  int changes = 0;
  for (model::ConfigId c = 0; c < space.num_configs(); ++c) {
    for (model::ComponentId pe : graph.Pes()) {
      for (int r = 0; r < before.replication_factor(); ++r) {
        const bool was = before.IsActive(pe, r, c);
        const bool now = after.IsActive(pe, r, c);
        if (was == now) continue;
        ++changes;
        out += StrFormat("%s replica %d in %s: %s -> %s\n",
                         graph.component(pe).name.c_str(), r,
                         space.ConfigLabel(c).c_str(), was ? "active" : "idle",
                         now ? "active" : "idle");
      }
    }
  }
  if (changes == 0) return "identical strategies\n";
  return StrFormat("%d activation changes:\n", changes) + out;
}

}  // namespace laar::strategy
