#include "laar/strategy/activation_strategy.h"

#include "laar/common/strings.h"

namespace laar::strategy {

ActivationStrategy::ActivationStrategy(size_t num_components, int replication_factor,
                                       model::ConfigId num_configs)
    : num_components_(num_components),
      replication_factor_(replication_factor < 1 ? 1 : replication_factor),
      num_configs_(num_configs),
      table_(num_components * static_cast<size_t>(replication_factor_) *
                 static_cast<size_t>(num_configs),
             1) {}

void ActivationStrategy::SetAll(model::ComponentId pe, model::ConfigId config, bool active) {
  for (int r = 0; r < replication_factor_; ++r) SetActive(pe, r, config, active);
}

int ActivationStrategy::ActiveReplicaCount(model::ComponentId pe,
                                           model::ConfigId config) const {
  int count = 0;
  for (int r = 0; r < replication_factor_; ++r) {
    if (IsActive(pe, r, config)) ++count;
  }
  return count;
}

int ActivationStrategy::FirstActiveReplica(model::ComponentId pe,
                                           model::ConfigId config) const {
  for (int r = 0; r < replication_factor_; ++r) {
    if (IsActive(pe, r, config)) return r;
  }
  return -1;
}

Status ActivationStrategy::CheckCoverage(const model::ApplicationGraph& graph) const {
  for (model::ConfigId c = 0; c < num_configs_; ++c) {
    for (model::ComponentId pe : graph.Pes()) {
      if (ActiveReplicaCount(pe, c) < 1) {
        return Status::FailedPrecondition(
            StrFormat("PE %d has no active replica in configuration %d (violates Eq. 12)",
                      pe, c));
      }
    }
  }
  return Status::OK();
}

json::Value ActivationStrategy::ToJson() const {
  json::Value doc = json::Value::MakeObject();
  doc.Set("num_components", json::Value::Int(static_cast<int64_t>(num_components_)));
  doc.Set("replication_factor", json::Value::Int(replication_factor_));
  doc.Set("num_configs", json::Value::Int(num_configs_));
  json::Value configs = json::Value::MakeArray();
  for (model::ConfigId c = 0; c < num_configs_; ++c) {
    json::Value jc = json::Value::MakeObject();
    jc.Set("config", json::Value::Int(c));
    json::Value active = json::Value::MakeArray();
    for (size_t pe = 0; pe < num_components_; ++pe) {
      for (int r = 0; r < replication_factor_; ++r) {
        if (IsActive(static_cast<model::ComponentId>(pe), r, c)) {
          json::Value pair = json::Value::MakeArray();
          pair.Append(json::Value::Int(static_cast<int64_t>(pe)));
          pair.Append(json::Value::Int(r));
          active.Append(std::move(pair));
        }
      }
    }
    jc.Set("active", std::move(active));
    configs.Append(std::move(jc));
  }
  doc.Set("configs", std::move(configs));
  return doc;
}

Result<ActivationStrategy> ActivationStrategy::FromJson(const json::Value& value) {
  if (!value.is_object()) return Status::InvalidArgument("strategy must be a JSON object");
  LAAR_ASSIGN_OR_RETURN(const json::Value* nc, value.Get("num_components"));
  LAAR_ASSIGN_OR_RETURN(int64_t num_components, nc->AsInt());
  LAAR_ASSIGN_OR_RETURN(const json::Value* rf, value.Get("replication_factor"));
  LAAR_ASSIGN_OR_RETURN(int64_t replication_factor, rf->AsInt());
  LAAR_ASSIGN_OR_RETURN(const json::Value* ncfg, value.Get("num_configs"));
  LAAR_ASSIGN_OR_RETURN(int64_t num_configs, ncfg->AsInt());
  if (num_components < 0 || replication_factor < 1 || num_configs < 0) {
    return Status::InvalidArgument("invalid strategy dimensions");
  }
  ActivationStrategy out(static_cast<size_t>(num_components),
                         static_cast<int>(replication_factor),
                         static_cast<model::ConfigId>(num_configs));
  // The JSON lists only the *active* pairs; clear the default-active table.
  std::fill(out.table_.begin(), out.table_.end(), 0);

  LAAR_ASSIGN_OR_RETURN(const json::Value* configs, value.Get("configs"));
  if (!configs->is_array()) return Status::InvalidArgument("'configs' must be an array");
  for (const json::Value& jc : configs->array()) {
    LAAR_ASSIGN_OR_RETURN(const json::Value* cfg_value, jc.Get("config"));
    LAAR_ASSIGN_OR_RETURN(int64_t config, cfg_value->AsInt());
    if (config < 0 || config >= num_configs) {
      return Status::OutOfRange(StrFormat("config %lld out of range",
                                          static_cast<long long>(config)));
    }
    LAAR_ASSIGN_OR_RETURN(const json::Value* active, jc.Get("active"));
    for (const json::Value& pair : active->array()) {
      if (!pair.is_array() || pair.array().size() != 2) {
        return Status::InvalidArgument("'active' entries must be [pe, replica] pairs");
      }
      LAAR_ASSIGN_OR_RETURN(int64_t pe, pair.array()[0].AsInt());
      LAAR_ASSIGN_OR_RETURN(int64_t replica, pair.array()[1].AsInt());
      if (pe < 0 || pe >= num_components || replica < 0 || replica >= replication_factor) {
        return Status::OutOfRange("activation pair out of range");
      }
      out.SetActive(static_cast<model::ComponentId>(pe), static_cast<int>(replica),
                    static_cast<model::ConfigId>(config), true);
    }
  }
  return out;
}

Status ActivationStrategy::SaveToFile(const std::string& path) const {
  return json::WriteFile(ToJson(), path);
}

Result<ActivationStrategy> ActivationStrategy::LoadFromFile(const std::string& path) {
  LAAR_ASSIGN_OR_RETURN(json::Value doc, json::ParseFile(path));
  return FromJson(doc);
}

}  // namespace laar::strategy
