#include "laar/strategy/baselines.h"

#include <algorithm>
#include <vector>

#include "laar/metrics/cost.h"

namespace laar::strategy {

ActivationStrategy MakeStaticReplication(const model::ApplicationGraph& graph,
                                         const model::InputSpace& space,
                                         int replication_factor) {
  // The default-constructed table is all-active.
  return ActivationStrategy(graph.num_components(), replication_factor, space.num_configs());
}

ActivationStrategy MakeNonReplicated(const model::ApplicationGraph& graph,
                                     const model::InputSpace& space,
                                     const ActivationStrategy& reference,
                                     model::ConfigId reference_config) {
  ActivationStrategy out(graph.num_components(), reference.replication_factor(),
                         space.num_configs());
  for (model::ComponentId pe : graph.Pes()) {
    int keep = reference.FirstActiveReplica(pe, reference_config);
    if (keep < 0) keep = 0;  // Eq. 12 makes this unreachable for valid inputs
    for (model::ConfigId c = 0; c < space.num_configs(); ++c) {
      out.SetAll(pe, c, false);
      out.SetActive(pe, keep, c, true);
    }
  }
  return out;
}

namespace {

/// Depth of each component in the DAG (sources at 0); the greedy tie-break
/// prefers deactivating PEs closer to the sources.
std::vector<int> TopoDepths(const model::ApplicationGraph& graph) {
  std::vector<int> depth(graph.num_components(), 0);
  for (model::ComponentId id : graph.TopologicalOrder()) {
    for (size_t edge_index : graph.OutgoingEdges(id)) {
      const model::ComponentId to = graph.edges()[edge_index].to;
      depth[to] = std::max(depth[to], depth[id] + 1);
    }
  }
  return depth;
}

}  // namespace

ActivationStrategy MakeGreedy(const model::ApplicationGraph& graph,
                              const model::InputSpace& space,
                              const model::ExpectedRates& rates,
                              const model::ReplicaPlacement& placement,
                              const model::Cluster& cluster) {
  ActivationStrategy out = MakeStaticReplication(graph, space,
                                                 placement.replication_factor());
  const std::vector<int> depth = TopoDepths(graph);

  for (model::ConfigId c = 0; c < space.num_configs(); ++c) {
    while (true) {
      const std::vector<double> loads =
          metrics::HostLoads(graph, rates, placement, out, cluster, c);
      // Pick the most overloaded host (largest load/capacity ratio >= 1).
      model::HostId worst = model::kInvalidHost;
      double worst_ratio = 1.0;
      for (size_t h = 0; h < loads.size(); ++h) {
        const double ratio =
            loads[h] / cluster.host(static_cast<model::HostId>(h)).capacity_cycles_per_sec;
        if (ratio >= worst_ratio) {
          worst_ratio = ratio;
          worst = static_cast<model::HostId>(h);
        }
      }
      if (worst == model::kInvalidHost) break;  // no overloaded host remains

      // Candidate replicas on the worst host: active here, and their PE
      // keeps at least one active replica after deactivation (Eq. 12).
      struct Candidate {
        model::ComponentId pe;
        int replica;
        double demand;
      };
      std::vector<Candidate> candidates;
      double max_demand = 0.0;
      for (const model::ReplicaRef& ref : placement.ReplicasOn(worst)) {
        if (!graph.IsPe(ref.pe)) continue;
        if (!out.IsActive(ref.pe, ref.replica, c)) continue;
        if (out.ActiveReplicaCount(ref.pe, c) <= 1) continue;
        const double demand = rates.CpuDemand(graph, ref.pe, c);
        candidates.push_back(Candidate{ref.pe, ref.replica, demand});
        max_demand = std::max(max_demand, demand);
      }
      if (candidates.empty()) break;  // stuck: host stays overloaded

      // "The replica that consumes the most CPU", with the upstream-first
      // heuristic applied among near-maximal candidates (within 10%).
      const double threshold = 0.9 * max_demand;
      const Candidate* chosen = nullptr;
      for (const Candidate& cand : candidates) {
        if (cand.demand < threshold) continue;
        if (chosen == nullptr || depth[cand.pe] < depth[chosen->pe] ||
            (depth[cand.pe] == depth[chosen->pe] && cand.demand > chosen->demand)) {
          chosen = &cand;
        }
      }
      out.SetActive(chosen->pe, chosen->replica, c, false);
    }
  }
  return out;
}

}  // namespace laar::strategy
