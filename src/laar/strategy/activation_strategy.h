#ifndef LAAR_STRATEGY_ACTIVATION_STRATEGY_H_
#define LAAR_STRATEGY_ACTIVATION_STRATEGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "laar/common/result.h"
#include "laar/json/json.h"
#include "laar/model/graph.h"
#include "laar/model/input_space.h"

namespace laar::strategy {

/// A replica activation strategy s : P̃ × C → {0, 1} (§4.2, Eq. 4): for
/// every PE replica and every input configuration, whether the replica is
/// active (processing) or deactivated (idle, consuming no CPU).
///
/// The default-constructed strategy activates everything — i.e. static
/// active replication. Entries for non-PE components exist in the table but
/// are ignored by all consumers.
class ActivationStrategy {
 public:
  ActivationStrategy() = default;

  /// A strategy over `num_components` components with `replication_factor`
  /// replicas and `num_configs` configurations; all replicas start active.
  ActivationStrategy(size_t num_components, int replication_factor,
                     model::ConfigId num_configs);

  int replication_factor() const { return replication_factor_; }
  model::ConfigId num_configs() const { return num_configs_; }
  size_t num_components() const { return num_components_; }

  bool IsActive(model::ComponentId pe, int replica, model::ConfigId config) const {
    return table_[Index(pe, replica, config)] != 0;
  }
  void SetActive(model::ComponentId pe, int replica, model::ConfigId config, bool active) {
    table_[Index(pe, replica, config)] = active ? 1 : 0;
  }

  /// Sets all replicas of `pe` in `config` at once.
  void SetAll(model::ComponentId pe, model::ConfigId config, bool active);

  /// Σ_h s(x̃_{pe,h}, config) — the number of active replicas (Eq. 12 LHS).
  int ActiveReplicaCount(model::ComponentId pe, model::ConfigId config) const;

  /// True when every replica of `pe` is active in `config` — the condition
  /// under which the pessimistic model credits the PE (Eq. 14).
  bool AllReplicasActive(model::ComponentId pe, model::ConfigId config) const {
    return ActiveReplicaCount(pe, config) == replication_factor_;
  }

  /// Index of the lowest-numbered active replica, or -1 when none is.
  int FirstActiveReplica(model::ComponentId pe, model::ConfigId config) const;

  /// Verifies Eq. 12: at least one replica of every PE of `graph` is active
  /// in every configuration.
  Status CheckCoverage(const model::ApplicationGraph& graph) const;

  /// Serialization to the JSON strategy file consumed by the HAController
  /// (§5.1). Layout: {"replication_factor": k, "configs": [ {"config": c,
  /// "active": [[pe, replica], ...]} ]} plus dimensions.
  json::Value ToJson() const;
  static Result<ActivationStrategy> FromJson(const json::Value& value);

  Status SaveToFile(const std::string& path) const;
  static Result<ActivationStrategy> LoadFromFile(const std::string& path);

  friend bool operator==(const ActivationStrategy& a, const ActivationStrategy& b) {
    return a.num_components_ == b.num_components_ &&
           a.replication_factor_ == b.replication_factor_ &&
           a.num_configs_ == b.num_configs_ && a.table_ == b.table_;
  }

 private:
  size_t Index(model::ComponentId pe, int replica, model::ConfigId config) const {
    return (static_cast<size_t>(config) * num_components_ + static_cast<size_t>(pe)) *
               static_cast<size_t>(replication_factor_) +
           static_cast<size_t>(replica);
  }

  size_t num_components_ = 0;
  int replication_factor_ = 1;
  model::ConfigId num_configs_ = 0;
  std::vector<uint8_t> table_;
};

}  // namespace laar::strategy

#endif  // LAAR_STRATEGY_ACTIVATION_STRATEGY_H_
