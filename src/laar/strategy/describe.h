#ifndef LAAR_STRATEGY_DESCRIBE_H_
#define LAAR_STRATEGY_DESCRIBE_H_

#include <string>

#include "laar/model/graph.h"
#include "laar/model/input_space.h"
#include "laar/strategy/activation_strategy.h"

namespace laar::strategy {

/// Renders a human-readable summary of an activation strategy: per input
/// configuration, how many PEs run fully replicated / single-replica, and
/// which PEs shed a replica (by name). Used by `laar_solve` to explain the
/// strategy it just computed.
std::string Describe(const model::ApplicationGraph& graph, const model::InputSpace& space,
                     const ActivationStrategy& strategy);

/// One-line diff between two strategies over the same application: which
/// (PE, configuration) activation states changed. Useful when comparing
/// FT-Search outputs across SLA levels or placements.
std::string Diff(const model::ApplicationGraph& graph, const model::InputSpace& space,
                 const ActivationStrategy& before, const ActivationStrategy& after);

}  // namespace laar::strategy

#endif  // LAAR_STRATEGY_DESCRIBE_H_
