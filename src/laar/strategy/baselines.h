#ifndef LAAR_STRATEGY_BASELINES_H_
#define LAAR_STRATEGY_BASELINES_H_

#include "laar/common/result.h"
#include "laar/model/cluster.h"
#include "laar/model/graph.h"
#include "laar/model/input_space.h"
#include "laar/model/placement.h"
#include "laar/model/rates.h"
#include "laar/strategy/activation_strategy.h"

namespace laar::strategy {

/// The replication variants the paper compares LAAR against (§5.2).

/// Static Replication (SR): both replicas of every PE active all the time,
/// independently of the input configuration.
ActivationStrategy MakeStaticReplication(const model::ApplicationGraph& graph,
                                         const model::InputSpace& space,
                                         int replication_factor);

/// Non Replicated (NR): derived from a LAAR strategy (the paper uses L.5)
/// by taking its activations in the "High" (peak) configuration and forcing
/// exactly one active replica per PE; the result is used in every
/// configuration. This quickly yields a never-overloaded single-replica
/// deployment spread over all cluster resources.
ActivationStrategy MakeNonReplicated(const model::ApplicationGraph& graph,
                                     const model::InputSpace& space,
                                     const ActivationStrategy& reference,
                                     model::ConfigId reference_config);

/// Greedy (GRD): starting from static replication, for every configuration
/// iteratively deactivate redundant replicas until no host is overloaded.
/// Each iteration picks the most-overloaded host and deactivates, among the
/// replicas still deactivatable there (their PE keeps >= 1 active replica),
/// the one consuming the most CPU; near-ties are broken in favour of
/// upstream PEs (§5.2). If a configuration cannot be de-overloaded, the
/// strategy is returned anyway (the greedy variant gives no guarantees).
ActivationStrategy MakeGreedy(const model::ApplicationGraph& graph,
                              const model::InputSpace& space,
                              const model::ExpectedRates& rates,
                              const model::ReplicaPlacement& placement,
                              const model::Cluster& cluster);

}  // namespace laar::strategy

#endif  // LAAR_STRATEGY_BASELINES_H_
