#include "laar/obs/run_diff.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "laar/common/strings.h"
#include "laar/obs/loss_ledger.h"
#include "laar/obs/run_info.h"

namespace laar::obs {

namespace {

struct Scalars {
  std::map<std::string, double> values;
};

struct SeriesStats {
  size_t points = 0;
  double sum = 0.0;
  double peak = 0.0;
};

std::string KeyOf(const json::Value& metric) {
  std::string key = metric.GetOr("name", json::Value::String("?")).string_value();
  const json::Value labels = metric.GetOr("labels", json::Value::MakeObject());
  if (labels.is_object() && !labels.object().empty()) {
    key += '{';
    bool first = true;
    for (const auto& [k, v] : labels.object()) {
      if (!first) key += ',';
      first = false;
      key += k;
      key += '=';
      key += v.is_string() ? v.string_value() : v.Dump();
    }
    key += '}';
  }
  return key;
}

/// Flattens one registry document into comparable scalar and series maps.
Status Flatten(const json::Value& doc, Scalars* scalars,
               std::map<std::string, SeriesStats>* series) {
  const json::Value metrics = doc.GetOr("metrics", json::Value::MakeArray());
  if (!metrics.is_array()) {
    return Status::InvalidArgument("'metrics' must be an array");
  }
  for (const json::Value& metric : metrics.array()) {
    if (!metric.is_object()) continue;
    const std::string key = KeyOf(metric);
    const std::string type =
        metric.GetOr("type", json::Value::String("")).string_value();
    if (type == "counter" || type == "gauge") {
      scalars->values[key] =
          metric.GetOr("value", json::Value::Number(0.0)).number_value();
    } else if (type == "histogram") {
      const auto count = metric.GetOr("count", json::Value::Int(0)).AsInt();
      scalars->values[key + ".count"] =
          count.ok() ? static_cast<double>(*count) : 0.0;
      scalars->values[key + ".sum"] =
          metric.GetOr("sum", json::Value::Number(0.0)).number_value();
    } else if (type == "timeseries") {
      SeriesStats stats;
      const json::Value samples = metric.GetOr("samples", json::Value::MakeArray());
      for (const json::Value& sample : samples.array()) {
        if (!sample.is_array() || sample.array().size() < 2) continue;
        const double value = sample.array()[1].number_value();
        ++stats.points;
        stats.sum += value;
        stats.peak = std::max(stats.peak, value);
      }
      (*series)[key] = stats;
    }
  }
  return Status::OK();
}

bool Same(double a, double b) {
  // Registry values survive a JSON round-trip ("%.17g"), so exact equality
  // is the right notion of "unchanged".
  return a == b || (std::isnan(a) && std::isnan(b));
}

std::string FormatDelta(double a, double b) {
  std::string out = StrFormat("%.6g -> %.6g", a, b);
  if (a != 0.0) out += StrFormat(" (%+.1f%%)", 100.0 * (b - a) / a);
  return out;
}

}  // namespace

json::Value DiffReport::ToJson() const {
  json::Value doc = json::Value::MakeObject();
  doc.Set("comparable", json::Value::Bool(workload_mismatches.empty()));
  json::Value mismatches = json::Value::MakeArray();
  for (const std::string& text : workload_mismatches) {
    mismatches.Append(json::Value::String(text));
  }
  doc.Set("workload_mismatches", std::move(mismatches));
  json::Value scalar_list = json::Value::MakeArray();
  for (const Delta& delta : scalars) {
    json::Value entry = json::Value::MakeObject();
    entry.Set("key", json::Value::String(delta.key));
    if (delta.in_a) entry.Set("a", json::Value::Number(delta.a));
    if (delta.in_b) entry.Set("b", json::Value::Number(delta.b));
    scalar_list.Append(std::move(entry));
  }
  doc.Set("scalars", std::move(scalar_list));
  doc.Set("scalars_compared", json::Value::Int(static_cast<int64_t>(scalars_compared)));
  json::Value series_list = json::Value::MakeArray();
  for (const SeriesDelta& delta : series) {
    json::Value entry = json::Value::MakeObject();
    entry.Set("key", json::Value::String(delta.key));
    entry.Set("points_a", json::Value::Int(static_cast<int64_t>(delta.points_a)));
    entry.Set("points_b", json::Value::Int(static_cast<int64_t>(delta.points_b)));
    entry.Set("sum_a", json::Value::Number(delta.sum_a));
    entry.Set("sum_b", json::Value::Number(delta.sum_b));
    entry.Set("peak_a", json::Value::Number(delta.peak_a));
    entry.Set("peak_b", json::Value::Number(delta.peak_b));
    series_list.Append(std::move(entry));
  }
  doc.Set("series", std::move(series_list));
  doc.Set("series_compared", json::Value::Int(static_cast<int64_t>(series_compared)));
  if (has_ledger) {
    json::Value loss_list = json::Value::MakeArray();
    for (const LossDelta& delta : losses) {
      json::Value entry = json::Value::MakeObject();
      entry.Set("key", json::Value::String(delta.key));
      entry.Set("a", json::Value::Int(static_cast<int64_t>(delta.a)));
      entry.Set("b", json::Value::Int(static_cast<int64_t>(delta.b)));
      loss_list.Append(std::move(entry));
    }
    doc.Set("losses", std::move(loss_list));
    doc.Set("lost_a", json::Value::Int(static_cast<int64_t>(lost_a)));
    doc.Set("lost_b", json::Value::Int(static_cast<int64_t>(lost_b)));
  }
  doc.Set("verdict", json::Value::String(verdict));
  return doc;
}

std::string DiffReport::ToString() const {
  std::string out;
  if (!workload_mismatches.empty()) {
    out += "NOT COMPARABLE — the runs measured different workloads:\n";
    for (const std::string& text : workload_mismatches) out += "  " + text + "\n";
  } else if (has_run_info) {
    out += "runs are comparable (same workload stamp)\n";
  }
  if (has_ledger) {
    out += StrFormat("loss ledger: %llu -> %llu lost tuple copies\n",
                     static_cast<unsigned long long>(lost_a),
                     static_cast<unsigned long long>(lost_b));
    for (const LossDelta& delta : losses) {
      out += StrFormat("  %-24s %10llu -> %-10llu\n", delta.key.c_str(),
                       static_cast<unsigned long long>(delta.a),
                       static_cast<unsigned long long>(delta.b));
    }
  }
  out += StrFormat("scalars: %zu of %zu differ\n", scalars.size(), scalars_compared);
  for (const Delta& delta : scalars) {
    if (!delta.in_a) {
      out += StrFormat("  %-40s (only in B) %.6g\n", delta.key.c_str(), delta.b);
    } else if (!delta.in_b) {
      out += StrFormat("  %-40s (only in A) %.6g\n", delta.key.c_str(), delta.a);
    } else {
      out += StrFormat("  %-40s %s\n", delta.key.c_str(),
                       FormatDelta(delta.a, delta.b).c_str());
    }
  }
  if (series_compared > 0) {
    out += StrFormat("timeseries: %zu of %zu differ\n", series.size(),
                     series_compared);
    for (const SeriesDelta& delta : series) {
      out += StrFormat("  %-40s sum %s, peak %s\n", delta.key.c_str(),
                       FormatDelta(delta.sum_a, delta.sum_b).c_str(),
                       FormatDelta(delta.peak_a, delta.peak_b).c_str());
    }
  }
  out += "verdict: " + verdict + "\n";
  return out;
}

Result<DiffReport> DiffRuns(const json::Value& run_a, const json::Value& run_b) {
  if (!run_a.is_object() || !run_b.is_object()) {
    return Status::InvalidArgument("run artifacts must be JSON objects");
  }
  DiffReport report;

  const auto info_a = run_a.Get("run_info");
  const auto info_b = run_b.Get("run_info");
  if (info_a.ok() && info_b.ok()) {
    LAAR_ASSIGN_OR_RETURN(const RunInfo a, RunInfo::FromJson(**info_a));
    LAAR_ASSIGN_OR_RETURN(const RunInfo b, RunInfo::FromJson(**info_b));
    report.has_run_info = true;
    report.workload_mismatches = WorkloadMismatches(a, b);
  }

  Scalars scalars_a, scalars_b;
  std::map<std::string, SeriesStats> series_a, series_b;
  LAAR_RETURN_IF_ERROR(Flatten(run_a, &scalars_a, &series_a));
  LAAR_RETURN_IF_ERROR(Flatten(run_b, &scalars_b, &series_b));

  std::map<std::string, std::pair<const double*, const double*>> merged;
  for (const auto& [key, value] : scalars_a.values) merged[key].first = &value;
  for (const auto& [key, value] : scalars_b.values) merged[key].second = &value;
  report.scalars_compared = merged.size();
  for (const auto& [key, sides] : merged) {
    DiffReport::Delta delta;
    delta.key = key;
    delta.in_a = sides.first != nullptr;
    delta.in_b = sides.second != nullptr;
    if (delta.in_a) delta.a = *sides.first;
    if (delta.in_b) delta.b = *sides.second;
    if (delta.in_a && delta.in_b && Same(delta.a, delta.b)) continue;
    report.scalars.push_back(std::move(delta));
  }

  std::map<std::string, std::pair<const SeriesStats*, const SeriesStats*>>
      series_merged;
  for (const auto& [key, stats] : series_a) series_merged[key].first = &stats;
  for (const auto& [key, stats] : series_b) series_merged[key].second = &stats;
  report.series_compared = series_merged.size();
  for (const auto& [key, sides] : series_merged) {
    static const SeriesStats kEmpty;
    const SeriesStats& a = sides.first != nullptr ? *sides.first : kEmpty;
    const SeriesStats& b = sides.second != nullptr ? *sides.second : kEmpty;
    if (sides.first != nullptr && sides.second != nullptr &&
        a.points == b.points && Same(a.sum, b.sum) && Same(a.peak, b.peak)) {
      continue;
    }
    DiffReport::SeriesDelta delta;
    delta.key = key;
    delta.in_a = sides.first != nullptr;
    delta.in_b = sides.second != nullptr;
    delta.points_a = a.points;
    delta.points_b = b.points;
    delta.sum_a = a.sum;
    delta.sum_b = b.sum;
    delta.peak_a = a.peak;
    delta.peak_b = b.peak;
    report.series.push_back(std::move(delta));
  }

  const auto ledger_a_json = run_a.Get("loss_ledger");
  const auto ledger_b_json = run_b.Get("loss_ledger");
  if (ledger_a_json.ok() && ledger_b_json.ok()) {
    LAAR_ASSIGN_OR_RETURN(const LossLedger ledger_a,
                          LossLedger::FromJson(**ledger_a_json));
    LAAR_ASSIGN_OR_RETURN(const LossLedger ledger_b,
                          LossLedger::FromJson(**ledger_b_json));
    report.has_ledger = true;
    report.lost_a = ledger_a.Total();
    report.lost_b = ledger_b.Total();
    for (size_t c = 0; c < kLossCauseCount; ++c) {
      const LossCause cause = static_cast<LossCause>(c);
      if (ledger_a.TotalOf(cause) == ledger_b.TotalOf(cause)) continue;
      report.losses.push_back(DiffReport::LossDelta{
          LossCauseName(cause), ledger_a.TotalOf(cause), ledger_b.TotalOf(cause)});
    }
  }

  // The verdict leads with what the paper cares about: loss. Ledgers when
  // stamped, the canonical drop counter otherwise.
  const auto scalar_or = [](const Scalars& scalars, const char* key) {
    const auto it = scalars.values.find(key);
    return it == scalars.values.end() ? 0.0 : it->second;
  };
  double loss_a = static_cast<double>(report.lost_a);
  double loss_b = static_cast<double>(report.lost_b);
  if (!report.has_ledger) {
    loss_a = scalar_or(scalars_a, "sim_dropped_tuples");
    loss_b = scalar_or(scalars_b, "sim_dropped_tuples");
  }
  // Flag-only mismatches are the normal A/B shape — comparing placements or
  // strategies on the same seeded workload — so they annotate the verdict
  // instead of voiding it. A different tool, seed, or build, though, means
  // the runs did not measure the same thing.
  bool incomparable = false;
  for (const std::string& mismatch : report.workload_mismatches) {
    if (mismatch.rfind("only in", 0) != 0) incomparable = true;
  }
  std::string intervention;
  if (!incomparable && !report.workload_mismatches.empty()) {
    intervention = StrFormat("; A/B differs in %zu flags",
                             report.workload_mismatches.size());
  }
  if (incomparable) {
    report.verdict = StrFormat("incomparable runs (%zu workload mismatches); "
                               "deltas above are indicative only",
                               report.workload_mismatches.size());
  } else if (loss_a == loss_b) {
    report.verdict = StrFormat("equal loss (%.0f tuple copies); %zu/%zu metrics differ%s",
                               loss_a, report.scalars.size(), report.scalars_compared,
                               intervention.c_str());
  } else {
    const bool improved = loss_b < loss_a;
    std::string relative;
    if (loss_a != 0.0) {
      relative = StrFormat(", %+.1f%%", 100.0 * (loss_b - loss_a) / loss_a);
    }
    report.verdict = StrFormat(
        "B loses %.0f %s tuple copies than A (%.0f -> %.0f%s); %zu/%zu metrics differ%s",
        std::abs(loss_b - loss_a), improved ? "fewer" : "more", loss_a, loss_b,
        relative.c_str(), report.scalars.size(), report.scalars_compared,
        intervention.c_str());
  }
  return report;
}

}  // namespace laar::obs
