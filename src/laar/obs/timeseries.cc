#include "laar/obs/timeseries.h"

#include <algorithm>

namespace laar::obs {

TimeSeries::TimeSeries(size_t capacity) : ring_(std::max<size_t>(1, capacity)) {}

void TimeSeries::Append(double time, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_appended_;
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = Sample{time, value};
    ++size_;
  } else {
    ring_[head_] = Sample{time, value};
    head_ = (head_ + 1) % ring_.size();
  }
}

std::vector<TimeSeries::Sample> TimeSeries::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

size_t TimeSeries::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

size_t TimeSeries::capacity() const { return ring_.size(); }

uint64_t TimeSeries::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_appended_;
}

uint64_t TimeSeries::overwritten() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_appended_ - size_;
}

}  // namespace laar::obs
