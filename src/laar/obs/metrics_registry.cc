#include "laar/obs/metrics_registry.h"

#include <algorithm>

#include "laar/common/strings.h"

namespace laar::obs {

std::string MetricsRegistry::KeyOf(const std::string& name, const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  key += '{';
  for (const auto& [k, v] : sorted) {
    key += k;
    key += '=';
    key += v;
    key += ',';
  }
  key += '}';
  return key;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[KeyOf(name, labels)];
  if (entry.gauge != nullptr || entry.histogram != nullptr || entry.series != nullptr) {
    return nullptr;
  }
  if (entry.counter == nullptr) {
    entry.name = name;
    entry.labels = labels;
    entry.counter = std::make_unique<Counter>();
  }
  return entry.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[KeyOf(name, labels)];
  if (entry.counter != nullptr || entry.histogram != nullptr || entry.series != nullptr) {
    return nullptr;
  }
  if (entry.gauge == nullptr) {
    entry.name = name;
    entry.labels = labels;
    entry.gauge = std::make_unique<Gauge>();
  }
  return entry.gauge.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name,
                                               const Labels& labels, double lo, double hi,
                                               size_t bins) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[KeyOf(name, labels)];
  if (entry.counter != nullptr || entry.gauge != nullptr || entry.series != nullptr) {
    return nullptr;
  }
  if (entry.histogram == nullptr) {
    entry.name = name;
    entry.labels = labels;
    entry.histogram = std::make_unique<HistogramMetric>(lo, hi, bins);
  }
  return entry.histogram.get();
}

TimeSeries* MetricsRegistry::GetTimeSeries(const std::string& name, const Labels& labels,
                                           size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[KeyOf(name, labels)];
  if (entry.counter != nullptr || entry.gauge != nullptr || entry.histogram != nullptr) {
    return nullptr;
  }
  if (entry.series == nullptr) {
    entry.name = name;
    entry.labels = labels;
    entry.series = std::make_unique<TimeSeries>(capacity);
  }
  return entry.series.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name,
                                            const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(KeyOf(name, labels));
  return it == entries_.end() ? nullptr : it->second.counter.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name,
                                        const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(KeyOf(name, labels));
  return it == entries_.end() ? nullptr : it->second.gauge.get();
}

const HistogramMetric* MetricsRegistry::FindHistogram(const std::string& name,
                                                      const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(KeyOf(name, labels));
  return it == entries_.end() ? nullptr : it->second.histogram.get();
}

const TimeSeries* MetricsRegistry::FindTimeSeries(const std::string& name,
                                                  const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(KeyOf(name, labels));
  return it == entries_.end() ? nullptr : it->second.series.get();
}

std::vector<MetricsRegistry::SeriesSnapshot> MetricsRegistry::SnapshotTimeSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SeriesSnapshot> out;
  for (const auto& [key, entry] : entries_) {  // map order: sorted by key
    if (entry.series == nullptr) continue;
    Labels sorted = entry.labels;
    std::sort(sorted.begin(), sorted.end());
    out.push_back(SeriesSnapshot{entry.name, std::move(sorted), entry.series->Samples()});
  }
  return out;
}

std::vector<MetricsRegistry::SeriesSnapshot> MetricsRegistry::SnapshotGauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SeriesSnapshot> out;
  for (const auto& [key, entry] : entries_) {
    if (entry.gauge == nullptr) continue;
    Labels sorted = entry.labels;
    std::sort(sorted.begin(), sorted.end());
    out.push_back(SeriesSnapshot{
        entry.name, std::move(sorted), {TimeSeries::Sample{0.0, entry.gauge->value()}}});
  }
  return out;
}

double MetricsRegistry::SumCounters(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const auto& [key, entry] : entries_) {
    if (entry.name == name && entry.counter != nullptr) total += entry.counter->value();
  }
  return total;
}

double MetricsRegistry::MaxGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  double best = 0.0;
  for (const auto& [key, entry] : entries_) {
    if (entry.name == name && entry.gauge != nullptr) {
      best = std::max(best, entry.gauge->value());
    }
  }
  return best;
}

size_t MetricsRegistry::PruneByLabel(const std::string& key,
                                     const std::function<bool(const std::string&)>& keep) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool drop = false;
    for (const auto& [k, v] : it->second.labels) {
      if (k == key && !keep(v)) {
        drop = true;
        break;
      }
    }
    if (drop) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

json::Value MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Value list = json::Value::MakeArray();
  for (const auto& [key, entry] : entries_) {
    json::Value metric = json::Value::MakeObject();
    metric.Set("name", json::Value::String(entry.name));
    if (!entry.labels.empty()) {
      json::Value labels = json::Value::MakeObject();
      for (const auto& [k, v] : entry.labels) labels.Set(k, json::Value::String(v));
      metric.Set("labels", std::move(labels));
    }
    if (entry.counter != nullptr) {
      metric.Set("type", json::Value::String("counter"));
      metric.Set("value", json::Value::Number(entry.counter->value()));
    } else if (entry.gauge != nullptr) {
      metric.Set("type", json::Value::String("gauge"));
      metric.Set("value", json::Value::Number(entry.gauge->value()));
    } else if (entry.histogram != nullptr) {
      metric.Set("type", json::Value::String("histogram"));
      const Histogram h = entry.histogram->Snapshot();
      metric.Set("lo", json::Value::Number(h.lo()));
      metric.Set("hi", json::Value::Number(h.hi()));
      json::Value counts = json::Value::MakeArray();
      for (size_t i = 0; i < h.bins(); ++i) {
        counts.Append(json::Value::Int(static_cast<int64_t>(h.count(i))));
      }
      metric.Set("counts", std::move(counts));
      metric.Set("underflow", json::Value::Int(static_cast<int64_t>(h.underflow())));
      metric.Set("overflow", json::Value::Int(static_cast<int64_t>(h.overflow())));
      metric.Set("count", json::Value::Int(static_cast<int64_t>(h.total())));
      metric.Set("sum", json::Value::Number(entry.histogram->sum()));
    } else if (entry.series != nullptr) {
      metric.Set("type", json::Value::String("timeseries"));
      json::Value samples = json::Value::MakeArray();
      for (const TimeSeries::Sample& s : entry.series->Samples()) {
        json::Value pair = json::Value::MakeArray();
        pair.Append(json::Value::Number(s.time));
        pair.Append(json::Value::Number(s.value));
        samples.Append(std::move(pair));
      }
      metric.Set("samples", std::move(samples));
      metric.Set("count",
                 json::Value::Int(static_cast<int64_t>(entry.series->total_appended())));
      if (entry.series->overwritten() > 0) {
        metric.Set("overwritten",
                   json::Value::Int(static_cast<int64_t>(entry.series->overwritten())));
      }
    }
    list.Append(std::move(metric));
  }
  json::Value doc = json::Value::MakeObject();
  doc.Set("metrics", std::move(list));
  return doc;
}

namespace {

std::string LabelString(const MetricsRegistry::Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ';';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

}  // namespace

std::string TimeSeriesCsv(const MetricsRegistry& registry) {
  std::string out = "series,labels,time,value\n";
  for (const MetricsRegistry::SeriesSnapshot& snapshot : registry.SnapshotTimeSeries()) {
    const std::string labels = LabelString(snapshot.labels);
    for (const TimeSeries::Sample& s : snapshot.samples) {
      out += StrFormat("%s,%s,%.9g,%.9g\n", snapshot.name.c_str(), labels.c_str(), s.time,
                       s.value);
    }
  }
  return out;
}

json::Value TimeSeriesJson(const MetricsRegistry& registry) {
  json::Value list = json::Value::MakeArray();
  for (const MetricsRegistry::SeriesSnapshot& snapshot : registry.SnapshotTimeSeries()) {
    json::Value series = json::Value::MakeObject();
    series.Set("name", json::Value::String(snapshot.name));
    if (!snapshot.labels.empty()) {
      json::Value labels = json::Value::MakeObject();
      for (const auto& [k, v] : snapshot.labels) labels.Set(k, json::Value::String(v));
      series.Set("labels", std::move(labels));
    }
    json::Value samples = json::Value::MakeArray();
    for (const TimeSeries::Sample& s : snapshot.samples) {
      json::Value pair = json::Value::MakeArray();
      pair.Append(json::Value::Number(s.time));
      pair.Append(json::Value::Number(s.value));
      samples.Append(std::move(pair));
    }
    series.Set("samples", std::move(samples));
    list.Append(std::move(series));
  }
  json::Value doc = json::Value::MakeObject();
  doc.Set("series", std::move(list));
  return doc;
}

}  // namespace laar::obs
