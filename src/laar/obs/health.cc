#include "laar/obs/health.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "laar/common/strings.h"

namespace laar::obs {

const char* AlertSeverityName(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kWarning:
      return "warning";
    case AlertSeverity::kCritical:
      return "critical";
  }
  return "unknown";
}

std::string AlertRule::ToString() const {
  std::string labels_text;
  if (!labels.empty()) {
    labels_text += '{';
    for (size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) labels_text += ',';
      labels_text += labels[i].first;
      labels_text += '=';
      labels_text += labels[i].second;
    }
    labels_text += '}';
  }
  std::string out = StrFormat("%s: %s%s %c %g", name.c_str(), series.c_str(),
                              labels_text.c_str(),
                              comparison == AlertComparison::kAbove ? '>' : '<', threshold);
  if (for_seconds > 0.0) out += StrFormat(" for %g", for_seconds);
  out += severity == AlertSeverity::kCritical ? " crit" : " warn";
  return out;
}

namespace {

Status ParseError(std::string_view rule, const char* why) {
  return Status::InvalidArgument(
      StrFormat("bad alert rule \"%.*s\": %s", static_cast<int>(rule.size()), rule.data(),
                why));
}

/// Parses a strictly numeric token (no trailing junk).
bool ParseNumber(std::string_view token, double* out) {
  const std::string text(token);
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || std::isnan(value)) return false;
  *out = value;
  return true;
}

}  // namespace

Result<AlertRule> ParseAlertRule(std::string_view text) {
  const std::string_view original = StrTrim(text);
  std::string_view rest = original;
  if (rest.empty()) return ParseError(original, "empty rule");

  AlertRule rule;

  // Optional `name:` prefix — a colon before the comparison operator.
  const size_t colon = rest.find(':');
  const size_t cmp_probe = rest.find_first_of("<>");
  if (colon != std::string_view::npos &&
      (cmp_probe == std::string_view::npos || colon < cmp_probe)) {
    rule.name = std::string(StrTrim(rest.substr(0, colon)));
    if (rule.name.empty()) return ParseError(original, "empty rule name");
    rest = StrTrim(rest.substr(colon + 1));
  }

  const size_t cmp = rest.find_first_of("<>");
  if (cmp == std::string_view::npos) {
    return ParseError(original, "missing comparison operator (> or <)");
  }
  rule.comparison =
      rest[cmp] == '>' ? AlertComparison::kAbove : AlertComparison::kBelow;

  // Series name with optional `{k=v,...}` label selector.
  std::string_view series = StrTrim(rest.substr(0, cmp));
  if (const size_t brace = series.find('{'); brace != std::string_view::npos) {
    if (series.back() != '}') return ParseError(original, "unterminated label block");
    const std::string_view labels = series.substr(brace + 1, series.size() - brace - 2);
    for (const std::string& pair : StrSplit(labels, ',')) {
      const std::string_view trimmed = StrTrim(pair);
      if (trimmed.empty()) continue;
      const size_t eq = trimmed.find('=');
      if (eq == std::string_view::npos || eq == 0) {
        return ParseError(original, "label selector must be key=value");
      }
      rule.labels.emplace_back(std::string(StrTrim(trimmed.substr(0, eq))),
                               std::string(StrTrim(trimmed.substr(eq + 1))));
    }
    series = StrTrim(series.substr(0, brace));
  }
  if (series.empty()) return ParseError(original, "missing series name");
  rule.series = std::string(series);
  if (rule.name.empty()) rule.name = rule.series;

  // After the operator, accept exactly: THRESHOLD [for SECONDS] [warn|crit].
  std::vector<std::string> tokens;
  for (const std::string& token : StrSplit(rest.substr(cmp + 1), ' ')) {
    if (!StrTrim(token).empty()) tokens.push_back(std::string(StrTrim(token)));
  }
  if (tokens.empty()) return ParseError(original, "missing threshold");
  if (!ParseNumber(tokens[0], &rule.threshold)) {
    return ParseError(original, "threshold is not a number");
  }
  size_t i = 1;
  if (i < tokens.size() && tokens[i] == "for") {
    if (i + 1 >= tokens.size() || !ParseNumber(tokens[i + 1], &rule.for_seconds) ||
        rule.for_seconds < 0.0) {
      return ParseError(original, "`for` needs a non-negative duration in seconds");
    }
    i += 2;
  }
  if (i < tokens.size()) {
    if (tokens[i] == "warn") {
      rule.severity = AlertSeverity::kWarning;
    } else if (tokens[i] == "crit") {
      rule.severity = AlertSeverity::kCritical;
    } else {
      return ParseError(original, "trailing tokens (expected `for N`, `warn` or `crit`)");
    }
    ++i;
  }
  if (i < tokens.size()) return ParseError(original, "trailing tokens after severity");
  return rule;
}

Result<std::vector<AlertRule>> ParseAlertRules(std::string_view text) {
  std::vector<AlertRule> rules;
  for (const std::string& segment : StrSplit(text, ';')) {
    if (StrTrim(segment).empty()) continue;
    Result<AlertRule> rule = ParseAlertRule(segment);
    if (!rule.ok()) return rule.status();
    rules.push_back(std::move(rule).value());
  }
  return rules;
}

namespace {

std::string SeriesKey(const std::string& name, const MetricsRegistry::Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  out += '}';
  return out;
}

/// Every rule label must appear (same key and value) in the series labels.
bool LabelsMatch(const MetricsRegistry::Labels& rule_labels,
                 const MetricsRegistry::Labels& series_labels) {
  for (const auto& want : rule_labels) {
    bool found = false;
    for (const auto& have : series_labels) {
      if (have == want) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool Violates(const AlertRule& rule, double value) {
  return rule.comparison == AlertComparison::kAbove ? value > rule.threshold
                                                    : value < rule.threshold;
}

void EvaluateRuleOnSeries(const AlertRule& rule,
                          const MetricsRegistry::SeriesSnapshot& snapshot,
                          std::vector<AlertIncident>* incidents) {
  const AlertIncident none;
  AlertIncident current = none;
  bool in_streak = false;
  bool fired = false;
  auto flush = [&]() {
    if (in_streak && fired) incidents->push_back(current);
    current = none;
    in_streak = false;
    fired = false;
  };
  for (const TimeSeries::Sample& sample : snapshot.samples) {
    if (!Violates(rule, sample.value)) {
      flush();
      continue;
    }
    if (!in_streak) {
      in_streak = true;
      current.rule = rule.name;
      current.series_key = SeriesKey(snapshot.name, snapshot.labels);
      current.severity = rule.severity;
      current.first_at = sample.time;
      current.peak_value = sample.value;
    }
    current.last_at = sample.time;
    current.duration = current.last_at - current.first_at;
    ++current.samples;
    if (rule.comparison == AlertComparison::kAbove) {
      current.peak_value = std::max(current.peak_value, sample.value);
    } else {
      current.peak_value = std::min(current.peak_value, sample.value);
    }
    if (current.duration >= rule.for_seconds) fired = true;
  }
  flush();
}

}  // namespace

HealthReport EvaluateHealth(const MetricsRegistry& registry,
                            const std::vector<AlertRule>& rules) {
  HealthReport report;
  report.rules = rules;
  report.series = registry.SnapshotTimeSeries();
  const std::vector<MetricsRegistry::SeriesSnapshot> gauges = registry.SnapshotGauges();
  for (const AlertRule& rule : rules) {
    for (const auto& snapshot : report.series) {
      if (snapshot.name != rule.series) continue;
      if (!LabelsMatch(rule.labels, snapshot.labels)) continue;
      EvaluateRuleOnSeries(rule, snapshot, &report.incidents);
    }
    for (const auto& snapshot : gauges) {
      if (snapshot.name != rule.series) continue;
      if (!LabelsMatch(rule.labels, snapshot.labels)) continue;
      EvaluateRuleOnSeries(rule, snapshot, &report.incidents);
    }
  }
  // Deterministic order regardless of rule order: by onset time, then rule.
  std::stable_sort(report.incidents.begin(), report.incidents.end(),
                   [](const AlertIncident& a, const AlertIncident& b) {
                     if (a.first_at != b.first_at) return a.first_at < b.first_at;
                     if (a.rule != b.rule) return a.rule < b.rule;
                     return a.series_key < b.series_key;
                   });
  for (const AlertIncident& incident : report.incidents) {
    if (incident.severity == AlertSeverity::kCritical) report.healthy = false;
  }
  return report;
}

json::Value HealthReport::ToJson() const {
  json::Value out = json::Value::MakeObject();
  out.Set("healthy", json::Value::Bool(healthy));
  json::Value rule_list = json::Value::MakeArray();
  for (const AlertRule& rule : rules) {
    rule_list.Append(json::Value::String(rule.ToString()));
  }
  out.Set("rules", std::move(rule_list));
  json::Value incident_list = json::Value::MakeArray();
  for (const AlertIncident& incident : incidents) {
    json::Value entry = json::Value::MakeObject();
    entry.Set("rule", json::Value::String(incident.rule));
    entry.Set("series", json::Value::String(incident.series_key));
    entry.Set("severity", json::Value::String(AlertSeverityName(incident.severity)));
    entry.Set("first_at_seconds", json::Value::Number(incident.first_at));
    entry.Set("last_at_seconds", json::Value::Number(incident.last_at));
    entry.Set("duration_seconds", json::Value::Number(incident.duration));
    entry.Set("peak_value", json::Value::Number(incident.peak_value));
    entry.Set("samples", json::Value::Int(static_cast<int64_t>(incident.samples)));
    incident_list.Append(std::move(entry));
  }
  out.Set("incidents", std::move(incident_list));
  json::Value series_list = json::Value::MakeArray();
  for (const MetricsRegistry::SeriesSnapshot& snapshot : series) {
    json::Value entry = json::Value::MakeObject();
    entry.Set("name", json::Value::String(snapshot.name));
    if (!snapshot.labels.empty()) {
      json::Value labels = json::Value::MakeObject();
      for (const auto& [k, v] : snapshot.labels) labels.Set(k, json::Value::String(v));
      entry.Set("labels", std::move(labels));
    }
    json::Value samples = json::Value::MakeArray();
    for (const TimeSeries::Sample& s : snapshot.samples) {
      json::Value pair = json::Value::MakeArray();
      pair.Append(json::Value::Number(s.time));
      pair.Append(json::Value::Number(s.value));
      samples.Append(std::move(pair));
    }
    entry.Set("samples", std::move(samples));
    series_list.Append(std::move(entry));
  }
  out.Set("series", std::move(series_list));
  return out;
}

std::string HealthReport::ToString() const {
  std::string out = StrFormat("health: %s (%zu rule%s, %zu incident%s)\n",
                              healthy ? "OK" : "UNHEALTHY", rules.size(),
                              rules.size() == 1 ? "" : "s", incidents.size(),
                              incidents.size() == 1 ? "" : "s");
  for (const AlertIncident& incident : incidents) {
    out += StrFormat("  [%s] %s on %s: peak=%g over [%g, %g] (%llu sample%s)\n",
                     AlertSeverityName(incident.severity), incident.rule.c_str(),
                     incident.series_key.c_str(), incident.peak_value, incident.first_at,
                     incident.last_at, static_cast<unsigned long long>(incident.samples),
                     incident.samples == 1 ? "" : "s");
  }
  return out;
}

void EmitAlertEvents(TraceRecorder* recorder, const HealthReport& report) {
  if (recorder == nullptr) return;
  for (const AlertIncident& incident : report.incidents) {
    recorder->Instant(EventName::kAlert, incident.first_at, /*pe=*/-1, /*replica=*/-1,
                      /*host=*/-1, /*port=*/-1, incident.peak_value);
  }
}

}  // namespace laar::obs
