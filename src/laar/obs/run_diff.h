#ifndef LAAR_OBS_RUN_DIFF_H_
#define LAAR_OBS_RUN_DIFF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "laar/common/result.h"
#include "laar/json/json.h"

namespace laar::obs {

/// The comparison of two run artifacts (the `--metrics-out` JSON written by
/// `laar_simulate`: a metrics registry plus optional "loss_ledger" and
/// "run_info" stamps). Scalars (counters, gauges, histogram count/sum) are
/// matched by name + labels; timeseries compare point count, sum, and peak.
struct DiffReport {
  /// Workload keys on which the stamped RunInfos differ. Flag-only
  /// differences are treated as the A/B intervention (comparing placements
  /// or strategies on the same seed) and noted in the verdict; a differing
  /// tool, seed, or build makes the verdict "incomparable".
  std::vector<std::string> workload_mismatches;
  bool has_run_info = false;  ///< both inputs carried "run_info"

  struct Delta {
    std::string key;  ///< "name{label=value,...}" (+ ".count"/".sum" for histograms)
    double a = 0.0;
    double b = 0.0;
    bool in_a = true;
    bool in_b = true;
  };
  std::vector<Delta> scalars;  ///< differing or one-sided scalar entries
  size_t scalars_compared = 0;

  struct SeriesDelta {
    std::string key;
    size_t points_a = 0, points_b = 0;
    double sum_a = 0.0, sum_b = 0.0;
    double peak_a = 0.0, peak_b = 0.0;
    bool in_a = true, in_b = true;
  };
  std::vector<SeriesDelta> series;  ///< differing timeseries
  size_t series_compared = 0;

  struct LossDelta {
    std::string key;  ///< cause name, or "cause/pe<P>" for per-PE rows
    uint64_t a = 0;
    uint64_t b = 0;
  };
  std::vector<LossDelta> losses;  ///< differing ledger entries
  bool has_ledger = false;        ///< both inputs carried "loss_ledger"
  uint64_t lost_a = 0, lost_b = 0;  ///< ledger grand totals

  /// One-line outcome, e.g. "B loses 1040 fewer tuple copies than A
  /// (1219 -> 179, -85.3%); 14/96 metrics differ".
  std::string verdict;

  json::Value ToJson() const;
  std::string ToString() const;  ///< one-screen human rendering
};

/// Diffs two run artifacts. Deterministic: entries sort by key. Fails only
/// on malformed input, never on disagreement — disagreements are the output.
Result<DiffReport> DiffRuns(const json::Value& run_a, const json::Value& run_b);

}  // namespace laar::obs

#endif  // LAAR_OBS_RUN_DIFF_H_
