#include "laar/obs/latency_tracer.h"

#include <algorithm>
#include <map>

#include "laar/common/rng.h"
#include "laar/common/strings.h"

namespace laar::obs {

const char* HopKindName(HopKind kind) {
  switch (kind) {
    case HopKind::kEnqueue:
      return "enqueue";
    case HopKind::kDequeue:
      return "dequeue";
    case HopKind::kProcess:
      return "process";
    case HopKind::kEmit:
      return "emit";
    case HopKind::kSuppress:
      return "suppress";
    case HopKind::kDrop:
      return "drop";
    case HopKind::kShed:
      return "shed";
    case HopKind::kSink:
      return "sink";
  }
  return "unknown";
}

namespace {

/// One-shot avalanche of the (seed, source, index) triple. A stateless hash
/// rather than a per-source stream keeps the decision independent of how
/// source emissions interleave with everything else.
uint64_t SampleHash(uint64_t seed, int32_t source, uint64_t index) {
  const uint64_t mix = seed ^
                       (static_cast<uint64_t>(source + 1) * 0x9E3779B97F4A7C15ULL) ^
                       (index * 0xBF58476D1CE4E5B9ULL);
  return SplitMix64(mix).Next();
}

}  // namespace

LatencyTracer::LatencyTracer(const Options& options) : options_(options) {
  options_.sample_rate = std::clamp(options_.sample_rate, 0.0, 1.0);
  if (options_.sample_rate >= 1.0) {
    threshold_ = UINT64_MAX;
  } else {
    threshold_ = static_cast<uint64_t>(options_.sample_rate * 18446744073709551616.0);
  }
  spans_.reserve(std::min<size_t>(options_.max_spans, 1024));
  hops_.reserve(std::min<size_t>(options_.max_hops, 4096));
}

uint32_t LatencyTracer::SampleRoot(int32_t source, double time) {
  if (!enabled()) return 0;
  const size_t slot = source < 0 ? 0 : static_cast<size_t>(source);
  if (slot >= source_emitted_.size()) source_emitted_.resize(slot + 1, 0);
  const uint64_t index = source_emitted_[slot]++;
  if (options_.sample_rate < 1.0 &&
      SampleHash(options_.seed, source, index) >= threshold_) {
    return 0;
  }
  ++sampled_roots_;
  if (spans_.size() >= options_.max_spans) {
    ++truncated_roots_;
    return 0;
  }
  Span span;
  span.trace_id = (static_cast<uint64_t>(source + 1) << 40) | index;
  span.start = time;
  span.root_start = time;
  span.parent = 0;
  span.component = source;
  spans_.push_back(span);
  return static_cast<uint32_t>(spans_.size());
}

uint32_t LatencyTracer::Fork(uint32_t parent, int32_t component, double time) {
  if (parent == 0 || parent > spans_.size()) return 0;
  if (spans_.size() >= options_.max_spans) {
    ++dropped_hops_;
    return 0;
  }
  const Span& from = spans_[parent - 1];
  Span span;
  span.trace_id = from.trace_id;
  span.start = time;
  span.root_start = from.root_start;
  span.parent = parent;
  span.component = component;
  spans_.push_back(span);
  return static_cast<uint32_t>(spans_.size());
}

void LatencyTracer::RecordHop(uint32_t span, HopKind kind, double time, double duration,
                              int32_t component, int32_t replica, int32_t host,
                              int32_t port) {
  if (span == 0 || span > spans_.size()) return;
  if (hops_.size() >= options_.max_hops) {
    ++dropped_hops_;
    return;
  }
  Hop hop;
  hop.time = time;
  hop.duration = kind == HopKind::kSink ? time - spans_[span - 1].root_start : duration;
  hop.span = span;
  hop.kind = kind;
  hop.component = component;
  hop.replica = replica;
  hop.host = host;
  hop.port = port;
  hops_.push_back(hop);
}

const Span* LatencyTracer::FindSpan(uint32_t handle) const {
  if (handle == 0 || handle > spans_.size()) return nullptr;
  return &spans_[handle - 1];
}

std::string LatencyTracer::PathOf(uint32_t handle) const {
  std::vector<int32_t> components;
  while (handle != 0 && handle <= spans_.size()) {
    const Span& span = spans_[handle - 1];
    components.push_back(span.component);
    handle = span.parent;
  }
  std::string path;
  for (auto it = components.rbegin(); it != components.rend(); ++it) {
    if (!path.empty()) path += '>';
    path += std::to_string(*it);
  }
  return path;
}

LatencyBreakdown LatencyTracer::Breakdown() const {
  LatencyBreakdown out;
  out.sampled_roots = sampled_roots_;
  out.spans = spans_.size();
  out.hops = hops_.size();

  std::map<int32_t, OperatorLatency> operators;
  std::map<std::string, PathLatency> paths;
  for (const Hop& hop : hops_) {
    switch (hop.kind) {
      case HopKind::kDequeue: {
        OperatorLatency& op = operators[hop.component];
        op.component = hop.component;
        op.queue_wait.Add(hop.duration);
        break;
      }
      case HopKind::kProcess: {
        OperatorLatency& op = operators[hop.component];
        op.component = hop.component;
        op.service.Add(hop.duration);
        break;
      }
      case HopKind::kDrop:
      case HopKind::kShed: {
        OperatorLatency& op = operators[hop.component];
        op.component = hop.component;
        ++op.drops;
        break;
      }
      case HopKind::kSuppress: {
        OperatorLatency& op = operators[hop.component];
        op.component = hop.component;
        ++op.suppressed;
        break;
      }
      case HopKind::kSink: {
        ++out.sink_arrivals;
        out.end_to_end.Add(hop.duration);
        std::string path = PathOf(hop.span);
        path += '>';
        path += std::to_string(hop.component);
        PathLatency& pl = paths[path];
        pl.path = path;
        pl.end_to_end.Add(hop.duration);
        break;
      }
      case HopKind::kEnqueue:
      case HopKind::kEmit:
        break;
    }
  }
  out.operators.reserve(operators.size());
  for (auto& [component, op] : operators) out.operators.push_back(std::move(op));
  out.paths.reserve(paths.size());
  for (auto& [path, pl] : paths) out.paths.push_back(std::move(pl));
  return out;
}

std::string LatencyBreakdown::ToString() const {
  std::string out = StrFormat(
      "sampled latency breakdown: %llu roots, %llu spans, %llu hops, %llu sink "
      "arrivals\n",
      static_cast<unsigned long long>(sampled_roots),
      static_cast<unsigned long long>(spans), static_cast<unsigned long long>(hops),
      static_cast<unsigned long long>(sink_arrivals));
  if (!operators.empty()) {
    out +=
        "  operator |     n |  queue p50 |  queue p95 |  queue p99 |  "
        "svc p50 |  svc p95 |  svc p99 | drops | dedup\n";
    for (const OperatorLatency& op : operators) {
      out += StrFormat(
          "  %8d | %5zu | %10.6f | %10.6f | %10.6f | %8.6f | %8.6f | %8.6f | %5llu | "
          "%5llu\n",
          op.component, op.queue_wait.count(), op.queue_wait.Percentile(50.0),
          op.queue_wait.Percentile(95.0), op.queue_wait.Percentile(99.0),
          op.service.Percentile(50.0), op.service.Percentile(95.0),
          op.service.Percentile(99.0), static_cast<unsigned long long>(op.drops),
          static_cast<unsigned long long>(op.suppressed));
    }
  }
  if (!paths.empty()) {
    out += "  path latencies (end-to-end seconds):\n";
    for (const PathLatency& pl : paths) {
      out += StrFormat("    %-20s n=%-5zu p50=%.6f p95=%.6f p99=%.6f\n", pl.path.c_str(),
                       pl.end_to_end.count(), pl.end_to_end.Percentile(50.0),
                       pl.end_to_end.Percentile(95.0), pl.end_to_end.Percentile(99.0));
    }
  }
  if (end_to_end.count() > 0) {
    out += StrFormat("  end-to-end: n=%zu p50=%.6f p95=%.6f p99=%.6f mean=%.6f\n",
                     end_to_end.count(), end_to_end.Percentile(50.0),
                     end_to_end.Percentile(95.0), end_to_end.Percentile(99.0),
                     end_to_end.mean());
  }
  return out;
}

namespace {

json::Value PercentilesJson(const SampleStats& stats) {
  json::Value out = json::Value::MakeObject();
  out.Set("count", json::Value::Int(static_cast<int64_t>(stats.count())));
  out.Set("p50", json::Value::Number(stats.Percentile(50.0)));
  out.Set("p95", json::Value::Number(stats.Percentile(95.0)));
  out.Set("p99", json::Value::Number(stats.Percentile(99.0)));
  out.Set("mean", json::Value::Number(stats.mean()));
  return out;
}

}  // namespace

json::Value LatencyBreakdown::ToJson() const {
  json::Value out = json::Value::MakeObject();
  out.Set("sampled_roots", json::Value::Int(static_cast<int64_t>(sampled_roots)));
  out.Set("spans", json::Value::Int(static_cast<int64_t>(spans)));
  out.Set("hops", json::Value::Int(static_cast<int64_t>(hops)));
  out.Set("sink_arrivals", json::Value::Int(static_cast<int64_t>(sink_arrivals)));
  json::Value ops = json::Value::MakeArray();
  for (const OperatorLatency& op : operators) {
    json::Value entry = json::Value::MakeObject();
    entry.Set("component", json::Value::Int(op.component));
    entry.Set("queue_wait_seconds", PercentilesJson(op.queue_wait));
    entry.Set("service_seconds", PercentilesJson(op.service));
    entry.Set("drops", json::Value::Int(static_cast<int64_t>(op.drops)));
    entry.Set("suppressed", json::Value::Int(static_cast<int64_t>(op.suppressed)));
    ops.Append(std::move(entry));
  }
  out.Set("operators", std::move(ops));
  json::Value path_list = json::Value::MakeArray();
  for (const PathLatency& pl : paths) {
    json::Value entry = json::Value::MakeObject();
    entry.Set("path", json::Value::String(pl.path));
    entry.Set("end_to_end_seconds", PercentilesJson(pl.end_to_end));
    path_list.Append(std::move(entry));
  }
  out.Set("paths", std::move(path_list));
  out.Set("end_to_end_seconds", PercentilesJson(end_to_end));
  return out;
}

void PublishBreakdown(MetricsRegistry* registry, const LatencyBreakdown& breakdown,
                      const MetricsRegistry::Labels& labels) {
  if (registry == nullptr) return;
  auto set_gauge = [&](const std::string& name, const MetricsRegistry::Labels& extra,
                       double value) {
    MetricsRegistry::Labels merged = labels;
    merged.insert(merged.end(), extra.begin(), extra.end());
    if (Gauge* g = registry->GetGauge(name, merged); g != nullptr) g->Set(value);
  };
  set_gauge("trace_sampled_roots", {}, static_cast<double>(breakdown.sampled_roots));
  set_gauge("trace_sink_arrivals", {}, static_cast<double>(breakdown.sink_arrivals));
  set_gauge("trace_e2e_p50_seconds", {}, breakdown.end_to_end.Percentile(50.0));
  set_gauge("trace_e2e_p95_seconds", {}, breakdown.end_to_end.Percentile(95.0));
  set_gauge("trace_e2e_p99_seconds", {}, breakdown.end_to_end.Percentile(99.0));
  for (const OperatorLatency& op : breakdown.operators) {
    const MetricsRegistry::Labels pe = {{"pe", std::to_string(op.component)}};
    set_gauge("trace_queue_p50_seconds", pe, op.queue_wait.Percentile(50.0));
    set_gauge("trace_queue_p95_seconds", pe, op.queue_wait.Percentile(95.0));
    set_gauge("trace_queue_p99_seconds", pe, op.queue_wait.Percentile(99.0));
    set_gauge("trace_service_p50_seconds", pe, op.service.Percentile(50.0));
    set_gauge("trace_service_p95_seconds", pe, op.service.Percentile(95.0));
    set_gauge("trace_service_p99_seconds", pe, op.service.Percentile(99.0));
    set_gauge("trace_dropped_tuples", pe, static_cast<double>(op.drops));
    set_gauge("trace_suppressed_tuples", pe, static_cast<double>(op.suppressed));
  }
}

}  // namespace laar::obs
