#ifndef LAAR_OBS_TIMESERIES_H_
#define LAAR_OBS_TIMESERIES_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace laar::obs {

/// A bounded sequence of (time, value) samples — the storage behind the
/// telemetry layer's periodic snapshots (per-host CPU utilization, queue
/// depths, drop/output rates over simulation time). Appends are O(1); once
/// `capacity` samples are held the oldest is overwritten, so memory stays
/// bounded no matter how long the run while the most recent history survives
/// for plotting and health-rule evaluation.
///
/// Thread-safe like the other registry metric types: corpus workers publish
/// to disjoint label sets (one writer per series), but snapshots may race
/// with appends.
class TimeSeries {
 public:
  struct Sample {
    double time = 0.0;
    double value = 0.0;
  };

  explicit TimeSeries(size_t capacity);

  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  void Append(double time, double value);

  /// Stored samples in append order (oldest surviving first).
  std::vector<Sample> Samples() const;

  size_t size() const;
  size_t capacity() const;
  /// Samples appended since construction (including evicted ones).
  uint64_t total_appended() const;
  /// Samples evicted because the ring was full.
  uint64_t overwritten() const;

 private:
  mutable std::mutex mu_;
  std::vector<Sample> ring_;
  size_t head_ = 0;  ///< index of the oldest stored sample
  size_t size_ = 0;
  uint64_t total_appended_ = 0;
};

}  // namespace laar::obs

#endif  // LAAR_OBS_TIMESERIES_H_
