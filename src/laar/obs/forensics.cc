#include "laar/obs/forensics.h"

#include <algorithm>
#include <map>
#include <set>

#include "laar/common/strings.h"
#include "laar/obs/loss_ledger.h"

namespace laar::obs {

namespace {

/// The subset of a trace event the forensic pass needs.
struct FlatEvent {
  double time = 0.0;  // seconds
  std::string name;
  std::string category;
  int32_t host = -1;  // pid - 1; -1 for the control process
  int32_t pe = -1;
  uint64_t count = 1;  // loss events: tuple copies (args.value when > 0)
};

/// One host's crash→recovery window on the trace. Overlapping crash
/// injections merge inside the simulation, so at most one window per host
/// is open at a time; a crash while down extends the same window.
struct HostWindow {
  int32_t host = -1;
  double begin = 0.0;
  double end = 0.0;
  bool recovered = false;
};

}  // namespace

json::Value Incident::ToJson() const {
  json::Value doc = json::Value::MakeObject();
  doc.Set("cause", json::Value::String(cause));
  doc.Set("begin_seconds", json::Value::Number(begin));
  doc.Set("end_seconds", json::Value::Number(end));
  doc.Set("recovery_seconds", json::Value::Number(RecoverySeconds()));
  doc.Set("recovered", json::Value::Bool(recovered));
  json::Value host_list = json::Value::MakeArray();
  for (int32_t host : hosts) host_list.Append(json::Value::Int(host));
  doc.Set("hosts", std::move(host_list));
  json::Value pe_list = json::Value::MakeArray();
  for (int32_t pe : pes) pe_list.Append(json::Value::Int(pe));
  doc.Set("pes", std::move(pe_list));
  doc.Set("tuples_lost", json::Value::Int(static_cast<int64_t>(tuples_lost)));
  doc.Set("collateral_lost",
          json::Value::Int(static_cast<int64_t>(collateral_lost)));
  doc.Set("alerts", json::Value::Int(static_cast<int64_t>(alerts)));
  doc.Set("config_changes", json::Value::Int(static_cast<int64_t>(config_changes)));
  return doc;
}

json::Value ForensicsReport::ToJson() const {
  json::Value doc = json::Value::MakeObject();
  json::Value list = json::Value::MakeArray();
  for (const Incident& incident : incidents) list.Append(incident.ToJson());
  doc.Set("incidents", std::move(list));
  doc.Set("attributed_lost", json::Value::Int(static_cast<int64_t>(attributed_lost)));
  doc.Set("unattributed_lost",
          json::Value::Int(static_cast<int64_t>(unattributed_lost)));
  if (has_ledger) {
    doc.Set("ledger_total", json::Value::Int(static_cast<int64_t>(ledger_total)));
    doc.Set("ledger_crash_attributed",
            json::Value::Int(static_cast<int64_t>(ledger_crash_attributed)));
  }
  if (trace_dropped_events > 0) {
    doc.Set("trace_dropped_events",
            json::Value::Int(static_cast<int64_t>(trace_dropped_events)));
  }
  doc.Set("reconciled", json::Value::Bool(reconciled));
  return doc;
}

std::string ForensicsReport::ToString() const {
  std::string out = StrFormat(
      "forensics: %zu incident%s, %llu tuple cop%s lost to failures",
      incidents.size(), incidents.size() == 1 ? "" : "s",
      static_cast<unsigned long long>(attributed_lost),
      attributed_lost == 1 ? "y" : "ies");
  if (unattributed_lost > 0) {
    out += StrFormat(" (+%llu unattributed)",
                     static_cast<unsigned long long>(unattributed_lost));
  }
  out += "\n";
  if (has_ledger) {
    out += StrFormat("ledger: %llu lost total, %llu crash-attributed — %s\n",
                     static_cast<unsigned long long>(ledger_total),
                     static_cast<unsigned long long>(ledger_crash_attributed),
                     reconciled ? "reconciles with trace"
                                : "DOES NOT reconcile with trace");
  }
  if (trace_dropped_events > 0) {
    out += StrFormat("warning: trace ring dropped %llu events; counts are partial\n",
                     static_cast<unsigned long long>(trace_dropped_events));
  }
  size_t index = 0;
  for (const Incident& incident : incidents) {
    std::string hosts;
    for (int32_t host : incident.hosts) {
      if (!hosts.empty()) hosts += ',';
      hosts += std::to_string(host);
    }
    std::string pes;
    for (int32_t pe : incident.pes) {
      if (!pes.empty()) pes += ',';
      pes += std::to_string(pe);
    }
    out += StrFormat("#%zu %-13s hosts=[%s] t=[%.3f, %.3f]s recovery=%.3fs%s\n",
                     ++index, incident.cause.c_str(), hosts.c_str(),
                     incident.begin, incident.end, incident.RecoverySeconds(),
                     incident.recovered ? "" : " (never recovered)");
    out += StrFormat("    lost=%llu collateral=%llu pes=[%s] alerts=%zu "
                     "config_changes=%zu\n",
                     static_cast<unsigned long long>(incident.tuples_lost),
                     static_cast<unsigned long long>(incident.collateral_lost),
                     pes.c_str(), incident.alerts, incident.config_changes);
  }
  return out;
}

Result<ForensicsReport> AnalyzeChromeTrace(const json::Value& trace) {
  if (!trace.is_object()) {
    return Status::InvalidArgument("trace must be a JSON object");
  }
  LAAR_ASSIGN_OR_RETURN(const json::Value* raw_events, trace.Get("traceEvents"));
  if (!raw_events->is_array()) {
    return Status::InvalidArgument("'traceEvents' must be an array");
  }

  std::vector<FlatEvent> events;
  events.reserve(raw_events->array().size());
  for (const json::Value& event : raw_events->array()) {
    if (!event.is_object()) continue;
    const std::string phase =
        event.GetOr("ph", json::Value::String("")).string_value();
    if (phase == "M") continue;
    FlatEvent flat;
    flat.name = event.GetOr("name", json::Value::String("")).string_value();
    flat.category = event.GetOr("cat", json::Value::String("")).string_value();
    const json::Value ts = event.GetOr("ts", json::Value::Number(0.0));
    if (!ts.is_number()) continue;
    flat.time = ts.number_value() / 1e6;
    const auto pid = event.GetOr("pid", json::Value::Int(0)).AsInt();
    flat.host = pid.ok() ? static_cast<int32_t>(*pid) - 1 : -1;
    const json::Value args = event.GetOr("args", json::Value::MakeObject());
    const auto pe = args.GetOr("pe", json::Value::Int(-1)).AsInt();
    if (pe.ok()) flat.pe = static_cast<int32_t>(*pe);
    const json::Value value = args.GetOr("value", json::Value::Number(0.0));
    if (value.is_number() && value.number_value() >= 1.0) {
      flat.count = static_cast<uint64_t>(value.number_value());
    }
    events.push_back(std::move(flat));
  }
  // The exporter writes events time-sorted; re-sorting makes the pass
  // robust to filtered or hand-assembled traces. Stable: same-time events
  // keep file order (crash before its same-instant losses).
  std::stable_sort(events.begin(), events.end(),
                   [](const FlatEvent& a, const FlatEvent& b) { return a.time < b.time; });
  double horizon = 0.0;
  for (const FlatEvent& event : events) horizon = std::max(horizon, event.time);

  // Pass 1: per-host crash→recovery windows.
  std::vector<HostWindow> windows;
  std::map<int32_t, size_t> open;  // host -> index into windows
  for (const FlatEvent& event : events) {
    if (event.name == "host_crash" && event.host >= 0) {
      if (open.count(event.host) != 0) continue;  // merged overlapping window
      HostWindow window;
      window.host = event.host;
      window.begin = event.time;
      window.end = horizon;
      open[event.host] = windows.size();
      windows.push_back(window);
    } else if (event.name == "host_recover" && event.host >= 0) {
      const auto it = open.find(event.host);
      if (it == open.end()) continue;  // orphan recover; the validator flags it
      windows[it->second].end = event.time;
      windows[it->second].recovered = true;
      open.erase(it);
    }
  }

  // Pass 2: windows opening at the same instant are one incident —
  // that simultaneity is the trace signature of a correlated (domain)
  // outage, injected or drawn.
  std::map<double, std::vector<size_t>> by_begin;
  for (size_t i = 0; i < windows.size(); ++i) by_begin[windows[i].begin].push_back(i);
  ForensicsReport report;
  for (const auto& [begin, group] : by_begin) {
    Incident incident;
    incident.begin = begin;
    incident.end = begin;
    for (size_t index : group) {
      incident.hosts.push_back(windows[index].host);
      incident.end = std::max(incident.end, windows[index].end);
      if (!windows[index].recovered) incident.recovered = false;
    }
    std::sort(incident.hosts.begin(), incident.hosts.end());
    incident.cause = incident.hosts.size() >= 2 ? "domain_outage" : "host_crash";
    report.incidents.push_back(std::move(incident));
  }

  // Pass 3: attribute losses and evidence. Crash-attributed losses
  // (dead-replica input, orphaned outputs) belong to the most recent
  // incident that began at or before them — they trail past the recovery
  // instant (failover and resync windows outlive the outage). Collateral
  // and evidence are confined to the incident's own [begin, end].
  std::vector<std::set<int32_t>> incident_pes(report.incidents.size());
  for (const FlatEvent& event : events) {
    const bool crash_attributed =
        event.name == "tuple_crash_loss" || event.name == "tuple_orphan";
    const bool collateral = event.name == "tuple_drop" || event.name == "tuple_shed";
    const bool alert = event.name == "alert";
    const bool config = event.category == "config";
    if (!crash_attributed && !collateral && !alert && !config) continue;
    // Most recent incident with begin <= event time.
    size_t owner = report.incidents.size();
    for (size_t i = 0; i < report.incidents.size(); ++i) {
      if (report.incidents[i].begin <= event.time) owner = i;
    }
    if (crash_attributed) {
      if (owner == report.incidents.size()) {
        report.unattributed_lost += event.count;
      } else {
        report.incidents[owner].tuples_lost += event.count;
        report.attributed_lost += event.count;
        if (event.pe >= 0) incident_pes[owner].insert(event.pe);
      }
      continue;
    }
    if (owner == report.incidents.size() ||
        event.time > report.incidents[owner].end) {
      continue;  // outside any incident window
    }
    if (collateral) report.incidents[owner].collateral_lost += event.count;
    if (alert) ++report.incidents[owner].alerts;
    if (config) ++report.incidents[owner].config_changes;
  }
  for (size_t i = 0; i < report.incidents.size(); ++i) {
    report.incidents[i].pes.assign(incident_pes[i].begin(), incident_pes[i].end());
  }

  // Reconcile against the embedded ledger, if the producer stamped one.
  if (const auto ledger_json = trace.Get("laarLossLedger"); ledger_json.ok()) {
    LAAR_ASSIGN_OR_RETURN(const LossLedger ledger,
                          LossLedger::FromJson(**ledger_json));
    report.has_ledger = true;
    report.ledger_total = ledger.Total();
    report.ledger_crash_attributed = ledger.TotalOf(LossCause::kCrashLoss) +
                                     ledger.TotalOf(LossCause::kOrphanedOutput);
  }
  const auto dropped = trace.GetOr("laarDroppedEvents", json::Value::Int(0)).AsInt();
  if (dropped.ok() && *dropped > 0) {
    report.trace_dropped_events = static_cast<uint64_t>(*dropped);
  }
  if (report.has_ledger) {
    report.reconciled = report.attributed_lost + report.unattributed_lost ==
                        report.ledger_crash_attributed;
  }
  return report;
}

}  // namespace laar::obs
