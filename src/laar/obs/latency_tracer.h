#ifndef LAAR_OBS_LATENCY_TRACER_H_
#define LAAR_OBS_LATENCY_TRACER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "laar/common/stats.h"
#include "laar/json/json.h"
#include "laar/obs/metrics_registry.h"

namespace laar::obs {

/// Where in a sampled tuple's life a hop timestamp was taken.
enum class HopKind : uint8_t {
  kEnqueue = 0,  ///< accepted into a replica's input queue
  kDequeue,      ///< left the queue; duration = queueing wait
  kProcess,      ///< processing finished; duration = service time
  kEmit,         ///< the primary forwarded output downstream (span forked)
  kSuppress,     ///< a non-primary finished; its output was deduplicated
  kDrop,         ///< lost to queue overflow
  kShed,         ///< lost to load shedding
  kSink,         ///< reached a sink; duration = end-to-end latency
};

const char* HopKindName(HopKind kind);

/// One timestamped step of a sampled tuple, tied to a span.
struct Hop {
  double time = 0.0;
  double duration = 0.0;  ///< kDequeue: wait; kProcess: service; kSink: e2e
  uint32_t span = 0;
  HopKind kind = HopKind::kEnqueue;
  int32_t component = -1;
  int32_t replica = -1;
  int32_t host = -1;
  int32_t port = -1;
};

/// One node of a sampled trace's span tree: a logical tuple between two
/// components. The root span is the sampled source emission; every
/// downstream forward forks a child span per emitted tuple, so following
/// `parent` links reconstructs the exact component path of any hop. The k
/// replicas of a PE share the span of the tuple they all received (their
/// hops differ in the replica field) — active replication's proxy semantics
/// made visible.
struct Span {
  uint64_t trace_id = 0;   ///< stable id of the whole tree (root's identity)
  double start = 0.0;      ///< creation (source emission / fork) time
  double root_start = 0.0; ///< the root's source-emission time
  uint32_t parent = 0;     ///< parent span handle; 0 for roots
  int32_t component = -1;  ///< component that created the tuple
};

/// Queueing-vs-processing percentiles of one operator, from sampled hops.
struct OperatorLatency {
  int32_t component = -1;
  SampleStats queue_wait;  ///< seconds between enqueue and dequeue
  SampleStats service;     ///< seconds between dequeue and completion
  uint64_t drops = 0;      ///< sampled tuples lost here (overflow + shed)
  uint64_t suppressed = 0; ///< sampled non-primary completions deduplicated
};

/// End-to-end latency of every sampled tuple that took one component path
/// (`path` = component ids root-to-sink joined by '>').
struct PathLatency {
  std::string path;
  SampleStats end_to_end;
};

/// The post-run digest of a tracer: per-operator and per-path p50/p95/p99.
struct LatencyBreakdown {
  uint64_t sampled_roots = 0;  ///< source tuples the sampler selected
  uint64_t spans = 0;          ///< span-tree nodes recorded
  uint64_t hops = 0;           ///< hop timestamps recorded
  uint64_t sink_arrivals = 0;  ///< sampled tuples that reached a sink
  std::vector<OperatorLatency> operators;  ///< sorted by component id
  std::vector<PathLatency> paths;          ///< sorted by path string
  SampleStats end_to_end;                  ///< all sink arrivals pooled

  /// Fixed-width per-operator and per-path table (the CLI report).
  std::string ToString() const;
  json::Value ToJson() const;
};

/// Deterministic sampled per-tuple causal tracing.
///
/// The simulation holds a `LatencyTracer*` that is null by default, so a
/// disabled tracer costs one pointer comparison per tuple. When enabled, a
/// seeded hash — a pure function of (seed, source, emission index), so
/// scheduling order cannot change a decision — selects `sample_rate` of each
/// source's tuples. Sampled tuples get a trace id and a root span; every
/// queueing step, processing step, forward, dedup-suppression, and drop is
/// recorded as a timestamped hop. `Breakdown()` reduces the hops to the
/// queueing-vs-processing percentiles; `chrome_trace.h` merges the span
/// trees into the Chrome trace export.
///
/// Single-writer like `TraceRecorder`: one tracer belongs to one simulation.
/// Memory is bounded by `max_spans`/`max_hops`; when either fills, *new*
/// roots stop being sampled (counted in `truncated_roots()`) so already
/// sampled tuples keep complete trees.
class LatencyTracer {
 public:
  struct Options {
    /// Fraction of each source's tuples to trace, in [0, 1]. 0 disables.
    double sample_rate = 0.0;
    /// Seed of the sampling hash; same seed => same decisions.
    uint64_t seed = 1;
    size_t max_spans = 1u << 16;
    size_t max_hops = 1u << 20;
  };

  LatencyTracer() : LatencyTracer(Options{}) {}
  explicit LatencyTracer(const Options& options);

  LatencyTracer(const LatencyTracer&) = delete;
  LatencyTracer& operator=(const LatencyTracer&) = delete;

  bool enabled() const { return options_.sample_rate > 0.0; }

  /// Sampling decision for the next tuple of `source`; every call advances
  /// that source's emission index. Returns the root span handle, or 0 when
  /// the tuple is not sampled (or the span table is full).
  uint32_t SampleRoot(int32_t source, double time);

  /// Forks a child span: the tuple `parent` emitted at `component`.
  /// Returns 0 (and records nothing) when `parent` is 0 or tables are full.
  uint32_t Fork(uint32_t parent, int32_t component, double time);

  /// Records one hop of span `span`; no-op when `span` is 0 or the hop
  /// table is full. For `kSink` the end-to-end duration is derived from the
  /// root span's start time.
  void RecordHop(uint32_t span, HopKind kind, double time, double duration,
                 int32_t component, int32_t replica, int32_t host, int32_t port);

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Hop>& hops() const { return hops_; }
  const Span* FindSpan(uint32_t handle) const;

  /// Component path of `span`, root-first, ids joined by '>' (e.g. "0>2>5").
  std::string PathOf(uint32_t handle) const;

  uint64_t sampled_roots() const { return sampled_roots_; }
  /// Tuples the sampler selected but could not trace (tables full).
  uint64_t truncated_roots() const { return truncated_roots_; }
  uint64_t dropped_hops() const { return dropped_hops_; }

  LatencyBreakdown Breakdown() const;

 private:
  Options options_;
  uint64_t threshold_ = 0;  ///< sample iff hash < threshold
  std::vector<uint64_t> source_emitted_;  ///< per-source emission index
  std::vector<Span> spans_;
  std::vector<Hop> hops_;
  uint64_t sampled_roots_ = 0;
  uint64_t truncated_roots_ = 0;
  uint64_t dropped_hops_ = 0;
};

/// Publishes a breakdown into `registry`: per-operator queueing/service
/// percentile gauges (`trace_queue_p50_seconds{pe=..}` etc.), pooled
/// end-to-end percentiles, and the sampling counters, tagged with `labels`.
void PublishBreakdown(MetricsRegistry* registry, const LatencyBreakdown& breakdown,
                      const MetricsRegistry::Labels& labels = {});

}  // namespace laar::obs

#endif  // LAAR_OBS_LATENCY_TRACER_H_
