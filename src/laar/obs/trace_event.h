#ifndef LAAR_OBS_TRACE_EVENT_H_
#define LAAR_OBS_TRACE_EVENT_H_

#include <cstdint>
#include <string>

namespace laar::obs {

/// Event categories, usable as a bitmask filter. Each trace event belongs
/// to exactly one category; a `TraceRecorder` only stores events whose
/// category is in its mask.
enum class Category : uint32_t {
  kDrops = 1u << 0,       ///< tuple drops (queue overflow, load shedding)
  kQueues = 1u << 1,      ///< queue high-watermark crossings
  kActivation = 1u << 2,  ///< replica activation switches, primary elections
  kFailures = 1u << 3,    ///< replica/host crashes and recoveries
  kConfig = 1u << 4,      ///< input-configuration and control-plane changes
  kSpans = 1u << 5,       ///< per-tuple processing spans
  kEngine = 1u << 6,      ///< event-engine backlog counters
  kTuples = 1u << 7,      ///< sampled per-tuple causal hops (latency tracer)
  kHealth = 1u << 8,      ///< alert-engine incidents
};

inline constexpr uint32_t kAllCategories = 0x1ff;

const char* CategoryName(Category category);

/// Parses a category name ("drops", "queues", ...) into its bit; returns 0
/// for unknown names.
uint32_t CategoryBitFromName(const char* name);

/// Parses a comma-separated category list ("drops,failures") into a
/// bitmask. An empty list means every category. Unknown names are skipped
/// and reported through `*ok` (set to false; true otherwise).
uint32_t ParseCategoryList(const std::string& list, bool* ok);

/// How an event renders in the Chrome trace-event format.
enum class EventPhase : uint8_t {
  kInstant = 0,  ///< "i" — a point in time
  kSpan = 1,     ///< "X" — a complete duration event
  kCounter = 2,  ///< "C" — a sampled value
};

/// Every event kind the simulation stack emits. The table in
/// `EventInfoOf` maps each kind to its display name, category, and phase.
enum class EventName : uint8_t {
  kTupleDrop = 0,       ///< queue-overflow drop
  kTupleShed,           ///< load-shedding drop
  kQueueHighWatermark,  ///< a port queue crossed its high watermark
  kReplicaActivate,     ///< activation command took effect
  kReplicaDeactivate,   ///< deactivation command took effect
  kPrimaryElected,      ///< a PE elected a (new) primary; value = index
  kReplicaCrash,        ///< replica died (host crash or injected failure)
  kReplicaRecover,      ///< replica re-joined after host recovery
  kHostCrash,           ///< transient host crash began
  kHostRecover,         ///< host recovered
  kInputConfig,         ///< the input trace switched configuration
  kConfigApplied,       ///< the HAController's target config took effect
  kControlDecision,     ///< the HAController decided to reconfigure
  kProcessSpan,         ///< one tuple's processing on a replica
  kEngineBacklog,       ///< pending simulator events (sampled)
  kTupleEnqueue,        ///< sampled tuple accepted into an input queue
  kTupleQueuedSpan,     ///< sampled tuple's queueing wait (span)
  kTupleProcessSpan,    ///< sampled tuple's service time (span)
  kTupleEmit,           ///< sampled tuple forwarded downstream by the primary
  kTupleSuppress,       ///< sampled tuple's non-primary output deduplicated
  kTupleTracedDrop,     ///< sampled tuple lost to queue overflow
  kTupleTracedShed,     ///< sampled tuple lost to load shedding
  kTupleSink,           ///< sampled tuple reached a sink; value = e2e latency
  kAlert,               ///< a health rule fired; value = peak series value
  kTupleCrashLoss,      ///< tuple offered to a dead replica; value = count
  kTupleOrphan,         ///< non-primary output suppressed while the seated
                        ///< primary was unserviceable; value = count
  kHostOutageSpan,      ///< synthesized crash→recover window of one host
  kReplicaOutageSpan,   ///< synthesized crash→recover window of one replica
  kCount,               ///< sentinel — number of event kinds
};

struct EventInfo {
  const char* name;
  Category category;
  EventPhase phase;
};

const EventInfo& EventInfoOf(EventName name);

/// One recorded event. Plain data, sized for a ring buffer; identifier
/// fields are -1 when not applicable. Times are simulation seconds.
struct TraceEvent {
  double time = 0.0;
  double duration = 0.0;  ///< spans only
  double value = 0.0;     ///< payload: queue depth, config id, counter value
  uint64_t trace = 0;     ///< causal trace id (sampled tuples); 0 = none
  EventName name = EventName::kTupleDrop;
  int32_t pe = -1;
  int32_t replica = -1;
  int32_t host = -1;
  int32_t port = -1;
};

}  // namespace laar::obs

#endif  // LAAR_OBS_TRACE_EVENT_H_
