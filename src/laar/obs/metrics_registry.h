#ifndef LAAR_OBS_METRICS_REGISTRY_H_
#define LAAR_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "laar/common/stats.h"
#include "laar/json/json.h"
#include "laar/obs/timeseries.h"

namespace laar::obs {

/// A monotonically increasing total.
class Counter {
 public:
  void Increment(double delta = 1.0) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A last-written-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A fixed-bin histogram metric (thread-safe wrapper over laar::Histogram,
/// with the sample sum retained so the mean survives serialization).
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, size_t bins) : histogram_(lo, hi, bins) {}

  void Observe(double value) {
    std::lock_guard<std::mutex> lock(mu_);
    histogram_.Add(value);
    sum_ += value;
  }

  /// Snapshot of the underlying histogram.
  Histogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return histogram_;
  }
  double sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }

 private:
  mutable std::mutex mu_;
  Histogram histogram_;
  double sum_ = 0.0;
};

/// A process-local registry of named, labelled metrics — the single place
/// end-of-run measurements are published to, and serialized from, so every
/// CLI/bench report draws on the same numbers instead of ad-hoc printing.
///
/// Lookup creates on first use and returns the same instance afterwards
/// (same name + labels). Returned pointers stay valid for the registry's
/// lifetime. All methods are thread-safe; counters and gauges are also
/// cheap to update concurrently from corpus workers.
class MetricsRegistry {
 public:
  /// Label set of one metric instance; order-insensitive (canonicalized by
  /// sorting on key).
  using Labels = std::vector<std::pair<std::string, std::string>>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Lookup-or-create. Returns null when `name` already exists with a
  /// different metric type (a programming error surfaced gently).
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  HistogramMetric* GetHistogram(const std::string& name, const Labels& labels, double lo,
                                double hi, size_t bins);
  TimeSeries* GetTimeSeries(const std::string& name, const Labels& labels,
                            size_t capacity);

  /// Read-only lookup; null when absent or of a different type.
  const Counter* FindCounter(const std::string& name, const Labels& labels = {}) const;
  const Gauge* FindGauge(const std::string& name, const Labels& labels = {}) const;
  const HistogramMetric* FindHistogram(const std::string& name,
                                       const Labels& labels = {}) const;
  const TimeSeries* FindTimeSeries(const std::string& name,
                                   const Labels& labels = {}) const;

  /// Point-in-time copy of one time series (or gauge, as a single-sample
  /// series at time 0) — the unit the health engine and the exporters
  /// consume without holding registry locks.
  struct SeriesSnapshot {
    std::string name;
    Labels labels;  ///< canonicalized (sorted by key)
    std::vector<TimeSeries::Sample> samples;
  };

  /// Every time-series entry, snapshotted, sorted by (name, labels) —
  /// deterministic for a given registry content.
  std::vector<SeriesSnapshot> SnapshotTimeSeries() const;

  /// Every gauge entry as a single-sample series at time 0, sorted by
  /// (name, labels). Lets threshold rules range over scalar metrics too.
  std::vector<SeriesSnapshot> SnapshotGauges() const;

  /// Cross-label roll-ups: the sum of every counter named `name`, and the
  /// max of every gauge named `name`, over all label sets (0 when none
  /// exist). Used for corpus-level run summaries.
  double SumCounters(const std::string& name) const;
  double MaxGauge(const std::string& name) const;

  /// Removes every entry carrying label `key` whose value fails `keep`;
  /// entries without the label are untouched. Returns how many entries were
  /// removed. Unlike the getters' pointers-stay-valid guarantee, pruning
  /// invalidates pointers to the removed metrics — call it only at
  /// quiescent points (e.g. after a corpus run retires speculative seeds).
  size_t PruneByLabel(const std::string& key,
                      const std::function<bool(const std::string&)>& keep);

  /// Serializes every metric, sorted by (name, labels), as
  /// {"metrics": [{"name", "labels", "type", ...}, ...]}. Deterministic for
  /// a given registry content.
  json::Value ToJson() const;

  size_t size() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
    std::unique_ptr<TimeSeries> series;
  };

  static std::string KeyOf(const std::string& name, const Labels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// Renders every time series in `registry` as CSV with the fixed header
/// `series,labels,time,value` (labels as `k=v;k=v`), rows sorted by
/// (name, labels) and then sample order — ready for gnuplot/matplotlib.
/// Deterministic for a given registry content.
std::string TimeSeriesCsv(const MetricsRegistry& registry);

/// The same export as JSON:
/// {"series": [{"name", "labels", "samples": [[t, v], ...]}, ...]}.
json::Value TimeSeriesJson(const MetricsRegistry& registry);

}  // namespace laar::obs

#endif  // LAAR_OBS_METRICS_REGISTRY_H_
