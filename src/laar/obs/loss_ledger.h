#ifndef LAAR_OBS_LOSS_LEDGER_H_
#define LAAR_OBS_LOSS_LEDGER_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "laar/common/result.h"
#include "laar/json/json.h"
#include "laar/obs/metrics_registry.h"

namespace laar::obs {

/// Why a tuple copy was lost. Every loss site in the stream simulation
/// attributes exactly one cause at the point of loss, so the causes are
/// mutually exclusive by construction and their sum is the run's total loss.
///
/// The unit is a *replica-level tuple copy* — the same unit
/// `SimulationMetrics::dropped_tuples` has always counted (a tuple offered
/// to two replicas and rejected by both counts twice). See DESIGN.md §9.
enum class LossCause : uint8_t {
  kQueueOverflow = 0,  ///< bounded input queue was full (tail drop)
  kLoadShed,           ///< RED-style shedder discarded the tuple
  kCrashLoss,          ///< offered to a dead replica (host crash or injected)
  kResyncGap,          ///< offered to a replica mid state-resync
  kOrphanedOutput,     ///< non-primary output suppressed while the seated
                       ///< primary was unserviceable (failover window)
};

inline constexpr size_t kLossCauseCount = 5;

const char* LossCauseName(LossCause cause);

/// Parses a cause name back into its enum; false for unknown names.
bool LossCauseFromName(std::string_view name, LossCause* out);

/// Per-PE × per-cause tally of lost tuple copies — the drop-provenance
/// aggregate the forensics layer reconciles against `SimulationMetrics`
/// totals. Recording is O(1) (vector indexed by PE id), so it is cheap
/// enough to stay always-on inside the simulation.
class LossLedger {
 public:
  void Record(int32_t pe, LossCause cause, uint64_t count = 1);

  uint64_t Total() const { return total_; }
  uint64_t TotalOf(LossCause cause) const {
    return by_cause_[static_cast<size_t>(cause)];
  }
  uint64_t Count(int32_t pe, LossCause cause) const;
  bool empty() const { return total_ == 0; }

  struct Row {
    int32_t pe = -1;
    LossCause cause = LossCause::kQueueOverflow;
    uint64_t count = 0;
  };

  /// Non-zero entries sorted by (pe, cause) — deterministic for a given
  /// ledger content.
  std::vector<Row> Rows() const;

  /// {"total": N, "by_cause": {name: count, ...}, "rows": [{"pe", "cause",
  /// "count"}, ...]} — non-zero entries only, keys sorted by the JSON layer.
  json::Value ToJson() const;

  /// Inverse of `ToJson`; validates that rows sum to the stamped totals
  /// (a corrupt or hand-edited ledger is rejected, not silently trusted).
  static Result<LossLedger> FromJson(const json::Value& value);

  /// Fixed-width human-readable table (cause, tuples, share of total).
  std::string ToString() const;

 private:
  std::vector<std::array<uint64_t, kLossCauseCount>> per_pe_;
  std::array<uint64_t, kLossCauseCount> by_cause_{};
  uint64_t total_ = 0;
};

/// Publishes the ledger under the canonical loss keys, tagged with `labels`:
/// counter `sim_lost_tuples` (grand total), `sim_loss_tuples{cause=...}`
/// per-cause totals, and `sim_loss_tuples{cause=...,pe=...}` rows — non-zero
/// entries only, so loss-free runs leave the registry untouched.
void PublishLossLedger(MetricsRegistry* registry, const LossLedger& ledger,
                       const MetricsRegistry::Labels& labels = {});

}  // namespace laar::obs

#endif  // LAAR_OBS_LOSS_LEDGER_H_
