#include "laar/obs/run_info.h"

#include <algorithm>
#include <set>

#include "laar/common/strings.h"

#ifndef LAAR_GIT_DESCRIBE
#define LAAR_GIT_DESCRIBE "unknown"
#endif

namespace laar::obs {

namespace {

/// True for flags that do not alter the simulated workload: output paths,
/// the parallelism knobs, and trace-ring shape (the ring only bounds what
/// the recorder keeps). "--metrics-out=x" and "--trace-out" both match;
/// so does "--jobs" with or without a value. "--shards" qualifies because
/// the sharded engine is byte-identical across shard counts (DESIGN.md
/// §10) — unlike "--link-latency", which changes delivery semantics and
/// therefore stays in the stamp.
bool IsNonWorkloadFlag(const std::string& arg) {
  if (arg.rfind("--", 0) != 0) return false;
  const size_t eq = arg.find('=');
  const std::string name = arg.substr(2, eq == std::string::npos ? eq : eq - 2);
  return name == "jobs" || name == "shards" || name == "trace-categories" ||
         name == "trace-capacity" || EndsWith(name, "-out");
}

}  // namespace

RunInfo RunInfo::Capture(const char* tool, uint64_t seed, int argc,
                         const char* const* argv) {
  RunInfo info;
  info.tool = tool;
  info.version = LAAR_GIT_DESCRIBE;
  info.compiler = __VERSION__;
  info.seed = seed;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!IsNonWorkloadFlag(arg)) info.args.push_back(arg);
  }
  return info;
}

json::Value RunInfo::ToJson() const {
  json::Value doc = json::Value::MakeObject();
  doc.Set("tool", json::Value::String(tool));
  doc.Set("version", json::Value::String(version));
  doc.Set("compiler", json::Value::String(compiler));
  doc.Set("seed", json::Value::Int(static_cast<int64_t>(seed)));
  json::Value arg_list = json::Value::MakeArray();
  for (const std::string& arg : args) arg_list.Append(json::Value::String(arg));
  doc.Set("args", std::move(arg_list));
  return doc;
}

Result<RunInfo> RunInfo::FromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("run_info must be a JSON object");
  }
  RunInfo info;
  LAAR_ASSIGN_OR_RETURN(info.tool,
                        value.GetOr("tool", json::Value::String("")).AsString());
  LAAR_ASSIGN_OR_RETURN(info.version,
                        value.GetOr("version", json::Value::String("")).AsString());
  LAAR_ASSIGN_OR_RETURN(info.compiler,
                        value.GetOr("compiler", json::Value::String("")).AsString());
  LAAR_ASSIGN_OR_RETURN(const int64_t seed,
                        value.GetOr("seed", json::Value::Int(0)).AsInt());
  info.seed = static_cast<uint64_t>(seed);
  const json::Value args = value.GetOr("args", json::Value::MakeArray());
  if (!args.is_array()) return Status::InvalidArgument("run_info 'args' must be an array");
  for (const json::Value& arg : args.array()) {
    LAAR_ASSIGN_OR_RETURN(std::string text, arg.AsString());
    info.args.push_back(std::move(text));
  }
  return info;
}

std::vector<std::string> WorkloadMismatches(const RunInfo& a, const RunInfo& b) {
  std::vector<std::string> out;
  if (a.tool != b.tool) {
    out.push_back(StrFormat("tool: %s vs %s", a.tool.c_str(), b.tool.c_str()));
  }
  if (a.version != b.version) {
    out.push_back(
        StrFormat("version: %s vs %s", a.version.c_str(), b.version.c_str()));
  }
  if (a.seed != b.seed) {
    out.push_back(StrFormat("seed: %llu vs %llu",
                            static_cast<unsigned long long>(a.seed),
                            static_cast<unsigned long long>(b.seed)));
  }
  const std::set<std::string> in_a(a.args.begin(), a.args.end());
  const std::set<std::string> in_b(b.args.begin(), b.args.end());
  for (const std::string& arg : in_a) {
    if (in_b.count(arg) == 0) out.push_back("only in A: " + arg);
  }
  for (const std::string& arg : in_b) {
    if (in_a.count(arg) == 0) out.push_back("only in B: " + arg);
  }
  return out;
}

}  // namespace laar::obs
