#include "laar/obs/trace_recorder.h"

#include <algorithm>
#include <string>
#include <string_view>

namespace laar::obs {

namespace {

constexpr EventInfo kEventTable[static_cast<size_t>(EventName::kCount)] = {
    {"tuple_drop", Category::kDrops, EventPhase::kInstant},
    {"tuple_shed", Category::kDrops, EventPhase::kInstant},
    {"queue_high_watermark", Category::kQueues, EventPhase::kInstant},
    {"replica_activate", Category::kActivation, EventPhase::kInstant},
    {"replica_deactivate", Category::kActivation, EventPhase::kInstant},
    {"primary_elected", Category::kActivation, EventPhase::kInstant},
    {"replica_crash", Category::kFailures, EventPhase::kInstant},
    {"replica_recover", Category::kFailures, EventPhase::kInstant},
    {"host_crash", Category::kFailures, EventPhase::kInstant},
    {"host_recover", Category::kFailures, EventPhase::kInstant},
    {"input_config", Category::kConfig, EventPhase::kInstant},
    {"config_applied", Category::kConfig, EventPhase::kInstant},
    {"control_decision", Category::kConfig, EventPhase::kInstant},
    {"process", Category::kSpans, EventPhase::kSpan},
    {"pending_events", Category::kEngine, EventPhase::kCounter},
    {"tuple_enqueue", Category::kTuples, EventPhase::kInstant},
    {"tuple_queued", Category::kTuples, EventPhase::kSpan},
    {"tuple_process", Category::kTuples, EventPhase::kSpan},
    {"tuple_emit", Category::kTuples, EventPhase::kInstant},
    {"tuple_suppress", Category::kTuples, EventPhase::kInstant},
    {"tuple_traced_drop", Category::kTuples, EventPhase::kInstant},
    {"tuple_traced_shed", Category::kTuples, EventPhase::kInstant},
    {"tuple_sink", Category::kTuples, EventPhase::kInstant},
    {"alert", Category::kHealth, EventPhase::kInstant},
    {"tuple_crash_loss", Category::kDrops, EventPhase::kInstant},
    {"tuple_orphan", Category::kDrops, EventPhase::kInstant},
    {"host_outage", Category::kFailures, EventPhase::kSpan},
    {"replica_outage", Category::kFailures, EventPhase::kSpan},
};

}  // namespace

const EventInfo& EventInfoOf(EventName name) {
  return kEventTable[static_cast<size_t>(name)];
}

const char* CategoryName(Category category) {
  switch (category) {
    case Category::kDrops:
      return "drops";
    case Category::kQueues:
      return "queues";
    case Category::kActivation:
      return "activation";
    case Category::kFailures:
      return "failures";
    case Category::kConfig:
      return "config";
    case Category::kSpans:
      return "spans";
    case Category::kEngine:
      return "engine";
    case Category::kTuples:
      return "tuples";
    case Category::kHealth:
      return "health";
  }
  return "?";
}

uint32_t CategoryBitFromName(const char* name) {
  constexpr Category kAll[] = {Category::kDrops,    Category::kQueues,
                               Category::kActivation, Category::kFailures,
                               Category::kConfig,   Category::kSpans,
                               Category::kEngine,   Category::kTuples,
                               Category::kHealth};
  const std::string_view wanted(name);
  for (Category c : kAll) {
    if (wanted == CategoryName(c)) return static_cast<uint32_t>(c);
  }
  return 0;
}

uint32_t ParseCategoryList(const std::string& list, bool* ok) {
  *ok = true;
  if (list.empty()) return kAllCategories;
  uint32_t mask = 0;
  size_t begin = 0;
  while (begin <= list.size()) {
    size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    const std::string name = list.substr(begin, end - begin);
    const uint32_t bit = CategoryBitFromName(name.c_str());
    if (bit == 0) *ok = false;
    mask |= bit;
    begin = end + 1;
  }
  return mask;
}

TraceRecorder::TraceRecorder(const Options& options)
    : ring_(std::max<size_t>(1, options.capacity)),
      mask_(options.categories & kAllCategories) {}

void TraceRecorder::Record(const TraceEvent& event) {
  if (!Wants(EventInfoOf(event.name).category)) return;
  ++total_recorded_;
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = event;
    ++size_;
  } else {
    ring_[head_] = event;
    head_ = (head_ + 1) % ring_.size();
  }
}

void TraceRecorder::Instant(EventName name, double time, int32_t pe, int32_t replica,
                            int32_t host, int32_t port, double value) {
  TraceEvent event;
  event.name = name;
  event.time = time;
  event.pe = pe;
  event.replica = replica;
  event.host = host;
  event.port = port;
  event.value = value;
  Record(event);
}

void TraceRecorder::Span(EventName name, double begin, double duration, int32_t pe,
                         int32_t replica, int32_t host, int32_t port) {
  TraceEvent event;
  event.name = name;
  event.time = begin;
  event.duration = duration;
  event.pe = pe;
  event.replica = replica;
  event.host = host;
  event.port = port;
  Record(event);
}

void TraceRecorder::Counter(EventName name, double time, double value, int32_t host) {
  TraceEvent event;
  event.name = name;
  event.time = time;
  event.value = value;
  event.host = host;
  Record(event);
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void TraceRecorder::Clear() {
  head_ = 0;
  size_ = 0;
  total_recorded_ = 0;
}

}  // namespace laar::obs
