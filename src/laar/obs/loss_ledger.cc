#include "laar/obs/loss_ledger.h"

#include <algorithm>

#include "laar/common/strings.h"

namespace laar::obs {

const char* LossCauseName(LossCause cause) {
  switch (cause) {
    case LossCause::kQueueOverflow:
      return "queue_overflow";
    case LossCause::kLoadShed:
      return "load_shed";
    case LossCause::kCrashLoss:
      return "crash_loss";
    case LossCause::kResyncGap:
      return "resync_gap";
    case LossCause::kOrphanedOutput:
      return "orphaned_output";
  }
  return "?";
}

bool LossCauseFromName(std::string_view name, LossCause* out) {
  for (size_t i = 0; i < kLossCauseCount; ++i) {
    const LossCause cause = static_cast<LossCause>(i);
    if (name == LossCauseName(cause)) {
      *out = cause;
      return true;
    }
  }
  return false;
}

void LossLedger::Record(int32_t pe, LossCause cause, uint64_t count) {
  if (pe < 0 || count == 0) return;
  if (static_cast<size_t>(pe) >= per_pe_.size()) {
    per_pe_.resize(static_cast<size_t>(pe) + 1);
  }
  per_pe_[static_cast<size_t>(pe)][static_cast<size_t>(cause)] += count;
  by_cause_[static_cast<size_t>(cause)] += count;
  total_ += count;
}

uint64_t LossLedger::Count(int32_t pe, LossCause cause) const {
  if (pe < 0 || static_cast<size_t>(pe) >= per_pe_.size()) return 0;
  return per_pe_[static_cast<size_t>(pe)][static_cast<size_t>(cause)];
}

std::vector<LossLedger::Row> LossLedger::Rows() const {
  std::vector<Row> rows;
  for (size_t pe = 0; pe < per_pe_.size(); ++pe) {
    for (size_t c = 0; c < kLossCauseCount; ++c) {
      if (per_pe_[pe][c] == 0) continue;
      rows.push_back(Row{static_cast<int32_t>(pe), static_cast<LossCause>(c),
                         per_pe_[pe][c]});
    }
  }
  return rows;  // construction order is already (pe, cause)-sorted
}

json::Value LossLedger::ToJson() const {
  json::Value doc = json::Value::MakeObject();
  doc.Set("total", json::Value::Int(static_cast<int64_t>(total_)));
  json::Value by_cause = json::Value::MakeObject();
  for (size_t c = 0; c < kLossCauseCount; ++c) {
    if (by_cause_[c] == 0) continue;
    by_cause.Set(LossCauseName(static_cast<LossCause>(c)),
                 json::Value::Int(static_cast<int64_t>(by_cause_[c])));
  }
  doc.Set("by_cause", std::move(by_cause));
  json::Value rows = json::Value::MakeArray();
  for (const Row& row : Rows()) {
    json::Value entry = json::Value::MakeObject();
    entry.Set("pe", json::Value::Int(row.pe));
    entry.Set("cause", json::Value::String(LossCauseName(row.cause)));
    entry.Set("count", json::Value::Int(static_cast<int64_t>(row.count)));
    rows.Append(std::move(entry));
  }
  doc.Set("rows", std::move(rows));
  return doc;
}

Result<LossLedger> LossLedger::FromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("loss ledger must be a JSON object");
  }
  LossLedger ledger;
  LAAR_ASSIGN_OR_RETURN(const json::Value* rows, value.Get("rows"));
  if (!rows->is_array()) return Status::InvalidArgument("ledger 'rows' must be an array");
  for (const json::Value& row : rows->array()) {
    LAAR_ASSIGN_OR_RETURN(const json::Value* pe, row.Get("pe"));
    LAAR_ASSIGN_OR_RETURN(const int64_t pe_id, pe->AsInt());
    LAAR_ASSIGN_OR_RETURN(const json::Value* cause, row.Get("cause"));
    LAAR_ASSIGN_OR_RETURN(const std::string cause_name, cause->AsString());
    LossCause parsed;
    if (!LossCauseFromName(cause_name, &parsed)) {
      return Status::InvalidArgument("unknown loss cause '" + cause_name + "'");
    }
    LAAR_ASSIGN_OR_RETURN(const json::Value* count, row.Get("count"));
    LAAR_ASSIGN_OR_RETURN(const int64_t n, count->AsInt());
    if (pe_id < 0 || n < 0) {
      return Status::InvalidArgument("ledger row with negative pe or count");
    }
    ledger.Record(static_cast<int32_t>(pe_id), parsed, static_cast<uint64_t>(n));
  }
  LAAR_ASSIGN_OR_RETURN(const json::Value* total, value.Get("total"));
  LAAR_ASSIGN_OR_RETURN(const int64_t stamped_total, total->AsInt());
  if (stamped_total < 0 || static_cast<uint64_t>(stamped_total) != ledger.Total()) {
    return Status::InvalidArgument(
        StrFormat("ledger rows sum to %llu but 'total' claims %lld",
                  static_cast<unsigned long long>(ledger.Total()),
                  static_cast<long long>(stamped_total)));
  }
  const json::Value by_cause = value.GetOr("by_cause", json::Value::MakeObject());
  for (const auto& [name, count] : by_cause.object()) {
    LossCause parsed;
    if (!LossCauseFromName(name, &parsed)) {
      return Status::InvalidArgument("unknown loss cause '" + name + "'");
    }
    LAAR_ASSIGN_OR_RETURN(const int64_t n, count.AsInt());
    if (n < 0 || static_cast<uint64_t>(n) != ledger.TotalOf(parsed)) {
      return Status::InvalidArgument("ledger 'by_cause' disagrees with its rows");
    }
  }
  return ledger;
}

std::string LossLedger::ToString() const {
  std::string out = StrFormat("lost tuple copies: %llu\n",
                              static_cast<unsigned long long>(total_));
  if (total_ == 0) return out;
  out += "  cause            tuples      share\n";
  for (size_t c = 0; c < kLossCauseCount; ++c) {
    if (by_cause_[c] == 0) continue;
    out += StrFormat("  %-15s %8llu   %6.2f%%\n",
                     LossCauseName(static_cast<LossCause>(c)),
                     static_cast<unsigned long long>(by_cause_[c]),
                     100.0 * static_cast<double>(by_cause_[c]) /
                         static_cast<double>(total_));
  }
  return out;
}

void PublishLossLedger(MetricsRegistry* registry, const LossLedger& ledger,
                       const MetricsRegistry::Labels& labels) {
  if (registry == nullptr || ledger.empty()) return;
  if (Counter* c = registry->GetCounter("sim_lost_tuples", labels)) {
    c->Increment(static_cast<double>(ledger.Total()));
  }
  for (size_t i = 0; i < kLossCauseCount; ++i) {
    const LossCause cause = static_cast<LossCause>(i);
    if (ledger.TotalOf(cause) == 0) continue;
    MetricsRegistry::Labels cause_labels = labels;
    cause_labels.emplace_back("cause", LossCauseName(cause));
    if (Counter* c = registry->GetCounter("sim_loss_tuples", cause_labels)) {
      c->Increment(static_cast<double>(ledger.TotalOf(cause)));
    }
  }
  for (const LossLedger::Row& row : ledger.Rows()) {
    MetricsRegistry::Labels row_labels = labels;
    row_labels.emplace_back("cause", LossCauseName(row.cause));
    row_labels.emplace_back("pe", std::to_string(row.pe));
    if (Counter* c = registry->GetCounter("sim_loss_tuples", row_labels)) {
      c->Increment(static_cast<double>(row.count));
    }
  }
}

}  // namespace laar::obs
