#include "laar/obs/chrome_trace.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>
#include <vector>

#include "laar/common/strings.h"
#include "laar/obs/latency_tracer.h"

namespace laar::obs {

namespace {

constexpr double kMicrosPerSecond = 1e6;

int32_t PidOf(const TraceEvent& event) { return event.host >= 0 ? event.host + 1 : 0; }

const char* PhaseString(EventPhase phase) {
  switch (phase) {
    case EventPhase::kInstant:
      return "i";
    case EventPhase::kSpan:
      return "X";
    case EventPhase::kCounter:
      return "C";
  }
  return "i";
}

json::Value MetadataEvent(const char* name, int32_t pid, int32_t tid,
                          const std::string& value) {
  json::Value event = json::Value::MakeObject();
  event.Set("name", json::Value::String(name));
  event.Set("ph", json::Value::String("M"));
  event.Set("ts", json::Value::Number(0.0));
  event.Set("pid", json::Value::Int(pid));
  event.Set("tid", json::Value::Int(tid));
  json::Value args = json::Value::MakeObject();
  args.Set("name", json::Value::String(value));
  event.Set("args", std::move(args));
  return event;
}

/// Converts one tracer hop to the TraceEvent it appears as in the export.
/// Queueing waits and service times become spans (their begin time is the
/// hop time minus the measured duration); every other hop is an instant.
TraceEvent HopToEvent(const Hop& hop, uint64_t trace_id) {
  TraceEvent event;
  event.trace = trace_id;
  event.pe = hop.component;
  event.replica = hop.replica;
  event.host = hop.host;
  event.port = hop.port;
  event.time = hop.time;
  switch (hop.kind) {
    case HopKind::kEnqueue:
      event.name = EventName::kTupleEnqueue;
      break;
    case HopKind::kDequeue:
      event.name = EventName::kTupleQueuedSpan;
      event.time = hop.time - hop.duration;
      event.duration = hop.duration;
      break;
    case HopKind::kProcess:
      event.name = EventName::kTupleProcessSpan;
      event.time = hop.time - hop.duration;
      event.duration = hop.duration;
      break;
    case HopKind::kEmit:
      event.name = EventName::kTupleEmit;
      break;
    case HopKind::kSuppress:
      event.name = EventName::kTupleSuppress;
      break;
    case HopKind::kDrop:
      event.name = EventName::kTupleTracedDrop;
      break;
    case HopKind::kShed:
      event.name = EventName::kTupleTracedShed;
      break;
    case HopKind::kSink:
      event.name = EventName::kTupleSink;
      event.value = hop.duration;  // end-to-end latency in seconds
      break;
  }
  return event;
}

}  // namespace

json::Value ToChromeTraceJson(const TraceRecorder& recorder) {
  return ToChromeTraceJson(recorder, nullptr);
}

json::Value ToChromeTraceJson(const TraceRecorder& recorder, const LatencyTracer* tracer) {
  std::vector<TraceEvent> events = recorder.Events();
  if (tracer != nullptr) {
    events.reserve(events.size() + tracer->hops().size());
    for (const Hop& hop : tracer->hops()) {
      const Span* span = tracer->FindSpan(hop.span);
      events.push_back(HopToEvent(hop, span != nullptr ? span->trace_id : 0));
    }
  }
  // Synthesize outage spans from crash/recover instant pairs so failure
  // windows render as "X" bars in Perfetto instead of paired blips. Only
  // failure runs carry crash events, so failure-free exports are
  // byte-identical with or without this pass. Events arrive in recording
  // (simulation) order here, so the first crash of a merged window opens
  // the span and the epoch-guarded single recover closes it; an
  // unrecovered window extends to the trace horizon.
  {
    double horizon = 0.0;
    for (const TraceEvent& event : events) {
      horizon = std::max(horizon, event.time + event.duration);
    }
    std::map<int32_t, double> open_hosts;                          // host -> begin
    std::map<std::pair<int32_t, int32_t>, TraceEvent> open_replicas;  // (pe, r)
    std::vector<TraceEvent> spans;
    auto close_host = [&](int32_t host, double begin, double end) {
      TraceEvent span;
      span.name = EventName::kHostOutageSpan;
      span.time = begin;
      span.duration = end - begin;
      span.host = host;
      spans.push_back(span);
    };
    auto close_replica = [&](const TraceEvent& crash, double end) {
      TraceEvent span;
      span.name = EventName::kReplicaOutageSpan;
      span.time = crash.time;
      span.duration = end - crash.time;
      span.pe = crash.pe;
      span.replica = crash.replica;
      span.host = crash.host;
      spans.push_back(span);
    };
    for (const TraceEvent& event : events) {
      switch (event.name) {
        case EventName::kHostCrash:
          open_hosts.emplace(event.host, event.time);  // first crash wins
          break;
        case EventName::kHostRecover:
          if (const auto it = open_hosts.find(event.host); it != open_hosts.end()) {
            close_host(event.host, it->second, event.time);
            open_hosts.erase(it);
          }
          break;
        case EventName::kReplicaCrash:
          open_replicas.emplace(std::make_pair(event.pe, event.replica), event);
          break;
        case EventName::kReplicaRecover:
          if (const auto it = open_replicas.find(std::make_pair(event.pe, event.replica));
              it != open_replicas.end()) {
            close_replica(it->second, event.time);
            open_replicas.erase(it);
          }
          break;
        default:
          break;
      }
    }
    for (const auto& [host, begin] : open_hosts) close_host(host, begin, horizon);
    for (const auto& [key, crash] : open_replicas) close_replica(crash, horizon);
    events.insert(events.end(), spans.begin(), spans.end());
  }

  // Events are recorded in simulation order except pre-announced ones (the
  // input-trace schedule is emitted up front); a stable sort by timestamp
  // restores chronology while keeping same-time events in recording order.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.time < b.time; });

  // Thread ids per process: tid 0 is the host-level thread; replica threads
  // are assigned in sorted (pe, replica) order, deterministically.
  std::map<int32_t, std::map<std::pair<int32_t, int32_t>, int32_t>> threads;
  for (const TraceEvent& event : events) {
    if (event.pe >= 0) {
      threads[PidOf(event)].emplace(std::make_pair(event.pe, event.replica), 0);
    } else {
      threads[PidOf(event)];  // ensure the process exists
    }
  }
  for (auto& [pid, replica_threads] : threads) {
    int32_t next_tid = 1;
    for (auto& [key, tid] : replica_threads) tid = next_tid++;
  }

  json::Value trace_events = json::Value::MakeArray();
  for (const auto& [pid, replica_threads] : threads) {
    trace_events.Append(MetadataEvent("process_name", pid, 0,
                                      pid == 0 ? "laar" : StrFormat("host%d", pid - 1)));
    trace_events.Append(
        MetadataEvent("thread_name", pid, 0, pid == 0 ? "control" : "host"));
    for (const auto& [key, tid] : replica_threads) {
      const std::string name = key.second >= 0
                                   ? StrFormat("PE%d/r%d", key.first, key.second)
                                   : StrFormat("PE%d", key.first);
      trace_events.Append(MetadataEvent("thread_name", pid, tid, name));
    }
  }

  for (const TraceEvent& event : events) {
    const EventInfo& info = EventInfoOf(event.name);
    const int32_t pid = PidOf(event);
    int32_t tid = 0;
    if (event.pe >= 0) {
      tid = threads[pid][std::make_pair(event.pe, event.replica)];
    }
    json::Value out = json::Value::MakeObject();
    out.Set("name", json::Value::String(info.name));
    out.Set("cat", json::Value::String(CategoryName(info.category)));
    out.Set("ph", json::Value::String(PhaseString(info.phase)));
    out.Set("ts", json::Value::Number(event.time * kMicrosPerSecond));
    out.Set("pid", json::Value::Int(pid));
    out.Set("tid", json::Value::Int(tid));
    json::Value args = json::Value::MakeObject();
    switch (info.phase) {
      case EventPhase::kInstant:
        out.Set("s", json::Value::String("t"));
        if (event.pe >= 0) args.Set("pe", json::Value::Int(event.pe));
        if (event.replica >= 0) args.Set("replica", json::Value::Int(event.replica));
        if (event.port >= 0) args.Set("port", json::Value::Int(event.port));
        args.Set("value", json::Value::Number(event.value));
        break;
      case EventPhase::kSpan:
        out.Set("dur", json::Value::Number(event.duration * kMicrosPerSecond));
        if (event.port >= 0) args.Set("port", json::Value::Int(event.port));
        break;
      case EventPhase::kCounter:
        args.Set("value", json::Value::Number(event.value));
        break;
    }
    if (event.trace != 0) {
      args.Set("trace", json::Value::Int(static_cast<int64_t>(event.trace)));
    }
    out.Set("args", std::move(args));
    trace_events.Append(std::move(out));
  }

  json::Value doc = json::Value::MakeObject();
  doc.Set("traceEvents", std::move(trace_events));
  doc.Set("displayTimeUnit", json::Value::String("ms"));
  if (recorder.overwritten() > 0) {
    doc.Set("laarDroppedEvents",
            json::Value::Int(static_cast<int64_t>(recorder.overwritten())));
  }
  return doc;
}

Status ValidateChromeTrace(const json::Value& trace) {
  if (!trace.is_object()) return Status::InvalidArgument("trace must be a JSON object");
  LAAR_ASSIGN_OR_RETURN(const json::Value* events, trace.Get("traceEvents"));
  if (!events->is_array()) {
    return Status::InvalidArgument("'traceEvents' must be an array");
  }
  // Orphan-span accounting only holds on complete traces: once the ring
  // overwrote events, a recover may legitimately arrive without its crash.
  const auto dropped = trace.GetOr("laarDroppedEvents", json::Value::Int(0)).AsInt();
  const bool complete = !dropped.ok() || *dropped == 0;
  std::map<std::pair<int64_t, int64_t>, double> last_ts;  // (pid, tid) -> ts
  std::map<int64_t, bool> host_down;                      // pid -> crashed
  std::map<std::tuple<int64_t, int64_t, int64_t>, bool> replica_down;
  size_t index = 0;
  for (const json::Value& event : events->array()) {
    const std::string where = StrFormat("traceEvents[%zu]", index++);
    if (!event.is_object()) {
      return Status::InvalidArgument(where + " is not an object");
    }
    LAAR_ASSIGN_OR_RETURN(const json::Value* name, event.Get("name"));
    if (!name->is_string() || name->string_value().empty()) {
      return Status::InvalidArgument(where + " has no string 'name'");
    }
    LAAR_ASSIGN_OR_RETURN(const json::Value* ph, event.Get("ph"));
    if (!ph->is_string()) return Status::InvalidArgument(where + " has no 'ph'");
    const std::string& phase = ph->string_value();
    if (phase != "M" && phase != "i" && phase != "X" && phase != "C") {
      return Status::InvalidArgument(where + " has unsupported phase '" + phase + "'");
    }
    LAAR_ASSIGN_OR_RETURN(const json::Value* ts, event.Get("ts"));
    if (!ts->is_number() || !std::isfinite(ts->number_value()) ||
        ts->number_value() < 0.0) {
      return Status::InvalidArgument(where + " has invalid 'ts'");
    }
    LAAR_ASSIGN_OR_RETURN(const int64_t pid,
                          event.GetOr("pid", json::Value::Null()).AsInt());
    LAAR_ASSIGN_OR_RETURN(const int64_t tid,
                          event.GetOr("tid", json::Value::Null()).AsInt());
    // Per-thread timestamps must be monotone: the exporter time-sorts, so a
    // regression here means a corrupted or hand-spliced trace.
    if (phase != "M") {
      auto [it, inserted] = last_ts.emplace(std::make_pair(pid, tid), 0.0);
      if (!inserted && ts->number_value() < it->second) {
        return Status::InvalidArgument(StrFormat(
            "%s: 'ts' %.9g goes back in time on pid %lld tid %lld (last %.9g)",
            where.c_str(), ts->number_value(), static_cast<long long>(pid),
            static_cast<long long>(tid), it->second));
      }
      it->second = ts->number_value();
    }
    // Crash/recover pairing: a recover with no preceding crash is an
    // orphan span — the failure timeline cannot be reconstructed from it.
    if (complete && phase == "i") {
      const std::string& event_name = name->string_value();
      if (event_name == "host_crash") {
        host_down[pid] = true;
      } else if (event_name == "host_recover") {
        auto it = host_down.find(pid);
        if (it == host_down.end() || !it->second) {
          return Status::InvalidArgument(
              where + " host_recover without a preceding host_crash");
        }
        it->second = false;
      } else if (event_name == "replica_crash" || event_name == "replica_recover") {
        const json::Value args = event.GetOr("args", json::Value::MakeObject());
        LAAR_ASSIGN_OR_RETURN(const int64_t pe,
                              args.GetOr("pe", json::Value::Int(-1)).AsInt());
        LAAR_ASSIGN_OR_RETURN(const int64_t replica,
                              args.GetOr("replica", json::Value::Int(-1)).AsInt());
        const auto key = std::make_tuple(pid, pe, replica);
        if (event_name == "replica_crash") {
          replica_down[key] = true;
        } else {
          auto it = replica_down.find(key);
          if (it == replica_down.end() || !it->second) {
            return Status::InvalidArgument(
                where + " replica_recover without a preceding replica_crash");
          }
          it->second = false;
        }
      }
    }
    if (phase == "X") {
      LAAR_ASSIGN_OR_RETURN(const json::Value* dur, event.Get("dur"));
      if (!dur->is_number() || !(dur->number_value() >= 0.0)) {
        return Status::InvalidArgument(where + " X event has invalid 'dur'");
      }
    }
    if (phase == "M" || phase == "C") {
      LAAR_ASSIGN_OR_RETURN(const json::Value* args, event.Get("args"));
      if (!args->is_object()) {
        return Status::InvalidArgument(where + " " + phase + " event has no 'args'");
      }
    }
  }
  return Status::OK();
}

std::string SummarizeChromeTrace(const json::Value& trace) {
  const json::Value empty_array = json::Value::MakeArray();
  const json::Value& events = trace.GetOr("traceEvents", empty_array);
  size_t total = 0;
  size_t metadata = 0;
  double min_ts = 0.0;
  double max_ts = 0.0;
  bool any_ts = false;
  std::map<std::string, size_t> by_category;
  std::map<std::string, size_t> by_name;
  std::map<int64_t, size_t> by_pid;
  for (const json::Value& event : events.array()) {
    if (!event.is_object()) continue;
    const std::string phase = event.GetOr("ph", json::Value::String("")).string_value();
    if (phase == "M") {
      ++metadata;
      continue;
    }
    ++total;
    const json::Value ts = event.GetOr("ts", json::Value::Number(0.0));
    if (ts.is_number()) {
      const double t = ts.number_value();
      if (!any_ts || t < min_ts) min_ts = t;
      if (!any_ts || t > max_ts) max_ts = t;
      any_ts = true;
    }
    ++by_category[event.GetOr("cat", json::Value::String("?")).string_value()];
    ++by_name[event.GetOr("name", json::Value::String("?")).string_value()];
    auto pid = event.GetOr("pid", json::Value::Int(-1)).AsInt();
    ++by_pid[pid.ok() ? *pid : -1];
  }

  std::string out = StrFormat("%zu events (%zu metadata records), %.3f s span\n", total,
                              metadata, any_ts ? (max_ts - min_ts) / 1e6 : 0.0);
  out += "by category:\n";
  for (const auto& [category, count] : by_category) {
    out += StrFormat("  %-12s %8zu\n", category.c_str(), count);
  }
  out += "by event:\n";
  for (const auto& [name, count] : by_name) {
    out += StrFormat("  %-20s %8zu\n", name.c_str(), count);
  }
  out += "by process:\n";
  for (const auto& [pid, count] : by_pid) {
    out += StrFormat("  pid %-3lld %8zu\n", static_cast<long long>(pid), count);
  }
  return out;
}

Result<json::Value> FilterChromeTrace(const json::Value& trace, uint32_t categories) {
  LAAR_RETURN_IF_ERROR(ValidateChromeTrace(trace));
  json::Value out = json::Value::MakeObject();
  for (const auto& [key, value] : trace.object()) {
    if (key != "traceEvents") out.Set(key, value);
  }
  json::Value kept = json::Value::MakeArray();
  LAAR_ASSIGN_OR_RETURN(const json::Value* events, trace.Get("traceEvents"));
  for (const json::Value& event : events->array()) {
    const std::string phase = event.GetOr("ph", json::Value::String("")).string_value();
    if (phase == "M") {
      kept.Append(event);
      continue;
    }
    const std::string category =
        event.GetOr("cat", json::Value::String("")).string_value();
    if ((CategoryBitFromName(category.c_str()) & categories) != 0) {
      kept.Append(event);
    }
  }
  out.Set("traceEvents", std::move(kept));
  return out;
}

}  // namespace laar::obs
