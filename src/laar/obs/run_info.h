#ifndef LAAR_OBS_RUN_INFO_H_
#define LAAR_OBS_RUN_INFO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "laar/common/result.h"
#include "laar/json/json.h"

namespace laar::obs {

/// Build and invocation metadata stamped into every JSON artifact a tool
/// writes (--metrics-out, --health-out, --trace-out), so a later
/// `laar_trace diff` can detect when two runs are not comparable.
///
/// The captured args deliberately exclude flags that do not alter the
/// simulated workload — `--jobs` (parallelism) and every `--*-out` path —
/// so artifacts stay byte-identical across `--jobs` and across output
/// locations.
struct RunInfo {
  std::string tool;      ///< producing binary, e.g. "laar_simulate"
  std::string version;   ///< `git describe` at build time ("unknown" outside git)
  std::string compiler;  ///< compiler identification (__VERSION__)
  uint64_t seed = 0;     ///< the run's primary RNG seed (0 when seedless)
  std::vector<std::string> args;  ///< workload-relevant CLI args, argv order

  /// {"tool", "version", "compiler", "seed", "args": [...]}.
  json::Value ToJson() const;
  static Result<RunInfo> FromJson(const json::Value& value);

  /// Captures argv[1..] minus `--jobs=` and `--*-out=` flags.
  static RunInfo Capture(const char* tool, uint64_t seed, int argc,
                         const char* const* argv);
};

/// The workload keys on which two runs differ (tool, version, seed, args
/// present in exactly one run). Empty means the runs are comparable;
/// a version-only difference is reported but is usually benign.
std::vector<std::string> WorkloadMismatches(const RunInfo& a, const RunInfo& b);

}  // namespace laar::obs

#endif  // LAAR_OBS_RUN_INFO_H_
