#ifndef LAAR_OBS_TRACE_RECORDER_H_
#define LAAR_OBS_TRACE_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "laar/obs/trace_event.h"

namespace laar::obs {

/// Bounded in-memory sink for simulation trace events.
///
/// The simulation layers hold a `TraceRecorder*` that is null by default, so
/// a disabled trace costs one pointer comparison per would-be event. When
/// enabled, events land in a fixed-capacity ring buffer: memory stays
/// bounded no matter how long the run, and once the ring wraps the oldest
/// events are overwritten (`overwritten()` counts them). A category mask
/// filters at emission time, before any copy happens.
///
/// Single-writer: one recorder belongs to one simulation (which is
/// single-threaded); concurrent simulations each get their own recorder.
class TraceRecorder {
 public:
  struct Options {
    /// Ring capacity in events (one event is ~48 bytes).
    size_t capacity = 1u << 18;
    /// Bitmask of `Category` values to record.
    uint32_t categories = kAllCategories;
  };

  TraceRecorder() : TraceRecorder(Options{}) {}
  explicit TraceRecorder(const Options& options);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Whether events of `category` would be stored; emission sites check
  /// this before building an event.
  bool Wants(Category category) const {
    return (mask_ & static_cast<uint32_t>(category)) != 0;
  }

  /// Stores `event` if its category passes the mask; evicts the oldest
  /// event when the ring is full.
  void Record(const TraceEvent& event);

  /// Convenience emitters. All are no-ops when the category is filtered.
  void Instant(EventName name, double time, int32_t pe = -1, int32_t replica = -1,
               int32_t host = -1, int32_t port = -1, double value = 0.0);
  void Span(EventName name, double begin, double duration, int32_t pe, int32_t replica,
            int32_t host, int32_t port = -1);
  void Counter(EventName name, double time, double value, int32_t host = -1);

  /// Stored events in recording order (oldest surviving first).
  std::vector<TraceEvent> Events() const;

  size_t size() const { return size_; }
  size_t capacity() const { return ring_.size(); }
  uint32_t categories() const { return mask_; }
  /// Events that passed the filter since construction (including evicted).
  uint64_t total_recorded() const { return total_recorded_; }
  /// Events evicted because the ring was full.
  uint64_t overwritten() const { return total_recorded_ - size_; }

  void Clear();

 private:
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;  ///< index of the oldest stored event
  size_t size_ = 0;
  uint32_t mask_;
  uint64_t total_recorded_ = 0;
};

}  // namespace laar::obs

#endif  // LAAR_OBS_TRACE_RECORDER_H_
