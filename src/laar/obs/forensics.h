#ifndef LAAR_OBS_FORENSICS_H_
#define LAAR_OBS_FORENSICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "laar/common/result.h"
#include "laar/json/json.h"

namespace laar::obs {

/// One correlated failure episode reconstructed from a recorded trace:
/// the crash→recovery window of one or more hosts, the losses the timeline
/// attributes to it, and the surrounding evidence (alerts, control-plane
/// activity). Hosts whose outages begin at the same instant are one
/// incident — simultaneous multi-host crashes are how domain outages
/// manifest on the trace.
struct Incident {
  std::string cause;    ///< "domain_outage" (>= 2 hosts) or "host_crash"
  double begin = 0.0;   ///< first crash, simulation seconds
  double end = 0.0;     ///< last recovery (trace end when unrecovered)
  bool recovered = true;
  std::vector<int32_t> hosts;  ///< crashed hosts, ascending
  std::vector<int32_t> pes;    ///< PEs that lost tuples to this incident

  /// Crash-attributed losses (dead-replica input + orphaned outputs) the
  /// timeline assigns to this incident: every such loss after this
  /// incident's begin and before the next incident's.
  uint64_t tuples_lost = 0;

  /// Queue-overflow and shedding drops inside [begin, end] — backpressure
  /// collateral of the outage, not directly crash-caused.
  uint64_t collateral_lost = 0;

  size_t alerts = 0;          ///< health alerts firing inside [begin, end]
  size_t config_changes = 0;  ///< control-plane events inside [begin, end]

  double RecoverySeconds() const { return end - begin; }
  json::Value ToJson() const;
};

/// The post-run forensic pass over one Chrome trace: incidents plus the
/// reconciliation of trace-visible losses against the embedded loss ledger
/// (when `laar_simulate` stamped one into the trace).
struct ForensicsReport {
  std::vector<Incident> incidents;

  uint64_t attributed_lost = 0;    ///< Σ incidents[i].tuples_lost
  uint64_t unattributed_lost = 0;  ///< crash-attributed losses before any incident

  bool has_ledger = false;           ///< trace carried "laarLossLedger"
  uint64_t ledger_total = 0;         ///< ledger grand total (all causes)
  uint64_t ledger_crash_attributed = 0;  ///< ledger crash_loss + orphaned_output

  uint64_t trace_dropped_events = 0;  ///< ring overwrites ("laarDroppedEvents")

  /// True when the per-event losses on the trace account exactly for the
  /// ledger's crash-attributed total. Always true without a ledger; a
  /// wrapped ring (trace_dropped_events > 0) explains a false.
  bool reconciled = true;

  json::Value ToJson() const;
  std::string ToString() const;  ///< one-screen human rendering
};

/// Correlates failure events, loss events, alerts, and control-plane
/// activity on a Chrome trace (as written by `laar_simulate --trace-out`)
/// into incident records. Deterministic for a given trace.
Result<ForensicsReport> AnalyzeChromeTrace(const json::Value& trace);

}  // namespace laar::obs

#endif  // LAAR_OBS_FORENSICS_H_
