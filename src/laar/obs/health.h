#ifndef LAAR_OBS_HEALTH_H_
#define LAAR_OBS_HEALTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "laar/common/result.h"
#include "laar/json/json.h"
#include "laar/obs/metrics_registry.h"
#include "laar/obs/trace_recorder.h"

namespace laar::obs {

enum class AlertSeverity : uint8_t {
  kWarning = 0,  ///< noted in the report; does not fail the run
  kCritical,     ///< an SLO breach; makes the run unhealthy
};

const char* AlertSeverityName(AlertSeverity severity);

enum class AlertComparison : uint8_t {
  kAbove = 0,  ///< violate when value > threshold
  kBelow,      ///< violate when value < threshold
};

/// One declarative threshold rule evaluated over recorded time series (and
/// gauges, treated as single-sample series).
///
/// Text form, parsed by `ParseAlertRule`:
///
///   [name:] series[{key=value,...}] (>|<) THRESHOLD [for SECONDS] [warn|crit]
///
/// e.g. `backlog: ts_queue_depth{pe=3} > 50 for 5 warn` fires when PE 3's
/// queue depth stays strictly above 50 for at least 5 consecutive
/// sim-seconds. Omitting the label block matches every label set of the
/// series (each evaluated independently); omitting `for` means any single
/// violating sample fires; the default severity is `crit`.
struct AlertRule {
  std::string name;         ///< report key; defaults to the series name
  std::string series;       ///< metric name to evaluate
  MetricsRegistry::Labels labels;  ///< subset match; empty = every label set
  AlertComparison comparison = AlertComparison::kAbove;
  double threshold = 0.0;
  double for_seconds = 0.0;  ///< sustained duration before firing
  AlertSeverity severity = AlertSeverity::kCritical;

  std::string ToString() const;
};

Result<AlertRule> ParseAlertRule(std::string_view text);

/// Parses a semicolon-separated rule list (empty segments ignored).
Result<std::vector<AlertRule>> ParseAlertRules(std::string_view text);

/// One firing of a rule against one concrete series.
struct AlertIncident {
  std::string rule;        ///< AlertRule::name
  std::string series_key;  ///< series name + labels, e.g. `ts_queue_depth{pe=3}`
  AlertSeverity severity = AlertSeverity::kWarning;
  double first_at = 0.0;   ///< time the violating streak began
  double last_at = 0.0;    ///< last violating sample time
  double duration = 0.0;   ///< last_at - first_at
  double peak_value = 0.0; ///< most extreme violating value
  uint64_t samples = 0;    ///< violating samples in the streak
};

/// The machine-readable end-of-run verdict: every incident plus the series
/// snapshots they were judged against.
struct HealthReport {
  bool healthy = true;  ///< false iff any critical incident fired
  std::vector<AlertIncident> incidents;
  std::vector<AlertRule> rules;  ///< the rules that were evaluated
  /// The evaluated series, embedded so the report alone reproduces the
  /// evidence (written by `laar_simulate --health-out`).
  std::vector<MetricsRegistry::SeriesSnapshot> series;

  json::Value ToJson() const;
  std::string ToString() const;
};

/// Evaluates `rules` over every time series and gauge in `registry`.
///
/// A rule fires once per matching series when a streak of consecutive
/// violating samples spans at least `for_seconds` (a single sample has zero
/// span, so sustained rules need the violation to persist across samples;
/// `for_seconds == 0` fires on any violating sample). Gauges are
/// single-sample series, so only zero-duration rules can fire on them.
/// Comparison is strict: a sample equal to the threshold never violates.
HealthReport EvaluateHealth(const MetricsRegistry& registry,
                            const std::vector<AlertRule>& rules);

/// Appends one `alert` instant event per incident to `recorder` (category
/// `kHealth`, at the incident's `first_at`, value = peak), so alerts land on
/// the Chrome trace timeline next to the behavior that tripped them.
void EmitAlertEvents(TraceRecorder* recorder, const HealthReport& report);

}  // namespace laar::obs

#endif  // LAAR_OBS_HEALTH_H_
