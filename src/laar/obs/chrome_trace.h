#ifndef LAAR_OBS_CHROME_TRACE_H_
#define LAAR_OBS_CHROME_TRACE_H_

#include <string>

#include "laar/common/result.h"
#include "laar/json/json.h"
#include "laar/obs/trace_recorder.h"

namespace laar::obs {

/// Converts a recorded trace into the Chrome trace-event JSON format
/// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
/// openable in Perfetto or chrome://tracing.
///
/// Mapping: hosts become processes (pid = host + 1; pid 0 is the "laar"
/// control process for host-less events), replicas become threads within
/// their host's process (named "PE<p>/r<r>"; tid 0 is the per-process
/// "host" thread). Timestamps are simulation time in microseconds. Instant
/// events use phase "i", processing spans phase "X", counters phase "C";
/// process/thread names are emitted as "M" metadata records.
///
/// The output is deterministic: events sort stably by timestamp, thread ids
/// are assigned in sorted (host, pe, replica) order, and object keys are
/// serialized sorted.
json::Value ToChromeTraceJson(const TraceRecorder& recorder);

class LatencyTracer;

/// Same export, with a latency tracer's sampled span trees merged in: each
/// hop becomes a `tuples`-category event (queueing waits and service times
/// as "X" spans on the replica thread that held the tuple, everything else
/// as instants), carrying its causal trace id as `args.trace` so Perfetto
/// can follow one sampled tuple across hosts. A null `tracer` degrades to
/// the plain export.
json::Value ToChromeTraceJson(const TraceRecorder& recorder, const LatencyTracer* tracer);

/// Checks that `trace` is structurally valid Chrome trace-event JSON (the
/// subset this library emits): an object with a "traceEvents" array whose
/// entries carry a string "name", a "ph" in {M, i, X, C}, a finite numeric
/// "ts" >= 0, integer "pid"/"tid", a "dur" >= 0 for X events, and an "args"
/// object for M/C events.
Status ValidateChromeTrace(const json::Value& trace);

/// Human-readable digest of a trace: event counts per category, per event
/// name, and per process, plus the covered time span.
std::string SummarizeChromeTrace(const json::Value& trace);

/// Returns a copy of `trace` keeping metadata records and the events whose
/// "cat" is in the `categories` bitmask.
Result<json::Value> FilterChromeTrace(const json::Value& trace, uint32_t categories);

}  // namespace laar::obs

#endif  // LAAR_OBS_CHROME_TRACE_H_
