#ifndef LAAR_DSPS_RUNTIME_OPTIONS_H_
#define LAAR_DSPS_RUNTIME_OPTIONS_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace laar::obs {
class TraceRecorder;
class LatencyTracer;
class MetricsRegistry;
}

namespace laar::dsps {

/// Tunables of the simulated stream-processing runtime. Defaults mirror the
/// paper's deployment (§5.2) and its LAAR middleware layer (§4.6, §5.1).
struct RuntimeOptions {
  /// Input queues hold this many seconds of tuples at the peak ("High")
  /// arrival rate of their port (§5.2); overflowing tuples are dropped.
  double queue_seconds = 2.0;

  /// Queue capacity floor in tuples, so very slow ports still buffer.
  size_t min_queue_capacity = 4;

  /// Rate Monitor measurement window / reporting period (§4.6).
  double monitor_period_seconds = 1.0;

  /// Tuples subtracted from each window count before the dominating-config
  /// lookup. Counting tuples over a finite window quantizes the measured
  /// rate to ±1 tuple/window; without this allowance a source running
  /// exactly at a configuration's rate intermittently measures one tuple
  /// high and the controller flaps to the next configuration up.
  double monitor_tolerance_tuples = 1.0;

  /// Delay between the HAController deciding a replica-set change and the
  /// activation/deactivation commands taking effect at the proxies.
  double control_latency_seconds = 0.1;

  /// Time for heartbeat-based failure detection and primary takeover by an
  /// already-active secondary.
  double failover_latency_seconds = 1.0;

  /// State re-synchronization pause when a replica is (re)activated (§4.6).
  double resync_latency_seconds = 0.5;

  /// Whether the HAController reacts to Rate Monitor reports at runtime.
  /// Off, the strategy of the initial configuration stays applied (static
  /// variants behave identically either way).
  bool dynamic_control = true;

  /// Width of every recorded time series bucket.
  double timeseries_bucket_seconds = 1.0;

  /// Record per-replica CPU time series (Fig. 3-style plots); costs memory
  /// proportional to replicas × buckets.
  bool record_replica_series = false;

  /// Track end-to-end tuple latency (source emission to sink arrival,
  /// attributed through the tuple that triggered each emission). Costs one
  /// sample per sink tuple.
  bool record_latency = true;

  /// Load shedding (§2's alternative to LAAR [25, 29, 30]): when a port's
  /// queue exceeds `shed_threshold` of its capacity, incoming tuples are
  /// shed at a rate that ramps linearly from 0 at the threshold to 1 at a
  /// full queue. Shedding keeps queues (hence latency) short during
  /// overload at the price of completeness; shed tuples are counted as
  /// drops. The shedder is deterministic (credit-based, no randomness).
  bool enable_load_shedding = false;
  double shed_threshold = 0.5;

  /// Structured event sink for this run (drops, queue watermarks,
  /// activation switches, failures, config changes, processing spans); see
  /// obs/trace_recorder.h. Null (the default) disables tracing at the cost
  /// of one pointer check per would-be event. The recorder must outlive the
  /// simulation and must not be shared between concurrent simulations.
  obs::TraceRecorder* trace_recorder = nullptr;

  /// A port's queue-high event fires when its occupancy crosses this
  /// fraction of capacity upward; it re-arms once occupancy falls back to
  /// half the watermark.
  double queue_watermark_fraction = 0.9;

  /// Sampled per-tuple causal tracing (see obs/latency_tracer.h). Null (the
  /// default) disables it at the cost of one pointer check per tuple step;
  /// a tracer whose sample rate is 0 is equally inert. Like the trace
  /// recorder: must outlive the simulation, one simulation per tracer.
  obs::LatencyTracer* latency_tracer = nullptr;

  /// Destination for periodic time-series telemetry (per-host CPU
  /// utilization, per-operator queue depth, drop/output rates over
  /// simulation time). Null disables the sampler entirely; sampling never
  /// perturbs the simulated dynamics, only observes them.
  obs::MetricsRegistry* telemetry = nullptr;

  /// Sim-time interval between telemetry snapshots.
  double telemetry_period_seconds = 1.0;

  /// Ring capacity of each telemetry series (oldest samples evicted).
  size_t telemetry_capacity = 1u << 12;

  /// Labels attached to every telemetry series — how corpus workers keep
  /// their series disjoint (one writer per label set) in a shared registry.
  std::vector<std::pair<std::string, std::string>> telemetry_labels;

  /// Minimum inter-host link latency in simulated seconds. Zero (the
  /// default) keeps the historical synchronous-delivery engine: a tuple
  /// crossing hosts arrives within the same event. A positive value
  /// activates the conservative-window engine (DESIGN.md §10): every
  /// cross-host tuple transfer takes between one and two link latencies
  /// (deliveries are quantized to window boundaries), and the run may be
  /// partitioned across `shards` threads. The window width equals this
  /// latency — it is exactly the lookahead that makes per-host execution
  /// independent within a window.
  double link_latency_seconds = 0.0;

  /// Number of event-engine shards (threads) the hosts are partitioned
  /// over. Requires `link_latency_seconds > 0` when > 1. Any value yields
  /// byte-identical metrics/trace/timeseries/health outputs for a fixed
  /// `link_latency_seconds`; shards only change wall-clock time.
  int shards = 1;
};

}  // namespace laar::dsps

#endif  // LAAR_DSPS_RUNTIME_OPTIONS_H_
