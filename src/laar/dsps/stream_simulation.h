#ifndef LAAR_DSPS_STREAM_SIMULATION_H_
#define LAAR_DSPS_STREAM_SIMULATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "laar/common/result.h"
#include "laar/configindex/config_index.h"
#include "laar/dsps/runtime_options.h"
#include "laar/dsps/sim_metrics.h"
#include "laar/dsps/trace.h"
#include "laar/model/cluster.h"
#include "laar/model/descriptor.h"
#include "laar/model/placement.h"
#include "laar/model/rates.h"
#include "laar/obs/trace_event.h"
#include "laar/sim/simulator.h"
#include "laar/strategy/activation_strategy.h"

namespace laar::dsps {

/// A discrete-event simulation of a replicated stream-processing deployment
/// running one application under a replica activation strategy — the
/// stand-in for the paper's IBM InfoSphere Streams cluster (§5).
///
/// Faithfully modelled mechanics:
///  - hosts as shared CPU-cycle budgets (Eq. 11's aggregate-K view):
///    capacity is processor-shared equally among replicas that are busy;
///  - operators process tuples at their per-edge CPU cost, apply
///    selectivity with the integer-accumulator semantics of §5.2 fn. 3, and
///    buffer per-port in bounded queues (tail-drop on overflow);
///  - active replication with proxy semantics (§5.1): every replica of a PE
///    receives the primary outputs of its predecessors, but only the acting
///    primary forwards downstream;
///  - the LAAR middleware: a Rate Monitor sampling source rates, an
///    HAController mapping measurements to a dominating configuration via
///    the R-tree index and issuing activation commands (§4.6);
///  - failure injection: permanent replica crashes (the pessimistic
///    worst-case evaluation) and transient host crashes with recovery.
///
/// Time, placement, strategy, and trace fully determine a run: the engine
/// contains no randomness.
///
/// Two delivery engines share these mechanics (selected by
/// `RuntimeOptions::link_latency_seconds`, see DESIGN.md §10):
///  - the historical synchronous engine (latency 0): one event heap, tuples
///    cross hosts within the event that emitted them;
///  - the conservative-window engine (latency L > 0): hosts are partitioned
///    over `shards` event engines that advance in lockstep windows of width
///    L; every cross-host tuple travels through a double-buffered network
///    and arrives at the first window barrier at least L after emission.
///    For a fixed L, every shard count produces byte-identical
///    metrics/trace/timeseries outputs — shards only buy wall-clock speed.
class StreamSimulation {
 public:
  /// All referenced objects must outlive the simulation.
  StreamSimulation(const model::ApplicationDescriptor& app, const model::Cluster& cluster,
                   const model::ReplicaPlacement& placement,
                   const strategy::ActivationStrategy& strategy, const InputTrace& trace,
                   const RuntimeOptions& options);

  /// Guards against binding a temporary strategy (the simulation keeps a
  /// reference; a temporary would dangle before Run()).
  StreamSimulation(const model::ApplicationDescriptor&, const model::Cluster&,
                   const model::ReplicaPlacement&, strategy::ActivationStrategy&&,
                   const InputTrace&, const RuntimeOptions&) = delete;

  /// Out-of-line: member unique_ptrs point to types private to the .cc.
  ~StreamSimulation();

  StreamSimulation(const StreamSimulation&) = delete;
  StreamSimulation& operator=(const StreamSimulation&) = delete;

  /// Marks a replica dead for the entire run (pessimistic worst case §5.3).
  /// Call before `Run`.
  Status InjectPermanentReplicaFailure(model::ComponentId pe, int replica);

  /// Crashes every replica on `host` during [at, at + duration); recovered
  /// replicas re-join as secondaries after state resync. Call before `Run`.
  Status ScheduleHostCrash(model::HostId host, sim::SimTime at, sim::SimTime duration);

  /// Runs the whole trace. Single-shot: a second call fails.
  Status Run();

  const SimulationMetrics& metrics() const { return metrics_; }

 private:
  struct Port;
  struct Replica;
  struct PeState;
  struct HostState;
  struct SourceState;
  struct TelemetryState;
  struct NetMessage;
  struct SinkMessage;
  struct Shard;

  // --- wiring ---
  Status Build();

  // --- host processor sharing ---
  void AdvanceHost(HostState* host);
  void RescheduleHost(HostState* host);
  void HostCompletionEvent(HostState* host);
  void AddBusy(Replica* replica);
  void RemoveBusy(Replica* replica);

  // --- operator mechanics ---
  /// `span` is the latency-tracer span the tuple belongs to (0 = untraced).
  void DeliverToReplica(Replica* replica, int port_index, sim::SimTime birth,
                        uint32_t span);
  void TryStartProcessing(Replica* replica);
  void FinishTuple(Replica* replica);
  void EmitFrom(Replica* replica, int count, sim::SimTime birth, uint32_t span);

  // --- replication control ---
  void ElectPrimary(PeState* pe);
  void ApplyActivation(Replica* replica, bool active);
  void ApplyConfig(model::ConfigId config);

  // --- middleware ---
  void MonitorTick();

  // --- telemetry ---
  /// Periodic read-only snapshot into the telemetry registry; never mutates
  /// simulation state, so enabling it cannot perturb the run.
  void TelemetryTick();

  // --- sources & failures ---
  void SourceEmit(SourceState* source);
  void CrashHost(model::HostId host, sim::SimTime duration);
  void RecoverHost(model::HostId host, uint64_t crash_epoch);

  // --- windowed / sharded engine (DESIGN.md §10) ---
  /// The coordinator loop: alternates shard phases (conservative windows,
  /// possibly split at control-event times) with control actions and window
  /// barriers on the coordinator thread.
  void RunWindowedLoop();
  /// Windowed-mode source driver: emits every tuple of the current phase
  /// inline (emissions touch only per-source and per-shard state, so they
  /// commute with the rest of the phase), then parks one scheduled event at
  /// the first emission beyond the phase.
  void WindowedSourceEmit(SourceState* source);
  /// Delivers the shard's staged cross-host tuples in canonical
  /// (dst_host, src_host, src_seq) order; runs at phase start, after the
  /// barrier's control actions.
  void DrainInbox(Shard* shard);
  /// Window barrier: replays staged sink arrivals, rotates the network
  /// double buffers (outbox -> staging -> inbox), and merges shard traces.
  void RotateAndDeliver(sim::SimTime stop);
  /// Moves buffered tuple-plane trace events into the global recorder in
  /// (time, host) order — the partition-invariant total order.
  void MergeShardTraces();
  /// The event engine a host's tuple-plane events run on: the host's shard
  /// in windowed mode, the single engine otherwise.
  sim::Simulator& SimOfHost(model::HostId host);
  /// The accumulator shard of a host (shards_[0] in synchronous mode).
  Shard& AccOfHost(model::HostId host);
  /// Tuple-plane trace emission: direct to the recorder in synchronous
  /// mode, buffered per shard (merged at barriers) in windowed mode. Call
  /// sites check `Tracing` first, exactly like direct recorder calls.
  void TupleInstant(Shard& acc, obs::EventName name, double time, int32_t pe,
                    int32_t replica, int32_t host, int32_t port = -1,
                    double value = 0.0);
  void TupleSpan(Shard& acc, obs::EventName name, double begin, double duration,
                 int32_t pe, int32_t replica, int32_t host, int32_t port);

  // --- bookkeeping ---
  size_t BucketOf(sim::SimTime t) const;
  void RecordReplicaCycles(Replica* replica, double cycles, sim::SimTime now);

  /// True when a recorder is attached and wants `category` — the guard every
  /// emission site checks before building an event.
  bool Tracing(obs::Category category) const;

  /// True when a latency tracer is attached with a non-zero sample rate —
  /// the guard every per-tuple hop site checks.
  bool LatencyTracing() const;

  const model::ApplicationDescriptor& app_;
  const model::Cluster& cluster_;
  const model::ReplicaPlacement& placement_;
  const strategy::ActivationStrategy& strategy_;
  const InputTrace& trace_;
  RuntimeOptions options_;

  sim::Simulator simulator_;
  model::ExpectedRates rates_;
  configindex::ConfigIndex config_index_;
  SimulationMetrics metrics_;

  std::vector<std::unique_ptr<PeState>> pes_;      // [component], null unless PE
  std::vector<std::unique_ptr<HostState>> hosts_;  // [host]
  std::vector<std::unique_ptr<SourceState>> sources_;

  /// Sharded-engine state. Synchronous mode keeps exactly one Shard whose
  /// engine stays empty: loss accumulators route through it unconditionally,
  /// so the hot paths carry no mode branches.
  bool windowed_ = false;
  int num_shards_ = 1;
  sim::SimTime phase_end_ = 0.0;  ///< end of the running phase (shards read it)
  std::vector<int> shard_of_host_;                // [host] -> shard index
  std::vector<std::unique_ptr<Shard>> shards_;    // [shard]
  std::vector<SinkMessage> sink_scratch_;         // barrier working sets,
  std::vector<obs::TraceEvent> trace_scratch_;    //   reused across barriers

  std::unique_ptr<TelemetryState> telemetry_;  // null unless options_.telemetry
  model::ConfigId applied_config_ = 0;
  bool ran_ = false;
  bool built_ = false;
};

}  // namespace laar::dsps

#endif  // LAAR_DSPS_STREAM_SIMULATION_H_
