#include "laar/dsps/trace.h"

#include <algorithm>
#include <cmath>

#include "laar/common/rng.h"
#include "laar/common/strings.h"

namespace laar::dsps {

Status InputTrace::Append(sim::SimTime duration, model::ConfigId config) {
  if (duration <= 0.0) return Status::InvalidArgument("segment duration must be positive");
  if (config < 0) return Status::InvalidArgument("invalid configuration id");
  segments_.push_back(TraceSegment{duration, config});
  return Status::OK();
}

Result<InputTrace> InputTrace::Alternating(model::ConfigId base_config,
                                           sim::SimTime base_seconds,
                                           model::ConfigId peak_config,
                                           sim::SimTime peak_seconds, int cycles) {
  if (cycles < 1) return Status::InvalidArgument("need at least one cycle");
  InputTrace trace;
  for (int i = 0; i < cycles; ++i) {
    LAAR_RETURN_IF_ERROR(trace.Append(base_seconds, base_config));
    LAAR_RETURN_IF_ERROR(trace.Append(peak_seconds, peak_config));
  }
  return trace;
}

Result<InputTrace> InputTrace::Step(model::ConfigId base_config, model::ConfigId peak_config,
                                    sim::SimTime step_at, sim::SimTime total) {
  if (step_at <= 0.0 || total <= step_at) {
    return Status::InvalidArgument("need 0 < step_at < total");
  }
  InputTrace trace;
  LAAR_RETURN_IF_ERROR(trace.Append(step_at, base_config));
  LAAR_RETURN_IF_ERROR(trace.Append(total - step_at, peak_config));
  return trace;
}

Result<InputTrace> InputTrace::Sample(const model::InputSpace& space, sim::SimTime total,
                                      sim::SimTime segment_seconds, uint64_t seed) {
  if (total <= 0.0 || segment_seconds <= 0.0) {
    return Status::InvalidArgument("need positive total and segment durations");
  }
  LAAR_RETURN_IF_ERROR(space.Validate());
  std::vector<double> weights(static_cast<size_t>(space.num_configs()));
  for (model::ConfigId c = 0; c < space.num_configs(); ++c) {
    weights[static_cast<size_t>(c)] = space.Probability(c);
  }
  Rng rng(seed);
  InputTrace trace;
  // Floating-point accumulation of `at` can leave a ~1e-13 s residue before
  // `total`; without the epsilon it becomes a degenerate final segment. The
  // last real segment is clamped to end exactly at `total`.
  const sim::SimTime epsilon = 1e-9 * std::max(1.0, total);
  for (sim::SimTime at = 0.0; at + epsilon < total; at += segment_seconds) {
    const auto config = static_cast<model::ConfigId>(rng.WeightedIndex(weights));
    LAAR_RETURN_IF_ERROR(
        trace.Append(std::min(segment_seconds, total - at), config));
  }
  return trace;
}

sim::SimTime InputTrace::TotalDuration() const {
  sim::SimTime total = 0.0;
  for (const TraceSegment& segment : segments_) total += segment.duration;
  return total;
}

model::ConfigId InputTrace::ConfigAt(sim::SimTime time) const {
  sim::SimTime end = 0.0;
  for (const TraceSegment& segment : segments_) {
    end += segment.duration;
    if (time < end) return segment.config;
  }
  return segments_.empty() ? 0 : segments_.back().config;
}

sim::SimTime InputTrace::TimeIn(model::ConfigId config) const {
  sim::SimTime total = 0.0;
  for (const TraceSegment& segment : segments_) {
    if (segment.config == config) total += segment.duration;
  }
  return total;
}

Status InputTrace::ImprintProbabilities(model::InputSpace* space) const {
  const sim::SimTime total = TotalDuration();
  if (total <= 0.0) return Status::FailedPrecondition("empty trace");
  std::vector<double> joint(static_cast<size_t>(space->num_configs()), 0.0);
  for (const TraceSegment& segment : segments_) {
    if (segment.config >= space->num_configs()) {
      return Status::OutOfRange(StrFormat("trace references configuration %d beyond |C|=%d",
                                          segment.config, space->num_configs()));
    }
    joint[static_cast<size_t>(segment.config)] += segment.duration / total;
  }
  return space->SetJointProbabilities(std::move(joint));
}

}  // namespace laar::dsps
