#ifndef LAAR_DSPS_TRACE_H_
#define LAAR_DSPS_TRACE_H_

#include <vector>

#include "laar/common/result.h"
#include "laar/model/input_space.h"
#include "laar/sim/simulator.h"

namespace laar::dsps {

/// One constant-rate span of an input trace: all sources hold the rates of
/// `config` for `duration` seconds.
struct TraceSegment {
  sim::SimTime duration = 0.0;
  model::ConfigId config = 0;
};

/// A piecewise-constant input trace over the configuration space — the
/// driving signal of every experiment (§5.2: "5 minute long input trace,
/// with the High input configuration being active for one third of the
/// trace").
class InputTrace {
 public:
  InputTrace() = default;

  Status Append(sim::SimTime duration, model::ConfigId config);

  /// A trace of `cycles` repetitions of (base_config for base_seconds, then
  /// peak_config for peak_seconds). With base=Low/peak=High and a 2:1 time
  /// split this is the paper's experiment trace shape.
  static Result<InputTrace> Alternating(model::ConfigId base_config,
                                        sim::SimTime base_seconds,
                                        model::ConfigId peak_config,
                                        sim::SimTime peak_seconds, int cycles);

  /// A single step: base for `step_at` seconds, then peak until `total`
  /// (the Fig. 3 trace: High from ~50 s on).
  static Result<InputTrace> Step(model::ConfigId base_config, model::ConfigId peak_config,
                                 sim::SimTime step_at, sim::SimTime total);

  /// A random trace: ⌈total/segment⌉ segments with configurations drawn
  /// i.i.d. from P_C, so the long-run occupancy matches the descriptor's
  /// statistical contract. Deterministic for a given seed.
  static Result<InputTrace> Sample(const model::InputSpace& space, sim::SimTime total,
                                   sim::SimTime segment_seconds, uint64_t seed);

  const std::vector<TraceSegment>& segments() const { return segments_; }
  sim::SimTime TotalDuration() const;

  /// The configuration active at `time` (the last segment covers the tail).
  model::ConfigId ConfigAt(sim::SimTime time) const;

  /// Total time spent in `config`.
  sim::SimTime TimeIn(model::ConfigId config) const;

  /// Overwrites the per-configuration probabilities of `space` with the
  /// empirical occupancy of this trace, so that the off-line optimization
  /// sees the P_C the trace realizes.
  Status ImprintProbabilities(model::InputSpace* space) const;

 private:
  std::vector<TraceSegment> segments_;
};

}  // namespace laar::dsps

#endif  // LAAR_DSPS_TRACE_H_
