#ifndef LAAR_DSPS_SIM_METRICS_H_
#define LAAR_DSPS_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "laar/common/stats.h"
#include "laar/common/status.h"
#include "laar/model/cluster.h"
#include "laar/model/component.h"
#include "laar/obs/loss_ledger.h"
#include "laar/obs/metrics_registry.h"
#include "laar/sim/simulator.h"

namespace laar::dsps {

/// Counters of one PE replica over a simulation run.
struct ReplicaMetrics {
  double cpu_cycles = 0.0;        ///< cycles consumed processing tuples
  uint64_t tuples_arrived = 0;    ///< tuples offered while alive & active
  uint64_t tuples_processed = 0;  ///< tuples fully processed
  uint64_t tuples_emitted = 0;    ///< tuples forwarded downstream (primary only)
  uint64_t tuples_dropped = 0;    ///< queue-overflow drops
  uint64_t tuples_ignored = 0;    ///< tuples discarded while inactive/dead
};

/// Everything measured during one `StreamSimulation` run. All time series
/// share the bucket width from `RuntimeOptions`.
struct SimulationMetrics {
  sim::SimTime duration = 0.0;
  double bucket_seconds = 1.0;

  /// Indexed [component][replica]; non-PE components have empty vectors.
  std::vector<std::vector<ReplicaMetrics>> replicas;

  /// Per-PE logical tuples processed by the acting primary — the measured
  /// counterpart of the "samples processed" metric in Fig. 11.
  std::vector<uint64_t> pe_processed;

  /// Per-host total cycles consumed.
  std::vector<double> host_cycles;

  uint64_t source_tuples = 0;  ///< tuples produced by all sources
  uint64_t sink_tuples = 0;    ///< tuples delivered to all sinks
  uint64_t dropped_tuples = 0; ///< queue-overflow + load-shedding drops

  /// Loss provenance (§9 of DESIGN.md). Every lost tuple copy is counted
  /// once in exactly one of the scalar tallies below, and once in the
  /// per-PE × per-cause `losses` ledger; `ReconcileLosses` cross-checks the
  /// two bookkeeping paths at the end of every run.
  uint64_t shed_tuples = 0;        ///< load-shedding subset of dropped_tuples
  uint64_t crash_lost_tuples = 0;  ///< offered to a dead replica
  uint64_t resync_lost_tuples = 0; ///< offered to a replica mid state-resync
  uint64_t orphaned_tuples = 0;    ///< non-primary outputs suppressed while
                                   ///< the seated primary was unserviceable

  /// Per-PE × per-cause drop provenance, attributed at the point of loss.
  obs::LossLedger losses;

  /// Replica activation-state changes that took effect (both directions;
  /// each reconfiguration contributes one per flipped replica).
  uint64_t activation_switches = 0;

  /// Deepest any port queue ever got, in tuples.
  uint64_t max_queue_depth = 0;

  /// Hosts that actually crashed during the run, in crash order (a host
  /// appears once per crash window). Empty for failure-free and
  /// permanent-failure runs, so publishing it cannot perturb those runs'
  /// registries.
  std::vector<model::HostId> crashed_hosts;

  /// Logical DES events the engine executed for this run (batched inline
  /// deliveries included) — the numerator of the events/sec perf baseline.
  /// Not serialized: a perf-side statistic, not a simulation outcome.
  uint64_t engine_events = 0;

  /// Per-bucket source-emission and sink-arrival counts.
  std::vector<double> source_series;
  std::vector<double> sink_series;

  /// End-to-end latency (seconds) of every sink tuple, when
  /// `record_latency` is on. A tuple's latency is measured from the source
  /// emission whose processing chain produced it (selectivity makes exact
  /// lineage ambiguous; the triggering tuple's birth time is inherited).
  SampleStats sink_latency;

  /// Per-replica per-bucket cycles; filled when record_replica_series is
  /// set. Indexed [component][replica][bucket].
  std::vector<std::vector<std::vector<double>>> replica_series;

  /// Totals.
  double TotalCpuCycles() const;
  uint64_t TotalProcessed() const;  ///< Σ pe_processed — the IC numerator

  /// Every lost tuple copy, across all causes: queue overflow + shedding
  /// (together `dropped_tuples`) + crash-window, resync-gap, and
  /// orphaned-output losses. Intentional discards by deactivated replicas
  /// are not losses (the strategy planned them) and are excluded.
  uint64_t LostTuples() const;

  /// Verifies that the `losses` ledger reconciles exactly with the scalar
  /// loss counters (per-cause and grand total). `StreamSimulation::Run`
  /// calls this before returning, so every simulation run — and therefore
  /// every simulation test — asserts the accounting; an error here is a
  /// bookkeeping bug in the engine, never a property of the workload.
  Status ReconcileLosses() const;

  /// Mean rate over a window, from a bucketed series.
  static double MeanRate(const std::vector<double>& series, double bucket_seconds,
                         sim::SimTime from, sim::SimTime to);
};

/// Bucket bounds of the published sink-latency histogram (seconds).
inline constexpr double kSinkLatencyHistogramMaxSeconds = 10.0;
inline constexpr size_t kSinkLatencyHistogramBins = 32;

/// Publishes the run's aggregates into `registry` under the canonical
/// `sim_*` names (counters for tuple totals, activation switches, and CPU
/// cycles; a gauge for the worst queue depth; a histogram plus percentile
/// gauges for sink latency), tagged with `labels`.
void PublishTo(obs::MetricsRegistry* registry, const SimulationMetrics& metrics,
               const obs::MetricsRegistry::Labels& labels = {});

/// One-line run digest sourced from the canonical `sim_*` registry entries
/// (not from ad-hoc counters), e.g.
/// "drops=12 switches=8 worst_queue_depth=40 in=1200 out=1100".
std::string RunSummaryFromRegistry(const obs::MetricsRegistry& registry,
                                   const obs::MetricsRegistry::Labels& labels = {});

/// The corpus-level roll-up of `RunSummaryFromRegistry`: the same one-line
/// digest aggregated over every label set in the registry (counters summed,
/// worst queue depth maxed). Latency is omitted — per-run percentiles do
/// not aggregate.
std::string AggregateRunSummaryFromRegistry(const obs::MetricsRegistry& registry);

}  // namespace laar::dsps

#endif  // LAAR_DSPS_SIM_METRICS_H_
