#include "laar/dsps/stream_simulation.h"

#include <algorithm>
#include <cmath>

#include "laar/common/strings.h"
#include "laar/exec/shard_runner.h"
#include "laar/obs/latency_tracer.h"
#include "laar/obs/metrics_registry.h"
#include "laar/obs/trace_recorder.h"

namespace laar::dsps {

namespace {

/// Completion slack: a replica whose remaining work is below this fraction
/// of a second of host capacity is considered done (absorbs FP drift in the
/// processor-sharing integration).
constexpr double kCompletionSlackSeconds = 1e-9;

/// One buffered tuple: its port, the source-emission time it traces back
/// to (for end-to-end latency), when it entered the queue, and its
/// latency-tracer span (0 for the untraced majority).
struct QueuedTuple {
  int port;
  sim::SimTime birth;
  sim::SimTime enqueued = 0.0;
  uint32_t span = 0;
};

/// Fixed-capacity tuple FIFO, allocated once per replica at build time and
/// recycled in place. A replica's backlog is provably bounded by the sum of
/// its port capacities (DeliverToReplica drops past that), so sizing the
/// ring to that sum makes every push during the run allocation-free — the
/// per-node std::deque churn this replaces was a top allocation site.
class TupleRing {
 public:
  void Init(size_t capacity) {
    slots_.assign(std::max<size_t>(1, capacity), QueuedTuple{});
    head_ = 0;
    tail_ = 0;
    size_ = 0;
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  const QueuedTuple& front() const { return slots_[head_]; }

  void pop_front() {
    head_ = Next(head_);
    --size_;
  }

  void push_back(const QueuedTuple& tuple) {
    if (size_ == slots_.size()) Grow();  // defensive; the capacity proof holds
    slots_[tail_] = tuple;
    tail_ = Next(tail_);
    ++size_;
  }

  void clear() {
    head_ = 0;
    tail_ = 0;
    size_ = 0;
  }

 private:
  size_t Next(size_t i) const { return i + 1 == slots_.size() ? 0 : i + 1; }

  void Grow() {
    std::vector<QueuedTuple> bigger(slots_.size() * 2);
    for (size_t i = 0; i < size_; ++i) bigger[i] = slots_[(head_ + i) % slots_.size()];
    slots_ = std::move(bigger);
    head_ = 0;
    tail_ = size_;
  }

  std::vector<QueuedTuple> slots_;
  size_t head_ = 0;
  size_t tail_ = 0;
  size_t size_ = 0;
};

}  // namespace

/// One bounded input queue of a replica, fed by a single upstream component
/// (§5.2: "one queue for each input port").
struct StreamSimulation::Port {
  model::ComponentId from = model::kInvalidComponent;
  double selectivity = 1.0;
  double cpu_cost = 0.0;   // cycles per tuple on this port
  size_t capacity = 0;     // tuples
  size_t queued = 0;
  double selectivity_acc = 0.0;  // §5.2 footnote 3 accumulator
  double shed_credit = 0.0;      // deterministic load-shedding accumulator

  size_t watermark = 0;          // queue-high trip level, in tuples
  bool above_watermark = false;  // trip state; re-arms at half the watermark
};

/// Where a component's output goes: a sink, or a specific input port of a
/// downstream PE (delivered to every replica of that PE).
struct Output {
  bool is_sink = false;
  model::ComponentId to = model::kInvalidComponent;
  int port_index = -1;
};

struct StreamSimulation::Replica {
  model::ComponentId pe_id = model::kInvalidComponent;
  int index = 0;
  model::HostId host = model::kInvalidHost;

  bool alive = true;
  bool active = true;
  bool resyncing = false;
  /// Killed for good by `InjectPermanentReplicaFailure`; host recovery must
  /// never resurrect it.
  bool permanently_failed = false;
  uint64_t resync_epoch = 0;

  bool processing = false;
  int processing_port = -1;
  double remaining_cycles = 0.0;
  sim::SimTime processing_birth = 0.0;  // birth time of the in-flight tuple
  sim::SimTime processing_start = 0.0;  // when the in-flight tuple left the queue
  uint32_t processing_span = 0;         // latency-tracer span of that tuple

  std::vector<Port> ports;
  TupleRing fifo;  // arrival order of queued tuples, pooled (see TupleRing)
};

struct StreamSimulation::PeState {
  model::ComponentId id = model::kInvalidComponent;
  std::vector<Replica> replicas;
  int primary = -1;
  std::vector<Output> outputs;
};

struct StreamSimulation::HostState {
  model::HostId id = model::kInvalidHost;
  double capacity = 0.0;  // cycles/sec
  std::vector<Replica*> busy;
  sim::SimTime last_advance = 0.0;

  /// Windowed engine: sequence number of the next tuple this host puts on
  /// the network; (src_host, net_seq) is the unique, partition-invariant
  /// identity delivery order is keyed on.
  uint64_t net_seq = 0;

  /// The host's single service event, kept alive across busy-set changes
  /// and moved in place with Simulator::Reschedule; `completion_target` is
  /// its payload (the replica whose completion the event realizes).
  sim::EventId completion_event = sim::kInvalidEvent;
  Replica* completion_target = nullptr;

  /// Crash lifecycle. Overlapping crash windows on one host merge into a
  /// single outage ending at `down_until`; `crash_epoch` identifies the
  /// latest crash so that recovery timers armed by superseded crashes are
  /// discarded instead of reviving the host early.
  uint64_t crash_epoch = 0;
  sim::SimTime down_until = 0.0;
};

struct StreamSimulation::SourceState {
  model::ComponentId id = model::kInvalidComponent;
  size_t source_index = 0;
  uint64_t emitted = 0;
  uint64_t monitor_snapshot = 0;
  std::vector<Output> outputs;

  /// Windowed engine: sources are pseudo-hosts `num_hosts + source_index`
  /// on the network, with their own sequence counter and owning shard.
  int32_t net_host = -1;
  uint64_t net_seq = 0;
  int shard = 0;
};

/// One tuple copy in flight between hosts in the windowed engine. Emitted
/// into the source shard's outbox, it crosses the double buffer and is
/// delivered on the destination shard at the second window barrier after
/// emission — between one and two link latencies later.
struct StreamSimulation::NetMessage {
  model::HostId dst_host = model::kInvalidHost;
  int32_t src_host = -1;  // emitting host, or a source's pseudo-host id
  uint64_t src_seq = 0;   // emitting host's net_seq for this tuple
  model::ComponentId to = model::kInvalidComponent;
  int replica = 0;
  int port = -1;
  sim::SimTime birth = 0.0;
};

/// A tuple headed for a sink. Sinks are external, so arrivals are applied
/// by the coordinator at window barriers, replayed in (src_host, src_seq)
/// order — sink-latency accumulation is FP-order-sensitive, and this order
/// is the partition-invariant one.
struct StreamSimulation::SinkMessage {
  int32_t src_host = -1;
  uint64_t src_seq = 0;
  sim::SimTime birth = 0.0;
};

/// One event-engine shard: a subset of hosts (`host % num_shards`) with its
/// own pooled-slab simulator, plus everything those hosts write during a
/// phase that the rest of the simulation may not touch concurrently —
/// loss/emission accumulators (folded into `metrics_` when the run ends;
/// every fold is exact, so fold order cannot matter), buffered tuple-plane
/// trace events, and the network double buffers.
///
/// Synchronous mode keeps a single Shard as the accumulator target; its
/// `sim` stays empty (the one global engine runs everything).
struct StreamSimulation::Shard {
  sim::Simulator sim;

  uint64_t dropped_tuples = 0;
  uint64_t shed_tuples = 0;
  uint64_t crash_lost_tuples = 0;
  uint64_t resync_lost_tuples = 0;
  uint64_t orphaned_tuples = 0;
  uint64_t max_queue_depth = 0;
  obs::LossLedger losses;

  // Source-side accumulators (windowed mode only; the synchronous engine's
  // SourceEmit writes metrics_ directly, single-threaded).
  uint64_t source_tuples = 0;
  uint64_t inline_events = 0;  // emissions drained inline, no heap round-trip
  std::vector<double> source_series;

  // Tuple-plane trace events of the current window, merged at the barrier.
  std::vector<obs::TraceEvent> trace_buffer;

  // Network double buffer, indexed by destination shard. Messages emitted
  // during window n sit in `outbox`; barrier B(n+1) moves them to
  // `outbox_staging`; barrier B(n+2) appends them to the destination
  // shard's `inbox`, drained at that shard's next phase start.
  std::vector<std::vector<NetMessage>> outbox;
  std::vector<std::vector<NetMessage>> outbox_staging;
  std::vector<NetMessage> inbox;
  bool drain_pending = false;

  std::vector<SinkMessage> sink_outbox;
  std::vector<SinkMessage> sink_staging;

  // HostCompletionEvent working set, reused across events.
  std::vector<Replica*> finished_scratch;
};

/// Handles into the telemetry registry plus the previous snapshot, so each
/// tick publishes window rates (not cumulative totals) without rescanning
/// the registry. Series pointers stay valid for the registry's lifetime.
struct StreamSimulation::TelemetryState {
  double period = 1.0;
  obs::TimeSeries* source_rate = nullptr;    // tuples/sec entering the app
  obs::TimeSeries* output_rate = nullptr;    // tuples/sec reaching sinks
  obs::TimeSeries* drop_rate = nullptr;      // tuples/sec lost (overflow+shed)
  obs::TimeSeries* pending_events = nullptr; // DES heap size (engine health)
  std::vector<obs::TimeSeries*> host_util;   // [host] CPU utilization in [0,1]
  std::vector<obs::TimeSeries*> queue_depth; // [component] total queued tuples

  double prev_time = 0.0;
  uint64_t prev_source = 0;
  uint64_t prev_sink = 0;
  uint64_t prev_dropped = 0;
  std::vector<double> prev_host_cycles;
};

StreamSimulation::~StreamSimulation() = default;

StreamSimulation::StreamSimulation(const model::ApplicationDescriptor& app,
                                   const model::Cluster& cluster,
                                   const model::ReplicaPlacement& placement,
                                   const strategy::ActivationStrategy& strategy,
                                   const InputTrace& trace, const RuntimeOptions& options)
    : app_(app),
      cluster_(cluster),
      placement_(placement),
      strategy_(strategy),
      trace_(trace),
      options_(options) {}

Status StreamSimulation::Build() {
  if (built_) return Status::OK();
  if (!app_.graph.validated()) {
    return Status::FailedPrecondition("application graph must be validated");
  }
  LAAR_RETURN_IF_ERROR(cluster_.Validate());
  LAAR_RETURN_IF_ERROR(placement_.Validate(cluster_, /*require_anti_affinity=*/false));
  if (trace_.segments().empty()) return Status::FailedPrecondition("empty input trace");
  if (options_.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (options_.shards > 1 && options_.link_latency_seconds <= 0.0) {
    return Status::InvalidArgument(
        "shards > 1 requires link_latency_seconds > 0 (the conservative window)");
  }
  windowed_ = options_.link_latency_seconds > 0.0;
  if (windowed_ && options_.latency_tracer != nullptr) {
    return Status::InvalidArgument(
        "the latency tracer is not supported by the windowed engine");
  }

  LAAR_ASSIGN_OR_RETURN(rates_, model::ExpectedRates::Compute(app_.graph, app_.input_space));
  LAAR_ASSIGN_OR_RETURN(config_index_, configindex::ConfigIndex::Build(app_.input_space));

  const model::ApplicationGraph& graph = app_.graph;
  const int k = placement_.replication_factor();
  const model::ConfigId peak = app_.input_space.PeakConfig();

  metrics_ = SimulationMetrics{};
  metrics_.bucket_seconds = options_.timeseries_bucket_seconds;
  metrics_.duration = trace_.TotalDuration();
  const size_t num_buckets =
      static_cast<size_t>(std::ceil(metrics_.duration / metrics_.bucket_seconds)) + 1;
  metrics_.replicas.resize(graph.num_components());
  metrics_.pe_processed.assign(graph.num_components(), 0);
  metrics_.host_cycles.assign(cluster_.num_hosts(), 0.0);
  metrics_.source_series.assign(num_buckets, 0.0);
  metrics_.sink_series.assign(num_buckets, 0.0);
  if (options_.record_replica_series) {
    metrics_.replica_series.resize(graph.num_components());
  }

  hosts_.clear();
  hosts_.reserve(cluster_.hosts().size());
  for (const model::Host& host : cluster_.hosts()) {
    auto state = std::make_unique<HostState>();
    state->id = host.id;
    state->capacity = host.capacity_cycles_per_sec;
    hosts_.push_back(std::move(state));
  }

  // Shards: hosts are partitioned round-robin (`host % num_shards`). The
  // synchronous engine keeps one shard purely as the accumulator target.
  num_shards_ = 1;
  if (windowed_) {
    num_shards_ = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(options_.shards), hosts_.size()));
    if (num_shards_ < 1) num_shards_ = 1;
  }
  shard_of_host_.assign(hosts_.size(), 0);
  for (size_t h = 0; h < hosts_.size(); ++h) {
    shard_of_host_[h] = static_cast<int>(h % static_cast<size_t>(num_shards_));
  }
  shards_.clear();
  for (int s = 0; s < num_shards_; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->outbox.resize(static_cast<size_t>(num_shards_));
    shard->outbox_staging.resize(static_cast<size_t>(num_shards_));
    shard->source_series.assign(metrics_.source_series.size(), 0.0);
    shards_.push_back(std::move(shard));
  }

  // PEs with their replicas and ports.
  pes_.clear();
  pes_.resize(graph.num_components());
  for (model::ComponentId pe : graph.Pes()) {
    auto state = std::make_unique<PeState>();
    state->id = pe;
    state->replicas.resize(static_cast<size_t>(k));
    metrics_.replicas[static_cast<size_t>(pe)].resize(static_cast<size_t>(k));
    if (options_.record_replica_series) {
      metrics_.replica_series[static_cast<size_t>(pe)].assign(
          static_cast<size_t>(k), std::vector<double>(num_buckets, 0.0));
    }
    for (int r = 0; r < k; ++r) {
      Replica& replica = state->replicas[static_cast<size_t>(r)];
      replica.pe_id = pe;
      replica.index = r;
      replica.host = placement_.HostOf(pe, r);
      if (replica.host == model::kInvalidHost) {
        return Status::FailedPrecondition(StrFormat("PE %d replica %d is unplaced", pe, r));
      }
      replica.ports.reserve(graph.IncomingEdges(pe).size());
      for (size_t edge_index : graph.IncomingEdges(pe)) {
        const model::Edge& e = graph.edges()[edge_index];
        Port port;
        port.from = e.from;
        port.selectivity = e.selectivity;
        port.cpu_cost = e.cpu_cost_cycles;
        // Sized for `queue_seconds` of the port's peak-configuration
        // arrival rate (§5.2).
        const double peak_rate = rates_.Rate(e.from, peak);
        port.capacity = std::max<size_t>(
            options_.min_queue_capacity,
            static_cast<size_t>(std::ceil(options_.queue_seconds * peak_rate)));
        port.watermark = std::max<size_t>(
            1, static_cast<size_t>(std::ceil(options_.queue_watermark_fraction *
                                             static_cast<double>(port.capacity))));
        replica.ports.push_back(port);
      }
      size_t backlog_bound = 0;
      for (const Port& port : replica.ports) backlog_bound += port.capacity;
      replica.fifo.Init(backlog_bound);
    }
    pes_[static_cast<size_t>(pe)] = std::move(state);
  }

  // Output wiring: port index of edge (u, v) at v = position of that edge
  // within v's incoming edge list.
  auto port_index_at = [&graph](model::ComponentId from, model::ComponentId to) {
    const auto& incoming = graph.IncomingEdges(to);
    for (size_t i = 0; i < incoming.size(); ++i) {
      if (graph.edges()[incoming[i]].from == from) return static_cast<int>(i);
    }
    return -1;
  };
  auto outputs_of = [&](model::ComponentId id) {
    std::vector<Output> outputs;
    outputs.reserve(graph.OutgoingEdges(id).size());
    for (size_t edge_index : graph.OutgoingEdges(id)) {
      const model::Edge& e = graph.edges()[edge_index];
      Output output;
      output.to = e.to;
      output.is_sink = graph.IsSink(e.to);
      output.port_index = output.is_sink ? -1 : port_index_at(id, e.to);
      outputs.push_back(output);
    }
    return outputs;
  };
  for (model::ComponentId pe : graph.Pes()) {
    pes_[static_cast<size_t>(pe)]->outputs = outputs_of(pe);
  }

  sources_.clear();
  sources_.reserve(graph.Sources().size());
  for (model::ComponentId source : graph.Sources()) {
    auto state = std::make_unique<SourceState>();
    state->id = source;
    LAAR_ASSIGN_OR_RETURN(state->source_index, app_.input_space.SourceIndexOf(source));
    state->outputs = outputs_of(source);
    state->net_host = static_cast<int32_t>(hosts_.size() + state->source_index);
    state->shard =
        static_cast<int>(state->source_index % static_cast<size_t>(num_shards_));
    sources_.push_back(std::move(state));
  }

  // Initial activation state: the strategy entry of the configuration the
  // trace starts in, applied instantaneously (deployment-time setup).
  applied_config_ = trace_.ConfigAt(0.0);
  for (model::ComponentId pe : graph.Pes()) {
    PeState* state = pes_[static_cast<size_t>(pe)].get();
    for (Replica& replica : state->replicas) {
      replica.active = strategy_.IsActive(pe, replica.index, applied_config_);
    }
  }
  // Telemetry series, created up front so a run with no samples still
  // exports empty series under stable names.
  telemetry_.reset();
  if (options_.telemetry != nullptr && options_.telemetry_period_seconds > 0.0) {
    auto telemetry = std::make_unique<TelemetryState>();
    telemetry->period = options_.telemetry_period_seconds;
    auto series = [this](const char* name, obs::MetricsRegistry::Labels extra) {
      obs::MetricsRegistry::Labels labels = options_.telemetry_labels;
      labels.insert(labels.end(), extra.begin(), extra.end());
      return options_.telemetry->GetTimeSeries(name, labels, options_.telemetry_capacity);
    };
    telemetry->source_rate = series("ts_source_rate", {});
    telemetry->output_rate = series("ts_output_rate", {});
    telemetry->drop_rate = series("ts_drop_rate", {});
    telemetry->pending_events = series("ts_pending_events", {});
    telemetry->host_util.resize(hosts_.size(), nullptr);
    for (size_t h = 0; h < hosts_.size(); ++h) {
      telemetry->host_util[h] =
          series("ts_host_cpu_util", {{"host", std::to_string(h)}});
    }
    telemetry->queue_depth.assign(pes_.size(), nullptr);
    for (model::ComponentId pe : graph.Pes()) {
      telemetry->queue_depth[static_cast<size_t>(pe)] =
          series("ts_queue_depth", {{"pe", std::to_string(pe)}});
    }
    telemetry->prev_host_cycles.assign(hosts_.size(), 0.0);
    telemetry_ = std::move(telemetry);
  }
  // Windowed mode leaves the recorder detached from every engine: backlog
  // sampling is keyed to one engine's event count, which is exactly what a
  // partition changes. All other trace paths are partition-invariant.
  if (!windowed_) simulator_.set_trace_recorder(options_.trace_recorder);
  built_ = true;
  return Status::OK();
}

Status StreamSimulation::InjectPermanentReplicaFailure(model::ComponentId pe, int replica) {
  LAAR_RETURN_IF_ERROR(Build());
  if (pe < 0 || static_cast<size_t>(pe) >= pes_.size() || pes_[static_cast<size_t>(pe)] == nullptr) {
    return Status::InvalidArgument(StrFormat("component %d is not a PE", pe));
  }
  PeState* state = pes_[static_cast<size_t>(pe)].get();
  if (replica < 0 || static_cast<size_t>(replica) >= state->replicas.size()) {
    return Status::InvalidArgument(StrFormat("PE %d has no replica %d", pe, replica));
  }
  state->replicas[static_cast<size_t>(replica)].alive = false;
  state->replicas[static_cast<size_t>(replica)].permanently_failed = true;
  if (Tracing(obs::Category::kFailures)) {
    options_.trace_recorder->Instant(obs::EventName::kReplicaCrash, simulator_.now(), pe,
                                     replica,
                                     state->replicas[static_cast<size_t>(replica)].host);
  }
  return Status::OK();
}

Status StreamSimulation::ScheduleHostCrash(model::HostId host, sim::SimTime at,
                                           sim::SimTime duration) {
  LAAR_RETURN_IF_ERROR(Build());
  if (host < 0 || static_cast<size_t>(host) >= hosts_.size()) {
    return Status::InvalidArgument(StrFormat("unknown host %d", host));
  }
  if (at < 0.0 || duration <= 0.0) {
    return Status::InvalidArgument("crash time must be >= 0 with positive duration");
  }
  simulator_.ScheduleAt(at, [this, host, duration] { CrashHost(host, duration); });
  return Status::OK();
}

Status StreamSimulation::Run() {
  if (ran_) return Status::FailedPrecondition("simulation already ran");
  LAAR_RETURN_IF_ERROR(Build());
  ran_ = true;

  // Primaries after the initial activation state and injected failures.
  for (auto& pe : pes_) {
    if (pe != nullptr) ElectPrimary(pe.get());
  }

  // Announce the input-configuration timeline up front: the trace is known
  // ahead of time, so each segment boundary becomes one instant event (the
  // exporter sorts by timestamp).
  if (Tracing(obs::Category::kConfig)) {
    sim::SimTime at = 0.0;
    for (const TraceSegment& segment : trace_.segments()) {
      options_.trace_recorder->Instant(obs::EventName::kInputConfig, at, /*pe=*/-1,
                                       /*replica=*/-1, /*host=*/-1, /*port=*/-1,
                                       static_cast<double>(segment.config));
      at += segment.duration;
    }
  }

  // Source drivers: the first tuple of each source fires one inter-arrival
  // interval into the trace.
  for (auto& source : sources_) {
    SourceState* state = source.get();
    const double rate =
        app_.input_space.RateOf(state->source_index, trace_.ConfigAt(0.0));
    if (rate > 0.0) {
      if (windowed_) {
        shards_[static_cast<size_t>(state->shard)]->sim.ScheduleAt(
            1.0 / rate, [this, state] { WindowedSourceEmit(state); });
      } else {
        simulator_.ScheduleAt(1.0 / rate, [this, state] { SourceEmit(state); });
      }
    }
  }

  // The LAAR middleware loop (Rate Monitor -> HAController).
  if (options_.dynamic_control) {
    simulator_.ScheduleAt(options_.monitor_period_seconds, [this] { MonitorTick(); });
  }

  // The telemetry sampler (read-only; see TelemetryTick).
  if (telemetry_ != nullptr && telemetry_->period <= trace_.TotalDuration()) {
    simulator_.ScheduleAt(telemetry_->period, [this] { TelemetryTick(); });
  }

  if (windowed_) {
    RunWindowedLoop();
  } else {
    simulator_.RunUntil(trace_.TotalDuration());
  }

  // Flush processor-sharing accounting up to the horizon.
  for (auto& host : hosts_) AdvanceHost(host.get());

  // Fold the per-shard accumulators into the run totals. Every merge is
  // exact — unsigned adds, integer-valued double adds, maxima, ledger
  // tallies — so shard order cannot leak into the results.
  metrics_.engine_events = simulator_.events_processed();
  for (auto& shard : shards_) {
    metrics_.engine_events += shard->sim.events_processed() + shard->inline_events;
    metrics_.source_tuples += shard->source_tuples;
    metrics_.dropped_tuples += shard->dropped_tuples;
    metrics_.shed_tuples += shard->shed_tuples;
    metrics_.crash_lost_tuples += shard->crash_lost_tuples;
    metrics_.resync_lost_tuples += shard->resync_lost_tuples;
    metrics_.orphaned_tuples += shard->orphaned_tuples;
    metrics_.max_queue_depth = std::max(metrics_.max_queue_depth, shard->max_queue_depth);
    for (size_t i = 0; i < shard->source_series.size(); ++i) {
      metrics_.source_series[i] += shard->source_series[i];
    }
    for (const obs::LossLedger::Row& row : shard->losses.Rows()) {
      metrics_.losses.Record(row.pe, row.cause, row.count);
    }
  }
  // Loss provenance must reconcile on every run: the ledger and the scalar
  // counters are maintained independently at each loss site, so agreement
  // is a real invariant, not a tautology.
  return metrics_.ReconcileLosses();
}

// ---------------------------------------------------------------------------
// The windowed / sharded engine (DESIGN.md §10)
// ---------------------------------------------------------------------------

sim::Simulator& StreamSimulation::SimOfHost(model::HostId host) {
  if (!windowed_) return simulator_;
  return shards_[static_cast<size_t>(shard_of_host_[static_cast<size_t>(host)])]->sim;
}

StreamSimulation::Shard& StreamSimulation::AccOfHost(model::HostId host) {
  return *shards_[static_cast<size_t>(shard_of_host_[static_cast<size_t>(host)])];
}

void StreamSimulation::TupleInstant(Shard& acc, obs::EventName name, double time,
                                    int32_t pe, int32_t replica, int32_t host,
                                    int32_t port, double value) {
  if (!windowed_) {
    options_.trace_recorder->Instant(name, time, pe, replica, host, port, value);
    return;
  }
  obs::TraceEvent event;
  event.name = name;
  event.time = time;
  event.pe = pe;
  event.replica = replica;
  event.host = host;
  event.port = port;
  event.value = value;
  acc.trace_buffer.push_back(event);
}

void StreamSimulation::TupleSpan(Shard& acc, obs::EventName name, double begin,
                                 double duration, int32_t pe, int32_t replica,
                                 int32_t host, int32_t port) {
  if (!windowed_) {
    options_.trace_recorder->Span(name, begin, duration, pe, replica, host, port);
    return;
  }
  obs::TraceEvent event;
  event.name = name;
  event.time = begin;
  event.duration = duration;
  event.pe = pe;
  event.replica = replica;
  event.host = host;
  event.port = port;
  acc.trace_buffer.push_back(event);
}

void StreamSimulation::RunWindowedLoop() {
  const sim::SimTime horizon = trace_.TotalDuration();
  const double window = options_.link_latency_seconds;
  exec::ShardRunner runner(num_shards_);
  auto run_phase = [&](sim::SimTime stop, bool inclusive) {
    phase_end_ = stop;
    runner.RunPhase([this, stop, inclusive](int s) {
      Shard* shard = shards_[static_cast<size_t>(s)].get();
      if (shard->drain_pending) DrainInbox(shard);
      if (inclusive) {
        shard->sim.RunUntil(stop);
      } else {
        shard->sim.RunBefore(stop);
      }
    });
  };

  // Stop points are the union of window barriers (multiples of the window
  // width) and control-event times; between stops, hosts are independent —
  // the only cross-host edge is the network, and its earliest effect is
  // always at least one full window away. At each stop, control actions run
  // on the coordinator while every shard is parked (control-before-local at
  // equal times), then barrier stops rotate the network buffers.
  uint64_t barrier_index = 1;
  sim::SimTime current = 0.0;
  while (current < horizon) {
    // Barriers are computed as window * index, not accumulated, so FP error
    // does not drift with the barrier count.
    sim::SimTime next_barrier = window * static_cast<double>(barrier_index);
    while (next_barrier <= current) {
      ++barrier_index;
      next_barrier = window * static_cast<double>(barrier_index);
    }
    sim::SimTime stop = std::min(horizon, next_barrier);
    sim::SimTime control_at = 0.0;
    if (simulator_.NextEventTime(&control_at) && control_at < stop) stop = control_at;
    if (stop > current) run_phase(stop, /*inclusive=*/false);
    // Control events only ever schedule other control events, so RunUntil
    // leaves the control heap strictly beyond `stop` — the loop always
    // makes progress.
    simulator_.RunUntil(stop);
    if (stop == next_barrier) RotateAndDeliver(stop);
    current = stop;
  }
  // Events at exactly the horizon belong to the run (RunBefore excluded
  // them), as do deliveries staged for a barrier coinciding with it.
  run_phase(horizon, /*inclusive=*/true);
  MergeShardTraces();
}

void StreamSimulation::DrainInbox(Shard* shard) {
  shard->drain_pending = false;
  // (dst_host, src_host, src_seq) is unique per message and independent of
  // the partition, so this sort fixes one delivery order for all shard
  // counts. Deliveries to different hosts touch disjoint state; per
  // (src_host, dst_host) pair the order is emission order.
  std::sort(shard->inbox.begin(), shard->inbox.end(),
            [](const NetMessage& a, const NetMessage& b) {
              if (a.dst_host != b.dst_host) return a.dst_host < b.dst_host;
              if (a.src_host != b.src_host) return a.src_host < b.src_host;
              return a.src_seq < b.src_seq;
            });
  for (const NetMessage& msg : shard->inbox) {
    Replica& target =
        pes_[static_cast<size_t>(msg.to)]->replicas[static_cast<size_t>(msg.replica)];
    DeliverToReplica(&target, msg.port, msg.birth, /*span=*/0);
  }
  shard->inbox.clear();
}

void StreamSimulation::RotateAndDeliver(sim::SimTime stop) {
  // Staged sink arrivals land at this barrier. Replay order must be fixed
  // across partitions because sink-latency accumulation is FP-order
  // sensitive; (src_host, src_seq) is unique and partition-invariant.
  sink_scratch_.clear();
  for (auto& shard : shards_) {
    sink_scratch_.insert(sink_scratch_.end(), shard->sink_staging.begin(),
                         shard->sink_staging.end());
    shard->sink_staging.clear();
    std::swap(shard->sink_staging, shard->sink_outbox);
  }
  std::sort(sink_scratch_.begin(), sink_scratch_.end(),
            [](const SinkMessage& a, const SinkMessage& b) {
              if (a.src_host != b.src_host) return a.src_host < b.src_host;
              return a.src_seq < b.src_seq;
            });
  for (const SinkMessage& msg : sink_scratch_) {
    ++metrics_.sink_tuples;
    metrics_.sink_series[BucketOf(stop)] += 1.0;
    if (options_.record_latency) metrics_.sink_latency.Add(stop - msg.birth);
  }
  // Rotate the network double buffer: staged messages become the
  // destination's inbox (delivered when its next phase starts), and this
  // window's outbox becomes staged.
  for (auto& src : shards_) {
    for (size_t d = 0; d < src->outbox_staging.size(); ++d) {
      std::vector<NetMessage>& staged = src->outbox_staging[d];
      if (!staged.empty()) {
        Shard* dst = shards_[d].get();
        dst->inbox.insert(dst->inbox.end(), staged.begin(), staged.end());
        dst->drain_pending = true;
        staged.clear();
      }
      std::swap(staged, src->outbox[d]);
    }
  }
  MergeShardTraces();
}

void StreamSimulation::MergeShardTraces() {
  if (options_.trace_recorder == nullptr) return;
  trace_scratch_.clear();
  for (auto& shard : shards_) {
    trace_scratch_.insert(trace_scratch_.end(), shard->trace_buffer.begin(),
                          shard->trace_buffer.end());
    shard->trace_buffer.clear();
  }
  // (time, host) totally orders the merge across partitions: equal-time
  // events on different hosts sort by host, and equal (time, host) events
  // all come from the one shard owning that host, where the stable sort
  // preserves their execution order.
  std::stable_sort(trace_scratch_.begin(), trace_scratch_.end(),
                   [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.host < b.host;
                   });
  for (const obs::TraceEvent& event : trace_scratch_) {
    options_.trace_recorder->Record(event);
  }
}

void StreamSimulation::WindowedSourceEmit(SourceState* source) {
  Shard& shard = *shards_[static_cast<size_t>(source->shard)];
  const sim::SimTime horizon = trace_.TotalDuration();
  sim::SimTime t = shard.sim.now();
  // Emissions touch only per-source and per-shard state (counters, series,
  // network outboxes), so the whole phase can drain inline regardless of
  // what else is pending on this shard — unlike the synchronous engine's
  // batched SourceEmit, whose heap peeking would make emission batching
  // depend on which hosts share the engine.
  for (;;) {
    ++source->emitted;
    ++shard.source_tuples;
    shard.source_series[BucketOf(t)] += 1.0;
    for (const Output& output : source->outputs) {
      if (output.is_sink) {
        shard.sink_outbox.push_back(SinkMessage{source->net_host, ++source->net_seq, t});
      } else {
        PeState* downstream = pes_[static_cast<size_t>(output.to)].get();
        for (Replica& target : downstream->replicas) {
          shard.outbox[static_cast<size_t>(shard_of_host_[static_cast<size_t>(target.host)])]
              .push_back(NetMessage{target.host, source->net_host, ++source->net_seq,
                                    output.to, target.index, output.port_index, t});
        }
      }
    }
    const double rate =
        app_.input_space.RateOf(source->source_index, trace_.ConfigAt(t));
    if (rate <= 0.0) return;
    const sim::SimTime next = t + 1.0 / rate;
    if (next > horizon) return;
    if (next >= phase_end_) {
      shard.sim.ScheduleAt(next, [this, source] { WindowedSourceEmit(source); });
      return;
    }
    ++shard.inline_events;
    t = next;
  }
}

// ---------------------------------------------------------------------------
// Processor sharing
// ---------------------------------------------------------------------------

void StreamSimulation::AdvanceHost(HostState* host) {
  const sim::SimTime now = SimOfHost(host->id).now();
  const double dt = now - host->last_advance;
  host->last_advance = now;
  if (dt <= 0.0 || host->busy.empty()) return;
  const double share = host->capacity / static_cast<double>(host->busy.size());
  const double work = share * dt;
  for (Replica* replica : host->busy) {
    replica->remaining_cycles -= work;
    RecordReplicaCycles(replica, work, now);
  }
}

void StreamSimulation::RescheduleHost(HostState* host) {
  sim::Simulator& sim = SimOfHost(host->id);
  if (host->busy.empty()) {
    if (host->completion_event != sim::kInvalidEvent) {
      sim.Cancel(host->completion_event);
      host->completion_event = sim::kInvalidEvent;
      host->completion_target = nullptr;
    }
    return;
  }
  Replica* next = host->busy.front();
  for (Replica* replica : host->busy) {
    if (replica->remaining_cycles < next->remaining_cycles) next = replica;
  }
  const double share = host->capacity / static_cast<double>(host->busy.size());
  const double delay = std::max(0.0, next->remaining_cycles) / share;
  // One pooled service event per host, moved in place on every busy-set
  // change. A reschedule re-draws the tie-break sequence exactly like the
  // cancel + schedule it replaces, so firing order is unchanged.
  host->completion_target = next;
  const sim::SimTime when = sim.now() + delay;
  if (host->completion_event == sim::kInvalidEvent ||
      !sim.Reschedule(host->completion_event, when)) {
    host->completion_event =
        sim.ScheduleAt(when, [this, host] { HostCompletionEvent(host); });
  }
}

void StreamSimulation::HostCompletionEvent(HostState* host) {
  Replica* target = host->completion_target;
  host->completion_event = sim::kInvalidEvent;
  host->completion_target = nullptr;
  AdvanceHost(host);
  const double slack = host->capacity * kCompletionSlackSeconds;
  // Partition busy in place; the finished set lives in a per-shard scratch
  // vector reused across events. Callees only ever append to host->busy
  // (AddBusy) and never re-enter this handler, so both loops are safe.
  std::vector<Replica*>& finished = AccOfHost(host->id).finished_scratch;
  finished.clear();
  size_t kept = 0;
  for (Replica* replica : host->busy) {
    if (replica == target || replica->remaining_cycles <= slack) {
      finished.push_back(replica);
    } else {
      host->busy[kept++] = replica;
    }
  }
  host->busy.resize(kept);
  RescheduleHost(host);
  for (Replica* replica : finished) {
    replica->processing = false;
    replica->remaining_cycles = 0.0;
    FinishTuple(replica);
    TryStartProcessing(replica);
  }
}

void StreamSimulation::AddBusy(Replica* replica) {
  HostState* host = hosts_[static_cast<size_t>(replica->host)].get();
  AdvanceHost(host);
  host->busy.push_back(replica);
  RescheduleHost(host);
}

void StreamSimulation::RemoveBusy(Replica* replica) {
  HostState* host = hosts_[static_cast<size_t>(replica->host)].get();
  AdvanceHost(host);
  auto it = std::find(host->busy.begin(), host->busy.end(), replica);
  if (it != host->busy.end()) host->busy.erase(it);
  RescheduleHost(host);
}

// ---------------------------------------------------------------------------
// Operator mechanics
// ---------------------------------------------------------------------------

void StreamSimulation::DeliverToReplica(Replica* replica, int port_index,
                                        sim::SimTime birth, uint32_t span) {
  Shard& acc = AccOfHost(replica->host);
  const sim::SimTime now = SimOfHost(replica->host).now();
  ReplicaMetrics& rm =
      metrics_.replicas[static_cast<size_t>(replica->pe_id)][static_cast<size_t>(replica->index)];
  if (!replica->alive || !replica->active || replica->resyncing) {
    ++rm.tuples_ignored;
    if (!replica->alive) {
      // A crashed replica cannot buffer its input: the copy is gone.
      ++acc.crash_lost_tuples;
      acc.losses.Record(replica->pe_id, obs::LossCause::kCrashLoss);
      if (Tracing(obs::Category::kDrops)) {
        TupleInstant(acc, obs::EventName::kTupleCrashLoss, now, replica->pe_id,
                     replica->index, replica->host, port_index);
      }
    } else if (replica->resyncing) {
      // Alive and activated but still restoring state (§5.3 resync
      // latency): input during the gap is lost by this copy. Ledger-only —
      // resync gaps also occur in failure-free reconfiguration runs, so a
      // trace event here would perturb failure-free traces.
      ++acc.resync_lost_tuples;
      acc.losses.Record(replica->pe_id, obs::LossCause::kResyncGap);
    }
    // else: deactivated by the strategy — an intended discard, not a loss.
    return;
  }
  ++rm.tuples_arrived;
  Port& port = replica->ports[static_cast<size_t>(port_index)];
  if (options_.enable_load_shedding && port.capacity > 0) {
    // RED-style deterministic shedder: the shed fraction ramps from 0 at
    // the threshold occupancy to 1 at a full queue; a per-port credit
    // accumulator realizes the fraction without randomness.
    const double occupancy =
        static_cast<double>(port.queued) / static_cast<double>(port.capacity);
    const double ramp = 1.0 - options_.shed_threshold;
    const double fraction =
        ramp <= 0.0 ? (occupancy >= options_.shed_threshold ? 1.0 : 0.0)
                    : (occupancy - options_.shed_threshold) / ramp;
    if (fraction > 0.0) {
      port.shed_credit += std::min(fraction, 1.0);
      if (port.shed_credit >= 1.0) {
        port.shed_credit -= 1.0;
        ++rm.tuples_dropped;
        ++acc.dropped_tuples;
        ++acc.shed_tuples;
        acc.losses.Record(replica->pe_id, obs::LossCause::kLoadShed);
        if (Tracing(obs::Category::kDrops)) {
          TupleInstant(acc, obs::EventName::kTupleShed, now, replica->pe_id,
                       replica->index, replica->host, port_index);
        }
        if (span != 0) {
          options_.latency_tracer->RecordHop(span, obs::HopKind::kShed, now, 0.0,
                                             replica->pe_id, replica->index,
                                             replica->host, port_index);
        }
        return;
      }
    } else {
      port.shed_credit = 0.0;
    }
  }
  if (port.queued >= port.capacity) {
    ++rm.tuples_dropped;
    ++acc.dropped_tuples;
    acc.losses.Record(replica->pe_id, obs::LossCause::kQueueOverflow);
    if (Tracing(obs::Category::kDrops)) {
      TupleInstant(acc, obs::EventName::kTupleDrop, now, replica->pe_id, replica->index,
                   replica->host, port_index);
    }
    if (span != 0) {
      options_.latency_tracer->RecordHop(span, obs::HopKind::kDrop, now, 0.0,
                                         replica->pe_id, replica->index, replica->host,
                                         port_index);
    }
    return;
  }
  ++port.queued;
  if (port.queued > acc.max_queue_depth) acc.max_queue_depth = port.queued;
  if (!port.above_watermark && port.queued >= port.watermark) {
    port.above_watermark = true;
    if (Tracing(obs::Category::kQueues)) {
      TupleInstant(acc, obs::EventName::kQueueHighWatermark, now, replica->pe_id,
                   replica->index, replica->host, port_index,
                   static_cast<double>(port.queued));
    }
  }
  if (span != 0) {
    options_.latency_tracer->RecordHop(span, obs::HopKind::kEnqueue, now, 0.0,
                                       replica->pe_id, replica->index, replica->host,
                                       port_index);
  }
  replica->fifo.push_back(QueuedTuple{port_index, birth, now, span});
  TryStartProcessing(replica);
}

void StreamSimulation::TryStartProcessing(Replica* replica) {
  if (replica->processing || !replica->alive || !replica->active || replica->resyncing) {
    return;
  }
  if (replica->fifo.empty()) return;
  const QueuedTuple tuple = replica->fifo.front();
  replica->fifo.pop_front();
  Port& port = replica->ports[static_cast<size_t>(tuple.port)];
  --port.queued;
  if (port.above_watermark && port.queued * 2 <= port.watermark) {
    port.above_watermark = false;
  }
  const sim::SimTime now = SimOfHost(replica->host).now();
  replica->processing = true;
  replica->processing_port = tuple.port;
  replica->processing_birth = tuple.birth;
  replica->processing_start = now;
  replica->processing_span = tuple.span;
  if (tuple.span != 0) {
    options_.latency_tracer->RecordHop(tuple.span, obs::HopKind::kDequeue, now,
                                       now - tuple.enqueued, replica->pe_id,
                                       replica->index, replica->host, tuple.port);
  }
  replica->remaining_cycles = port.cpu_cost;
  if (port.cpu_cost <= 0.0) {
    // Zero-cost tuple: complete synchronously without touching the host.
    replica->processing = false;
    FinishTuple(replica);
    TryStartProcessing(replica);
    return;
  }
  AddBusy(replica);
}

void StreamSimulation::FinishTuple(Replica* replica) {
  Shard& acc = AccOfHost(replica->host);
  const sim::SimTime now = SimOfHost(replica->host).now();
  ReplicaMetrics& rm =
      metrics_.replicas[static_cast<size_t>(replica->pe_id)][static_cast<size_t>(replica->index)];
  ++rm.tuples_processed;
  PeState* pe = pes_[static_cast<size_t>(replica->pe_id)].get();
  const bool is_primary = pe->primary == replica->index;
  if (is_primary) {
    ++metrics_.pe_processed[static_cast<size_t>(replica->pe_id)];
  }
  if (Tracing(obs::Category::kSpans)) {
    TupleSpan(acc, obs::EventName::kProcessSpan, replica->processing_start,
              now - replica->processing_start, replica->pe_id, replica->index,
              replica->host, replica->processing_port);
  }
  const uint32_t span = replica->processing_span;
  replica->processing_span = 0;
  if (span != 0) {
    options_.latency_tracer->RecordHop(span, obs::HopKind::kProcess, now,
                                       now - replica->processing_start,
                                       replica->pe_id, replica->index, replica->host,
                                       replica->processing_port);
  }
  Port& port = replica->ports[static_cast<size_t>(replica->processing_port)];
  replica->processing_port = -1;
  // §5.2 footnote 3 selectivity semantics: an output tuple is produced for
  // every unit the per-port accumulator crosses.
  port.selectivity_acc += port.selectivity;
  const int emit = static_cast<int>(std::floor(port.selectivity_acc));
  port.selectivity_acc -= emit;
  if (emit > 0) {
    if (is_primary) {
      rm.tuples_emitted += static_cast<uint64_t>(emit);
      EmitFrom(replica, emit, replica->processing_birth, span);
    } else {
      // The replica produced output, but the proxy deduplicated it: only
      // the primary's copy went downstream (§5.1). If the seated primary is
      // unserviceable (dead, deactivated, or resyncing — the failover
      // window before re-election) there IS no primary copy: this output is
      // orphaned, and its downstream effect is lost. In failure-free runs
      // the seated primary is serviceable whenever a secondary finishes a
      // tuple, so this path cannot fire there.
      const bool primary_serviceable = [&] {
        if (pe->primary < 0) return false;
        const Replica& seated = pe->replicas[static_cast<size_t>(pe->primary)];
        return seated.alive && seated.active && !seated.resyncing;
      }();
      if (!primary_serviceable) {
        acc.orphaned_tuples += static_cast<uint64_t>(emit);
        acc.losses.Record(replica->pe_id, obs::LossCause::kOrphanedOutput,
                          static_cast<uint64_t>(emit));
        if (Tracing(obs::Category::kDrops)) {
          TupleInstant(acc, obs::EventName::kTupleOrphan, now, replica->pe_id,
                       replica->index, replica->host,
                       /*port=*/-1, static_cast<double>(emit));
        }
      }
      if (span != 0) {
        options_.latency_tracer->RecordHop(span, obs::HopKind::kSuppress, now, 0.0,
                                           replica->pe_id, replica->index, replica->host,
                                           /*port=*/-1);
      }
    }
  }
}

void StreamSimulation::EmitFrom(Replica* replica, int count, sim::SimTime birth,
                                uint32_t span) {
  PeState* pe = pes_[static_cast<size_t>(replica->pe_id)].get();
  Shard& acc = AccOfHost(replica->host);
  const sim::SimTime now = SimOfHost(replica->host).now();
  HostState* host = hosts_[static_cast<size_t>(replica->host)].get();
  for (const Output& output : pe->outputs) {
    for (int i = 0; i < count; ++i) {
      if (output.is_sink) {
        if (windowed_) {
          // Sinks are off-host: the arrival is applied by the coordinator
          // at the delivery barrier, one to two link latencies from now.
          acc.sink_outbox.push_back(SinkMessage{replica->host, ++host->net_seq, birth});
          continue;
        }
        ++metrics_.sink_tuples;
        metrics_.sink_series[BucketOf(now)] += 1.0;
        if (options_.record_latency) {
          metrics_.sink_latency.Add(now - birth);
        }
        if (span != 0) {
          // Arrival on the parent span: the tracer derives the end-to-end
          // latency from the root span's emission time.
          options_.latency_tracer->RecordHop(span, obs::HopKind::kSink, now, 0.0,
                                             output.to, replica->index, replica->host,
                                             /*port=*/-1);
        }
      } else {
        // Each delivered tuple is a new logical tuple: fork one child span
        // per (output, copy) so downstream hops keep their own path.
        uint32_t child = 0;
        if (span != 0) {
          child = options_.latency_tracer->Fork(span, replica->pe_id, now);
          if (child != 0) {
            options_.latency_tracer->RecordHop(child, obs::HopKind::kEmit, now, 0.0,
                                               replica->pe_id, replica->index,
                                               replica->host, output.port_index);
          }
        }
        PeState* downstream = pes_[static_cast<size_t>(output.to)].get();
        for (Replica& target : downstream->replicas) {
          if (windowed_ && target.host != replica->host) {
            // Every cross-host transfer rides the network, same-shard or
            // not — partitioning must not change which edges have latency.
            acc.outbox[static_cast<size_t>(
                           shard_of_host_[static_cast<size_t>(target.host)])]
                .push_back(NetMessage{target.host, replica->host, ++host->net_seq,
                                      output.to, target.index, output.port_index,
                                      birth});
          } else {
            DeliverToReplica(&target, output.port_index, birth, child);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Replication control
// ---------------------------------------------------------------------------

void StreamSimulation::ElectPrimary(PeState* pe) {
  const int previous = pe->primary;
  pe->primary = -1;
  for (const Replica& replica : pe->replicas) {
    if (replica.alive && replica.active && !replica.resyncing) {
      pe->primary = replica.index;
      break;
    }
  }
  if (pe->primary != previous && pe->primary != -1 &&
      Tracing(obs::Category::kActivation)) {
    const Replica& elected = pe->replicas[static_cast<size_t>(pe->primary)];
    options_.trace_recorder->Instant(obs::EventName::kPrimaryElected, simulator_.now(),
                                     pe->id, pe->primary, elected.host, /*port=*/-1,
                                     static_cast<double>(pe->primary));
  }
}

void StreamSimulation::ApplyActivation(Replica* replica, bool active) {
  if (replica->active == active) return;
  ++metrics_.activation_switches;
  if (Tracing(obs::Category::kActivation)) {
    options_.trace_recorder->Instant(
        active ? obs::EventName::kReplicaActivate : obs::EventName::kReplicaDeactivate,
        simulator_.now(), replica->pe_id, replica->index, replica->host);
  }
  PeState* pe = pes_[static_cast<size_t>(replica->pe_id)].get();
  if (active) {
    // Reactivation: resynchronize state with an active replica before
    // processing resumes (§4.6).
    replica->active = true;
    replica->resyncing = true;
    const uint64_t epoch = ++replica->resync_epoch;
    simulator_.ScheduleAfter(options_.resync_latency_seconds, [this, replica, pe, epoch] {
      if (replica->resync_epoch != epoch || !replica->active) return;
      replica->resyncing = false;
      if (replica->alive && pe->primary == -1) ElectPrimary(pe);
      TryStartProcessing(replica);
    });
  } else {
    // Deactivation is immediate: stop processing, discard buffered input
    // (state will be re-synced on reactivation).
    replica->active = false;
    ++replica->resync_epoch;  // invalidate pending resync completions
    replica->resyncing = false;
    if (replica->processing) {
      RemoveBusy(replica);
      replica->processing = false;
      replica->remaining_cycles = 0.0;
      replica->processing_port = -1;
      replica->processing_span = 0;
    }
    replica->fifo.clear();
    for (Port& port : replica->ports) {
      port.queued = 0;
      port.selectivity_acc = 0.0;
      port.above_watermark = false;
    }
    if (pe->primary == replica->index) ElectPrimary(pe);
  }
}

void StreamSimulation::ApplyConfig(model::ConfigId config) {
  if (config == applied_config_) return;
  applied_config_ = config;
  if (Tracing(obs::Category::kConfig)) {
    options_.trace_recorder->Instant(obs::EventName::kConfigApplied, simulator_.now(),
                                     /*pe=*/-1, /*replica=*/-1, /*host=*/-1, /*port=*/-1,
                                     static_cast<double>(config));
  }
  for (auto& pe : pes_) {
    if (pe == nullptr) continue;
    for (Replica& replica : pe->replicas) {
      ApplyActivation(&replica, strategy_.IsActive(pe->id, replica.index, config));
    }
    if (pe->primary == -1) ElectPrimary(pe.get());
  }
}

// ---------------------------------------------------------------------------
// Middleware: Rate Monitor + HAController
// ---------------------------------------------------------------------------

void StreamSimulation::MonitorTick() {
  std::vector<double> measured(sources_.size(), 0.0);
  for (size_t i = 0; i < sources_.size(); ++i) {
    SourceState* source = sources_[i].get();
    const uint64_t count = source->emitted - source->monitor_snapshot;
    source->monitor_snapshot = source->emitted;
    const double adjusted =
        std::max(0.0, static_cast<double>(count) - options_.monitor_tolerance_tuples);
    measured[source->source_index] = adjusted / options_.monitor_period_seconds;
  }
  Result<model::ConfigId> config = config_index_.Lookup(measured);
  if (config.ok() && *config != applied_config_) {
    const model::ConfigId target = *config;
    if (Tracing(obs::Category::kConfig)) {
      options_.trace_recorder->Instant(obs::EventName::kControlDecision, simulator_.now(),
                                       /*pe=*/-1, /*replica=*/-1, /*host=*/-1,
                                       /*port=*/-1, static_cast<double>(target));
    }
    simulator_.ScheduleAfter(options_.control_latency_seconds,
                             [this, target] { ApplyConfig(target); });
  }
  if (simulator_.now() + options_.monitor_period_seconds <= trace_.TotalDuration()) {
    simulator_.ScheduleAfter(options_.monitor_period_seconds, [this] { MonitorTick(); });
  }
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

void StreamSimulation::TelemetryTick() {
  TelemetryState* t = telemetry_.get();
  const sim::SimTime now = simulator_.now();
  const double dt = now - t->prev_time;
  if (dt > 0.0) {
    // Running totals live partly in per-shard accumulators until the
    // end-of-run fold; the tick sums them (shards are parked at stop
    // points, so the reads are safe and partition-invariant).
    uint64_t source_total = metrics_.source_tuples;
    uint64_t dropped_total = metrics_.dropped_tuples;
    size_t pending_total = simulator_.pending_events();
    for (const auto& shard : shards_) {
      source_total += shard->source_tuples;
      dropped_total += shard->dropped_tuples;
      pending_total += shard->sim.pending_events();
    }
    auto rate = [dt](uint64_t current, uint64_t previous) {
      return static_cast<double>(current - previous) / dt;
    };
    if (t->source_rate != nullptr) {
      t->source_rate->Append(now, rate(source_total, t->prev_source));
    }
    if (t->output_rate != nullptr) {
      t->output_rate->Append(now, rate(metrics_.sink_tuples, t->prev_sink));
    }
    if (t->drop_rate != nullptr) {
      t->drop_rate->Append(now, rate(dropped_total, t->prev_dropped));
    }
    for (size_t h = 0; h < hosts_.size(); ++h) {
      if (t->host_util[h] == nullptr) continue;
      const HostState& host = *hosts_[h];
      // Non-mutating estimate of the cycles consumed so far: the recorded
      // total plus the in-flight integration interval. AdvanceHost runs on
      // every busy-set change, so since `last_advance` the host has been
      // either fully busy or fully idle — calling AdvanceHost here instead
      // would split the processor-sharing FP integration at sample times
      // and perturb the very run being observed.
      const double cycles =
          metrics_.host_cycles[h] +
          (host.busy.empty() ? 0.0 : host.capacity * (now - host.last_advance));
      const double util =
          host.capacity > 0.0 ? (cycles - t->prev_host_cycles[h]) / (host.capacity * dt)
                              : 0.0;
      t->host_util[h]->Append(now, util);
      t->prev_host_cycles[h] = cycles;
    }
    for (size_t c = 0; c < pes_.size(); ++c) {
      if (t->queue_depth[c] == nullptr || pes_[c] == nullptr) continue;
      size_t queued = 0;
      for (const Replica& replica : pes_[c]->replicas) {
        for (const Port& port : replica.ports) queued += port.queued;
      }
      t->queue_depth[c]->Append(now, static_cast<double>(queued));
    }
    if (t->pending_events != nullptr) {
      t->pending_events->Append(now, static_cast<double>(pending_total));
    }
    t->prev_time = now;
    t->prev_source = source_total;
    t->prev_sink = metrics_.sink_tuples;
    t->prev_dropped = dropped_total;
  }
  if (now + t->period <= trace_.TotalDuration()) {
    simulator_.ScheduleAfter(t->period, [this] { TelemetryTick(); });
  }
}

// ---------------------------------------------------------------------------
// Sources and failures
// ---------------------------------------------------------------------------

void StreamSimulation::SourceEmit(SourceState* source) {
  for (;;) {
    ++source->emitted;
    ++metrics_.source_tuples;
    metrics_.source_series[BucketOf(simulator_.now())] += 1.0;
    // Sampling decision at the source: a pure function of (seed, source,
    // emission index), so it is identical however this emission interleaves
    // with the rest of the run.
    const uint32_t root = LatencyTracing()
                              ? options_.latency_tracer->SampleRoot(source->id,
                                                                    simulator_.now())
                              : 0;
    for (const Output& output : source->outputs) {
      if (output.is_sink) {
        ++metrics_.sink_tuples;
        metrics_.sink_series[BucketOf(simulator_.now())] += 1.0;
        if (options_.record_latency) metrics_.sink_latency.Add(0.0);
        if (root != 0) {
          options_.latency_tracer->RecordHop(root, obs::HopKind::kSink, simulator_.now(),
                                             0.0, output.to, /*replica=*/-1, /*host=*/-1,
                                             /*port=*/-1);
        }
      } else {
        PeState* downstream = pes_[static_cast<size_t>(output.to)].get();
        for (Replica& target : downstream->replicas) {
          DeliverToReplica(&target, output.port_index, simulator_.now(), root);
        }
      }
    }
    const double rate =
        app_.input_space.RateOf(source->source_index, trace_.ConfigAt(simulator_.now()));
    if (rate <= 0.0) return;
    const sim::SimTime next = simulator_.now() + 1.0 / rate;
    if (next > trace_.TotalDuration()) return;
    // Batched emission: while this source's next tuple strictly precedes
    // every other pending event, drain it inline instead of paying a heap
    // round-trip per tuple. A tie defers to the pending event — it was
    // scheduled earlier and would win the (time, sequence) tie-break — and
    // AdvanceInline keeps time, event counts, and the backlog-sample
    // cadence identical to the unbatched schedule-then-pop.
    sim::SimTime pending_at;
    if (simulator_.NextEventTime(&pending_at) && next >= pending_at) {
      simulator_.ScheduleAt(next, [this, source] { SourceEmit(source); });
      return;
    }
    simulator_.AdvanceInline(next);
  }
}

void StreamSimulation::CrashHost(model::HostId host, sim::SimTime duration) {
  if (Tracing(obs::Category::kFailures)) {
    options_.trace_recorder->Instant(obs::EventName::kHostCrash, simulator_.now(),
                                     /*pe=*/-1, /*replica=*/-1, host, /*port=*/-1,
                                     duration);
  }
  metrics_.crashed_hosts.push_back(host);
  HostState* host_state = hosts_[static_cast<size_t>(host)].get();
  // Overlapping windows merge: the host stays down until the farthest end
  // seen so far, and only the recovery timer armed by the newest crash
  // (greatest epoch) is honoured — the others fire into a superseded
  // window and must not revive anything early.
  const uint64_t epoch = ++host_state->crash_epoch;
  host_state->down_until =
      std::max(host_state->down_until, simulator_.now() + duration);
  for (auto& pe : pes_) {
    if (pe == nullptr) continue;
    for (Replica& replica : pe->replicas) {
      if (replica.host != host || !replica.alive) continue;
      replica.alive = false;
      if (Tracing(obs::Category::kFailures)) {
        options_.trace_recorder->Instant(obs::EventName::kReplicaCrash, simulator_.now(),
                                         replica.pe_id, replica.index, replica.host);
      }
      ++replica.resync_epoch;
      replica.resyncing = false;
      if (replica.processing) {
        RemoveBusy(&replica);
        replica.processing = false;
        replica.remaining_cycles = 0.0;
        replica.processing_port = -1;
        replica.processing_span = 0;
      }
      replica.fifo.clear();
      for (Port& port : replica.ports) {
        port.queued = 0;
        port.selectivity_acc = 0.0;
        port.above_watermark = false;
      }
      if (pe->primary == replica.index) {
        // The dead primary is only replaced once heartbeat loss is
        // detected (§5.1) — downstream output stalls in between. Re-elect
        // whenever the seated primary is not *serviceable* (alive, active,
        // resynced): checking liveness alone let a crashed-then-recovered
        // primary, still resyncing, block the election of a healthy
        // secondary and silence the PE for the rest of the resync.
        PeState* pe_ptr = pe.get();
        simulator_.ScheduleAfter(options_.failover_latency_seconds, [this, pe_ptr] {
          const int current = pe_ptr->primary;
          if (current != -1) {
            const Replica& seated = pe_ptr->replicas[static_cast<size_t>(current)];
            if (seated.alive && seated.active && !seated.resyncing) return;
          }
          ElectPrimary(pe_ptr);
        });
      }
    }
  }
  simulator_.ScheduleAfter(host_state->down_until - simulator_.now(),
                           [this, host, epoch] { RecoverHost(host, epoch); });
}

void StreamSimulation::RecoverHost(model::HostId host, uint64_t crash_epoch) {
  HostState* host_state = hosts_[static_cast<size_t>(host)].get();
  // A stale timer from a crash window that a later crash superseded; the
  // newest crash scheduled its own timer at the merged window's end.
  if (host_state->crash_epoch != crash_epoch) return;
  if (Tracing(obs::Category::kFailures)) {
    options_.trace_recorder->Instant(obs::EventName::kHostRecover, simulator_.now(),
                                     /*pe=*/-1, /*replica=*/-1, host);
  }
  for (auto& pe : pes_) {
    if (pe == nullptr) continue;
    PeState* pe_ptr = pe.get();
    for (Replica& replica : pe->replicas) {
      if (replica.host != host || replica.alive || replica.permanently_failed) continue;
      replica.alive = true;
      if (Tracing(obs::Category::kFailures)) {
        options_.trace_recorder->Instant(obs::EventName::kReplicaRecover,
                                         simulator_.now(), replica.pe_id, replica.index,
                                         replica.host);
      }
      // Rejoin with the activation state the controller currently expects,
      // after a state resync (recovered replicas come back as secondaries).
      replica.active = strategy_.IsActive(pe->id, replica.index, applied_config_);
      if (!replica.active) continue;
      replica.resyncing = true;
      const uint64_t epoch = ++replica.resync_epoch;
      Replica* replica_ptr = &replica;
      simulator_.ScheduleAfter(options_.resync_latency_seconds,
                               [this, replica_ptr, pe_ptr, epoch] {
                                 if (replica_ptr->resync_epoch != epoch) return;
                                 replica_ptr->resyncing = false;
                                 if (pe_ptr->primary == -1) ElectPrimary(pe_ptr);
                                 TryStartProcessing(replica_ptr);
                               });
    }
  }
}

// ---------------------------------------------------------------------------
// Bookkeeping
// ---------------------------------------------------------------------------

size_t StreamSimulation::BucketOf(sim::SimTime t) const {
  const auto bucket = static_cast<size_t>(t / metrics_.bucket_seconds);
  return std::min(bucket, metrics_.sink_series.size() - 1);
}

bool StreamSimulation::Tracing(obs::Category category) const {
  return options_.trace_recorder != nullptr && options_.trace_recorder->Wants(category);
}

bool StreamSimulation::LatencyTracing() const {
  return options_.latency_tracer != nullptr && options_.latency_tracer->enabled();
}

void StreamSimulation::RecordReplicaCycles(Replica* replica, double cycles,
                                           sim::SimTime now) {
  metrics_.replicas[static_cast<size_t>(replica->pe_id)][static_cast<size_t>(replica->index)]
      .cpu_cycles += cycles;
  metrics_.host_cycles[static_cast<size_t>(replica->host)] += cycles;
  if (options_.record_replica_series) {
    metrics_.replica_series[static_cast<size_t>(replica->pe_id)]
                           [static_cast<size_t>(replica->index)][BucketOf(now)] += cycles;
  }
}

}  // namespace laar::dsps
