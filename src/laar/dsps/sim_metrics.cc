#include "laar/dsps/sim_metrics.h"

#include <algorithm>
#include <cmath>

namespace laar::dsps {

double SimulationMetrics::TotalCpuCycles() const {
  double total = 0.0;
  for (const auto& per_pe : replicas) {
    for (const ReplicaMetrics& r : per_pe) total += r.cpu_cycles;
  }
  return total;
}

uint64_t SimulationMetrics::TotalProcessed() const {
  uint64_t total = 0;
  for (uint64_t count : pe_processed) total += count;
  return total;
}

double SimulationMetrics::MeanRate(const std::vector<double>& series, double bucket_seconds,
                                   sim::SimTime from, sim::SimTime to) {
  if (series.empty() || bucket_seconds <= 0.0 || to <= from) return 0.0;
  // Clamp the window to the recorded range, then weight the boundary
  // buckets by their overlap fraction. Counting them at full width mixes
  // out-of-window tuples into the rate whenever the window is not
  // bucket-aligned (e.g. Low-period tuples into a High-segment rate).
  const double lo = std::max(0.0, from);
  const double hi = std::min(to, static_cast<double>(series.size()) * bucket_seconds);
  if (hi <= lo) return 0.0;
  const auto first = static_cast<size_t>(std::floor(lo / bucket_seconds));
  const auto last = std::min(series.size(),
                             static_cast<size_t>(std::ceil(hi / bucket_seconds)));
  if (first >= last) return 0.0;
  double total = 0.0;
  for (size_t i = first; i < last; ++i) {
    const double bucket_lo = static_cast<double>(i) * bucket_seconds;
    const double bucket_hi = bucket_lo + bucket_seconds;
    const double overlap = std::min(hi, bucket_hi) - std::max(lo, bucket_lo);
    total += series[i] * (overlap / bucket_seconds);
  }
  return total / (hi - lo);
}

}  // namespace laar::dsps
