#include "laar/dsps/sim_metrics.h"

#include <algorithm>
#include <cmath>

namespace laar::dsps {

double SimulationMetrics::TotalCpuCycles() const {
  double total = 0.0;
  for (const auto& per_pe : replicas) {
    for (const ReplicaMetrics& r : per_pe) total += r.cpu_cycles;
  }
  return total;
}

uint64_t SimulationMetrics::TotalProcessed() const {
  uint64_t total = 0;
  for (uint64_t count : pe_processed) total += count;
  return total;
}

double SimulationMetrics::MeanRate(const std::vector<double>& series, double bucket_seconds,
                                   sim::SimTime from, sim::SimTime to) {
  if (series.empty() || bucket_seconds <= 0.0 || to <= from) return 0.0;
  const auto first = static_cast<size_t>(std::max(0.0, std::floor(from / bucket_seconds)));
  const auto last = std::min(series.size(),
                             static_cast<size_t>(std::ceil(to / bucket_seconds)));
  if (first >= last) return 0.0;
  double total = 0.0;
  for (size_t i = first; i < last; ++i) total += series[i];
  return total / (static_cast<double>(last - first) * bucket_seconds);
}

}  // namespace laar::dsps
