#include "laar/dsps/sim_metrics.h"

#include <algorithm>
#include <cmath>

#include "laar/common/strings.h"

namespace laar::dsps {

double SimulationMetrics::TotalCpuCycles() const {
  double total = 0.0;
  for (const auto& per_pe : replicas) {
    for (const ReplicaMetrics& r : per_pe) total += r.cpu_cycles;
  }
  return total;
}

uint64_t SimulationMetrics::TotalProcessed() const {
  uint64_t total = 0;
  for (uint64_t count : pe_processed) total += count;
  return total;
}

uint64_t SimulationMetrics::LostTuples() const {
  return dropped_tuples + crash_lost_tuples + resync_lost_tuples +
         orphaned_tuples;
}

Status SimulationMetrics::ReconcileLosses() const {
  auto check = [](const char* what, uint64_t ledger, uint64_t scalar) -> Status {
    if (ledger == scalar) return Status::OK();
    return Status::Internal(StrFormat(
        "loss ledger does not reconcile: %s ledger=%llu scalar=%llu", what,
        static_cast<unsigned long long>(ledger),
        static_cast<unsigned long long>(scalar)));
  };
  using obs::LossCause;
  if (shed_tuples > dropped_tuples) {
    return Status::Internal("shed_tuples exceeds dropped_tuples");
  }
  LAAR_RETURN_IF_ERROR(check("queue_overflow",
                             losses.TotalOf(LossCause::kQueueOverflow),
                             dropped_tuples - shed_tuples));
  LAAR_RETURN_IF_ERROR(
      check("load_shed", losses.TotalOf(LossCause::kLoadShed), shed_tuples));
  LAAR_RETURN_IF_ERROR(check("crash_loss", losses.TotalOf(LossCause::kCrashLoss),
                             crash_lost_tuples));
  LAAR_RETURN_IF_ERROR(check("resync_gap", losses.TotalOf(LossCause::kResyncGap),
                             resync_lost_tuples));
  LAAR_RETURN_IF_ERROR(check("orphaned_output",
                             losses.TotalOf(LossCause::kOrphanedOutput),
                             orphaned_tuples));
  return check("total", losses.Total(), LostTuples());
}

double SimulationMetrics::MeanRate(const std::vector<double>& series, double bucket_seconds,
                                   sim::SimTime from, sim::SimTime to) {
  if (series.empty() || bucket_seconds <= 0.0 || to <= from) return 0.0;
  // Clamp the window to the recorded range, then weight the boundary
  // buckets by their overlap fraction. Counting them at full width mixes
  // out-of-window tuples into the rate whenever the window is not
  // bucket-aligned (e.g. Low-period tuples into a High-segment rate).
  const double lo = std::max(0.0, from);
  const double hi = std::min(to, static_cast<double>(series.size()) * bucket_seconds);
  if (hi <= lo) return 0.0;
  const auto first = static_cast<size_t>(std::floor(lo / bucket_seconds));
  const auto last = std::min(series.size(),
                             static_cast<size_t>(std::ceil(hi / bucket_seconds)));
  if (first >= last) return 0.0;
  double total = 0.0;
  for (size_t i = first; i < last; ++i) {
    const double bucket_lo = static_cast<double>(i) * bucket_seconds;
    const double bucket_hi = bucket_lo + bucket_seconds;
    const double overlap = std::min(hi, bucket_hi) - std::max(lo, bucket_lo);
    total += series[i] * (overlap / bucket_seconds);
  }
  return total / (hi - lo);
}

void PublishTo(obs::MetricsRegistry* registry, const SimulationMetrics& metrics,
               const obs::MetricsRegistry::Labels& labels) {
  if (registry == nullptr) return;
  auto count = [&](const char* name, double value) {
    if (obs::Counter* c = registry->GetCounter(name, labels)) c->Increment(value);
  };
  count("sim_source_tuples", static_cast<double>(metrics.source_tuples));
  count("sim_sink_tuples", static_cast<double>(metrics.sink_tuples));
  count("sim_dropped_tuples", static_cast<double>(metrics.dropped_tuples));
  count("sim_activation_switches", static_cast<double>(metrics.activation_switches));
  count("sim_processed_tuples", static_cast<double>(metrics.TotalProcessed()));
  count("sim_cpu_cycles", metrics.TotalCpuCycles());
  if (obs::Gauge* g = registry->GetGauge("sim_max_queue_depth", labels)) {
    g->Set(std::max(g->value(), static_cast<double>(metrics.max_queue_depth)));
  }
  if (obs::Gauge* g = registry->GetGauge("sim_duration_seconds", labels)) {
    g->Set(metrics.duration);
  }
  // Only crash runs carry crashed hosts; skipping the keys otherwise keeps
  // failure-free registries (and their golden hashes) unchanged.
  if (!metrics.crashed_hosts.empty()) {
    count("sim_host_crashes", static_cast<double>(metrics.crashed_hosts.size()));
    if (obs::Gauge* g = registry->GetGauge("sim_crashed_host", labels)) {
      g->Set(static_cast<double>(metrics.crashed_hosts.back()));
    }
  }
  if (!metrics.sink_latency.empty()) {
    if (obs::HistogramMetric* h = registry->GetHistogram(
            "sim_sink_latency_seconds", labels, 0.0, kSinkLatencyHistogramMaxSeconds,
            kSinkLatencyHistogramBins)) {
      for (double sample : metrics.sink_latency.samples()) h->Observe(sample);
    }
    if (obs::Gauge* g = registry->GetGauge("sim_sink_latency_mean_seconds", labels)) {
      g->Set(metrics.sink_latency.mean());
    }
    if (obs::Gauge* g = registry->GetGauge("sim_sink_latency_p50_seconds", labels)) {
      g->Set(metrics.sink_latency.Percentile(50.0));
    }
    if (obs::Gauge* g = registry->GetGauge("sim_sink_latency_p95_seconds", labels)) {
      g->Set(metrics.sink_latency.Percentile(95.0));
    }
    if (obs::Gauge* g = registry->GetGauge("sim_sink_latency_p99_seconds", labels)) {
      g->Set(metrics.sink_latency.Percentile(99.0));
    }
  }
}

std::string RunSummaryFromRegistry(const obs::MetricsRegistry& registry,
                                   const obs::MetricsRegistry::Labels& labels) {
  auto counter = [&](const char* name) -> double {
    const obs::Counter* c = registry.FindCounter(name, labels);
    return c == nullptr ? 0.0 : c->value();
  };
  auto gauge = [&](const char* name) -> double {
    const obs::Gauge* g = registry.FindGauge(name, labels);
    return g == nullptr ? 0.0 : g->value();
  };
  std::string summary = StrFormat(
      "drops=%llu switches=%llu worst_queue_depth=%llu in=%llu out=%llu",
      static_cast<unsigned long long>(counter("sim_dropped_tuples")),
      static_cast<unsigned long long>(counter("sim_activation_switches")),
      static_cast<unsigned long long>(gauge("sim_max_queue_depth")),
      static_cast<unsigned long long>(counter("sim_source_tuples")),
      static_cast<unsigned long long>(counter("sim_sink_tuples")));
  if (registry.FindGauge("sim_sink_latency_mean_seconds", labels) != nullptr) {
    summary += StrFormat(" latency_mean=%.4gs latency_p95=%.4gs",
                         gauge("sim_sink_latency_mean_seconds"),
                         gauge("sim_sink_latency_p95_seconds"));
  }
  return summary;
}

std::string AggregateRunSummaryFromRegistry(const obs::MetricsRegistry& registry) {
  return StrFormat(
      "drops=%llu switches=%llu worst_queue_depth=%llu in=%llu out=%llu",
      static_cast<unsigned long long>(registry.SumCounters("sim_dropped_tuples")),
      static_cast<unsigned long long>(registry.SumCounters("sim_activation_switches")),
      static_cast<unsigned long long>(registry.MaxGauge("sim_max_queue_depth")),
      static_cast<unsigned long long>(registry.SumCounters("sim_source_tuples")),
      static_cast<unsigned long long>(registry.SumCounters("sim_sink_tuples")));
}

}  // namespace laar::dsps
