#include "laar/configindex/config_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "laar/common/strings.h"

namespace laar::configindex {

namespace {

/// Recursive Sort-Tile-Recursive bulk load: sorts the index range by the
/// current dimension, slices it into tiles, and recurses on the next
/// dimension; at the bottom, consecutive runs become leaves.
void StrSort(std::vector<int>* order, size_t begin, size_t end, size_t dim,
             size_t dimensions, size_t leaf_capacity,
             const std::vector<std::vector<double>>& coords) {
  if (end - begin <= leaf_capacity || dim >= dimensions) return;
  std::sort(order->begin() + static_cast<long>(begin),
            order->begin() + static_cast<long>(end), [&](int a, int b) {
              if (coords[static_cast<size_t>(a)][dim] != coords[static_cast<size_t>(b)][dim]) {
                return coords[static_cast<size_t>(a)][dim] <
                       coords[static_cast<size_t>(b)][dim];
              }
              return a < b;
            });
  const size_t count = end - begin;
  const auto num_leaves =
      static_cast<size_t>(std::ceil(static_cast<double>(count) /
                                    static_cast<double>(leaf_capacity)));
  const auto slices = static_cast<size_t>(std::ceil(
      std::pow(static_cast<double>(num_leaves), 1.0 / static_cast<double>(dimensions - dim))));
  const size_t slice_size = (count + slices - 1) / slices;
  for (size_t s = begin; s < end; s += slice_size) {
    StrSort(order, s, std::min(end, s + slice_size), dim + 1, dimensions, leaf_capacity,
            coords);
  }
}

}  // namespace

Result<ConfigIndex> ConfigIndex::Build(const model::InputSpace& space) {
  LAAR_RETURN_IF_ERROR(space.Validate());
  ConfigIndex index;
  index.dimensions_ = space.num_sources();
  index.peak_config_ = space.PeakConfig();

  const model::ConfigId num_configs = space.num_configs();
  std::vector<std::vector<double>> coords;
  coords.reserve(static_cast<size_t>(num_configs));
  for (model::ConfigId c = 0; c < num_configs; ++c) {
    std::vector<double> point(index.dimensions_);
    for (size_t d = 0; d < index.dimensions_; ++d) point[d] = space.RateOf(d, c);
    index.points_.push_back(Point{point, c});
    coords.push_back(std::move(point));
  }

  // STR bulk load: compute a space-filling ordering, then build leaves over
  // consecutive runs and stack internal levels until one root remains.
  std::vector<int> order(index.points_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  StrSort(&order, 0, order.size(), 0, index.dimensions_, kMaxEntriesPerNode, coords);

  std::vector<int> level;  // node indices of the level under construction
  for (size_t i = 0; i < order.size(); i += kMaxEntriesPerNode) {
    Node leaf;
    leaf.leaf = true;
    leaf.box_min.assign(index.dimensions_, std::numeric_limits<double>::infinity());
    leaf.box_max.assign(index.dimensions_, -std::numeric_limits<double>::infinity());
    for (size_t j = i; j < std::min(order.size(), i + kMaxEntriesPerNode); ++j) {
      leaf.entries.push_back(order[j]);
      const Point& p = index.points_[static_cast<size_t>(order[j])];
      for (size_t d = 0; d < index.dimensions_; ++d) {
        leaf.box_min[d] = std::min(leaf.box_min[d], p.coords[d]);
        leaf.box_max[d] = std::max(leaf.box_max[d], p.coords[d]);
      }
    }
    level.push_back(static_cast<int>(index.nodes_.size()));
    index.nodes_.push_back(std::move(leaf));
  }

  while (level.size() > 1) {
    std::vector<int> parent_level;
    for (size_t i = 0; i < level.size(); i += kMaxEntriesPerNode) {
      Node parent;
      parent.leaf = false;
      parent.box_min.assign(index.dimensions_, std::numeric_limits<double>::infinity());
      parent.box_max.assign(index.dimensions_, -std::numeric_limits<double>::infinity());
      for (size_t j = i; j < std::min(level.size(), i + kMaxEntriesPerNode); ++j) {
        parent.entries.push_back(level[j]);
        const Node& child = index.nodes_[static_cast<size_t>(level[j])];
        for (size_t d = 0; d < index.dimensions_; ++d) {
          parent.box_min[d] = std::min(parent.box_min[d], child.box_min[d]);
          parent.box_max[d] = std::max(parent.box_max[d], child.box_max[d]);
        }
      }
      parent_level.push_back(static_cast<int>(index.nodes_.size()));
      index.nodes_.push_back(std::move(parent));
    }
    level = std::move(parent_level);
  }
  index.root_ = level.empty() ? -1 : level[0];
  return index;
}

double ConfigIndex::MinDistSquared(const Node& node, const std::vector<double>& query) const {
  double total = 0.0;
  for (size_t d = 0; d < dimensions_; ++d) {
    double gap = 0.0;
    if (query[d] < node.box_min[d]) {
      gap = node.box_min[d] - query[d];
    } else if (query[d] > node.box_max[d]) {
      gap = query[d] - node.box_max[d];
    }
    total += gap * gap;
  }
  return total;
}

bool ConfigIndex::BoxCanDominate(const Node& node, const std::vector<double>& query) const {
  for (size_t d = 0; d < dimensions_; ++d) {
    if (node.box_max[d] < query[d]) return false;
  }
  return true;
}

void ConfigIndex::Search(int node_index, const std::vector<double>& query, double* best_dist,
                         model::ConfigId* best_config) const {
  const Node& node = nodes_[static_cast<size_t>(node_index)];
  if (!BoxCanDominate(node, query)) return;
  if (MinDistSquared(node, query) >= *best_dist) return;
  if (node.leaf) {
    for (int point_index : node.entries) {
      const Point& p = points_[static_cast<size_t>(point_index)];
      bool dominates = true;
      double dist = 0.0;
      for (size_t d = 0; d < dimensions_; ++d) {
        if (p.coords[d] < query[d]) {
          dominates = false;
          break;
        }
        const double gap = p.coords[d] - query[d];
        dist += gap * gap;
      }
      if (dominates && dist < *best_dist) {
        *best_dist = dist;
        *best_config = p.config;
      }
    }
    return;
  }
  // Visit children in MINDIST order so the best candidate tightens early.
  std::vector<std::pair<double, int>> ranked;
  ranked.reserve(node.entries.size());
  for (int child : node.entries) {
    ranked.emplace_back(MinDistSquared(nodes_[static_cast<size_t>(child)], query), child);
  }
  std::sort(ranked.begin(), ranked.end());
  for (const auto& [dist, child] : ranked) {
    if (dist >= *best_dist) break;
    Search(child, query, best_dist, best_config);
  }
}

Result<model::ConfigId> ConfigIndex::Lookup(const std::vector<double>& measured_rates) const {
  if (measured_rates.size() != dimensions_) {
    return Status::InvalidArgument(
        StrFormat("expected %zu measured rates, got %zu", dimensions_,
                  measured_rates.size()));
  }
  if (root_ < 0) return Status::FailedPrecondition("empty configuration index");
  double best_dist = std::numeric_limits<double>::infinity();
  model::ConfigId best_config = model::ConfigId{-1};
  Search(root_, measured_rates, &best_dist, &best_config);
  if (best_config < 0) return peak_config_;  // nothing dominates: assume peak load
  return best_config;
}

int ConfigIndex::Height() const {
  if (root_ < 0) return 0;
  int height = 1;
  int node_index = root_;
  while (!nodes_[static_cast<size_t>(node_index)].leaf) {
    node_index = nodes_[static_cast<size_t>(node_index)].entries[0];
    ++height;
  }
  return height;
}

}  // namespace laar::configindex
