#ifndef LAAR_CONFIGINDEX_CONFIG_INDEX_H_
#define LAAR_CONFIGINDEX_CONFIG_INDEX_H_

#include <cstddef>
#include <vector>

#include "laar/common/result.h"
#include "laar/model/input_space.h"

namespace laar::configindex {

/// The HAController's configuration lookup structure (§4.6): "an R-Tree-like
/// data structure that selects the input configuration that is spatially
/// closer to the current data rates and whose components are all greater
/// than the corresponding actual rates", guaranteeing the chosen replica
/// configuration never underestimates the actual system load.
///
/// Input configurations are points in the t-dimensional rate space (one
/// axis per data source). The index is a bulk-loaded (Sort-Tile-Recursive)
/// R-tree over those points; `Lookup` is a branch-and-bound nearest-
/// dominating-point search: a subtree is visited only if its bounding box
/// can contain a point with every coordinate >= the measured rate, and
/// subtrees are explored in MINDIST order.
class ConfigIndex {
 public:
  /// Builds the index over all configurations of `space` (must validate).
  static Result<ConfigIndex> Build(const model::InputSpace& space);

  /// Returns the closest configuration dominating `measured_rates`
  /// (one entry per source, same order as `space.sources()`).
  /// When no configuration dominates the measurement — the live rates
  /// exceed everything in the contract — returns the configuration with the
  /// largest rates (the peak), which is the least-underestimating choice.
  Result<model::ConfigId> Lookup(const std::vector<double>& measured_rates) const;

  size_t num_dimensions() const { return dimensions_; }
  size_t num_points() const { return points_.size(); }

  /// Depth of the tree (1 = single leaf); exposed for tests.
  int Height() const;

 private:
  static constexpr size_t kMaxEntriesPerNode = 8;

  struct Node {
    bool leaf = true;
    std::vector<double> box_min;  // per dimension
    std::vector<double> box_max;
    /// leaf: indices into points_/configs_; internal: indices into nodes_.
    std::vector<int> entries;
  };

  struct Point {
    std::vector<double> coords;
    model::ConfigId config;
  };

  double MinDistSquared(const Node& node, const std::vector<double>& query) const;
  bool BoxCanDominate(const Node& node, const std::vector<double>& query) const;
  void Search(int node_index, const std::vector<double>& query, double* best_dist,
              model::ConfigId* best_config) const;

  size_t dimensions_ = 0;
  std::vector<Point> points_;
  std::vector<Node> nodes_;
  int root_ = -1;
  model::ConfigId peak_config_ = 0;
};

}  // namespace laar::configindex

#endif  // LAAR_CONFIGINDEX_CONFIG_INDEX_H_
