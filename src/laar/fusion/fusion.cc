#include "laar/fusion/fusion.h"

#include <algorithm>

#include "laar/common/strings.h"
#include "laar/model/rates.h"

namespace laar::fusion {

namespace {

/// Mutable working representation during fusion.
struct WorkEdge {
  int from;
  int to;
  double selectivity;
  double cost;
  bool removed = false;
};

struct WorkNode {
  model::ComponentKind kind = model::ComponentKind::kPe;
  std::string name;
  std::vector<model::ComponentId> members;
  /// Peak-configuration CPU demand of the (possibly fused) node.
  double peak_demand = 0.0;
  bool removed = false;
};

}  // namespace

Result<FusionResult> FuseLinearChains(const model::ApplicationDescriptor& app,
                                      const FusionOptions& options) {
  if (!app.graph.validated()) {
    return Status::FailedPrecondition("descriptor must be validated before fusion");
  }
  if (options.max_fused_demand_cycles <= 0.0) {
    return Status::InvalidArgument("max_fused_demand_cycles must be positive");
  }
  LAAR_ASSIGN_OR_RETURN(model::ExpectedRates rates,
                        model::ExpectedRates::Compute(app.graph, app.input_space));
  const model::ConfigId peak = app.input_space.PeakConfig();

  std::vector<WorkNode> nodes;
  for (const model::Component& c : app.graph.components()) {
    WorkNode node;
    node.kind = c.kind;
    node.name = c.name;
    node.members = {c.id};
    node.peak_demand = c.kind == model::ComponentKind::kPe
                           ? rates.CpuDemand(app.graph, c.id, peak)
                           : 0.0;
    nodes.push_back(std::move(node));
  }
  std::vector<WorkEdge> edges;
  for (const model::Edge& e : app.graph.edges()) {
    edges.push_back(WorkEdge{e.from, e.to, e.selectivity, e.cpu_cost_cycles, false});
  }

  auto out_degree = [&edges](int node) {
    int degree = 0;
    for (const WorkEdge& e : edges) {
      if (!e.removed && e.from == node) ++degree;
    }
    return degree;
  };
  auto in_degree = [&edges](int node) {
    int degree = 0;
    for (const WorkEdge& e : edges) {
      if (!e.removed && e.to == node) ++degree;
    }
    return degree;
  };

  FusionResult result;
  bool changed = true;
  while (changed) {
    changed = false;
    for (WorkEdge& chain : edges) {
      if (chain.removed) continue;
      WorkNode& u = nodes[static_cast<size_t>(chain.from)];
      WorkNode& v = nodes[static_cast<size_t>(chain.to)];
      if (u.kind != model::ComponentKind::kPe || v.kind != model::ComponentKind::kPe) {
        continue;
      }
      if (out_degree(chain.from) != 1 || in_degree(chain.to) != 1) continue;
      if (u.peak_demand + v.peak_demand > options.max_fused_demand_cycles) continue;

      // Collapse v into u: rewrite u's inputs, adopt v's outputs.
      for (WorkEdge& e : edges) {
        if (e.removed || &e == &chain) continue;
        if (e.to == chain.from) {
          e.cost += e.selectivity * chain.cost;
          e.selectivity *= chain.selectivity;
        }
        if (e.from == chain.to) e.from = chain.from;
      }
      chain.removed = true;
      u.name += "+" + v.name;
      u.members.insert(u.members.end(), v.members.begin(), v.members.end());
      u.peak_demand += v.peak_demand;
      v.removed = true;
      ++result.operators_fused;
      changed = true;
    }
  }

  // Rebuild the descriptor over the surviving nodes (original order).
  result.fused.name = app.name;
  std::vector<int> new_id(nodes.size(), -1);
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].removed) continue;
    model::ComponentId id = model::kInvalidComponent;
    switch (nodes[i].kind) {
      case model::ComponentKind::kSource:
        id = result.fused.graph.AddSource(nodes[i].name);
        break;
      case model::ComponentKind::kPe:
        id = result.fused.graph.AddPe(nodes[i].name);
        break;
      case model::ComponentKind::kSink:
        id = result.fused.graph.AddSink(nodes[i].name);
        break;
    }
    new_id[i] = id;
    result.groups.push_back(nodes[i].members);
  }
  for (const WorkEdge& e : edges) {
    if (e.removed) continue;
    LAAR_RETURN_IF_ERROR(result.fused.graph.AddEdge(new_id[static_cast<size_t>(e.from)],
                                                    new_id[static_cast<size_t>(e.to)],
                                                    e.selectivity, e.cost));
  }
  for (const model::SourceRateSet& s : app.input_space.sources()) {
    model::SourceRateSet remapped = s;
    remapped.source = new_id[static_cast<size_t>(s.source)];
    LAAR_RETURN_IF_ERROR(result.fused.input_space.AddSource(remapped));
  }
  LAAR_RETURN_IF_ERROR(result.fused.Validate());
  return result;
}

}  // namespace laar::fusion
