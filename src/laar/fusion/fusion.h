#ifndef LAAR_FUSION_FUSION_H_
#define LAAR_FUSION_FUSION_H_

#include <limits>
#include <vector>

#include "laar/common/result.h"
#include "laar/model/descriptor.h"

namespace laar::fusion {

/// Operator fusion, the compilation step IBM Streams applies before
/// deployment (§5.1: "the Streams compiler can fuse several operators into
/// single PEs to minimize context-switching and communication overheads",
/// cf. COLA [21]). LAAR operates on the post-fusion PE graph; this module
/// performs the step for applications authored at operator granularity.
///
/// The pass fuses *linear chains*: an edge u -> v is collapsed when u's
/// only successor is v and v's only predecessor is u (both PEs). Fusion is
/// semantics-preserving under the linear load model — for every input edge
/// e of u:
///     selectivity'(e) = selectivity(e) · selectivity(u->v)
///     cost'(e)        = cost(e) + selectivity(e) · cost(u->v)
/// which keeps all downstream rates and the total CPU demand identical
/// (verified by the test suite).
struct FusionOptions {
  /// A chain is only collapsed while the fused PE's peak-configuration CPU
  /// demand stays below this bound (cycles/second); unbounded fusion can
  /// produce PEs too big to schedule (the monolith defeats LAAR's
  /// per-replica activation granularity).
  double max_fused_demand_cycles = std::numeric_limits<double>::infinity();
};

struct FusionResult {
  model::ApplicationDescriptor fused;
  /// For every component of `fused` (by id): the ids of the original
  /// components it contains (singleton for sources/sinks/unfused PEs).
  std::vector<std::vector<model::ComponentId>> groups;
  /// Number of fusion steps applied (= original PEs - fused PEs).
  int operators_fused = 0;
};

/// Runs the pass; the input descriptor must validate.
Result<FusionResult> FuseLinearChains(const model::ApplicationDescriptor& app,
                                      const FusionOptions& options);

}  // namespace laar::fusion

#endif  // LAAR_FUSION_FUSION_H_
