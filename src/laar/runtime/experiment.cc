#include "laar/runtime/experiment.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "laar/common/rng.h"
#include "laar/common/stopwatch.h"
#include "laar/common/strings.h"
#include "laar/ftsearch/ft_search.h"
#include "laar/obs/chrome_trace.h"
#include "laar/obs/latency_tracer.h"
#include "laar/obs/trace_recorder.h"

namespace laar::runtime {

const char* FailureScenarioName(FailureScenario scenario) {
  switch (scenario) {
    case FailureScenario::kNone:
      return "best-case";
    case FailureScenario::kWorstCase:
      return "worst-case";
    case FailureScenario::kHostCrash:
      return "host-crash";
    case FailureScenario::kDomainOutage:
      return "domain-outage";
  }
  return "?";
}

namespace {

/// Hosts that actually carry at least one replica, in host order. Crashing
/// any other host is a guaranteed no-op.
std::vector<model::HostId> ReplicaCarryingHosts(const appgen::GeneratedApplication& app) {
  std::vector<model::HostId> hosts;
  for (size_t h = 0; h < app.cluster.num_hosts(); ++h) {
    const auto host = static_cast<model::HostId>(h);
    if (!app.placement.ReplicasOn(host).empty()) hosts.push_back(host);
  }
  return hosts;
}

/// Start times of the High segments of the trace, in order.
std::vector<double> HighSegmentStarts(const dsps::InputTrace& trace,
                                      model::ConfigId high) {
  std::vector<double> starts;
  double elapsed = 0.0;
  for (const dsps::TraceSegment& segment : trace.segments()) {
    if (segment.config == high) {
      starts.push_back(elapsed + std::min(2.0, segment.duration * 0.1));
    }
    elapsed += segment.duration;
  }
  return starts;
}

}  // namespace

Result<dsps::InputTrace> MakeExperimentTrace(const model::InputSpace& space,
                                             double total_seconds, double high_fraction,
                                             int cycles) {
  if (total_seconds <= 0.0 || cycles < 1 || high_fraction <= 0.0 || high_fraction >= 1.0) {
    return Status::InvalidArgument("invalid trace parameters");
  }
  const double cycle = total_seconds / cycles;
  const model::ConfigId low = 0;
  const model::ConfigId high = space.PeakConfig();
  return dsps::InputTrace::Alternating(low, cycle * (1.0 - high_fraction), high,
                                       cycle * high_fraction, cycles);
}

std::vector<int> ChooseWorstCaseSurvivors(const model::ApplicationGraph& graph,
                                          const model::InputSpace& space,
                                          const strategy::ActivationStrategy& strategy) {
  std::vector<int> survivors(graph.num_components(), -1);
  const int k = strategy.replication_factor();
  for (model::ComponentId pe : graph.Pes()) {
    // Weighted activity of each replica; the adversary keeps the least
    // active one alive (assumption 2: the survivor is chosen among the
    // inactive replicas whenever some configuration deactivates one).
    // Equally active replicas tie-break to the lowest index, so the
    // survivor choice is deterministic and order-independent.
    int best = 0;
    double best_activity = 0.0;
    for (int r = 0; r < k; ++r) {
      double activity = 0.0;
      for (model::ConfigId c = 0; c < space.num_configs(); ++c) {
        if (strategy.IsActive(pe, r, c)) activity += space.Probability(c);
      }
      if (r == 0 || activity < best_activity) {
        best = r;
        best_activity = activity;
      }
    }
    survivors[static_cast<size_t>(pe)] = best;
  }
  return survivors;
}

Result<dsps::SimulationMetrics> RunScenario(const appgen::GeneratedApplication& app,
                                            const strategy::ActivationStrategy& strategy,
                                            const dsps::InputTrace& trace,
                                            const dsps::RuntimeOptions& runtime_options,
                                            const ScenarioOptions& scenario) {
  dsps::StreamSimulation simulation(app.descriptor, app.cluster, app.placement, strategy,
                                    trace, runtime_options);
  switch (scenario.scenario) {
    case FailureScenario::kNone:
      break;
    case FailureScenario::kWorstCase: {
      const std::vector<int> survivors =
          ChooseWorstCaseSurvivors(app.descriptor.graph, app.descriptor.input_space,
                                   strategy);
      for (model::ComponentId pe : app.descriptor.graph.Pes()) {
        for (int r = 0; r < strategy.replication_factor(); ++r) {
          if (r != survivors[static_cast<size_t>(pe)]) {
            LAAR_RETURN_IF_ERROR(simulation.InjectPermanentReplicaFailure(pe, r));
          }
        }
      }
      break;
    }
    case FailureScenario::kHostCrash: {
      // A random host crashes shortly after a High period begins — the
      // window where LAAR's guarantees are weakest (§5.3). Drawn among the
      // hosts that actually carry replicas: a uniform draw over all hosts
      // silently degenerated to a no-op whenever the seed landed on an
      // empty host.
      Rng rng(scenario.seed);
      const std::vector<model::HostId> candidates = ReplicaCarryingHosts(app);
      if (candidates.empty()) {
        return Status::FailedPrecondition("placement puts replicas on no host");
      }
      const model::HostId host = candidates[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
      const std::vector<double> starts =
          HighSegmentStarts(trace, app.descriptor.input_space.PeakConfig());
      if (starts.empty()) {
        return Status::FailedPrecondition("trace has no High segment to crash during");
      }
      LAAR_RETURN_IF_ERROR(
          simulation.ScheduleHostCrash(host, starts.front(),
                                       scenario.crash_duration_seconds));
      break;
    }
    case FailureScenario::kDomainOutage: {
      // Correlated bursts: whole failure domains (racks/zones) die at once.
      // Each burst strikes one High period and re-draws a replica-carrying
      // domain, so a run can lose different domains over its lifetime.
      const model::FailureTopology& topology = app.cluster.topology();
      LAAR_RETURN_IF_ERROR(topology.Validate(app.cluster.num_hosts()));
      std::vector<model::DomainId> domains;
      for (const model::HostId host : ReplicaCarryingHosts(app)) {
        const model::DomainId domain = topology.DomainOf(host, scenario.domain_level);
        if (std::find(domains.begin(), domains.end(), domain) == domains.end()) {
          domains.push_back(domain);
        }
      }
      if (domains.empty()) {
        return Status::FailedPrecondition("placement puts replicas on no host");
      }
      const std::vector<double> starts =
          HighSegmentStarts(trace, app.descriptor.input_space.PeakConfig());
      if (starts.empty()) {
        return Status::FailedPrecondition("trace has no High segment to crash during");
      }
      Rng rng(scenario.seed);
      const int bursts =
          std::min<int>(std::max(scenario.outage_bursts, 1),
                        static_cast<int>(starts.size()));
      for (int b = 0; b < bursts; ++b) {
        const model::DomainId domain = domains[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(domains.size()) - 1))];
        for (const model::HostId host :
             topology.HostsInDomain(scenario.domain_level, domain)) {
          LAAR_RETURN_IF_ERROR(simulation.ScheduleHostCrash(
              host, starts[static_cast<size_t>(b)], scenario.crash_duration_seconds));
        }
      }
      break;
    }
  }
  LAAR_RETURN_IF_ERROR(simulation.Run());
  return simulation.metrics();
}

namespace {

/// Mean sink output rate over the High segments of the trace.
double PeakOutputRate(const dsps::SimulationMetrics& metrics, const dsps::InputTrace& trace,
                      model::ConfigId high) {
  double total_tuples = 0.0;
  double total_seconds = 0.0;
  double begin = 0.0;
  for (const dsps::TraceSegment& segment : trace.segments()) {
    const double end = begin + segment.duration;
    if (segment.config == high) {
      total_tuples += dsps::SimulationMetrics::MeanRate(metrics.sink_series,
                                                        metrics.bucket_seconds, begin, end) *
                      segment.duration;
      total_seconds += segment.duration;
    }
    begin = end;
  }
  return total_seconds <= 0.0 ? 0.0 : total_tuples / total_seconds;
}

}  // namespace

void StageTimes::MergeFrom(const StageTimes& other) {
  generate_seconds += other.generate_seconds;
  solve_seconds += other.solve_seconds;
  simulate_best_seconds += other.simulate_best_seconds;
  simulate_worst_seconds += other.simulate_worst_seconds;
  simulate_crash_seconds += other.simulate_crash_seconds;
  simulate_domain_seconds += other.simulate_domain_seconds;
}

const VariantMeasurement* AppExperimentRecord::Find(const std::string& name) const {
  for (const VariantMeasurement& m : variants) {
    if (m.variant == name) return &m;
  }
  return nullptr;
}

Result<AppExperimentRecord> RunAppExperiment(const HarnessOptions& options, uint64_t seed) {
  AppExperimentRecord record;
  record.app_seed = seed;
  Stopwatch stage_watch;
  LAAR_ASSIGN_OR_RETURN(appgen::GeneratedApplication app,
                        appgen::GenerateApplication(options.generator, seed));
  record.stages.generate_seconds = stage_watch.ElapsedSeconds();

  stage_watch.Restart();
  LAAR_ASSIGN_OR_RETURN(std::vector<NamedVariant> variants,
                        BuildVariants(app, options.variants));
  record.stages.solve_seconds = stage_watch.ElapsedSeconds();

  stage_watch.Restart();
  LAAR_ASSIGN_OR_RETURN(
      dsps::InputTrace trace,
      MakeExperimentTrace(app.descriptor.input_space, options.trace_seconds,
                          options.high_fraction, options.trace_cycles));
  record.stages.generate_seconds += stage_watch.ElapsedSeconds();
  const model::ConfigId high = app.descriptor.input_space.PeakConfig();
  const std::string seed_label = StrFormat("%llu", static_cast<unsigned long long>(seed));

  // Runs one scenario, with per-experiment tracing and registry publishing
  // when the harness asks for them. The recorder is local to this call (and
  // hence to the corpus worker running this seed), which keeps the trace
  // files byte-identical for any --jobs value.
  auto run_observed =
      [&](const NamedVariant& variant,
          const ScenarioOptions& scenario) -> Result<dsps::SimulationMetrics> {
    dsps::RuntimeOptions runtime = options.runtime;
    std::optional<obs::TraceRecorder> recorder;
    if (!options.trace_dir.empty()) {
      obs::TraceRecorder::Options trace_options;
      trace_options.capacity = options.trace_capacity;
      trace_options.categories = options.trace_categories;
      recorder.emplace(trace_options);
      runtime.trace_recorder = &*recorder;
    }
    const obs::MetricsRegistry::Labels scenario_labels = {
        {"seed", seed_label},
        {"variant", variant.name},
        {"scenario", FailureScenarioName(scenario.scenario)}};
    if (options.metrics != nullptr && options.record_timeseries) {
      runtime.telemetry = options.metrics;
      runtime.telemetry_period_seconds = options.telemetry_period_seconds;
      runtime.telemetry_capacity = options.telemetry_capacity;
      runtime.telemetry_labels = scenario_labels;
    }
    std::optional<obs::LatencyTracer> tracer;
    if (options.metrics != nullptr && options.latency_sample_rate > 0.0) {
      obs::LatencyTracer::Options tracer_options;
      tracer_options.sample_rate = options.latency_sample_rate;
      tracer_options.seed = options.latency_seed;
      tracer.emplace(tracer_options);
      runtime.latency_tracer = &*tracer;
    }
    LAAR_ASSIGN_OR_RETURN(dsps::SimulationMetrics metrics,
                          RunScenario(app, variant.strategy, trace, runtime, scenario));
    if (recorder.has_value()) {
      const std::string path =
          StrFormat("%s/seed%s_%s_%s.json", options.trace_dir.c_str(),
                    seed_label.c_str(), variant.name.c_str(),
                    FailureScenarioName(scenario.scenario));
      LAAR_RETURN_IF_ERROR(json::WriteFile(
          obs::ToChromeTraceJson(*recorder, tracer.has_value() ? &*tracer : nullptr),
          path));
    }
    if (options.metrics != nullptr) {
      dsps::PublishTo(options.metrics, metrics, scenario_labels);
      if (tracer.has_value()) {
        obs::PublishBreakdown(options.metrics, tracer->Breakdown(), scenario_labels);
      }
    }
    return metrics;
  };

  for (const NamedVariant& variant : variants) {
    VariantMeasurement measurement;
    measurement.variant = variant.name;
    measurement.promised_ic =
        variant.search.has_value() ? variant.search->best_ic : 0.0;
    if (options.metrics != nullptr && variant.search.has_value()) {
      ftsearch::PublishTo(options.metrics, variant.search->stats,
                          {{"seed", seed_label}, {"variant", variant.name}});
    }

    ScenarioOptions best_case;
    best_case.scenario = FailureScenario::kNone;
    stage_watch.Restart();
    LAAR_ASSIGN_OR_RETURN(dsps::SimulationMetrics best,
                          run_observed(variant, best_case));
    record.stages.simulate_best_seconds += stage_watch.ElapsedSeconds();
    measurement.cpu_cycles = best.TotalCpuCycles();
    measurement.dropped = best.dropped_tuples;
    measurement.processed_best = best.TotalProcessed();
    measurement.peak_output_rate = PeakOutputRate(best, trace, high);
    if (!best.sink_latency.empty()) {
      measurement.latency_mean = best.sink_latency.mean();
      measurement.latency_p95 = best.sink_latency.Percentile(95.0);
      laar::Histogram hist(0.0, dsps::kSinkLatencyHistogramMaxSeconds,
                           dsps::kSinkLatencyHistogramBins);
      for (double sample : best.sink_latency.samples()) hist.Add(sample);
      measurement.latency_hist = std::move(hist);
    }

    if (options.run_worst_case) {
      ScenarioOptions worst;
      worst.scenario = FailureScenario::kWorstCase;
      stage_watch.Restart();
      LAAR_ASSIGN_OR_RETURN(dsps::SimulationMetrics metrics,
                            run_observed(variant, worst));
      record.stages.simulate_worst_seconds += stage_watch.ElapsedSeconds();
      measurement.processed_worst = metrics.TotalProcessed();
    }
    if (options.run_host_crash) {
      ScenarioOptions crash;
      crash.scenario = FailureScenario::kHostCrash;
      crash.seed = seed ^ 0x9E3779B97F4A7C15ULL;
      stage_watch.Restart();
      LAAR_ASSIGN_OR_RETURN(dsps::SimulationMetrics metrics,
                            run_observed(variant, crash));
      record.stages.simulate_crash_seconds += stage_watch.ElapsedSeconds();
      measurement.processed_crash = metrics.TotalProcessed();
    }
    if (options.run_domain_outage) {
      ScenarioOptions outage;
      outage.scenario = FailureScenario::kDomainOutage;
      outage.seed = seed ^ 0xC2B2AE3D27D4EB4FULL;
      outage.domain_level = options.domain_outage_level;
      outage.outage_bursts = options.domain_outage_bursts;
      stage_watch.Restart();
      LAAR_ASSIGN_OR_RETURN(dsps::SimulationMetrics metrics,
                            run_observed(variant, outage));
      record.stages.simulate_domain_seconds += stage_watch.ElapsedSeconds();
      measurement.processed_domain = metrics.TotalProcessed();
    }
    record.variants.push_back(std::move(measurement));
  }
  return record;
}

}  // namespace laar::runtime
