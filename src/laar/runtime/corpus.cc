#include "laar/runtime/corpus.h"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "laar/common/stopwatch.h"
#include "laar/exec/parallel.h"

namespace laar::runtime {

namespace {

/// Drops trace files of seeds that did not make it into the corpus.
/// Skipped seeds write partial traces, and the parallel fan-out probes
/// seeds speculatively beyond the last kept one — without this sweep the
/// trace directory's contents would depend on --jobs. Only files matching
/// the harness's own "seed<digits>_*.json" naming are considered.
void PruneUnusedSeedTraces(const std::string& trace_dir,
                           const std::set<uint64_t>& kept_seeds) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(trace_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seed", 0) != 0) continue;
    size_t pos = 4;
    uint64_t seed = 0;
    bool has_digits = false;
    while (pos < name.size() && std::isdigit(static_cast<unsigned char>(name[pos]))) {
      seed = seed * 10 + static_cast<uint64_t>(name[pos] - '0');
      has_digits = true;
      ++pos;
    }
    if (!has_digits || pos >= name.size() || name[pos] != '_') continue;
    if (kept_seeds.count(seed) == 0) std::filesystem::remove(entry.path(), ec);
  }
}

}  // namespace

CorpusResult RunCorpus(const HarnessOptions& harness, const CorpusOptions& corpus) {
  CorpusResult result;
  Stopwatch watch;
  const int jobs = ResolveJobs(corpus.jobs);
  const int max_skips = corpus.num_apps * corpus.max_skips_factor;

  HarnessOptions options = harness;
  std::optional<ThreadPool> pool;
  if (jobs > 1) {
    pool.emplace(static_cast<size_t>(jobs));
    // The pool is spent on the application fan-out; a parallel FT-Search
    // inside a corpus worker would oversubscribe, so it drops to one
    // thread.
    options.variants.ftsearch_threads = 1;
    options.variants.ftsearch_pool = nullptr;
  } else if (options.variants.ftsearch_threads > 1 &&
             options.variants.ftsearch_pool == nullptr) {
    // Serial corpus: the parallelism budget goes to FT-Search root
    // splitting, on one shared pool across all searches.
    pool.emplace(static_cast<size_t>(options.variants.ftsearch_threads));
    options.variants.ftsearch_pool = &*pool;
  }

  std::vector<SeedProbe<AppExperimentRecord>> kept =
      CollectUsableSeeds<AppExperimentRecord>(
          corpus.num_apps, corpus.seed_base, jobs, max_skips,
          [&options](uint64_t seed) -> std::optional<AppExperimentRecord> {
            Result<AppExperimentRecord> record = RunAppExperiment(options, seed);
            if (!record.ok()) return std::nullopt;
            return std::move(*record);
          },
          [&corpus](size_t index, const SeedProbe<AppExperimentRecord>& probe) {
            if (!corpus.verbose) return;
            std::fprintf(stderr, "  [corpus] app %zu/%d (seed %llu)\n", index + 1,
                         corpus.num_apps,
                         static_cast<unsigned long long>(probe.seed));
          },
          jobs > 1 ? &*pool : nullptr, &result.skipped);

  result.records.reserve(kept.size());
  std::set<uint64_t> kept_seeds;
  for (SeedProbe<AppExperimentRecord>& probe : kept) {
    kept_seeds.insert(probe.seed);
    result.stage_totals.MergeFrom(probe.value.stages);
    result.records.push_back(std::move(probe.value));
  }
  // Same jobs-invariance sweep for the registry: speculative seeds'
  // metrics (labelled by seed) retire with them. Each surviving label set
  // had a single writer, so what remains is identical for any jobs value.
  if (!options.trace_dir.empty()) {
    PruneUnusedSeedTraces(options.trace_dir, kept_seeds);
  }
  if (options.metrics != nullptr) {
    std::set<std::string> kept_labels;
    for (uint64_t seed : kept_seeds) kept_labels.insert(std::to_string(seed));
    options.metrics->PruneByLabel("seed", [&kept_labels](const std::string& value) {
      return kept_labels.count(value) != 0;
    });
  }
  result.wall_seconds = watch.ElapsedSeconds();
  if (corpus.verbose) {
    const StageTimes& s = result.stage_totals;
    std::fprintf(stderr,
                 "  [corpus] %zu apps, %d skipped seeds, %.1fs wall (jobs=%d); "
                 "stage totals: generate=%.2fs solve=%.2fs "
                 "simulate=%.2fs (best=%.2fs worst=%.2fs crash=%.2fs)\n",
                 result.records.size(), result.skipped, result.wall_seconds, jobs,
                 s.generate_seconds, s.solve_seconds, s.SimulateSeconds(),
                 s.simulate_best_seconds, s.simulate_worst_seconds,
                 s.simulate_crash_seconds);
  }
  return result;
}

std::vector<AppExperimentRecord> RunExperimentCorpus(const HarnessOptions& harness,
                                                     const CorpusOptions& corpus) {
  return RunCorpus(harness, corpus).records;
}

}  // namespace laar::runtime
