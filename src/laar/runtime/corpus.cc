#include "laar/runtime/corpus.h"

#include <cstdio>
#include <optional>
#include <utility>

#include "laar/common/stopwatch.h"
#include "laar/exec/parallel.h"

namespace laar::runtime {

CorpusResult RunCorpus(const HarnessOptions& harness, const CorpusOptions& corpus) {
  CorpusResult result;
  Stopwatch watch;
  const int jobs = ResolveJobs(corpus.jobs);
  const int max_skips = corpus.num_apps * corpus.max_skips_factor;

  HarnessOptions options = harness;
  std::optional<ThreadPool> pool;
  if (jobs > 1) {
    pool.emplace(static_cast<size_t>(jobs));
    // The pool is spent on the application fan-out; a parallel FT-Search
    // inside a corpus worker would oversubscribe, so it drops to one
    // thread.
    options.variants.ftsearch_threads = 1;
    options.variants.ftsearch_pool = nullptr;
  } else if (options.variants.ftsearch_threads > 1 &&
             options.variants.ftsearch_pool == nullptr) {
    // Serial corpus: the parallelism budget goes to FT-Search root
    // splitting, on one shared pool across all searches.
    pool.emplace(static_cast<size_t>(options.variants.ftsearch_threads));
    options.variants.ftsearch_pool = &*pool;
  }

  std::vector<SeedProbe<AppExperimentRecord>> kept =
      CollectUsableSeeds<AppExperimentRecord>(
          corpus.num_apps, corpus.seed_base, jobs, max_skips,
          [&options](uint64_t seed) -> std::optional<AppExperimentRecord> {
            Result<AppExperimentRecord> record = RunAppExperiment(options, seed);
            if (!record.ok()) return std::nullopt;
            return std::move(*record);
          },
          [&corpus](size_t index, const SeedProbe<AppExperimentRecord>& probe) {
            if (!corpus.verbose) return;
            std::fprintf(stderr, "  [corpus] app %zu/%d (seed %llu)\n", index + 1,
                         corpus.num_apps,
                         static_cast<unsigned long long>(probe.seed));
          },
          jobs > 1 ? &*pool : nullptr, &result.skipped);

  result.records.reserve(kept.size());
  for (SeedProbe<AppExperimentRecord>& probe : kept) {
    result.stage_totals.MergeFrom(probe.value.stages);
    result.records.push_back(std::move(probe.value));
  }
  result.wall_seconds = watch.ElapsedSeconds();
  if (corpus.verbose) {
    const StageTimes& s = result.stage_totals;
    std::fprintf(stderr,
                 "  [corpus] %zu apps, %d skipped seeds, %.1fs wall (jobs=%d); "
                 "stage totals: generate=%.2fs solve=%.2fs "
                 "simulate=%.2fs (best=%.2fs worst=%.2fs crash=%.2fs)\n",
                 result.records.size(), result.skipped, result.wall_seconds, jobs,
                 s.generate_seconds, s.solve_seconds, s.SimulateSeconds(),
                 s.simulate_best_seconds, s.simulate_worst_seconds,
                 s.simulate_crash_seconds);
  }
  return result;
}

std::vector<AppExperimentRecord> RunExperimentCorpus(const HarnessOptions& harness,
                                                     const CorpusOptions& corpus) {
  return RunCorpus(harness, corpus).records;
}

}  // namespace laar::runtime
