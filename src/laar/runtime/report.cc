#include "laar/runtime/report.h"

#include "laar/common/strings.h"

namespace laar::runtime {

json::Value RecordToJson(const AppExperimentRecord& record) {
  json::Value doc = json::Value::MakeObject();
  doc.Set("app_seed", json::Value::Int(static_cast<int64_t>(record.app_seed)));
  json::Value variants = json::Value::MakeArray();
  for (const VariantMeasurement& m : record.variants) {
    json::Value v = json::Value::MakeObject();
    v.Set("variant", json::Value::String(m.variant));
    v.Set("cpu_cycles", json::Value::Number(m.cpu_cycles));
    v.Set("dropped", json::Value::Int(static_cast<int64_t>(m.dropped)));
    v.Set("processed_best", json::Value::Int(static_cast<int64_t>(m.processed_best)));
    v.Set("processed_worst", json::Value::Int(static_cast<int64_t>(m.processed_worst)));
    v.Set("processed_crash", json::Value::Int(static_cast<int64_t>(m.processed_crash)));
    v.Set("processed_domain", json::Value::Int(static_cast<int64_t>(m.processed_domain)));
    v.Set("peak_output_rate", json::Value::Number(m.peak_output_rate));
    v.Set("promised_ic", json::Value::Number(m.promised_ic));
    if (m.latency_hist.has_value()) {
      v.Set("latency_mean", json::Value::Number(m.latency_mean));
      v.Set("latency_p95", json::Value::Number(m.latency_p95));
      const Histogram& h = *m.latency_hist;
      json::Value hist = json::Value::MakeObject();
      hist.Set("lo", json::Value::Number(h.lo()));
      hist.Set("hi", json::Value::Number(h.hi()));
      json::Value counts = json::Value::MakeArray();
      for (size_t i = 0; i < h.bins(); ++i) {
        counts.Append(json::Value::Int(static_cast<int64_t>(h.count(i))));
      }
      hist.Set("counts", std::move(counts));
      hist.Set("underflow", json::Value::Int(static_cast<int64_t>(h.underflow())));
      hist.Set("overflow", json::Value::Int(static_cast<int64_t>(h.overflow())));
      v.Set("sink_latency", std::move(hist));
    }
    variants.Append(std::move(v));
  }
  doc.Set("variants", std::move(variants));
  json::Value stages = json::Value::MakeObject();
  stages.Set("generate_seconds", json::Value::Number(record.stages.generate_seconds));
  stages.Set("solve_seconds", json::Value::Number(record.stages.solve_seconds));
  stages.Set("simulate_best_seconds",
             json::Value::Number(record.stages.simulate_best_seconds));
  stages.Set("simulate_worst_seconds",
             json::Value::Number(record.stages.simulate_worst_seconds));
  stages.Set("simulate_crash_seconds",
             json::Value::Number(record.stages.simulate_crash_seconds));
  stages.Set("simulate_domain_seconds",
             json::Value::Number(record.stages.simulate_domain_seconds));
  doc.Set("stages", std::move(stages));
  return doc;
}

json::Value CorpusToJson(const std::vector<AppExperimentRecord>& records,
                         const obs::MetricsRegistry* metrics) {
  json::Value doc = json::Value::MakeObject();
  json::Value list = json::Value::MakeArray();
  for (const AppExperimentRecord& record : records) {
    list.Append(RecordToJson(record));
  }
  doc.Set("records", std::move(list));
  if (metrics != nullptr) {
    json::Value serialized = metrics->ToJson();
    doc.Set("metrics", serialized.GetOr("metrics", json::Value::MakeArray()));
  }
  return doc;
}

Result<AppExperimentRecord> RecordFromJson(const json::Value& value) {
  if (!value.is_object()) return Status::InvalidArgument("record must be an object");
  AppExperimentRecord record;
  LAAR_ASSIGN_OR_RETURN(const json::Value* seed, value.Get("app_seed"));
  LAAR_ASSIGN_OR_RETURN(int64_t seed_value, seed->AsInt());
  record.app_seed = static_cast<uint64_t>(seed_value);
  LAAR_ASSIGN_OR_RETURN(const json::Value* variants, value.Get("variants"));
  if (!variants->is_array()) return Status::InvalidArgument("'variants' must be an array");
  for (const json::Value& v : variants->array()) {
    VariantMeasurement m;
    LAAR_ASSIGN_OR_RETURN(const json::Value* name, v.Get("variant"));
    LAAR_ASSIGN_OR_RETURN(m.variant, name->AsString());
    LAAR_ASSIGN_OR_RETURN(m.cpu_cycles,
                          v.GetOr("cpu_cycles", json::Value::Number(0)).AsDouble());
    LAAR_ASSIGN_OR_RETURN(int64_t dropped,
                          v.GetOr("dropped", json::Value::Int(0)).AsInt());
    m.dropped = static_cast<uint64_t>(dropped);
    LAAR_ASSIGN_OR_RETURN(int64_t best,
                          v.GetOr("processed_best", json::Value::Int(0)).AsInt());
    m.processed_best = static_cast<uint64_t>(best);
    LAAR_ASSIGN_OR_RETURN(int64_t worst,
                          v.GetOr("processed_worst", json::Value::Int(0)).AsInt());
    m.processed_worst = static_cast<uint64_t>(worst);
    LAAR_ASSIGN_OR_RETURN(int64_t crash,
                          v.GetOr("processed_crash", json::Value::Int(0)).AsInt());
    m.processed_crash = static_cast<uint64_t>(crash);
    LAAR_ASSIGN_OR_RETURN(int64_t domain,
                          v.GetOr("processed_domain", json::Value::Int(0)).AsInt());
    m.processed_domain = static_cast<uint64_t>(domain);
    LAAR_ASSIGN_OR_RETURN(m.peak_output_rate,
                          v.GetOr("peak_output_rate", json::Value::Number(0)).AsDouble());
    LAAR_ASSIGN_OR_RETURN(m.promised_ic,
                          v.GetOr("promised_ic", json::Value::Number(0)).AsDouble());
    // The latency block is optional (older dumps predate it, and latency
    // recording may have been off).
    if (v.Get("sink_latency").ok()) {
      LAAR_ASSIGN_OR_RETURN(m.latency_mean,
                            v.GetOr("latency_mean", json::Value::Number(0)).AsDouble());
      LAAR_ASSIGN_OR_RETURN(m.latency_p95,
                            v.GetOr("latency_p95", json::Value::Number(0)).AsDouble());
      LAAR_ASSIGN_OR_RETURN(const json::Value* hist, v.Get("sink_latency"));
      LAAR_ASSIGN_OR_RETURN(double lo,
                            hist->GetOr("lo", json::Value::Number(0)).AsDouble());
      LAAR_ASSIGN_OR_RETURN(double hi,
                            hist->GetOr("hi", json::Value::Number(0)).AsDouble());
      LAAR_ASSIGN_OR_RETURN(const json::Value* counts, hist->Get("counts"));
      if (!counts->is_array()) {
        return Status::InvalidArgument("'sink_latency.counts' must be an array");
      }
      std::vector<size_t> bins;
      bins.reserve(counts->array().size());
      for (const json::Value& c : counts->array()) {
        LAAR_ASSIGN_OR_RETURN(int64_t n, c.AsInt());
        if (n < 0) return Status::InvalidArgument("negative histogram count");
        bins.push_back(static_cast<size_t>(n));
      }
      LAAR_ASSIGN_OR_RETURN(int64_t underflow,
                            hist->GetOr("underflow", json::Value::Int(0)).AsInt());
      LAAR_ASSIGN_OR_RETURN(int64_t overflow,
                            hist->GetOr("overflow", json::Value::Int(0)).AsInt());
      if (underflow < 0 || overflow < 0) {
        return Status::InvalidArgument("negative histogram count");
      }
      m.latency_hist = Histogram::FromCounts(lo, hi, bins,
                                             static_cast<size_t>(underflow),
                                             static_cast<size_t>(overflow));
    }
    record.variants.push_back(std::move(m));
  }
  // Stage times are optional (older dumps predate them).
  if (value.Get("stages").ok()) {
    LAAR_ASSIGN_OR_RETURN(const json::Value* stages, value.Get("stages"));
    LAAR_ASSIGN_OR_RETURN(
        record.stages.generate_seconds,
        stages->GetOr("generate_seconds", json::Value::Number(0)).AsDouble());
    LAAR_ASSIGN_OR_RETURN(
        record.stages.solve_seconds,
        stages->GetOr("solve_seconds", json::Value::Number(0)).AsDouble());
    LAAR_ASSIGN_OR_RETURN(
        record.stages.simulate_best_seconds,
        stages->GetOr("simulate_best_seconds", json::Value::Number(0)).AsDouble());
    LAAR_ASSIGN_OR_RETURN(
        record.stages.simulate_worst_seconds,
        stages->GetOr("simulate_worst_seconds", json::Value::Number(0)).AsDouble());
    LAAR_ASSIGN_OR_RETURN(
        record.stages.simulate_crash_seconds,
        stages->GetOr("simulate_crash_seconds", json::Value::Number(0)).AsDouble());
    LAAR_ASSIGN_OR_RETURN(
        record.stages.simulate_domain_seconds,
        stages->GetOr("simulate_domain_seconds", json::Value::Number(0)).AsDouble());
  }
  return record;
}

Result<std::vector<AppExperimentRecord>> CorpusFromJson(const json::Value& value) {
  LAAR_ASSIGN_OR_RETURN(const json::Value* list, value.Get("records"));
  if (!list->is_array()) return Status::InvalidArgument("'records' must be an array");
  std::vector<AppExperimentRecord> records;
  for (const json::Value& entry : list->array()) {
    LAAR_ASSIGN_OR_RETURN(AppExperimentRecord record, RecordFromJson(entry));
    records.push_back(std::move(record));
  }
  return records;
}

std::string CorpusToCsv(const std::vector<AppExperimentRecord>& records) {
  std::string out =
      "app_seed,variant,cpu_cycles,dropped,processed_best,processed_worst,"
      "processed_crash,processed_domain,peak_output_rate,promised_ic\n";
  for (const AppExperimentRecord& record : records) {
    for (const VariantMeasurement& m : record.variants) {
      out += StrFormat("%llu,%s,%.17g,%llu,%llu,%llu,%llu,%llu,%.17g,%.17g\n",
                       static_cast<unsigned long long>(record.app_seed),
                       m.variant.c_str(), m.cpu_cycles,
                       static_cast<unsigned long long>(m.dropped),
                       static_cast<unsigned long long>(m.processed_best),
                       static_cast<unsigned long long>(m.processed_worst),
                       static_cast<unsigned long long>(m.processed_crash),
                       static_cast<unsigned long long>(m.processed_domain),
                       m.peak_output_rate, m.promised_ic);
    }
  }
  return out;
}

StageTimes CorpusStageTotals(const std::vector<AppExperimentRecord>& records) {
  StageTimes totals;
  for (const AppExperimentRecord& record : records) totals.MergeFrom(record.stages);
  return totals;
}

std::string FormatStageTimes(const StageTimes& stages) {
  return StrFormat(
      "generate=%.2fs solve=%.2fs simulate=%.2fs (best=%.2fs worst=%.2fs "
      "crash=%.2fs domain=%.2fs) total=%.2fs",
      stages.generate_seconds, stages.solve_seconds, stages.SimulateSeconds(),
      stages.simulate_best_seconds, stages.simulate_worst_seconds,
      stages.simulate_crash_seconds, stages.simulate_domain_seconds,
      stages.TotalSeconds());
}

}  // namespace laar::runtime
