#ifndef LAAR_RUNTIME_VARIANTS_H_
#define LAAR_RUNTIME_VARIANTS_H_

#include <optional>
#include <string>
#include <vector>

#include "laar/appgen/app_generator.h"
#include "laar/common/result.h"
#include "laar/ftsearch/ft_search.h"
#include "laar/strategy/activation_strategy.h"

namespace laar::runtime {

/// One replication variant of the §5.2 comparison: a named activation
/// strategy, plus the FT-Search result when the strategy came out of the
/// optimizer (the L.x variants).
struct NamedVariant {
  std::string name;
  strategy::ActivationStrategy strategy;
  std::optional<ftsearch::FtSearchResult> search;
  /// The IC requirement used to produce this variant (L.x only).
  double ic_requirement = 0.0;
};

/// Options for building the comparison set.
struct VariantBuildOptions {
  /// IC requirements of the LAAR variants; 0.5/0.6/0.7 are the paper's
  /// L.5/L.6/L.7.
  std::vector<double> laar_ic_requirements = {0.5, 0.6, 0.7};
  /// FT-Search budget per LAAR variant.
  double ftsearch_time_limit_seconds = 60.0;
  /// Deterministic FT-Search budget: abort after exploring this many nodes
  /// (0 = unlimited). Unlike the wall-clock limit, a node budget makes the
  /// success/failure of BuildVariants independent of machine load, which the
  /// parallel corpus runner relies on for --jobs-invariant seed selection.
  uint64_t ftsearch_node_limit = 0;
  int ftsearch_threads = 1;
  /// Borrowed pool for parallel FT-Search (ftsearch_threads > 1); see
  /// FtSearchOptions::pool. The corpus runner shares its pool here when it
  /// itself runs serially, and forces ftsearch_threads = 1 when it fans
  /// out applications instead.
  laar::ThreadPool* ftsearch_pool = nullptr;
};

/// Builds the full §5.2 variant set for one generated application, in the
/// paper's order: NR, SR, GRD, then one L.x per requested IC requirement.
/// Fails when FT-Search cannot produce a feasible strategy for some L.x
/// (callers typically skip such applications, as the paper's corpus only
/// contains solvable instances).
Result<std::vector<NamedVariant>> BuildVariants(const appgen::GeneratedApplication& app,
                                                const VariantBuildOptions& options);

}  // namespace laar::runtime

#endif  // LAAR_RUNTIME_VARIANTS_H_
