#ifndef LAAR_RUNTIME_CORPUS_H_
#define LAAR_RUNTIME_CORPUS_H_

#include <cstdint>
#include <vector>

#include "laar/runtime/experiment.h"

namespace laar::runtime {

/// Options of the §5.3 corpus runner: how many usable applications to
/// collect and how to fan the work out.
struct CorpusOptions {
  /// Corpus size (the paper's cluster evaluation uses 100 applications).
  int num_apps = 12;
  /// Seeds `seed_base + 1`, `seed_base + 2`, ... are probed in order.
  uint64_t seed_base = 10000;
  /// Worker threads for the application-level fan-out: 1 = serial,
  /// 0 = hardware concurrency. Any value produces identical records — with
  /// `jobs > 1` seeds are probed speculatively in batches and the first
  /// `num_apps` usable ones are kept in seed order, discarding surplus.
  int jobs = 1;
  /// Print per-application progress to stderr.
  bool verbose = true;
  /// Give up after `num_apps * max_skips_factor` unusable seeds (instances
  /// where FT-Search proves some L.x infeasible are skipped, like the
  /// paper's corpus keeps only solvable ones).
  int max_skips_factor = 20;
};

/// Everything a corpus run produces beyond the records themselves.
struct CorpusResult {
  std::vector<AppExperimentRecord> records;
  /// Unusable seeds encountered before the corpus filled (surplus
  /// speculative probes are not counted).
  int skipped = 0;
  /// Per-stage wall-clock totals over the accepted applications. Under
  /// `jobs > 1` stages overlap, so the total can exceed `wall_seconds`.
  StageTimes stage_totals;
  /// End-to-end wall-clock of the corpus run.
  double wall_seconds = 0.0;
};

/// Runs the §5.3 harness over a corpus of generated applications. The
/// records are deterministic in (`harness`, `corpus.num_apps`,
/// `corpus.seed_base`) and independent of `corpus.jobs`.
///
/// Thread budget: with `jobs > 1` the runner owns one `laar::ThreadPool`
/// and fans out whole applications; FT-Search inside each worker is forced
/// to a single thread so the two levels never oversubscribe. With
/// `jobs == 1` the applications run serially and
/// `harness.variants.ftsearch_threads` may parallelize each search
/// instead.
CorpusResult RunCorpus(const HarnessOptions& harness, const CorpusOptions& corpus);

/// Convenience wrapper returning only the records.
std::vector<AppExperimentRecord> RunExperimentCorpus(const HarnessOptions& harness,
                                                     const CorpusOptions& corpus);

}  // namespace laar::runtime

#endif  // LAAR_RUNTIME_CORPUS_H_
