#ifndef LAAR_RUNTIME_EXPERIMENT_H_
#define LAAR_RUNTIME_EXPERIMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "laar/appgen/app_generator.h"
#include "laar/common/result.h"
#include "laar/common/stats.h"
#include "laar/dsps/runtime_options.h"
#include "laar/dsps/sim_metrics.h"
#include "laar/dsps/stream_simulation.h"
#include "laar/dsps/trace.h"
#include "laar/obs/metrics_registry.h"
#include "laar/obs/trace_event.h"
#include "laar/runtime/variants.h"

namespace laar::runtime {

/// The §5.3 failure modes.
enum class FailureScenario {
  kNone = 0,         ///< best case: no failure ever occurs
  kWorstCase = 1,    ///< pessimistic model: one replica of each PE dead throughout
  kHostCrash = 2,    ///< one random host crashes during a High period, then recovers
  kDomainOutage = 3, ///< a whole failure domain (rack/zone) crashes, possibly repeatedly
};

const char* FailureScenarioName(FailureScenario scenario);

struct ScenarioOptions {
  FailureScenario scenario = FailureScenario::kNone;
  /// Host-crash parameters: detection + migration takes 16 s on Streams
  /// (§5.3, citing [19]).
  double crash_duration_seconds = 16.0;
  /// Seed controlling the crashed-host/domain choice and crash instant.
  uint64_t seed = 1;

  /// kDomainOutage parameters: the domain granularity that fails together
  /// (per `cluster.topology()`), and how many High periods are struck —
  /// each burst re-draws a replica-carrying domain from `seed` and crashes
  /// every host in it for `crash_duration_seconds`.
  model::DomainLevel domain_level = model::DomainLevel::kRack;
  int outage_bursts = 1;
};

/// Builds the §5.2 experiment trace: `cycles` repetitions of
/// (Low for (1-high_fraction)·T/cycles, High for high_fraction·T/cycles).
Result<dsps::InputTrace> MakeExperimentTrace(const model::InputSpace& space,
                                             double total_seconds, double high_fraction,
                                             int cycles);

/// For every PE, the replica index an adversary (per the pessimistic model,
/// assumptions 1-2 of §4.4) would keep alive: the one with the smallest
/// probability-weighted activity, i.e. chosen among the inactive ones when
/// possible. Indexed by component id; -1 for non-PEs.
std::vector<int> ChooseWorstCaseSurvivors(const model::ApplicationGraph& graph,
                                          const model::InputSpace& space,
                                          const strategy::ActivationStrategy& strategy);

/// Runs one variant of one application under a failure scenario and returns
/// the collected metrics.
Result<dsps::SimulationMetrics> RunScenario(const appgen::GeneratedApplication& app,
                                            const strategy::ActivationStrategy& strategy,
                                            const dsps::InputTrace& trace,
                                            const dsps::RuntimeOptions& runtime_options,
                                            const ScenarioOptions& scenario);

/// Aggregated per-variant measurements of one application.
struct VariantMeasurement {
  std::string variant;
  double cpu_cycles = 0.0;        ///< best-case total CPU consumption
  uint64_t dropped = 0;           ///< best-case queue-overflow drops
  uint64_t processed_best = 0;    ///< Σ_pe tuples processed, best case
  uint64_t processed_worst = 0;   ///< same, pessimistic worst case
  uint64_t processed_crash = 0;   ///< same, host-crash scenario (if run)
  uint64_t processed_domain = 0;  ///< same, domain-outage scenario (if run)
  double peak_output_rate = 0.0;  ///< mean sink rate over High periods, best case
  double promised_ic = 0.0;       ///< FT-Search IC bound (L.x variants)

  double latency_mean = 0.0;  ///< best-case mean sink latency, seconds
  double latency_p95 = 0.0;   ///< best-case p95 sink latency, seconds
  /// Best-case sink-latency distribution over
  /// [0, dsps::kSinkLatencyHistogramMaxSeconds) with
  /// dsps::kSinkLatencyHistogramBins bins; absent when latency recording
  /// was off.
  std::optional<laar::Histogram> latency_hist;
};

/// Wall-clock breakdown of one `RunAppExperiment` call (or, merged, of a
/// whole corpus): where the harness actually spends its time.
struct StageTimes {
  double generate_seconds = 0.0;       ///< application generation + trace build
  double solve_seconds = 0.0;          ///< BuildVariants (FT-Search, baselines)
  double simulate_best_seconds = 0.0;  ///< best-case simulations, all variants
  double simulate_worst_seconds = 0.0; ///< pessimistic worst-case simulations
  double simulate_crash_seconds = 0.0; ///< host-crash simulations
  double simulate_domain_seconds = 0.0; ///< domain-outage simulations

  double SimulateSeconds() const {
    return simulate_best_seconds + simulate_worst_seconds + simulate_crash_seconds +
           simulate_domain_seconds;
  }
  double TotalSeconds() const {
    return generate_seconds + solve_seconds + SimulateSeconds();
  }
  void MergeFrom(const StageTimes& other);
};

/// Per-application record of the full §5.3 comparison.
struct AppExperimentRecord {
  uint64_t app_seed = 0;
  std::vector<VariantMeasurement> variants;  // NR first, then SR, GRD, L.x
  /// Wall-clock accounting; timing only, never part of record identity
  /// (the parallel corpus runner produces identical variant measurements
  /// for any --jobs value, but stage times differ run to run).
  StageTimes stages;

  const VariantMeasurement* Find(const std::string& name) const;
};

struct HarnessOptions {
  appgen::GeneratorOptions generator;
  VariantBuildOptions variants;
  dsps::RuntimeOptions runtime;
  double trace_seconds = 300.0;
  double high_fraction = 1.0 / 3.0;
  int trace_cycles = 3;
  bool run_worst_case = true;
  bool run_host_crash = false;
  /// Runs the correlated domain-outage scenario per variant. Pointless on a
  /// trivial topology (it degenerates to kHostCrash with extra bursts), so
  /// pair it with non-trivial `generator.hosts_per_rack`.
  bool run_domain_outage = false;
  model::DomainLevel domain_outage_level = model::DomainLevel::kRack;
  int domain_outage_bursts = 1;

  /// When non-empty, every (variant, scenario) simulation records a trace
  /// and writes it as Chrome trace-event JSON to
  /// `<trace_dir>/seed<seed>_<variant>_<scenario>.json`. The directory must
  /// already exist. Each recorder lives entirely inside the worker running
  /// the seed, so the files are byte-identical for any corpus --jobs value.
  std::string trace_dir;
  uint32_t trace_categories = obs::kAllCategories;
  size_t trace_capacity = 1u << 18;

  /// Optional registry the experiment publishes into: the canonical
  /// `sim_*` aggregates per (seed, variant, scenario) and `ftsearch_*`
  /// statistics per (seed, variant). The registry is thread-safe and each
  /// label combination has a single writer, so a corpus run fills it
  /// identically for any --jobs value. Must outlive the run.
  obs::MetricsRegistry* metrics = nullptr;

  /// When set (and `metrics` is non-null), every simulation also records
  /// `ts_*` telemetry series into the registry, labelled with
  /// (seed, variant, scenario) — one writer per label set, so the series
  /// are --jobs-invariant like the scalar aggregates.
  bool record_timeseries = false;
  double telemetry_period_seconds = 1.0;
  size_t telemetry_capacity = 1u << 12;

  /// When > 0 (and `metrics` is non-null), every simulation runs a sampled
  /// latency tracer at this rate and publishes its per-operator and
  /// end-to-end percentile gauges (`trace_*`) per (seed, variant, scenario).
  double latency_sample_rate = 0.0;
  uint64_t latency_seed = 1;
};

/// Generates an application from `seed`, builds all variants, and runs the
/// requested scenarios. Returns FailedPrecondition when the instance is not
/// usable (e.g. FT-Search proves some L.x infeasible); callers skip those
/// seeds, like the paper's corpus keeps only solvable instances.
Result<AppExperimentRecord> RunAppExperiment(const HarnessOptions& options, uint64_t seed);

}  // namespace laar::runtime

#endif  // LAAR_RUNTIME_EXPERIMENT_H_
