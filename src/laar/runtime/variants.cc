#include "laar/runtime/variants.h"

#include <algorithm>
#include <functional>

#include "laar/common/strings.h"
#include "laar/strategy/baselines.h"

namespace laar::runtime {

Result<std::vector<NamedVariant>> BuildVariants(const appgen::GeneratedApplication& app,
                                                const VariantBuildOptions& options) {
  const model::ApplicationGraph& graph = app.descriptor.graph;
  const model::InputSpace& space = app.descriptor.input_space;
  LAAR_ASSIGN_OR_RETURN(model::ExpectedRates rates,
                        model::ExpectedRates::Compute(graph, space));

  // LAAR variants first: NR is derived from the lowest-IC one (§5.2).
  // Solve the strictest requirement first — when an instance is unusable
  // it is almost always the highest IC that is infeasible, and failing
  // fast there avoids burning search budget on the easier variants.
  std::vector<double> requirements = options.laar_ic_requirements;
  std::sort(requirements.begin(), requirements.end(), std::greater<double>());
  std::vector<NamedVariant> laar_variants;
  for (double ic : requirements) {
    ftsearch::FtSearchOptions search_options;
    search_options.ic_requirement = ic;
    search_options.time_limit_seconds = options.ftsearch_time_limit_seconds;
    search_options.node_limit = options.ftsearch_node_limit;
    search_options.num_threads = options.ftsearch_threads;
    search_options.pool = options.ftsearch_pool;
    LAAR_ASSIGN_OR_RETURN(ftsearch::FtSearchResult result,
                          ftsearch::RunFtSearch(graph, space, rates, app.placement,
                                                app.cluster, search_options));
    if (!result.strategy.has_value()) {
      return Status::FailedPrecondition(
          StrFormat("FT-Search found no feasible strategy for IC >= %.2f (%s)", ic,
                    ftsearch::SearchOutcomeName(result.outcome)));
    }
    NamedVariant variant;
    // "L.5" for 0.5, "L.65" for 0.65, etc.
    std::string suffix = StrFormat("%g", ic);
    variant.name = "L" + suffix.substr(suffix.find('0') == 0 ? 1 : 0);
    variant.strategy = *result.strategy;
    variant.search = result;
    variant.ic_requirement = ic;
    laar_variants.push_back(std::move(variant));
  }
  if (laar_variants.empty()) {
    return Status::InvalidArgument("at least one LAAR IC requirement is needed");
  }
  // Restore ascending order: callers and the paper list L.5, L.6, L.7.
  std::reverse(laar_variants.begin(), laar_variants.end());

  std::vector<NamedVariant> out;

  NamedVariant nr;
  nr.name = "NR";
  nr.strategy = strategy::MakeNonReplicated(graph, space, laar_variants.front().strategy,
                                            space.PeakConfig());
  out.push_back(std::move(nr));

  NamedVariant sr;
  sr.name = "SR";
  sr.strategy = strategy::MakeStaticReplication(graph, space,
                                                app.placement.replication_factor());
  out.push_back(std::move(sr));

  NamedVariant grd;
  grd.name = "GRD";
  grd.strategy = strategy::MakeGreedy(graph, space, rates, app.placement, app.cluster);
  out.push_back(std::move(grd));

  for (NamedVariant& variant : laar_variants) out.push_back(std::move(variant));
  return out;
}

}  // namespace laar::runtime
