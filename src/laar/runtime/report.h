#ifndef LAAR_RUNTIME_REPORT_H_
#define LAAR_RUNTIME_REPORT_H_

#include <string>
#include <vector>

#include "laar/common/result.h"
#include "laar/json/json.h"
#include "laar/runtime/experiment.h"

namespace laar::runtime {

/// Machine-readable experiment output, for plotting outside the benches.

/// One record as a JSON object (per-variant measurements keyed by name).
json::Value RecordToJson(const AppExperimentRecord& record);

/// A whole corpus as {"records": [...]}; round-trips via RecordFromJson.
/// With a non-null `metrics`, the document gains a "metrics" list (the
/// registry's serialized counters/gauges/histograms — see
/// obs::MetricsRegistry::ToJson), which CorpusFromJson ignores.
json::Value CorpusToJson(const std::vector<AppExperimentRecord>& records,
                         const obs::MetricsRegistry* metrics = nullptr);

Result<AppExperimentRecord> RecordFromJson(const json::Value& value);
Result<std::vector<AppExperimentRecord>> CorpusFromJson(const json::Value& value);

/// CSV with one row per (application, variant), header included. Stage
/// times are deliberately excluded: the CSV is the identity of a corpus
/// run (identical for any --jobs value), while timings vary run to run.
std::string CorpusToCsv(const std::vector<AppExperimentRecord>& records);

/// Per-stage wall-clock totals over a corpus (generate / solve / simulate
/// per scenario).
StageTimes CorpusStageTotals(const std::vector<AppExperimentRecord>& records);

/// One-line human-readable rendering of a stage breakdown, e.g.
/// "generate=0.52s solve=12.31s simulate=8.77s (best=3.21s worst=3.11s
/// crash=2.45s) total=21.60s".
std::string FormatStageTimes(const StageTimes& stages);

}  // namespace laar::runtime

#endif  // LAAR_RUNTIME_REPORT_H_
