#ifndef LAAR_RUNTIME_REPORT_H_
#define LAAR_RUNTIME_REPORT_H_

#include <string>
#include <vector>

#include "laar/common/result.h"
#include "laar/json/json.h"
#include "laar/runtime/experiment.h"

namespace laar::runtime {

/// Machine-readable experiment output, for plotting outside the benches.

/// One record as a JSON object (per-variant measurements keyed by name).
json::Value RecordToJson(const AppExperimentRecord& record);

/// A whole corpus as {"records": [...]}; round-trips via RecordFromJson.
json::Value CorpusToJson(const std::vector<AppExperimentRecord>& records);

Result<AppExperimentRecord> RecordFromJson(const json::Value& value);
Result<std::vector<AppExperimentRecord>> CorpusFromJson(const json::Value& value);

/// CSV with one row per (application, variant), header included.
std::string CorpusToCsv(const std::vector<AppExperimentRecord>& records);

}  // namespace laar::runtime

#endif  // LAAR_RUNTIME_REPORT_H_
