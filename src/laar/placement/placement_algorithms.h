#ifndef LAAR_PLACEMENT_PLACEMENT_ALGORITHMS_H_
#define LAAR_PLACEMENT_PLACEMENT_ALGORITHMS_H_

#include "laar/common/result.h"
#include "laar/model/cluster.h"
#include "laar/model/graph.h"
#include "laar/model/input_space.h"
#include "laar/model/placement.h"
#include "laar/model/rates.h"

namespace laar::placement {

/// Replicated PE placement, the step the paper delegates to the literature
/// (§4.2: "a PE placement algorithm among the many described ... computes a
/// replicated assignment of k replicas"). Both algorithms guarantee replica
/// anti-affinity: two replicas of one PE never share a host (requires
/// k <= |H|).

/// Deterministic round-robin: PE i's replica r lands on host
/// (i + r·⌈|H|/k⌉) mod |H|. Fast and oblivious to load; useful as a
/// baseline and in tests.
Result<model::ReplicaPlacement> PlaceRoundRobin(const model::ApplicationGraph& graph,
                                                const model::Cluster& cluster,
                                                int replication_factor);

/// Load-aware greedy placement: PEs are taken in decreasing order of
/// expected CPU demand (probability-weighted over input configurations,
/// all replicas active), and each replica goes to the least-loaded host
/// that does not already hold a replica of the same PE.
Result<model::ReplicaPlacement> PlaceBalanced(const model::ApplicationGraph& graph,
                                              const model::InputSpace& space,
                                              const model::ExpectedRates& rates,
                                              const model::Cluster& cluster,
                                              int replication_factor);

/// Domain-aware variant of `PlaceBalanced`: identical greedy order and
/// load accounting, but each replica prefers the least-loaded host whose
/// failure domain (at `level`, per `cluster.topology()`) holds no earlier
/// replica of the same PE. Only when fewer than k domains exist does it
/// fall back to reusing a domain (host anti-affinity is always kept). On a
/// trivial topology this reduces exactly to `PlaceBalanced`.
Result<model::ReplicaPlacement> PlaceDomainSpread(const model::ApplicationGraph& graph,
                                                  const model::InputSpace& space,
                                                  const model::ExpectedRates& rates,
                                                  const model::Cluster& cluster,
                                                  int replication_factor,
                                                  model::DomainLevel level);

}  // namespace laar::placement

#endif  // LAAR_PLACEMENT_PLACEMENT_ALGORITHMS_H_
