#include "laar/placement/local_search.h"

#include <cmath>
#include <limits>

#include "laar/common/rng.h"
#include "laar/common/strings.h"

namespace laar::placement {

namespace {

/// Lexicographic objective: a feasible placement always beats an infeasible
/// one; among feasible ones lower activation cost wins; among infeasible
/// ones the higher achieved IC wins (it is "closer" to feasibility).
struct Objective {
  bool feasible = false;
  double cost = std::numeric_limits<double>::infinity();
  double ic = 0.0;

  bool BetterThan(const Objective& other) const {
    if (feasible != other.feasible) return feasible;
    if (feasible) return cost < other.cost - 1e-9;
    return ic > other.ic + 1e-12;
  }
};

Objective Evaluate(const ftsearch::FtSearchResult& result) {
  Objective objective;
  objective.feasible = result.strategy.has_value();
  if (objective.feasible) {
    objective.cost = result.best_cost;
    objective.ic = result.best_ic;
  }
  return objective;
}

}  // namespace

Result<PlacementSearchResult> ImprovePlacement(const model::ApplicationGraph& graph,
                                               const model::InputSpace& space,
                                               const model::ExpectedRates& rates,
                                               const model::Cluster& cluster,
                                               const model::ReplicaPlacement& initial,
                                               const PlacementSearchOptions& options) {
  if (options.max_iterations < 0) {
    return Status::InvalidArgument("max_iterations must be >= 0");
  }
  LAAR_RETURN_IF_ERROR(initial.Validate(cluster));
  const std::vector<model::ComponentId> pes = graph.Pes();
  if (pes.empty()) return Status::FailedPrecondition("application has no PEs");
  const int k = initial.replication_factor();

  ftsearch::FtSearchOptions search_options;
  search_options.ic_requirement = options.ic_requirement;
  search_options.time_limit_seconds = options.ftsearch_time_limit_seconds;

  PlacementSearchResult best;
  best.placement = initial;
  LAAR_ASSIGN_OR_RETURN(best.search, ftsearch::RunFtSearch(graph, space, rates, initial,
                                                           cluster, search_options));
  Objective best_objective = Evaluate(best.search);
  best.feasible = best_objective.feasible;
  best.cost_history.push_back(best_objective.cost);

  Rng rng(options.seed);
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    // Propose: move one replica of a random PE to a random other host that
    // does not hold the PE's sibling replica.
    const model::ComponentId pe =
        pes[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(pes.size()) - 1))];
    const int replica = static_cast<int>(rng.UniformInt(0, k - 1));
    const model::HostId old_host = best.placement.HostOf(pe, replica);
    const auto target = static_cast<model::HostId>(
        rng.UniformInt(0, static_cast<int64_t>(cluster.num_hosts()) - 1));
    if (target == old_host) continue;
    bool collides = false;
    for (int r = 0; r < k; ++r) {
      if (r != replica && best.placement.HostOf(pe, r) == target) collides = true;
    }
    if (collides) continue;

    model::ReplicaPlacement candidate = best.placement;
    LAAR_RETURN_IF_ERROR(candidate.Assign(pe, replica, target));
    ++best.evaluated_moves;
    Result<ftsearch::FtSearchResult> result =
        ftsearch::RunFtSearch(graph, space, rates, candidate, cluster, search_options);
    if (!result.ok()) return result.status();
    const Objective objective = Evaluate(*result);
    if (objective.BetterThan(best_objective)) {
      best_objective = objective;
      best.placement = std::move(candidate);
      best.search = std::move(*result);
      best.feasible = objective.feasible;
      ++best.accepted_moves;
      best.cost_history.push_back(objective.cost);
    }
  }
  return best;
}

}  // namespace laar::placement
