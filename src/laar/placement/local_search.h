#ifndef LAAR_PLACEMENT_LOCAL_SEARCH_H_
#define LAAR_PLACEMENT_LOCAL_SEARCH_H_

#include <cstdint>
#include <vector>

#include "laar/common/result.h"
#include "laar/ftsearch/ft_search.h"
#include "laar/model/cluster.h"
#include "laar/model/graph.h"
#include "laar/model/input_space.h"
#include "laar/model/placement.h"
#include "laar/model/rates.h"

namespace laar::placement {

/// The paper's future-work item §6.iii: "extending the problem formulation
/// by considering the interaction of replica placement with optimal replica
/// activation strategies". FT-Search optimizes activations for a *fixed*
/// placement ϑ; this module wraps it in a hill-climbing local search over
/// placements: each iteration proposes moving one replica to another host
/// (preserving anti-affinity), re-runs FT-Search, and keeps the move if it
/// improves the objective (feasibility first, then activation cost).
struct PlacementSearchOptions {
  double ic_requirement = 0.7;
  /// Proposals evaluated (each costs one FT-Search run).
  int max_iterations = 30;
  /// Budget per inner FT-Search.
  double ftsearch_time_limit_seconds = 2.0;
  uint64_t seed = 1;
};

struct PlacementSearchResult {
  model::ReplicaPlacement placement{0, 2};
  ftsearch::FtSearchResult search;  ///< FT-Search result on the final placement
  bool feasible = false;
  int accepted_moves = 0;
  int evaluated_moves = 0;
  /// Objective trajectory: activation cost after each accepted move
  /// (starting value first). Infinity entries mean "still infeasible".
  std::vector<double> cost_history;
};

/// Runs the local search starting from `initial`. Deterministic for a
/// given seed.
Result<PlacementSearchResult> ImprovePlacement(const model::ApplicationGraph& graph,
                                               const model::InputSpace& space,
                                               const model::ExpectedRates& rates,
                                               const model::Cluster& cluster,
                                               const model::ReplicaPlacement& initial,
                                               const PlacementSearchOptions& options);

}  // namespace laar::placement

#endif  // LAAR_PLACEMENT_LOCAL_SEARCH_H_
