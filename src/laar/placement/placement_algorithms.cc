#include "laar/placement/placement_algorithms.h"

#include <algorithm>

#include "laar/common/strings.h"

namespace laar::placement {

namespace {

Status CheckFeasible(const model::Cluster& cluster, int replication_factor) {
  LAAR_RETURN_IF_ERROR(cluster.Validate());
  if (replication_factor < 1) {
    return Status::InvalidArgument("replication factor must be >= 1");
  }
  if (static_cast<size_t>(replication_factor) > cluster.num_hosts()) {
    return Status::FailedPrecondition(
        StrFormat("replica anti-affinity needs at least k=%d hosts, cluster has %zu",
                  replication_factor, cluster.num_hosts()));
  }
  return Status::OK();
}

}  // namespace

Result<model::ReplicaPlacement> PlaceRoundRobin(const model::ApplicationGraph& graph,
                                                const model::Cluster& cluster,
                                                int replication_factor) {
  if (!graph.validated()) {
    return Status::FailedPrecondition("graph must be validated before placement");
  }
  LAAR_RETURN_IF_ERROR(CheckFeasible(cluster, replication_factor));
  const auto num_hosts = static_cast<int>(cluster.num_hosts());
  // Spacing the replicas by stride keeps them on distinct hosts and spreads
  // failure domains when k << |H|.
  const int stride = std::max(1, (num_hosts + replication_factor - 1) / replication_factor);
  model::ReplicaPlacement placement(graph.num_components(), replication_factor);
  int pe_index = 0;
  for (model::ComponentId pe : graph.Pes()) {
    for (int r = 0; r < replication_factor; ++r) {
      const int host = (pe_index + r * stride) % num_hosts;
      LAAR_RETURN_IF_ERROR(placement.Assign(pe, r, static_cast<model::HostId>(host)));
    }
    ++pe_index;
  }
  LAAR_RETURN_IF_ERROR(placement.Validate(cluster));
  return placement;
}

Result<model::ReplicaPlacement> PlaceBalanced(const model::ApplicationGraph& graph,
                                              const model::InputSpace& space,
                                              const model::ExpectedRates& rates,
                                              const model::Cluster& cluster,
                                              int replication_factor) {
  if (!graph.validated()) {
    return Status::FailedPrecondition("graph must be validated before placement");
  }
  LAAR_RETURN_IF_ERROR(CheckFeasible(cluster, replication_factor));

  // Expected demand of one replica of each PE, weighted by P_C.
  struct PeDemand {
    model::ComponentId pe;
    double demand;
  };
  std::vector<PeDemand> demands;
  for (model::ComponentId pe : graph.Pes()) {
    double expected = 0.0;
    for (model::ConfigId c = 0; c < space.num_configs(); ++c) {
      expected += space.Probability(c) * rates.CpuDemand(graph, pe, c);
    }
    demands.push_back(PeDemand{pe, expected});
  }
  std::sort(demands.begin(), demands.end(), [](const PeDemand& a, const PeDemand& b) {
    if (a.demand != b.demand) return a.demand > b.demand;
    return a.pe < b.pe;
  });

  model::ReplicaPlacement placement(graph.num_components(), replication_factor);
  std::vector<double> host_load(cluster.num_hosts(), 0.0);
  for (const PeDemand& pd : demands) {
    std::vector<bool> used(cluster.num_hosts(), false);
    for (int r = 0; r < replication_factor; ++r) {
      model::HostId best = model::kInvalidHost;
      for (size_t h = 0; h < cluster.num_hosts(); ++h) {
        if (used[h]) continue;
        if (best == model::kInvalidHost ||
            host_load[h] < host_load[static_cast<size_t>(best)]) {
          best = static_cast<model::HostId>(h);
        }
      }
      LAAR_RETURN_IF_ERROR(placement.Assign(pd.pe, r, best));
      used[static_cast<size_t>(best)] = true;
      host_load[static_cast<size_t>(best)] += pd.demand;
    }
  }
  LAAR_RETURN_IF_ERROR(placement.Validate(cluster));
  return placement;
}

Result<model::ReplicaPlacement> PlaceDomainSpread(const model::ApplicationGraph& graph,
                                                  const model::InputSpace& space,
                                                  const model::ExpectedRates& rates,
                                                  const model::Cluster& cluster,
                                                  int replication_factor,
                                                  model::DomainLevel level) {
  if (!graph.validated()) {
    return Status::FailedPrecondition("graph must be validated before placement");
  }
  LAAR_RETURN_IF_ERROR(CheckFeasible(cluster, replication_factor));
  const model::FailureTopology& topology = cluster.topology();
  LAAR_RETURN_IF_ERROR(topology.Validate(cluster.num_hosts()));

  struct PeDemand {
    model::ComponentId pe;
    double demand;
  };
  std::vector<PeDemand> demands;
  for (model::ComponentId pe : graph.Pes()) {
    double expected = 0.0;
    for (model::ConfigId c = 0; c < space.num_configs(); ++c) {
      expected += space.Probability(c) * rates.CpuDemand(graph, pe, c);
    }
    demands.push_back(PeDemand{pe, expected});
  }
  std::sort(demands.begin(), demands.end(), [](const PeDemand& a, const PeDemand& b) {
    if (a.demand != b.demand) return a.demand > b.demand;
    return a.pe < b.pe;
  });

  model::ReplicaPlacement placement(graph.num_components(), replication_factor);
  std::vector<double> host_load(cluster.num_hosts(), 0.0);
  const size_t num_domains = static_cast<size_t>(topology.NumDomains(level));
  for (const PeDemand& pd : demands) {
    std::vector<bool> used_host(cluster.num_hosts(), false);
    std::vector<bool> used_domain(num_domains, false);
    for (int r = 0; r < replication_factor; ++r) {
      // First pass insists on a fresh failure domain; when the PE has
      // already touched every domain (k > |domains|) the second pass
      // relaxes to plain host anti-affinity.
      model::HostId best = model::kInvalidHost;
      for (int pass = 0; pass < 2 && best == model::kInvalidHost; ++pass) {
        for (size_t h = 0; h < cluster.num_hosts(); ++h) {
          if (used_host[h]) continue;
          const auto domain = static_cast<size_t>(
              topology.DomainOf(static_cast<model::HostId>(h), level));
          if (pass == 0 && used_domain[domain]) continue;
          if (best == model::kInvalidHost ||
              host_load[h] < host_load[static_cast<size_t>(best)]) {
            best = static_cast<model::HostId>(h);
          }
        }
      }
      LAAR_RETURN_IF_ERROR(placement.Assign(pd.pe, r, best));
      used_host[static_cast<size_t>(best)] = true;
      used_domain[static_cast<size_t>(topology.DomainOf(best, level))] = true;
      host_load[static_cast<size_t>(best)] += pd.demand;
    }
  }
  LAAR_RETURN_IF_ERROR(placement.Validate(cluster));
  return placement;
}

}  // namespace laar::placement
