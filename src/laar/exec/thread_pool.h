#ifndef LAAR_EXEC_THREAD_POOL_H_
#define LAAR_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace laar {

/// A fixed-size task pool with a fork/join-style `WaitIdle` barrier.
///
/// LAAR uses it to parallelize FT-Search root splitting — the stand-in for
/// the paper's JSR-166 Fork/Join implementation (§4.5) — and to fan out the
/// §5.3 experiment corpus (`runtime::RunCorpus`). Tasks may themselves
/// submit more tasks; `WaitIdle` returns only when the queue is empty and no
/// task is running.
///
/// Nesting levels that want to share one pool without oversubscription use
/// `TaskGroup` (a waitable subset of tasks) or `ParallelFor` (a blocking
/// data-parallel loop in which the calling thread participates).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1; 0 means hardware concurrency).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after destruction begins.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks (including transitively submitted
  /// ones) have completed.
  void WaitIdle();

  /// Runs `fn(0) .. fn(n - 1)` across the pool and returns when all calls
  /// have finished. The calling thread participates in the work, so the
  /// call makes progress even when every worker is busy — it is safe to
  /// invoke from inside a pool task (nested parallelism shares the same
  /// workers instead of oversubscribing).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// A waitable subset of a pool's tasks. Group tasks are queued privately
  /// and drained by pool workers; `Wait` has the calling thread drain the
  /// not-yet-started remainder itself, so it cannot deadlock even when the
  /// pool is saturated with other work.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool* pool);
    /// Waits for all group tasks (like `Wait`).
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    void Submit(std::function<void()> task);

    /// Blocks until every task submitted to this group has completed,
    /// running still-queued group tasks on the calling thread.
    void Wait();

   private:
    struct State {
      std::mutex mu;
      std::condition_variable done;
      std::deque<std::function<void()>> queue;
      size_t pending = 0;  // queued + running group tasks
    };

    /// Runs one queued group task, if any; returns whether it did.
    static bool RunOne(const std::shared_ptr<State>& state);

    ThreadPool* pool_;
    std::shared_ptr<State> state_;
  };

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace laar

#endif  // LAAR_EXEC_THREAD_POOL_H_
