#ifndef LAAR_EXEC_THREAD_POOL_H_
#define LAAR_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace laar {

/// A fixed-size task pool with a fork/join-style `WaitIdle` barrier.
///
/// LAAR uses it to parallelize FT-Search root splitting — the stand-in for
/// the paper's JSR-166 Fork/Join implementation (§4.5). Tasks may themselves
/// submit more tasks; `WaitIdle` returns only when the queue is empty and no
/// task is running.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1; 0 means hardware concurrency).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after destruction begins.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks (including transitively submitted
  /// ones) have completed.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace laar

#endif  // LAAR_EXEC_THREAD_POOL_H_
