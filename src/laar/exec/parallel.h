#ifndef LAAR_EXEC_PARALLEL_H_
#define LAAR_EXEC_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "laar/exec/thread_pool.h"

namespace laar {

/// One accepted probe of `CollectUsableSeeds`.
template <typename T>
struct SeedProbe {
  uint64_t seed = 0;
  T value;
};

/// Resolves a `--jobs`-style thread count: 0 means hardware concurrency,
/// anything else is clamped to at least 1.
inline int ResolveJobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Probes seeds `seed_base + 1`, `seed_base + 2`, ... with `probe` until
/// `num` usable values (non-nullopt results) have been collected, or
/// `max_skips` seeds turned out unusable. This is the corpus idiom of the
/// paper's §5.3 evaluation: unusable instances (e.g. FT-Search proves some
/// L.x infeasible) are skipped; the kept ones are returned in seed order.
///
/// With `jobs > 1` (0 = hardware concurrency) seeds are probed
/// speculatively in parallel batches over `pool` (or a private pool when
/// `pool` is null). Acceptance still walks seeds in order and stops at
/// exactly the same seed the serial run would, discarding surplus
/// speculative probes — the returned vector is bit-identical to a
/// `jobs = 1` run provided `probe` is deterministic per seed and
/// thread-safe.
///
/// `on_accept(index, probe)` fires in seed order as results are kept (for
/// progress logging). `skipped_out`, when set, receives the number of
/// unusable seeds before the cut-off.
template <typename T>
std::vector<SeedProbe<T>> CollectUsableSeeds(
    int num, uint64_t seed_base, int jobs, int max_skips,
    const std::function<std::optional<T>(uint64_t)>& probe,
    const std::function<void(size_t, const SeedProbe<T>&)>& on_accept = {},
    ThreadPool* pool = nullptr, int* skipped_out = nullptr) {
  std::vector<SeedProbe<T>> out;
  if (skipped_out != nullptr) *skipped_out = 0;
  if (num <= 0) return out;
  out.reserve(static_cast<size_t>(num));
  int skipped = 0;
  const int effective_jobs = ResolveJobs(jobs);

  auto accept = [&](uint64_t seed, T value) {
    out.push_back(SeedProbe<T>{seed, std::move(value)});
    if (on_accept) on_accept(out.size() - 1, out.back());
  };

  if (effective_jobs <= 1) {
    uint64_t seed = seed_base;
    while (static_cast<int>(out.size()) < num && skipped < max_skips) {
      ++seed;
      std::optional<T> value = probe(seed);
      if (!value.has_value()) {
        ++skipped;
        continue;
      }
      accept(seed, std::move(*value));
    }
    if (skipped_out != nullptr) *skipped_out = skipped;
    return out;
  }

  std::optional<ThreadPool> owned;
  if (pool == nullptr) {
    owned.emplace(static_cast<size_t>(effective_jobs));
    pool = &*owned;
  }
  const size_t batch = static_cast<size_t>(effective_jobs) * 2;
  uint64_t next_seed = seed_base + 1;
  std::vector<std::optional<T>> results(batch);
  while (static_cast<int>(out.size()) < num && skipped < max_skips) {
    for (auto& slot : results) slot.reset();
    pool->ParallelFor(batch,
                      [&](size_t i) { results[i] = probe(next_seed + i); });
    for (size_t i = 0; i < batch; ++i) {
      // Same stopping rule as the serial loop: surplus speculative probes
      // past the acceptance/skip cut-off are discarded, not counted.
      if (static_cast<int>(out.size()) >= num || skipped >= max_skips) break;
      if (!results[i].has_value()) {
        ++skipped;
        continue;
      }
      accept(next_seed + i, std::move(*results[i]));
    }
    next_seed += batch;
  }
  if (skipped_out != nullptr) *skipped_out = skipped;
  return out;
}

}  // namespace laar

#endif  // LAAR_EXEC_PARALLEL_H_
