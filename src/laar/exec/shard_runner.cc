#include "laar/exec/shard_runner.h"

namespace laar::exec {

ShardRunner::ShardRunner(int shards) : shards_(shards < 1 ? 1 : shards) {
  if (shards_ == 1) return;
  workers_.reserve(static_cast<size_t>(shards_));
  for (int shard = 0; shard < shards_; ++shard) {
    workers_.emplace_back([this, shard] { WorkerLoop(shard); });
  }
}

ShardRunner::~ShardRunner() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  phase_start_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ShardRunner::RunPhase(const std::function<void(int)>& fn) {
  if (workers_.empty()) {
    fn(0);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  fn_ = &fn;
  done_count_ = 0;
  ++generation_;
  phase_start_.notify_all();
  phase_done_.wait(lock, [this] { return done_count_ == shards_; });
  fn_ = nullptr;
}

void ShardRunner::WorkerLoop(int shard) {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      phase_start_.wait(lock, [this, seen_generation] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      fn = fn_;
    }
    (*fn)(shard);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (++done_count_ == shards_) phase_done_.notify_one();
    }
  }
}

}  // namespace laar::exec
