#include "laar/exec/thread_pool.h"

#include <algorithm>

namespace laar {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (shutdown_ && queue_.empty()) return;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_.notify_all();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Workers claim indices from a shared counter; the caller claims too, so
  // the loop completes even if no worker ever becomes free.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  TaskGroup group(this);
  const size_t helpers = std::min(n - 1, num_threads());
  for (size_t t = 0; t < helpers; ++t) {
    group.Submit([next, n, &fn] {
      for (size_t i; (i = next->fetch_add(1)) < n;) fn(i);
    });
  }
  for (size_t i; (i = next->fetch_add(1)) < n;) fn(i);
  group.Wait();
}

ThreadPool::TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool), state_(std::make_shared<State>()) {}

ThreadPool::TaskGroup::~TaskGroup() { Wait(); }

void ThreadPool::TaskGroup::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->queue.push_back(std::move(task));
    ++state_->pending;
  }
  // The pool drainer holds the state alive, so a drainer scheduled after
  // the group is destroyed (its queue already empty) is a harmless no-op.
  pool_->Submit([state = state_] { RunOne(state); });
}

void ThreadPool::TaskGroup::Wait() {
  while (RunOne(state_)) {
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->done.wait(lock, [this] { return state_->pending == 0; });
}

bool ThreadPool::TaskGroup::RunOne(const std::shared_ptr<State>& state) {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->queue.empty()) return false;
    task = std::move(state->queue.front());
    state->queue.pop_front();
  }
  task();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (--state->pending == 0) state->done.notify_all();
  }
  return true;
}

}  // namespace laar
