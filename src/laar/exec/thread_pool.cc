#include "laar/exec/thread_pool.h"

namespace laar {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (shutdown_ && queue_.empty()) return;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_.notify_all();
  }
}

}  // namespace laar
