#ifndef LAAR_EXEC_SHARD_RUNNER_H_
#define LAAR_EXEC_SHARD_RUNNER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace laar::exec {

/// A fixed crew of worker threads for phase-synchronous execution: every
/// `RunPhase(fn)` call runs `fn(0) ... fn(shards-1)` concurrently, one call
/// per worker, and returns once all of them finished. The workers persist
/// across phases, so a simulation with tens of thousands of conservative
/// windows pays thread creation once, not per window.
///
/// With `shards == 1` no thread is spawned and `RunPhase` runs `fn(0)`
/// inline — the single-shard configuration stays genuinely single-threaded,
/// which is what makes it the byte-identity reference for sharded runs.
///
/// `RunPhase` provides full synchronization: everything the workers wrote
/// during a phase is visible to the caller after `RunPhase` returns, and
/// everything the caller wrote before `RunPhase` is visible to the workers.
class ShardRunner {
 public:
  explicit ShardRunner(int shards);
  ~ShardRunner();

  ShardRunner(const ShardRunner&) = delete;
  ShardRunner& operator=(const ShardRunner&) = delete;

  int shards() const { return shards_; }

  /// Runs `fn(shard)` on every shard and blocks until all calls return.
  /// `fn` must not call `RunPhase` reentrantly.
  void RunPhase(const std::function<void(int)>& fn);

 private:
  void WorkerLoop(int shard);

  const int shards_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable phase_start_;
  std::condition_variable phase_done_;
  const std::function<void(int)>* fn_ = nullptr;  // valid while a phase runs
  uint64_t generation_ = 0;  ///< bumped once per phase; workers wait on it
  int done_count_ = 0;
  bool stopping_ = false;
};

}  // namespace laar::exec

#endif  // LAAR_EXEC_SHARD_RUNNER_H_
