#include "laar/json/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "laar/common/strings.h"

namespace laar::json {

Value Value::Bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double d) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

Value Value::Int(int64_t i) { return Number(static_cast<double>(i)); }

Value Value::String(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::MakeArray() {
  Value v;
  v.type_ = Type::kArray;
  return v;
}

Value Value::MakeObject() {
  Value v;
  v.type_ = Type::kObject;
  return v;
}

Result<bool> Value::AsBool() const {
  if (!is_bool()) return Status::InvalidArgument("JSON value is not a bool");
  return bool_;
}

Result<double> Value::AsDouble() const {
  if (!is_number()) return Status::InvalidArgument("JSON value is not a number");
  return number_;
}

Result<int64_t> Value::AsInt() const {
  if (!is_number()) return Status::InvalidArgument("JSON value is not a number");
  const double rounded = std::nearbyint(number_);
  if (rounded != number_ || std::abs(number_) > 9.007199254740992e15) {
    return Status::InvalidArgument(StrFormat("JSON number %g is not an exact integer", number_));
  }
  return static_cast<int64_t>(rounded);
}

Result<std::string> Value::AsString() const {
  if (!is_string()) return Status::InvalidArgument("JSON value is not a string");
  return string_;
}

Result<const Value*> Value::Get(std::string_view key) const {
  if (!is_object()) return Status::InvalidArgument("JSON value is not an object");
  auto it = object_.find(std::string(key));
  if (it == object_.end()) {
    return Status::NotFound(StrFormat("missing JSON key '%.*s'",
                                      static_cast<int>(key.size()), key.data()));
  }
  return &it->second;
}

const Value& Value::GetOr(std::string_view key, const Value& fallback) const {
  if (!is_object()) return fallback;
  auto it = object_.find(std::string(key));
  return it == object_.end() ? fallback : it->second;
}

bool Value::Has(std::string_view key) const {
  return is_object() && object_.count(std::string(key)) > 0;
}

void Value::Set(std::string key, Value value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  object_[std::move(key)] = std::move(value);
}

void Value::Append(Value value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  array_.push_back(std::move(value));
}

namespace {

void EscapeStringTo(const std::string& in, std::string* out) {
  out->push_back('"');
  for (char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NumberTo(double d, std::string* out) {
  if (d == std::nearbyint(d) && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    *out += buf;
  }
}

void Indent(std::string* out, int indent, int depth) {
  if (indent < 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

void Value::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      NumberTo(number_, out);
      return;
    case Type::kString:
      EscapeStringTo(string_, out);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Indent(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      Indent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        Indent(out, indent, depth + 1);
        EscapeStringTo(key, out);
        *out += indent < 0 ? ":" : ": ";
        value.DumpTo(out, indent, depth + 1);
      }
      Indent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Strict recursive-descent parser over the input string view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    SkipWhitespace();
    LAAR_ASSIGN_OR_RETURN(Value value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 200;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(StrFormat("JSON parse error at offset %zu: %s", pos_,
                                             what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        LAAR_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value::String(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return Value::Bool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Value::Bool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return Value::Null();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject(int depth) {
    Consume('{');
    Value obj = Value::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') return Error("expected object key");
      LAAR_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      LAAR_ASSIGN_OR_RETURN(Value value, ParseValue(depth + 1));
      obj.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray(int depth) {
    Consume('[');
    Value arr = Value::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      SkipWhitespace();
      LAAR_ASSIGN_OR_RETURN(Value value, ParseValue(depth + 1));
      arr.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("invalid \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs unsupported;
            // strategy files are ASCII in practice).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("invalid escape character");
        }
      } else {
        out.push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("invalid number '" + token + "'");
    return Value::Number(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) { return Parser(text).ParseDocument(); }

Result<Value> ParseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<Value> parsed = Parse(buffer.str());
  if (!parsed.ok()) return parsed.status().WithContext(path);
  return parsed;
}

Status WriteFile(const Value& value, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << value.Dump(2) << '\n';
  if (!out.good()) return Status::IoError("failed writing " + path);
  return Status::OK();
}

}  // namespace laar::json
