#ifndef LAAR_JSON_JSON_H_
#define LAAR_JSON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "laar/common/result.h"
#include "laar/common/status.h"

namespace laar::json {

/// A JSON document node (null / bool / number / string / array / object).
///
/// The paper's HAController is "customized with the path to a JSON file
/// describing the replica activation strategy" (§5.1); LAAR therefore ships
/// a small self-contained JSON model with a serializer and a strict
/// recursive-descent parser. Numbers are stored as doubles (JSON has a
/// single number type); integer accessors validate losslessness.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  /// std::map keeps object keys sorted, making serialization deterministic.
  using Object = std::map<std::string, Value>;

  /// Constructs null.
  Value() : type_(Type::kNull) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double d);
  static Value Int(int64_t i);
  static Value String(std::string s);
  static Value MakeArray();
  static Value MakeObject();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Checked accessors; return an error status on type mismatch.
  Result<bool> AsBool() const;
  Result<double> AsDouble() const;
  Result<int64_t> AsInt() const;
  Result<std::string> AsString() const;

  /// Unchecked accessors; behaviour undefined unless the type matches.
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  Array& array() { return array_; }
  const Array& array() const { return array_; }
  Object& object() { return object_; }
  const Object& object() const { return object_; }

  /// Object field lookup; error when not an object or key absent.
  Result<const Value*> Get(std::string_view key) const;
  /// Object field lookup with a default when the key is absent.
  const Value& GetOr(std::string_view key, const Value& fallback) const;
  bool Has(std::string_view key) const;

  /// Object/array mutation helpers (no-ops with error status avoided by
  /// aborting in debug: callers build documents they control).
  void Set(std::string key, Value value);
  void Append(Value value);

  /// Serializes this value. `indent` < 0 means compact single-line output.
  std::string Dump(int indent = -1) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses a complete JSON document. Trailing non-whitespace is an error.
Result<Value> Parse(std::string_view text);

/// Reads and parses a JSON file.
Result<Value> ParseFile(const std::string& path);

/// Writes `value` to `path` (pretty-printed with two-space indent).
Status WriteFile(const Value& value, const std::string& path);

}  // namespace laar::json

#endif  // LAAR_JSON_JSON_H_
