#ifndef LAAR_APPGEN_APP_GENERATOR_H_
#define LAAR_APPGEN_APP_GENERATOR_H_

#include <cstdint>

#include "laar/common/result.h"
#include "laar/model/cluster.h"
#include "laar/model/descriptor.h"
#include "laar/model/placement.h"
#include "laar/model/rates.h"

namespace laar::appgen {

/// Parameters of the synthetic application generator, defaulted to the
/// experimental setup of §5.2: 24 PEs, average outgoing node degree in
/// [1.5, 3], port selectivities U(0.5, 1.5), one external source with two
/// rates ("Low", "High") drawn from U(1, 20) t/s, and per-tuple CPU costs
/// calibrated so that the fully-replicated deployment is not overloaded
/// under "Low" and is overloaded under "High".
struct GeneratorOptions {
  int num_pes = 24;
  int num_sources = 1;
  int num_sinks = 1;
  int replication_factor = 2;

  int num_hosts = 12;
  /// Cycles/second per host. The absolute value only fixes the time unit;
  /// the default mimics one dedicated core per PE replica at 1 GHz.
  double host_capacity = 1e9;

  /// Failure topology of the generated cluster: consecutive hosts are
  /// grouped into racks and consecutive racks into zones
  /// (`model::FailureTopology::Uniform`). Values <= 0 keep the trivial
  /// topology (each host its own rack/zone), the pre-topology default.
  int hosts_per_rack = 0;
  int racks_per_zone = 0;

  /// When true and the topology is non-trivial, the generated placement
  /// spreads the replicas of each PE across distinct racks
  /// (`placement::PlaceDomainSpread`) instead of plain load balancing.
  bool domain_aware_placement = false;

  double out_degree_min = 1.5;
  double out_degree_max = 3.0;
  double selectivity_min = 0.5;
  double selectivity_max = 1.5;
  double rate_min = 1.0;   // t/s, lower bound of both rate draws
  double rate_max = 20.0;  // t/s, upper bound of both rate draws
  /// P(Low); the trace has the High configuration active 1/3 of the time.
  double low_probability = 2.0 / 3.0;

  /// Calibration (§5.2 conditions i-ii). The CPU costs are uniformly
  /// scaled so that, with all replicas active, the most-loaded host sits
  /// at `overload` × capacity in the "High" configuration, where
  /// `overload` is drawn per application from
  /// [high_overload_min, high_overload_max] (> 1: condition ii). The
  /// attempt is resampled unless the all-active "Low" load then lands
  /// below `low_load_max` × capacity (condition i). Anchoring the scale on
  /// the High side keeps the corpus mostly FT-Search-solvable at moderate
  /// IC targets — a Low-side anchor would, for large High/Low rate ratios,
  /// make even the single-replica deployment infeasible and every
  /// instance trivially NUL, unlike the paper's corpus (Fig. 4).
  double high_overload_min = 1.10;
  double high_overload_max = 1.35;
  double low_load_max = 0.85;

  /// Resampling budget for the calibration constraints.
  int max_attempts = 200;
};

/// A generated application bundled with the cluster it was calibrated for
/// and its replicated placement.
struct GeneratedApplication {
  model::ApplicationDescriptor descriptor;
  model::Cluster cluster;
  model::ReplicaPlacement placement{0, 2};
};

/// Generates one application; the same (options, seed) pair always yields
/// the same application.
Result<GeneratedApplication> GenerateApplication(const GeneratorOptions& options,
                                                 uint64_t seed);

/// The "web-scale" profile: an application and cluster two orders of
/// magnitude beyond the paper's testbed — 2048 PEs fed by 8 sources over
/// 256 hosts (8 per rack, 4 racks per zone) with rack-spread placement.
/// Source rates in the hundreds of tuples per second and near-unity
/// effective branching (out-degree ~1.5 at mean selectivity ~0.65) keep
/// per-edge rates flat through the graph, so the aggregate tuple-transfer
/// rate scales with PE count into the millions per second without the
/// exponential blow-up a selectivity above 1/out-degree would cause.
/// This is the workload the sharded engine's scaling benchmarks run on
/// (EXPERIMENTS.md); single-threaded runs of it are dominated by event-heap
/// work, which is exactly what sharding parallelizes.
GeneratorOptions WebScaleProfile();

}  // namespace laar::appgen

#endif  // LAAR_APPGEN_APP_GENERATOR_H_
