#include "laar/appgen/app_generator.h"

#include <algorithm>
#include <set>
#include <vector>

#include "laar/common/rng.h"
#include "laar/common/strings.h"
#include "laar/metrics/cost.h"
#include "laar/placement/placement_algorithms.h"
#include "laar/strategy/activation_strategy.h"

namespace laar::appgen {

namespace {

Status CheckOptions(const GeneratorOptions& options) {
  if (options.num_pes < 1) return Status::InvalidArgument("num_pes must be >= 1");
  if (options.num_sources < 1) return Status::InvalidArgument("num_sources must be >= 1");
  if (options.num_sinks < 1) return Status::InvalidArgument("num_sinks must be >= 1");
  if (options.replication_factor < 1) {
    return Status::InvalidArgument("replication_factor must be >= 1");
  }
  if (options.num_hosts < options.replication_factor) {
    return Status::InvalidArgument("need at least replication_factor hosts");
  }
  if (options.host_capacity <= 0.0) {
    return Status::InvalidArgument("host_capacity must be positive");
  }
  if (options.out_degree_min < 1.0 || options.out_degree_max < options.out_degree_min) {
    return Status::InvalidArgument("invalid out-degree range");
  }
  if (options.rate_min <= 0.0 || options.rate_max < options.rate_min) {
    return Status::InvalidArgument("invalid rate range");
  }
  if (options.low_probability <= 0.0 || options.low_probability >= 1.0) {
    return Status::InvalidArgument("low_probability must be in (0, 1)");
  }
  if (options.low_load_max <= 0.0 || options.low_load_max >= 1.0) {
    return Status::InvalidArgument("low_load_max must be in (0, 1)");
  }
  if (options.high_overload_min <= 1.0 ||
      options.high_overload_max < options.high_overload_min) {
    return Status::InvalidArgument(
        "need high_overload_max >= high_overload_min > 1");
  }
  return Status::OK();
}

/// One generation attempt: build a random DAG with unit-scale CPU costs,
/// then calibrate the cost scale against the placement-induced host loads.
/// Returns an error when the attempt misses the calibration targets (the
/// caller resamples).
Result<GeneratedApplication> TryGenerate(const GeneratorOptions& options, Rng* rng) {
  GeneratedApplication out;
  model::ApplicationGraph& graph = out.descriptor.graph;
  out.descriptor.name = "synthetic";

  std::vector<model::ComponentId> sources;
  std::vector<model::ComponentId> pes;
  std::vector<model::ComponentId> sinks;
  for (int i = 0; i < options.num_sources; ++i) {
    sources.push_back(graph.AddSource(StrFormat("src%d", i)));
  }
  for (int i = 0; i < options.num_pes; ++i) {
    pes.push_back(graph.AddPe(StrFormat("pe%d", i)));
  }
  for (int i = 0; i < options.num_sinks; ++i) {
    sinks.push_back(graph.AddSink(StrFormat("sink%d", i)));
  }

  // --- Random DAG construction. ---
  // PEs are created in topological positions: PE i may receive edges from
  // any source and from PEs 0..i-1. First give every PE one mandatory
  // predecessor (the "backbone"), then add extra edges until the average
  // outgoing degree of non-sink components reaches the sampled target.
  const double target_degree = rng->Uniform(options.out_degree_min, options.out_degree_max);
  std::set<std::pair<model::ComponentId, model::ComponentId>> edge_set;
  auto add_pe_edge = [&](model::ComponentId from, model::ComponentId to) -> Status {
    const double selectivity = rng->Uniform(options.selectivity_min, options.selectivity_max);
    // Cost placeholder; real costs are derived from per-PE demand shares
    // once the expected rates are known (see below).
    edge_set.insert({from, to});
    return graph.AddEdge(from, to, selectivity, 0.0);
  };

  for (int i = 0; i < options.num_pes; ++i) {
    // Mandatory predecessor: prefer recent PEs to get deep graphs, fall
    // back to a random source for the first PEs.
    model::ComponentId from;
    if (i == 0) {
      from = sources[static_cast<size_t>(rng->UniformInt(0, options.num_sources - 1))];
    } else {
      const int64_t pick = rng->UniformInt(-options.num_sources, i - 1);
      from = pick < 0 ? sources[static_cast<size_t>(-pick - 1)]
                      : pes[static_cast<size_t>(pick)];
    }
    LAAR_RETURN_IF_ERROR(add_pe_edge(from, pes[static_cast<size_t>(i)]));
  }

  const size_t non_sink_count = sources.size() + pes.size();
  const auto target_edges = static_cast<size_t>(target_degree *
                                                static_cast<double>(non_sink_count));
  int stale = 0;
  while (edge_set.size() < target_edges && stale < 200) {
    // Pick an ordered pair (earlier -> later) among sources and PEs.
    const int64_t to_index = rng->UniformInt(0, options.num_pes - 1);
    const int64_t from_pick = rng->UniformInt(-options.num_sources, to_index - 1);
    const model::ComponentId to = pes[static_cast<size_t>(to_index)];
    const model::ComponentId from = from_pick < 0
                                        ? sources[static_cast<size_t>(-from_pick - 1)]
                                        : pes[static_cast<size_t>(from_pick)];
    if (edge_set.count({from, to}) != 0) {
      ++stale;
      continue;
    }
    stale = 0;
    LAAR_RETURN_IF_ERROR(add_pe_edge(from, to));
  }

  // Every PE without a successor feeds a random sink, so all results leave
  // the graph.
  for (model::ComponentId pe : pes) {
    if (graph.OutgoingEdges(pe).empty()) {
      const model::ComponentId sink =
          sinks[static_cast<size_t>(rng->UniformInt(0, options.num_sinks - 1))];
      LAAR_RETURN_IF_ERROR(graph.AddEdge(pe, sink, 1.0, 0.0));
    }
  }
  LAAR_RETURN_IF_ERROR(graph.Validate());

  // --- Source rates: two levels, both U(rate_min, rate_max), Low < High. ---
  for (model::ComponentId source : sources) {
    double low = rng->Uniform(options.rate_min, options.rate_max);
    double high = rng->Uniform(options.rate_min, options.rate_max);
    if (low > high) std::swap(low, high);
    if (high - low < 1e-6) {
      return Status::Internal("degenerate rate draw");  // resample
    }
    model::SourceRateSet rate_set;
    rate_set.source = source;
    rate_set.rates = {low, high};
    rate_set.labels = {"Low", "High"};
    rate_set.probabilities = {options.low_probability, 1.0 - options.low_probability};
    LAAR_RETURN_IF_ERROR(out.descriptor.input_space.AddSource(rate_set));
  }
  LAAR_RETURN_IF_ERROR(out.descriptor.Validate());

  // --- Per-edge CPU costs from per-PE demand shares. ---
  // Drawing per-edge costs independently would let multiplicative
  // selectivity chains produce PEs whose *single-replica* demand exceeds a
  // whole host at High — making every activation strategy infeasible
  // (Eq. 11) regardless of IC. Instead every PE draws a relative demand
  // share u ~ U(0.5, 1.5), realized at the High configuration and split
  // across its input ports with random weights; per-edge costs follow as
  // γ_e = share_e / Δ(from_e, High).
  auto rebuild_with_costs =
      [&graph](const std::vector<double>& edge_costs) -> Result<model::ApplicationGraph> {
    model::ApplicationGraph rebuilt;
    for (const model::Component& component : graph.components()) {
      switch (component.kind) {
        case model::ComponentKind::kSource:
          rebuilt.AddSource(component.name);
          break;
        case model::ComponentKind::kPe:
          rebuilt.AddPe(component.name);
          break;
        case model::ComponentKind::kSink:
          rebuilt.AddSink(component.name);
          break;
      }
    }
    for (size_t i = 0; i < graph.edges().size(); ++i) {
      const model::Edge& e = graph.edges()[i];
      LAAR_RETURN_IF_ERROR(rebuilt.AddEdge(e.from, e.to, e.selectivity, edge_costs[i]));
    }
    LAAR_RETURN_IF_ERROR(rebuilt.Validate());
    return rebuilt;
  };

  LAAR_ASSIGN_OR_RETURN(model::ExpectedRates shape_rates,
                        model::ExpectedRates::Compute(graph, out.descriptor.input_space));
  const model::ConfigId peak = out.descriptor.input_space.PeakConfig();
  std::vector<double> edge_costs(graph.num_edges(), 0.0);
  for (model::ComponentId pe : pes) {
    const double demand_share = rng->Uniform(0.5, 1.5);
    const auto& incoming = graph.IncomingEdges(pe);
    std::vector<double> weights;
    double weight_total = 0.0;
    for (size_t i = 0; i < incoming.size(); ++i) {
      weights.push_back(rng->Uniform(0.5, 1.5));
      weight_total += weights.back();
    }
    for (size_t i = 0; i < incoming.size(); ++i) {
      const model::Edge& e = graph.edges()[incoming[i]];
      const double upstream_rate = shape_rates.Rate(e.from, peak);
      if (upstream_rate <= 1e-9) {
        return Status::Internal("degenerate zero-rate upstream");  // resample
      }
      edge_costs[incoming[i]] = demand_share * weights[i] / (weight_total * upstream_rate);
    }
  }
  {
    LAAR_ASSIGN_OR_RETURN(model::ApplicationGraph shaped, rebuild_with_costs(edge_costs));
    out.descriptor.graph = std::move(shaped);
  }

  // --- Placement on the target cluster. ---
  out.cluster = model::Cluster::Homogeneous(options.num_hosts, options.host_capacity);
  if (options.hosts_per_rack > 0 || options.racks_per_zone > 0) {
    out.cluster.set_topology(model::FailureTopology::Uniform(
        out.cluster.num_hosts(), options.hosts_per_rack, options.racks_per_zone));
  }
  LAAR_ASSIGN_OR_RETURN(model::ExpectedRates raw_rates,
                        model::ExpectedRates::Compute(out.descriptor.graph,
                                                      out.descriptor.input_space));
  if (options.domain_aware_placement && !out.cluster.topology().IsTrivial()) {
    LAAR_ASSIGN_OR_RETURN(
        out.placement,
        placement::PlaceDomainSpread(out.descriptor.graph, out.descriptor.input_space,
                                     raw_rates, out.cluster, options.replication_factor,
                                     model::DomainLevel::kRack));
  } else {
    LAAR_ASSIGN_OR_RETURN(
        out.placement,
        placement::PlaceBalanced(out.descriptor.graph, out.descriptor.input_space,
                                 raw_rates, out.cluster, options.replication_factor));
  }

  // --- CPU cost calibration (§5.2 conditions i and ii). ---
  // A uniform scale factor anchors the fully-active all-High peak host
  // load just above capacity; it leaves the balanced placement unchanged
  // (placement only depends on relative demands).
  const strategy::ActivationStrategy all_active(
      graph.num_components(), options.replication_factor,
      out.descriptor.input_space.num_configs());
  auto max_load = [&](const model::ExpectedRates& rates, model::ConfigId c) {
    const std::vector<double> loads = metrics::HostLoads(
        out.descriptor.graph, rates, out.placement, all_active, out.cluster, c);
    return *std::max_element(loads.begin(), loads.end());
  };
  // With mixed-radix config encoding and every source having (Low, High)
  // levels, config 0 is all-Low and the last config is all-High.
  const model::ConfigId low_config = 0;
  const double high_load_raw = max_load(raw_rates, peak);
  if (high_load_raw <= 0.0) return Status::Internal("degenerate zero-load application");
  const double overload_target =
      rng->Uniform(options.high_overload_min, options.high_overload_max);
  const double scale = overload_target * options.host_capacity / high_load_raw;
  for (double& cost : edge_costs) cost *= scale;
  {
    LAAR_ASSIGN_OR_RETURN(model::ApplicationGraph scaled, rebuild_with_costs(edge_costs));
    out.descriptor.graph = std::move(scaled);
  }
  LAAR_ASSIGN_OR_RETURN(model::ExpectedRates rates,
                        model::ExpectedRates::Compute(out.descriptor.graph,
                                                      out.descriptor.input_space));

  // Condition i: all replicas active must not overload under "Low"; fails
  // when the High/Low rate ratio is too small for the chosen overload
  // anchor, in which case the attempt is resampled.
  const double low_load = max_load(rates, low_config);
  if (low_load > options.low_load_max * options.host_capacity) {
    return Status::Internal("low configuration overloaded after calibration");
  }
  // Condition ii holds by construction; keep the check as a guard.
  const double high_load = max_load(rates, peak);
  if (high_load < options.high_overload_min * options.host_capacity) {
    return Status::Internal("high configuration does not overload the deployment");
  }
  // No single PE may exceed a host on its own at High — such instances are
  // infeasible for every strategy and would never enter the paper's
  // (solvable) corpus.
  for (model::ComponentId pe : pes) {
    if (rates.CpuDemand(out.descriptor.graph, pe, peak) >
        0.85 * options.host_capacity) {
      return Status::Internal("a single PE exceeds host capacity at High");
    }
  }
  return out;
}

}  // namespace

Result<GeneratedApplication> GenerateApplication(const GeneratorOptions& options,
                                                 uint64_t seed) {
  LAAR_RETURN_IF_ERROR(CheckOptions(options));
  Rng rng(seed);
  Status last = Status::Internal("no attempts made");
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    Rng attempt_rng = rng.Fork();
    Result<GeneratedApplication> result = TryGenerate(options, &attempt_rng);
    if (result.ok()) {
      result->descriptor.name = StrFormat("synthetic-%llu",
                                          static_cast<unsigned long long>(seed));
      return result;
    }
    // Hard parameter errors will not improve with resampling.
    if (result.status().code() != StatusCode::kInternal) return result.status();
    last = result.status();
  }
  return last.WithContext(
      StrFormat("failed to generate a calibrated application after %d attempts",
                options.max_attempts));
}

GeneratorOptions WebScaleProfile() {
  GeneratorOptions options;
  options.num_pes = 2048;
  options.num_sources = 8;
  options.num_sinks = 4;
  options.num_hosts = 256;
  options.hosts_per_rack = 8;
  options.racks_per_zone = 4;
  options.domain_aware_placement = true;
  // Effective branching = out_degree × selectivity ≈ 1.5 × 0.65 ≈ 0.98:
  // per-edge rates stay near the source rate through the whole graph
  // instead of growing geometrically with depth.
  options.out_degree_min = 1.2;
  options.out_degree_max = 1.8;
  options.selectivity_min = 0.4;
  options.selectivity_max = 0.9;
  options.rate_min = 400.0;
  options.rate_max = 800.0;
  return options;
}

}  // namespace laar::appgen
