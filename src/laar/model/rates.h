#ifndef LAAR_MODEL_RATES_H_
#define LAAR_MODEL_RATES_H_

#include <vector>

#include "laar/common/result.h"
#include "laar/model/graph.h"
#include "laar/model/input_space.h"

namespace laar::model {

/// The failure-free expected output rates Δ(x_i, c) of every component in
/// every input configuration (§4.2), under the linear load model: a source's
/// rate is given by the input space, a PE's rate is
/// Σ_{x_j ∈ pred(x_i)} δ(x_j, x_i) · Δ(x_j, c), and a sink's entry records
/// its total arrival rate (useful for output-rate accounting).
class ExpectedRates {
 public:
  /// Computes the rate matrix. The graph must be validated and every source
  /// must have a rate set in `space`.
  static Result<ExpectedRates> Compute(const ApplicationGraph& graph, const InputSpace& space);

  /// Δ(component, config) in tuples/second.
  double Rate(ComponentId component, ConfigId config) const {
    return rates_[static_cast<size_t>(config)][static_cast<size_t>(component)];
  }

  /// Total tuple arrival rate at a PE in `config`:
  /// Σ_{x_j ∈ pred(x_i)} Δ(x_j, c). This is the per-second BIC contribution
  /// of the PE (Eq. 5) and the arrival rate its queues see.
  double ArrivalRate(const ApplicationGraph& graph, ComponentId pe, ConfigId config) const;

  /// CPU demand (cycles/second) of one replica of `pe` in `config`:
  /// Σ_{x_j ∈ pred(x_i)} γ(x_j, x_i) · Δ(x_j, c)  — the per-replica term of
  /// Eq. 11 and Eq. 13.
  double CpuDemand(const ApplicationGraph& graph, ComponentId pe, ConfigId config) const;

  ConfigId num_configs() const { return static_cast<ConfigId>(rates_.size()); }

 private:
  // rates_[config][component]
  std::vector<std::vector<double>> rates_;
};

}  // namespace laar::model

#endif  // LAAR_MODEL_RATES_H_
