#include "laar/model/discretize.h"

#include <algorithm>
#include <cmath>

#include "laar/common/strings.h"

namespace laar::model {

namespace {

Status CheckInputs(const std::vector<double>& samples, const DiscretizeOptions& options) {
  if (samples.empty()) return Status::InvalidArgument("no rate samples");
  if (options.num_levels < 1) return Status::InvalidArgument("num_levels must be >= 1");
  if (options.headroom < 1.0) {
    return Status::InvalidArgument("headroom must be >= 1 (levels must dominate)");
  }
  for (double s : samples) {
    if (s < 0.0 || !std::isfinite(s)) {
      return Status::InvalidArgument("rate samples must be finite and non-negative");
    }
  }
  return Status::OK();
}

/// Builds the rate set from per-bin (max, count) pairs, merging bins whose
/// representative rates collide after headroom.
SourceRateSet Assemble(ComponentId source, const std::vector<double>& bin_max,
                       const std::vector<size_t>& bin_count, size_t total,
                       double headroom) {
  SourceRateSet out;
  out.source = source;
  for (size_t i = 0; i < bin_max.size(); ++i) {
    if (bin_count[i] == 0) continue;
    const double rate = bin_max[i] * headroom;
    const double probability =
        static_cast<double>(bin_count[i]) / static_cast<double>(total);
    if (!out.rates.empty() && rate <= out.rates.back() + 1e-12) {
      // Identical representative: merge probabilities.
      out.probabilities.back() += probability;
      continue;
    }
    out.rates.push_back(rate);
    out.probabilities.push_back(probability);
  }
  for (size_t i = 0; i < out.rates.size(); ++i) {
    out.labels.push_back(StrFormat("level%zu", i));
  }
  // Normalize away float drift.
  double sum = 0.0;
  for (double p : out.probabilities) sum += p;
  if (sum > 0.0) {
    for (double& p : out.probabilities) p /= sum;
  }
  return out;
}

}  // namespace

Result<SourceRateSet> DiscretizeEqualFrequency(ComponentId source,
                                               const std::vector<double>& samples,
                                               const DiscretizeOptions& options) {
  LAAR_RETURN_IF_ERROR(CheckInputs(samples, options));
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  const size_t n = sorted.size();
  const auto levels = static_cast<size_t>(options.num_levels);
  std::vector<double> bin_max;
  std::vector<size_t> bin_count;
  size_t begin = 0;
  for (size_t level = 0; level < levels && begin < n; ++level) {
    size_t end = (n * (level + 1)) / levels;
    if (end <= begin) end = begin + 1;
    // Extend through ties so equal rates never straddle a bin boundary.
    while (end < n && sorted[end] == sorted[end - 1]) ++end;
    bin_max.push_back(sorted[end - 1]);
    bin_count.push_back(end - begin);
    begin = end;
  }
  // Any leftover (possible when ties exhausted later bins) joins the last.
  if (begin < n) {
    bin_max.back() = sorted.back();
    bin_count.back() += n - begin;
  }
  return Assemble(source, bin_max, bin_count, n, options.headroom);
}

Result<SourceRateSet> DiscretizeEqualWidth(ComponentId source,
                                           const std::vector<double>& samples,
                                           const DiscretizeOptions& options) {
  LAAR_RETURN_IF_ERROR(CheckInputs(samples, options));
  const auto [min_it, max_it] = std::minmax_element(samples.begin(), samples.end());
  const double lo = *min_it;
  const double hi = *max_it;
  const auto levels = static_cast<size_t>(options.num_levels);
  if (hi <= lo) {
    // Constant source: a single level.
    return Assemble(source, {hi}, {samples.size()}, samples.size(), options.headroom);
  }
  const double width = (hi - lo) / static_cast<double>(levels);
  std::vector<double> bin_max(levels, 0.0);
  std::vector<size_t> bin_count(levels, 0);
  for (size_t i = 0; i < levels; ++i) {
    bin_max[i] = lo + width * static_cast<double>(i + 1);
  }
  bin_max.back() = hi;  // guard float edge
  for (double s : samples) {
    auto bin = static_cast<size_t>((s - lo) / width);
    if (bin >= levels) bin = levels - 1;
    ++bin_count[bin];
    // The representative must dominate the samples it stands for.
    bin_max[bin] = std::max(bin_max[bin], s);
  }
  return Assemble(source, bin_max, bin_count, samples.size(), options.headroom);
}

}  // namespace laar::model
