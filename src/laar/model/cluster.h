#ifndef LAAR_MODEL_CLUSTER_H_
#define LAAR_MODEL_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "laar/common/status.h"
#include "laar/model/failure_topology.h"

namespace laar::model {

/// Dense index of a host within its cluster.
using HostId = int32_t;

constexpr HostId kInvalidHost = -1;

/// A deployment host with its CPU budget K (Eq. 11), expressed in
/// cycles/second. The paper models host capacity as an aggregate cycle
/// budget; cores only factor in through that product.
struct Host {
  HostId id = kInvalidHost;
  std::string name;
  double capacity_cycles_per_sec = 0.0;
};

/// The set of hosts H available to a deployment.
class Cluster {
 public:
  Cluster() = default;

  /// Creates `num_hosts` homogeneous hosts of the given capacity — the
  /// shape of the paper's BladeCenter deployment (§5.2).
  static Cluster Homogeneous(int num_hosts, double capacity_cycles_per_sec);

  HostId AddHost(std::string name, double capacity_cycles_per_sec);

  size_t num_hosts() const { return hosts_.size(); }
  const Host& host(HostId id) const { return hosts_[id]; }
  const std::vector<Host>& hosts() const { return hosts_; }

  double TotalCapacity() const;

  /// The host → rack → zone containment map. Defaults to the trivial
  /// topology (each host alone in its rack and zone), which keeps every
  /// pre-topology consumer byte-identical; `AddHost` keeps the trivial
  /// default in lockstep, a custom map set later must match `num_hosts()`.
  const FailureTopology& topology() const { return topology_; }
  void set_topology(FailureTopology topology) { topology_ = std::move(topology); }

  Status Validate() const;

 private:
  std::vector<Host> hosts_;
  FailureTopology topology_;
};

}  // namespace laar::model

#endif  // LAAR_MODEL_CLUSTER_H_
