#include "laar/model/cluster.h"

#include "laar/common/strings.h"

namespace laar::model {

Cluster Cluster::Homogeneous(int num_hosts, double capacity_cycles_per_sec) {
  Cluster cluster;
  for (int i = 0; i < num_hosts; ++i) {
    cluster.AddHost(StrFormat("host%d", i), capacity_cycles_per_sec);
  }
  return cluster;
}

HostId Cluster::AddHost(std::string name, double capacity_cycles_per_sec) {
  const HostId id = static_cast<HostId>(hosts_.size());
  const bool topology_in_sync =
      topology_.num_hosts() == hosts_.size() && topology_.IsTrivial();
  hosts_.push_back(Host{id, std::move(name), capacity_cycles_per_sec});
  if (topology_in_sync) topology_ = FailureTopology::Trivial(hosts_.size());
  return id;
}

double Cluster::TotalCapacity() const {
  double total = 0.0;
  for (const Host& h : hosts_) total += h.capacity_cycles_per_sec;
  return total;
}

Status Cluster::Validate() const {
  if (hosts_.empty()) return Status::FailedPrecondition("cluster has no hosts");
  for (const Host& h : hosts_) {
    if (h.capacity_cycles_per_sec <= 0.0) {
      return Status::InvalidArgument(
          StrFormat("host %d has non-positive capacity %g", h.id, h.capacity_cycles_per_sec));
    }
  }
  LAAR_RETURN_IF_ERROR(topology_.Validate(hosts_.size()));
  return Status::OK();
}

}  // namespace laar::model
