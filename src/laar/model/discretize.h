#ifndef LAAR_MODEL_DISCRETIZE_H_
#define LAAR_MODEL_DISCRETIZE_H_

#include <vector>

#include "laar/common/result.h"
#include "laar/model/input_space.h"

namespace laar::model {

/// The descriptor-preparation step the service model assumes has already
/// happened (§3): "the continuous space of possible tuple rates for each
/// data source has been properly transformed in advance into a finite
/// number of discrete data rates through, e.g., binning techniques [12]",
/// with the pmf "inferred from a set of example input traces".
///
/// Given rate samples observed from a source (e.g. tuples/second measured
/// once per second over a day), these functions build the discrete
/// `SourceRateSet` the optimizer consumes.

struct DiscretizeOptions {
  /// Number of discrete rate levels to produce (>= 1).
  int num_levels = 2;
  /// Safety factor applied to each level's representative rate: the level
  /// must *dominate* the rates it stands for (the HAController's
  /// configuration lookup never under-provisions, §4.6), so the
  /// representative is the bin's maximum, optionally inflated.
  double headroom = 1.0;
};

/// Equal-frequency (quantile) binning: bins hold equally many samples, so
/// the pmf is uniform up to rounding; level rates are bin maxima. Produces
/// strictly increasing level rates (adjacent equal-valued bins are
/// merged, which can yield fewer than `num_levels` levels).
Result<SourceRateSet> DiscretizeEqualFrequency(ComponentId source,
                                               const std::vector<double>& samples,
                                               const DiscretizeOptions& options);

/// Equal-width binning over [min, max]: bin probabilities are the sample
/// fractions; empty bins are dropped.
Result<SourceRateSet> DiscretizeEqualWidth(ComponentId source,
                                           const std::vector<double>& samples,
                                           const DiscretizeOptions& options);

}  // namespace laar::model

#endif  // LAAR_MODEL_DISCRETIZE_H_
