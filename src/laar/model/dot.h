#ifndef LAAR_MODEL_DOT_H_
#define LAAR_MODEL_DOT_H_

#include <string>

#include "laar/model/graph.h"
#include "laar/strategy/activation_strategy.h"

namespace laar::model {

/// Renders the application graph in Graphviz DOT format: sources as
/// triangles, PEs as boxes, sinks as inverted triangles; edges labelled
/// with selectivity and per-tuple CPU cost.
std::string ToDot(const ApplicationGraph& graph);

/// Same, but colours each PE by its activation state in `config` under
/// `strategy`: green = fully replicated, orange = partially active,
/// red = uncovered (should never happen for valid strategies).
std::string ToDot(const ApplicationGraph& graph,
                  const strategy::ActivationStrategy& strategy, ConfigId config);

}  // namespace laar::model

#endif  // LAAR_MODEL_DOT_H_
