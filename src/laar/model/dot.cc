#include "laar/model/dot.h"

#include "laar/common/strings.h"

namespace laar::model {

namespace {

const char* ShapeOf(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kSource:
      return "triangle";
    case ComponentKind::kPe:
      return "box";
    case ComponentKind::kSink:
      return "invtriangle";
  }
  return "ellipse";
}

std::string Render(const ApplicationGraph& graph,
                   const strategy::ActivationStrategy* strategy, ConfigId config) {
  std::string out = "digraph application {\n  rankdir=LR;\n";
  for (const Component& c : graph.components()) {
    std::string color;
    if (strategy != nullptr && c.kind == ComponentKind::kPe) {
      const int active = strategy->ActiveReplicaCount(c.id, config);
      const char* fill = active >= strategy->replication_factor() ? "palegreen"
                         : active >= 1                            ? "orange"
                                                                  : "tomato";
      color = StrFormat(", style=filled, fillcolor=%s", fill);
    }
    out += StrFormat("  n%d [label=\"%s\", shape=%s%s];\n", c.id, c.name.c_str(),
                     ShapeOf(c.kind), color.c_str());
  }
  for (const Edge& e : graph.edges()) {
    if (graph.IsPe(e.to)) {
      out += StrFormat("  n%d -> n%d [label=\"sel %.2f\\n%.3g cyc\"];\n", e.from, e.to,
                       e.selectivity, e.cpu_cost_cycles);
    } else {
      out += StrFormat("  n%d -> n%d;\n", e.from, e.to);
    }
  }
  out += "}\n";
  return out;
}

}  // namespace

std::string ToDot(const ApplicationGraph& graph) { return Render(graph, nullptr, 0); }

std::string ToDot(const ApplicationGraph& graph,
                  const strategy::ActivationStrategy& strategy, ConfigId config) {
  return Render(graph, &strategy, config);
}

}  // namespace laar::model
