#include "laar/model/failure_topology.h"

#include <algorithm>

#include "laar/common/strings.h"

namespace laar::model {

const char* DomainLevelName(DomainLevel level) {
  switch (level) {
    case DomainLevel::kHost:
      return "host";
    case DomainLevel::kRack:
      return "rack";
    case DomainLevel::kZone:
      return "zone";
  }
  return "unknown";
}

FailureTopology FailureTopology::Trivial(size_t num_hosts) {
  return Uniform(num_hosts, 1, 1);
}

FailureTopology FailureTopology::Uniform(size_t num_hosts, int hosts_per_rack,
                                         int racks_per_zone) {
  if (hosts_per_rack <= 0) hosts_per_rack = 1;
  if (racks_per_zone <= 0) racks_per_zone = 1;
  FailureTopology topology;
  topology.rack_of_.resize(num_hosts);
  topology.zone_of_.resize(num_hosts);
  for (size_t h = 0; h < num_hosts; ++h) {
    const DomainId rack = static_cast<DomainId>(h / static_cast<size_t>(hosts_per_rack));
    topology.rack_of_[h] = rack;
    topology.zone_of_[h] = rack / racks_per_zone;
  }
  topology.num_racks_ = num_hosts == 0 ? 0 : topology.rack_of_.back() + 1;
  topology.num_zones_ = num_hosts == 0 ? 0 : topology.zone_of_.back() + 1;
  return topology;
}

DomainId FailureTopology::DomainOf(HostId host, DomainLevel level) const {
  switch (level) {
    case DomainLevel::kHost:
      return static_cast<DomainId>(host);
    case DomainLevel::kRack:
      return RackOf(host);
    case DomainLevel::kZone:
      return ZoneOf(host);
  }
  return kInvalidDomain;
}

int FailureTopology::NumDomains(DomainLevel level) const {
  switch (level) {
    case DomainLevel::kHost:
      return static_cast<int>(num_hosts());
    case DomainLevel::kRack:
      return num_racks_;
    case DomainLevel::kZone:
      return num_zones_;
  }
  return 0;
}

std::vector<HostId> FailureTopology::HostsInDomain(DomainLevel level,
                                                   DomainId domain) const {
  std::vector<HostId> hosts;
  for (size_t h = 0; h < num_hosts(); ++h) {
    const auto host = static_cast<HostId>(h);
    if (DomainOf(host, level) == domain) hosts.push_back(host);
  }
  return hosts;
}

bool FailureTopology::IsTrivial() const {
  return num_racks_ == static_cast<int>(num_hosts()) &&
         num_zones_ == static_cast<int>(num_hosts());
}

Status FailureTopology::Validate(size_t num_hosts) const {
  if (rack_of_.size() != num_hosts || zone_of_.size() != num_hosts) {
    return Status::InvalidArgument(
        StrFormat("topology covers %zu hosts, cluster has %zu", rack_of_.size(),
                  num_hosts));
  }
  // Every rack must live entirely inside one zone, else "zone outage"
  // would not be a superset of "rack outage".
  std::vector<DomainId> zone_of_rack(static_cast<size_t>(num_racks_), kInvalidDomain);
  for (size_t h = 0; h < num_hosts; ++h) {
    const DomainId rack = rack_of_[h];
    const DomainId zone = zone_of_[h];
    if (rack < 0 || rack >= num_racks_) {
      return Status::InvalidArgument(
          StrFormat("host %zu has out-of-range rack %d", h, rack));
    }
    if (zone < 0 || zone >= num_zones_) {
      return Status::InvalidArgument(
          StrFormat("host %zu has out-of-range zone %d", h, zone));
    }
    DomainId& assigned = zone_of_rack[static_cast<size_t>(rack)];
    if (assigned == kInvalidDomain) {
      assigned = zone;
    } else if (assigned != zone) {
      return Status::InvalidArgument(
          StrFormat("rack %d straddles zones %d and %d", rack, assigned, zone));
    }
  }
  return Status::OK();
}

}  // namespace laar::model
