#ifndef LAAR_MODEL_INPUT_SPACE_H_
#define LAAR_MODEL_INPUT_SPACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "laar/common/result.h"
#include "laar/common/status.h"
#include "laar/model/component.h"

namespace laar::model {

/// Dense index of one input configuration c ∈ C.
using ConfigId = int32_t;

/// The discrete rate levels of one data source: rates R_i (tuples/second),
/// optional labels ("Low", "High", ...), and the marginal probability of
/// each level. The continuous rate space is assumed already discretized
/// (e.g., via binning [12], §3).
struct SourceRateSet {
  ComponentId source = kInvalidComponent;
  std::vector<double> rates;
  std::vector<std::string> labels;
  std::vector<double> probabilities;
};

/// The input-configuration space C = R_1 × … × R_t with its probability
/// mass function P_C (§4.2).
///
/// Configurations are enumerated in mixed-radix order: the first source is
/// the most significant digit. By default P_C is the product of the
/// per-source marginals (sources are independent); `SetJointProbabilities`
/// installs an explicit joint pmf instead.
class InputSpace {
 public:
  InputSpace() = default;

  /// Adds a source's rate levels. `labels` may be empty (auto-filled with
  /// "r0", "r1", ...); otherwise it must parallel `rates`, as must
  /// `probabilities`, which must be non-negative and sum to 1 (±1e-9).
  Status AddSource(const SourceRateSet& rate_set);

  /// Replaces the product-form pmf with an explicit joint distribution over
  /// all `num_configs()` configurations (must sum to 1).
  Status SetJointProbabilities(std::vector<double> joint);

  /// Verifies at least one source, consistent dimensions, normalized pmf.
  Status Validate() const;

  size_t num_sources() const { return sources_.size(); }
  /// |C| = Π_i |R_i|.
  ConfigId num_configs() const;

  const SourceRateSet& source_rates(size_t source_index) const { return sources_[source_index]; }
  const std::vector<SourceRateSet>& sources() const { return sources_; }

  /// Index of the source with the given component id, or error.
  Result<size_t> SourceIndexOf(ComponentId source) const;

  /// The rate level chosen for `source_index` in configuration `config`.
  int LevelOf(size_t source_index, ConfigId config) const;

  /// Δ(x_i, c) for a source: its output rate in configuration `config`.
  double RateOf(size_t source_index, ConfigId config) const;
  Result<double> RateOfComponent(ComponentId source, ConfigId config) const;

  /// P_C(c).
  double Probability(ConfigId config) const;

  /// Human-readable configuration label, e.g. "High" or "(Low, High)".
  std::string ConfigLabel(ConfigId config) const;

  /// The configuration whose every source rate equals the per-source
  /// maximum (used by capacity checks and queue sizing).
  ConfigId PeakConfig() const;

  bool has_joint_probabilities() const { return !joint_.empty(); }

 private:
  std::vector<SourceRateSet> sources_;
  std::vector<double> joint_;  // empty => product form
};

}  // namespace laar::model

#endif  // LAAR_MODEL_INPUT_SPACE_H_
