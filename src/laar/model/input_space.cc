#include "laar/model/input_space.h"

#include <cmath>

#include "laar/common/strings.h"

namespace laar::model {

namespace {

Status CheckPmf(const std::vector<double>& probabilities, const char* what) {
  double total = 0.0;
  for (double p : probabilities) {
    if (p < 0.0) return Status::InvalidArgument(StrFormat("%s: negative probability", what));
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-9) {
    return Status::InvalidArgument(StrFormat("%s: probabilities sum to %.12f, expected 1",
                                             what, total));
  }
  return Status::OK();
}

}  // namespace

Status InputSpace::AddSource(const SourceRateSet& rate_set) {
  if (rate_set.rates.empty()) {
    return Status::InvalidArgument("source rate set must have at least one level");
  }
  if (!rate_set.labels.empty() && rate_set.labels.size() != rate_set.rates.size()) {
    return Status::InvalidArgument("labels must parallel rates");
  }
  if (rate_set.probabilities.size() != rate_set.rates.size()) {
    return Status::InvalidArgument("probabilities must parallel rates");
  }
  for (double r : rate_set.rates) {
    if (r < 0.0) return Status::InvalidArgument("source rates must be non-negative");
  }
  LAAR_RETURN_IF_ERROR(CheckPmf(rate_set.probabilities, "source rate probabilities"));
  for (const SourceRateSet& existing : sources_) {
    if (existing.source == rate_set.source) {
      return Status::AlreadyExists(
          StrFormat("source %d already has a rate set", rate_set.source));
    }
  }
  SourceRateSet stored = rate_set;
  if (stored.labels.empty()) {
    for (size_t i = 0; i < stored.rates.size(); ++i) {
      stored.labels.push_back(StrFormat("r%zu", i));
    }
  }
  sources_.push_back(std::move(stored));
  joint_.clear();  // any explicit joint pmf no longer matches dimensions
  return Status::OK();
}

Status InputSpace::SetJointProbabilities(std::vector<double> joint) {
  if (static_cast<ConfigId>(joint.size()) != num_configs()) {
    return Status::InvalidArgument(
        StrFormat("joint pmf has %zu entries, expected %d", joint.size(), num_configs()));
  }
  LAAR_RETURN_IF_ERROR(CheckPmf(joint, "joint pmf"));
  joint_ = std::move(joint);
  return Status::OK();
}

Status InputSpace::Validate() const {
  if (sources_.empty()) {
    return Status::FailedPrecondition("input space has no sources");
  }
  for (const SourceRateSet& s : sources_) {
    LAAR_RETURN_IF_ERROR(CheckPmf(s.probabilities, "source rate probabilities"));
  }
  if (!joint_.empty()) {
    LAAR_RETURN_IF_ERROR(CheckPmf(joint_, "joint pmf"));
  }
  return Status::OK();
}

ConfigId InputSpace::num_configs() const {
  if (sources_.empty()) return 0;
  int64_t total = 1;
  for (const SourceRateSet& s : sources_) {
    total *= static_cast<int64_t>(s.rates.size());
  }
  return static_cast<ConfigId>(total);
}

Result<size_t> InputSpace::SourceIndexOf(ComponentId source) const {
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i].source == source) return i;
  }
  return Status::NotFound(StrFormat("component %d has no rate set", source));
}

int InputSpace::LevelOf(size_t source_index, ConfigId config) const {
  // Mixed-radix decode, first source most significant.
  int64_t remainder = config;
  int64_t radix = 1;
  for (size_t i = source_index + 1; i < sources_.size(); ++i) {
    radix *= static_cast<int64_t>(sources_[i].rates.size());
  }
  remainder /= radix;
  return static_cast<int>(remainder % static_cast<int64_t>(sources_[source_index].rates.size()));
}

double InputSpace::RateOf(size_t source_index, ConfigId config) const {
  return sources_[source_index].rates[LevelOf(source_index, config)];
}

Result<double> InputSpace::RateOfComponent(ComponentId source, ConfigId config) const {
  LAAR_ASSIGN_OR_RETURN(size_t index, SourceIndexOf(source));
  return RateOf(index, config);
}

double InputSpace::Probability(ConfigId config) const {
  if (!joint_.empty()) return joint_[config];
  double p = 1.0;
  for (size_t i = 0; i < sources_.size(); ++i) {
    p *= sources_[i].probabilities[LevelOf(i, config)];
  }
  return p;
}

std::string InputSpace::ConfigLabel(ConfigId config) const {
  if (sources_.size() == 1) return sources_[0].labels[LevelOf(0, config)];
  std::string out = "(";
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (i > 0) out += ", ";
    out += sources_[i].labels[LevelOf(i, config)];
  }
  out += ")";
  return out;
}

ConfigId InputSpace::PeakConfig() const {
  int64_t config = 0;
  for (const SourceRateSet& s : sources_) {
    size_t best = 0;
    for (size_t level = 1; level < s.rates.size(); ++level) {
      if (s.rates[level] > s.rates[best]) best = level;
    }
    config = config * static_cast<int64_t>(s.rates.size()) + static_cast<int64_t>(best);
  }
  return static_cast<ConfigId>(config);
}

}  // namespace laar::model
