#include "laar/model/graph.h"

#include <deque>
#include <set>
#include <utility>

#include "laar/common/strings.h"

namespace laar::model {

const char* ComponentKindName(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kSource:
      return "source";
    case ComponentKind::kPe:
      return "pe";
    case ComponentKind::kSink:
      return "sink";
  }
  return "unknown";
}

ComponentId ApplicationGraph::AddComponent(ComponentKind kind, std::string name) {
  const ComponentId id = static_cast<ComponentId>(components_.size());
  components_.push_back(Component{id, kind, std::move(name)});
  incoming_.emplace_back();
  outgoing_.emplace_back();
  validated_ = false;
  return id;
}

ComponentId ApplicationGraph::AddSource(std::string name) {
  return AddComponent(ComponentKind::kSource, std::move(name));
}

ComponentId ApplicationGraph::AddPe(std::string name) {
  return AddComponent(ComponentKind::kPe, std::move(name));
}

ComponentId ApplicationGraph::AddSink(std::string name) {
  return AddComponent(ComponentKind::kSink, std::move(name));
}

Status ApplicationGraph::AddEdge(ComponentId from, ComponentId to, double selectivity,
                                 double cpu_cost_cycles) {
  const auto n = static_cast<ComponentId>(components_.size());
  if (from < 0 || from >= n || to < 0 || to >= n) {
    return Status::InvalidArgument(StrFormat("edge (%d, %d) references unknown component",
                                             from, to));
  }
  if (from == to) return Status::InvalidArgument("self-loop edges are not allowed");
  if (IsPe(to)) {
    if (selectivity <= 0.0) {
      return Status::InvalidArgument(
          StrFormat("edge (%d, %d): selectivity must be positive, got %g", from, to,
                    selectivity));
    }
    if (cpu_cost_cycles < 0.0) {
      return Status::InvalidArgument(
          StrFormat("edge (%d, %d): per-tuple CPU cost must be non-negative, got %g", from,
                    to, cpu_cost_cycles));
    }
  }
  const size_t edge_index = edges_.size();
  edges_.push_back(Edge{from, to, selectivity, cpu_cost_cycles});
  outgoing_[from].push_back(edge_index);
  incoming_[to].push_back(edge_index);
  validated_ = false;
  return Status::OK();
}

Status ApplicationGraph::Validate() {
  // Structural checks per component kind.
  std::set<std::pair<ComponentId, ComponentId>> seen_edges;
  for (const Edge& e : edges_) {
    if (!seen_edges.insert({e.from, e.to}).second) {
      return Status::InvalidArgument(
          StrFormat("duplicate edge (%d, %d); multi-edges are not supported", e.from, e.to));
    }
    if (IsSink(e.from)) {
      return Status::InvalidArgument(StrFormat("sink %d has an outgoing edge", e.from));
    }
    if (IsSource(e.to)) {
      return Status::InvalidArgument(StrFormat("source %d has an incoming edge", e.to));
    }
  }
  for (const Component& c : components_) {
    if (c.kind == ComponentKind::kPe && incoming_[c.id].empty()) {
      return Status::InvalidArgument(
          StrFormat("PE %d ('%s') has no predecessors and would never receive tuples", c.id,
                    c.name.c_str()));
    }
    if (c.kind == ComponentKind::kSource && outgoing_[c.id].empty()) {
      return Status::InvalidArgument(
          StrFormat("source %d ('%s') has no successors", c.id, c.name.c_str()));
    }
  }

  // Kahn's algorithm [20]; also detects cycles.
  topo_order_.clear();
  topo_order_.reserve(components_.size());
  std::vector<size_t> in_degree(components_.size(), 0);
  for (const Edge& e : edges_) ++in_degree[e.to];
  std::deque<ComponentId> frontier;
  for (const Component& c : components_) {
    if (in_degree[c.id] == 0) frontier.push_back(c.id);
  }
  while (!frontier.empty()) {
    const ComponentId id = frontier.front();
    frontier.pop_front();
    topo_order_.push_back(id);
    for (size_t edge_index : outgoing_[id]) {
      const ComponentId next = edges_[edge_index].to;
      if (--in_degree[next] == 0) frontier.push_back(next);
    }
  }
  if (topo_order_.size() != components_.size()) {
    return Status::InvalidArgument("application graph contains a cycle");
  }
  validated_ = true;
  return Status::OK();
}

std::vector<ComponentId> ApplicationGraph::Sources() const {
  std::vector<ComponentId> out;
  for (const Component& c : components_) {
    if (c.kind == ComponentKind::kSource) out.push_back(c.id);
  }
  return out;
}

std::vector<ComponentId> ApplicationGraph::Pes() const {
  std::vector<ComponentId> out;
  for (const Component& c : components_) {
    if (c.kind == ComponentKind::kPe) out.push_back(c.id);
  }
  return out;
}

std::vector<ComponentId> ApplicationGraph::Sinks() const {
  std::vector<ComponentId> out;
  for (const Component& c : components_) {
    if (c.kind == ComponentKind::kSink) out.push_back(c.id);
  }
  return out;
}

size_t ApplicationGraph::num_pes() const {
  size_t count = 0;
  for (const Component& c : components_) {
    if (c.kind == ComponentKind::kPe) ++count;
  }
  return count;
}

size_t ApplicationGraph::num_sources() const {
  size_t count = 0;
  for (const Component& c : components_) {
    if (c.kind == ComponentKind::kSource) ++count;
  }
  return count;
}

std::vector<ComponentId> ApplicationGraph::Predecessors(ComponentId id) const {
  std::vector<ComponentId> out;
  out.reserve(incoming_[id].size());
  for (size_t edge_index : incoming_[id]) out.push_back(edges_[edge_index].from);
  return out;
}

std::vector<ComponentId> ApplicationGraph::Successors(ComponentId id) const {
  std::vector<ComponentId> out;
  out.reserve(outgoing_[id].size());
  for (size_t edge_index : outgoing_[id]) out.push_back(edges_[edge_index].to);
  return out;
}

std::vector<ComponentId> ApplicationGraph::PesInTopologicalOrder() const {
  std::vector<ComponentId> out;
  for (ComponentId id : topo_order_) {
    if (IsPe(id)) out.push_back(id);
  }
  return out;
}

}  // namespace laar::model
