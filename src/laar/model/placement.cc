#include "laar/model/placement.h"

#include <set>

#include "laar/common/strings.h"

namespace laar::model {

ReplicaPlacement::ReplicaPlacement(size_t num_components, int replication_factor)
    : replication_factor_(replication_factor < 1 ? 1 : replication_factor),
      table_(num_components,
             std::vector<HostId>(static_cast<size_t>(replication_factor_), kInvalidHost)) {}

Status ReplicaPlacement::Assign(ComponentId pe, int replica, HostId host) {
  if (pe < 0 || static_cast<size_t>(pe) >= table_.size()) {
    return Status::InvalidArgument(StrFormat("unknown component %d", pe));
  }
  if (replica < 0 || replica >= replication_factor_) {
    return Status::InvalidArgument(
        StrFormat("replica index %d out of range [0, %d)", replica, replication_factor_));
  }
  table_[static_cast<size_t>(pe)][static_cast<size_t>(replica)] = host;
  return Status::OK();
}

std::vector<ReplicaRef> ReplicaPlacement::ReplicasOn(HostId host) const {
  std::vector<ReplicaRef> out;
  for (size_t pe = 0; pe < table_.size(); ++pe) {
    for (int r = 0; r < replication_factor_; ++r) {
      if (table_[pe][static_cast<size_t>(r)] == host) {
        out.push_back(ReplicaRef{static_cast<ComponentId>(pe), r});
      }
    }
  }
  return out;
}

std::vector<ReplicaRef> ReplicaPlacement::AllReplicas() const {
  std::vector<ReplicaRef> out;
  for (size_t pe = 0; pe < table_.size(); ++pe) {
    for (int r = 0; r < replication_factor_; ++r) {
      if (table_[pe][static_cast<size_t>(r)] != kInvalidHost) {
        out.push_back(ReplicaRef{static_cast<ComponentId>(pe), r});
      }
    }
  }
  return out;
}

Status ReplicaPlacement::Validate(const Cluster& cluster, bool require_anti_affinity) const {
  for (size_t pe = 0; pe < table_.size(); ++pe) {
    const std::vector<HostId>& row = table_[pe];
    const bool any_assigned = row[0] != kInvalidHost;
    std::set<HostId> hosts_used;
    for (int r = 0; r < replication_factor_; ++r) {
      const HostId host = row[static_cast<size_t>(r)];
      if ((host != kInvalidHost) != any_assigned) {
        return Status::FailedPrecondition(
            StrFormat("PE %zu is only partially placed (replica %d)", pe, r));
      }
      if (host == kInvalidHost) continue;
      if (host < 0 || static_cast<size_t>(host) >= cluster.num_hosts()) {
        return Status::InvalidArgument(
            StrFormat("PE %zu replica %d assigned to unknown host %d", pe, r, host));
      }
      if (!hosts_used.insert(host).second && require_anti_affinity) {
        return Status::FailedPrecondition(
            StrFormat("PE %zu has two replicas on host %d; replica anti-affinity violated",
                      pe, host));
      }
    }
  }
  return Status::OK();
}

}  // namespace laar::model
