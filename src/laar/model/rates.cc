#include "laar/model/rates.h"

#include "laar/common/strings.h"

namespace laar::model {

Result<ExpectedRates> ExpectedRates::Compute(const ApplicationGraph& graph,
                                             const InputSpace& space) {
  if (!graph.validated()) {
    return Status::FailedPrecondition("graph must be validated before computing rates");
  }
  LAAR_RETURN_IF_ERROR(space.Validate());
  for (ComponentId source : graph.Sources()) {
    if (!space.SourceIndexOf(source).ok()) {
      return Status::InvalidArgument(
          StrFormat("source %d has no rate set in the input space", source));
    }
  }

  ExpectedRates out;
  const ConfigId num_configs = space.num_configs();
  out.rates_.assign(static_cast<size_t>(num_configs),
                    std::vector<double>(graph.num_components(), 0.0));
  for (ConfigId c = 0; c < num_configs; ++c) {
    std::vector<double>& row = out.rates_[static_cast<size_t>(c)];
    for (ComponentId id : graph.TopologicalOrder()) {
      if (graph.IsSource(id)) {
        LAAR_ASSIGN_OR_RETURN(row[id], space.RateOfComponent(id, c));
        continue;
      }
      // PEs apply selectivity per incoming edge; sinks just accumulate.
      double rate = 0.0;
      for (size_t edge_index : graph.IncomingEdges(id)) {
        const Edge& e = graph.edges()[edge_index];
        rate += (graph.IsPe(id) ? e.selectivity : 1.0) * row[e.from];
      }
      row[id] = rate;
    }
  }
  return out;
}

double ExpectedRates::ArrivalRate(const ApplicationGraph& graph, ComponentId pe,
                                  ConfigId config) const {
  double total = 0.0;
  for (size_t edge_index : graph.IncomingEdges(pe)) {
    total += Rate(graph.edges()[edge_index].from, config);
  }
  return total;
}

double ExpectedRates::CpuDemand(const ApplicationGraph& graph, ComponentId pe,
                                ConfigId config) const {
  double total = 0.0;
  for (size_t edge_index : graph.IncomingEdges(pe)) {
    const Edge& e = graph.edges()[edge_index];
    total += e.cpu_cost_cycles * Rate(e.from, config);
  }
  return total;
}

}  // namespace laar::model
