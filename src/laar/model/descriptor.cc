#include "laar/model/descriptor.h"

#include <string_view>

#include "laar/common/strings.h"

namespace laar::model {

namespace {

Result<ComponentKind> KindFromString(std::string_view kind) {
  if (kind == "source") return ComponentKind::kSource;
  if (kind == "pe") return ComponentKind::kPe;
  if (kind == "sink") return ComponentKind::kSink;
  return Status::InvalidArgument(StrFormat("unknown component kind '%.*s'",
                                           static_cast<int>(kind.size()), kind.data()));
}

}  // namespace

Status ApplicationDescriptor::Validate() {
  LAAR_RETURN_IF_ERROR(graph.Validate());
  LAAR_RETURN_IF_ERROR(input_space.Validate());
  for (ComponentId source : graph.Sources()) {
    if (!input_space.SourceIndexOf(source).ok()) {
      return Status::InvalidArgument(
          StrFormat("graph source %d has no rate set in the descriptor", source));
    }
  }
  for (const SourceRateSet& rate_set : input_space.sources()) {
    if (rate_set.source < 0 ||
        static_cast<size_t>(rate_set.source) >= graph.num_components() ||
        !graph.IsSource(rate_set.source)) {
      return Status::InvalidArgument(
          StrFormat("rate set references component %d which is not a source",
                    rate_set.source));
    }
  }
  return Status::OK();
}

json::Value ApplicationDescriptor::ToJson() const {
  json::Value doc = json::Value::MakeObject();
  doc.Set("name", json::Value::String(name));

  json::Value components = json::Value::MakeArray();
  for (const Component& c : graph.components()) {
    json::Value jc = json::Value::MakeObject();
    jc.Set("id", json::Value::Int(c.id));
    jc.Set("kind", json::Value::String(ComponentKindName(c.kind)));
    jc.Set("name", json::Value::String(c.name));
    components.Append(std::move(jc));
  }
  doc.Set("components", std::move(components));

  json::Value edges = json::Value::MakeArray();
  for (const Edge& e : graph.edges()) {
    json::Value je = json::Value::MakeObject();
    je.Set("from", json::Value::Int(e.from));
    je.Set("to", json::Value::Int(e.to));
    je.Set("selectivity", json::Value::Number(e.selectivity));
    je.Set("cpu_cost_cycles", json::Value::Number(e.cpu_cost_cycles));
    edges.Append(std::move(je));
  }
  doc.Set("edges", std::move(edges));

  json::Value sources = json::Value::MakeArray();
  for (const SourceRateSet& s : input_space.sources()) {
    json::Value js = json::Value::MakeObject();
    js.Set("source", json::Value::Int(s.source));
    json::Value rates = json::Value::MakeArray();
    json::Value labels = json::Value::MakeArray();
    json::Value probabilities = json::Value::MakeArray();
    for (size_t i = 0; i < s.rates.size(); ++i) {
      rates.Append(json::Value::Number(s.rates[i]));
      labels.Append(json::Value::String(s.labels[i]));
      probabilities.Append(json::Value::Number(s.probabilities[i]));
    }
    js.Set("rates", std::move(rates));
    js.Set("labels", std::move(labels));
    js.Set("probabilities", std::move(probabilities));
    sources.Append(std::move(js));
  }
  doc.Set("source_rates", std::move(sources));
  return doc;
}

Result<ApplicationDescriptor> ApplicationDescriptor::FromJson(const json::Value& value) {
  if (!value.is_object()) return Status::InvalidArgument("descriptor must be a JSON object");
  ApplicationDescriptor out;
  out.name = value.GetOr("name", json::Value::String("")).string_value();

  LAAR_ASSIGN_OR_RETURN(const json::Value* components, value.Get("components"));
  if (!components->is_array()) return Status::InvalidArgument("'components' must be an array");
  for (const json::Value& jc : components->array()) {
    LAAR_ASSIGN_OR_RETURN(const json::Value* kind_value, jc.Get("kind"));
    LAAR_ASSIGN_OR_RETURN(std::string kind_name, kind_value->AsString());
    LAAR_ASSIGN_OR_RETURN(ComponentKind kind, KindFromString(kind_name));
    const std::string component_name =
        jc.GetOr("name", json::Value::String("")).string_value();
    ComponentId id = kInvalidComponent;
    switch (kind) {
      case ComponentKind::kSource:
        id = out.graph.AddSource(component_name);
        break;
      case ComponentKind::kPe:
        id = out.graph.AddPe(component_name);
        break;
      case ComponentKind::kSink:
        id = out.graph.AddSink(component_name);
        break;
    }
    // Ids must be dense and in file order so edges resolve unchanged.
    LAAR_ASSIGN_OR_RETURN(const json::Value* id_value, jc.Get("id"));
    LAAR_ASSIGN_OR_RETURN(int64_t declared_id, id_value->AsInt());
    if (declared_id != id) {
      return Status::InvalidArgument(
          StrFormat("component ids must be dense and ordered; got %lld at position %d",
                    static_cast<long long>(declared_id), id));
    }
  }

  LAAR_ASSIGN_OR_RETURN(const json::Value* edges, value.Get("edges"));
  if (!edges->is_array()) return Status::InvalidArgument("'edges' must be an array");
  for (const json::Value& je : edges->array()) {
    LAAR_ASSIGN_OR_RETURN(const json::Value* from_value, je.Get("from"));
    LAAR_ASSIGN_OR_RETURN(const json::Value* to_value, je.Get("to"));
    LAAR_ASSIGN_OR_RETURN(int64_t from, from_value->AsInt());
    LAAR_ASSIGN_OR_RETURN(int64_t to, to_value->AsInt());
    LAAR_ASSIGN_OR_RETURN(
        double selectivity,
        je.GetOr("selectivity", json::Value::Number(1.0)).AsDouble());
    LAAR_ASSIGN_OR_RETURN(
        double cpu_cost,
        je.GetOr("cpu_cost_cycles", json::Value::Number(0.0)).AsDouble());
    LAAR_RETURN_IF_ERROR(out.graph.AddEdge(static_cast<ComponentId>(from),
                                           static_cast<ComponentId>(to), selectivity,
                                           cpu_cost));
  }

  LAAR_ASSIGN_OR_RETURN(const json::Value* sources, value.Get("source_rates"));
  if (!sources->is_array()) return Status::InvalidArgument("'source_rates' must be an array");
  for (const json::Value& js : sources->array()) {
    SourceRateSet rate_set;
    LAAR_ASSIGN_OR_RETURN(const json::Value* source_value, js.Get("source"));
    LAAR_ASSIGN_OR_RETURN(int64_t source_id, source_value->AsInt());
    rate_set.source = static_cast<ComponentId>(source_id);
    LAAR_ASSIGN_OR_RETURN(const json::Value* rates, js.Get("rates"));
    for (const json::Value& r : rates->array()) {
      LAAR_ASSIGN_OR_RETURN(double rate, r.AsDouble());
      rate_set.rates.push_back(rate);
    }
    if (js.Has("labels")) {
      LAAR_ASSIGN_OR_RETURN(const json::Value* labels, js.Get("labels"));
      for (const json::Value& l : labels->array()) {
        LAAR_ASSIGN_OR_RETURN(std::string label, l.AsString());
        rate_set.labels.push_back(std::move(label));
      }
    }
    LAAR_ASSIGN_OR_RETURN(const json::Value* probabilities, js.Get("probabilities"));
    for (const json::Value& p : probabilities->array()) {
      LAAR_ASSIGN_OR_RETURN(double probability, p.AsDouble());
      rate_set.probabilities.push_back(probability);
    }
    LAAR_RETURN_IF_ERROR(out.input_space.AddSource(rate_set));
  }

  LAAR_RETURN_IF_ERROR(out.Validate());
  return out;
}

Status ApplicationDescriptor::SaveToFile(const std::string& path) const {
  return json::WriteFile(ToJson(), path);
}

Result<ApplicationDescriptor> ApplicationDescriptor::LoadFromFile(const std::string& path) {
  LAAR_ASSIGN_OR_RETURN(json::Value doc, json::ParseFile(path));
  return FromJson(doc);
}

}  // namespace laar::model
