#include "laar/model/transform.h"

#include "laar/common/strings.h"

namespace laar::model {

namespace {

/// Rebuilds `app` with per-edge costs and per-source rates passed through
/// the given multipliers.
Result<ApplicationDescriptor> Rebuild(const ApplicationDescriptor& app, double cost_factor,
                                      double rate_factor) {
  ApplicationDescriptor out;
  out.name = app.name;
  for (const Component& c : app.graph.components()) {
    switch (c.kind) {
      case ComponentKind::kSource:
        out.graph.AddSource(c.name);
        break;
      case ComponentKind::kPe:
        out.graph.AddPe(c.name);
        break;
      case ComponentKind::kSink:
        out.graph.AddSink(c.name);
        break;
    }
  }
  for (const Edge& e : app.graph.edges()) {
    LAAR_RETURN_IF_ERROR(
        out.graph.AddEdge(e.from, e.to, e.selectivity, e.cpu_cost_cycles * cost_factor));
  }
  for (const SourceRateSet& s : app.input_space.sources()) {
    SourceRateSet scaled = s;
    for (double& rate : scaled.rates) rate *= rate_factor;
    LAAR_RETURN_IF_ERROR(out.input_space.AddSource(scaled));
  }
  LAAR_RETURN_IF_ERROR(out.Validate());
  return out;
}

}  // namespace

Result<ApplicationDescriptor> ScaleCpuCosts(const ApplicationDescriptor& app,
                                            double factor) {
  if (factor <= 0.0) {
    return Status::InvalidArgument(StrFormat("cost factor must be positive, got %g",
                                             factor));
  }
  return Rebuild(app, factor, 1.0);
}

Result<ApplicationDescriptor> ScaleSourceRates(const ApplicationDescriptor& app,
                                               double factor) {
  if (factor <= 0.0) {
    return Status::InvalidArgument(StrFormat("rate factor must be positive, got %g",
                                             factor));
  }
  return Rebuild(app, 1.0, factor);
}

}  // namespace laar::model
