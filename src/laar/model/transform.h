#ifndef LAAR_MODEL_TRANSFORM_H_
#define LAAR_MODEL_TRANSFORM_H_

#include "laar/common/result.h"
#include "laar/model/descriptor.h"

namespace laar::model {

/// What-if transforms over application descriptors. Descriptors are
/// immutable once validated; these return modified copies.

/// Multiplies every per-tuple CPU cost by `factor` (> 0). Used e.g. to
/// model the steady-state overhead of checkpointing-based fault tolerance
/// (a few percent of extra CPU per tuple [18]) or faster/slower hosts.
Result<ApplicationDescriptor> ScaleCpuCosts(const ApplicationDescriptor& app,
                                            double factor);

/// Multiplies every source rate by `factor` (> 0): what happens to this
/// contract if the customer's traffic grows uniformly.
Result<ApplicationDescriptor> ScaleSourceRates(const ApplicationDescriptor& app,
                                               double factor);

}  // namespace laar::model

#endif  // LAAR_MODEL_TRANSFORM_H_
