#ifndef LAAR_MODEL_GRAPH_H_
#define LAAR_MODEL_GRAPH_H_

#include <string>
#include <vector>

#include "laar/common/result.h"
#include "laar/common/status.h"
#include "laar/model/component.h"

namespace laar::model {

/// A directed edge of the application graph with its concise attributes
/// (§3): `selectivity` is δ(from, to) — the weight of the contribution of
/// the input stream on the PE output — and `cpu_cost_cycles` is
/// γ(from, to) — average CPU cycles the destination PE spends per tuple
/// received on this edge. Both attributes are meaningful only when the
/// destination is a PE; edges into sinks carry data without processing cost.
struct Edge {
  ComponentId from = kInvalidComponent;
  ComponentId to = kInvalidComponent;
  double selectivity = 1.0;
  double cpu_cost_cycles = 0.0;
};

/// The application graph G = (X, E): a DAG of sources, PEs, and sinks
/// connected by stream channels (§4.2).
///
/// Build with `AddSource`/`AddPe`/`AddSink`/`AddEdge`, then call `Validate`
/// once; accessors assume a validated graph. Components are identified by
/// dense ids in insertion order, which keeps all per-component bookkeeping
/// in flat vectors throughout the library.
class ApplicationGraph {
 public:
  ApplicationGraph() = default;

  /// Vertex construction; returns the id of the new component.
  ComponentId AddSource(std::string name);
  ComponentId AddPe(std::string name);
  ComponentId AddSink(std::string name);

  /// Adds a stream channel. For edges into PEs, `selectivity` must be > 0
  /// and `cpu_cost_cycles` >= 0; both are ignored for edges into sinks.
  Status AddEdge(ComponentId from, ComponentId to, double selectivity,
                 double cpu_cost_cycles);

  /// Checks structural invariants: ids valid, sources have no predecessors,
  /// sinks have no successors, every PE has at least one predecessor, no
  /// duplicate edges, and the graph is acyclic. Computes the cached
  /// topological order on success.
  Status Validate();
  bool validated() const { return validated_; }

  size_t num_components() const { return components_.size(); }
  size_t num_edges() const { return edges_.size(); }
  const Component& component(ComponentId id) const { return components_[id]; }
  const std::vector<Component>& components() const { return components_; }
  const std::vector<Edge>& edges() const { return edges_; }

  bool IsSource(ComponentId id) const { return components_[id].kind == ComponentKind::kSource; }
  bool IsPe(ComponentId id) const { return components_[id].kind == ComponentKind::kPe; }
  bool IsSink(ComponentId id) const { return components_[id].kind == ComponentKind::kSink; }

  /// Ids of all components of each kind, in id order.
  std::vector<ComponentId> Sources() const;
  std::vector<ComponentId> Pes() const;
  std::vector<ComponentId> Sinks() const;
  size_t num_pes() const;
  size_t num_sources() const;

  /// pred(x): indices into `edges()` of the incoming edges of `id` (§4.2
  /// Eq. 1, enriched with the edge attributes).
  const std::vector<size_t>& IncomingEdges(ComponentId id) const { return incoming_[id]; }
  const std::vector<size_t>& OutgoingEdges(ComponentId id) const { return outgoing_[id]; }

  std::vector<ComponentId> Predecessors(ComponentId id) const;
  std::vector<ComponentId> Successors(ComponentId id) const;

  /// Component ids in a topological order (Kahn [20]); valid after
  /// `Validate`.
  const std::vector<ComponentId>& TopologicalOrder() const { return topo_order_; }

  /// PE ids only, in topological order; the order FT-Search must respect
  /// when accumulating partial IC contributions (§4.5).
  std::vector<ComponentId> PesInTopologicalOrder() const;

 private:
  ComponentId AddComponent(ComponentKind kind, std::string name);

  std::vector<Component> components_;
  std::vector<Edge> edges_;
  std::vector<std::vector<size_t>> incoming_;
  std::vector<std::vector<size_t>> outgoing_;
  std::vector<ComponentId> topo_order_;
  bool validated_ = false;
};

}  // namespace laar::model

#endif  // LAAR_MODEL_GRAPH_H_
