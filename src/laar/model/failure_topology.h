#ifndef LAAR_MODEL_FAILURE_TOPOLOGY_H_
#define LAAR_MODEL_FAILURE_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "laar/common/status.h"

namespace laar::model {

using HostId = int32_t;
using DomainId = int32_t;

constexpr DomainId kInvalidDomain = -1;

/// Granularity at which hosts fail together. `kHost` degenerates to the
/// independent-failure world (every host is its own domain); `kRack` and
/// `kZone` model shared switches / power feeds whose loss takes down every
/// host they serve at once — the correlated bursts of arXiv 1508.04907.
enum class DomainLevel : int32_t {
  kHost = 0,
  kRack = 1,
  kZone = 2,
};

const char* DomainLevelName(DomainLevel level);

/// The host → rack → zone containment map of a cluster. Hosts are dense
/// indices (matching `Cluster`), racks and zones are dense per-level domain
/// ids. The default topology is *trivial*: every host is alone in its own
/// rack and zone, so correlated and independent failures coincide.
class FailureTopology {
 public:
  FailureTopology() = default;

  /// Every host its own rack and zone — the pre-topology behaviour.
  static FailureTopology Trivial(size_t num_hosts);

  /// Fills racks of `hosts_per_rack` consecutive hosts and zones of
  /// `racks_per_zone` consecutive racks (last rack/zone may be partial).
  /// Non-positive arguments mean "one per host"/"one per rack".
  static FailureTopology Uniform(size_t num_hosts, int hosts_per_rack,
                                 int racks_per_zone);

  size_t num_hosts() const { return rack_of_.size(); }
  int num_racks() const { return num_racks_; }
  int num_zones() const { return num_zones_; }

  DomainId RackOf(HostId host) const { return rack_of_[static_cast<size_t>(host)]; }
  DomainId ZoneOf(HostId host) const { return zone_of_[static_cast<size_t>(host)]; }

  /// Domain id of `host` at `level`; at kHost level the host is its own
  /// domain.
  DomainId DomainOf(HostId host, DomainLevel level) const;

  /// Number of domains at `level` (== num_hosts() at kHost level).
  int NumDomains(DomainLevel level) const;

  /// All hosts belonging to `domain` at `level`, in increasing host order.
  std::vector<HostId> HostsInDomain(DomainLevel level, DomainId domain) const;

  /// True when every host is its own rack and zone.
  bool IsTrivial() const;

  /// Checks the map covers exactly `num_hosts` hosts with dense in-range
  /// rack/zone ids, and that a rack never straddles two zones.
  Status Validate(size_t num_hosts) const;

  friend bool operator==(const FailureTopology& a, const FailureTopology& b) {
    return a.rack_of_ == b.rack_of_ && a.zone_of_ == b.zone_of_;
  }

 private:
  std::vector<DomainId> rack_of_;
  std::vector<DomainId> zone_of_;
  int num_racks_ = 0;
  int num_zones_ = 0;
};

}  // namespace laar::model

#endif  // LAAR_MODEL_FAILURE_TOPOLOGY_H_
