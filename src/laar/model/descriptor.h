#ifndef LAAR_MODEL_DESCRIPTOR_H_
#define LAAR_MODEL_DESCRIPTOR_H_

#include <string>

#include "laar/common/result.h"
#include "laar/json/json.h"
#include "laar/model/graph.h"
#include "laar/model/input_space.h"

namespace laar::model {

/// The application descriptor of the service model (§3): the application
/// graph with per-edge selectivity/CPU-cost attributes together with the
/// statistical characterization of the external data sources. This is the
/// document a customer submits (or a provider profiles) and the sole input
/// of the off-line FT-Search optimization.
struct ApplicationDescriptor {
  std::string name;
  ApplicationGraph graph;
  InputSpace input_space;

  /// Validates graph, input space, and their agreement (every source in the
  /// graph has a rate set and vice versa).
  Status Validate();

  /// Serialization to the on-disk JSON descriptor format.
  json::Value ToJson() const;
  static Result<ApplicationDescriptor> FromJson(const json::Value& value);

  Status SaveToFile(const std::string& path) const;
  static Result<ApplicationDescriptor> LoadFromFile(const std::string& path);
};

}  // namespace laar::model

#endif  // LAAR_MODEL_DESCRIPTOR_H_
