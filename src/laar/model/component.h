#ifndef LAAR_MODEL_COMPONENT_H_
#define LAAR_MODEL_COMPONENT_H_

#include <cstdint>
#include <string>

namespace laar::model {

/// Dense index of a component within its `ApplicationGraph`.
using ComponentId = int32_t;

constexpr ComponentId kInvalidComponent = -1;

/// The three component roles of the service model (§3): data sources feed
/// external streams in, Processing Elements transform them, data sinks write
/// results out.
enum class ComponentKind {
  kSource = 0,
  kPe = 1,
  kSink = 2,
};

const char* ComponentKindName(ComponentKind kind);

/// A vertex of the application graph.
struct Component {
  ComponentId id = kInvalidComponent;
  ComponentKind kind = ComponentKind::kPe;
  std::string name;
};

}  // namespace laar::model

#endif  // LAAR_MODEL_COMPONENT_H_
