#ifndef LAAR_MODEL_PLACEMENT_H_
#define LAAR_MODEL_PLACEMENT_H_

#include <vector>

#include "laar/common/result.h"
#include "laar/common/status.h"
#include "laar/model/cluster.h"
#include "laar/model/component.h"

namespace laar::model {

/// Identifies the j-th replica x̃_{i,j} of PE x_i (§4.2, Eq. 2).
struct ReplicaRef {
  ComponentId pe = kInvalidComponent;
  int replica = 0;

  friend bool operator==(const ReplicaRef& a, const ReplicaRef& b) {
    return a.pe == b.pe && a.replica == b.replica;
  }
  friend bool operator<(const ReplicaRef& a, const ReplicaRef& b) {
    return a.pe != b.pe ? a.pe < b.pe : a.replica < b.replica;
  }
};

/// The replicated assignment ϑ : P̃ → H mapping every PE replica to the
/// host where it is deployed (Eq. 3), plus the inverse map ϑ⁻¹ (Eq. 4).
///
/// The assignment stores hosts in a dense [pe][replica] table; PEs that do
/// not exist in the table (sources/sinks) map to `kInvalidHost`.
class ReplicaPlacement {
 public:
  /// Creates an empty placement for `num_components` components with
  /// `replication_factor` replicas each (k ≥ 1).
  ReplicaPlacement(size_t num_components, int replication_factor);

  int replication_factor() const { return replication_factor_; }

  /// Assigns replica (pe, replica) to `host`.
  Status Assign(ComponentId pe, int replica, HostId host);

  /// ϑ(x̃_{pe,replica}); `kInvalidHost` when unassigned.
  HostId HostOf(ComponentId pe, int replica) const {
    return table_[static_cast<size_t>(pe)][static_cast<size_t>(replica)];
  }

  bool IsAssigned(ComponentId pe) const { return table_[pe][0] != kInvalidHost; }

  /// ϑ⁻¹(host): all replicas assigned to `host`, in (pe, replica) order.
  std::vector<ReplicaRef> ReplicasOn(HostId host) const;

  /// All assigned replicas.
  std::vector<ReplicaRef> AllReplicas() const;

  /// Checks every assigned PE has all `k` replicas placed on valid hosts of
  /// `cluster`, and (when `require_anti_affinity`) that no two replicas of
  /// one PE share a host — without which the worst-case failure analysis
  /// degenerates.
  Status Validate(const Cluster& cluster, bool require_anti_affinity = true) const;

  size_t num_components() const { return table_.size(); }

 private:
  int replication_factor_;
  std::vector<std::vector<HostId>> table_;  // [component][replica] -> host
};

}  // namespace laar::model

#endif  // LAAR_MODEL_PLACEMENT_H_
