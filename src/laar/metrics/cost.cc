#include "laar/metrics/cost.h"

#include "laar/common/strings.h"
#include "laar/metrics/failure_model.h"
#include "laar/metrics/ic.h"

namespace laar::metrics {

double CostPerSecond(const model::ApplicationGraph& graph, const model::InputSpace& space,
                     const model::ExpectedRates& rates,
                     const model::ReplicaPlacement& placement,
                     const strategy::ActivationStrategy& strategy) {
  double cost = 0.0;
  const model::ConfigId num_configs = space.num_configs();
  for (model::ConfigId c = 0; c < num_configs; ++c) {
    const double probability = space.Probability(c);
    if (probability <= 0.0) continue;
    double config_cost = 0.0;
    for (model::ComponentId pe : graph.Pes()) {
      if (!placement.IsAssigned(pe)) continue;
      const double demand = rates.CpuDemand(graph, pe, c);
      config_cost += demand * strategy.ActiveReplicaCount(pe, c);
    }
    cost += probability * config_cost;
  }
  return cost;
}

std::vector<double> HostLoads(const model::ApplicationGraph& graph,
                              const model::ExpectedRates& rates,
                              const model::ReplicaPlacement& placement,
                              const strategy::ActivationStrategy& strategy,
                              const model::Cluster& cluster, model::ConfigId config) {
  std::vector<double> loads(cluster.num_hosts(), 0.0);
  for (model::ComponentId pe : graph.Pes()) {
    if (!placement.IsAssigned(pe)) continue;
    const double demand = rates.CpuDemand(graph, pe, config);
    for (int r = 0; r < placement.replication_factor(); ++r) {
      if (!strategy.IsActive(pe, r, config)) continue;
      const model::HostId host = placement.HostOf(pe, r);
      if (host != model::kInvalidHost) loads[static_cast<size_t>(host)] += demand;
    }
  }
  return loads;
}

bool IsOverloaded(const model::ApplicationGraph& graph, const model::ExpectedRates& rates,
                  const model::ReplicaPlacement& placement,
                  const strategy::ActivationStrategy& strategy,
                  const model::Cluster& cluster, model::ConfigId config) {
  const std::vector<double> loads =
      HostLoads(graph, rates, placement, strategy, cluster, config);
  for (size_t h = 0; h < loads.size(); ++h) {
    if (loads[h] >= cluster.host(static_cast<model::HostId>(h)).capacity_cycles_per_sec) {
      return true;
    }
  }
  return false;
}

Status CheckStrategyConstraints(const model::ApplicationGraph& graph,
                                const model::InputSpace& space,
                                const model::ExpectedRates& rates,
                                const model::ReplicaPlacement& placement,
                                const strategy::ActivationStrategy& strategy,
                                const model::Cluster& cluster, double ic_requirement) {
  // Eq. 12 first: coverage is a precondition of the IC semantics.
  LAAR_RETURN_IF_ERROR(strategy.CheckCoverage(graph));

  // Eq. 11: no host overloaded in any configuration.
  const model::ConfigId num_configs = space.num_configs();
  for (model::ConfigId c = 0; c < num_configs; ++c) {
    const std::vector<double> loads =
        HostLoads(graph, rates, placement, strategy, cluster, c);
    for (size_t h = 0; h < loads.size(); ++h) {
      const double capacity =
          cluster.host(static_cast<model::HostId>(h)).capacity_cycles_per_sec;
      if (loads[h] >= capacity) {
        return Status::FailedPrecondition(
            StrFormat("host %zu overloaded in configuration %d: load %.3g >= capacity %.3g "
                      "(violates Eq. 11)",
                      h, c, loads[h], capacity));
      }
    }
  }

  // Eq. 10: promised IC under the pessimistic model.
  const IcCalculator calculator(graph, space, rates);
  const PessimisticFailureModel pessimistic;
  const double ic = calculator.InternalCompleteness(strategy, pessimistic);
  if (ic + 1e-12 < ic_requirement) {
    return Status::FailedPrecondition(
        StrFormat("IC %.6f below the SLA requirement %.6f (violates Eq. 10)", ic,
                  ic_requirement));
  }
  return Status::OK();
}

}  // namespace laar::metrics
