#include "laar/metrics/ic.h"

namespace laar::metrics {

IcCalculator::IcCalculator(const model::ApplicationGraph& graph,
                           const model::InputSpace& space,
                           const model::ExpectedRates& rates)
    : graph_(graph), space_(space), rates_(rates) {
  const model::ConfigId num_configs = space.num_configs();
  bic_config_.assign(static_cast<size_t>(num_configs), 0.0);
  for (model::ConfigId c = 0; c < num_configs; ++c) {
    double config_total = 0.0;
    for (model::ComponentId pe : graph.Pes()) {
      config_total += rates.ArrivalRate(graph, pe, c);
    }
    bic_config_[static_cast<size_t>(c)] = config_total;
    bic_per_second_ += space.Probability(c) * config_total;
  }
}

std::vector<double> IcCalculator::ExpectedOutputs(
    const strategy::ActivationStrategy& strategy, const FailureModel& model,
    model::ConfigId config) const {
  std::vector<double> delta_hat(graph_.num_components(), 0.0);
  for (model::ComponentId id : graph_.TopologicalOrder()) {
    if (graph_.IsSource(id)) {
      // Sources are external and never fail (Eq. 7 first case).
      delta_hat[id] = rates_.Rate(id, config);
      continue;
    }
    double inflow = 0.0;
    for (size_t edge_index : graph_.IncomingEdges(id)) {
      const model::Edge& e = graph_.edges()[edge_index];
      inflow += (graph_.IsPe(id) ? e.selectivity : 1.0) * delta_hat[e.from];
    }
    if (graph_.IsPe(id)) {
      delta_hat[id] = model.Phi(graph_, strategy, id, config) * inflow;
    } else {
      delta_hat[id] = inflow;  // sinks accumulate whatever arrives
    }
  }
  return delta_hat;
}

double IcCalculator::FailureCase(const strategy::ActivationStrategy& strategy,
                                 const FailureModel& model) const {
  double fic = 0.0;
  const model::ConfigId num_configs = space_.num_configs();
  for (model::ConfigId c = 0; c < num_configs; ++c) {
    const double probability = space_.Probability(c);
    if (probability <= 0.0) continue;
    const std::vector<double> delta_hat = ExpectedOutputs(strategy, model, c);
    double config_total = 0.0;
    for (model::ComponentId pe : graph_.Pes()) {
      const double phi = model.Phi(graph_, strategy, pe, c);
      if (phi <= 0.0) continue;
      double inflow = 0.0;
      for (size_t edge_index : graph_.IncomingEdges(pe)) {
        inflow += delta_hat[graph_.edges()[edge_index].from];
      }
      config_total += phi * inflow;
    }
    fic += probability * config_total;
  }
  return fic;
}

double IcCalculator::InternalCompleteness(const strategy::ActivationStrategy& strategy,
                                          const FailureModel& model) const {
  if (bic_per_second_ <= 0.0) return 1.0;
  return FailureCase(strategy, model) / bic_per_second_;
}

}  // namespace laar::metrics
