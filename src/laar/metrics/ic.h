#ifndef LAAR_METRICS_IC_H_
#define LAAR_METRICS_IC_H_

#include <vector>

#include "laar/common/result.h"
#include "laar/metrics/failure_model.h"
#include "laar/model/graph.h"
#include "laar/model/input_space.h"
#include "laar/model/rates.h"
#include "laar/strategy/activation_strategy.h"

namespace laar::metrics {

/// Computes the internal-completeness metric of §4.3.
///
/// All quantities are linear in the billing period T (Eq. 5-6), so the
/// calculator reports them per unit time; IC, being a ratio (Eq. 8), is
/// independent of T.
class IcCalculator {
 public:
  /// The graph must be validated; `rates` must be the matrix computed from
  /// the same graph/space.
  IcCalculator(const model::ApplicationGraph& graph, const model::InputSpace& space,
               const model::ExpectedRates& rates);

  /// BIC / T (Eq. 5): expected tuples processed per second by all PEs in
  /// the no-failure case.
  double BestCase() const { return bic_per_second_; }

  /// BIC contribution of a single configuration, per second, *excluding*
  /// the P_C(c) weight: Σ_{x_i∈P, x_j∈pred(x_i)} Δ(x_j, c).
  double BestCaseOfConfig(model::ConfigId config) const {
    return bic_config_[static_cast<size_t>(config)];
  }

  /// FIC(s) / T (Eq. 6) under the given failure model.
  double FailureCase(const strategy::ActivationStrategy& strategy,
                     const FailureModel& model) const;

  /// IC(s) = FIC(s) / BIC (Eq. 8). Returns 1 when BIC is zero (degenerate
  /// application with no traffic).
  double InternalCompleteness(const strategy::ActivationStrategy& strategy,
                              const FailureModel& model) const;

  /// The expected per-second outputs Δ̂(x, c, s) of every component under
  /// the failure model (Eq. 7); exposed for tests and for FT-Search bounds.
  std::vector<double> ExpectedOutputs(const strategy::ActivationStrategy& strategy,
                                      const FailureModel& model,
                                      model::ConfigId config) const;

  const model::ApplicationGraph& graph() const { return graph_; }
  const model::InputSpace& space() const { return space_; }
  const model::ExpectedRates& rates() const { return rates_; }

 private:
  const model::ApplicationGraph& graph_;
  const model::InputSpace& space_;
  const model::ExpectedRates& rates_;
  double bic_per_second_ = 0.0;
  std::vector<double> bic_config_;
};

}  // namespace laar::metrics

#endif  // LAAR_METRICS_IC_H_
