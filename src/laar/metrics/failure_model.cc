#include "laar/metrics/failure_model.h"

#include <cmath>

namespace laar::metrics {

double PessimisticFailureModel::Phi(const model::ApplicationGraph& graph,
                                    const strategy::ActivationStrategy& strategy,
                                    model::ComponentId pe, model::ConfigId config) const {
  (void)graph;
  return strategy.AllReplicasActive(pe, config) ? 1.0 : 0.0;
}

double NoFailureModel::Phi(const model::ApplicationGraph& graph,
                           const strategy::ActivationStrategy& strategy,
                           model::ComponentId pe, model::ConfigId config) const {
  (void)graph;
  return strategy.ActiveReplicaCount(pe, config) >= 1 ? 1.0 : 0.0;
}

double IndependentFailureModel::Phi(const model::ApplicationGraph& graph,
                                    const strategy::ActivationStrategy& strategy,
                                    model::ComponentId pe, model::ConfigId config) const {
  (void)graph;
  const int active = strategy.ActiveReplicaCount(pe, config);
  if (active <= 0) return 0.0;
  return 1.0 - std::pow(failure_probability_, active);
}

}  // namespace laar::metrics
