#include "laar/metrics/failure_model.h"

#include <cmath>

namespace laar::metrics {

double PessimisticFailureModel::Phi(const model::ApplicationGraph& graph,
                                    const strategy::ActivationStrategy& strategy,
                                    model::ComponentId pe, model::ConfigId config) const {
  (void)graph;
  return strategy.AllReplicasActive(pe, config) ? 1.0 : 0.0;
}

double NoFailureModel::Phi(const model::ApplicationGraph& graph,
                           const strategy::ActivationStrategy& strategy,
                           model::ComponentId pe, model::ConfigId config) const {
  (void)graph;
  return strategy.ActiveReplicaCount(pe, config) >= 1 ? 1.0 : 0.0;
}

double IndependentFailureModel::Phi(const model::ApplicationGraph& graph,
                                    const strategy::ActivationStrategy& strategy,
                                    model::ComponentId pe, model::ConfigId config) const {
  (void)graph;
  const int active = strategy.ActiveReplicaCount(pe, config);
  if (active <= 0) return 0.0;
  return 1.0 - std::pow(failure_probability_, active);
}

double CorrelatedFailureModel::Phi(const model::ApplicationGraph& graph,
                                   const strategy::ActivationStrategy& strategy,
                                   model::ComponentId pe, model::ConfigId config) const {
  (void)graph;
  // m = number of distinct failure domains holding an active replica.
  // k is small (2-3), so a linear scan beats a set.
  model::DomainId seen[16];
  int distinct = 0;
  const int k = strategy.replication_factor();
  for (int r = 0; r < k; ++r) {
    if (!strategy.IsActive(pe, r, config)) continue;
    const model::HostId host = placement_.HostOf(pe, r);
    if (host == model::kInvalidHost) continue;
    const model::DomainId domain = topology_.DomainOf(host, level_);
    bool fresh = true;
    for (int i = 0; i < distinct; ++i) {
      if (seen[i] == domain) {
        fresh = false;
        break;
      }
    }
    if (fresh && distinct < 16) seen[distinct++] = domain;
  }
  if (distinct <= 0) return 0.0;
  return 1.0 - std::pow(domain_failure_probability_, distinct);
}

}  // namespace laar::metrics
