#ifndef LAAR_METRICS_FAILURE_MODEL_H_
#define LAAR_METRICS_FAILURE_MODEL_H_

#include <memory>

#include "laar/model/failure_topology.h"
#include "laar/model/graph.h"
#include "laar/model/input_space.h"
#include "laar/model/placement.h"
#include "laar/strategy/activation_strategy.h"

namespace laar::metrics {

/// φ(x_i, c, s): the probability that at least one replica of PE x_i is
/// alive *and active* when the input configuration is `c` under strategy
/// `s` (§4.3). Concrete models plug into the IC computation (Eq. 6-7).
class FailureModel {
 public:
  virtual ~FailureModel() = default;

  virtual double Phi(const model::ApplicationGraph& graph,
                     const strategy::ActivationStrategy& strategy, model::ComponentId pe,
                     model::ConfigId config) const = 0;

  virtual const char* name() const = 0;
};

/// The paper's pessimistic model (Eq. 14): in any failure scenario all
/// replicas fail except one, the survivor is adversarially chosen among the
/// inactive ones, and failed replicas never recover. Hence φ = 1 iff *all*
/// k replicas are active in `c`, else 0. The IC computed under this model is
/// a lower bound on the IC observed on a real deployment (§4.4).
class PessimisticFailureModel final : public FailureModel {
 public:
  double Phi(const model::ApplicationGraph& graph,
             const strategy::ActivationStrategy& strategy, model::ComponentId pe,
             model::ConfigId config) const override;
  const char* name() const override { return "pessimistic"; }
};

/// No failures ever occur: φ ≡ 1 whenever the PE has at least one active
/// replica. Under Eq. 12-satisfying strategies this yields IC = 1 and is the
/// best-case reference.
class NoFailureModel final : public FailureModel {
 public:
  double Phi(const model::ApplicationGraph& graph,
             const strategy::ActivationStrategy& strategy, model::ComponentId pe,
             model::ConfigId config) const override;
  const char* name() const override { return "no-failure"; }
};

/// Alternative model from the paper's future-work list (§6.i): every
/// replica fails independently with probability `failure_probability` over
/// the billing period, and a deactivated replica cannot serve. Hence
/// φ = 1 - f^{a(x,c,s)} where a is the number of active replicas. Gives a
/// tighter (larger) bound than the pessimistic model for f < 1.
class IndependentFailureModel final : public FailureModel {
 public:
  explicit IndependentFailureModel(double failure_probability)
      : failure_probability_(failure_probability) {}

  double Phi(const model::ApplicationGraph& graph,
             const strategy::ActivationStrategy& strategy, model::ComponentId pe,
             model::ConfigId config) const override;
  const char* name() const override { return "independent"; }

  double failure_probability() const { return failure_probability_; }

 private:
  double failure_probability_;
};

/// Correlated-failure refinement of the independent model: failures strike
/// whole failure domains (racks or zones, arXiv 1508.04907), so active
/// replicas co-located in one domain die together and only the number of
/// *distinct* domains m hosting an active replica buys redundancy:
/// φ = 1 - f^m with f = `domain_failure_probability`. When every host is
/// its own domain (trivial topology, or level = kHost) this coincides with
/// `IndependentFailureModel`; with replicas piled into one rack it
/// degrades to φ = 1 - f regardless of k, which is exactly what
/// domain-oblivious placement squanders.
class CorrelatedFailureModel final : public FailureModel {
 public:
  CorrelatedFailureModel(const model::ReplicaPlacement& placement,
                         const model::FailureTopology& topology,
                         model::DomainLevel level, double domain_failure_probability)
      : placement_(placement),
        topology_(topology),
        level_(level),
        domain_failure_probability_(domain_failure_probability) {}

  double Phi(const model::ApplicationGraph& graph,
             const strategy::ActivationStrategy& strategy, model::ComponentId pe,
             model::ConfigId config) const override;
  const char* name() const override { return "correlated"; }

  model::DomainLevel level() const { return level_; }
  double domain_failure_probability() const { return domain_failure_probability_; }

 private:
  const model::ReplicaPlacement& placement_;
  const model::FailureTopology& topology_;
  model::DomainLevel level_;
  double domain_failure_probability_;
};

}  // namespace laar::metrics

#endif  // LAAR_METRICS_FAILURE_MODEL_H_
