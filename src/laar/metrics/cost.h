#ifndef LAAR_METRICS_COST_H_
#define LAAR_METRICS_COST_H_

#include <vector>

#include "laar/common/status.h"
#include "laar/model/cluster.h"
#include "laar/model/graph.h"
#include "laar/model/input_space.h"
#include "laar/model/placement.h"
#include "laar/model/rates.h"
#include "laar/strategy/activation_strategy.h"

namespace laar::metrics {

/// cost(s) per unit billing time (Eq. 13): the expected CPU seconds per
/// second consumed by all active PE replicas, i.e.
/// Σ_{c} P_C(c) Σ_{x̃_{i,h} active in c} Σ_{x_j∈pred(x_i)} γ(x_j,x_i)·Δ(x_j,c),
/// expressed in cycles/second. Multiply by T and divide by host frequency
/// for CPU-seconds over a billing period.
double CostPerSecond(const model::ApplicationGraph& graph, const model::InputSpace& space,
                     const model::ExpectedRates& rates,
                     const model::ReplicaPlacement& placement,
                     const strategy::ActivationStrategy& strategy);

/// The per-host CPU demand (cycles/second) under `strategy` in `config`
/// (Eq. 11 LHS): Σ_{x̃_{i,h}∈ϑ⁻¹(h)} γ·Δ·s.
std::vector<double> HostLoads(const model::ApplicationGraph& graph,
                              const model::ExpectedRates& rates,
                              const model::ReplicaPlacement& placement,
                              const strategy::ActivationStrategy& strategy,
                              const model::Cluster& cluster, model::ConfigId config);

/// True when some host load reaches or exceeds its capacity in `config`
/// (the paper requires strict inequality in Eq. 11).
bool IsOverloaded(const model::ApplicationGraph& graph, const model::ExpectedRates& rates,
                  const model::ReplicaPlacement& placement,
                  const strategy::ActivationStrategy& strategy,
                  const model::Cluster& cluster, model::ConfigId config);

/// Verifies the full constraint system of the §4.4 optimization problem:
///   Eq. 10 — IC(s) >= ic_requirement under the pessimistic model,
///   Eq. 11 — no host overloaded in any configuration,
///   Eq. 12 — at least one active replica of every PE in every config.
Status CheckStrategyConstraints(const model::ApplicationGraph& graph,
                                const model::InputSpace& space,
                                const model::ExpectedRates& rates,
                                const model::ReplicaPlacement& placement,
                                const strategy::ActivationStrategy& strategy,
                                const model::Cluster& cluster, double ic_requirement);

}  // namespace laar::metrics

#endif  // LAAR_METRICS_COST_H_
