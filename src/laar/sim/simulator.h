#ifndef LAAR_SIM_SIMULATOR_H_
#define LAAR_SIM_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace laar::obs {
class TraceRecorder;
}

namespace laar::sim {

/// Simulated time in seconds.
using SimTime = double;

/// Identifier of a scheduled event, usable with `Cancel` and `Reschedule`.
/// Encodes (slot generation << 32 | slot index); a fired or cancelled id
/// goes permanently stale, so acting on it is a cheap no-op.
using EventId = uint64_t;

constexpr EventId kInvalidEvent = 0;

/// A move-only `void()` callback with small-buffer optimization.
///
/// Trivially-copyable callables up to `kInlineBytes` (every capture list in
/// the simulation: a handful of pointers, doubles, and integers) live
/// inline — constructing, moving, and destroying them never touches the
/// heap. Anything larger or non-trivial is boxed on the heap transparently;
/// `Simulator` counts those so tests can assert the hot path stays inline.
class EventCallback {
 public:
  static constexpr size_t kInlineBytes = 40;

  EventCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<std::remove_reference_t<F>>,
                                EventCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT: implicit so call sites pass raw lambdas
    using Fn = std::decay_t<F>;
    if constexpr (std::is_trivially_copyable_v<Fn> && sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](EventCallback* self) {
        (*std::launder(reinterpret_cast<Fn*>(self->storage_)))();
      };
      destroy_ = nullptr;  // trivial: dropping the bytes is enough
    } else {
      Fn* boxed = new Fn(std::forward<F>(f));
      std::memcpy(storage_, &boxed, sizeof(boxed));
      invoke_ = [](EventCallback* self) { (*self->Boxed<Fn>())(); };
      destroy_ = [](EventCallback* self) { delete self->Boxed<Fn>(); };
    }
  }

  EventCallback(EventCallback&& other) noexcept
      : invoke_(other.invoke_), destroy_(other.destroy_) {
    std::memcpy(storage_, other.storage_, sizeof(storage_));
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      invoke_ = other.invoke_;
      destroy_ = other.destroy_;
      std::memcpy(storage_, other.storage_, sizeof(storage_));
      other.invoke_ = nullptr;
      other.destroy_ = nullptr;
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { Reset(); }

  void operator()() { invoke_(this); }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// True when the payload did not fit inline and was heap-boxed.
  bool boxed() const { return destroy_ != nullptr; }

  void Reset() {
    if (destroy_ != nullptr) destroy_(this);
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  template <typename Fn>
  Fn* Boxed() {
    Fn* boxed;
    std::memcpy(&boxed, storage_, sizeof(boxed));
    return boxed;
  }

  void (*invoke_)(EventCallback*) = nullptr;
  void (*destroy_)(EventCallback*) = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

/// A deterministic discrete-event simulation engine.
///
/// Events at equal timestamps fire in scheduling order (a monotone sequence
/// number breaks ties; `Reschedule` re-draws the sequence, so it ties like
/// a fresh schedule), which makes entire runs reproducible.
///
/// The hot path is allocation-free in steady state: payloads live inline in
/// pooled slots recycled through a free list, and the pending set is an
/// indexed 4-ary min-heap whose `Cancel`/`Reschedule` work in place in
/// O(log n) — no tombstones, so `pending_events()` is exact and cancelling
/// an already-fired event cannot leak state.
class Simulator {
 public:
  struct EngineStats {
    uint64_t slots_created = 0;    ///< pool expansions (new slots allocated)
    uint64_t pool_reuses = 0;      ///< slots served from the free list
    uint64_t boxed_callbacks = 0;  ///< payloads too large/non-trivial for SBO
  };

  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `callback` at absolute time `when`; times before `now()` are
  /// clamped to `now()` (the event fires next).
  EventId ScheduleAt(SimTime when, EventCallback callback);

  /// Schedules `callback` `delay` seconds from now (negative clamps to 0).
  EventId ScheduleAfter(SimTime delay, EventCallback callback);

  /// Removes a pending event from the heap in place; returns false (and
  /// does nothing) if it already fired, was cancelled, or never existed.
  bool Cancel(EventId id);

  /// Moves a pending event to absolute time `when` (clamped to `now()`)
  /// without touching its payload. Ties at the new time fire after events
  /// already scheduled there, exactly as a cancel + re-schedule would, but
  /// with no churn. Returns false if the event is not pending.
  bool Reschedule(EventId id, SimTime when);

  /// Earliest pending timestamp, if any. Lets batching callers drain work
  /// inline while they remain ahead of the rest of the simulation.
  bool NextEventTime(SimTime* when) const {
    if (heap_.empty()) return false;
    *when = heap_.front().when;
    return true;
  }

  /// Accounts one logical event executed inline by the current callback
  /// (batched delivery): advances `now()` to `when` and keeps
  /// `events_processed()` — and the backlog-trace cadence — identical to
  /// scheduling it as a separate event. `when` must not precede `now()`
  /// nor overtake the earliest pending event.
  void AdvanceInline(SimTime when);

  /// Runs events until the queue is empty.
  void Run();

  /// Runs events with timestamp <= `end_time`, then sets `now()` to
  /// `end_time` (even if the queue still has later events).
  void RunUntil(SimTime end_time);

  /// Runs events with timestamp strictly < `end_time`, then sets `now()` to
  /// `end_time`. The half-open variant the sharded engine's conservative
  /// windows use: events at exactly a stop point belong to the next phase
  /// (after barrier deliveries and control actions at that time).
  void RunBefore(SimTime end_time);

  /// Executes exactly one event if available; returns false on empty queue.
  bool Step();

  uint64_t events_processed() const { return events_processed_; }

  /// Attaches a trace recorder: every `sample_interval` processed events the
  /// engine emits a `pending_events` counter sample (the event backlog over
  /// time). Null detaches; the default costs one pointer check per event.
  void set_trace_recorder(obs::TraceRecorder* recorder, uint64_t sample_interval = 1024);

  /// Pending (not yet fired, not cancelled) events — exact, O(1).
  size_t pending_events() const { return heap_.size(); }

  /// Allocation accounting for the zero-alloc steady-state guarantee: once
  /// `slots_created` stops growing and `boxed_callbacks` stays 0, scheduling
  /// recycles pooled slots without touching the heap.
  const EngineStats& stats() const { return stats_; }

  /// Current size of the slot pool (allocated once, then recycled).
  size_t pool_slots() const { return slots_.size(); }

 private:
  static constexpr uint32_t kNullPos = 0xffffffffu;

  /// Heap keys are stored in the heap array itself, so sift comparisons
  /// never chase the slot pool.
  struct HeapEntry {
    SimTime when;
    uint64_t sequence;
    uint32_t slot;
  };

  /// One pooled event. `when`/`sequence` live in the heap entry; the slot
  /// holds identity (generation) and payload.
  struct Slot {
    uint32_t generation = 1;
    uint32_t heap_pos = kNullPos;
    uint32_t next_free = kNullPos;
    EventCallback callback;
  };

  static bool Later(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.sequence > b.sequence;
  }

  EventId IdOf(uint32_t slot_index) const {
    return (static_cast<EventId>(slots_[slot_index].generation) << 32) | slot_index;
  }

  /// Resolves an id to its live slot index, or kNullPos if stale.
  uint32_t FindSlot(EventId id) const;

  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot_index);

  void HeapPush(uint32_t slot_index, SimTime when, uint64_t sequence);
  void HeapRemoveAt(size_t pos);
  size_t SiftUp(size_t pos);
  size_t SiftDown(size_t pos);
  void MaybeSampleBacklog();

  obs::TraceRecorder* trace_recorder_ = nullptr;
  uint64_t trace_sample_interval_ = 1024;

  SimTime now_ = 0.0;
  uint64_t next_sequence_ = 1;
  uint64_t events_processed_ = 0;
  EngineStats stats_;

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNullPos;
};

}  // namespace laar::sim

#endif  // LAAR_SIM_SIMULATOR_H_
