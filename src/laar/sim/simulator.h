#ifndef LAAR_SIM_SIMULATOR_H_
#define LAAR_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace laar::obs {
class TraceRecorder;
}

namespace laar::sim {

/// Simulated time in seconds.
using SimTime = double;

/// Identifier of a scheduled event, usable with `Cancel`.
using EventId = uint64_t;

constexpr EventId kInvalidEvent = 0;

/// A deterministic discrete-event simulation engine.
///
/// Events at equal timestamps fire in scheduling order (a monotone sequence
/// number breaks ties), which makes entire runs reproducible. Cancellation
/// is lazy: cancelled events stay in the heap and are skipped when popped.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `callback` at absolute time `when`; times before `now()` are
  /// clamped to `now()` (the event fires next).
  EventId ScheduleAt(SimTime when, std::function<void()> callback);

  /// Schedules `callback` `delay` seconds from now (negative clamps to 0).
  EventId ScheduleAfter(SimTime delay, std::function<void()> callback);

  /// Cancels a pending event; no-op if it already fired or never existed.
  void Cancel(EventId id);

  /// Runs events until the queue is empty.
  void Run();

  /// Runs events with timestamp <= `end_time`, then sets `now()` to
  /// `end_time` (even if the queue still has later events).
  void RunUntil(SimTime end_time);

  /// Executes exactly one event if available; returns false on empty queue.
  bool Step();

  uint64_t events_processed() const { return events_processed_; }

  /// Attaches a trace recorder: every `sample_interval` processed events the
  /// engine emits a `pending_events` counter sample (the event backlog over
  /// time). Null detaches; the default costs one pointer check per event.
  void set_trace_recorder(obs::TraceRecorder* recorder, uint64_t sample_interval = 1024);

  /// Pending (not yet fired, not cancelled) events. Cancelling an event
  /// that already fired leaves a tombstone that inflates neither count.
  size_t pending_events() const {
    return queue_.size() >= cancelled_.size() ? queue_.size() - cancelled_.size() : 0;
  }

 private:
  struct Event {
    SimTime when;
    uint64_t sequence;
    EventId id;
    std::function<void()> callback;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  obs::TraceRecorder* trace_recorder_ = nullptr;
  uint64_t trace_sample_interval_ = 1024;

  SimTime now_ = 0.0;
  uint64_t next_sequence_ = 1;
  EventId next_id_ = 1;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace laar::sim

#endif  // LAAR_SIM_SIMULATOR_H_
