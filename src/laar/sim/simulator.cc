#include "laar/sim/simulator.h"

#include <algorithm>
#include <cassert>

#include "laar/obs/trace_recorder.h"

namespace laar::sim {

void Simulator::set_trace_recorder(obs::TraceRecorder* recorder,
                                   uint64_t sample_interval) {
  trace_recorder_ = recorder;
  trace_sample_interval_ = std::max<uint64_t>(1, sample_interval);
}

uint32_t Simulator::FindSlot(EventId id) const {
  const auto slot_index = static_cast<uint32_t>(id);
  const auto generation = static_cast<uint32_t>(id >> 32);
  if (slot_index >= slots_.size()) return kNullPos;
  const Slot& slot = slots_[slot_index];
  if (slot.generation != generation || slot.heap_pos == kNullPos) return kNullPos;
  return slot_index;
}

uint32_t Simulator::AllocSlot() {
  if (free_head_ != kNullPos) {
    ++stats_.pool_reuses;
    const uint32_t slot_index = free_head_;
    free_head_ = slots_[slot_index].next_free;
    slots_[slot_index].next_free = kNullPos;
    return slot_index;
  }
  ++stats_.slots_created;
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulator::FreeSlot(uint32_t slot_index) {
  Slot& slot = slots_[slot_index];
  // Bumping the generation here permanently invalidates every outstanding
  // id for this slot — a later Cancel/Reschedule of a fired event is a
  // no-op with no tombstone left behind.
  ++slot.generation;
  slot.callback.Reset();
  slot.heap_pos = kNullPos;
  slot.next_free = free_head_;
  free_head_ = slot_index;
}

void Simulator::HeapPush(uint32_t slot_index, SimTime when, uint64_t sequence) {
  slots_[slot_index].heap_pos = static_cast<uint32_t>(heap_.size());
  heap_.push_back(HeapEntry{when, sequence, slot_index});
  SiftUp(heap_.size() - 1);
}

size_t Simulator::SiftUp(size_t pos) {
  const HeapEntry entry = heap_[pos];
  while (pos > 0) {
    const size_t parent = (pos - 1) / 4;
    if (!Later(heap_[parent], entry)) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos].slot].heap_pos = static_cast<uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = entry;
  slots_[entry.slot].heap_pos = static_cast<uint32_t>(pos);
  return pos;
}

size_t Simulator::SiftDown(size_t pos) {
  const HeapEntry entry = heap_[pos];
  const size_t size = heap_.size();
  for (;;) {
    const size_t first_child = 4 * pos + 1;
    if (first_child >= size) break;
    const size_t last_child = std::min(first_child + 4, size);
    size_t best = first_child;
    for (size_t child = first_child + 1; child < last_child; ++child) {
      if (Later(heap_[best], heap_[child])) best = child;
    }
    if (!Later(entry, heap_[best])) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos].slot].heap_pos = static_cast<uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = entry;
  slots_[entry.slot].heap_pos = static_cast<uint32_t>(pos);
  return pos;
}

void Simulator::HeapRemoveAt(size_t pos) {
  slots_[heap_[pos].slot].heap_pos = kNullPos;
  const size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    slots_[heap_[pos].slot].heap_pos = static_cast<uint32_t>(pos);
    heap_.pop_back();
    // The displaced element may need to move either way relative to its
    // new subtree.
    SiftDown(SiftUp(pos));
  } else {
    heap_.pop_back();
  }
}

EventId Simulator::ScheduleAt(SimTime when, EventCallback callback) {
  if (when < now_) when = now_;
  if (callback.boxed()) ++stats_.boxed_callbacks;
  const uint32_t slot_index = AllocSlot();
  slots_[slot_index].callback = std::move(callback);
  HeapPush(slot_index, when, next_sequence_++);
  return IdOf(slot_index);
}

EventId Simulator::ScheduleAfter(SimTime delay, EventCallback callback) {
  return ScheduleAt(now_ + (delay > 0.0 ? delay : 0.0), std::move(callback));
}

bool Simulator::Cancel(EventId id) {
  const uint32_t slot_index = FindSlot(id);
  if (slot_index == kNullPos) return false;
  HeapRemoveAt(slots_[slot_index].heap_pos);
  FreeSlot(slot_index);
  return true;
}

bool Simulator::Reschedule(EventId id, SimTime when) {
  const uint32_t slot_index = FindSlot(id);
  if (slot_index == kNullPos) return false;
  if (when < now_) when = now_;
  const size_t pos = slots_[slot_index].heap_pos;
  heap_[pos].when = when;
  heap_[pos].sequence = next_sequence_++;
  SiftDown(SiftUp(pos));
  return true;
}

void Simulator::MaybeSampleBacklog() {
  if (trace_recorder_ != nullptr && events_processed_ % trace_sample_interval_ == 0) {
    trace_recorder_->Counter(obs::EventName::kEngineBacklog, now_,
                             static_cast<double>(pending_events()));
  }
}

void Simulator::AdvanceInline(SimTime when) {
  assert(when >= now_);
  now_ = when;
  ++events_processed_;
  MaybeSampleBacklog();
}

bool Simulator::Step() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_.front();
  HeapRemoveAt(0);
  // Move the payload out and recycle the slot before invoking, so the
  // callback can schedule (and typically reuse this very slot) freely.
  EventCallback callback = std::move(slots_[top.slot].callback);
  FreeSlot(top.slot);
  now_ = top.when;
  ++events_processed_;
  MaybeSampleBacklog();
  callback();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime end_time) {
  while (!heap_.empty() && heap_.front().when <= end_time) {
    Step();
  }
  if (now_ < end_time) now_ = end_time;
}

void Simulator::RunBefore(SimTime end_time) {
  while (!heap_.empty() && heap_.front().when < end_time) {
    Step();
  }
  if (now_ < end_time) now_ = end_time;
}

}  // namespace laar::sim
