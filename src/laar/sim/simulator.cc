#include "laar/sim/simulator.h"

#include <algorithm>
#include <utility>

#include "laar/obs/trace_recorder.h"

namespace laar::sim {

void Simulator::set_trace_recorder(obs::TraceRecorder* recorder,
                                   uint64_t sample_interval) {
  trace_recorder_ = recorder;
  trace_sample_interval_ = std::max<uint64_t>(1, sample_interval);
}

EventId Simulator::ScheduleAt(SimTime when, std::function<void()> callback) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Event{when, next_sequence_++, id, std::move(callback)});
  return id;
}

EventId Simulator::ScheduleAfter(SimTime delay, std::function<void()> callback) {
  return ScheduleAt(now_ + (delay > 0.0 ? delay : 0.0), std::move(callback));
}

void Simulator::Cancel(EventId id) {
  if (id != kInvalidEvent) cancelled_.insert(id);
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    // Moving out of a priority_queue requires const_cast; the element is
    // popped immediately afterwards, so the broken ordering is never seen.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    auto cancelled_it = cancelled_.find(event.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    now_ = event.when;
    ++events_processed_;
    if (trace_recorder_ != nullptr && events_processed_ % trace_sample_interval_ == 0) {
      trace_recorder_->Counter(obs::EventName::kEngineBacklog, now_,
                               static_cast<double>(pending_events()));
    }
    event.callback();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime end_time) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.count(top.id) != 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.when > end_time) break;
    Step();
  }
  if (now_ < end_time) now_ = end_time;
}

}  // namespace laar::sim
