#include "laar/spl/spl_parser.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "laar/common/strings.h"

namespace laar::spl {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokenKind {
  kIdentifier,
  kNumber,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSemicolon,
  kComma,
  kEquals,
  kAt,
  kArrow,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0.0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
        continue;
      }
      if (c == '#') {  // line comment
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ++pos_;
        }
        tokens.push_back(Token{TokenKind::kIdentifier,
                               std::string(text_.substr(start, pos_ - start)), 0.0,
                               line_});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && pos_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
                 (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
          ++pos_;
        }
        const std::string literal(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double value = std::strtod(literal.c_str(), &end);
        if (end == nullptr || *end != '\0') {
          return Error(StrFormat("invalid number '%s'", literal.c_str()));
        }
        Token token{TokenKind::kNumber, literal, value, line_};
        // Unit suffix (identifier glued to the number): "100ms", "5cycles".
        if (pos_ < text_.size() &&
            std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
          const size_t unit_start = pos_;
          while (pos_ < text_.size() &&
                 std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
          }
          token.text += std::string(text_.substr(unit_start, pos_ - unit_start));
        }
        tokens.push_back(std::move(token));
        continue;
      }
      switch (c) {
        case '{':
          tokens.push_back(Token{TokenKind::kLBrace, "{", 0.0, line_});
          break;
        case '}':
          tokens.push_back(Token{TokenKind::kRBrace, "}", 0.0, line_});
          break;
        case '[':
          tokens.push_back(Token{TokenKind::kLBracket, "[", 0.0, line_});
          break;
        case ']':
          tokens.push_back(Token{TokenKind::kRBracket, "]", 0.0, line_});
          break;
        case ';':
          tokens.push_back(Token{TokenKind::kSemicolon, ";", 0.0, line_});
          break;
        case ',':
          tokens.push_back(Token{TokenKind::kComma, ",", 0.0, line_});
          break;
        case '=':
          tokens.push_back(Token{TokenKind::kEquals, "=", 0.0, line_});
          break;
        case '@':
          tokens.push_back(Token{TokenKind::kAt, "@", 0.0, line_});
          break;
        case '-':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
            tokens.push_back(Token{TokenKind::kArrow, "->", 0.0, line_});
            ++pos_;
            break;
          }
          return Error("unexpected '-'");
        default:
          return Error(StrFormat("unexpected character '%c'", c));
      }
      ++pos_;
    }
    tokens.push_back(Token{TokenKind::kEnd, "", 0.0, line_});
    return tokens;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(StrFormat("SPL lex error at line %d: %s", line_,
                                             what.c_str()));
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

// ---------------------------------------------------------------------------
// Parser / elaborator
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<model::ApplicationDescriptor> Parse() {
    LAAR_RETURN_IF_ERROR(ExpectKeyword("application"));
    LAAR_ASSIGN_OR_RETURN(app_.name, ExpectIdentifier("application name"));
    LAAR_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "'{'"));
    while (!AtKind(TokenKind::kRBrace)) {
      LAAR_ASSIGN_OR_RETURN(std::string keyword, ExpectIdentifier("declaration keyword"));
      if (keyword == "source") {
        LAAR_RETURN_IF_ERROR(ParseSource());
      } else if (keyword == "pe") {
        LAAR_RETURN_IF_ERROR(ParsePe());
      } else if (keyword == "sink") {
        LAAR_RETURN_IF_ERROR(ParseSink());
      } else if (keyword == "stream") {
        LAAR_RETURN_IF_ERROR(ParseStream());
      } else {
        return Error(StrFormat("unknown declaration '%s'", keyword.c_str()));
      }
    }
    LAAR_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "'}'"));
    LAAR_RETURN_IF_ERROR(Expect(TokenKind::kEnd, "end of input"));

    // Elaborate: register the collected rate sets, then validate.
    for (auto& [id, rate_set] : pending_rates_) {
      LAAR_RETURN_IF_ERROR(
          app_.input_space.AddSource(rate_set).WithContext("source '" + id + "'"));
    }
    LAAR_RETURN_IF_ERROR(app_.Validate());
    return std::move(app_);
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  bool AtKind(TokenKind kind) const { return Peek().kind == kind; }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("SPL parse error at line %d (near '%s'): %s", Peek().line,
                  Peek().text.c_str(), what.c_str()));
  }

  Status Expect(TokenKind kind, const char* what) {
    if (!AtKind(kind)) return Error(StrFormat("expected %s", what));
    ++pos_;
    return Status::OK();
  }

  Status ExpectKeyword(const char* keyword) {
    if (!AtKind(TokenKind::kIdentifier) || Peek().text != keyword) {
      return Error(StrFormat("expected keyword '%s'", keyword));
    }
    ++pos_;
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (!AtKind(TokenKind::kIdentifier)) return Error(StrFormat("expected %s", what));
    return tokens_[pos_++].text;
  }

  Result<Token> ExpectNumber(const char* what) {
    if (!AtKind(TokenKind::kNumber)) return Error(StrFormat("expected %s", what));
    return tokens_[pos_++];
  }

  Result<model::ComponentId> Declare(const std::string& id, model::ComponentKind kind) {
    if (components_.count(id) != 0) {
      return Error(StrFormat("'%s' is already declared", id.c_str()));
    }
    model::ComponentId component = model::kInvalidComponent;
    switch (kind) {
      case model::ComponentKind::kSource:
        component = app_.graph.AddSource(id);
        break;
      case model::ComponentKind::kPe:
        component = app_.graph.AddPe(id);
        break;
      case model::ComponentKind::kSink:
        component = app_.graph.AddSink(id);
        break;
    }
    components_[id] = component;
    return component;
  }

  Status ParseSource() {
    LAAR_ASSIGN_OR_RETURN(std::string id, ExpectIdentifier("source name"));
    LAAR_ASSIGN_OR_RETURN(model::ComponentId component,
                          Declare(id, model::ComponentKind::kSource));
    LAAR_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "'{'"));
    model::SourceRateSet rates;
    rates.source = component;
    while (!AtKind(TokenKind::kRBrace)) {
      LAAR_RETURN_IF_ERROR(ExpectKeyword("rate"));
      LAAR_ASSIGN_OR_RETURN(std::string label, ExpectIdentifier("rate label"));
      LAAR_RETURN_IF_ERROR(Expect(TokenKind::kEquals, "'='"));
      LAAR_ASSIGN_OR_RETURN(Token rate, ExpectNumber("tuple rate"));
      LAAR_RETURN_IF_ERROR(Expect(TokenKind::kAt, "'@'"));
      LAAR_ASSIGN_OR_RETURN(Token probability, ExpectNumber("probability"));
      LAAR_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      rates.labels.push_back(std::move(label));
      rates.rates.push_back(rate.number);
      rates.probabilities.push_back(probability.number);
    }
    LAAR_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "'}'"));
    if (rates.rates.empty()) {
      return Error(StrFormat("source '%s' declares no rates", id.c_str()));
    }
    pending_rates_.emplace_back(id, std::move(rates));
    return Status::OK();
  }

  Status ParsePe() {
    LAAR_ASSIGN_OR_RETURN(std::string id, ExpectIdentifier("pe name"));
    LAAR_RETURN_IF_ERROR(Declare(id, model::ComponentKind::kPe).status());
    return Expect(TokenKind::kSemicolon, "';'");
  }

  Status ParseSink() {
    LAAR_ASSIGN_OR_RETURN(std::string id, ExpectIdentifier("sink name"));
    LAAR_RETURN_IF_ERROR(Declare(id, model::ComponentKind::kSink).status());
    return Expect(TokenKind::kSemicolon, "';'");
  }

  Result<double> ParseCost(const Token& token) {
    // "100ms" tokenizes as number 100 with text "100ms": the unit is the
    // alphabetic tail.
    std::string unit;
    for (char c : token.text) {
      if (std::isalpha(static_cast<unsigned char>(c))) unit.push_back(c);
    }
    constexpr double kReferenceHz = 1e9;  // 1 GHz reference core
    if (unit.empty() || unit == "cycles") return token.number;
    if (unit == "ms") return token.number * 1e-3 * kReferenceHz;
    if (unit == "us") return token.number * 1e-6 * kReferenceHz;
    if (unit == "s") return token.number * kReferenceHz;
    return Error(StrFormat("unknown cost unit '%s'", unit.c_str()));
  }

  Status ParseStream() {
    LAAR_ASSIGN_OR_RETURN(std::string from_id, ExpectIdentifier("stream origin"));
    LAAR_RETURN_IF_ERROR(Expect(TokenKind::kArrow, "'->'"));
    LAAR_ASSIGN_OR_RETURN(std::string to_id, ExpectIdentifier("stream destination"));
    auto from_it = components_.find(from_id);
    auto to_it = components_.find(to_id);
    if (from_it == components_.end()) {
      return Error(StrFormat("'%s' is not declared", from_id.c_str()));
    }
    if (to_it == components_.end()) {
      return Error(StrFormat("'%s' is not declared", to_id.c_str()));
    }

    double selectivity = 1.0;
    double cost = 0.0;
    if (AtKind(TokenKind::kLBracket)) {
      ++pos_;
      while (!AtKind(TokenKind::kRBracket)) {
        LAAR_ASSIGN_OR_RETURN(std::string attribute,
                              ExpectIdentifier("edge attribute name"));
        LAAR_RETURN_IF_ERROR(Expect(TokenKind::kEquals, "'='"));
        LAAR_ASSIGN_OR_RETURN(Token value, ExpectNumber("attribute value"));
        if (attribute == "selectivity") {
          selectivity = value.number;
        } else if (attribute == "cost") {
          LAAR_ASSIGN_OR_RETURN(cost, ParseCost(value));
        } else {
          return Error(StrFormat("unknown edge attribute '%s'", attribute.c_str()));
        }
        if (AtKind(TokenKind::kComma)) ++pos_;
      }
      LAAR_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
    }
    LAAR_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
    return app_.graph
        .AddEdge(from_it->second, to_it->second, selectivity, cost)
        .WithContext(StrFormat("stream %s -> %s", from_id.c_str(), to_id.c_str()));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  model::ApplicationDescriptor app_;
  std::map<std::string, model::ComponentId> components_;
  std::vector<std::pair<std::string, model::SourceRateSet>> pending_rates_;
};

}  // namespace

Result<model::ApplicationDescriptor> ParseApplication(std::string_view text) {
  LAAR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(text).Tokenize());
  return Parser(std::move(tokens)).Parse();
}

Result<model::ApplicationDescriptor> ParseApplicationFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<model::ApplicationDescriptor> parsed = ParseApplication(buffer.str());
  if (!parsed.ok()) return parsed.status().WithContext(path);
  return parsed;
}

}  // namespace laar::spl
