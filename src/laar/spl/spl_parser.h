#ifndef LAAR_SPL_SPL_PARSER_H_
#define LAAR_SPL_SPL_PARSER_H_

#include <string>
#include <string_view>

#include "laar/common/result.h"
#include "laar/model/descriptor.h"

namespace laar::spl {

/// A small textual application language in the spirit of IBM Streams' SPL
/// (§5.1) — the paper's applications are SPL programs; this gives LAAR
/// users the same authoring convenience without hand-writing descriptor
/// JSON.
///
/// Grammar (informal; '#' starts a line comment):
///
///   application <name> {
///     source <id> {
///       rate <label> = <tuples/sec> @ <probability>;   // one per level
///       ...
///     }
///     pe <id>;
///     sink <id>;
///     stream <id> -> <id> [selectivity = <x>, cost = <y>(cycles|ms|us)];
///     ...
///   }
///
/// Rules enforced during elaboration:
///  - every identifier is declared before use and unique;
///  - per-source level probabilities sum to 1;
///  - `cost` units: plain number or `cycles` = CPU cycles per tuple;
///    `ms`/`us` = milliseconds/microseconds on a reference 1 GHz core;
///  - edge attribute defaults: selectivity 1.0, cost 0;
///  - the resulting graph must pass full descriptor validation (DAG,
///    orphan rules, etc.).
///
/// Example:
///
///   application pipeline {
///     source src { rate Low = 4 @ 0.8; rate High = 8 @ 0.2; }
///     pe stage1;
///     pe stage2;
///     sink out;
///     stream src -> stage1 [selectivity = 1.0, cost = 100ms];
///     stream stage1 -> stage2 [cost = 100ms];
///     stream stage2 -> out;
///   }
Result<model::ApplicationDescriptor> ParseApplication(std::string_view text);

/// Reads and parses an application file.
Result<model::ApplicationDescriptor> ParseApplicationFile(const std::string& path);

}  // namespace laar::spl

#endif  // LAAR_SPL_SPL_PARSER_H_
