file(REMOVE_RECURSE
  "CMakeFiles/spl_workflow.dir/spl_workflow.cpp.o"
  "CMakeFiles/spl_workflow.dir/spl_workflow.cpp.o.d"
  "spl_workflow"
  "spl_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spl_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
