# Empty dependencies file for spl_workflow.
# This may be replaced when dependencies are built.
