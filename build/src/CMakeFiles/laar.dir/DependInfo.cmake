
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/laar/appgen/app_generator.cc" "src/CMakeFiles/laar.dir/laar/appgen/app_generator.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/appgen/app_generator.cc.o.d"
  "/root/repo/src/laar/common/logging.cc" "src/CMakeFiles/laar.dir/laar/common/logging.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/common/logging.cc.o.d"
  "/root/repo/src/laar/common/rng.cc" "src/CMakeFiles/laar.dir/laar/common/rng.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/common/rng.cc.o.d"
  "/root/repo/src/laar/common/stats.cc" "src/CMakeFiles/laar.dir/laar/common/stats.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/common/stats.cc.o.d"
  "/root/repo/src/laar/common/status.cc" "src/CMakeFiles/laar.dir/laar/common/status.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/common/status.cc.o.d"
  "/root/repo/src/laar/common/strings.cc" "src/CMakeFiles/laar.dir/laar/common/strings.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/common/strings.cc.o.d"
  "/root/repo/src/laar/configindex/config_index.cc" "src/CMakeFiles/laar.dir/laar/configindex/config_index.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/configindex/config_index.cc.o.d"
  "/root/repo/src/laar/dsps/sim_metrics.cc" "src/CMakeFiles/laar.dir/laar/dsps/sim_metrics.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/dsps/sim_metrics.cc.o.d"
  "/root/repo/src/laar/dsps/stream_simulation.cc" "src/CMakeFiles/laar.dir/laar/dsps/stream_simulation.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/dsps/stream_simulation.cc.o.d"
  "/root/repo/src/laar/dsps/trace.cc" "src/CMakeFiles/laar.dir/laar/dsps/trace.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/dsps/trace.cc.o.d"
  "/root/repo/src/laar/exec/thread_pool.cc" "src/CMakeFiles/laar.dir/laar/exec/thread_pool.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/exec/thread_pool.cc.o.d"
  "/root/repo/src/laar/ftsearch/ft_search.cc" "src/CMakeFiles/laar.dir/laar/ftsearch/ft_search.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/ftsearch/ft_search.cc.o.d"
  "/root/repo/src/laar/ftsearch/penalty_sweep.cc" "src/CMakeFiles/laar.dir/laar/ftsearch/penalty_sweep.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/ftsearch/penalty_sweep.cc.o.d"
  "/root/repo/src/laar/fusion/fusion.cc" "src/CMakeFiles/laar.dir/laar/fusion/fusion.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/fusion/fusion.cc.o.d"
  "/root/repo/src/laar/json/json.cc" "src/CMakeFiles/laar.dir/laar/json/json.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/json/json.cc.o.d"
  "/root/repo/src/laar/metrics/cost.cc" "src/CMakeFiles/laar.dir/laar/metrics/cost.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/metrics/cost.cc.o.d"
  "/root/repo/src/laar/metrics/failure_model.cc" "src/CMakeFiles/laar.dir/laar/metrics/failure_model.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/metrics/failure_model.cc.o.d"
  "/root/repo/src/laar/metrics/ic.cc" "src/CMakeFiles/laar.dir/laar/metrics/ic.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/metrics/ic.cc.o.d"
  "/root/repo/src/laar/model/cluster.cc" "src/CMakeFiles/laar.dir/laar/model/cluster.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/model/cluster.cc.o.d"
  "/root/repo/src/laar/model/descriptor.cc" "src/CMakeFiles/laar.dir/laar/model/descriptor.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/model/descriptor.cc.o.d"
  "/root/repo/src/laar/model/discretize.cc" "src/CMakeFiles/laar.dir/laar/model/discretize.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/model/discretize.cc.o.d"
  "/root/repo/src/laar/model/dot.cc" "src/CMakeFiles/laar.dir/laar/model/dot.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/model/dot.cc.o.d"
  "/root/repo/src/laar/model/graph.cc" "src/CMakeFiles/laar.dir/laar/model/graph.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/model/graph.cc.o.d"
  "/root/repo/src/laar/model/input_space.cc" "src/CMakeFiles/laar.dir/laar/model/input_space.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/model/input_space.cc.o.d"
  "/root/repo/src/laar/model/placement.cc" "src/CMakeFiles/laar.dir/laar/model/placement.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/model/placement.cc.o.d"
  "/root/repo/src/laar/model/rates.cc" "src/CMakeFiles/laar.dir/laar/model/rates.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/model/rates.cc.o.d"
  "/root/repo/src/laar/model/transform.cc" "src/CMakeFiles/laar.dir/laar/model/transform.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/model/transform.cc.o.d"
  "/root/repo/src/laar/placement/local_search.cc" "src/CMakeFiles/laar.dir/laar/placement/local_search.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/placement/local_search.cc.o.d"
  "/root/repo/src/laar/placement/placement_algorithms.cc" "src/CMakeFiles/laar.dir/laar/placement/placement_algorithms.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/placement/placement_algorithms.cc.o.d"
  "/root/repo/src/laar/runtime/experiment.cc" "src/CMakeFiles/laar.dir/laar/runtime/experiment.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/runtime/experiment.cc.o.d"
  "/root/repo/src/laar/runtime/report.cc" "src/CMakeFiles/laar.dir/laar/runtime/report.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/runtime/report.cc.o.d"
  "/root/repo/src/laar/runtime/variants.cc" "src/CMakeFiles/laar.dir/laar/runtime/variants.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/runtime/variants.cc.o.d"
  "/root/repo/src/laar/sim/simulator.cc" "src/CMakeFiles/laar.dir/laar/sim/simulator.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/sim/simulator.cc.o.d"
  "/root/repo/src/laar/spl/spl_parser.cc" "src/CMakeFiles/laar.dir/laar/spl/spl_parser.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/spl/spl_parser.cc.o.d"
  "/root/repo/src/laar/strategy/activation_strategy.cc" "src/CMakeFiles/laar.dir/laar/strategy/activation_strategy.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/strategy/activation_strategy.cc.o.d"
  "/root/repo/src/laar/strategy/baselines.cc" "src/CMakeFiles/laar.dir/laar/strategy/baselines.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/strategy/baselines.cc.o.d"
  "/root/repo/src/laar/strategy/describe.cc" "src/CMakeFiles/laar.dir/laar/strategy/describe.cc.o" "gcc" "src/CMakeFiles/laar.dir/laar/strategy/describe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
