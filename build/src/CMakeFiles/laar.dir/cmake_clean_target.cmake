file(REMOVE_RECURSE
  "liblaar.a"
)
