# Empty dependencies file for laar.
# This may be replaced when dependencies are built.
