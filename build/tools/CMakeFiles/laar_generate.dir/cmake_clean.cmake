file(REMOVE_RECURSE
  "CMakeFiles/laar_generate.dir/laar_generate.cc.o"
  "CMakeFiles/laar_generate.dir/laar_generate.cc.o.d"
  "laar_generate"
  "laar_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laar_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
