# Empty dependencies file for laar_generate.
# This may be replaced when dependencies are built.
