file(REMOVE_RECURSE
  "CMakeFiles/laar_solve.dir/laar_solve.cc.o"
  "CMakeFiles/laar_solve.dir/laar_solve.cc.o.d"
  "laar_solve"
  "laar_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laar_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
