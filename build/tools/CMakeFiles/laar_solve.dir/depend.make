# Empty dependencies file for laar_solve.
# This may be replaced when dependencies are built.
