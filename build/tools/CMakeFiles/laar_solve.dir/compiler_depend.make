# Empty compiler generated dependencies file for laar_solve.
# This may be replaced when dependencies are built.
