file(REMOVE_RECURSE
  "CMakeFiles/laar_inspect.dir/laar_inspect.cc.o"
  "CMakeFiles/laar_inspect.dir/laar_inspect.cc.o.d"
  "laar_inspect"
  "laar_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laar_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
