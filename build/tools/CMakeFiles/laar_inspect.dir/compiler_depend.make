# Empty compiler generated dependencies file for laar_inspect.
# This may be replaced when dependencies are built.
