# Empty dependencies file for laar_simulate.
# This may be replaced when dependencies are built.
