file(REMOVE_RECURSE
  "CMakeFiles/laar_simulate.dir/laar_simulate.cc.o"
  "CMakeFiles/laar_simulate.dir/laar_simulate.cc.o.d"
  "laar_simulate"
  "laar_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laar_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
