# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_pipeline "/usr/bin/cmake" "-DGEN=/root/repo/build/tools/laar_generate" "-DSOLVE=/root/repo/build/tools/laar_solve" "-DSIM=/root/repo/build/tools/laar_simulate" "-DWORKDIR=/root/repo/build/tools" "-P" "/root/repo/tools/pipeline_test.cmake")
set_tests_properties(tools_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
